package recovery

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
)

// Remapped is the outcome of re-targeting a (possibly partially
// executed) network at a new core subset: the suffix graph still to
// run, the origin map back to the caller's graph, and the compiled
// program for the subset.
type Remapped struct {
	// Suffix is the graph of everything not yet completed. When nothing
	// was completed it is the original graph itself (no rebuild).
	Suffix *graph.Graph
	// Origin maps every suffix layer (inputs included) to the
	// original-graph layer it stands for.
	Origin map[graph.LayerID]graph.LayerID
	// Compiled is the suffix compiled for the requested subset.
	Compiled *core.Result
	// Cores are the global core indices the program targets.
	Cores []int
}

// Remap compiles the unexecuted remainder of g — everything outside
// the completed set, which must be a safe checkpoint (CoreFailure
// .Completed or sim.CutAtCycle output) — for the given core subset of
// a. Compilation goes through the fingerprint compile cache: suffix
// graphs are rebuilt deterministically and fingerprint structurally,
// so re-mapping the same (graph, checkpoint, subset, options) point
// twice compiles once and returns bit-identical programs. This is the
// primitive the tenancy scheduler uses to move surviving tenants when
// a tenant arrives or departs mid-run, and what the recovery loop uses
// after a core death.
func Remap(ctx context.Context, g *graph.Graph, completed []graph.LayerID, a *arch.Arch, cores []int, opt core.Options) (*Remapped, error) {
	sub, err := a.Subset(cores)
	if err != nil {
		return nil, fmt.Errorf("recovery: remap %s: %w", g.Name, err)
	}
	suffix, origin := g, identityOrigin(g)
	if len(completed) > 0 {
		suffix, origin, err = SuffixGraph(g, completed)
		if err != nil {
			return nil, err
		}
	}
	res, err := core.CompileCachedCtx(ctx, suffix, sub, opt)
	if err != nil {
		return nil, fmt.Errorf("recovery: remapping %s onto %d cores: %w", g.Name, len(cores), err)
	}
	return &Remapped{
		Suffix:   suffix,
		Origin:   origin,
		Compiled: res,
		Cores:    append([]int(nil), cores...),
	}, nil
}

// identityOrigin maps a graph onto itself, so callers can treat the
// nothing-completed case uniformly with real suffixes.
func identityOrigin(g *graph.Graph) map[graph.LayerID]graph.LayerID {
	m := make(map[graph.LayerID]graph.LayerID, g.Len())
	for _, l := range g.Layers() {
		m[l.ID] = l.ID
	}
	return m
}

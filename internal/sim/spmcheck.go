package sim

import (
	"fmt"

	"repro/internal/plan"
)

// This file is the simulator-side SPM capacity enforcement. Both
// engines track, per core, the bytes of every live SPM buffer using
// the same liveness rules spm.ProfileTimeline applies post-hoc: a
// load's destination buffer is allocated when the load issues and
// freed when its last dependent compute finishes; a compute's output
// buffer is allocated when the compute issues and freed when its last
// reader (dependent compute, store, or halo send) finishes. When a
// core's live bytes exceed its SPM capacity the run fails with a typed
// *SPMOverflowError naming the core, the cycle, and the owning
// buffers.
//
// The check runs after each step's issue phase. Completions due at
// time t are processed at the end of the previous step and the buffers
// they release are freed before the next step issues new work at t, so
// frees order before allocations at time ties — the same tie-break
// ProfileTimeline's sweep uses — and the observed maximum equals
// ProfileTimeline's PeakBytes. (A buffer freed and re-filled by a
// zero-duration instruction inside one instant could in principle be
// double-counted relative to the sweep, but every instruction class
// has a positive duration on real architectures.)

// SPMBuffer identifies one live SPM allocation at the moment of an
// overflow.
type SPMBuffer struct {
	// Core is the global core holding the buffer; Index is the owning
	// instruction's position within its core-local stream (the same
	// coordinates sim.Event uses).
	Core  int
	Index int
	Op    plan.OpCode
	Bytes int64
	Note  string
}

// SPMOverflowError reports that a core's live SPM footprint exceeded
// its capacity during simulation. It is returned by Run/RunConcurrent
// (and the reference engine) unless Config.NoSPMCheck is set.
type SPMOverflowError struct {
	// Core is the global core whose SPM overflowed (the lowest-indexed
	// one when several overflow at the same instant).
	Core int
	// Cycle is the simulation time of the overflow.
	Cycle float64
	// LiveBytes is the core's live footprint at that instant.
	LiveBytes int64
	// CapacityBytes is the core's SPM size.
	CapacityBytes int64
	// Buffers lists the live allocations, in program order.
	Buffers []SPMBuffer
}

func (e *SPMOverflowError) Error() string {
	return fmt.Sprintf("sim: SPM overflow on core %d at cycle %.0f: %d B live > %d B capacity across %d buffers",
		e.Core, e.Cycle, e.LiveBytes, e.CapacityBytes, len(e.Buffers))
}

// spmOwnedBytes returns the SPM bytes instruction in owns while live,
// or 0 when it allocates nothing (stores and barriers read or
// synchronize existing buffers). Mirrors ProfileTimeline's owner rule.
func spmOwnedBytes(in *plan.Instr) int64 {
	switch in.Op {
	case plan.LoadInput, plan.LoadKernel, plan.LoadHalo:
		return in.Bytes
	case plan.Compute:
		return in.OutBytes
	}
	return 0
}

// spmReads reports whether a dependent with opcode reader actually
// reads owner's buffer, as opposed to depending on it only for
// double-buffer slot reuse or pipeline ordering. Mirrors
// ProfileTimeline's reader rule.
func spmReads(owner, reader plan.OpCode) bool {
	switch owner {
	case plan.LoadInput, plan.LoadKernel, plan.LoadHalo:
		return reader == plan.Compute
	case plan.Compute:
		return reader == plan.Compute || reader == plan.Store || reader == plan.StoreHalo
	}
	return false
}

// checkSPM fails the run if any core's live footprint exceeds its SPM
// capacity, picking the lowest-indexed violating core and listing its
// live buffers in program order.
func (m *machine) checkSPM() error {
	for c := 0; c < m.ncores; c++ {
		if m.spmLive[c] <= m.a.Cores[c].SPMBytes {
			continue
		}
		err := &SPMOverflowError{
			Core: c, Cycle: m.now,
			LiveBytes: m.spmLive[c], CapacityBytes: m.a.Cores[c].SPMBytes,
		}
		for n := 0; n < m.total; n++ {
			if int(m.coreOf[n]) != c || m.spmBuf[n] <= 0 || !m.nodes[n].started {
				continue
			}
			err.Buffers = append(err.Buffers, SPMBuffer{
				Core: c, Index: int(m.indexOf[n]),
				Op: m.nodes[n].in.Op, Bytes: m.spmBuf[n], Note: m.nodes[n].in.Note,
			})
		}
		return err
	}
	return nil
}

// resizeInt64 returns a zeroed slice of length n, reusing capacity.
func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// Package cliutil holds the flag-value parsers shared by the command-
// line tools (npuc, npusim): architecture, configuration, and
// partitioning-mode selection.
package cliutil

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/partition"
)

// Arch returns the architecture for a -cores flag value: 1 is the
// single-core baseline, 3 the Exynos-2100-like platform, anything else
// a homogeneous n-core machine.
func Arch(cores int) (*arch.Arch, error) {
	switch {
	case cores == 1:
		return arch.SingleCore(), nil
	case cores == 3:
		return arch.Exynos2100Like(), nil
	case cores > 0:
		return arch.Homogeneous(cores), nil
	default:
		return nil, fmt.Errorf("invalid core count %d", cores)
	}
}

// Config returns the optimization options for a -config flag value.
func Config(name string) (core.Options, error) {
	switch name {
	case "base":
		return core.Base(), nil
	case "halo":
		return core.Halo(), nil
	case "stratum":
		return core.Stratum(), nil
	default:
		return core.Options{}, fmt.Errorf("unknown config %q (base, halo, stratum)", name)
	}
}

// Mode returns the partitioning policy for a -partition flag value.
func Mode(name string) (partition.Mode, error) {
	switch name {
	case "adaptive":
		return partition.Adaptive, nil
	case "spatial":
		return partition.ForceSpatial, nil
	case "channel":
		return partition.ForceChannel, nil
	default:
		return 0, fmt.Errorf("unknown partitioning %q (adaptive, spatial, channel)", name)
	}
}

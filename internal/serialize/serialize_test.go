package serialize

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/models"
	"repro/internal/randgraph"
	"repro/internal/sim"
)

func TestGraphRoundTrip(t *testing.T) {
	// Random graphs cover the whole operator set over enough seeds.
	for seed := int64(0); seed < 10; seed++ {
		g := randgraph.New(seed, randgraph.Params{})
		var buf bytes.Buffer
		if err := SaveGraph(&buf, g); err != nil {
			t.Fatalf("seed %d: save: %v", seed, err)
		}
		g2, err := LoadGraph(&buf)
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if g2.Len() != g.Len() || g2.Name != g.Name {
			t.Fatalf("seed %d: structure mismatch", seed)
		}
		for i := 0; i < g.Len(); i++ {
			a, b := g.Layers()[i], g2.Layers()[i]
			if a.Name != b.Name || a.OutShape != b.OutShape || a.DType != b.DType ||
				a.Op.String() != b.Op.String() {
				t.Fatalf("seed %d layer %d: %v != %v", seed, i, a, b)
			}
		}
		// The round-tripped graph computes identical values.
		ref1, err := exec.RunReference(g)
		if err != nil {
			t.Fatal(err)
		}
		ref2, err := exec.RunReference(g2)
		if err != nil {
			t.Fatal(err)
		}
		for id, tensor1 := range ref1 {
			if !tensor1.Equal(ref2[id]) {
				t.Fatalf("seed %d: layer %d values differ after round trip", seed, id)
			}
		}
	}
}

func TestGraphRoundTripBenchmarkModels(t *testing.T) {
	for _, m := range models.All() {
		g := m.Build()
		var buf bytes.Buffer
		if err := SaveGraph(&buf, g); err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		g2, err := LoadGraph(&buf)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if g2.TotalMACs() != g.TotalMACs() || g2.TotalKernelBytes() != g.TotalKernelBytes() {
			t.Errorf("%s: cost totals changed after round trip", m.Name)
		}
	}
}

func TestProgramRoundTripSimulatesIdentically(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProgram(&buf, res.Program); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadProgram(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out1, err := sim.Run(res.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	out2, err := sim.Run(p2, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out1.Stats.TotalCycles != out2.Stats.TotalCycles {
		t.Errorf("latency changed after round trip: %.0f != %.0f",
			out1.Stats.TotalCycles, out2.Stats.TotalCycles)
	}
	if out1.Stats.TotalBytes() != out2.Stats.TotalBytes() {
		t.Error("traffic changed after round trip")
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	if _, err := LoadGraph(strings.NewReader("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := LoadGraph(strings.NewReader(`{"name":"x","layers":[{"name":"a","op":{"kind":"Nope","attr":{}}}]}`)); err == nil {
		t.Error("unknown op kind accepted")
	}
	if _, err := LoadProgram(strings.NewReader(`{}`)); err == nil {
		t.Error("empty program accepted")
	}
}

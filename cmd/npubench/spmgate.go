package main

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
)

// spmGate is the strict-SPM CI gate: compile every Table 2 model under
// every configuration on both platforms and report how far the
// graceful-degradation chain had to back off. Any model that exhausts
// the chain (UnfitError) fails the gate, so CI catches a tiler or
// emitter regression that breaks SPM admission before it lands.
func spmGate(w io.Writer) error {
	type point struct {
		name string
		a    *arch.Arch
		opt  core.Options
	}
	multi := arch.Exynos2100Like()
	single := arch.SingleCore()
	points := []point{
		{"single/base", single, core.Base()},
		{"multi/base", multi, core.Base()},
		{"multi/halo", multi, core.Halo()},
		{"multi/stratum", multi, core.Stratum()},
	}
	fmt.Fprintf(w, "strict-SPM gate: fallback level per model x config (admission-checked on %s)\n", multi.Name)
	fmt.Fprintf(w, "%-17s %-22s %-22s %-22s %-22s\n", "Model", points[0].name, points[1].name, points[2].name, points[3].name)
	failed := 0
	for _, m := range models.All() {
		fmt.Fprintf(w, "%-17s", m.Name)
		for _, p := range points {
			res, err := core.Compile(m.Build(), p.a, p.opt)
			if err != nil {
				failed++
				fmt.Fprintf(w, " %-22s", "UNFIT")
				continue
			}
			cell := res.Fallback.String()
			if n := len(res.Downgrades); n > 0 {
				cell = fmt.Sprintf("%s(%d)", cell, n)
			}
			fmt.Fprintf(w, " %-22s", cell)
		}
		fmt.Fprintln(w)
	}
	if failed > 0 {
		return fmt.Errorf("spm gate: %d model/config points exhausted the fallback chain", failed)
	}
	fmt.Fprintln(w, "all model/config points admitted within SPM capacity")
	return nil
}

package sim_test

import (
	. "repro/internal/sim"

	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/plan"
)

// engines lists both implementations; cancellation must behave the
// same through either entry point.
var cancelEngines = []struct {
	name string
	run  func(*plan.Program, Config) (*Result, error)
}{
	{"event", Run},
	{"reference", RunReference},
}

// cancelProgram compiles a mid-sized network once for the cancellation
// tests.
func cancelProgram(t *testing.T) *plan.Program {
	t.Helper()
	res, err := core.Compile(convNet(6), arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return res.Program
}

// TestCancelPreCanceled: a context canceled before the run starts must
// abort at the first checkpoint with the typed error, before any
// instruction retires.
func TestCancelPreCanceled(t *testing.T) {
	p := cancelProgram(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range cancelEngines {
		_, err := e.run(p, Config{Ctx: ctx})
		if err == nil {
			t.Fatalf("%s: pre-canceled context: run succeeded", e.name)
		}
		var ce *CanceledError
		if !errors.As(err, &ce) {
			t.Fatalf("%s: got %T (%v), want *CanceledError", e.name, err, err)
		}
		if ce.Completed != 0 {
			t.Errorf("%s: %d instructions retired before the first checkpoint", e.name, ce.Completed)
		}
		if !errors.Is(err, ErrCanceled) {
			t.Errorf("%s: error does not match ErrCanceled", e.name)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error does not unwrap to context.Canceled", e.name)
		}
	}
}

// TestCancelDeadline: an already-expired deadline surfaces as
// context.DeadlineExceeded through the typed error.
func TestCancelDeadline(t *testing.T) {
	p := cancelProgram(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, e := range cancelEngines {
		_, err := e.run(p, Config{Ctx: ctx})
		if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: got %v, want CanceledError wrapping DeadlineExceeded", e.name, err)
		}
	}
}

// TestCancelBitIdentity: a live context must not perturb the run — the
// checkpoints only observe. Both engines must produce results
// bit-identical to their nil-context runs.
func TestCancelBitIdentity(t *testing.T) {
	p := cancelProgram(t)
	for _, e := range cancelEngines {
		plain, err := e.run(p, Config{CollectTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		ctxed, err := e.run(p, Config{CollectTrace: true, Ctx: context.Background()})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain.Stats, ctxed.Stats) {
			t.Errorf("%s: stats differ with a live context", e.name)
		}
		if !reflect.DeepEqual(plain.Trace, ctxed.Trace) {
			t.Errorf("%s: trace differs with a live context", e.name)
		}
	}
}

// TestCancelMachineReuse: an aborted event-engine run leaves the pooled
// machine reusable — the next run on the same pool must be clean.
func TestCancelMachineReuse(t *testing.T) {
	p := cancelProgram(t)
	want, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := Run(p, Config{Ctx: ctx}); !errors.Is(err, ErrCanceled) {
			t.Fatalf("iteration %d: got %v, want ErrCanceled", i, err)
		}
		got, err := Run(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Stats, got.Stats) {
			t.Fatalf("iteration %d: stats drifted after an aborted run", i)
		}
	}
}

// TestCancelMidRun: canceling from another goroutine while the run is
// in flight aborts it (cooperatively, so allow it to finish if the
// race resolves that way) without corrupting later runs.
func TestCancelMidRun(t *testing.T) {
	p := cancelProgram(t)
	want, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		go cancel()
		_, err := Run(p, Config{Ctx: ctx})
		if err != nil && !errors.Is(err, ErrCanceled) {
			t.Fatalf("mid-run cancel: unexpected error %v", err)
		}
		cancel()
		got, err := Run(p, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Stats, got.Stats) {
			t.Fatal("stats drifted after a mid-run cancellation")
		}
	}
}

package sim

import (
	"fmt"

	"repro/internal/plan"
)

// Repeat builds a program that runs p back to back n times — the
// sustained-throughput scenario (a camera stream) as opposed to the
// paper's single-shot latency metric. Iterations pipeline naturally:
// each engine processes iterations in order, so iteration i+1's loads
// overlap iteration i's tail computes, while barriers and explicit
// dependencies are replicated per iteration.
func Repeat(p *plan.Program, n int) (*plan.Program, error) {
	if n < 1 {
		return nil, fmt.Errorf("sim: repeat count %d", n)
	}
	if n == 1 {
		return p, nil
	}
	out := &plan.Program{
		Arch:        p.Arch,
		Graph:       p.Graph,
		Cores:       make([][]plan.Instr, len(p.Cores)),
		NumBarriers: p.NumBarriers * n,
		Directions:  p.Directions,
		Strata:      p.Strata,
	}
	for c, stream := range p.Cores {
		out.Cores[c] = make([]plan.Instr, 0, len(stream)*n)
		for it := 0; it < n; it++ {
			off := len(stream) * it
			for _, in := range stream {
				cp := in
				cp.Deps = make([]plan.Ref, len(in.Deps))
				for j, d := range in.Deps {
					cp.Deps[j] = plan.Ref{Core: d.Core, Index: d.Index + len(p.Cores[d.Core])*it}
				}
				if cp.Op == plan.Barrier {
					cp.BarrierID = in.BarrierID + p.NumBarriers*it
				}
				out.Cores[c] = append(out.Cores[c], cp)
			}
			_ = off
		}
	}
	return out, out.Validate()
}

// Throughput runs n back-to-back inferences and returns the average
// inter-completion interval in cycles (the steady-state inference
// period) alongside the full-batch stats.
func Throughput(p *plan.Program, n int, cfg Config) (periodCycles float64, res *Result, err error) {
	rep, err := Repeat(p, n)
	if err != nil {
		return 0, nil, err
	}
	res, err = Run(rep, cfg)
	if err != nil {
		return 0, nil, err
	}
	return res.Stats.TotalCycles / float64(n), res, nil
}

package report

import (
	"fmt"
	"io"

	"repro/internal/metrics"
)

// Utilization renders a metrics.Report for humans: per-core exclusive
// cycle attribution (Figure 10's stacked-bar categories as a table),
// SPM high-water marks, a bus-contention summary, the per-stratum
// redundancy ratios, and compile-pass timings when attached.
func Utilization(w io.Writer, rep *metrics.Report) error {
	title := "Utilization"
	if rep.Model != "" {
		title += " " + rep.Model
	}
	if rep.Config != "" {
		title += " " + rep.Config
	}
	if _, err := fmt.Fprintf(w, "%s: %.1f us (%.0f cycles @ %d MHz), %d barriers\n",
		title, rep.LatencyMicros, rep.TotalCycles, rep.ClockMHz, rep.Barriers); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-5s %8s %8s %8s %8s %8s %8s %9s %8s\n",
		"core", "compute", "halo", "load", "store", "stall", "idle", "MMACs", "retries")
	for _, cr := range rep.Cores {
		f := cr.Exclusive.Fractions(cr.TotalCycles)
		fmt.Fprintf(w, "P%-4d %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %9.2f %8d\n",
			cr.Core, 100*f.Compute, 100*f.Halo, 100*f.Load, 100*f.Store, 100*f.Stall, 100*f.Idle,
			float64(cr.MACs)/1e6, cr.Retries)
	}
	for _, sp := range rep.SPM {
		status := "fits"
		if !sp.Fits {
			status = "OVERFLOWS"
		}
		fmt.Fprintf(w, "SPM P%d: peak %d KB of %d KB (%.0f%%, %s) across %d buffers\n",
			sp.Core, sp.PeakBytes/1024, sp.CapacityBytes/1024, 100*sp.Utilization, status, sp.Buffers)
	}
	b := rep.Bus
	if rep.TotalCycles > 0 {
		fmt.Fprintf(w, "bus: busy %.1f%%, contended %.1f%%, avg %.1f/%.1f B/cyc granted/demanded (ceiling %.0f), peak %d channels\n",
			100*b.BusyCycles/rep.TotalCycles, 100*b.ContendedCycles/rep.TotalCycles,
			b.AvgGranted, b.AvgDemand, b.CapacityBytesPerCycle, b.PeakChannels)
	}
	var redundant, executed int64
	multi := 0
	for _, sr := range rep.Strata {
		redundant += sr.RedundantMACs
		executed += sr.ExecutedMACs
		if len(sr.Layers) > 1 {
			multi++
		}
	}
	if executed > 0 {
		fmt.Fprintf(w, "strata: %d (%d multi-layer), redundant %.2f MMACs = %.2f%% of executed\n",
			len(rep.Strata), multi, float64(redundant)/1e6, 100*float64(redundant)/float64(executed))
	}
	if c := rep.Compile; c != nil {
		fmt.Fprintf(w, "compile: %.1f ms (partition %.1f, schedule %.1f, stratum %.1f, emit %.1f)\n",
			c.TotalMillis, c.PartitionMillis, c.ScheduleMillis, c.StratumMillis, c.EmitMillis)
	}
	return nil
}

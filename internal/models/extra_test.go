package models

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/tensor"
)

func TestExtraModelsBuild(t *testing.T) {
	for _, m := range Extra() {
		g := m.Build()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestResNet50Shapes(t *testing.T) {
	g := ResNet50()
	cases := []struct {
		layer string
		shape tensor.Shape
	}{
		{"pool1", tensor.NewShape(56, 56, 64)},
		{"res2_2_relu", tensor.NewShape(56, 56, 256)},
		{"res3_3_relu", tensor.NewShape(28, 28, 512)},
		{"res4_5_relu", tensor.NewShape(14, 14, 1024)},
		{"res5_2_relu", tensor.NewShape(7, 7, 2048)},
		{"fc", tensor.NewShape(1, 1, 1000)},
	}
	for _, c := range cases {
		l, ok := g.LayerByName(c.layer)
		if !ok {
			t.Errorf("layer %q missing", c.layer)
			continue
		}
		if l.OutShape != c.shape {
			t.Errorf("%s: %v, want %v", c.layer, l.OutShape, c.shape)
		}
	}
	// ~4.1 GMACs for ResNet-50.
	macs := float64(g.TotalMACs()) / 1e9
	if macs < 3.5 || macs > 4.8 {
		t.Errorf("ResNet50 MACs = %.2fG, want ~4.1G", macs)
	}
}

func TestVGG16Shapes(t *testing.T) {
	g := VGG16()
	l, ok := g.LayerByName("pool5")
	if !ok {
		t.Fatal("pool5 missing")
	}
	if l.OutShape != tensor.NewShape(7, 7, 512) {
		t.Errorf("pool5 = %v, want 7x7x512", l.OutShape)
	}
	fc6, _ := g.LayerByName("fc6_relu")
	if fc6.OutShape != tensor.NewShape(1, 1, 4096) {
		t.Errorf("fc6 = %v, want 1x1x4096", fc6.OutShape)
	}
	// ~15.5 GMACs for VGG-16 (conv-expressed classifier included).
	macs := float64(g.TotalMACs()) / 1e9
	if macs < 14 || macs > 17 {
		t.Errorf("VGG16 MACs = %.2fG, want ~15.5G", macs)
	}
}

func TestExtraModelsCompileAllConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy compile")
	}
	// Compiled through the npu pipeline in internal/core tests'
	// helpers is circular; use the arch check only here: both models
	// must at least partition cleanly on the three-core platform.
	a := arch.Exynos2100Like()
	_ = a
	for _, m := range Extra() {
		g := m.Build()
		if g.TotalKernelBytes() <= 0 {
			t.Errorf("%s: no weights", m.Name)
		}
	}
}

package stats

import (
	"math"
	"strings"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Mean != 4 {
		t.Errorf("mean = %g", s.Mean)
	}
	want := math.Sqrt((4 + 0 + 4) / 3.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("std = %g, want %g", s.Std, want)
	}
	if len(s.Values) != 3 {
		t.Errorf("values = %v", s.Values)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Mean != 0 || s.Std != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestFormats(t *testing.T) {
	s := Summarize([]float64{1024, 3072})
	if !strings.Contains(s.KB(), "KB") {
		t.Errorf("KB format: %q", s.KB())
	}
	if !strings.Contains(s.Micros(1000), "us") {
		t.Errorf("Micros format: %q", s.Micros(1000))
	}
	if !strings.Contains(s.String(), "μ:") || !strings.Contains(s.String(), "σ:") {
		t.Errorf("String format: %q", s.String())
	}
}

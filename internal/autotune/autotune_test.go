package autotune

import (
	"context"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

func TestAutoBalanceNeverWorse(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := AutoBalance(g, a, core.Halo(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// The best result can never be worse than the unscaled first
	// iteration (it is kept if nothing improves).
	if res.BestLatencyCycles > res.Steps[0].LatencyCycles {
		t.Errorf("best %.0f worse than first %.0f", res.BestLatencyCycles, res.Steps[0].LatencyCycles)
	}
	if res.Best == nil {
		t.Fatal("no best result")
	}
	if err := res.Best.Program.Validate(); err != nil {
		t.Errorf("best program invalid: %v", err)
	}
}

func TestAutoBalanceImprovesSkewedArch(t *testing.T) {
	// A platform whose third core is much slower than the cost model
	// believes: pretend equal MACs but give it a tiny real efficiency
	// via bandwidth. The analytic balance overloads it; profiling
	// should shift work away.
	a := arch.Exynos2100Like()
	a.Cores[2].DMABytesPerCycle = 1 // profiled bottleneck
	g := models.ConvChain(4, 96, 96, 16)
	res, err := AutoBalance(g, a, core.Base(), 5)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Steps[0].LatencyCycles
	if res.BestLatencyCycles > first {
		t.Errorf("tuning made it worse: %.0f > %.0f", res.BestLatencyCycles, first)
	}
	// The scale for the slow core should have dropped below the others
	// by the final step.
	last := res.Steps[len(res.Steps)-1].Scale
	if last[2] >= last[0] {
		t.Logf("scales: %v (slow core not deprioritized; acceptable if already balanced)", last)
	}
}

func TestAutoBalanceSingleIteration(t *testing.T) {
	g := models.TinyCNN()
	res, err := AutoBalance(g, arch.SingleCore(), core.Base(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Errorf("steps = %d, want 1", len(res.Steps))
	}
}

// TestAutoBalanceCompileCacheHits pins that candidate evaluation goes
// through the fingerprint-keyed compile cache: repeating a sweep
// recompiles nothing (every point is a hit), so an outer search — the
// design-space explorer — can re-evaluate scale vectors for free.
func TestAutoBalanceCompileCacheHits(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	core.ResetCache()

	if _, err := AutoBalanceCtx(context.Background(), g, a, core.Halo(), 3, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := core.CacheStats()
	if misses1 == 0 {
		t.Fatal("first sweep compiled nothing")
	}

	if _, err := AutoBalanceCtx(context.Background(), g, a, core.Halo(), 3, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	hits2, misses2 := core.CacheStats()
	if misses2 != misses1 {
		t.Errorf("second sweep missed the cache: %d new compiles", misses2-misses1)
	}
	if hits2 <= hits1 {
		t.Errorf("second sweep recorded no cache hits (%d -> %d)", hits1, hits2)
	}
}

// TestAutoBalanceCtxCancelled pins cooperative cancellation: an
// already-cancelled context aborts the sweep with the context's error.
func TestAutoBalanceCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	core.ResetCache() // a cached compile would skip the ctx check
	_, err := AutoBalanceCtx(ctx, models.TinyCNN(), arch.Exynos2100Like(), core.Base(), 2, sim.Config{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Package plan defines the compiled execution program for a multicore
// NPU: per-core instruction streams over three in-order engines (DMA
// load, compute, DMA store) plus inter-core barriers and halo
// exchanges, with explicit dependency edges.
//
// The representation mirrors the paper's execution model: each tile of
// a sub-layer becomes load/compute/store instructions; double
// buffering appears as dependency edges between a tile's load and the
// compute two tiles earlier; feature-map forwarding removes
// loads/stores; halo-exchange appears as StoreHalo/LoadHalo pairs
// through global memory; stratum construction removes barriers.
package plan

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/partition"
)

// Engine identifies the functional unit that executes an instruction.
// Each engine processes its instructions in program order; different
// engines overlap (the software pipeline).
type Engine int

// Engines of one NPU core.
const (
	EngineLoad    Engine = iota // DMA global memory -> SPM
	EngineCompute               // the MAC array
	EngineStore                 // DMA SPM -> global memory
	EngineSync                  // barrier rendezvous
)

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case EngineLoad:
		return "load"
	case EngineCompute:
		return "compute"
	case EngineStore:
		return "store"
	case EngineSync:
		return "sync"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// OpCode is the instruction operation.
type OpCode int

// Instruction opcodes.
const (
	// LoadInput moves a tile's input region from global memory to SPM.
	LoadInput OpCode = iota
	// LoadKernel moves kernel weights from global memory to SPM.
	LoadKernel
	// LoadHalo receives halo data another core stored to global memory.
	LoadHalo
	// Compute runs the MAC array over a tile.
	Compute
	// Store moves a tile's output region from SPM to global memory.
	Store
	// StoreHalo pushes boundary data to global memory for neighbours.
	StoreHalo
	// Barrier synchronizes all cores (completes when every core's
	// matching Barrier has all dependencies satisfied).
	Barrier
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case LoadInput:
		return "ld"
	case LoadKernel:
		return "ld-kn"
	case LoadHalo:
		return "halo-recv"
	case Compute:
		return "comp"
	case Store:
		return "st"
	case StoreHalo:
		return "halo-send"
	case Barrier:
		return "sync"
	default:
		return fmt.Sprintf("OpCode(%d)", int(o))
	}
}

// Engine returns the functional unit the opcode executes on.
func (o OpCode) Engine() Engine {
	switch o {
	case LoadInput, LoadKernel, LoadHalo:
		return EngineLoad
	case Compute:
		return EngineCompute
	case Store, StoreHalo:
		return EngineStore
	case Barrier:
		return EngineSync
	default:
		panic(fmt.Sprintf("plan: unknown opcode %d", int(o)))
	}
}

// Ref addresses an instruction: core index and position in that core's
// stream.
type Ref struct {
	Core, Index int
}

// Instr is one instruction of a core's stream.
type Instr struct {
	// Op is the operation; it determines the engine.
	Op OpCode
	// Layer is the layer this instruction belongs to.
	Layer graph.LayerID
	// Tile is the tile index within the sub-layer, or -1 when the
	// instruction is not tile-scoped (barriers, halo transfers).
	Tile int
	// Bytes is the DMA transfer size (load/store opcodes).
	Bytes int64
	// MACs is the compute amount (Compute opcode).
	MACs int64
	// OutBytes is the SPM size of the tile output a Compute produces
	// (for memory profiling); 0 on other opcodes.
	OutBytes int64
	// Deps are instructions that must complete before this one starts,
	// possibly on other cores (halo receives, barrier release is
	// handled via BarrierID instead).
	Deps []Ref
	// BarrierID pairs Barrier instructions across cores; -1 otherwise.
	BarrierID int
	// Note annotates traces ("ld l1 t0").
	Note string
}

// Program is a compiled, simulatable schedule.
type Program struct {
	Arch  *arch.Arch
	Graph *graph.Graph
	// Cores holds one instruction stream per core.
	Cores [][]Instr
	// NumBarriers is the number of distinct barrier IDs.
	NumBarriers int
	// Directions records each layer's partitioning direction (by
	// LayerID) for reports.
	Directions []partition.Direction
	// Strata records the stratum composition (layer IDs per stratum in
	// execution order) for reports.
	Strata [][]graph.LayerID
}

// TotalBytes returns the global-memory traffic of one core (loads +
// stores, halo included).
func (p *Program) TotalBytes(core int) int64 {
	var b int64
	for _, in := range p.Cores[core] {
		switch in.Op {
		case LoadInput, LoadKernel, LoadHalo, Store, StoreHalo:
			b += in.Bytes
		}
	}
	return b
}

// TotalMACs returns the compute executed by one core, redundant halo
// computation included.
func (p *Program) TotalMACs(core int) int64 {
	var m int64
	for _, in := range p.Cores[core] {
		if in.Op == Compute {
			m += in.MACs
		}
	}
	return m
}

// NumInstrs returns the total instruction count.
func (p *Program) NumInstrs() int {
	n := 0
	for _, c := range p.Cores {
		n += len(c)
	}
	return n
}

// Validate checks structural invariants: refs in range, barriers
// paired on every core exactly once per ID, and the dependency graph
// (with per-engine program order added) acyclic.
func (p *Program) Validate() error {
	ncores := len(p.Cores)
	if ncores != p.Arch.NumCores() {
		return fmt.Errorf("plan: %d streams for %d cores", ncores, p.Arch.NumCores())
	}
	barrierCount := make(map[int][]int) // id -> per-core occurrence count
	for c, stream := range p.Cores {
		for i, in := range stream {
			for _, d := range in.Deps {
				if d.Core < 0 || d.Core >= ncores || d.Index < 0 || d.Index >= len(p.Cores[d.Core]) {
					return fmt.Errorf("plan: core %d instr %d: dep %+v out of range", c, i, d)
				}
			}
			if in.Op == Barrier {
				if in.BarrierID < 0 || in.BarrierID >= p.NumBarriers {
					return fmt.Errorf("plan: core %d instr %d: barrier id %d out of range", c, i, in.BarrierID)
				}
				if barrierCount[in.BarrierID] == nil {
					barrierCount[in.BarrierID] = make([]int, ncores)
				}
				barrierCount[in.BarrierID][c]++
			} else if in.BarrierID != -1 && in.BarrierID != 0 {
				return fmt.Errorf("plan: core %d instr %d: non-barrier with barrier id %d", c, i, in.BarrierID)
			}
			switch in.Op {
			case LoadInput, LoadKernel, LoadHalo, Store, StoreHalo:
				if in.Bytes <= 0 {
					return fmt.Errorf("plan: core %d instr %d: %v with %d bytes", c, i, in.Op, in.Bytes)
				}
			case Compute:
				if in.MACs <= 0 {
					return fmt.Errorf("plan: core %d instr %d: compute with %d MACs", c, i, in.MACs)
				}
			}
		}
	}
	for id, counts := range barrierCount {
		for c, n := range counts {
			if n != 1 {
				return fmt.Errorf("plan: barrier %d appears %d times on core %d", id, n, c)
			}
		}
	}
	return p.checkAcyclic()
}

// checkAcyclic runs Kahn's algorithm over dependency edges plus
// per-engine program order and barrier rendezvous edges.
func (p *Program) checkAcyclic() error {
	// Global node numbering.
	base := make([]int, len(p.Cores)+1)
	for c := range p.Cores {
		base[c+1] = base[c] + len(p.Cores[c])
	}
	n := base[len(p.Cores)]
	adj := make([][]int32, n)
	indeg := make([]int, n)
	addEdge := func(from, to int) {
		adj[from] = append(adj[from], int32(to))
		indeg[to]++
	}
	node := func(r Ref) int { return base[r.Core] + r.Index }

	// Per-engine program order.
	for c, stream := range p.Cores {
		last := map[Engine]int{}
		for i, in := range stream {
			e := in.Op.Engine()
			if prev, ok := last[e]; ok {
				addEdge(node(Ref{c, prev}), node(Ref{c, i}))
			}
			last[e] = i
			for _, d := range in.Deps {
				addEdge(node(d), node(Ref{c, i}))
			}
		}
	}
	// Barrier rendezvous: every barrier of an ID depends on every
	// other core's preceding instruction set. Approximate with edges
	// between matching barrier nodes' dependencies — the simulator
	// enforces the full rendezvous; for acyclicity, tie matching
	// barriers pairwise through a virtual ordering is unnecessary
	// since rendezvous cannot create cycles unless deps already do.
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, w := range adj[v] {
			indeg[w]--
			if indeg[w] == 0 {
				queue = append(queue, int(w))
			}
		}
	}
	if seen != n {
		return fmt.Errorf("plan: dependency cycle among %d of %d instructions", n-seen, n)
	}
	return nil
}

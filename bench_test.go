// Package repro's root benchmarks regenerate the paper's evaluation
// through the Go benchmark harness: one benchmark family per table or
// figure. Each benchmark compiles and simulates the workload and
// reports the modeled inference latency as the custom metric
// "latency_us" (the quantity the paper's figures plot), alongside the
// usual wall-clock cost of running the toolchain itself.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one experiment:
//
//	go test -bench=BenchmarkFig11
package repro

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sim"
)

// runPoint compiles and simulates one configuration point, reporting
// the modeled latency.
func runPoint(b *testing.B, g *graph.Graph, a *arch.Arch, opt core.Options) {
	b.Helper()
	var lastUS float64
	for i := 0; i < b.N; i++ {
		res, err := core.Compile(g, a, opt)
		if err != nil {
			b.Fatal(err)
		}
		out, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			b.Fatal(err)
		}
		lastUS = out.Stats.LatencyMicros(a.ClockMHz)
	}
	b.ReportMetric(lastUS, "latency_us")
}

// BenchmarkFig11 sweeps every benchmark model across the four
// configurations of Figure 11 (1-core, and 3-core Base/+Halo/+Stratum).
func BenchmarkFig11(b *testing.B) {
	for _, m := range models.All() {
		g := m.Build()
		points := []struct {
			name string
			a    *arch.Arch
			opt  core.Options
		}{
			{"1core", arch.SingleCore(), core.Base()},
			{"Base", arch.Exynos2100Like(), core.Base()},
			{"Halo", arch.Exynos2100Like(), core.Halo()},
			{"Stratum", arch.Exynos2100Like(), core.Stratum()},
		}
		for _, pt := range points {
			b.Run(m.Name+"/"+pt.name, func(b *testing.B) {
				runPoint(b, g, pt.a, pt.opt)
			})
		}
	}
}

// BenchmarkFig12 measures the three pipelining variants of Figure 12
// on the InceptionV3 stem, reporting the exposed idle before the
// second convolution as "exposed_idle_us".
func BenchmarkFig12(b *testing.B) {
	var variants []experiments.Fig12Variant
	var err error
	for i := 0; i < b.N; i++ {
		variants, err = experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, v := range variants {
		b.ReportMetric(v.ExposedIdleUS, fmt.Sprintf("idle_us_%s", v.Name[:3]))
	}
}

// BenchmarkTable4 profiles InceptionV3 under the three partitioning
// schemes of Table 4, reporting the per-run latency.
func BenchmarkTable4(b *testing.B) {
	g := models.InceptionV3()
	a := arch.Exynos2100Like()
	for _, sch := range []struct {
		name string
		mode partition.Mode
	}{
		{"spatial", partition.ForceSpatial},
		{"channel", partition.ForceChannel},
		{"adaptive", partition.Adaptive},
	} {
		b.Run(sch.name, func(b *testing.B) {
			opt := core.Base()
			opt.Partitioning = sch.mode
			runPoint(b, g, a, opt)
		})
	}
}

// BenchmarkTable5 compares Halo-only, Stratum-only, and the combined
// configuration on the InceptionV3 stem region (Table 5).
func BenchmarkTable5(b *testing.B) {
	g := models.InceptionV3Stem()
	a := arch.Exynos2100Like()
	stratumOnly := core.Base()
	stratumOnly.Stratum = true
	for _, cfg := range []struct {
		name string
		opt  core.Options
	}{
		{"Halo", core.Halo()},
		{"Stratum", stratumOnly},
		{"Combined", core.Stratum()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			runPoint(b, g, a, cfg.opt)
		})
	}
}

// BenchmarkTable1 regenerates the partitioning-method enumeration of
// Table 1 (a compile-time property; benchmarked for completeness of
// the per-table harness).
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 4 {
			b.Fatal("table1 rows missing")
		}
	}
}

// BenchmarkTable2 rebuilds all six benchmark models (Table 2),
// measuring graph-construction cost.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range models.All() {
			if g := m.Build(); g.Len() == 0 {
				b.Fatal("empty model")
			}
		}
	}
}

// BenchmarkCompile measures compiler throughput per model (full
// +Stratum pipeline: partition, schedule, strata, tiling, lowering).
func BenchmarkCompile(b *testing.B) {
	a := arch.Exynos2100Like()
	for _, m := range models.All() {
		g := m.Build()
		b.Run(m.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(g, a, core.Stratum()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSync sweeps the barrier cost on MobileNetV2
// (design-choice ablation A1: what stratum construction buys as
// synchronization gets costlier).
func BenchmarkAblationSync(b *testing.B) {
	g := models.ByNameMust("MobileNetV2")
	for _, syncUS := range []float64{0.5, 8} {
		for _, opt := range []core.Options{core.Base(), core.Stratum()} {
			b.Run(fmt.Sprintf("sync%gus/%s", syncUS, opt.Name()), func(b *testing.B) {
				a := arch.Exynos2100Like()
				a.SyncBaseCycles = a.MicrosToCycles(syncUS)
				a.SyncJitterCycles = a.SyncBaseCycles
				runPoint(b, g, a, opt)
			})
		}
	}
}

// BenchmarkAblationCores measures speedup scaling on homogeneous
// 1..8-core platforms (ablation A4).
func BenchmarkAblationCores(b *testing.B) {
	g := models.ByNameMust("MobileNetV2")
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("%dcores", n), func(b *testing.B) {
			runPoint(b, g, arch.Homogeneous(n), core.Stratum())
		})
	}
}

// BenchmarkSweepWorkers measures the toolchain wall-clock of a full
// compile+simulate sweep (Table 5) at one worker versus all available
// cores. The cache is cold every iteration so the comparison isolates
// the fan-out; the latency_us metric of the sweep itself is untouched
// by the worker count (see the determinism tests).
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				core.ResetCache()
				if _, err := experiments.Table5(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11Workers is the headline sweep (six models, four
// configurations each) at one worker versus all available cores.
func BenchmarkFig11Workers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prev := parallel.SetWorkers(w)
			defer parallel.SetWorkers(prev)
			for i := 0; i < b.N; i++ {
				core.ResetCache()
				if _, err := experiments.Fig11(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileCached isolates the compile-result cache: "miss"
// resets the cache each iteration, "hit" replays a warm entry.
func BenchmarkCompileCached(b *testing.B) {
	g := models.InceptionV3()
	a := arch.Exynos2100Like()
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.ResetCache()
			if _, err := core.CompileCached(g, a, core.Stratum()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hit", func(b *testing.B) {
		core.ResetCache()
		if _, err := core.CompileCached(g, a, core.Stratum()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.CompileCached(g, a, core.Stratum()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulate measures event-engine simulator throughput on
// precompiled programs. Allocations are reported because the engine's
// contract is zero steady-state allocation (only the Result escapes).
func BenchmarkSimulate(b *testing.B) {
	a := arch.Exynos2100Like()
	for _, m := range models.All() {
		g := m.Build()
		res, err := core.Compile(g, a, core.Stratum())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.Run(res.Program, sim.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulateCtx measures what arming the cooperative
// cancellation checkpoints costs the event engine: "nil" is the bare
// fast path (one pointer compare per step), "background" polls a live
// context every 64 steps (the serving layer's configuration; designed
// to stay within 1% of "nil"), and "precanceled" measures how fast an
// already-dead request aborts.
func BenchmarkSimulateCtx(b *testing.B) {
	a := arch.Exynos2100Like()
	g := models.ByNameMust("MobileNetV2")
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(res.Program, sim.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("background", func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(res.Program, sim.Config{Ctx: ctx}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precanceled", func(b *testing.B) {
		b.ReportAllocs()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(res.Program, sim.Config{Ctx: ctx}); !errors.Is(err, sim.ErrCanceled) {
				b.Fatalf("want ErrCanceled, got %v", err)
			}
		}
	})
}

// BenchmarkSimulateReference measures the retained reference engine on
// the same programs — the "before" column of the event-engine speedup.
func BenchmarkSimulateReference(b *testing.B) {
	a := arch.Exynos2100Like()
	for _, m := range models.All() {
		g := m.Build()
		res, err := core.Compile(g, a, core.Stratum())
		if err != nil {
			b.Fatal(err)
		}
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunReference(res.Program, sim.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

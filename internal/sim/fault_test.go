package sim_test

import (
	. "repro/internal/sim"

	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
)

// faultRun compiles and simulates under a fault plan.
func faultRun(t *testing.T, g *graph.Graph, a *arch.Arch, opt core.Options, p *fault.Plan) (*Result, error) {
	t.Helper()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return Run(res.Program, Config{CollectTrace: true, Faults: p})
}

func TestFaultDeterminism(t *testing.T) {
	// Same (program, plan, seed) must reproduce byte-identical traces
	// and stats across runs — the acceptance bar for fault injection.
	g := convNet(4)
	a := arch.Exynos2100Like()
	plan := &fault.Plan{
		Seed:      99,
		DropRate:  0.05,
		Throttles: []fault.Throttle{{Core: 1, AtCycle: 20000, Factor: 0.5}},
	}
	first, err := faultRun(t, g, a, core.Halo(), plan)
	if err != nil {
		t.Fatal(err)
	}
	second, err := faultRun(t, g, a, core.Halo(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Stats, second.Stats) {
		t.Errorf("stats differ across identical runs:\n%+v\nvs\n%+v", first.Stats, second.Stats)
	}
	if !reflect.DeepEqual(first.Trace, second.Trace) {
		t.Error("event traces differ across identical runs")
	}
	// A different seed must actually change behavior (drops land on
	// different transfers).
	other, err := faultRun(t, g, a, core.Halo(), &fault.Plan{
		Seed:      100,
		DropRate:  0.05,
		Throttles: plan.Throttles,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first.Trace, other.Trace) {
		t.Error("different fault seeds produced identical traces")
	}
}

func TestDropsCostLatencyAndCountRetries(t *testing.T) {
	g := convNet(4)
	a := arch.Exynos2100Like()
	clean, err := faultRun(t, g, a, core.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	flaky, err := faultRun(t, g, a, core.Base(), &fault.Plan{Seed: 7, DropRate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	var retries int
	for _, cs := range flaky.Stats.PerCore {
		retries += cs.Retries
	}
	if retries <= 0 {
		t.Fatal("15% drop rate produced no retries")
	}
	if flaky.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("flaky run %.0f not slower than clean %.0f",
			flaky.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
	// Retried transfers re-move their bytes, but the accounted traffic
	// (bytes that arrived) must match the clean run.
	if flaky.Stats.TotalBytes() != clean.Stats.TotalBytes() {
		t.Errorf("accounted bytes changed under drops: %d vs %d",
			flaky.Stats.TotalBytes(), clean.Stats.TotalBytes())
	}
	for _, cs := range clean.Stats.PerCore {
		if cs.Retries != 0 {
			t.Error("clean run recorded retries")
		}
	}
}

func TestThrottleSlowsRun(t *testing.T) {
	g := convNet(4)
	a := arch.Exynos2100Like()
	clean, err := faultRun(t, g, a, core.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := faultRun(t, g, a, core.Base(), &fault.Plan{
		Throttles: []fault.Throttle{{Core: 0, AtCycle: 0, Factor: 0.25}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if hot.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("throttled run %.0f not slower than clean %.0f",
			hot.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
	// Throttling an out-of-range core is a configuration bug, rejected
	// with a typed error before the run starts.
	_, err = faultRun(t, g, a, core.Base(), &fault.Plan{
		Throttles: []fault.Throttle{{Core: 17, AtCycle: 0, Factor: 0.25}},
	})
	var cre *fault.CoreRangeError
	if !errors.As(err, &cre) {
		t.Fatalf("out-of-range throttle: got %v, want *fault.CoreRangeError", err)
	}
	if cre.Core != 17 || cre.NCores != a.NumCores() {
		t.Errorf("CoreRangeError = %+v", cre)
	}
}

func TestCoreDeathReturnsTypedFailure(t *testing.T) {
	// Base stores every layer to global memory, so a mid-run death
	// checkpoints a real prefix of the execution order.
	g := convNet(6)
	a := arch.Exynos2100Like()
	clean, err := faultRun(t, g, a, core.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	killAt := clean.Stats.TotalCycles / 2
	_, err = faultRun(t, g, a, core.Base(), &fault.Plan{
		Deaths: []fault.Death{{Core: 1, AtCycle: killAt}},
	})
	var cf *CoreFailure
	if !errors.As(err, &cf) {
		t.Fatalf("expected *CoreFailure, got %v", err)
	}
	if cf.Kind != FailCoreDeath || cf.Core != 1 {
		t.Errorf("failure = %+v", cf)
	}
	if cf.AtCycle != killAt {
		t.Errorf("failed at %.0f, killed at %.0f", cf.AtCycle, killAt)
	}
	if cf.Partial.TotalCycles != killAt {
		t.Errorf("partial stats end at %.0f, want %.0f", cf.Partial.TotalCycles, killAt)
	}
	if len(cf.Completed) == 0 {
		t.Error("mid-run death under Base checkpointed nothing")
	}
	if len(cf.Completed) >= g.Len() {
		t.Error("mid-run death checkpointed the whole graph")
	}
	// The checkpoint must be a strict prefix of the program's flattened
	// strata order.
	res, err := core.Compile(g, a, core.Base())
	if err != nil {
		t.Fatal(err)
	}
	var order []graph.LayerID
	for _, s := range res.Program.Strata {
		order = append(order, s...)
	}
	for i, id := range cf.Completed {
		if order[i] != id {
			t.Fatalf("checkpoint[%d] = layer %d, execution order has %d", i, id, order[i])
		}
	}
}

func TestForwardingConfigsCheckpointNothingMidRun(t *testing.T) {
	// +Halo and +Stratum forward every intermediate through SPM — only
	// the final layer is stored to global memory. A mid-run core death
	// therefore loses everything (empty checkpoint): the exposure the
	// stratum trade-off buys its speed with, quantified by ablation A11.
	g := convNet(6)
	a := arch.Exynos2100Like()
	for _, opt := range []core.Options{core.Halo(), core.Stratum()} {
		clean, err := faultRun(t, g, a, opt, nil)
		if err != nil {
			t.Fatal(err)
		}
		_, err = faultRun(t, g, a, opt, &fault.Plan{
			Deaths: []fault.Death{{Core: 1, AtCycle: clean.Stats.TotalCycles / 2}},
		})
		var cf *CoreFailure
		if !errors.As(err, &cf) {
			t.Fatalf("%s: expected *CoreFailure, got %v", opt.Name(), err)
		}
		if len(cf.Completed) != 0 {
			t.Errorf("%s: mid-run death checkpointed %d layers, want 0 (SPM-only intermediates)",
				opt.Name(), len(cf.Completed))
		}
	}
}

func TestDeathAfterCompletionIsHarmless(t *testing.T) {
	g := convNet(3)
	a := arch.Exynos2100Like()
	clean, err := faultRun(t, g, a, core.Base(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := faultRun(t, g, a, core.Base(), &fault.Plan{
		Deaths: []fault.Death{{Core: 0, AtCycle: clean.Stats.TotalCycles * 10}},
	})
	if err != nil {
		t.Fatalf("death after completion failed the run: %v", err)
	}
	if out.Stats.TotalCycles != clean.Stats.TotalCycles {
		t.Errorf("latency changed: %.0f vs %.0f", out.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
}

func TestDeathOfUnassignedCoreIsHarmless(t *testing.T) {
	// A placement on cores {0, 1} must survive core 2 dying.
	global := arch.Exynos2100Like()
	p := compileOn(t, convNet(3), global, []int{0, 1})
	out, err := RunConcurrent(global, []Placement{p}, Config{
		Faults: &fault.Plan{Deaths: []fault.Death{{Core: 2, AtCycle: 10}}},
	})
	if err != nil {
		t.Fatalf("unassigned core death failed the run: %v", err)
	}
	if out.Stats.TotalCycles <= 0 {
		t.Error("run did not complete")
	}
}

func TestDMARetriesExhaustedFailsCore(t *testing.T) {
	g := convNet(3)
	a := arch.Exynos2100Like()
	_, err := faultRun(t, g, a, core.Base(), &fault.Plan{
		Seed: 3, DropRate: 0.9, MaxRetries: 1,
	})
	var cf *CoreFailure
	if !errors.As(err, &cf) {
		t.Fatalf("expected *CoreFailure, got %v", err)
	}
	if cf.Kind != FailDMAExhausted {
		t.Errorf("kind = %v, want %v", cf.Kind, FailDMAExhausted)
	}
	if cf.Partial.PerCore[cf.Core].Retries < 2 {
		t.Errorf("failed core retried %d times, want >= 2", cf.Partial.PerCore[cf.Core].Retries)
	}
}

func TestInvalidPlanRejected(t *testing.T) {
	g := convNet(2)
	if _, err := faultRun(t, g, arch.Exynos2100Like(), core.Base(),
		&fault.Plan{DropRate: 1.5}); err == nil {
		t.Error("drop rate 1.5 accepted")
	}
}

func TestLatencyMicrosGuardsBadClock(t *testing.T) {
	s := &Stats{TotalCycles: 1300}
	if got := s.LatencyMicros(1300); got != 1 {
		t.Errorf("LatencyMicros(1300) = %g", got)
	}
	if got := s.LatencyMicros(0); got != 0 {
		t.Errorf("LatencyMicros(0) = %g, want 0", got)
	}
	if got := s.LatencyMicros(-5); got != 0 {
		t.Errorf("LatencyMicros(-5) = %g, want 0", got)
	}
}

// TestConcurrentFaultStress exercises fault-injected simulations from
// many goroutines sharing one compiled program — the race-detector
// target for CI. Each seed is run twice and must agree with itself.
func TestConcurrentFaultStress(t *testing.T) {
	g := convNet(3)
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			p := &fault.Plan{
				Seed:      seed,
				DropRate:  0.08,
				Throttles: []fault.Throttle{{Core: int(seed % 3), AtCycle: 5000, Factor: 0.6}},
			}
			first, err := Run(res.Program, Config{Faults: p})
			if err != nil {
				errs <- err
				return
			}
			second, err := Run(res.Program, Config{Faults: p})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(first.Stats, second.Stats) {
				errs <- errors.New("stats diverged for identical seed")
			}
		}(uint64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

package exec

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stratum"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// RunReference executes the whole graph over deterministic inputs and
// returns every layer's full output tensor.
func RunReference(g *graph.Graph) (map[graph.LayerID]*Tensor, error) {
	tensors := make(map[graph.LayerID]*Tensor, g.Len())
	for _, l := range g.Layers() {
		if l.IsInput() {
			t := NewTensor(l.OutShape)
			t.Fill(0xBEEF + uint64(l.ID))
			tensors[l.ID] = t
			continue
		}
		ins := make([]*View, len(l.Inputs))
		for j, pid := range l.Inputs {
			ins[j] = WholeView(tensors[pid])
		}
		v, err := Apply(l.Op, tensor.WholeRegion(l.OutShape), ins, g.InShapes(l), WeightsFor(l.ID))
		if err != nil {
			return nil, fmt.Errorf("exec: layer %s: %w", l.Name, err)
		}
		t := NewTensor(l.OutShape)
		v.CopyInto(t)
		tensors[l.ID] = t
	}
	return tensors, nil
}

// guard converts an out-of-view panic into an error tagged with ctx.
func guard(ctx string, f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%s: %v", ctx, r)
		}
	}()
	return f()
}

// ValidatePartitioned recomputes every layer from the partition plans'
// per-core regions — each core sees only the input slices the plan
// granted it — and compares the stitched result bit-exactly against
// the reference. A failure means the compiler's partition or halo
// arithmetic is wrong.
func ValidatePartitioned(g *graph.Graph, plans []partition.Plan, ref map[graph.LayerID]*Tensor) error {
	for _, l := range g.Layers() {
		if l.IsInput() {
			continue
		}
		stitched := NewTensor(l.OutShape)
		inShapes := g.InShapes(l)
		for _, sub := range plans[l.ID].Subs {
			if sub.Empty() {
				continue
			}
			sub := sub
			err := guard(fmt.Sprintf("layer %s core %d", l.Name, sub.Core), func() error {
				ins := make([]*View, len(l.Inputs))
				for j, pid := range l.Inputs {
					ins[j] = ViewOf(ref[pid], sub.In[j])
				}
				v, err := Apply(l.Op, sub.Out, ins, inShapes, WeightsFor(l.ID))
				if err != nil {
					return err
				}
				v.CopyInto(stitched)
				return nil
			})
			if err != nil {
				return err
			}
		}
		if !stitched.Equal(ref[l.ID]) {
			return fmt.Errorf("exec: layer %s: partitioned result differs from reference", l.Name)
		}
	}
	return nil
}

// ValidateTiled recomputes every layer tile by tile using the tiler's
// plans (as the per-core pipeline would) and compares against the
// reference.
func ValidateTiled(g *graph.Graph, plans []partition.Plan, tiler *tiling.Tiler, ref map[graph.LayerID]*Tensor) error {
	for _, l := range g.Layers() {
		if l.IsInput() {
			continue
		}
		stitched := NewTensor(l.OutShape)
		inShapes := g.InShapes(l)
		for core, sub := range plans[l.ID].Subs {
			if sub.Empty() {
				continue
			}
			tp, err := tiler.PlanSubLayer(l, inShapes, sub, core, tiling.Options{Direction: plans[l.ID].Direction})
			if err != nil {
				return fmt.Errorf("exec: layer %s core %d: %w", l.Name, core, err)
			}
			for _, tile := range tp.Tiles {
				tile := tile
				err := guard(fmt.Sprintf("layer %s core %d tile %d", l.Name, core, tile.Index), func() error {
					ins := make([]*View, len(l.Inputs))
					for j, pid := range l.Inputs {
						ins[j] = ViewOf(ref[pid], tile.In[j])
					}
					v, err := Apply(l.Op, tile.Out, ins, inShapes, WeightsFor(l.ID))
					if err != nil {
						return err
					}
					v.CopyInto(stitched)
					return nil
				})
				if err != nil {
					return err
				}
			}
		}
		if !stitched.Equal(ref[l.ID]) {
			return fmt.Errorf("exec: layer %s: tiled result differs from reference", l.Name)
		}
	}
	return nil
}

// ValidateStrata executes every stratum the way the NPU would: each
// core loads only the halo-expanded input of the stratum's top layer,
// then forwards locally through the chain with no external data. The
// planned portion of every layer is stitched and compared against the
// reference — proving the expanded regions carry sufficient halo for
// synchronization-free execution.
func ValidateStrata(g *graph.Graph, plans []partition.Plan, strata []stratum.Stratum, ref map[graph.LayerID]*Tensor) error {
	for si, s := range strata {
		stitched := make(map[graph.LayerID]*Tensor, len(s.Layers))
		for _, id := range s.Layers {
			stitched[id] = NewTensor(g.Layer(id).OutShape)
		}
		ncores := 0
		if len(s.Layers) > 0 {
			ncores = len(s.Expanded[s.Layers[0]])
		}
		for core := 0; core < ncores; core++ {
			var prev *View
			var prevID graph.LayerID = -1
			for li, id := range s.Layers {
				l := g.Layer(id)
				exp := s.Expanded[id][core]
				if exp.Empty() {
					prev, prevID = nil, -1
					continue
				}
				inShapes := g.InShapes(l)
				ins := make([]*View, len(l.Inputs))
				for j, pid := range l.Inputs {
					need := l.Op.InputRegion(exp, j, inShapes)
					if li > 0 && pid == prevID && prev != nil {
						// Feature-map forwarding inside the stratum:
						// only locally computed data is available.
						ins[j] = prev
					} else {
						ins[j] = ViewOf(ref[pid], need)
					}
				}
				var v *View
				err := guard(fmt.Sprintf("stratum %d layer %s core %d", si, l.Name, core), func() error {
					var err error
					v, err = Apply(l.Op, exp, ins, inShapes, WeightsFor(id))
					return err
				})
				if err != nil {
					return err
				}
				// Stitch only the planned (owned) portion.
				planned := plans[id].Subs[core].Out
				if !planned.Empty() {
					copyRegion(stitched[id], v, planned)
				}
				prev, prevID = v, id
			}
		}
		for _, id := range s.Layers {
			if !stitched[id].Equal(ref[id]) {
				return fmt.Errorf("exec: stratum %d layer %s: forwarded result differs from reference", si, g.Layer(id).Name)
			}
		}
	}
	return nil
}

// copyRegion copies region r of src (a view that contains r) into dst.
func copyRegion(dst *Tensor, src *View, r tensor.Region) {
	forEach(r, func(h, w, c int) {
		dst.Set(h, w, c, src.At(h, w, c))
	})
}

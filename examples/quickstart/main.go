// Quickstart: build a small CNN, compile it for the three-core NPU
// with all optimizations, simulate one inference, and print the
// latency report.
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

func main() {
	// A small network: conv -> relu -> depthwise block -> residual add
	// -> pooling -> classifier.
	g := npu.NewGraph("quickstart", npu.Int8)
	in := g.Input("input", npu.NewShape(64, 64, 3))
	c1 := g.MustAdd("conv1", npu.NewConv2D(3, 3, 2, 2, 32,
		npu.SamePad(npu.NewShape(64, 64, 3), 3, 3, 2, 2, 1, 1)), in)
	r1 := g.MustAdd("relu1", npu.Activation{Func: npu.ReLU}, c1)
	dw := g.MustAdd("dw", npu.NewDepthwiseConv2D(3, 3, 1, 1,
		npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), r1)
	pw := g.MustAdd("pw", npu.NewConv2D(1, 1, 1, 1, 32, npu.Padding{}), dw)
	add := g.MustAdd("add", npu.Add{Arity: 2}, r1, pw)
	pool := g.MustAdd("pool", npu.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, add)
	gap := g.MustAdd("gap", npu.GlobalAvgPool{}, pool)
	fc := g.MustAdd("fc", npu.FullyConnected{OutC: 10}, gap)
	g.MustAdd("softmax", npu.Softmax{}, fc)

	// Compile for the paper's three-core platform with the full
	// optimization stack (+Stratum = halo-exchange + halo-first +
	// forwarding + stratum construction), then simulate.
	res, err := npu.Compile(g, npu.Exynos2100Like(), npu.Stratum())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := npu.Simulate(res, false)
	if err != nil {
		log.Fatal(err)
	}
	rep.Config = npu.Stratum().Name()
	fmt.Print(rep)

	// Verify the compiler's partition/halo math numerically: the
	// partitioned, tiled, and stratum executions must match a whole-
	// graph reference bit for bit.
	if err := npu.Validate(g, res); err != nil {
		log.Fatal(err)
	}
	fmt.Println("numeric validation: partitioned == tiled == strata == reference ✓")
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// ssdHead appends an SSDLite prediction head (depthwise-separable
// class and box convolutions) to one feature map. The per-scale
// outputs are graph outputs; post-processing (anchor decoding, NMS)
// runs on the CPU and is outside the NPU workload.
func ssdHead(b *builder, name string, in graph.LayerID, anchors, classes int) {
	cls := b.dwconv(name+"_cls_dw", in, 3, 1)
	b.convLinear(name+"_cls", cls, 1, 1, anchors*classes)
	box := b.dwconv(name+"_box_dw", in, 3, 1)
	b.convLinear(name+"_box", box, 1, 1, anchors*4)
}

// MobileNetV2SSD builds SSDLite with a MobileNetV2 backbone
// (300x300x3, INT8): predictions are taken from the block-13 expansion
// feature (19x19) and the backbone output (10x10), plus four extra
// feature levels down to 1x1.
func MobileNetV2SSD() *graph.Graph {
	b := newBuilder("MobileNetV2-SSD", tensor.Int8)
	in := b.input(tensor.NewShape(300, 300, 3))

	// Backbone with a tap at the block-13 expansion.
	x := b.conv("conv1", in, 3, 2, 32)
	var tap19 graph.LayerID
	blk := 0
	for _, spec := range mobileNetV2Specs {
		for r := 0; r < spec.n; r++ {
			stride := spec.s
			if r > 0 {
				stride = 1
			}
			name := fmt.Sprintf("block%d", blk)
			inC := b.shape(x).C
			y := x
			if spec.t != 1 {
				y = b.conv(name+"_expand", y, 1, 1, inC*spec.t)
				if blk == 13 {
					tap19 = y // 19x19x576 feature for the first head
				}
			}
			y = b.dwconv(name+"_dw", y, 3, stride)
			y = b.convLinear(name+"_project", y, 1, 1, spec.c)
			if stride == 1 && inC == spec.c {
				y = b.add(name+"_add", x, y)
			}
			x = y
			blk++
		}
	}
	x = b.conv("conv_last", x, 1, 1, 1280) // 10x10x1280

	// Extra SSD feature layers: 10 -> 5 -> 3 -> 2 -> 1.
	extras := x
	feats := []graph.LayerID{tap19, x}
	for i, c := range []int{512, 256, 256, 128} {
		name := fmt.Sprintf("extra%d", i)
		e := b.conv(name+"_1x1", extras, 1, 1, c/2)
		e = b.dwconv(name+"_dw", e, 3, 2)
		e = b.conv(name+"_pw", e, 1, 1, c)
		extras = e
		feats = append(feats, e)
	}

	classes := 91 // COCO
	for i, f := range feats {
		anchors := 6
		if i == 0 {
			anchors = 3
		}
		ssdHead(b, fmt.Sprintf("head%d", i), f, anchors, classes)
	}
	return b.g
}

// tuckerBlock is MobileDet's Tucker (compressed regular) block: a 1x1
// compression convolution followed by a 3x3 regular convolution with
// linear output, with a residual when shapes allow.
func tuckerBlock(b *builder, name string, in graph.LayerID, compress, outC int) graph.LayerID {
	inC := b.shape(in).C
	x := b.conv(name+"_compress", in, 1, 1, compress)
	x = b.convLinear(name+"_regular", x, 3, 1, outC)
	if inC == outC {
		x = b.add(name+"_add", in, x)
	}
	return x
}

// fusedBlock is MobileDet's fused inverted bottleneck: the 1x1
// expansion and 3x3 depthwise are fused into one regular 3x3
// expansion convolution, followed by a 1x1 linear projection.
func fusedBlock(b *builder, name string, in graph.LayerID, expand, outC, stride int) graph.LayerID {
	inC := b.shape(in).C
	x := b.conv(name+"_fused", in, 3, stride, inC*expand)
	x = b.convLinear(name+"_project", x, 1, 1, outC)
	if stride == 1 && inC == outC {
		x = b.add(name+"_add", in, x)
	}
	return x
}

// ibnBlock is a standard inverted bottleneck (as in MobileNetV2).
func ibnBlock(b *builder, name string, in graph.LayerID, expand, outC, stride int) graph.LayerID {
	return invertedResidual(b, name, in, expand, outC, stride)
}

// MobileDetSSD builds a MobileDet-DSP-style detector (320x320x3,
// INT8): a stem convolution, Tucker blocks early, fused inverted
// bottlenecks in the middle stages (the regular-convolution-heavy mix
// MobileDet's NAS found optimal for DSP/NPU targets), and an SSDLite
// head. Channel widths follow the published MobileDet-DSP table;
// per-block expansion ratios are rounded to the dominant values.
func MobileDetSSD() *graph.Graph {
	b := newBuilder("MobileDet-SSD", tensor.Int8)
	in := b.input(tensor.NewShape(320, 320, 3))

	x := b.conv("conv1", in, 3, 2, 32) // 160x160x32
	x = tuckerBlock(b, "tucker0", x, 8, 16)

	// Stage 1: 160 -> 80.
	x = fusedBlock(b, "fused1a", x, 8, 24, 2)
	for i := 0; i < 3; i++ {
		x = tuckerBlock(b, fmt.Sprintf("tucker1%c", 'a'+i), x, 8, 24)
	}

	// Stage 2: 80 -> 40.
	x = fusedBlock(b, "fused2a", x, 8, 40, 2)
	for i := 0; i < 3; i++ {
		x = fusedBlock(b, fmt.Sprintf("fused2%c", 'b'+i), x, 4, 40, 1)
	}

	// Stage 3: 40 -> 20.
	x = ibnBlock(b, "ibn3a", x, 8, 64, 2)
	x = ibnBlock(b, "ibn3b", x, 4, 64, 1)
	x = fusedBlock(b, "fused3c", x, 4, 64, 1)
	x = fusedBlock(b, "fused3d", x, 4, 64, 1)

	// Stage 4: stays 20, wider.
	x = ibnBlock(b, "ibn4a", x, 8, 120, 1)
	x = ibnBlock(b, "ibn4b", x, 4, 120, 1)
	x = ibnBlock(b, "ibn4c", x, 8, 120, 1)
	x = ibnBlock(b, "ibn4d", x, 8, 120, 1)
	tap20 := x // 20x20 feature

	// Stage 5: 20 -> 10.
	x = ibnBlock(b, "ibn5a", x, 8, 160, 2)
	x = ibnBlock(b, "ibn5b", x, 4, 160, 1)
	x = ibnBlock(b, "ibn5c", x, 4, 160, 1)
	x = ibnBlock(b, "ibn5d", x, 8, 240, 1)

	feats := []graph.LayerID{tap20, x}
	extras := x
	for i, c := range []int{256, 256, 128, 128} {
		name := fmt.Sprintf("extra%d", i)
		e := b.conv(name+"_1x1", extras, 1, 1, c/2)
		e = b.dwconv(name+"_dw", e, 3, 2)
		e = b.conv(name+"_pw", e, 1, 1, c)
		extras = e
		feats = append(feats, e)
	}

	classes := 91
	for i, f := range feats {
		anchors := 6
		if i == 0 {
			anchors = 3
		}
		ssdHead(b, fmt.Sprintf("head%d", i), f, anchors, classes)
	}
	return b.g
}

// Package serve is the long-running JSON/HTTP front end of the
// compiler+simulator: npusim -serve exposes compile-and-simulate
// requests over the Table 2 benchmark models (and serialized custom
// graphs) as a service with serving-grade robustness — bounded
// admission with load shedding, per-request deadlines threaded as
// context cancellation through the compile pipeline and both sim
// engines, panic isolation per request, typed-error to HTTP-status
// mapping, and graceful drain on shutdown.
//
// Endpoints:
//
//	POST /run      compile + simulate one request (JSON body, RunRequest)
//	POST /tenants  co-schedule a multi-tenant serving scenario (TenantsRequest)
//	GET  /healthz  liveness: 200 while the process is up
//	GET  /readyz   readiness: 200 while accepting, 503 once draining
//	GET  /stats    counters, queue depths, latency percentiles (JSON)
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/recovery"
	"repro/internal/serialize"
	"repro/internal/sim"
	"repro/internal/tenancy"
	"repro/internal/tiling"
)

// Options configures a Server. The zero value picks sensible defaults.
type Options struct {
	// Concurrency is the number of requests compiled/simulated at
	// once. Default: GOMAXPROCS.
	Concurrency int
	// Queue is how many admitted requests may wait for an execution
	// slot beyond the Concurrency in flight. A request arriving with
	// the queue full is shed with 429 + Retry-After. Default:
	// 2*Concurrency.
	Queue int
	// DefaultTimeout bounds requests that do not set TimeoutMS.
	// Default: 30s.
	DefaultTimeout time.Duration
	// MaxBodyBytes bounds the request body (custom graphs can be
	// large, but not unbounded). Default: 16 MiB.
	MaxBodyBytes int64
	// Logger receives request errors and recovered panics. nil
	// discards (tests); the CLI passes log.Default().
	Logger *log.Logger
}

func (o *Options) fill() {
	if o.Concurrency <= 0 {
		o.Concurrency = runtime.GOMAXPROCS(0)
	}
	if o.Queue <= 0 {
		o.Queue = 2 * o.Concurrency
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.Logger == nil {
		o.Logger = log.New(io.Discard, "", 0)
	}
}

// RunRequest is the POST /run body. Exactly one of Model and Graph
// must be set.
type RunRequest struct {
	// Model names a built-in benchmark network (Table 2 plus the
	// extra zoo): "MobileNetV2", "ResNet50", ...
	Model string `json:",omitempty"`
	// Graph is a serialized custom graph (the npuc -o / serialize
	// package JSON format).
	Graph json.RawMessage `json:",omitempty"`
	// Cores selects the architecture: 1 = single-core baseline, 3 =
	// Exynos-2100-like (default), n = homogeneous n-core.
	Cores int `json:",omitempty"`
	// Config is the optimization configuration: "base", "halo", or
	// "stratum" (default).
	Config string `json:",omitempty"`
	// Partition optionally forces a partitioning policy: "adaptive"
	// (default), "spatial", "channel".
	Partition string `json:",omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 uses
	// the server default. The deadline cancels the request wherever it
	// is — queued, compiling, or mid-simulation.
	TimeoutMS int `json:",omitempty"`
	// Faults optionally injects faults into the simulation, in
	// fault.ParseSpec syntax ("drop=0.02,kill=2@400000,hang=1@30000").
	Faults string `json:",omitempty"`
	// FaultSeed seeds the fault plan's probabilistic decisions.
	FaultSeed uint64 `json:",omitempty"`
	// WatchdogCycles arms the simulator's progress watchdog: every this
	// many simulated cycles, cores with pending work are checked for
	// forward progress, so a silent hang becomes a typed hang_detected
	// failure instead of a deadline miss. 0 leaves the watchdog off.
	WatchdogCycles float64 `json:",omitempty"`
	// Recover degrades instead of failing: when a core dies or the
	// watchdog detects a hang, the unexecuted suffix is re-mapped onto
	// the surviving cores and the request completes 200 with
	// Degraded=true and merged (wasted + recovered) statistics. False
	// keeps the typed 422 failure.
	Recover bool `json:",omitempty"`
}

// RunResponse is the POST /run success body. The cycle-level fields
// are bit-exact engine outputs (JSON float64 round-trips exactly), so
// clients can compare served results against direct library runs.
type RunResponse struct {
	Model         string
	Config        string
	Cores         int
	TotalCycles   float64
	LatencyMicros float64
	Barriers      int
	Instrs        int
	Fallback      string
	CacheHit      bool
	CompileMS     float64 `json:",omitempty"`
	ElapsedMS     float64
	// Degraded reports that the run lost cores mid-request and
	// completed via recovery on the survivors (RunRequest.Recover);
	// DeadCores lists the cores retired, in failure order. TotalCycles
	// then covers the wasted attempts, re-dispatch, and the final run.
	Degraded  bool  `json:",omitempty"`
	DeadCores []int `json:",omitempty"`
	// Corruptions counts strata whose boundary checksums caught flipped
	// DMA payloads (fault spec flip=RATE). The run still completes.
	Corruptions int `json:",omitempty"`
}

// TenantsRequest is the POST /tenants body: a multi-tenant serving
// scenario co-scheduled on one simulated platform. The success reply
// is the tenancy report JSON (per-tenant SLO hit rates, interference,
// remap counts) — deterministic for a given request.
type TenantsRequest struct {
	// Spec is the tenant list in tenancy.ParseSpec syntax:
	// "cam=MobileNetV2:prio=2:slo=9000,seg=DeepLabV3+:arrive=5000".
	Spec string
	// HorizonUS is the simulated serving window in microseconds; 0
	// picks the tenancy default (20 ms).
	HorizonUS float64 `json:",omitempty"`
	// Cores selects the architecture as in RunRequest (default 3).
	Cores int `json:",omitempty"`
	// Config is the optimization configuration (default "stratum").
	Config string `json:",omitempty"`
	// TimeoutMS is the per-request deadline in milliseconds; 0 uses
	// the server default.
	TimeoutMS int `json:",omitempty"`
}

// ErrorResponse is the body of every non-2xx /run reply.
type ErrorResponse struct {
	Error string
	// Kind classifies the failure: "bad_request", "unfit",
	// "spm_overflow", "cannot_fit", "core_failure", "hang_detected",
	// "deadline", "canceled", "queue_full", "draining", "panic",
	// "internal".
	Kind string
	// Retryable hints whether the same request may succeed later.
	Retryable bool
}

// Stats is the GET /stats body.
type Stats struct {
	Accepted  int64
	Rejected  int64
	Completed int64
	Failed    int64
	Canceled  int64
	Panics    int64
	InFlight  int64
	Queued    int64

	Concurrency int
	QueueLimit  int
	Draining    bool

	CompileCacheHits   int64
	CompileCacheMisses int64

	Latency metrics.HistogramSnapshot
}

// Server is the serving state machine. Create with New, expose with
// Handler (or ListenAndServe), stop with Shutdown.
type Server struct {
	opts Options
	mux  *http.ServeMux

	sem      chan struct{} // execution slots (capacity Concurrency)
	queued   atomic.Int64  // admitted, waiting or executing
	inflight atomic.Int64  // holding a slot

	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	panics    atomic.Int64

	latency metrics.Histogram

	draining  atomic.Bool
	drainCh   chan struct{}
	drainOnce sync.Once

	mu      sync.Mutex // guards httpSrv (set by ListenAndServe, read by Shutdown)
	httpSrv *http.Server

	// beforeExecute, when set, runs at the top of every execution
	// (in-package tests inject panics and delays here).
	beforeExecute func(*RunRequest)
}

// New returns a ready Server.
func New(opts Options) *Server {
	opts.fill()
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, opts.Concurrency),
		drainCh: make(chan struct{}),
	}
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/tenants", s.handleTenants)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// Handler returns the HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves on addr until Shutdown. It returns nil after
// a clean drain (http.ErrServerClosed is mapped to nil).
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{Addr: addr, Handler: s.mux}
	s.mu.Lock()
	s.httpSrv = srv
	draining := s.draining.Load()
	s.mu.Unlock()
	if draining {
		// Shutdown won the race before we started listening.
		return nil
	}
	err := srv.ListenAndServe()
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown stops admissions (new /run requests get 503, /readyz flips
// to 503) and drains: it returns once every in-flight request has
// finished or ctx expires. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		close(s.drainCh)
	})
	s.mu.Lock()
	srv := s.httpSrv
	s.mu.Unlock()
	if srv != nil {
		return srv.Shutdown(ctx)
	}
	for s.queued.Load() > 0 {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(time.Millisecond):
		}
	}
	return nil
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	hits, misses := core.CacheStats()
	return Stats{
		Accepted:           s.accepted.Load(),
		Rejected:           s.rejected.Load(),
		Completed:          s.completed.Load(),
		Failed:             s.failed.Load(),
		Canceled:           s.canceled.Load(),
		Panics:             s.panics.Load(),
		InFlight:           s.inflight.Load(),
		Queued:             s.queued.Load() - s.inflight.Load(),
		Concurrency:        s.opts.Concurrency,
		QueueLimit:         s.opts.Queue,
		Draining:           s.draining.Load(),
		CompileCacheHits:   hits,
		CompileCacheMisses: misses,
		Latency:            s.latency.Snapshot(),
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// retryAfterSeconds is the single source of the Retry-After header for
// every shedding path — the drain 503s (/run and /readyz) and the
// queue-full 429s: the estimated time for the current backlog to drain
// through the executing slots, from the observed mean request latency,
// rounded up to whole seconds and clamped to [1, 30]. With no latency
// history yet the estimate is the 1-second floor.
func (s *Server) retryAfterSeconds() int {
	mean := s.latency.Mean()
	if mean <= 0 {
		return 1
	}
	backlog := s.queued.Load()
	conc := int64(s.opts.Concurrency)
	waves := (backlog + conc - 1) / conc
	if waves < 1 {
		waves = 1
	}
	secs := int((time.Duration(waves)*mean + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Stats())
}

// handleRun is the admission + execution state machine:
//
//	reject (draining)  -> 503 + Retry-After
//	reject (queue full)-> 429 + Retry-After
//	parse error        -> 400
//	wait for slot      -> canceled while queued: 504/499; drain: 503
//	execute            -> success 200, typed failure per errStatus,
//	                      panic 500 (recovered, logged, process lives)
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	req, err := s.decodeRequest(r)
	if err != nil {
		s.rejected.Add(1)
		writeErr(s, w, http.StatusBadRequest, "bad_request", err, false, 0)
		return
	}
	s.serveAdmitted(w, r, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return s.execute(ctx, req)
	})
}

// handleTenants runs a multi-tenant co-scheduling scenario through the
// same bounded-admission state machine as /run.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()

	req, err := s.decodeTenantsRequest(r)
	if err != nil {
		s.rejected.Add(1)
		writeErr(s, w, http.StatusBadRequest, "bad_request", err, false, 0)
		return
	}
	s.serveAdmitted(w, r, req.TimeoutMS, func(ctx context.Context) (any, error) {
		return s.executeTenants(ctx, req)
	})
}

// admit performs the shed-before-decode steps shared by every POST
// endpoint: method check, drain shedding, and bounded admission — at
// most Concurrency executing plus Queue waiting; beyond that, shed
// immediately, since a deadline-bound client is better served by a
// fast 429 than by queueing past its deadline. When ok, the caller
// must defer release.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if r.Method != http.MethodPost {
		writeErr(s, w, http.StatusMethodNotAllowed, "bad_request",
			fmt.Errorf("use POST"), false, 0)
		return nil, false
	}
	if s.draining.Load() {
		s.rejected.Add(1)
		writeErr(s, w, http.StatusServiceUnavailable, "draining",
			errors.New("server is draining"), true, s.retryAfterSeconds())
		return nil, false
	}
	if depth := s.queued.Add(1); depth > int64(s.opts.Concurrency+s.opts.Queue) {
		s.queued.Add(-1)
		s.rejected.Add(1)
		writeErr(s, w, http.StatusTooManyRequests, "queue_full",
			fmt.Errorf("admission queue full (%d executing + %d queued)",
				s.opts.Concurrency, s.opts.Queue), true, s.retryAfterSeconds())
		return nil, false
	}
	return func() { s.queued.Add(-1) }, true
}

// elapsedSetter lets serveAdmitted stamp the measured wall time onto
// response types that report it.
type elapsedSetter interface{ setElapsed(time.Duration) }

func (r *RunResponse) setElapsed(d time.Duration) {
	r.ElapsedMS = float64(d) / float64(time.Millisecond)
}

// serveAdmitted finishes an admitted, decoded request: it waits for an
// execution slot under the request deadline, runs exec, and writes the
// JSON reply — the execution half of the state machine every POST
// endpoint shares.
func (s *Server) serveAdmitted(w http.ResponseWriter, r *http.Request, timeoutMS int, exec func(context.Context) (any, error)) {
	timeout := s.opts.DefaultTimeout
	if timeoutMS > 0 {
		timeout = time.Duration(timeoutMS) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Wait for an execution slot. The deadline keeps ticking while
	// queued, and a drain releases every waiter.
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.rejected.Add(1)
		code, kind, retryable := ctxStatus(ctx.Err())
		writeErr(s, w, code, kind, fmt.Errorf("expired while queued: %w", ctx.Err()), retryable, 0)
		return
	case <-s.drainCh:
		s.rejected.Add(1)
		writeErr(s, w, http.StatusServiceUnavailable, "draining",
			errors.New("server is draining"), true, s.retryAfterSeconds())
		return
	}
	s.accepted.Add(1)
	s.inflight.Add(1)
	start := time.Now()
	defer func() {
		s.inflight.Add(-1)
		<-s.sem
	}()

	resp, err := exec(ctx)
	elapsed := time.Since(start)
	if err != nil {
		code, kind, retryable := errStatus(err)
		switch kind {
		case "canceled", "deadline":
			s.canceled.Add(1)
		default:
			s.failed.Add(1)
		}
		writeErr(s, w, code, kind, err, retryable, 0)
		return
	}
	s.completed.Add(1)
	s.latency.Observe(elapsed)
	if es, ok := resp.(elapsedSetter); ok {
		es.setElapsed(elapsed)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// decodeRequest parses and validates the POST body.
func (s *Server) decodeRequest(r *http.Request) (*RunRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if (req.Model == "") == (len(req.Graph) == 0) {
		return nil, errors.New("exactly one of Model and Graph must be set")
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative TimeoutMS %d", req.TimeoutMS)
	}
	if req.WatchdogCycles < 0 {
		return nil, fmt.Errorf("negative WatchdogCycles %g", req.WatchdogCycles)
	}
	if req.Cores == 0 {
		req.Cores = 3
	}
	if req.Config == "" {
		req.Config = "stratum"
	}
	return &req, nil
}

// execute runs one admitted request end to end. A panic anywhere in
// the pipeline is recovered here: the request fails with 500, the
// stack is logged, and the server keeps serving.
func (s *Server) execute(ctx context.Context, req *RunRequest) (resp *RunResponse, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.opts.Logger.Printf("serve: panic in /run (%s): %v\n%s", req.Model, p, debug.Stack())
			resp, err = nil, &panicError{val: p}
		}
	}()
	if s.beforeExecute != nil {
		s.beforeExecute(req)
	}

	g, err := requestGraph(req)
	if err != nil {
		return nil, badRequest(err)
	}
	a, err := cliutil.Arch(req.Cores)
	if err != nil {
		return nil, badRequest(err)
	}
	opt, err := cliutil.Config(req.Config)
	if err != nil {
		return nil, badRequest(err)
	}
	if req.Partition != "" {
		mode, err := cliutil.Mode(req.Partition)
		if err != nil {
			return nil, badRequest(err)
		}
		opt.Partitioning = mode
	}
	var plan *fault.Plan
	if req.Faults != "" {
		plan, err = fault.ParseSpec(req.Faults, req.FaultSeed)
		if err != nil {
			return nil, badRequest(err)
		}
	}

	hit := core.Cached(g, a, opt)
	t0 := time.Now()
	res, err := core.CompileCachedCtx(ctx, g, a, opt)
	if err != nil {
		return nil, err
	}
	compileMS := float64(time.Since(t0)) / float64(time.Millisecond)
	if hit {
		compileMS = 0
	}

	simCfg := sim.Config{Ctx: ctx, Faults: plan, WatchdogCycles: req.WatchdogCycles}
	out, err := sim.Run(res.Program, simCfg)
	if err != nil {
		if !req.Recover || !recoverable(err) {
			return nil, err
		}
		// Degrade instead of failing: retire the lost cores, re-map the
		// unexecuted suffix onto the survivors, and answer 200 with the
		// merged account. The original typed failure is preserved if the
		// survivors cannot finish either.
		rec, rerr := recovery.RecoverFrom(g, a, err, recovery.Options{Opt: opt, Sim: simCfg})
		if rerr != nil {
			if errors.Is(rerr, context.Canceled) || errors.Is(rerr, context.DeadlineExceeded) {
				return nil, rerr
			}
			return nil, err
		}
		merged := rec.MergedStats()
		return &RunResponse{
			Model:         g.Name,
			Config:        opt.Name(),
			Cores:         a.NumCores(),
			TotalCycles:   merged.TotalCycles,
			LatencyMicros: merged.LatencyMicros(a.ClockMHz),
			Barriers:      merged.Barriers,
			Instrs:        res.Program.NumInstrs(),
			Fallback:      res.Fallback.String(),
			CacheHit:      hit,
			CompileMS:     compileMS,
			Degraded:      true,
			DeadCores:     rec.DeadCores,
			Corruptions:   len(rec.Final.Corruptions),
		}, nil
	}
	return &RunResponse{
		Model:         g.Name,
		Config:        opt.Name(),
		Cores:         a.NumCores(),
		TotalCycles:   out.Stats.TotalCycles,
		LatencyMicros: out.Stats.LatencyMicros(a.ClockMHz),
		Barriers:      out.Stats.Barriers,
		Instrs:        res.Program.NumInstrs(),
		Fallback:      res.Fallback.String(),
		CacheHit:      hit,
		CompileMS:     compileMS,
		Corruptions:   len(out.Corruptions),
	}, nil
}

// recoverable reports whether an execution error is a lost-cores
// failure the in-request recovery path can degrade through.
func recoverable(err error) bool {
	var cf *sim.CoreFailure
	var hd *sim.HangDetected
	return errors.As(err, &cf) || errors.As(err, &hd)
}

// decodeTenantsRequest parses and validates the POST /tenants body.
func (s *Server) decodeTenantsRequest(r *http.Request) (*TenantsRequest, error) {
	body := http.MaxBytesReader(nil, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	var req TenantsRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("decode request: %w", err)
	}
	if req.Spec == "" {
		return nil, errors.New("Spec must be set")
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("negative TimeoutMS %d", req.TimeoutMS)
	}
	if req.Cores == 0 {
		req.Cores = 3
	}
	if req.Config == "" {
		req.Config = "stratum"
	}
	return &req, nil
}

// executeTenants runs one admitted /tenants request, with the same
// panic isolation as /run.
func (s *Server) executeTenants(ctx context.Context, req *TenantsRequest) (resp *tenancy.Report, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.panics.Add(1)
			s.opts.Logger.Printf("serve: panic in /tenants: %v\n%s", p, debug.Stack())
			resp, err = nil, &panicError{val: p}
		}
	}()

	tenants, err := tenancy.ParseSpec(req.Spec)
	if err != nil {
		return nil, badRequest(err)
	}
	a, err := cliutil.Arch(req.Cores)
	if err != nil {
		return nil, badRequest(err)
	}
	opt, err := cliutil.Config(req.Config)
	if err != nil {
		return nil, badRequest(err)
	}
	return tenancy.Run(a, tenants, tenancy.Options{
		HorizonUS: req.HorizonUS,
		Opt:       opt,
		OptSet:    true,
		Sim:       sim.Config{Ctx: ctx},
	})
}

// requestGraph builds the request's network: a named benchmark model
// or a serialized custom graph.
func requestGraph(req *RunRequest) (*graph.Graph, error) {
	if req.Model != "" {
		m, err := models.ByName(req.Model)
		if err != nil {
			return nil, err
		}
		return m.Build(), nil
	}
	g, err := serialize.LoadGraph(bytes.NewReader(req.Graph))
	if err != nil {
		return nil, fmt.Errorf("load graph: %w", err)
	}
	return g, nil
}

// panicError carries a recovered panic value as an error.
type panicError struct{ val any }

func (e *panicError) Error() string { return fmt.Sprintf("internal panic: %v", e.val) }

// badRequestError marks client errors (400) raised inside execute.
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

func badRequest(err error) error { return &badRequestError{err} }

// StatusClientClosedRequest is nginx's 499: the client canceled the
// request before a response was produced.
const StatusClientClosedRequest = 499

// errStatus maps an execution error to (HTTP status, kind, retryable).
// Deterministic configuration failures — the graph cannot be scheduled
// into SPM on this architecture — are 422s: retrying the identical
// request cannot succeed. Deadline and cancellation are 504/499.
// Anything unrecognized is a retryable 503 (fail open on transience).
func errStatus(err error) (code int, kind string, retryable bool) {
	var br *badRequestError
	if errors.As(err, &br) {
		return http.StatusBadRequest, "bad_request", false
	}
	var pe *panicError
	if errors.As(err, &pe) {
		return http.StatusInternalServerError, "panic", false
	}
	var unfit *core.UnfitError
	if errors.As(err, &unfit) {
		return http.StatusUnprocessableEntity, "unfit", false
	}
	var overflow *sim.SPMOverflowError
	if errors.As(err, &overflow) {
		return http.StatusUnprocessableEntity, "spm_overflow", false
	}
	var cannot *tiling.CannotFitError
	if errors.As(err, &cannot) {
		return http.StatusUnprocessableEntity, "cannot_fit", false
	}
	var cf *sim.CoreFailure
	if errors.As(err, &cf) {
		return http.StatusUnprocessableEntity, "core_failure", false
	}
	var hd *sim.HangDetected
	if errors.As(err, &hd) {
		return http.StatusUnprocessableEntity, "hang_detected", false
	}
	var cre *fault.CoreRangeError
	if errors.As(err, &cre) {
		return http.StatusBadRequest, "bad_request", false
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "deadline", true
	}
	if errors.Is(err, context.Canceled) {
		return StatusClientClosedRequest, "canceled", false
	}
	return http.StatusServiceUnavailable, "internal", true
}

// ctxStatus maps a context error (request died while queued).
func ctxStatus(err error) (code int, kind string, retryable bool) {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout, "deadline", true
	}
	return StatusClientClosedRequest, "canceled", false
}

// writeErr sends the JSON error body. retryAfter > 0 adds the header
// (seconds).
func writeErr(s *Server, w http.ResponseWriter, code int, kind string, err error, retryable bool, retryAfter int) {
	if code >= 500 || code == StatusClientClosedRequest {
		s.opts.Logger.Printf("serve: %d %s: %v", code, kind, err)
	}
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error(), Kind: kind, Retryable: retryable})
}

// Package metrics is the simulator's observability layer: it turns the
// event engine's hook samples (sim.Hook) into a structured Report —
// per-core and per-layer utilization breakdowns, an SPM occupancy
// profile, the bus demand-vs-granted contention series, and (when a
// compile result is attached) per-stratum halo-redundancy ratios and
// compile-pass timings.
//
// The paper's evaluation (Figures 10-13) explains where cycles go:
// halo redundancy, synchronization stalls, bus contention, SPM
// pressure. This package computes those explanations from a single
// observed run, and its cross-checks against the engine's own
// accounting (Collector.CrossCheck) are standing invariants that keep
// the two views consistent.
package metrics

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/spm"
)

// Collector is the canonical sim.Hook implementation: it records every
// sample in arrival order. Both slices hold plain values, so a
// Collector can outlive the run that fed it. Zero value is ready to
// use; Reset reuses the backing arrays across runs.
type Collector struct {
	Instrs []sim.InstrSample
	Bus    []sim.BusSample
}

// OnInstr implements sim.Hook.
func (c *Collector) OnInstr(s sim.InstrSample) { c.Instrs = append(c.Instrs, s) }

// OnBus implements sim.Hook.
func (c *Collector) OnBus(s sim.BusSample) { c.Bus = append(c.Bus, s) }

// Reset clears the collector for reuse, keeping capacity.
func (c *Collector) Reset() {
	c.Instrs = c.Instrs[:0]
	c.Bus = c.Bus[:0]
}

// Breakdown is a mutually exclusive attribution of one core's cycles.
// Overlapping engine activity is resolved by priority (compute > halo >
// load > store > stall), so the six fields sum to the run's total
// cycles: each instant is attributed to exactly one class.
type Breakdown struct {
	Compute float64 // MAC array running
	Halo    float64 // halo-exchange DMA (send or receive), nothing computing
	Load    float64 // input/kernel load DMA, nothing computing
	Store   float64 // output store DMA, nothing computing or loading
	Stall   float64 // waiting at a barrier with every engine quiet
	Idle    float64 // nothing in flight (pipeline drained or core finished)
}

// Busy returns the non-idle total.
func (b Breakdown) Busy() float64 {
	return b.Compute + b.Halo + b.Load + b.Store + b.Stall
}

// Fractions normalizes the breakdown by total. The fields of the
// result sum to 1 up to float rounding (the invariant tests hold this
// to 1e-9). A non-positive total returns the zero Breakdown.
func (b Breakdown) Fractions(total float64) Breakdown {
	if total <= 0 {
		return Breakdown{}
	}
	return Breakdown{
		Compute: b.Compute / total,
		Halo:    b.Halo / total,
		Load:    b.Load / total,
		Store:   b.Store / total,
		Stall:   b.Stall / total,
		Idle:    b.Idle / total,
	}
}

// EngineBusy is the raw per-engine occupancy of one core — overlapping
// engines counted independently, exactly the accumulation
// sim.CoreStats performs (ComputeBusy, LoadBusy incl. halo receives,
// StoreBusy incl. halo sends, SyncWait).
type EngineBusy struct {
	Compute float64
	Load    float64
	Store   float64
	Sync    float64
}

// CoreReport is one core's share of the run.
type CoreReport struct {
	Core        int
	TotalCycles float64
	// Exclusive is the priority-resolved attribution; its six fields sum
	// to TotalCycles.
	Exclusive Breakdown
	// Engines is the raw overlapping occupancy, bit-identical to the
	// engine's own sim.CoreStats accounting.
	Engines     EngineBusy
	BytesLoaded int64
	BytesStored int64
	MACs        int64
	Retries     int
	Finish      float64
}

// LayerReport aggregates one layer's activity across cores. The cycle
// fields are raw engine occupancy (layers overlap in the pipeline, so
// exclusive attribution is only defined per core, not per layer).
type LayerReport struct {
	Placement int
	Layer     int
	Name      string
	Compute   float64 // MAC-array cycles
	Load      float64 // input+kernel load cycles
	Store     float64 // output store cycles
	Halo      float64 // halo send+receive cycles
	Stall     float64 // barrier rendezvous cycles charged to this layer
	BytesIn   int64   // loaded (halo receives included)
	BytesOut  int64   // stored (halo sends included)
	MACs      int64
	Tiles     int // compute instructions executed
	Retries   int
}

// BusPoint is one step of the piecewise-constant bus allocation.
type BusPoint struct {
	At             float64
	Demand         float64
	Granted        float64
	Channels       int
	DirectGranted  float64
	DirectChannels int
}

// BusReport summarizes shared-bus behaviour over the run. The series
// is exact, not sampled: the engine emits a point at every
// water-filling rebuild and the allocation is constant in between.
type BusReport struct {
	// BusyCycles is time with at least one transfer on the shared bus.
	BusyCycles float64
	// ContendedCycles is time the bus ceiling actually bound someone
	// (granted < demand).
	ContendedCycles float64
	// AvgDemand and AvgGranted are time-averaged bytes/cycle over the
	// whole run (idle time included).
	AvgDemand  float64
	AvgGranted float64
	// DeficitByteCycles integrates demand-granted over time: the total
	// traffic delayed by contention, in byte-cycles.
	DeficitByteCycles float64
	PeakChannels      int
	PeakDemand        float64
	// CapacityBytesPerCycle is the bus ceiling, for normalizing.
	CapacityBytesPerCycle float64
	Series                []BusPoint
}

// SPMReport is one core's scratch-pad occupancy high-water mark.
type SPMReport struct {
	Placement     int
	Core          int // global core id
	PeakBytes     int64
	PeakAtCycle   float64
	CapacityBytes int64
	Buffers       int
	// Utilization is PeakBytes / CapacityBytes.
	Utilization float64
	// Fits reports PeakBytes <= CapacityBytes. The profiler measures
	// real cross-layer pipeline concurrency, so a false here flags a
	// schedule whose double-buffer budget was optimistic — the latent
	// overflow class this layer exists to surface (see ROADMAP).
	Fits bool
}

// Report is the structured outcome of one observed run. It marshals
// directly to JSON (npusim -metrics-out, npubench -metrics).
type Report struct {
	Model         string `json:",omitempty"`
	Config        string `json:",omitempty"`
	ClockMHz      int
	TotalCycles   float64
	LatencyMicros float64
	Barriers      int
	Cores         []CoreReport
	Layers        []LayerReport
	Bus           BusReport
	SPM           []SPMReport
	// Strata and Compile are attached by AttachCompile.
	Strata  []StratumReport `json:",omitempty"`
	Compile *CompileReport  `json:",omitempty"`
}

// instruction classes in exclusive-attribution priority order.
const (
	clsCompute = iota
	clsHalo
	clsLoad
	clsStore
	clsStall
	numClasses
)

func classOf(s *sim.InstrSample) int {
	switch s.Op {
	case plan.Compute:
		return clsCompute
	case plan.LoadHalo, plan.StoreHalo:
		return clsHalo
	case plan.LoadInput, plan.LoadKernel:
		return clsLoad
	case plan.Store:
		return clsStore
	default:
		return clsStall
	}
}

// BuildReport assembles the structured report for one run from the
// architecture, the placements simulated, the engine's stats (partial
// stats from a CoreFailure work too), and the collector that observed
// the run.
func BuildReport(a *arch.Arch, placements []sim.Placement, stats *sim.Stats, col *Collector) *Report {
	r := &Report{
		ClockMHz:      a.ClockMHz,
		TotalCycles:   stats.TotalCycles,
		LatencyMicros: stats.LatencyMicros(a.ClockMHz),
		Barriers:      stats.Barriers,
	}
	r.Cores = coreReports(a, stats, col)
	r.Layers = layerReports(placements, col)
	r.Bus = busReport(a, stats.TotalCycles, col)
	r.SPM = spmReports(a, placements, col)
	return r
}

// coreReports computes the exclusive attribution sweep and the raw
// engine sums for every core.
func coreReports(a *arch.Arch, stats *sim.Stats, col *Collector) []CoreReport {
	ncores := a.NumCores()
	total := stats.TotalCycles

	// Boundary events of every instruction interval, per core.
	type boundary struct {
		t     float64
		cls   int
		delta int
	}
	events := make([][]boundary, ncores)
	out := make([]CoreReport, ncores)
	for c := range out {
		out[c].Core = c
		out[c].TotalCycles = total
	}
	for i := range col.Instrs {
		s := &col.Instrs[i]
		c := s.Core
		st := &out[c]
		// Raw sums, accumulated in sample order — the engine retires
		// instructions in this same order, so these reproduce
		// sim.CoreStats bit-for-bit.
		dur := s.End - s.Start
		switch eng := s.Op.Engine(); eng {
		case plan.EngineCompute:
			st.Engines.Compute += dur
			st.MACs += s.MACs
		case plan.EngineLoad:
			st.Engines.Load += dur
			st.BytesLoaded += s.Bytes
		case plan.EngineStore:
			st.Engines.Store += dur
			st.BytesStored += s.Bytes
		default:
			st.Engines.Sync += dur
		}
		st.Retries += s.Retries
		if s.End > st.Finish {
			st.Finish = s.End
		}
		if s.End > s.Start {
			cls := classOf(s)
			events[c] = append(events[c], boundary{s.Start, cls, +1}, boundary{s.End, cls, -1})
		}
	}

	// Exclusive sweep per core: between consecutive boundary times the
	// active set is constant; the segment goes to the highest-priority
	// active class.
	for c := range out {
		evs := events[c]
		sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
		var active [numClasses]int
		var cls [numClasses]float64
		for i := 0; i < len(evs); {
			t := evs[i].t
			for i < len(evs) && evs[i].t == t {
				active[evs[i].cls] += evs[i].delta
				i++
			}
			if i >= len(evs) {
				break
			}
			width := evs[i].t - t
			for k := 0; k < numClasses; k++ {
				if active[k] > 0 {
					cls[k] += width
					break
				}
			}
		}
		b := Breakdown{Compute: cls[clsCompute], Halo: cls[clsHalo], Load: cls[clsLoad], Store: cls[clsStore], Stall: cls[clsStall]}
		// The sweep's busy sum can overshoot total by an ulp even though
		// no interval extends past the run; clamp the remainder so idle
		// never goes (meaninglessly) negative.
		if b.Idle = total - b.Busy(); b.Idle < 0 {
			b.Idle = 0
		}
		out[c].Exclusive = b
	}
	return out
}

// layerReports aggregates raw engine occupancy per (placement, layer).
func layerReports(placements []sim.Placement, col *Collector) []LayerReport {
	type key struct {
		placement int
		layer     int
	}
	agg := map[key]*LayerReport{}
	for i := range col.Instrs {
		s := &col.Instrs[i]
		k := key{s.Placement, int(s.Layer)}
		lr := agg[k]
		if lr == nil {
			lr = &LayerReport{Placement: s.Placement, Layer: int(s.Layer)}
			if k.placement < len(placements) {
				if g := placements[k.placement].Program.Graph; g != nil {
					lr.Name = g.Layer(s.Layer).Name
				}
			}
			agg[k] = lr
		}
		dur := s.End - s.Start
		switch s.Op {
		case plan.Compute:
			lr.Compute += dur
			lr.MACs += s.MACs
			lr.Tiles++
		case plan.LoadInput, plan.LoadKernel:
			lr.Load += dur
			lr.BytesIn += s.Bytes
		case plan.LoadHalo:
			lr.Halo += dur
			lr.BytesIn += s.Bytes
		case plan.Store:
			lr.Store += dur
			lr.BytesOut += s.Bytes
		case plan.StoreHalo:
			lr.Halo += dur
			lr.BytesOut += s.Bytes
		default:
			lr.Stall += dur
		}
		lr.Retries += s.Retries
	}
	out := make([]LayerReport, 0, len(agg))
	for _, lr := range agg {
		out = append(out, *lr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Placement != out[j].Placement {
			return out[i].Placement < out[j].Placement
		}
		return out[i].Layer < out[j].Layer
	})
	return out
}

// busReport integrates the piecewise-constant allocation series. The
// last sample extends to totalCycles (a clean run closes the series
// with an empty sample at the end; a failed run's series ends at the
// failure, when the last allocation was still in flight).
func busReport(a *arch.Arch, totalCycles float64, col *Collector) BusReport {
	br := BusReport{CapacityBytesPerCycle: a.BusBytesPerCycle}
	br.Series = make([]BusPoint, len(col.Bus))
	for i, s := range col.Bus {
		br.Series[i] = BusPoint{At: s.At, Demand: s.Demand, Granted: s.Granted,
			Channels: s.Channels, DirectGranted: s.DirectGranted, DirectChannels: s.DirectChannels}
		if s.Channels > br.PeakChannels {
			br.PeakChannels = s.Channels
		}
		if s.Demand > br.PeakDemand {
			br.PeakDemand = s.Demand
		}
		end := totalCycles
		if i+1 < len(col.Bus) {
			end = col.Bus[i+1].At
		}
		width := end - s.At
		if width <= 0 {
			continue
		}
		if s.Channels > 0 {
			br.BusyCycles += width
		}
		if s.Demand-s.Granted > 1e-9 {
			br.ContendedCycles += width
			br.DeficitByteCycles += (s.Demand - s.Granted) * width
		}
		br.AvgDemand += s.Demand * width
		br.AvgGranted += s.Granted * width
	}
	if totalCycles > 0 {
		br.AvgDemand /= totalCycles
		br.AvgGranted /= totalCycles
	}
	return br
}

// spmReports profiles scratch-pad occupancy per placement from the
// observed timeline and maps the results onto global cores.
func spmReports(a *arch.Arch, placements []sim.Placement, col *Collector) []SPMReport {
	// Global core -> placement-local core, per placement.
	localOf := make([]map[int]int, len(placements))
	for pi, pl := range placements {
		localOf[pi] = make(map[int]int, len(pl.Cores))
		for li, g := range pl.Cores {
			localOf[pi][g] = li
		}
	}
	perPlacement := make([][]sim.Event, len(placements))
	for i := range col.Instrs {
		s := &col.Instrs[i]
		if s.Placement < 0 || s.Placement >= len(placements) {
			continue
		}
		li, ok := localOf[s.Placement][s.Core]
		if !ok {
			continue
		}
		perPlacement[s.Placement] = append(perPlacement[s.Placement], sim.Event{
			Core: li, Index: s.Index, Op: s.Op, Layer: s.Layer, Tile: s.Tile,
			Start: s.Start, End: s.End, Retries: s.Retries,
		})
	}
	var out []SPMReport
	for pi, pl := range placements {
		profiles := spm.ProfileTimeline(pl.Program, perPlacement[pi])
		for li, p := range profiles {
			rep := SPMReport{
				Placement: pi, Core: pl.Cores[li],
				PeakBytes: p.PeakBytes, PeakAtCycle: p.PeakAtCycle,
				CapacityBytes: p.CapacityBytes, Buffers: p.Buffers,
				Fits: p.Fits(),
			}
			if p.CapacityBytes > 0 {
				rep.Utilization = float64(p.PeakBytes) / float64(p.CapacityBytes)
			}
			out = append(out, rep)
		}
	}
	return out
}

// CrossCheck verifies the report against the engine's own accounting
// and the architecture — the standing invariants future perf work must
// keep green:
//
//   - raw engine sums reproduce sim.CoreStats exactly (same values
//     accumulated in the same order);
//   - each core's exclusive fractions sum to 1 within 1e-9;
//   - the exclusive idle matches the engine's busy-interval idle
//     within tol cycles;
//   - SPM reports tell the truth about capacity: Fits must equal
//     PeakBytes <= the architecture's SPM size. (An over-capacity peak
//     is a real finding about the compiled schedule, not a metrics
//     bug; the invariant tests additionally pin Fits==true on every
//     model whose schedule stays in budget.)
//
// It returns the first violation found, nil when everything holds.
func (r *Report) CrossCheck(a *arch.Arch, stats *sim.Stats, tol float64) error {
	if len(r.Cores) != len(stats.PerCore) {
		return fmt.Errorf("metrics: %d core reports for %d cores", len(r.Cores), len(stats.PerCore))
	}
	for c, cr := range r.Cores {
		st := stats.PerCore[c]
		if cr.Engines.Compute != st.ComputeBusy || cr.Engines.Load != st.LoadBusy ||
			cr.Engines.Store != st.StoreBusy || cr.Engines.Sync != st.SyncWait {
			return fmt.Errorf("metrics: core %d engine sums %+v != engine stats {%v %v %v %v}",
				c, cr.Engines, st.ComputeBusy, st.LoadBusy, st.StoreBusy, st.SyncWait)
		}
		if cr.BytesLoaded != st.BytesLoaded || cr.BytesStored != st.BytesStored ||
			cr.MACs != st.MACs || cr.Retries != st.Retries {
			return fmt.Errorf("metrics: core %d traffic/compute totals disagree with engine stats", c)
		}
		if cr.TotalCycles > 0 {
			f := cr.Exclusive.Fractions(cr.TotalCycles)
			sum := f.Compute + f.Halo + f.Load + f.Store + f.Stall + f.Idle
			if d := sum - 1; d > 1e-9 || d < -1e-9 {
				return fmt.Errorf("metrics: core %d fractions sum to %.12f", c, sum)
			}
		}
		if d := cr.Exclusive.Idle - st.Idle; d > tol || d < -tol {
			return fmt.Errorf("metrics: core %d exclusive idle %.6f vs engine idle %.6f (tol %g)",
				c, cr.Exclusive.Idle, st.Idle, tol)
		}
	}
	for _, sp := range r.SPM {
		if sp.Core < 0 || sp.Core >= a.NumCores() {
			return fmt.Errorf("metrics: SPM report for core %d of %d", sp.Core, a.NumCores())
		}
		spmCap := a.Cores[sp.Core].SPMBytes
		if sp.CapacityBytes != spmCap {
			return fmt.Errorf("metrics: core %d SPM capacity %d reported, arch says %d", sp.Core, sp.CapacityBytes, spmCap)
		}
		if sp.Fits != (sp.PeakBytes <= spmCap) {
			return fmt.Errorf("metrics: core %d SPM Fits=%v but peak %d vs capacity %d", sp.Core, sp.Fits, sp.PeakBytes, spmCap)
		}
	}
	return nil
}

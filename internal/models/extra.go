package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// Extra returns additional well-known networks beyond the paper's
// Table 2, for broader compiler coverage: residual-heavy (ResNet-50)
// and dense-convolution-heavy (VGG-16) topologies.
func Extra() []Info {
	return []Info{
		{Name: "ResNet50", Category: "Classification", Input: tensor.NewShape(224, 224, 3), DType: tensor.Int8, Build: ResNet50},
		{Name: "VGG16", Category: "Classification", Input: tensor.NewShape(224, 224, 3), DType: tensor.Int8, Build: VGG16},
		{Name: "ShuffleNetV2", Category: "Classification", Input: tensor.NewShape(224, 224, 3), DType: tensor.Int8, Build: ShuffleNetV2},
		{Name: "TinyCNN", Category: "Classification", Input: tensor.NewShape(64, 64, 3), DType: tensor.Int8, Build: TinyCNN},
	}
}

// bottleneck appends one ResNet bottleneck block (1x1 reduce, 3x3,
// 1x1 expand) with an identity or projection shortcut.
func bottleneck(b *builder, name string, in graph.LayerID, mid, out, stride int) graph.LayerID {
	inC := b.shape(in).C
	x := b.conv(name+"_reduce", in, 1, stride, mid)
	x = b.conv(name+"_3x3", x, 3, 1, mid)
	x = b.convLinear(name+"_expand", x, 1, 1, out)

	shortcut := in
	if stride != 1 || inC != out {
		shortcut = b.convLinear(name+"_proj", in, 1, stride, out)
	}
	sum := b.add(name+"_add", shortcut, x)
	return b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU}, sum)
}

// ResNet50 builds the He et al. classifier (224x224x3): a 7x7 stem,
// four bottleneck stages of depth 3/4/6/3, and the classifier head.
func ResNet50() *graph.Graph {
	b := newBuilder("ResNet50", tensor.Int8)
	in := b.input(tensor.NewShape(224, 224, 3))

	x := b.conv("conv1", in, 7, 2, 64)  // 112x112x64
	x = b.maxpoolSame("pool1", x, 3, 2) // 56x56x64

	stages := []struct {
		blocks, mid, out, stride int
	}{
		{3, 64, 256, 1},
		{4, 128, 512, 2},
		{6, 256, 1024, 2},
		{3, 512, 2048, 2},
	}
	for si, st := range stages {
		for bi := 0; bi < st.blocks; bi++ {
			stride := 1
			if bi == 0 {
				stride = st.stride
			}
			x = bottleneck(b, fmt.Sprintf("res%d_%d", si+2, bi), x, st.mid, st.out, stride)
		}
	}
	b.classifierHead(x, 1000) // 7x7x2048 -> gap -> fc -> softmax
	return b.g
}

// VGG16 builds the Simonyan & Zisserman classifier (224x224x3) with
// the dense-classifier layers expressed as valid convolutions (7x7
// conv to 4096 instead of a flatten; identical arithmetic).
func VGG16() *graph.Graph {
	b := newBuilder("VGG16", tensor.Int8)
	in := b.input(tensor.NewShape(224, 224, 3))

	x := in
	cfg := []struct {
		convs, c int
	}{
		{2, 64}, {2, 128}, {3, 256}, {3, 512}, {3, 512},
	}
	for si, st := range cfg {
		for ci := 0; ci < st.convs; ci++ {
			x = b.conv(fmt.Sprintf("conv%d_%d", si+1, ci+1), x, 3, 1, st.c)
		}
		x = b.maxpool(fmt.Sprintf("pool%d", si+1), x, 2, 2)
	}
	// Classifier: 7x7x512 -> fc6 (as a VALID 7x7 conv) -> fc7 -> fc8.
	x = b.convValid("fc6", x, 7, 1, 4096)
	x = b.convValid("fc7", x, 1, 1, 4096)
	logits := b.convLinear("fc8", x, 1, 1, 1000)
	b.g.MustAdd("softmax", ops.Softmax{}, logits)
	return b.g
}

package npu_test

import (
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sim"
	"repro/npu"
)

func TestRunConcurrent(t *testing.T) {
	a := npu.Exynos2100Like()
	g1 := npu.BuildModel("MobileNetV2")
	g2 := npu.BuildModel("MobileNetV2")
	rep, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: g1, Cores: []int{0, 1}, Options: npu.Halo()},
		{Graph: g2, Cores: []int{2}, Options: npu.Halo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorkloadUS) != 2 {
		t.Fatalf("workload times = %v", rep.PerWorkloadUS)
	}
	for i, us := range rep.PerWorkloadUS {
		if us <= 0 {
			t.Errorf("workload %d time %f", i, us)
		}
	}
	// The 2-core placement must beat the 1-core placement for the
	// same network.
	if rep.PerWorkloadUS[0] >= rep.PerWorkloadUS[1] {
		t.Errorf("2-core run %.1fus >= 1-core run %.1fus", rep.PerWorkloadUS[0], rep.PerWorkloadUS[1])
	}
}

func TestRunConcurrentRejectsOverlap(t *testing.T) {
	a := npu.Exynos2100Like()
	g := npu.BuildModel("MobileNetV2")
	_, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: g, Cores: []int{0, 1}, Options: npu.Base()},
		{Graph: g, Cores: []int{1, 2}, Options: npu.Base()},
	})
	if err == nil {
		t.Fatal("overlapping cores accepted")
	}
	var cc *npu.CoreConflictError
	if !errors.As(err, &cc) {
		t.Fatalf("want *CoreConflictError, got %T: %v", err, err)
	}
	if cc.Core != 1 || cc.Owner != 0 || cc.Workload != 1 {
		t.Errorf("conflict fields = %+v", cc)
	}
}

func TestRunConcurrentRejectsOutOfRangeAndDuplicate(t *testing.T) {
	a := npu.Exynos2100Like()
	g := npu.BuildModel("TinyCNN")

	_, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: g, Cores: []int{5}, Options: npu.Base()},
	})
	var cc *npu.CoreConflictError
	if !errors.As(err, &cc) {
		t.Fatalf("out-of-range: want *CoreConflictError, got %T: %v", err, err)
	}
	if cc.Core != 5 || cc.Owner != -1 {
		t.Errorf("out-of-range fields = %+v", cc)
	}

	_, err = npu.RunConcurrent(a, []npu.Workload{
		{Graph: g, Cores: []int{0, 0}, Options: npu.Base()},
	})
	if !errors.As(err, &cc) {
		t.Fatalf("duplicate: want *CoreConflictError, got %T: %v", err, err)
	}
	if cc.Core != 0 || cc.Owner != 0 || cc.Workload != 0 {
		t.Errorf("duplicate fields = %+v", cc)
	}
}

// The concurrent path must honor caller deadlines the way the
// single-model RunCtx path does: a canceled context aborts promptly
// with a typed, classifiable error.
func TestRunConcurrentCtxCancellation(t *testing.T) {
	a := npu.Exynos2100Like()
	g1 := npu.BuildModel("MobileNetV2")
	g2 := npu.BuildModel("TinyCNN")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := npu.RunConcurrentCtx(ctx, a, []npu.Workload{
		{Graph: g1, Cores: []int{0, 1}, Options: npu.Halo()},
		{Graph: g2, Cores: []int{2}, Options: npu.Halo()},
	}, npu.SimConfig{})
	if err == nil {
		t.Fatal("canceled context did not abort the concurrent run")
	}
	if !errors.Is(err, npu.ErrCanceled) {
		t.Errorf("want ErrCanceled, got %v", err)
	}
}

// Concurrent runs must go through the fingerprint compile cache:
// re-running the identical (model, subset, options) placement performs
// zero fresh compiles.
func TestRunConcurrentUsesCompileCache(t *testing.T) {
	a := npu.Exynos2100Like()
	workloads := []npu.Workload{
		{Graph: npu.BuildModel("TinyCNN"), Cores: []int{0}, Options: npu.Halo()},
		{Graph: npu.BuildModel("ShuffleNetV2"), Cores: []int{1, 2}, Options: npu.Halo()},
	}
	if _, err := npu.RunConcurrent(a, workloads); err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := core.CacheStats()
	if _, err := npu.RunConcurrent(a, workloads); err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := core.CacheStats()
	if misses1 != misses0 {
		t.Errorf("identical concurrent run recompiled: %d fresh compiles", misses1-misses0)
	}
	if hits1-hits0 < 2 {
		t.Errorf("identical concurrent run hit the cache %d times, want >= 2", hits1-hits0)
	}
}

// perWorkloadPlacements builds distinct-size models so each workload's
// completion time is distinguishable, pinning that PerWorkloadUS (and
// Stats.ProgramCycles) indexes align with the input workload order.
func TestPerWorkloadOrderTwoTenants(t *testing.T) {
	a := npu.Exynos2100Like()
	big := npu.BuildModel("MobileNetV2")
	tiny := npu.BuildModel("TinyCNN")

	rep, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: big, Cores: []int{0, 1}, Options: npu.Halo()},
		{Graph: tiny, Cores: []int{2}, Options: npu.Halo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorkloadUS) != 2 {
		t.Fatalf("PerWorkloadUS = %v", rep.PerWorkloadUS)
	}
	// TinyCNN on one core is far faster than MobileNetV2 on two; if
	// the indexes were permuted, this inequality flips.
	if rep.PerWorkloadUS[1] >= rep.PerWorkloadUS[0] {
		t.Errorf("order broken: tiny workload [1] %.1fus >= big workload [0] %.1fus",
			rep.PerWorkloadUS[1], rep.PerWorkloadUS[0])
	}
	// Swap the inputs: the times must swap with them.
	swapped, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: tiny, Cores: []int{2}, Options: npu.Halo()},
		{Graph: big, Cores: []int{0, 1}, Options: npu.Halo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if swapped.PerWorkloadUS[0] != rep.PerWorkloadUS[1] || swapped.PerWorkloadUS[1] != rep.PerWorkloadUS[0] {
		t.Errorf("swapped inputs did not swap times: %v vs %v", swapped.PerWorkloadUS, rep.PerWorkloadUS)
	}
}

func TestPerWorkloadOrderThreeTenants(t *testing.T) {
	a := npu.Exynos2100Like()
	rep, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: npu.BuildModel("MobileNetV2"), Cores: []int{0}, Options: npu.Halo()},
		{Graph: npu.BuildModel("TinyCNN"), Cores: []int{1}, Options: npu.Halo()},
		{Graph: npu.BuildModel("ShuffleNetV2"), Cores: []int{2}, Options: npu.Halo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorkloadUS) != 3 {
		t.Fatalf("PerWorkloadUS = %v", rep.PerWorkloadUS)
	}
	if len(rep.Stats.ProgramCycles) != 3 {
		t.Fatalf("ProgramCycles = %v", rep.Stats.ProgramCycles)
	}
	for i, us := range rep.PerWorkloadUS {
		if want := rep.Stats.ProgramCycles[i] / float64(a.ClockMHz); us != want {
			t.Errorf("workload %d: PerWorkloadUS %.3f != ProgramCycles/clock %.3f", i, us, want)
		}
	}
	// TinyCNN (workload 1) is the smallest model; on identical-compute
	// cores it must finish first.
	if rep.PerWorkloadUS[1] >= rep.PerWorkloadUS[0] || rep.PerWorkloadUS[1] >= rep.PerWorkloadUS[2] {
		t.Errorf("TinyCNN at index 1 not fastest: %v", rep.PerWorkloadUS)
	}
}

// Under a partial kill (one placement's core dies), the typed
// CoreFailure's Partial stats must keep ProgramCycles aligned with the
// input workload order: the failed placement's index is reported, and
// the surviving placements' entries stay at their indexes.
func TestPerWorkloadOrderPartialKill(t *testing.T) {
	a := npu.Exynos2100Like()
	plan := &fault.Plan{Deaths: []fault.Death{{Core: 2, AtCycle: 1000}}}
	_, err := npu.RunConcurrentCtx(nil, a, []npu.Workload{
		{Graph: npu.BuildModel("TinyCNN"), Cores: []int{0, 1}, Options: npu.Halo()},
		{Graph: npu.BuildModel("MobileNetV2"), Cores: []int{2}, Options: npu.Halo()},
	}, npu.SimConfig{Faults: plan})
	if err == nil {
		t.Fatal("killed core did not fail the run")
	}
	var cf *sim.CoreFailure
	if !errors.As(err, &cf) {
		t.Fatalf("want *sim.CoreFailure, got %T: %v", err, err)
	}
	if cf.Core != 2 {
		t.Errorf("failed core = %d, want 2", cf.Core)
	}
	if cf.Placement != 1 {
		t.Errorf("failed placement = %d, want 1 (workload order)", cf.Placement)
	}
	if len(cf.Partial.ProgramCycles) != 2 {
		t.Fatalf("partial ProgramCycles = %v", cf.Partial.ProgramCycles)
	}
	// The failed placement (index 1) cannot have completed; its entry
	// is bounded by the failure time.
	if cf.Partial.ProgramCycles[1] > cf.AtCycle {
		t.Errorf("dead placement progressed past the kill: %.0f > %.0f",
			cf.Partial.ProgramCycles[1], cf.AtCycle)
	}
}

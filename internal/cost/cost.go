// Package cost provides the analytic machine cost model the compiler
// uses to balance partitions, size tiles, and compare redundant
// computation against synchronization (Algorithm 2's
// redundant_compute_cost and sync_cost).
//
// The paper derives these functions from per-operator measurements on
// the NPU; here they are derived from the arch description, which keeps
// them pluggable: calibrating to different silicon means changing only
// the Arch parameters.
package cost

import (
	"math"

	"repro/internal/arch"
	"repro/internal/tensor"
)

// Model evaluates costs against a specific architecture.
type Model struct {
	Arch *arch.Arch
}

// New returns a cost model for a.
func New(a *arch.Arch) *Model { return &Model{Arch: a} }

// macsPerCycle returns core's effective MAC throughput for dtype dt.
// INT16 halves the adder-tree throughput.
func (m *Model) macsPerCycle(core int, dt tensor.DType) float64 {
	r := float64(m.Arch.Cores[core].MACsPerCycle) * m.Arch.ComputeEfficiency
	if dt != tensor.Int8 {
		r /= 2
	}
	return r
}

// ComputeCycles returns the cycles core needs to execute macs
// multiply-accumulates at dtype dt.
func (m *Model) ComputeCycles(core int, macs int64, dt tensor.DType) int64 {
	if macs <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(macs) / m.macsPerCycle(core, dt)))
}

// DMACycles returns the cycles core needs to move bytes to or from
// global memory through its own DMA engine, ignoring bus contention
// (the simulator adds contention dynamically).
func (m *Model) DMACycles(core int, bytes int64) int64 {
	if bytes <= 0 {
		return 0
	}
	return int64(math.Ceil(float64(bytes) / m.Arch.Cores[core].DMABytesPerCycle))
}

// SyncCycles returns the modeled expected cost of one barrier across n
// cores, including the expectation of the runtime's release jitter.
func (m *Model) SyncCycles(n int) int64 {
	if n <= 1 {
		return 0
	}
	return m.Arch.SyncCost(n) + m.Arch.SyncJitterCycles/2
}

// LayerTimeOnCore estimates the time for one core to process a
// sub-layer with the given compute and traffic, assuming DMA overlaps
// compute (pipelined tiles): the slower of the two engines dominates.
func (m *Model) LayerTimeOnCore(core int, macs, bytes int64, dt tensor.DType) int64 {
	c := m.ComputeCycles(core, macs, dt)
	d := m.DMACycles(core, bytes)
	if c > d {
		return c
	}
	return d
}

// BalanceWeights returns per-core partitioning weights for a layer
// whose work scales along the split axis with macsPerUnit MACs and
// bytesPerUnit bytes of traffic per unit of the axis. A core's weight
// is the reciprocal of its per-unit time, so splitting the axis
// proportionally to the weights equalizes per-core finish times
// (Section 3.1.1: "the total time of accessing memory and executing
// kernel should be well-balanced across cores").
func (m *Model) BalanceWeights(macsPerUnit, bytesPerUnit float64, dt tensor.DType) []float64 {
	w := make([]float64, m.Arch.NumCores())
	for i := range w {
		ct := macsPerUnit / m.macsPerCycle(i, dt)
		dt := bytesPerUnit / m.Arch.Cores[i].DMABytesPerCycle
		t := math.Max(ct, dt)
		if t <= 0 {
			w[i] = 1
		} else {
			w[i] = 1 / t
		}
	}
	return w
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cliutil"
)

// buildBinary compiles the command once per test binary into a temp
// dir so the regression tests exercise the real CLI surface: flag
// parsing, typed-error exit codes, stderr text.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "npusim")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// A fault spec naming a core the platform does not have must be
// rejected up front with the dedicated exit code — before any
// simulation runs — and the message must name the offending core.
func TestFaultSpecCoreRangeRejected(t *testing.T) {
	bin := buildBinary(t)
	for _, spec := range []string{"hang=9@5000", "kill=9@5000", "throttle=9@5000x0.5", "slow=9@5000x0.5"} {
		cmd := exec.Command(bin, "-model", "TinyCNN", "-faults", spec)
		out, err := cmd.CombinedOutput()
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("spec %q: want exit error, got %v\n%s", spec, err, out)
		}
		if code := ee.ExitCode(); code != cliutil.ExitBadFaultSpec {
			t.Errorf("spec %q: exit code %d, want %d\n%s", spec, code, cliutil.ExitBadFaultSpec, out)
		}
		if !strings.Contains(string(out), "core 9") {
			t.Errorf("spec %q: stderr does not name the offending core:\n%s", spec, out)
		}
	}
}

// A hang with the watchdog armed recovers and exits 0; without it the
// run deadlocks (unclassified), and the message points at the flag.
func TestHangWatchdogRecoversCLI(t *testing.T) {
	bin := buildBinary(t)

	out, err := exec.Command(bin, "-model", "TinyCNN",
		"-faults", "hang=1@5000", "-watchdog", "2000").CombinedOutput()
	if err != nil {
		t.Fatalf("watched hang run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "degraded but recovered") ||
		!strings.Contains(string(out), "watchdog caught") {
		t.Errorf("watched hang run output missing recovery narrative:\n%s", out)
	}

	out, err = exec.Command(bin, "-model", "TinyCNN", "-faults", "hang=1@5000").CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("unwatched hang: want exit error, got %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != cliutil.ExitError {
		t.Errorf("unwatched hang: exit code %d, want %d\n%s", code, cliutil.ExitError, out)
	}
	if !strings.Contains(string(out), "WatchdogCycles") {
		t.Errorf("unwatched hang message does not point at the watchdog:\n%s", out)
	}
}

// Bit-flips do not fail the run: corruptions are detected at stratum
// boundaries and reported for repair, exit 0.
func TestBitFlipsReportedCLI(t *testing.T) {
	bin := buildBinary(t)
	out, err := exec.Command(bin, "-model", "TinyCNN",
		"-faults", "flip=0.05", "-fault-seed", "3").CombinedOutput()
	if err != nil {
		t.Fatalf("flip run failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "corrupted stratum") {
		t.Errorf("flip run reported no corruption:\n%s", out)
	}
}

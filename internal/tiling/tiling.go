// Package tiling decomposes per-core sub-layers into tiles executed as
// a load/compute/store software pipeline with double buffering
// (Section 2.2). A sub-layer is tiled when its working set exceeds the
// core's SPM or when tiling lets DMA overlap computation; with three
// or more tiles, double buffering also shrinks the SPM footprint.
//
// Tiles form a 2-D grid: a primary axis (the partition axis for
// spatially partitioned sub-layers, so halo transfers hide behind
// interior tiles; the channel axis for channel-partitioned ones) and a
// secondary channel/spatial axis engaged only under SPM pressure —
// e.g. a convolution whose kernel alone exceeds SPM streams
// output-channel slices.
//
// Tile execution order implements the halo-first policy (Section
// 3.1.3): tiles that produce halo data for the next layer run first,
// so the halo-exchange overlaps with the remaining tiles' computation.
package tiling

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// Tile is one pipeline unit of a sub-layer.
type Tile struct {
	// Index is the tile's creation-order position in the grid.
	Index int
	// CGroup identifies the tile's slice along the secondary axis;
	// tiles in one group share the same kernel slice.
	CGroup int
	// Out is the output region the tile produces (whole-layer output
	// coordinates).
	Out tensor.Region
	// In are the input regions required, one per layer input.
	In []tensor.Region
	// MACs is the tile's compute cost.
	MACs int64
	// KernelBytes is the kernel slice the tile's CGroup needs; the
	// emitter loads it once per group.
	KernelBytes int64
	// ProducesHalo marks tiles whose output contains rows/columns
	// adjacent to a partition boundary — the data neighbouring cores
	// will need. The halo-first policy schedules these before interior
	// tiles.
	ProducesHalo bool
}

// Plan is the tiling decision for one sub-layer on one core.
type Plan struct {
	// Axis is the primary tiling direction.
	Axis tensor.Axis
	// SecondaryAxis is the grid's other direction (meaningful when
	// SecondaryCuts > 1).
	SecondaryAxis tensor.Axis
	// SecondaryCuts is the number of slices along the secondary axis.
	SecondaryCuts int
	// Tiles in execution order.
	Tiles []Tile
	// HaloFirst records whether the halo-first policy reordered the
	// tiles.
	HaloFirst bool
	// ReloadInputs means input regions are re-loaded in every kernel
	// group instead of staying resident across groups. The tiler only
	// sets it when input-stationary reuse cannot fit the budget — the
	// resident set shrinks to the current group's working set at the
	// cost of re-fetching inputs once per group. The emitter must scope
	// its input-reuse cache per group to match.
	ReloadInputs bool
}

// NumTiles returns the number of tiles.
func (p *Plan) NumTiles() int { return len(p.Tiles) }

// Tiler sizes and orders tiles for an architecture.
type Tiler struct {
	Arch  *arch.Arch
	Model *cost.Model
	// MinPipelineTiles is the preferred minimum tile count when the
	// extent allows it (3+ tiles both pipeline and reduce SPM need);
	// defaults to 3.
	MinPipelineTiles int
	// MaxTiles caps the primary-axis tile count when SPM pressure does
	// not force more; defaults to 16.
	MaxTiles int
}

// New returns a Tiler with default pipelining parameters.
func New(a *arch.Arch) *Tiler {
	return &Tiler{Arch: a, Model: cost.New(a), MinPipelineTiles: 3, MaxTiles: 16}
}

// Options describes the context of the sub-layer being tiled.
type Options struct {
	// Direction is the layer's partitioning direction; spatially
	// partitioned sub-layers tile along the same axis so halo
	// transfers hide behind interior tiles.
	Direction partition.Direction
	// HaloLo/HaloHi report whether a neighbouring core's partition
	// abuts this sub-layer below/above along the partition axis (so
	// the respective edge tile produces halo).
	HaloLo, HaloHi bool
	// HaloWidth is the halo extent in elements along the axis (how
	// many edge rows neighbours need).
	HaloWidth int
	// HaloFirst enables the halo-first execution order.
	HaloFirst bool
	// ForwardedInput marks layer inputs resident in SPM via
	// feature-map forwarding; the emitter never loads them, so they
	// contribute nothing to the plan's own need — their bytes arrive
	// via ExtraResidentBytes (index parallel to layer inputs).
	ForwardedInput []bool
	// HoldOutput marks a sub-layer whose outputs stay resident for a
	// forwarded or in-stratum consumer instead of streaming out through
	// double-buffered stores: every tile's output is concurrently live
	// by the last tile.
	HoldOutput bool
	// ExtraResidentBytes is SPM claimed for the sub-layer's whole
	// execution by buffers the tiler does not plan: the forwarding
	// producer's held output, and halo-receive staging.
	ExtraResidentBytes int64
	// Budget overrides the core's SPM capacity when positive — the
	// compile driver shrinks it to re-tile after an admission failure.
	// A shrunken budget is a soft target: a sub-layer whose minimum
	// liveness-exact need exceeds it still plans, at its
	// minimum-footprint grid, as long as that minimum fits the core's
	// physical capacity. CannotFitError is reserved for sub-layers that
	// cannot fit the hardware at any tile count.
	Budget int64
}

// CannotFitError is returned when no tile grid fits the SPM budget: the
// sub-layer's minimum liveness-exact need exceeds it even at maximal
// tiling. The compile driver keys its fallback chain on this type.
type CannotFitError struct {
	Layer   string
	Core    int
	Budget  int64
	MinNeed int64 // smallest need over every grid searched
}

func (e *CannotFitError) Error() string {
	return fmt.Sprintf("tiling: layer %s does not fit SPM budget of core %d (min need %d B > budget %d B) at any tile count",
		e.Layer, e.Core, e.MinNeed, e.Budget)
}

// PlanSubLayer tiles sub-layer sub of layer l for the given core.
// It returns an error when even maximal tiling cannot fit the core's
// SPM.
func (t *Tiler) PlanSubLayer(l *graph.Layer, inShapes []tensor.Shape, sub partition.SubLayer, core int, opt Options) (Plan, error) {
	if sub.Empty() {
		return Plan{Axis: tensor.AxisH}, nil
	}
	primary, secondary := t.chooseAxes(l, sub, opt)
	hard := t.Arch.Cores[core].SPMBytes
	budget := hard
	if opt.Budget > 0 {
		budget = opt.Budget
	}

	extA := sub.Out.Ext.Dim(primary)
	alignA := t.alignFor(core, primary)
	maxA := maxCuts(extA, alignA)
	extB := sub.Out.Ext.Dim(secondary)
	alignB := t.alignFor(core, secondary)
	maxB := maxCuts(extB, alignB)

	loA := 1
	if extA >= t.minTiles()*alignA {
		loA = t.minTiles()
	}

	wantReorder := opt.HaloFirst && opt.Direction.Spatial() && primary == opt.Direction.Axis()
	// candidate marks halos and applies the execution order a grid will
	// actually run under before measuring its liveness: the halo-first
	// permutation changes which buffers are concurrently live, so the
	// need must be computed on the executed order, not the grid order.
	candidate := func(ka, kb int, reorder bool) []Tile {
		tiles := t.cutGrid(l, inShapes, sub, primary, ka, alignA, secondary, kb, alignB)
		t.markHalo(tiles, sub, primary, opt)
		if reorder {
			tiles = haloFirstOrder(tiles)
		}
		return tiles
	}

	// Passes in preference order: input-stationary reuse first (each
	// distinct region loaded once — minimal traffic), then per-group
	// reload (minimal residency) only if no reusing grid fits. The
	// halo-first permutation splinters reuse windows, so under pressure
	// a reusing grid in plain order beats a reloading grid in halo-first
	// order: the ordering is a latency overlap, the reload a real DMA
	// cost.
	type mode struct{ reload, reorder bool }
	passes := []mode{{false, false}, {true, false}}
	if wantReorder {
		passes = []mode{{false, true}, {false, false}, {true, true}, {true, false}}
	}
	minNeed := int64(-1)
	var chosen, best []Tile
	var chosenB, bestB int
	var chosenMode, bestMode mode
	for _, pm := range passes {
		pm := pm
		search := func(ka, kb int) bool {
			tiles := candidate(ka, kb, pm.reorder)
			need := t.spmNeed(tiles, l.DType, opt, pm.reload)
			if minNeed < 0 || need < minNeed {
				minNeed = need
				best, bestB, bestMode = tiles, kb, pm
			}
			if need <= budget {
				chosen, chosenB, chosenMode = tiles, kb, pm
				return true
			}
			return false
		}
	pass:
		for kb := 1; kb <= maxB; kb++ {
			for ka := loA; ka <= maxA; ka++ {
				if search(ka, kb) {
					break pass
				}
			}
			if kb == 1 && loA > 1 {
				// Also consider fewer-than-pipelining tile counts before
				// engaging the secondary axis.
				for ka := 1; ka < loA; ka++ {
					if search(ka, kb) {
						break pass
					}
				}
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil && budget < hard && minNeed >= 0 && minNeed <= hard {
		// Soft-budget fallback: the shrunken budget is unreachable for
		// this sub-layer, but its minimum-footprint grid fits the
		// hardware — plan that and let the simulator's admission check
		// arbitrate.
		chosen, chosenB, chosenMode = best, bestB, bestMode
	}
	if chosen == nil {
		return Plan{}, &CannotFitError{Layer: l.Name, Core: core, Budget: budget, MinNeed: minNeed}
	}

	plan := Plan{Axis: primary, SecondaryAxis: secondary, SecondaryCuts: chosenB,
		Tiles: chosen, HaloFirst: chosenMode.reorder, ReloadInputs: chosenMode.reload}
	return plan, nil
}

func (t *Tiler) minTiles() int {
	if t.MinPipelineTiles > 0 {
		return t.MinPipelineTiles
	}
	return 3
}

// maxCuts bounds the cut count along an axis by its aligned capacity.
func maxCuts(extent, align int) int {
	n := extent / align
	if n < 1 {
		n = 1
	}
	return n
}

// chooseAxes picks the tiling grid: the partition axis first (halo
// hiding for spatial, kernel slicing for channel), with the other
// family as the pressure-relief secondary.
func (t *Tiler) chooseAxes(l *graph.Layer, sub partition.SubLayer, opt Options) (primary, secondary tensor.Axis) {
	switch {
	case opt.Direction.Spatial():
		return opt.Direction.Axis(), tensor.AxisC
	case opt.Direction == partition.DirChannel:
		return tensor.AxisC, tensor.AxisH
	}
	// Unpartitioned: longest legal spatial axis primary, channels
	// secondary.
	primary = tensor.AxisH
	if sub.Out.Ext.W > sub.Out.Ext.H && l.Op.SupportsPartition(tensor.AxisW) {
		primary = tensor.AxisW
	}
	return primary, tensor.AxisC
}

func (t *Tiler) alignFor(core int, a tensor.Axis) int {
	if a == tensor.AxisC {
		return t.Arch.Cores[core].AlignC
	}
	return t.Arch.Cores[core].AlignSpatial
}

// cutGrid slices the sub-layer output into a ka x kb grid (ka cuts
// along the primary axis, kb along the secondary) and derives per-tile
// inputs and costs. Iteration is always channel-outer: all tiles
// sharing one kernel slice (a CGroup) are contiguous, so each kernel
// slice is loaded once and streamed over the other axis.
func (t *Tiler) cutGrid(l *graph.Layer, inShapes []tensor.Shape, sub partition.SubLayer,
	axisA tensor.Axis, ka, alignA int, axisB tensor.Axis, kb, alignB int) []Tile {

	extA := sub.Out.Ext.Dim(axisA)
	extB := sub.Out.Ext.Dim(axisB)
	if ka > extA {
		ka = extA
	}
	if kb > extB {
		kb = extB
	}
	chunksA := tensor.SplitEven(extA, ka, alignA)
	chunksB := tensor.SplitEven(extB, kb, alignB)

	// One of the two axes is always the channel axis: iterate it on
	// the outside so kernel-slice groups are contiguous.
	axisOut, chunksOut := axisA, chunksA
	axisIn, chunksIn := axisB, chunksB
	if axisB == tensor.AxisC {
		axisOut, chunksOut = axisB, chunksB
		axisIn, chunksIn = axisA, chunksA
	}

	var tiles []Tile
	offOut := sub.Out.Off.Dim(axisOut)
	group := 0
	idx := 0
	for _, szOut := range chunksOut {
		if szOut == 0 {
			continue
		}
		offIn := sub.Out.Off.Dim(axisIn)
		emitted := false
		for _, szIn := range chunksIn {
			if szIn == 0 {
				continue
			}
			out := sub.Out
			out.Off = out.Off.WithDim(axisOut, offOut).WithDim(axisIn, offIn)
			out.Ext = out.Ext.WithDim(axisOut, szOut).WithDim(axisIn, szIn)
			offIn += szIn
			tile := Tile{Index: idx, CGroup: group, Out: out}
			tile.In = make([]tensor.Region, len(inShapes))
			for j := range inShapes {
				tile.In[j] = l.Op.InputRegion(out, j, inShapes)
			}
			tile.MACs = l.Op.MACs(out.Ext, inShapes)
			// Kernel slice of the group: ops charge kernels by output
			// channel extent only.
			tile.KernelBytes = l.Op.KernelBytes(out.Ext, inShapes, l.DType)
			tiles = append(tiles, tile)
			emitted = true
			idx++
		}
		offOut += szOut
		if emitted {
			group++
		}
	}
	return tiles
}

// spmNeed returns the liveness-exact SPM requirement of a tile plan:
// the peak set of concurrently resident buffers over the pipeline, not
// a sum of independent per-buffer worst cases.
//
// The sweep models the emitter's double-buffered pipeline at tile
// granularity. Position k is the interval during which tile k (in
// execution order) computes. Each buffer the emitter will allocate gets
// a live window in position terms, matching spm.ProfileTimeline's rules
// for the instructions the emitter emits:
//
//   - an input region first read by tile f and last read by tile l is
//     loaded into the slot freed by compute f-2, so it is resident from
//     position f-1 through l (identical regions across tiles load once
//     — the emitter's input-stationary reuse);
//   - a kernel slice group spanning tiles f..l is slot-gated the same
//     way (the emitter bounds kernel prefetch with the same dependency)
//     and resident from position f-1 through l;
//   - tile k's output is written at position k; a streamed output is
//     stored while tile k+1 computes and its slot is reused by tile
//     k+2, so it spans [k, k+1] — but a held output (HoldOutput) has no
//     store and stays resident for the forwarded consumer, so every
//     output written so far is live through the last position;
//   - forwarded inputs are never loaded (nothing to plan); the
//     producer's held output and any halo-receive staging occupy SPM
//     for the whole sub-layer and arrive as ExtraResidentBytes.
//
// With reload set, input reuse is scoped per kernel group (the
// emitter's ReloadInputs contract): a region re-read in a later group
// is a fresh buffer, so its windows split instead of spanning the
// groups in between.
//
// The returned need is ExtraResidentBytes plus the maximum position
// occupancy. Cross-layer pipeline overlap beyond these terms (the next
// layer's bounded prefetch against this layer's tail) is not modeled
// here; the simulator's admission check is the authority and the
// compile driver re-tiles with a shrunken Budget if it fires.
func (t *Tiler) spmNeed(tiles []Tile, dt tensor.DType, opt Options, reload bool) int64 {
	n := len(tiles)
	if n == 0 {
		return 0
	}
	occ := make([]int64, n+1) // difference array over positions 0..n-1

	add := func(from, to int, bytes int64) {
		if bytes <= 0 {
			return
		}
		if from < 0 {
			from = 0
		}
		if to > n-1 {
			to = n - 1
		}
		occ[from] += bytes
		occ[to+1] -= bytes
	}

	// Input regions, deduplicated the way the emitter reuses them. The
	// group field scopes reuse per kernel group under reload; it stays
	// constant otherwise so identical regions share one window.
	type inKey struct {
		j, group int
		r        tensor.Region
	}
	type window struct{ first, last int }
	regions := map[inKey]window{}
	nIn := len(tiles[0].In)
	for j := 0; j < nIn; j++ {
		if j < len(opt.ForwardedInput) && opt.ForwardedInput[j] {
			continue // resident via forwarding; in ExtraResidentBytes
		}
		for k, tile := range tiles {
			key := inKey{j: j, r: tile.In[j]}
			if reload {
				key.group = tile.CGroup
			}
			w, ok := regions[key]
			if !ok {
				w = window{first: k, last: k}
			} else {
				w.last = k
			}
			regions[key] = w
		}
	}
	for key, w := range regions {
		add(w.first-1, w.last, key.r.Bytes(dt))
	}

	// Kernel slices, one buffer per contiguous group occurrence. After
	// a halo-first reorder a group can run in several disjoint spans;
	// the kernel is loaded once at its first tile and stays live until
	// its last, so the window covers the whole spread.
	kernels := map[int]window{}
	kernelBytes := map[int]int64{}
	for k, tile := range tiles {
		if tile.KernelBytes <= 0 {
			continue
		}
		w, ok := kernels[tile.CGroup]
		if !ok {
			w = window{first: k, last: k}
		} else {
			w.last = k
		}
		kernels[tile.CGroup] = w
		if tile.KernelBytes > kernelBytes[tile.CGroup] {
			kernelBytes[tile.CGroup] = tile.KernelBytes
		}
	}
	for g, w := range kernels {
		add(w.first-1, w.last, kernelBytes[g])
	}

	// Outputs.
	for k, tile := range tiles {
		if opt.HoldOutput {
			add(k, n-1, tile.Out.Bytes(dt))
		} else {
			add(k, k+1, tile.Out.Bytes(dt))
		}
	}

	var cur, peak int64
	for k := 0; k < n; k++ {
		cur += occ[k]
		if cur > peak {
			peak = cur
		}
	}
	return opt.ExtraResidentBytes + peak
}

func bbox(a, b tensor.Region) tensor.Region {
	var out tensor.Region
	for _, ax := range []tensor.Axis{tensor.AxisH, tensor.AxisW, tensor.AxisC} {
		lo := a.Off.Dim(ax)
		if v := b.Off.Dim(ax); v < lo {
			lo = v
		}
		hi := a.End(ax)
		if v := b.End(ax); v > hi {
			hi = v
		}
		out.Off = out.Off.WithDim(ax, lo)
		out.Ext = out.Ext.WithDim(ax, hi-lo)
	}
	return out
}

// markHalo flags tiles whose output touches a partition boundary that
// a neighbour needs.
func (t *Tiler) markHalo(tiles []Tile, sub partition.SubLayer, axis tensor.Axis, opt Options) {
	if !opt.Direction.Spatial() || axis != opt.Direction.Axis() || opt.HaloWidth <= 0 {
		return
	}
	lo := sub.Out.Off.Dim(axis)
	hi := sub.Out.End(axis)
	for i := range tiles {
		tLo := tiles[i].Out.Off.Dim(axis)
		tHi := tiles[i].Out.End(axis)
		if opt.HaloLo && tLo < lo+opt.HaloWidth {
			tiles[i].ProducesHalo = true
		}
		if opt.HaloHi && tHi > hi-opt.HaloWidth {
			tiles[i].ProducesHalo = true
		}
	}
}

// haloFirstOrder moves halo-producing tiles to the front, preserving
// relative order within each class.
func haloFirstOrder(tiles []Tile) []Tile {
	out := make([]Tile, 0, len(tiles))
	for _, t := range tiles {
		if t.ProducesHalo {
			out = append(out, t)
		}
	}
	for _, t := range tiles {
		if !t.ProducesHalo {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks that a plan's tiles exactly cover the sub-layer
// output without overlap.
func Validate(plan *Plan, sub partition.SubLayer) error {
	if sub.Empty() {
		if len(plan.Tiles) != 0 {
			return fmt.Errorf("tiling: empty sub-layer has %d tiles", len(plan.Tiles))
		}
		return nil
	}
	var total int64
	for i, a := range plan.Tiles {
		if !sub.Out.Contains(a.Out) {
			return fmt.Errorf("tiling: tile %d %v outside sub-layer %v", i, a.Out, sub.Out)
		}
		total += a.Out.Elems()
		for j := i + 1; j < len(plan.Tiles); j++ {
			if a.Out.Overlaps(plan.Tiles[j].Out) {
				return fmt.Errorf("tiling: tiles %d and %d overlap", i, j)
			}
		}
	}
	if total != sub.Out.Elems() {
		return fmt.Errorf("tiling: tiles cover %d elements, sub-layer has %d", total, sub.Out.Elems())
	}
	return nil
}

package npu

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// Fault-tolerance aliases: inject deterministic faults into simulated
// runs and recover from core death onto the surviving cores.
type (
	// FaultPlan describes the faults injected into a run (DMA drops,
	// thermal throttles, core deaths); see ParseFaultSpec for the
	// command-line syntax.
	FaultPlan = fault.Plan
	// FaultThrottle is a sustained core slowdown from a given cycle.
	FaultThrottle = fault.Throttle
	// FaultDeath is a hard core failure at a given cycle.
	FaultDeath = fault.Death
	// CoreFailure is the typed error a fault-injected run returns when
	// a core becomes unusable; it carries the recovery checkpoint.
	CoreFailure = sim.CoreFailure
	// RecoveryResult describes a completed degradation path: failures
	// handled, surviving cores, recompiled suffix, merged statistics.
	RecoveryResult = recovery.Result
)

// ParseFaultSpec parses the "drop=0.02,throttle=1@50000x0.5,
// kill=2@400000" command-line fault syntax; the seed drives the
// probabilistic drop decisions.
func ParseFaultSpec(spec string, seed uint64) (*FaultPlan, error) {
	return fault.ParseSpec(spec, seed)
}

// FaultReport is a Report whose run was subjected to a fault plan.
// When a core died, Stats merges the wasted attempts with the
// recovered rerun, and Recovery holds the degradation details.
type FaultReport struct {
	Report
	// Failures lists every core failure survived, in order. Empty when
	// the run completed without losing a core (drops and throttles may
	// still have slowed it — see Stats.PerCore Retries).
	Failures []*CoreFailure
	// Recovery is the degradation path taken, nil if no core was lost.
	Recovery *RecoveryResult
}

// Degraded reports whether the run lost at least one core.
func (fr *FaultReport) Degraded() bool { return len(fr.Failures) > 0 }

// RunWithFaults compiles g, simulates it under the fault plan, and —
// if a core dies — re-partitions the unexecuted suffix onto the
// surviving cores and resumes from the checkpoint, repeating on
// cascading failures. Recovery never changes numerics (see
// ValidateRecovery); it only costs latency, which the report's merged
// statistics account for, re-dispatch penalties included.
func RunWithFaults(g *Graph, a *Arch, opt Options, plan *FaultPlan) (*FaultReport, error) {
	res, err := Compile(g, a, opt)
	if err != nil {
		return nil, err
	}
	simCfg := sim.Config{Faults: plan}
	out, err := sim.Run(res.Program, simCfg)
	if err == nil {
		return &FaultReport{Report: Report{Stats: out.Stats, Arch: a, Config: opt.Name()}}, nil
	}
	var cf *CoreFailure
	if !errors.As(err, &cf) {
		return nil, err
	}
	rec, err := recovery.Recover(g, a, cf, recovery.Options{Opt: opt, Sim: simCfg})
	if err != nil {
		return nil, fmt.Errorf("npu: run failed and could not recover: %w", err)
	}
	return &FaultReport{
		Report:   Report{Stats: rec.MergedStats(), Arch: a, Config: opt.Name()},
		Failures: rec.Failures,
		Recovery: rec,
	}, nil
}

// ValidateRecovery proves a recovered run reproduced the whole-graph
// reference bit-exactly. It is slow on full benchmark models; use
// small graphs.
func ValidateRecovery(g *Graph, r *RecoveryResult) error {
	return recovery.Validate(g, r)
}

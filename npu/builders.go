package npu

import (
	"repro/internal/ops"
)

// Operator aliases for building custom networks with Graph.MustAdd.
type (
	// Op is the operator interface every layer wraps.
	Op = ops.Op
	// InputOp is the graph source pseudo-operator.
	InputOp = ops.Input
	// Conv2D is a dense 2-D convolution.
	Conv2D = ops.Conv2D
	// DepthwiseConv2D convolves each channel independently.
	DepthwiseConv2D = ops.DepthwiseConv2D
	// TransposeConv2D is a strided up-convolution.
	TransposeConv2D = ops.TransposeConv2D
	// MaxPool2D is sliding-window max pooling.
	MaxPool2D = ops.MaxPool2D
	// AvgPool2D is sliding-window average pooling.
	AvgPool2D = ops.AvgPool2D
	// GlobalAvgPool reduces the spatial extent to 1x1.
	GlobalAvgPool = ops.GlobalAvgPool
	// FullyConnected maps 1x1xIn to 1x1xOut.
	FullyConnected = ops.FullyConnected
	// Add sums inputs elementwise.
	Add = ops.Add
	// Mul multiplies elementwise with 1x1xC broadcast.
	Mul = ops.Mul
	// Concat joins inputs along channels.
	Concat = ops.Concat
	// Activation applies a pointwise non-linearity.
	Activation = ops.Activation
	// Softmax normalizes along channels.
	Softmax = ops.Softmax
	// Resize scales the spatial extent by integer factors.
	Resize = ops.Resize
	// Crop removes spatial margins.
	Crop = ops.Crop
	// ChannelSlice selects a channel interval.
	ChannelSlice = ops.ChannelSlice
	// ChannelShuffle interleaves channel groups (ShuffleNet).
	ChannelShuffle = ops.ChannelShuffle
	// Padding holds per-side spatial padding.
	Padding = ops.Padding
	// ActFunc selects the activation function.
	ActFunc = ops.ActFunc
)

// Activation functions.
const (
	ReLU    = ops.ReLU
	ReLU6   = ops.ReLU6
	Sigmoid = ops.Sigmoid
	HSwish  = ops.HSwish
	TanH    = ops.TanH
)

// Resize modes.
const (
	Nearest  = ops.Nearest
	Bilinear = ops.Bilinear
)

// NewConv2D returns a convolution with unit dilation.
var NewConv2D = ops.NewConv2D

// NewDepthwiseConv2D returns a depthwise convolution with unit dilation.
var NewDepthwiseConv2D = ops.NewDepthwiseConv2D

// SamePad returns TensorFlow-style "SAME" padding for the given
// geometry.
var SamePad = ops.SamePad

// Package dse is a design-space explorer for multicore-NPU schedules.
// The paper's compiler is one hand-picked point in a much larger
// space: heuristics h1–h5 fix each layer's partitioning method, h6–h8
// fix the stratum (layer-fusion) boundaries, and the partitioner
// balances cores by a static cost model. This package searches the
// joint space — per-layer partitioning-method overrides, per-layer
// stratum-boundary overrides (fusion depth), and quantized per-core
// weight scales — with seeded, deterministic random-restart hill
// climbing plus a beam over neighborhood perturbations.
//
// Candidate evaluation is the existing toolchain end to end: genomes
// lower to core.Options, compile through the fingerprint-keyed
// compile cache (revisits cost a cache hit), pass the SPM admission
// check and the compile driver's graceful-degradation chain like any
// other schedule, and score by simulated cycles from the event
// engine. Evaluation fans out on parallel.MapCtx; candidate
// generation, dedupe, and selection are single-threaded with
// splitmix64 randomness and lowest-index tie-breaks, so same-seed
// searches are byte-identical at any worker count. The winning
// schedule is re-verified for bit-identity between the event engine
// and the retained reference engine before it is reported.
package dse

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Params bounds one exploration.
type Params struct {
	// Seed drives every random decision; same seed, same result.
	Seed uint64
	// Restarts is the number of hill-climbing restarts (default 2).
	// Restart 0 starts from the heuristic baseline genome; later
	// restarts start from randomized genomes.
	Restarts int
	// Beam is how many genomes survive each generation (default 3).
	Beam int
	// Iters is the number of generations per restart (default 4).
	Iters int
	// Neighbors is how many perturbations each beam genome spawns per
	// generation (default 4).
	Neighbors int
	// Sim configures the objective simulation (deadlines via Sim.Ctx,
	// SPM-check policy). The zero value keeps the admission check on.
	Sim sim.Config
}

func (p *Params) defaults() {
	if p.Restarts <= 0 {
		p.Restarts = 2
	}
	if p.Beam <= 0 {
		p.Beam = 3
	}
	if p.Iters <= 0 {
		p.Iters = 4
	}
	if p.Neighbors <= 0 {
		p.Neighbors = 4
	}
}

// Explored records one evaluated genome, for the invariants suite.
type Explored struct {
	Genome   Genome
	Cycles   float64 // +Inf when infeasible
	Feasible bool
}

// Result is the outcome of one exploration.
type Result struct {
	// Model names the explored graph.
	Model string
	// Seed echoes the search seed.
	Seed uint64
	// BaselineCycles is the simulated latency of the heuristic (h1–h8)
	// schedule the search starts from.
	BaselineCycles float64
	// BestCycles is the best feasible latency found (<= baseline: the
	// baseline genome is always evaluated).
	BestCycles float64
	// ImprovementPct is the relative gain over the baseline.
	ImprovementPct float64
	// Best is the winning genome.
	Best Genome
	// BestFallback is the fallback level the winning schedule compiled
	// at ("none" when it admitted as requested).
	BestFallback string
	// Points is the number of unique genomes compiled and simulated.
	Points int
	// Revisits counts generated genomes that deduplicated onto an
	// already-evaluated point (no compile, no sim).
	Revisits int
	// Infeasible counts explored genomes the SPM fallback chain could
	// not fit at any level.
	Infeasible int
	// CacheHits/CacheMisses are the compile-cache deltas over the
	// exploration (the baseline is a hit when an earlier sweep already
	// compiled it; the winner's verification re-compile always is).
	CacheHits, CacheMisses int64
	// EngineMatch reports that the winning schedule simulated
	// bit-identically on the event and reference engines.
	EngineMatch bool
	// Explored lists every evaluated point, for the invariants tests.
	// It is not serialized into reports.
	Explored []Explored `json:"-"`
}

// scored is a genome with its evaluation, ordered by (cycles, seq):
// seq is the deterministic generation order, so equal-cycle candidates
// resolve to the earliest generated — the lowest-index tie-break.
type scored struct {
	genome Genome
	cycles float64
	work   []float64
	seq    int
}

// Explore searches the schedule design space of graph g on
// architecture a, starting from (and comparing against) base — the
// heuristic configuration to beat, typically core.Stratum(). ctx
// cancels the search cooperatively; the error then wraps ctx's error.
func Explore(ctx context.Context, g *graph.Graph, a *arch.Arch, base core.Options, p Params) (*Result, error) {
	p.defaults()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("dse: %w", err)
	}
	hits0, misses0 := core.CacheStats()

	res := &Result{Model: g.Name, Seed: p.Seed}
	ms := newMoveSpace(g)
	seen := make(map[string]scored)
	seq := 0

	// evalBatch compiles and simulates unseen genomes concurrently.
	// Results land in generation order; infeasible genomes (the SPM
	// chain exhausted) score +Inf and stay in the pool as dead ends.
	evalBatch := func(batch []Genome) ([]scored, error) {
		outs, err := parallel.MapCtx(ctx, len(batch), func(ctx context.Context, i int) (scored, error) {
			opt := batch[i].Options(base)
			cres, err := core.CompileCachedCtx(ctx, g, a, opt)
			if err != nil {
				var unfit *core.UnfitError
				if errors.As(err, &unfit) {
					return scored{genome: batch[i], cycles: math.Inf(1)}, nil
				}
				return scored{}, fmt.Errorf("dse: genome compile: %w", err)
			}
			cfg := p.Sim
			if cfg.Ctx == nil {
				cfg.Ctx = ctx
			}
			out, err := sim.Run(cres.Program, cfg)
			if err != nil {
				return scored{}, fmt.Errorf("dse: genome sim: %w", err)
			}
			work := make([]float64, len(out.Stats.PerCore))
			for c, cs := range out.Stats.PerCore {
				work[c] = math.Max(cs.ComputeBusy, math.Max(cs.LoadBusy, cs.StoreBusy))
			}
			return scored{genome: batch[i], cycles: out.Stats.TotalCycles, work: work}, nil
		})
		if err != nil {
			return nil, err
		}
		for i := range outs {
			outs[i].seq = seq
			seq++
			seen[outs[i].genome.key()] = outs[i]
			feasible := !math.IsInf(outs[i].cycles, 1)
			if !feasible {
				res.Infeasible++
			}
			res.Points++
			res.Explored = append(res.Explored, Explored{
				Genome: outs[i].genome, Cycles: outs[i].cycles, Feasible: feasible,
			})
		}
		return outs, nil
	}

	// Baseline: the all-auto genome, whose Options fingerprint-match
	// base exactly.
	baseGenome := newGenome(g, a.NumCores())
	basePts, err := evalBatch([]Genome{baseGenome})
	if err != nil {
		return nil, err
	}
	baseline := basePts[0]
	if math.IsInf(baseline.cycles, 1) {
		return nil, fmt.Errorf("dse: baseline configuration does not fit SPM on %s", g.Name)
	}
	res.BaselineCycles = baseline.cycles
	best := baseline

	better := func(x, y scored) bool {
		if x.cycles != y.cycles {
			return x.cycles < y.cycles
		}
		return x.seq < y.seq
	}

	for r := 0; r < p.Restarts; r++ {
		rng := prng(p.Seed + uint64(r)*0x9e3779b97f4a7c15)
		beam := []scored{baseline}
		if r > 0 {
			start := ms.randomize(&rng, baseGenome, 2+p.Neighbors)
			if s, ok := seen[start.key()]; ok {
				res.Revisits++
				beam = []scored{s}
			} else {
				pts, err := evalBatch([]Genome{start})
				if err != nil {
					return nil, err
				}
				beam = pts
			}
		}
		for it := 0; it < p.Iters; it++ {
			var batch []Genome
			var cached []scored
			for _, b := range beam {
				for n := 0; n < p.Neighbors; n++ {
					child := ms.mutate(&rng, b.genome, b.work)
					if s, ok := seen[child.key()]; ok {
						res.Revisits++
						cached = append(cached, s)
						continue
					}
					// Mark pending so one generation never evaluates
					// the same genome twice.
					seen[child.key()] = scored{genome: child, cycles: math.Inf(1), seq: -1}
					batch = append(batch, child)
				}
			}
			pts, err := evalBatch(batch)
			if err != nil {
				return nil, err
			}
			pool := append(append(beam, cached...), pts...)
			sort.SliceStable(pool, func(i, j int) bool { return better(pool[i], pool[j]) })
			// Dedupe the pool by key (a cached hit may duplicate a beam
			// member) and truncate to the beam width.
			var next []scored
			inPool := make(map[string]bool)
			for _, s := range pool {
				if k := s.genome.key(); !inPool[k] {
					inPool[k] = true
					next = append(next, s)
				}
				if len(next) == p.Beam {
					break
				}
			}
			beam = next
			if better(beam[0], best) {
				best = beam[0]
			}
		}
	}

	res.Best = best.genome
	res.BestCycles = best.cycles
	res.ImprovementPct = 100 * (res.BaselineCycles - res.BestCycles) / res.BaselineCycles

	// Verify the winner: recompile (a cache hit), then require
	// bit-identical statistics from the event engine and the retained
	// reference oracle, with the SPM admission check on in both.
	wres, err := core.CompileCachedCtx(ctx, g, a, best.genome.Options(base))
	if err != nil {
		return nil, fmt.Errorf("dse: winner recompile: %w", err)
	}
	res.BestFallback = wres.Fallback.String()
	ev, err := sim.Run(wres.Program, sim.Config{Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("dse: winner event sim: %w", err)
	}
	ref, err := sim.RunReference(wres.Program, sim.Config{Ctx: ctx})
	if err != nil {
		return nil, fmt.Errorf("dse: winner reference sim: %w", err)
	}
	if !statsEqual(&ev.Stats, &ref.Stats) {
		return nil, fmt.Errorf("dse: winner schedule diverges between engines (event %.0f vs reference %.0f cycles)",
			ev.Stats.TotalCycles, ref.Stats.TotalCycles)
	}
	res.EngineMatch = true

	hits1, misses1 := core.CacheStats()
	res.CacheHits = hits1 - hits0
	res.CacheMisses = misses1 - misses0
	return res, nil
}

// statsEqual compares two simulation outcomes bit-exactly: total and
// per-core cycle accounting, traffic, and barrier counts.
func statsEqual(a, b *sim.Stats) bool {
	if a.TotalCycles != b.TotalCycles || a.Barriers != b.Barriers || len(a.PerCore) != len(b.PerCore) {
		return false
	}
	if len(a.ProgramCycles) != len(b.ProgramCycles) {
		return false
	}
	for i := range a.ProgramCycles {
		if a.ProgramCycles[i] != b.ProgramCycles[i] {
			return false
		}
	}
	for i := range a.PerCore {
		x, y := a.PerCore[i], b.PerCore[i]
		if x != y {
			return false
		}
	}
	return true
}

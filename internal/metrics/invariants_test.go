package metrics

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/sim"
)

// This file holds the observability layer's standing invariants — the
// cross-checks future perf PRs must keep green (ISSUE 4 acceptance):
//
//   - per-core exclusive utilization fractions sum to 1.0 +/- 1e-9;
//   - the raw engine sums reproduce sim.CoreStats exactly and the
//     exclusive idle matches the engine's busy-interval accounting;
//   - SPM high-water marks stay within arch capacity on EVERY model:
//     the compile driver's admission check and fallback chain guarantee
//     an in-budget schedule (the former UNet/DeepLabV3+ exemptions are
//     gone — those nets now re-tile until they fit);
//   - the bus series never grants above the ceiling or above demand;
//
// on all Table 2 models under all four fault plans of the equivalence
// matrix.

var (
	invOnce     sync.Once
	invCompiled []struct {
		name string
		res  *core.Result
	}
)

func compiledTable2(t *testing.T) []struct {
	name string
	res  *core.Result
} {
	t.Helper()
	invOnce.Do(func() {
		a := arch.Exynos2100Like()
		for _, m := range models.All() {
			res, err := core.Compile(m.Build(), a, core.Stratum())
			if err != nil {
				panic(fmt.Sprintf("compile %s: %v", m.Name, err))
			}
			invCompiled = append(invCompiled, struct {
				name string
				res  *core.Result
			}{m.Name, res})
		}
	})
	return invCompiled
}

// faultPlans mirrors the sim equivalence matrix: fault-free, drops,
// throttles+drops, and a mid-run core death.
func faultPlans(killCycle float64) []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"drop", &fault.Plan{Seed: 7, DropRate: 0.01}},
		{"throttle-drop", &fault.Plan{
			Seed:     11,
			DropRate: 0.005,
			Throttles: []fault.Throttle{
				{Core: 1, AtCycle: killCycle * 0.2, Factor: 0.5},
				{Core: 0, AtCycle: killCycle * 0.5, Factor: 0.25},
				{Core: 1, AtCycle: killCycle * 0.8, Factor: 1},
			},
		}},
		{"kill", &fault.Plan{Seed: 3, Deaths: []fault.Death{{Core: 2, AtCycle: killCycle * 0.4}}}},
	}
}

func TestInvariantsTable2(t *testing.T) {
	a := arch.Exynos2100Like()
	for _, cm := range compiledTable2(t) {
		base, err := sim.Run(cm.res.Program, sim.Config{})
		if err != nil {
			t.Fatalf("%s: %v", cm.name, err)
		}
		for _, fp := range faultPlans(base.Stats.TotalCycles) {
			t.Run(cm.name+"/"+fp.name, func(t *testing.T) {
				col := &Collector{}
				out, err := sim.Run(cm.res.Program, sim.Config{Faults: fp.plan, Hook: col})
				var stats *sim.Stats
				if err != nil {
					var cf *sim.CoreFailure
					if !errors.As(err, &cf) {
						t.Fatal(err)
					}
					stats = &cf.Partial
				} else {
					stats = &out.Stats
				}
				cores := make([]int, a.NumCores())
				for i := range cores {
					cores[i] = i
				}
				placements := []sim.Placement{{Program: cm.res.Program, Cores: cores}}
				rep := BuildReport(a, placements, stats, col)
				rep.AttachCompile(cm.res)

				// The full cross-check: fraction sums, engine-sum identity,
				// idle agreement, truthful SPM reports.
				if err := rep.CrossCheck(a, stats, 1e-3); err != nil {
					t.Fatal(err)
				}

				// SPM capacity is a hard bound on every model: the
				// admission check and fallback chain guarantee it.
				for _, sp := range rep.SPM {
					if !sp.Fits {
						t.Errorf("core %d SPM high-water %d exceeds capacity %d",
							sp.Core, sp.PeakBytes, sp.CapacityBytes)
					}
				}

				// Bus series sanity: grants never exceed the ceiling (eps
				// for water-filling float error) or demand, and time only
				// moves forward.
				const eps = 1e-6
				for i, pt := range rep.Bus.Series {
					if pt.Granted > a.BusBytesPerCycle+eps {
						t.Errorf("bus point %d grants %.3f above ceiling %.3f", i, pt.Granted, a.BusBytesPerCycle)
					}
					if pt.Granted > pt.Demand+eps {
						t.Errorf("bus point %d grants %.3f above demand %.3f", i, pt.Granted, pt.Demand)
					}
					if i > 0 && pt.At < rep.Bus.Series[i-1].At {
						t.Errorf("bus point %d goes back in time", i)
					}
				}
				if rep.Bus.BusyCycles > stats.TotalCycles+eps {
					t.Errorf("bus busy %.1f exceeds run length %.1f", rep.Bus.BusyCycles, stats.TotalCycles)
				}
				if rep.Bus.ContendedCycles > rep.Bus.BusyCycles+eps {
					t.Errorf("contended %.1f exceeds busy %.1f", rep.Bus.ContendedCycles, rep.Bus.BusyCycles)
				}

				// A completed fault-free run keeps every core productive:
				// nonzero compute everywhere and fractions that account for
				// real work.
				if err == nil {
					for _, cr := range rep.Cores {
						if cr.Exclusive.Compute <= 0 {
							t.Errorf("core %d attributed no compute", cr.Core)
						}
						if cr.Exclusive.Idle < 0 {
							t.Errorf("core %d negative idle %v", cr.Core, cr.Exclusive.Idle)
						}
					}
				}
			})
		}
	}
}

// TestInvariantsConcurrentPlacements extends the cross-checks to a
// two-program RunConcurrent partition of the platform, exercising the
// placement-local core remapping in the SPM profile.
func TestInvariantsConcurrentPlacements(t *testing.T) {
	a := arch.Exynos2100Like()
	sub01, err := a.Subset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := a.Subset([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	resA, err := core.Compile(models.ByNameMust("MobileNetV2"), sub01, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	resB, err := core.Compile(models.TinyCNN(), sub2, core.Base())
	if err != nil {
		t.Fatal(err)
	}
	placements := []sim.Placement{
		{Program: resA.Program, Cores: []int{0, 1}},
		{Program: resB.Program, Cores: []int{2}},
	}
	col := &Collector{}
	out, err := sim.RunConcurrent(a, placements, sim.Config{Hook: col})
	if err != nil {
		t.Fatal(err)
	}
	rep := BuildReport(a, placements, &out.Stats, col)
	if err := rep.CrossCheck(a, &out.Stats, 1e-3); err != nil {
		t.Fatal(err)
	}
	if len(rep.SPM) != 3 {
		t.Fatalf("%d SPM reports for 3 placed cores", len(rep.SPM))
	}
	seen := map[int]int{}
	for _, sp := range rep.SPM {
		seen[sp.Core]++
		if sp.PeakBytes <= 0 {
			t.Errorf("core %d: empty SPM profile", sp.Core)
		}
	}
	for c := 0; c < 3; c++ {
		if seen[c] != 1 {
			t.Fatalf("core %d appears %d times in SPM reports", c, seen[c])
		}
	}
	// Layer reports must separate the two placements.
	var p0, p1 bool
	for _, lr := range rep.Layers {
		switch lr.Placement {
		case 0:
			p0 = true
		case 1:
			p1 = true
		}
	}
	if !p0 || !p1 {
		t.Fatalf("layer reports missing a placement: p0=%v p1=%v", p0, p1)
	}
}

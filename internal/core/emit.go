package core

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/stratum"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// edgeCat classifies how a consumer obtains one of its inputs.
type edgeCat int

const (
	// catInput: the producer is a graph input; load from global
	// memory with no synchronization (the user supplied it).
	catInput edgeCat = iota
	// catStratum: producer and consumer are adjacent inside one
	// stratum; the data is forwarded in SPM with no instructions.
	catStratum
	// catForward: feature-map forwarding across a layer boundary; the
	// local portion stays in SPM, the remote portion arrives by
	// halo-exchange. No store/load round trip, no barrier.
	catForward
	// catGlobal: the store -> barrier -> load round trip. Loads of
	// data the same core produced prefetch against its own stores; only
	// remote data waits for the barrier.
	catGlobal
)

// tileRef remembers where an instruction covering a region landed.
type tileRef struct {
	reg tensor.Region
	ref plan.Ref
}

type emitter struct {
	g     *graph.Graph
	a     *arch.Arch
	model *cost.Model
	opt   Options
	plans []partition.Plan
	exec  []graph.LayerID
	strat []stratum.Stratum
	tiler *tiling.Tiler

	streams     [][]plan.Instr
	nextBarrier int
	// budgetScale shrinks every core's SPM budget handed to the tiler;
	// the compile driver's fallback chain lowers it after an admission
	// failure. Zero means full capacity.
	budgetScale float64
	// ctx, when non-nil, is polled once per emitted layer so a canceled
	// compile abandons lowering promptly.
	ctx context.Context

	// Analysis, by LayerID.
	stratumOf   map[graph.LayerID]int
	posOf       map[graph.LayerID]int
	prevExec    map[graph.LayerID]graph.LayerID
	cats        map[graph.LayerID][]edgeCat
	needStore   map[graph.LayerID]bool
	needBarrier map[graph.LayerID]bool
	expanded    map[graph.LayerID][]tensor.Region
	// pendingRecv[id][core] is what core receives in the halo exchange
	// completing id's forwarded input — computed when the producer is
	// emitted, consumed when id itself is.
	pendingRecv map[graph.LayerID][]int64

	// Emission records, by LayerID.
	computeRefs  map[graph.LayerID][][]tileRef // [core][tile]
	storeRefs    map[graph.LayerID][][]tileRef
	barrierRefs  map[graph.LayerID][]plan.Ref
	haloSendRefs map[graph.LayerID][]tileRef    // [core] halo store + sent region
	haloRecvRefs map[graph.LayerID][][]plan.Ref // consumer layer -> [core] -> recv instrs
}

func newEmitter(g *graph.Graph, a *arch.Arch, opt Options, plans []partition.Plan,
	order []graph.LayerID, strat []stratum.Stratum) *emitter {

	e := &emitter{
		g: g, a: a, model: cost.New(a), opt: opt, plans: plans, strat: strat,
		tiler:        tiling.New(a),
		streams:      make([][]plan.Instr, a.NumCores()),
		stratumOf:    map[graph.LayerID]int{},
		posOf:        map[graph.LayerID]int{},
		prevExec:     map[graph.LayerID]graph.LayerID{},
		cats:         map[graph.LayerID][]edgeCat{},
		needStore:    map[graph.LayerID]bool{},
		needBarrier:  map[graph.LayerID]bool{},
		expanded:     map[graph.LayerID][]tensor.Region{},
		pendingRecv:  map[graph.LayerID][]int64{},
		computeRefs:  map[graph.LayerID][][]tileRef{},
		storeRefs:    map[graph.LayerID][][]tileRef{},
		barrierRefs:  map[graph.LayerID][]plan.Ref{},
		haloSendRefs: map[graph.LayerID][]tileRef{},
		haloRecvRefs: map[graph.LayerID][][]plan.Ref{},
	}
	for _, id := range order {
		if !g.Layer(id).IsInput() {
			e.exec = append(e.exec, id)
		}
	}
	for i, id := range e.exec {
		if i > 0 {
			e.prevExec[id] = e.exec[i-1]
		} else {
			e.prevExec[id] = graph.LayerID(-1)
		}
	}
	for si, s := range strat {
		for pi, id := range s.Layers {
			e.stratumOf[id] = si
			e.posOf[id] = pi
			e.expanded[id] = s.Expanded[id]
		}
	}
	e.classifyEdges()
	return e
}

// classifyEdges fixes the category of every consumer edge, then
// derives store/barrier needs per producer.
func (e *emitter) classifyEdges() {
	for _, id := range e.exec {
		l := e.g.Layer(id)
		cats := make([]edgeCat, len(l.Inputs))
		for j, pid := range l.Inputs {
			cats[j] = e.classify(l, j, pid)
		}
		e.cats[id] = cats
	}
	e.demoteOverfullForwards()
	for _, id := range e.exec {
		l := e.g.Layer(id)
		users := e.g.Users(id)
		store := len(users) == 0 // graph outputs persist
		barrier := false
		for _, uid := range users {
			u := e.g.Layer(uid)
			for j, pid := range u.Inputs {
				if pid != id {
					continue
				}
				if e.cats[uid][j] == catGlobal {
					store = true
					barrier = true
				}
			}
		}
		_ = l
		e.needStore[id] = store
		e.needBarrier[id] = barrier && e.a.NumCores() > 1
	}
}

// demoteOverfullForwards drops forwarding on edges whose residency can
// never fit: a layer that both receives a forwarded input and holds
// its own output for a forwarded consumer keeps both full feature maps
// in SPM at once, and when their sum exceeds a core's capacity no
// amount of re-tiling helps (neither buffer shrinks with tile size).
// Such an edge goes back through store-sync-load while the rest of the
// boundary keeps its forwarding. The walk is in reverse execution
// order so a demotion downstream (which releases the middle layer's
// held output) is visible before the upstream edge is judged.
func (e *emitter) demoteOverfullForwards() {
	for i := len(e.exec) - 1; i >= 0; i-- {
		id := e.exec[i]
		l := e.g.Layer(id)
		holdOut := false
		for _, uid := range e.g.Users(id) {
			for j, pid := range e.g.Layer(uid).Inputs {
				if pid == id && (e.cats[uid][j] == catStratum || e.cats[uid][j] == catForward) {
					holdOut = true
				}
			}
		}
		anyForward := false
		var recv []int64
		for j, pid := range l.Inputs {
			if e.cats[id][j] != catForward {
				continue
			}
			anyForward = true
			// Halo-receive staging rides along with the forward and is
			// resident for the whole layer too.
			if _, rb, cons := e.haloPlanFor(pid); cons == id {
				if recv == nil {
					recv = rb
				} else {
					for c := range rb {
						recv[c] += rb[c]
					}
				}
			}
		}
		if !anyForward {
			continue
		}
		demote := false
		for core := range e.a.Cores {
			var resident int64
			for j2, pid2 := range l.Inputs {
				if e.cats[id][j2] == catStratum || e.cats[id][j2] == catForward {
					resident += e.expanded[pid2][core].Bytes(e.g.Layer(pid2).DType)
				}
			}
			if recv != nil {
				resident += recv[core]
			}
			if holdOut {
				resident += e.expanded[id][core].Bytes(l.DType)
			}
			if resident > e.a.Cores[core].SPMBytes {
				demote = true
				break
			}
		}
		if demote {
			for j := range l.Inputs {
				if e.cats[id][j] == catForward {
					e.cats[id][j] = catGlobal
				}
			}
		}
	}
}

func (e *emitter) classify(l *graph.Layer, j int, pid graph.LayerID) edgeCat {
	p := e.g.Layer(pid)
	if p.IsInput() {
		return catInput
	}
	if e.posOf[l.ID] > 0 && e.stratumOf[l.ID] == e.stratumOf[pid] && e.posOf[pid] == e.posOf[l.ID]-1 {
		return catStratum
	}
	if e.opt.HaloExchange && e.opt.Forwarding && e.prevExec[l.ID] == pid &&
		e.compatible(pid, l.ID) && e.forwardFits(pid, l) {
		return catForward
	}
	return catGlobal
}

// forwardFits reports whether feature-map forwarding from pid into l
// is feasible: the forwarded region must stay resident in SPM beside
// the consumer's working set, so refuse when it would claim more than
// ~60% of any core's SPM (the rest is needed for kernel slices and
// double-buffered output tiles).
func (e *emitter) forwardFits(pid graph.LayerID, l *graph.Layer) bool {
	inShapes := e.g.InShapes(l)
	dt := e.g.Layer(pid).DType
	for core := range e.a.Cores {
		reg := e.expanded[l.ID][core]
		if reg.Empty() {
			continue
		}
		var need int64
		for j, p := range l.Inputs {
			if p != pid {
				continue
			}
			need += l.Op.InputRegion(reg, j, inShapes).Bytes(dt)
		}
		if need > e.a.Cores[core].SPMBytes*3/5 {
			return false
		}
	}
	return true
}

// compatible reports whether producer and consumer share a
// partitioning direction, so per-core ownership lines up and the
// boundary data is a genuine halo.
func (e *emitter) compatible(p, l graph.LayerID) bool {
	dp := e.plans[p].Direction
	dl := e.plans[l].Direction
	return dp != partition.DirNone && dp == dl
}

// emit lowers every layer and returns the program.
func (e *emitter) emit() (*plan.Program, error) {
	for _, id := range e.exec {
		if err := ctxErr(e.ctx); err != nil {
			return nil, err
		}
		if err := e.emitLayer(id); err != nil {
			return nil, err
		}
	}
	dirs := make([]partition.Direction, e.g.Len())
	for i := range e.plans {
		dirs[i] = e.plans[i].Direction
	}
	var strata [][]graph.LayerID
	for _, s := range e.strat {
		strata = append(strata, append([]graph.LayerID(nil), s.Layers...))
	}
	prog := &plan.Program{
		Arch:        e.a,
		Graph:       e.g,
		Cores:       e.streams,
		NumBarriers: e.nextBarrier,
		Directions:  dirs,
		Strata:      strata,
	}
	return prog, prog.Validate()
}

// push appends an instruction to a core's stream and returns its ref.
func (e *emitter) push(core int, in plan.Instr) plan.Ref {
	if in.Op != plan.Barrier {
		in.BarrierID = -1
	}
	e.streams[core] = append(e.streams[core], in)
	return plan.Ref{Core: core, Index: len(e.streams[core]) - 1}
}

// subForRegion builds a SubLayer covering region r of layer l.
func (e *emitter) subForRegion(l *graph.Layer, core int, r tensor.Region) partition.SubLayer {
	s := partition.SubLayer{Core: core, Out: r}
	if r.Empty() {
		return s
	}
	in := e.g.InShapes(l)
	s.In = make([]tensor.Region, len(in))
	for i := range in {
		s.In[i] = l.Op.InputRegion(r, i, in)
	}
	s.MACs = l.Op.MACs(r.Ext, in)
	s.KernelBytes = l.Op.KernelBytes(r.Ext, in, l.DType)
	return s
}

// haloPlanFor computes the halo traffic layer id must send to the next
// executable layer, per producing core: the regions of id's planned
// output that other cores will consume.
//
// sendRegs[k] lists, for producing core k, the pieces of k's output
// that remote consumers need; recvBytes[c] totals what consumer core c
// receives; consumer is the layer whose halo receive this exchange
// completes (-1 when id forwards to no one). The receives belong to the
// consumer's own emission — emitLayer stashes them in pendingRecv
// rather than attaching them to id.
func (e *emitter) haloPlanFor(id graph.LayerID) (sendRegs [][]tensor.Region, recvBytes []int64, consumer graph.LayerID) {
	n := e.a.NumCores()
	sendRegs = make([][]tensor.Region, n)
	recvBytes = make([]int64, n)
	consumer = graph.LayerID(-1)

	nextID := graph.LayerID(-1)
	for i, x := range e.exec {
		if x == id && i+1 < len(e.exec) {
			nextID = e.exec[i+1]
		}
	}
	if nextID < 0 {
		return sendRegs, recvBytes, consumer
	}
	next := e.g.Layer(nextID)
	jMatch := -1
	for j, pid := range next.Inputs {
		if pid == id && e.cats[nextID][j] == catForward {
			jMatch = j
		}
	}
	if jMatch < 0 {
		return sendRegs, recvBytes, consumer
	}
	inShapes := e.g.InShapes(next)
	prodPlan := &e.plans[id]
	dt := e.g.Layer(id).DType
	for c := 0; c < n; c++ {
		consReg := e.expanded[nextID][c]
		if consReg.Empty() {
			continue
		}
		need := next.Op.InputRegion(consReg, jMatch, inShapes)
		for k := 0; k < n; k++ {
			if k == c || prodPlan.Subs == nil {
				continue
			}
			ov := need.Intersect(prodPlan.Subs[k].Out)
			if ov.Empty() {
				continue
			}
			sendRegs[k] = append(sendRegs[k], ov)
			recvBytes[c] += ov.Bytes(dt)
		}
	}
	return sendRegs, recvBytes, nextID
}

// haloEdges derives the tiler's halo flags for core's own region from
// the regions it must send.
func haloEdges(own tensor.Region, axis tensor.Axis, sends []tensor.Region) (lo, hi bool, width int) {
	for _, r := range sends {
		if r.Off.Dim(axis) == own.Off.Dim(axis) {
			lo = true
		}
		if r.End(axis) == own.End(axis) {
			hi = true
		}
		if w := r.Ext.Dim(axis); w > width {
			width = w
		}
	}
	return lo, hi, width
}

// emitLayer lowers one layer on every core, then its barrier if
// needed.
func (e *emitter) emitLayer(id graph.LayerID) error {
	l := e.g.Layer(id)
	inShapes := e.g.InShapes(l)
	cats := e.cats[id]
	dir := e.plans[id].Direction
	n := e.a.NumCores()

	fwd := make([]bool, len(cats))
	for j, c := range cats {
		fwd[j] = c == catStratum || c == catForward
	}

	// sendRegs is what this layer's cores send onward; nextRecv sizes
	// the halo receives of the *consumer* layer, so it is stashed for
	// the consumer's own emission. This layer's receives were stashed
	// when its producer was emitted.
	sendRegs, nextRecv, consumer := e.haloPlanFor(id)
	if consumer >= 0 {
		e.pendingRecv[consumer] = nextRecv
	}
	myRecv := e.pendingRecv[id]

	// Outputs held in SPM for a forwarded or in-stratum consumer never
	// stream out through double-buffered stores: every tile's output is
	// still resident when the last tile computes.
	holdOut := false
	for _, uid := range e.g.Users(id) {
		for j, pid := range e.g.Layer(uid).Inputs {
			if pid == id && (e.cats[uid][j] == catStratum || e.cats[uid][j] == catForward) {
				holdOut = true
			}
		}
	}

	e.computeRefs[id] = make([][]tileRef, n)
	e.storeRefs[id] = make([][]tileRef, n)
	e.haloSendRefs[id] = make([]tileRef, n)
	for c := range e.haloSendRefs[id] {
		e.haloSendRefs[id][c] = tileRef{ref: plan.Ref{Core: -1}}
	}
	e.haloRecvRefs[id] = make([][]plan.Ref, n)

	for core := 0; core < n; core++ {
		reg := e.expanded[id][core]
		if reg.Empty() {
			continue
		}
		sub := e.subForRegion(l, core, reg)
		loHalo, hiHalo, width := false, false, 0
		if len(sendRegs[core]) > 0 && dir.Spatial() {
			loHalo, hiHalo, width = haloEdges(sub.Out, dir.Axis(), sendRegs[core])
		}
		recvHere := int64(0)
		if myRecv != nil {
			recvHere = myRecv[core]
		}
		// Residents the tiler does not plan but must budget around: the
		// halo-receive staging buffer and each forwarding producer's
		// held output, live for the sub-layer's whole execution.
		extra := recvHere
		for j, pid := range l.Inputs {
			if cats[j] == catStratum || cats[j] == catForward {
				extra += e.expanded[pid][core].Bytes(e.g.Layer(pid).DType)
			}
		}
		// The shrink scale exists to leave headroom for cross-layer
		// pipeline overlap (the next layer's bounded prefetch against
		// this layer's draining tail). Held and forwarded buffers do not
		// pipeline — their boundaries have no store/load traffic to
		// overlap with — so they are charged at face value and only the
		// streaming remainder is scaled.
		budget := int64(0)
		if e.budgetScale > 0 && e.budgetScale < 1 {
			spm := e.a.Cores[core].SPMBytes
			resident := extra
			if holdOut {
				resident += sub.Out.Bytes(l.DType)
			}
			if resident < spm {
				budget = resident + int64(e.budgetScale*float64(spm-resident))
			} else {
				budget = int64(e.budgetScale * float64(spm))
			}
		}
		tp, err := e.tiler.PlanSubLayer(l, inShapes, sub, core, tiling.Options{
			Direction:          dir,
			HaloLo:             loHalo,
			HaloHi:             hiHalo,
			HaloWidth:          width,
			HaloFirst:          e.opt.HaloFirst,
			ForwardedInput:     fwd,
			HoldOutput:         holdOut,
			ExtraResidentBytes: extra,
			Budget:             budget,
		})
		if err != nil {
			return fmt.Errorf("core: layer %s: %w", l.Name, err)
		}
		if err := tiling.Validate(&tp, sub); err != nil {
			return fmt.Errorf("core: layer %s: %v", l.Name, err)
		}
		e.emitSubLayer(l, core, sub, &tp, sendRegs[core], recvHere)
	}

	// A halo-exchange to the next layer still implies a rendezvous:
	// the receivers must know every sender's DMA finished (the
	// "implicit synchronization" of halo-exchange the paper contrasts
	// with stratum execution). The same barrier also publishes stores
	// for any catGlobal consumers. Only strata run barrier-free.
	haloSync := false
	for _, b := range nextRecv {
		if b > 0 {
			haloSync = true
		}
	}
	if e.needBarrier[id] || (haloSync && n > 1) {
		bid := e.nextBarrier
		e.nextBarrier++
		refs := make([]plan.Ref, n)
		for core := 0; core < n; core++ {
			// The rendezvous publishes the halo sends; stores are added
			// only when catGlobal consumers will read them through the
			// barrier — coupling the halo release to unrelated stores
			// would defeat the halo-first policy.
			var deps []plan.Ref
			if e.needBarrier[id] {
				for _, sr := range e.storeRefs[id][core] {
					deps = append(deps, sr.ref)
				}
			}
			if hs := e.haloSendRefs[id][core]; hs.ref.Core >= 0 {
				deps = append(deps, hs.ref)
			}
			refs[core] = e.push(core, plan.Instr{
				Op: plan.Barrier, Layer: id, Tile: -1, Deps: deps,
				BarrierID: bid, Note: fmt.Sprintf("sync %s", l.Name),
			})
		}
		e.barrierRefs[id] = refs
	}
	return nil
}

// emitSubLayer lowers one core's tiles.
func (e *emitter) emitSubLayer(l *graph.Layer, core int, sub partition.SubLayer,
	tp *tiling.Plan, sendRegs []tensor.Region, recvBytes int64) {

	id := l.ID
	cats := e.cats[id]

	// Halo receive: one transfer covering all remote input data,
	// issued before the tile pipeline so it is in flight early.
	var haloRecv []plan.Ref
	if recvBytes > 0 {
		var deps []plan.Ref
		for j, pid := range l.Inputs {
			if cats[j] != catForward {
				continue
			}
			// The rendezvous barrier after the producer publishes every
			// sender's halo store; depend on it plus the sends directly.
			if refs, ok := e.barrierRefs[pid]; ok {
				deps = append(deps, refs[core])
			}
			for k := range e.haloSendRefs[pid] {
				if k == core {
					continue
				}
				if sr := e.haloSendRefs[pid][k]; sr.ref.Core >= 0 {
					deps = append(deps, sr.ref)
				}
			}
		}
		r := e.push(core, plan.Instr{
			Op: plan.LoadHalo, Layer: id, Tile: -1, Bytes: recvBytes,
			Deps: deps, Note: fmt.Sprintf("halo-recv %s", l.Name),
		})
		haloRecv = append(haloRecv, r)
	}
	e.haloRecvRefs[id][core] = haloRecv

	// Kernel slices are loaded once per CGroup, when the group's first
	// tile is reached.
	kernelRefByGroup := map[int]plan.Ref{}

	// Identical input regions across tiles (input-stationary channel
	// streaming) are loaded once and reused. Under ReloadInputs the
	// cache is scoped to the current kernel group — the tiler budgeted
	// only one group's regions as concurrently resident.
	type inKey struct {
		j int
		r tensor.Region
	}
	loadedInputs := map[inKey]plan.Ref{}

	// chainGate bounds cross-layer kernel prefetch. A forwarded layer's
	// early kernel loads would otherwise have no dependencies at all,
	// and the in-order load engine would fetch every chain layer's
	// kernels before the first layer finished computing; gating them on
	// the grandparent chain layer's last compute keeps at most one
	// layer's kernels prefetched ahead of the compute front.
	var chainGate []plan.Ref
	if p1 := e.chainInput(id); p1 >= 0 {
		if p2 := e.chainInput(p1); p2 >= 0 {
			if refs := e.computeRefs[p2][core]; len(refs) > 0 {
				chainGate = []plan.Ref{refs[len(refs)-1].ref}
			}
		}
	}

	// Which tiles still owe halo data? Send as soon as the last
	// contributor finishes computing.
	sendBytes := int64(0)
	for _, r := range sendRegs {
		sendBytes += r.Bytes(l.DType)
	}
	lastHaloTile := -1
	if sendBytes > 0 {
		for i, t := range tp.Tiles {
			for _, r := range sendRegs {
				if t.Out.Overlaps(r) {
					lastHaloTile = i
				}
			}
		}
	}

	prodRemote := make([][]tensor.Region, len(l.Inputs)) // producer regions on other cores
	for j, pid := range l.Inputs {
		if pp := &e.plans[pid]; pp.Subs != nil {
			for k, s := range pp.Subs {
				if k != core && !s.Empty() {
					prodRemote[j] = append(prodRemote[j], s.Out)
				}
			}
		}
	}

	var computes []plan.Ref
	var stores []plan.Ref
	haloContrib := make([]bool, len(tp.Tiles))
	prevGroup := -1
	for ti, t := range tp.Tiles {
		var tileLoads []plan.Ref

		if tp.ReloadInputs && ti > 0 && t.CGroup != prevGroup {
			loadedInputs = map[inKey]plan.Ref{}
		}
		prevGroup = t.CGroup

		// Double-buffer: this tile's loads reuse the input slot of
		// tile ti-2; its compute reuses the output slot of tile ti-2.
		// Without double buffering there is a single slot, so the
		// previous tile must fully finish first.
		slotLag := 2
		if e.opt.NoDoubleBuffer {
			slotLag = 1
		}
		var slotDep []plan.Ref
		if ti >= slotLag {
			slotDep = append(slotDep, computes[ti-slotLag])
		}

		for j := range l.Inputs {
			if cats[j] == catStratum || cats[j] == catForward {
				continue // resident via forwarding
			}
			region := t.In[j]
			b := region.Bytes(e.g.Layer(l.Inputs[j]).DType)
			if b <= 0 {
				continue
			}
			key := inKey{j, region}
			if ref, ok := loadedInputs[key]; ok {
				tileLoads = append(tileLoads, ref) // input-stationary reuse
				continue
			}
			var deps []plan.Ref
			if cats[j] == catGlobal {
				deps = append(e.globalReadDeps(l.Inputs[j], core, region), slotDep...)
			} else { // catInput: the user-supplied tensor is ready
				deps = slotDep
			}
			ref := e.push(core, plan.Instr{
				Op: plan.LoadInput, Layer: id, Tile: t.Index, Bytes: b,
				Deps: deps,
				Note: fmt.Sprintf("ld %s t%d", l.Name, t.Index),
			})
			loadedInputs[key] = ref
			tileLoads = append(tileLoads, ref)
		}
		if t.KernelBytes > 0 {
			if _, ok := kernelRefByGroup[t.CGroup]; !ok {
				// The kernel shares the tile's load slot: its prefetch is
				// bounded by the same double-buffer lag as the input loads,
				// so the tiler's [first-1, last] residency window holds.
				kdeps := slotDep
				if ti < slotLag {
					kdeps = chainGate
				}
				kernelRefByGroup[t.CGroup] = e.push(core, plan.Instr{
					Op: plan.LoadKernel, Layer: id, Tile: t.Index, Bytes: t.KernelBytes,
					Deps: kdeps,
					Note: fmt.Sprintf("ld-kn %s g%d", l.Name, t.CGroup),
				})
			}
		}

		// Compute dependencies: own loads, the group kernel, forwarded
		// producer computes, halo receive, output slot.
		deps := append([]plan.Ref{}, tileLoads...)
		if kref, ok := kernelRefByGroup[t.CGroup]; ok {
			deps = append(deps, kref)
		}
		for j, pid := range l.Inputs {
			if cats[j] != catStratum && cats[j] != catForward {
				continue
			}
			deps = append(deps, e.overlappingRefs(e.computeRefs[pid][core], t.In[j])...)
			if cats[j] == catForward && len(haloRecv) > 0 {
				for _, rr := range prodRemote[j] {
					if t.In[j].Overlaps(rr) {
						deps = append(deps, haloRecv...)
						break
					}
				}
			}
		}
		if ti >= slotLag && len(stores) > ti-slotLag && stores[ti-slotLag].Core >= 0 {
			deps = append(deps, stores[ti-slotLag])
		}
		comp := e.push(core, plan.Instr{
			Op: plan.Compute, Layer: id, Tile: t.Index, MACs: t.MACs,
			OutBytes: t.Out.Bytes(l.DType),
			Deps:     deps,
			Note:     fmt.Sprintf("comp %s t%d", l.Name, t.Index),
		})
		computes = append(computes, comp)
		e.computeRefs[id][core] = append(e.computeRefs[id][core], tileRef{reg: t.Out, ref: comp})

		// Store the planned (non-redundant) portion.
		storeRef := plan.Ref{Core: -1}
		if e.needStore[id] {
			planned := t.Out
			if subs := e.plans[id].Subs; subs != nil {
				planned = t.Out.Intersect(subs[core].Out)
			}
			if b := planned.Bytes(l.DType); b > 0 {
				storeRef = e.push(core, plan.Instr{
					Op: plan.Store, Layer: id, Tile: t.Index, Bytes: b,
					Deps: []plan.Ref{comp},
					Note: fmt.Sprintf("st %s t%d", l.Name, t.Index),
				})
				e.storeRefs[id][core] = append(e.storeRefs[id][core], tileRef{reg: planned, ref: storeRef})
			}
		}
		stores = append(stores, storeRef)

		// Emit the halo send as soon as its last contributor computed.
		if ti == lastHaloTile && sendBytes > 0 {
			var hdeps []plan.Ref
			for hi, ht := range tp.Tiles[:ti+1] {
				if haloContrib[hi] || overlapsAny(ht.Out, sendRegs) {
					hdeps = append(hdeps, computes[hi])
				}
			}
			sendReg := boundingAll(sendRegs)
			ref := e.push(core, plan.Instr{
				Op: plan.StoreHalo, Layer: id, Tile: -1, Bytes: sendBytes,
				Deps: hdeps,
				Note: fmt.Sprintf("halo-send %s", l.Name),
			})
			e.haloSendRefs[id][core] = tileRef{reg: sendReg, ref: ref}
		}
		if overlapsAny(t.Out, sendRegs) {
			haloContrib[ti] = true
		}
	}
}

// chainInput returns the layer whose output stays resident in SPM as
// one of id's inputs (a stratum or forwarding producer), or -1.
func (e *emitter) chainInput(id graph.LayerID) graph.LayerID {
	for j, pid := range e.g.Layer(id).Inputs {
		if c := e.cats[id][j]; c == catStratum || c == catForward {
			return pid
		}
	}
	return graph.LayerID(-1)
}

// overlappingRefs returns the refs whose recorded regions overlap r.
func (e *emitter) overlappingRefs(refs []tileRef, r tensor.Region) []plan.Ref {
	var out []plan.Ref
	for _, tr := range refs {
		if tr.reg.Overlaps(r) {
			out = append(out, tr.ref)
		}
	}
	return out
}

// globalReadDeps returns what a global-memory read of producer pid's
// data must wait for. Data the same core produced and stored is
// trackable through the core's own DMA-completion status, so it can be
// prefetched before the barrier; anything touching remote cores' data
// waits for the barrier after pid.
func (e *emitter) globalReadDeps(pid graph.LayerID, core int, r tensor.Region) []plan.Ref {
	if subs := e.plans[pid].Subs; subs != nil && !subs[core].Out.Empty() && subs[core].Out.Contains(r) {
		if deps := e.overlappingRefs(e.storeRefs[pid][core], r); len(deps) > 0 {
			return deps
		}
	}
	if refs, ok := e.barrierRefs[pid]; ok {
		return []plan.Ref{refs[core]}
	}
	// No barrier: single-core program order, or a store the same core
	// performed earlier.
	var deps []plan.Ref
	if srs, ok := e.storeRefs[pid]; ok {
		for c := range srs {
			if c == core {
				deps = append(deps, e.overlappingRefs(srs[c], r)...)
			}
		}
		// Cross-core reads without a barrier only happen on
		// single-core archs or for inputs; depend on every store
		// covering the region to stay conservative.
		if e.a.NumCores() > 1 {
			for c := range srs {
				if c != core {
					deps = append(deps, e.overlappingRefs(srs[c], r)...)
				}
			}
		}
	}
	return deps
}

func overlapsAny(r tensor.Region, regs []tensor.Region) bool {
	for _, q := range regs {
		if r.Overlaps(q) {
			return true
		}
	}
	return false
}

func boundingAll(regs []tensor.Region) tensor.Region {
	var out tensor.Region
	for i, r := range regs {
		if i == 0 {
			out = r
			continue
		}
		for _, ax := range []tensor.Axis{tensor.AxisH, tensor.AxisW, tensor.AxisC} {
			lo := out.Off.Dim(ax)
			if v := r.Off.Dim(ax); v < lo {
				lo = v
			}
			hi := out.End(ax)
			if v := r.End(ax); v > hi {
				hi = v
			}
			out.Off = out.Off.WithDim(ax, lo)
			out.Ext = out.Ext.WithDim(ax, hi-lo)
		}
	}
	return out
}

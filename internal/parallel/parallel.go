// Package parallel provides the bounded worker pool the toolchain uses
// to exploit host cores: experiment sweeps, per-layer partition
// planning, autotune candidate evaluation, and the reference-executor
// kernels all fan out through it.
//
// The engine guarantees determinism: every task writes only its own
// index's slot, results are collected in index order, and the reported
// error (or re-raised panic) is always the one produced by the lowest
// failing index — exactly what a serial loop would surface first. A
// parallel run is therefore byte-for-byte identical to a serial run;
// only wall-clock time differs.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means "use
// runtime.GOMAXPROCS(0)" so the default tracks the host.
var workers atomic.Int64

// Workers returns the effective worker count: the value set by
// SetWorkers, or runtime.GOMAXPROCS(0) when unset.
func Workers() int {
	if n := workers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers fixes the pool size for subsequent ForEach/Map calls.
// n == 1 forces the serial path everywhere; n <= 0 restores the
// GOMAXPROCS default. It returns the previous effective value.
func SetWorkers(n int) int {
	prev := Workers()
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
	return prev
}

// Serial reports whether the engine is configured to run serially.
func Serial() bool { return Workers() <= 1 }

// failure records what went wrong at one index: at most one of err and
// panicked is meaningful.
type failure struct {
	index    int
	err      error
	panicked any
}

// run executes fn(0..n-1) on a bounded pool. It returns the failure of
// the lowest failing index, if any. Indexes above a known failure may
// be skipped: their results are never observed, because the caller
// either returns the error or re-panics.
func run(n int, fn func(i int) error) *failure {
	if n <= 0 {
		return nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			f := invoke(i, fn)
			if f != nil {
				return f
			}
		}
		return nil
	}

	var (
		next   atomic.Int64 // next index to claim
		bail   atomic.Int64 // lowest known failing index + 1 (0 = none)
		mu     sync.Mutex
		worst  *failure
		record = func(f *failure) {
			mu.Lock()
			if worst == nil || f.index < worst.index {
				worst = f
			}
			mu.Unlock()
			for {
				cur := bail.Load()
				if cur != 0 && cur <= int64(f.index)+1 {
					return
				}
				if bail.CompareAndSwap(cur, int64(f.index)+1) {
					return
				}
			}
		}
	)

	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				// Skip work that cannot matter: a lower index already
				// failed, so the caller will never look at slot i.
				if b := bail.Load(); b != 0 && int64(i) > b-1 {
					continue
				}
				if f := invoke(i, fn); f != nil {
					record(f)
				}
			}
		}()
	}
	wg.Wait()
	return worst
}

// invoke runs fn(i), converting a panic into a failure so it can be
// re-raised on the caller's goroutine (the reference executor uses
// panics to flag insufficient halos, and recover() only works on the
// panicking goroutine).
func invoke(i int, fn func(i int) error) (f *failure) {
	defer func() {
		if r := recover(); r != nil {
			f = &failure{index: i, panicked: r}
		}
	}()
	if err := fn(i); err != nil {
		return &failure{index: i, err: err}
	}
	return nil
}

// ForEach runs fn for every index in [0, n) on the worker pool and
// waits for completion. It returns the error of the lowest failing
// index; a panic in fn is re-raised on the calling goroutine.
func ForEach(n int, fn func(i int) error) error {
	return raise(run(n, fn))
}

// Map runs fn for every index in [0, n) and collects the results in
// index order. On error only the error of the lowest failing index is
// returned (with a nil slice), matching what a serial loop that stops
// at the first failure would report.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx[T](nil, n, func(_ context.Context, i int) (T, error) { return fn(i) })
}

// ForEachCtx is ForEach with cooperative cancellation: ctx is polled
// before each index runs, so a canceled sweep stops claiming work and
// returns ctx's error (unless a lower index already failed with its
// own error, which still wins — the serial-equivalence contract). A
// nil ctx behaves exactly like ForEach.
func ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		f := run(n, func(i int) error { return fn(nil, i) })
		return raise(f)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	f := run(n, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return fn(ctx, i)
	})
	return raise(f)
}

// MapCtx is Map with cooperative cancellation; see ForEachCtx.
func MapCtx[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// raise converts a failure into the caller's error, re-panicking on
// the calling goroutine when the failure was a panic.
func raise(f *failure) error {
	if f == nil {
		return nil
	}
	if f.panicked != nil {
		panic(f.panicked)
	}
	return f.err
}

package sim

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// FailureKind classifies why a simulated core became unusable.
type FailureKind int

const (
	// FailCoreDeath: a fault.Death fired while the core still had
	// unexecuted instructions.
	FailCoreDeath FailureKind = iota
	// FailDMAExhausted: a single DMA transfer was dropped more times
	// than the plan's retry bound — the runtime treats the core's link
	// as dead.
	FailDMAExhausted
)

func (k FailureKind) String() string {
	switch k {
	case FailCoreDeath:
		return "core-death"
	case FailDMAExhausted:
		return "dma-retries-exhausted"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// CoreFailure is the typed error a fault-injected run returns when a
// core becomes unusable mid-program. It carries everything a recovery
// runtime needs: which core died, when, the checkpoint to resume from,
// and the statistics accumulated up to the failure (so degraded-mode
// latency can account for the wasted cycles).
type CoreFailure struct {
	Kind FailureKind
	// Core is the global core index that failed.
	Core int
	// Placement indexes the placement the core was running (0 for
	// single-program Run; -1 if the core was unassigned).
	Placement int
	// AtCycle is the simulated time of the failure.
	AtCycle float64
	// Completed is the checkpoint: the longest prefix of the failed
	// placement's layer execution order (its strata, flattened) whose
	// layers all finished every instruction AND whose results needed
	// outside the prefix were stored to global memory. Because
	// forwarding and stratum layers keep intermediates in SPM without
	// stores, this cut naturally falls on a barrier or stratum
	// boundary — exactly the paper's synchronization points.
	Completed []graph.LayerID
	// Partial holds the statistics accumulated up to AtCycle.
	Partial Stats
}

func (f *CoreFailure) Error() string {
	return fmt.Sprintf("sim: core %d failed (%s) at cycle %.0f with %d layers checkpointed",
		f.Core, f.Kind, f.AtCycle, len(f.Completed))
}

// faultState is the per-run mutable view of a fault.Plan: pending
// timed events plus the current speed/liveness of every core.
type faultState struct {
	plan       *fault.Plan
	maxRetries int
	speed      []float64
	dead       []bool
	throttles  []fault.Throttle // pending, sorted by AtCycle
	deaths     []fault.Death    // pending, sorted by AtCycle
}

// firedEvent is one fault event applied at the current time.
type firedEvent struct {
	death    bool
	core     int
	oldSpeed float64
	newSpeed float64
}

// newFaultState validates and instantiates a plan for ncores cores.
// An empty (or nil) plan yields a nil state, keeping the fault-free
// simulation path untouched. Events naming cores outside the
// architecture are dropped here — inert by contract.
func newFaultState(p *fault.Plan, ncores int) (*faultState, error) {
	if p.Empty() {
		return nil, nil
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	fs := &faultState{
		plan:       p,
		maxRetries: p.Retries(),
		speed:      make([]float64, ncores),
		dead:       make([]bool, ncores),
	}
	for i := range fs.speed {
		fs.speed[i] = 1
	}
	for _, t := range p.SortedThrottles() {
		if t.Core < ncores {
			fs.throttles = append(fs.throttles, t)
		}
	}
	for _, d := range p.SortedDeaths() {
		if d.Core < ncores {
			fs.deaths = append(fs.deaths, d)
		}
	}
	return fs, nil
}

// next returns the earliest pending fault-event time, or +Inf.
func (fs *faultState) next() float64 {
	t := math.Inf(1)
	if len(fs.throttles) > 0 {
		t = fs.throttles[0].AtCycle
	}
	if len(fs.deaths) > 0 && fs.deaths[0].AtCycle < t {
		t = fs.deaths[0].AtCycle
	}
	return t
}

// fire pops and applies every event due at or before now, in time
// order, and returns them for the simulator to act on (rescaling
// in-flight compute, failing dead cores with pending work).
func (fs *faultState) fire(now float64) []firedEvent {
	var out []firedEvent
	for {
		tT, tD := math.Inf(1), math.Inf(1)
		if len(fs.throttles) > 0 {
			tT = fs.throttles[0].AtCycle
		}
		if len(fs.deaths) > 0 {
			tD = fs.deaths[0].AtCycle
		}
		switch {
		case tT <= now+eps && tT <= tD:
			th := fs.throttles[0]
			fs.throttles = fs.throttles[1:]
			old := fs.speed[th.Core]
			fs.speed[th.Core] = th.Factor
			out = append(out, firedEvent{core: th.Core, oldSpeed: old, newSpeed: th.Factor})
		case tD <= now+eps:
			d := fs.deaths[0]
			fs.deaths = fs.deaths[1:]
			fs.dead[d.Core] = true
			out = append(out, firedEvent{death: true, core: d.Core})
		default:
			return out
		}
	}
}

// checkpoint computes the recovery cut for a partially executed
// program: the longest prefix of the flattened strata order such that
// (a) every prefix layer completed all its instructions, and (b) every
// prefix layer with a consumer outside the prefix published its output
// to global memory via at least one Store. Condition (b) is what makes
// the cut safe — forwarded/stratum intermediates live only in the dead
// core's SPM and cannot seed a resumed run.
func checkpoint(p *plan.Program, done, total []int, hasStore []bool) []graph.LayerID {
	var order []graph.LayerID
	for _, s := range p.Strata {
		order = append(order, s...)
	}
	if len(order) == 0 {
		return nil
	}
	pos := make(map[graph.LayerID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	// k = longest fully-executed prefix.
	k := 0
	for k < len(order) {
		id := order[k]
		if done[id] < total[id] {
			break
		}
		k++
	}
	// Largest j <= k where every prefix layer is either stored or has
	// all consumers inside the prefix.
	for j := k; j > 0; j-- {
		ok := true
		for i := 0; i < j && ok; i++ {
			id := order[i]
			if hasStore[id] {
				continue
			}
			for _, u := range p.Graph.Users(id) {
				pu, in := pos[u]
				if !in || pu >= j {
					ok = false
					break
				}
			}
		}
		if ok {
			return append([]graph.LayerID(nil), order[:j]...)
		}
	}
	return nil
}

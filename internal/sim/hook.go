package sim

import (
	"repro/internal/graph"
	"repro/internal/plan"
)

// Hook observes the event engine's execution for metrics collection
// (package metrics implements it). The contract is strict so the hook
// cannot perturb the simulation or its performance:
//
//   - A nil Config.Hook costs one predicted branch per retired
//     instruction and per bus reallocation — the zero-allocation
//     steady-state path is unchanged.
//   - Methods are called synchronously from the engine loop and must
//     not retain pointers into engine scratch; both sample types are
//     plain values with no references, so storing them is safe.
//   - The hook is a pure observer: the engine's results are
//     bit-identical with and without one (the equivalence suite runs a
//     recording hook to enforce this).
//   - Only the production event engine (engine.go) feeds hooks. The
//     retained reference engine ignores Config.Hook — it exists as the
//     bit-identity oracle and stays unobserved and boring.
type Hook interface {
	// OnInstr fires once per retired instruction, in completion order
	// (the same order Stats accumulation and the trace observe).
	OnInstr(InstrSample)
	// OnBus fires whenever the bus water-filling set is rebuilt
	// (membership or core-speed change) with the new allocation, and
	// once more at the end of the run with an empty allocation, closing
	// the series. Between consecutive samples the allocation is
	// constant, so the series is exact, not sampled.
	OnBus(BusSample)
}

// InstrSample is one retired instruction, as seen by a Hook.
type InstrSample struct {
	// Placement indexes the Placement slice of the run (0 for Run).
	Placement int
	// Core is the global core that executed the instruction.
	Core int
	// Index is the instruction's position within its core-local stream.
	Index int
	Op    plan.OpCode
	Layer graph.LayerID
	Tile  int
	Start float64 // cycles; retried DMA transfers keep their first issue time
	End   float64 // cycles
	// Bytes and MACs are the instruction's declared sizes (a dropped
	// and re-issued transfer reports Bytes once; Retries counts the
	// extra bus trips).
	Bytes   int64
	MACs    int64
	Retries int
}

// BusSample is one step of the shared-bus allocation series: the
// water-filling result at time At, valid until the next sample.
type BusSample struct {
	At float64 // cycles
	// Demand is the sum of the in-flight bus channels' DMA-engine
	// capacities (bytes/cycle) — what the cores would move with no bus
	// ceiling.
	Demand float64
	// Granted is the sum of the allocated rates (bytes/cycle);
	// Granted <= min(Demand, Arch.BusBytesPerCycle). Demand > Granted
	// means the bus is contended.
	Granted float64
	// Channels is the number of transfers sharing the bus.
	Channels int
	// DirectGranted is the aggregate rate of transfers on the dedicated
	// halo interconnect (zero unless Arch.DirectHaloInterconnect).
	DirectGranted float64
	// DirectChannels is the number of transfers on the dedicated link.
	DirectChannels int
}

// Package ops defines the operator set used by the benchmark networks
// and the shape/halo/cost arithmetic the compiler needs for each
// operator.
//
// An Op answers four questions about a layer:
//
//  1. Shape inference: what output shape follows from the input shapes.
//  2. Region mapping: to compute a given output region, which region of
//     each input is required (the receptive field). This is the basis
//     for halo computation in spatial partitioning, stratum
//     construction, and tiling.
//  3. Cost: how many multiply-accumulate-equivalent operations and how
//     many weight bytes a given output region costs.
//  4. Partition legality: along which axes the output may be split
//     without a partial-sum reduction stage (Table 1 in the paper
//     marks reduction-requiring methods as undesirable; the compiler
//     only uses the reduction-free ones).
package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Kind discriminates operator types.
type Kind int

// Operator kinds.
const (
	KindInput Kind = iota
	KindConv2D
	KindDepthwiseConv2D
	KindTransposeConv2D
	KindMaxPool2D
	KindAvgPool2D
	KindGlobalAvgPool
	KindFullyConnected
	KindAdd
	KindMul
	KindConcat
	KindActivation
	KindSoftmax
	KindResize
)

// String returns the operator kind name.
func (k Kind) String() string {
	switch k {
	case KindInput:
		return "Input"
	case KindConv2D:
		return "Conv2D"
	case KindDepthwiseConv2D:
		return "DepthwiseConv2D"
	case KindTransposeConv2D:
		return "TransposeConv2D"
	case KindMaxPool2D:
		return "MaxPool2D"
	case KindAvgPool2D:
		return "AvgPool2D"
	case KindGlobalAvgPool:
		return "GlobalAvgPool"
	case KindFullyConnected:
		return "FullyConnected"
	case KindAdd:
		return "Add"
	case KindMul:
		return "Mul"
	case KindConcat:
		return "Concat"
	case KindActivation:
		return "Activation"
	case KindSoftmax:
		return "Softmax"
	case KindResize:
		return "Resize"
	case KindCrop:
		return "Crop"
	case KindChannelSlice:
		return "ChannelSlice"
	case KindChannelShuffle:
		return "ChannelShuffle"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is the interface every operator implements.
type Op interface {
	// Kind returns the operator discriminator.
	Kind() Kind

	// OutShape infers the output shape from the input shapes. It
	// returns an error when the inputs are inconsistent with the
	// operator's attributes (wrong arity, mismatched shapes, or a
	// kernel larger than its padded input).
	OutShape(in []tensor.Shape) (tensor.Shape, error)

	// MACs returns the number of multiply-accumulate-equivalent
	// operations needed to compute an output region of extent ext.
	MACs(ext tensor.Shape, in []tensor.Shape) int64

	// KernelBytes returns the weight (plus bias) bytes needed to
	// compute an output region of extent ext. Operators without
	// weights return 0. A full-output extent yields the layer's total
	// kernel size; a channel-partitioned extent yields the
	// proportional kernel slice (channel partitioning splits the
	// kernel, Table 1 row 3).
	KernelBytes(ext tensor.Shape, in []tensor.Shape, dt tensor.DType) int64

	// InputRegion maps an output region to the region of input inIdx
	// required to compute it, clamped to the input bounds (padding at
	// tensor borders therefore requires no halo).
	InputRegion(out tensor.Region, inIdx int, in []tensor.Shape) tensor.Region

	// SupportsPartition reports whether the output may be split along
	// axis a with each part computable independently (no partial-sum
	// reduction across parts).
	SupportsPartition(a tensor.Axis) bool

	// ChannelWise reports operators that process channels
	// independently with no cross-channel kernel (depthwise
	// convolution, pooling): heuristic h4 prefers channel partitioning
	// for these.
	ChannelWise() bool

	// String describes the operator and its attributes.
	String() string
}

// Elementwise reports whether op maps each output element from the
// identically positioned input element(s): its InputRegion is the
// identity and it never needs halo data.
func Elementwise(op Op) bool {
	switch op.Kind() {
	case KindAdd, KindMul, KindActivation:
		return true
	default:
		return false
	}
}

// Input is the graph source pseudo-operator; it has no inputs and
// produces the externally supplied tensor.
type Input struct {
	Shape tensor.Shape
}

// Kind implements Op.
func (Input) Kind() Kind { return KindInput }

// OutShape implements Op.
func (o Input) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if len(in) != 0 {
		return tensor.Shape{}, fmt.Errorf("ops: Input takes no inputs, got %d", len(in))
	}
	return o.Shape, nil
}

// MACs implements Op; the input costs nothing to "compute".
func (Input) MACs(tensor.Shape, []tensor.Shape) int64 { return 0 }

// KernelBytes implements Op.
func (Input) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op; it is never called for sources.
func (Input) InputRegion(out tensor.Region, _ int, _ []tensor.Shape) tensor.Region { return out }

// SupportsPartition implements Op: the source tensor may be sliced any way.
func (Input) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Input) ChannelWise() bool { return false }

func (o Input) String() string { return fmt.Sprintf("Input(%s)", o.Shape) }

// checkArity returns an error unless len(in) == want.
func checkArity(name string, in []tensor.Shape, want int) error {
	if len(in) != want {
		return fmt.Errorf("ops: %s expects %d input(s), got %d", name, want, len(in))
	}
	return nil
}

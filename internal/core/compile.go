package core

import (
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/stratum"
	"repro/internal/tensor"
)

// Compile lowers graph g for architecture a under the given options.
func Compile(g *graph.Graph, a *arch.Arch, opt Options) (*Result, error) {
	t0 := time.Now()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	// Stage 1: partition every layer (heuristics h1-h5 or forced mode).
	var tm Timing
	mark := time.Now()
	part := partition.New(g, a)
	part.Mode = opt.Partitioning
	part.WeightScale = opt.WeightScale
	plans := part.PlanAll()
	tm.Partition = time.Since(mark)

	// Stage 2: schedule layer execution. Algorithm 1's
	// spatial_partitioning() predicate reads the partition decision;
	// the pure depth-/breadth-first orders serve as ablations.
	mark = time.Now()
	var order []graph.LayerID
	switch opt.Scheduling {
	case ScheduleDepthFirst:
		order = schedule.DepthFirst(g)
	case ScheduleBreadthFirst:
		order = schedule.BreadthFirst(g)
	default:
		pred := func(l *graph.Layer) bool { return plans[l.ID].Direction.Spatial() }
		order = schedule.New(g, pred).Order()
	}
	if err := schedule.Verify(g, order); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tm.Schedule = time.Since(mark)

	// Stage 3: stratum construction (Algorithm 2), or singleton strata
	// when disabled.
	mark = time.Now()
	builder := stratum.New(g, a, plans, order)
	var strata []stratum.Stratum
	if opt.Stratum {
		for _, s := range builder.Build() {
			strata = append(strata, builder.TrimToFit(&s)...)
		}
	} else {
		strata = singletonStrata(g, plans, order)
	}
	if err := builder.Validate(strata); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var redundant int64
	for _, s := range strata {
		redundant += s.RedundantMACs
	}
	tm.Stratum = time.Since(mark)

	// Stage 4: tile and lower to per-core instruction streams.
	mark = time.Now()
	em := newEmitter(g, a, opt, plans, order, strata)
	prog, err := em.emit()
	if err != nil {
		return nil, err
	}
	tm.Emit = time.Since(mark)
	tm.Total = time.Since(t0)
	return &Result{
		Program:       prog,
		Plans:         plans,
		Order:         order,
		Strata:        strata,
		RedundantMACs: redundant,
		Timing:        tm,
	}, nil
}

// singletonStrata wraps every executable layer in its own stratum with
// its planned (unexpanded) regions.
func singletonStrata(g *graph.Graph, plans []partition.Plan, order []graph.LayerID) []stratum.Stratum {
	var out []stratum.Stratum
	for _, id := range order {
		if g.Layer(id).IsInput() {
			continue
		}
		regions := make([]tensor.Region, len(plans[id].Subs))
		for i, s := range plans[id].Subs {
			regions[i] = s.Out
		}
		out = append(out, stratum.Stratum{
			Layers:   []graph.LayerID{id},
			Expanded: map[graph.LayerID][]tensor.Region{id: regions},
		})
	}
	return out
}

package autotune

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
)

func TestAutoBalanceNeverWorse(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := AutoBalance(g, a, core.Halo(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 4 {
		t.Fatalf("steps = %d", len(res.Steps))
	}
	// The best result can never be worse than the unscaled first
	// iteration (it is kept if nothing improves).
	if res.BestLatencyCycles > res.Steps[0].LatencyCycles {
		t.Errorf("best %.0f worse than first %.0f", res.BestLatencyCycles, res.Steps[0].LatencyCycles)
	}
	if res.Best == nil {
		t.Fatal("no best result")
	}
	if err := res.Best.Program.Validate(); err != nil {
		t.Errorf("best program invalid: %v", err)
	}
}

func TestAutoBalanceImprovesSkewedArch(t *testing.T) {
	// A platform whose third core is much slower than the cost model
	// believes: pretend equal MACs but give it a tiny real efficiency
	// via bandwidth. The analytic balance overloads it; profiling
	// should shift work away.
	a := arch.Exynos2100Like()
	a.Cores[2].DMABytesPerCycle = 1 // profiled bottleneck
	g := models.ConvChain(4, 96, 96, 16)
	res, err := AutoBalance(g, a, core.Base(), 5)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Steps[0].LatencyCycles
	if res.BestLatencyCycles > first {
		t.Errorf("tuning made it worse: %.0f > %.0f", res.BestLatencyCycles, first)
	}
	// The scale for the slow core should have dropped below the others
	// by the final step.
	last := res.Steps[len(res.Steps)-1].Scale
	if last[2] >= last[0] {
		t.Logf("scales: %v (slow core not deprioritized; acceptable if already balanced)", last)
	}
}

func TestAutoBalanceSingleIteration(t *testing.T) {
	g := models.TinyCNN()
	res, err := AutoBalance(g, arch.SingleCore(), core.Base(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) != 1 {
		t.Errorf("steps = %d, want 1", len(res.Steps))
	}
}

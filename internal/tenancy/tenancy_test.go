package tenancy

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
)

func TestParseSpec(t *testing.T) {
	ts, err := ParseSpec("cam=MobileNetV2:prio=2:slo=4000, seg=DeepLabV3+:slo=40000:arrive=5000:depart=15000,kbd=TinyCNN")
	if err != nil {
		t.Fatal(err)
	}
	want := []Tenant{
		{Name: "cam", Model: "MobileNetV2", Priority: 2, SLOUS: 4000},
		{Name: "seg", Model: "DeepLabV3+", Priority: 1, SLOUS: 40000, ArriveUS: 5000, DepartUS: 15000},
		{Name: "kbd", Model: "TinyCNN", Priority: 1},
	}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("parsed %+v, want %+v", ts, want)
	}
	for _, bad := range []string{
		"",
		"MobileNetV2",                  // no name=
		"x=NoSuchModel",                // unknown model
		"x=TinyCNN:prio=abc",           // bad int
		"x=TinyCNN:wat=1",              // unknown key
		"x=TinyCNN,x=TinyCNN",          // duplicate name
		"x=TinyCNN:arrive=10:depart=5", // departs before arriving
		"x=TinyCNN:slo=-1",             // negative SLO
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

func TestPlacePriorityAndSticky(t *testing.T) {
	a := arch.Exynos2100Like()
	mk := func(name string, prio, idx int) *tenantState {
		return &tenantState{spec: &Tenant{Name: name, Priority: prio}, index: idx}
	}

	// Single tenant owns the platform.
	solo := mk("solo", 1, 0)
	place(a, []*tenantState{solo}, nil)
	if !sameCores(solo.cores, []int{0, 1, 2}) {
		t.Errorf("solo cores = %v", solo.cores)
	}

	// Two tenants: the higher priority gets two cores, fastest first.
	hi, lo := mk("hi", 2, 0), mk("lo", 1, 1)
	place(a, []*tenantState{hi, lo}, nil)
	if len(hi.cores) != 2 || len(lo.cores) != 1 {
		t.Fatalf("shares hi=%v lo=%v", hi.cores, lo.cores)
	}
	if !sameCores(hi.cores, []int{0, 1}) || !sameCores(lo.cores, []int{2}) {
		t.Errorf("placement hi=%v lo=%v, want fastest-first", hi.cores, lo.cores)
	}

	// A third arrival shrinks hi to one core; sticky keeps a held core.
	third := mk("third", 1, 2)
	place(a, []*tenantState{hi, lo, third}, nil)
	if len(hi.cores) != 1 || len(lo.cores) != 1 || len(third.cores) != 1 {
		t.Fatalf("three-way shares hi=%v lo=%v third=%v", hi.cores, lo.cores, third.cores)
	}
	if hi.cores[0] != 0 {
		t.Errorf("hi lost its held fastest core: %v", hi.cores)
	}
	if lo.cores[0] != 2 {
		t.Errorf("lo moved despite holding core 2: %v", lo.cores)
	}
	// Disjoint coverage.
	seen := map[int]bool{}
	for _, ts := range []*tenantState{hi, lo, third} {
		for _, c := range ts.cores {
			if seen[c] {
				t.Fatalf("core %d assigned twice", c)
			}
			seen[c] = true
		}
	}
}

func TestRunSingleTenantNoInterference(t *testing.T) {
	a := arch.Exynos2100Like()
	rep, err := Run(a, []Tenant{{Name: "only", Model: "TinyCNN", Priority: 1}},
		Options{HorizonUS: 2000})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Inferences <= 1 {
		t.Fatalf("2 ms horizon fit only %d TinyCNN inferences", tr.Inferences)
	}
	// No SLO declared: everything counts as a hit.
	if tr.SLOHitPct != 100 {
		t.Errorf("hit rate %.1f%% without an SLO", tr.SLOHitPct)
	}
	// Alone on the platform, shared == isolated.
	if tr.InterferencePct != 0 {
		t.Errorf("solo tenant measured %.2f%% interference", tr.InterferencePct)
	}
	if tr.MeanLatencyUS != tr.IsolatedUS {
		t.Errorf("solo mean %.2f != isolated %.2f", tr.MeanLatencyUS, tr.IsolatedUS)
	}
	if !sameCores(tr.FinalCores, []int{0, 1, 2}) {
		t.Errorf("solo final cores %v", tr.FinalCores)
	}
}

func TestRunCoTenantsMeasureInterference(t *testing.T) {
	a := arch.Exynos2100Like()
	rep, err := Run(a, []Tenant{
		{Name: "a", Model: "ShuffleNetV2", Priority: 2},
		{Name: "b", Model: "ShuffleNetV2", Priority: 1},
	}, Options{HorizonUS: 5000})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Inferences == 0 {
			t.Fatalf("tenant %s served nothing", tr.Name)
		}
		if tr.InterferencePct < 0 {
			t.Errorf("tenant %s: negative interference %.2f%%", tr.Name, tr.InterferencePct)
		}
		if tr.MeanLatencyUS < tr.IsolatedUS {
			t.Errorf("tenant %s: shared %.1fus beat isolated %.1fus", tr.Name, tr.MeanLatencyUS, tr.IsolatedUS)
		}
	}
	// Bus sharing must actually show up for at least one tenant.
	if rep.Tenants[0].InterferencePct == 0 && rep.Tenants[1].InterferencePct == 0 {
		t.Error("two co-located tenants measured zero interference")
	}
}

// A mid-run arrival must preempt the incumbent at a stratum boundary
// and re-map it; a departure hands cores back. Same spec, same report.
func TestRunArrivalDepartureRemapsDeterministically(t *testing.T) {
	a := arch.Exynos2100Like()
	tenants := []Tenant{
		{Name: "cam", Model: "MobileNetV2", Priority: 2, SLOUS: 8000},
		{Name: "burst", Model: "ShuffleNetV2", Priority: 3, SLOUS: 8000, ArriveUS: 3000, DepartUS: 9000},
	}
	opts := Options{HorizonUS: 15000}
	rep, err := Run(a, tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	cam := rep.Tenants[0]
	if cam.Remaps == 0 {
		t.Error("incumbent never re-mapped across the arrival/departure")
	}
	if cam.Preemptions == 0 {
		t.Error("incumbent never preempted at an epoch boundary")
	}
	if cam.Inferences == 0 {
		t.Error("incumbent served nothing")
	}
	burst := rep.Tenants[1]
	if burst.AdmittedUS != 3000 {
		t.Errorf("burst admitted at %.0f, arrived at 3000", burst.AdmittedUS)
	}
	if burst.Inferences == 0 {
		t.Error("burst tenant served nothing in its window")
	}
	if len(burst.FinalCores) != 0 {
		t.Errorf("departed tenant still holds cores %v", burst.FinalCores)
	}
	if !sameCores(cam.FinalCores, []int{0, 1, 2}) {
		t.Errorf("incumbent did not reclaim the platform: %v", cam.FinalCores)
	}
	if rep.Epochs != 3 {
		t.Errorf("expected 3 epochs (arrive/depart split), got %d", rep.Epochs)
	}

	again, err := Run(a, tenants, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("same spec produced different reports")
	}
	var b1, b2 bytes.Buffer
	if err := rep.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := again.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same spec produced different JSON bytes")
	}
}

// With more tenants than cores the lowest precedence queues, and is
// admitted once a departure frees a slot.
func TestRunAdmissionQueuesBeyondCores(t *testing.T) {
	a := arch.Exynos2100Like()
	rep, err := Run(a, []Tenant{
		{Name: "t1", Model: "TinyCNN", Priority: 3, DepartUS: 4000},
		{Name: "t2", Model: "TinyCNN", Priority: 3},
		{Name: "t3", Model: "TinyCNN", Priority: 3},
		{Name: "late", Model: "TinyCNN", Priority: 1},
	}, Options{HorizonUS: 8000})
	if err != nil {
		t.Fatal(err)
	}
	late := rep.Tenants[3]
	if late.AdmittedUS != 4000 {
		t.Errorf("queued tenant admitted at %.0f, want 4000 (t1's departure)", late.AdmittedUS)
	}
	if late.Inferences == 0 {
		t.Error("queued tenant never served after admission")
	}
	for _, tr := range rep.Tenants[:3] {
		if tr.AdmittedUS != 0 {
			t.Errorf("tenant %s admitted at %.0f, want 0", tr.Name, tr.AdmittedUS)
		}
	}
}

// SLO hit accounting: an SLO between the isolated and shared latency
// yields misses while co-located and hits once alone.
func TestRunSLOAccounting(t *testing.T) {
	a := arch.Exynos2100Like()
	// Baseline: measure solo and duo latencies via two probe runs.
	solo, err := Run(a, []Tenant{{Name: "p", Model: "ShuffleNetV2"}}, Options{HorizonUS: 3000})
	if err != nil {
		t.Fatal(err)
	}
	duo, err := Run(a, []Tenant{
		{Name: "p", Model: "ShuffleNetV2"},
		{Name: "q", Model: "ShuffleNetV2"},
	}, Options{HorizonUS: 3000})
	if err != nil {
		t.Fatal(err)
	}
	shared := duo.Tenants[0].MeanLatencyUS
	alone := solo.Tenants[0].MeanLatencyUS
	if shared <= alone {
		t.Skipf("no contention to exploit: shared %.1f <= solo %.1f", shared, alone)
	}
	slo := (shared + alone) / 2
	rep, err := Run(a, []Tenant{
		{Name: "p", Model: "ShuffleNetV2", SLOUS: slo},
		{Name: "q", Model: "ShuffleNetV2", SLOUS: slo, DepartUS: 1500},
	}, Options{HorizonUS: 3000})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Tenants[0]
	if p.SLOHits == 0 {
		t.Error("no hits even after q departed")
	}
	if p.SLOHits == p.Inferences {
		t.Error("no misses even while q was co-located")
	}
	if p.SLOHitPct <= 0 || p.SLOHitPct >= 100 {
		t.Errorf("hit rate %.1f%%, want strictly between 0 and 100", p.SLOHitPct)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	a := arch.Exynos2100Like()
	if _, err := Run(a, nil, Options{}); err == nil {
		t.Error("empty tenant list accepted")
	}
	if _, err := Run(a, []Tenant{{Name: "x", Model: "NoSuchModel"}}, Options{}); err == nil {
		t.Error("unknown model accepted")
	}
	if _, err := Run(a, []Tenant{
		{Name: "x", Model: "TinyCNN"},
		{Name: "x", Model: "TinyCNN"},
	}, Options{}); err == nil {
		t.Error("duplicate tenant names accepted")
	}
}

// The scheduler must work under an explicit compiler configuration.
func TestRunWithExplicitOptions(t *testing.T) {
	a := arch.Exynos2100Like()
	rep, err := Run(a, []Tenant{{Name: "b", Model: "TinyCNN"}},
		Options{HorizonUS: 1000, Opt: core.Base(), OptSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Opt != core.Base().Name() {
		t.Errorf("report opt %q, want %q", rep.Opt, core.Base().Name())
	}
	if rep.Tenants[0].Inferences == 0 {
		t.Error("no inferences under Base")
	}
}

package partition

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/models"
	"repro/internal/parallel"
)

// TestPlanAllParallelMatchesSerial pins the engine's determinism
// guarantee: fanning per-layer planning across workers must produce
// exactly the plans the serial loop produces, for every mode and for
// graphs well past the parallelization threshold.
func TestPlanAllParallelMatchesSerial(t *testing.T) {
	a := arch.Exynos2100Like()
	for _, m := range []string{"InceptionV3", "MobileNetV2", "UNet"} {
		g := models.ByNameMust(m)
		for _, mode := range []Mode{Adaptive, ForceSpatial, ForceChannel} {
			p := New(g, a)
			p.Mode = mode
			p.WeightScale = []float64{1, 0.8, 1.3}

			prev := parallel.SetWorkers(1)
			serial := p.PlanAll()
			parallel.SetWorkers(8)
			par := p.PlanAll()
			parallel.SetWorkers(prev)

			if !reflect.DeepEqual(serial, par) {
				t.Errorf("%s/%s: parallel PlanAll differs from serial", m, mode)
			}
		}
	}
}

package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/tenancy"
)

// TenantLoad couples one tenancy tenant with its offered request rate.
type TenantLoad struct {
	Tenant tenancy.Tenant
	// RPS is the tenant's open-loop (Poisson) arrival rate in
	// requests/second; 0 derives 80% of the tenant's shared-schedule
	// capacity (1/mean shared latency).
	RPS float64
}

// TenantsOptions configures a multi-tenant replay run.
type TenantsOptions struct {
	// HorizonUS is the serving window (default tenancy.DefaultHorizonUS).
	HorizonUS float64
	// Seed drives the per-tenant arrival processes; equal inputs and
	// seeds produce byte-identical reports.
	Seed uint64
	// Tenancy forwards compiler/simulator configuration to the
	// schedule simulation (HorizonUS is overridden by the field above).
	Tenancy tenancy.Options
}

// TenantPoint is one tenant's replay measurement.
type TenantPoint struct {
	Name     string
	Model    string
	Priority int
	SLOUS    float64 `json:",omitempty"`
	// OfferedRPS is the tenant's arrival intensity.
	OfferedRPS float64
	// ServiceUS is the per-inference latency the tenancy schedule
	// measured for this tenant under co-location — the replayed service
	// time. IsolatedUS and InterferencePct echo the schedule's
	// contention accounting.
	ServiceUS       float64
	IsolatedUS      float64
	InterferencePct float64
	Requests        int64
	SLOHits         int64
	SLOHitPct       float64
	Latency         LatencySummary
}

// TenantsReport is a full multi-tenant replay: the underlying tenancy
// schedule plus per-tenant queueing results. Pure function of the
// inputs — no wall-clock fields.
type TenantsReport struct {
	Seed      uint64
	HorizonUS float64
	// Schedule is the gang-round co-scheduling simulation the service
	// times came from.
	Schedule *tenancy.Report
	Tenants  []TenantPoint
}

// RunTenants simulates the tenancy schedule, then replays per-tenant
// Poisson request streams against each tenant's measured shared-
// schedule latency: every tenant owns a serial FIFO server (its core
// subset), so request latency is queueing wait plus the co-scheduled
// service time, and the SLO hit rate accounts for both contention (via
// the tenancy-measured service time) and bursts (via the queue).
func RunTenants(a *arch.Arch, loads []TenantLoad, o TenantsOptions) (*TenantsReport, error) {
	if len(loads) == 0 {
		return nil, fmt.Errorf("loadgen: no tenant loads")
	}
	topts := o.Tenancy
	if o.HorizonUS > 0 {
		topts.HorizonUS = o.HorizonUS
	}
	horizon := topts.HorizonUS
	if horizon <= 0 {
		horizon = tenancy.DefaultHorizonUS
		topts.HorizonUS = horizon
	}
	tenants := make([]tenancy.Tenant, len(loads))
	for i, ld := range loads {
		tenants[i] = ld.Tenant
	}
	sched, err := tenancy.Run(a, tenants, topts)
	if err != nil {
		return nil, err
	}

	rep := &TenantsReport{Seed: o.Seed, HorizonUS: horizon, Schedule: sched}
	for i, ld := range loads {
		tr := sched.Tenants[i]
		rep.Tenants = append(rep.Tenants, replayTenant(&ld, &tr, horizon, o.Seed, i))
	}
	return rep, nil
}

// replayTenant runs one tenant's open-loop FIFO queue over its admitted
// window. Requests arriving while the tenant was never admitted (no
// measured service time) are all SLO misses with zero latency recorded.
func replayTenant(ld *TenantLoad, tr *tenancy.TenantReport, horizonUS float64, seed uint64, index int) TenantPoint {
	p := TenantPoint{
		Name:            tr.Name,
		Model:           tr.Model,
		Priority:        tr.Priority,
		SLOUS:           tr.SLOUS,
		ServiceUS:       round3(tr.MeanLatencyUS),
		IsolatedUS:      round3(tr.IsolatedUS),
		InterferencePct: round3(tr.InterferencePct),
	}
	svc := tr.MeanLatencyUS
	rate := ld.RPS
	if rate <= 0 && svc > 0 {
		rate = 0.8 * 1e6 / svc
	}
	p.OfferedRPS = round3(rate)

	start := tr.ArriveUS
	end := horizonUS
	if tr.DepartUS > 0 && tr.DepartUS < end {
		end = tr.DepartUS
	}
	if rate <= 0 || end <= start {
		return p
	}

	// Decorrelated per-tenant stream. Seeding at seed+(i+1)*gamma would
	// make stream i equal stream i+1 shifted by one draw (splitmix64
	// advances its state by gamma per output), so hash the offset seed
	// through the mix function first.
	base := prng(seed + uint64(index)*0x9e3779b97f4a7c15)
	rng := prng(base.next())
	meanGapUS := 1e6 / rate

	// The server opens when the scheduler first granted cores.
	busy := start
	if tr.AdmittedUS > start {
		busy = tr.AdmittedUS
	}
	var dist metrics.Dist
	var maxUS int64
	var noWait int64 // uncontended requests: latency == svc exactly
	served := svc > 0
	for t := start + rng.exp()*meanGapUS; t < end; t += rng.exp() * meanGapUS {
		p.Requests++
		if !served {
			continue // never admitted: dropped, counted as misses
		}
		st := t
		if busy > st {
			st = busy
		}
		fin := st + svc
		lat := fin - t
		busy = fin
		if st == t {
			noWait++ // bulk-book below via ObserveN
		} else {
			dist.Observe(int64(lat))
		}
		if int64(lat) > maxUS {
			maxUS = int64(lat)
		}
		if tr.SLOUS <= 0 || lat <= tr.SLOUS {
			p.SLOHits++
		}
	}
	dist.ObserveN(int64(svc), noWait)
	if p.Requests > 0 {
		p.SLOHitPct = round3(100 * float64(p.SLOHits) / float64(p.Requests))
	}
	p.Latency = summarize(dist, maxUS)
	return p
}

// WriteJSON writes the report as indented JSON, deterministically.
func (r *TenantsReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the per-tenant summary with the SLO hit-rate and
// interference columns.
func (r *TenantsReport) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "tenant\tmodel\tprio\toffered_rps\trequests\tslo_us\tslo_hit_pct\tp50_us\tp99_us\tservice_us\tisolated_us\tinterference_pct\n")
	for _, t := range r.Tenants {
		slo := "-"
		if t.SLOUS > 0 {
			slo = fmt.Sprintf("%.0f", t.SLOUS)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%.0f\t%d\t%s\t%.1f\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			t.Name, t.Model, t.Priority, t.OfferedRPS, t.Requests, slo, t.SLOHitPct,
			t.Latency.P50US, t.Latency.P99US, t.ServiceUS, t.IsolatedUS, t.InterferencePct)
	}
	return tw.Flush()
}

package npu

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
)

// Workload is one network of a concurrent multi-network run: the graph,
// the global core indices it owns, and its optimization options.
type Workload struct {
	Graph   *Graph
	Cores   []int
	Options Options
}

// SimConfig configures the shared simulation of a concurrent run
// (deadlines/cancellation via Ctx, fault injection, tracing). It is
// sim.Config re-exported so callers can thread serving-layer concerns
// into RunConcurrentCtx from the public API alone.
type SimConfig = sim.Config

// MultiReport is the outcome of a concurrent run.
type MultiReport struct {
	// Stats aggregates over the whole platform.
	Stats SimStats
	// PerWorkloadUS is each workload's completion time in microseconds,
	// indexed exactly like the input workload slice (PerWorkloadUS[i]
	// is workloads[i]; Stats.ProgramCycles shares the ordering).
	PerWorkloadUS []float64
	// Arch is the shared platform.
	Arch *Arch
}

// CoreConflictError reports an invalid concurrent placement detected
// before any workload is compiled: a workload claiming a core outside
// the architecture, or one already claimed by an earlier workload.
type CoreConflictError struct {
	// Workload is the index of the offending workload.
	Workload int
	// Core is the offending global core index.
	Core int
	// Owner is the earlier workload already holding Core, or -1 when
	// the core is simply out of range (or claimed twice by Workload
	// itself, in which case Owner == Workload).
	Owner int
	// NumCores is the architecture's core count.
	NumCores int
}

func (e *CoreConflictError) Error() string {
	if e.Owner < 0 {
		return fmt.Sprintf("npu: workload %d claims core %d, out of range (0..%d)",
			e.Workload, e.Core, e.NumCores-1)
	}
	if e.Owner == e.Workload {
		return fmt.Sprintf("npu: workload %d claims core %d twice", e.Workload, e.Core)
	}
	return fmt.Sprintf("npu: workloads %d and %d both claim core %d", e.Owner, e.Workload, e.Core)
}

// validateWorkloads checks every workload's core claim — in range and
// disjoint across (and within) workloads — before any compilation
// happens, so a misconfigured placement fails fast with a typed error
// instead of after seconds of compile work (or, worse, silently
// overlapping in a caller that never simulates).
func validateWorkloads(a *Arch, workloads []Workload) error {
	ncores := a.NumCores()
	owner := make([]int, ncores)
	for i := range owner {
		owner[i] = -1
	}
	for wi, w := range workloads {
		for _, c := range w.Cores {
			if c < 0 || c >= ncores {
				return &CoreConflictError{Workload: wi, Core: c, Owner: -1, NumCores: ncores}
			}
			if owner[c] >= 0 {
				return &CoreConflictError{Workload: wi, Core: c, Owner: owner[c], NumCores: ncores}
			}
			owner[c] = wi
		}
	}
	return nil
}

// RunConcurrent compiles each workload for its core subset and
// simulates them together on one architecture, sharing the global
// memory bus — the multi-network concurrency scenario that motivates
// multicore NPU designs in the paper's introduction.
func RunConcurrent(a *Arch, workloads []Workload) (*MultiReport, error) {
	return RunConcurrentCtx(nil, a, workloads, SimConfig{})
}

// RunConcurrentCtx is RunConcurrent with the caller's simulation
// configuration threaded through — deadlines and cancellation (ctx is
// polled at cooperative checkpoints in both the compile pipeline and
// the shared simulation, like the single-model RunCtx path), fault
// plans, tracing. Compilation goes through the fingerprint-keyed
// compile cache, so sweeps re-running identical (model, core subset,
// options) points compile once. A nil ctx and zero cfg behave exactly
// like RunConcurrent.
func RunConcurrentCtx(ctx context.Context, a *Arch, workloads []Workload, cfg SimConfig) (*MultiReport, error) {
	if err := validateWorkloads(a, workloads); err != nil {
		return nil, err
	}
	if ctx != nil {
		cfg.Ctx = ctx
	}
	placements := make([]sim.Placement, len(workloads))
	for i, w := range workloads {
		sub, err := a.Subset(w.Cores)
		if err != nil {
			return nil, fmt.Errorf("workload %d: %w", i, err)
		}
		res, err := core.CompileCachedCtx(cfg.Ctx, w.Graph, sub, w.Options)
		if err != nil {
			return nil, fmt.Errorf("workload %d (%s): %w", i, w.Graph.Name, err)
		}
		placements[i] = sim.Placement{Program: res.Program, Cores: w.Cores}
	}
	out, err := sim.RunConcurrent(a, placements, cfg)
	if err != nil {
		return nil, err
	}
	rep := &MultiReport{Stats: out.Stats, Arch: a}
	for _, pc := range out.Stats.ProgramCycles {
		rep.PerWorkloadUS = append(rep.PerWorkloadUS, pc/float64(a.ClockMHz))
	}
	return rep, nil
}

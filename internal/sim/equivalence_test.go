package sim_test

import (
	. "repro/internal/sim"

	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// The tests in this file hold the event engine (engine.go) bit-identical
// to the reference engine (reference.go): same Result structs — cycles,
// per-core stats, trace event for event — and same typed failures,
// across every benchmark model builder and a matrix of fault plans. The
// golden file pins the reference engine's cycle counts themselves, so a
// change that drifts both engines together still fails.

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// compiledModels caches one compiled program per model builder for the
// whole test binary (compilation dominates these tests' runtime).
var (
	compiledOnce sync.Once
	compiled     []compiledModel
)

type compiledModel struct {
	name string
	prog *plan.Program
}

func allCompiledModels(t *testing.T) []compiledModel {
	t.Helper()
	compiledOnce.Do(func() {
		a := arch.Exynos2100Like()
		for _, m := range append(models.All(), models.Extra()...) {
			res, err := core.Compile(m.Build(), a, core.Stratum())
			if err != nil {
				panic(fmt.Sprintf("compile %s: %v", m.Name, err))
			}
			compiled = append(compiled, compiledModel{name: m.Name, prog: res.Program})
		}
	})
	return compiled
}

// equivalencePlans is the fault matrix both engines run under. The kill
// cycle is chosen per model as a fraction of its fault-free latency so
// the death lands mid-run.
func equivalencePlans(killCycle float64) []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"drop", &fault.Plan{Seed: 7, DropRate: 0.01}},
		{"throttle-drop", &fault.Plan{
			Seed:     11,
			DropRate: 0.005,
			Throttles: []fault.Throttle{
				{Core: 1, AtCycle: killCycle * 0.2, Factor: 0.5},
				{Core: 0, AtCycle: killCycle * 0.5, Factor: 0.25},
				{Core: 1, AtCycle: killCycle * 0.8, Factor: 1},
			},
		}},
		{"kill", &fault.Plan{Seed: 3, Deaths: []fault.Death{{Core: 2, AtCycle: killCycle * 0.4}}}},
	}
}

// runBoth runs both engines and requires identical outcomes: equal
// Results on success, DeepEqual CoreFailures on failure.
func runBoth(t *testing.T, a *arch.Arch, placements []Placement, cfg Config) (*Result, error) {
	t.Helper()
	ref, refErr := RunConcurrentReference(a, placements, cfg)
	ev, evErr := RunConcurrent(a, placements, cfg)
	switch {
	case refErr == nil && evErr == nil:
		if !reflect.DeepEqual(ref.Stats, ev.Stats) {
			t.Fatalf("stats diverge:\nreference: %+v\nevent:     %+v", ref.Stats, ev.Stats)
		}
		if !reflect.DeepEqual(ref.Trace, ev.Trace) {
			for i := range ref.Trace {
				if i < len(ev.Trace) && !reflect.DeepEqual(ref.Trace[i], ev.Trace[i]) {
					t.Fatalf("trace diverges at event %d:\nreference: %+v\nevent:     %+v",
						i, ref.Trace[i], ev.Trace[i])
				}
			}
			t.Fatalf("trace lengths diverge: reference %d, event %d", len(ref.Trace), len(ev.Trace))
		}
	case refErr != nil && evErr != nil:
		refCF, refIs := refErr.(*CoreFailure)
		evCF, evIs := evErr.(*CoreFailure)
		if refIs != evIs {
			t.Fatalf("failure types diverge: reference %T, event %T", refErr, evErr)
		}
		if refIs {
			if !reflect.DeepEqual(refCF, evCF) {
				t.Fatalf("core failures diverge:\nreference: %+v\nevent:     %+v", refCF, evCF)
			}
		} else if refErr.Error() != evErr.Error() {
			t.Fatalf("errors diverge: reference %q, event %q", refErr, evErr)
		}
	default:
		t.Fatalf("outcomes diverge: reference err=%v, event err=%v", refErr, evErr)
	}
	return ref, refErr
}

func TestEngineMatchesReferenceOnAllModels(t *testing.T) {
	for _, cm := range allCompiledModels(t) {
		t.Run(cm.name, func(t *testing.T) {
			base, err := RunReference(cm.prog, Config{})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for _, tc := range equivalencePlans(base.Stats.TotalCycles) {
				t.Run(tc.name, func(t *testing.T) {
					cores := make([]int, cm.prog.Arch.NumCores())
					for i := range cores {
						cores[i] = i
					}
					runBoth(t, cm.prog.Arch, []Placement{{Program: cm.prog, Cores: cores}},
						Config{CollectTrace: true, Faults: tc.plan})
				})
			}
		})
	}
}

func TestEngineMatchesReferenceConcurrent(t *testing.T) {
	global := arch.Exynos2100Like()
	p1 := compileOn(t, models.TinyCNN(), global, []int{0})
	p2 := compileOn(t, models.ConvChain(4, 48, 48, 16), global, []int{1, 2})
	placements := []Placement{p1, p2}

	plans := []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"drop", &fault.Plan{Seed: 17, DropRate: 0.02}},
		{"throttle", &fault.Plan{Seed: 1, Throttles: []fault.Throttle{{Core: 2, AtCycle: 10000, Factor: 0.3}}}},
		{"kill-used", &fault.Plan{Seed: 5, Deaths: []fault.Death{{Core: 1, AtCycle: 50000}}}},
		// A core that finished (or never ran) dying must be inert in
		// both engines.
		{"kill-late", &fault.Plan{Seed: 5, Deaths: []fault.Death{{Core: 0, AtCycle: 1e12}}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			runBoth(t, global, placements, Config{CollectTrace: true, Faults: tc.plan})
		})
	}
}

func TestEngineMatchesReferenceSynthetic(t *testing.T) {
	// Hostile fault pressure on small programs: high drop rates force
	// many backoff/retry membership changes, throttles at coincident
	// cycles exercise the merged timeline's tie order.
	a := arch.Exynos2100Like()
	res, err := core.Compile(convNet(5), a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name string
		plan *fault.Plan
	}{
		{"heavy-drop", &fault.Plan{Seed: 23, DropRate: 0.3, MaxRetries: 20}},
		{"drop-exhaust", &fault.Plan{Seed: 23, DropRate: 0.6, MaxRetries: 2}},
		{"tied-events", &fault.Plan{
			Seed: 2,
			Throttles: []fault.Throttle{
				{Core: 0, AtCycle: 40000, Factor: 0.5},
				{Core: 1, AtCycle: 40000, Factor: 0.7},
			},
			Deaths: []fault.Death{{Core: 2, AtCycle: 40000}},
		}},
		{"throttle-at-zero", &fault.Plan{Seed: 0, Throttles: []fault.Throttle{{Core: 0, AtCycle: 0, Factor: 0.1}}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			runBoth(t, a, []Placement{{Program: res.Program, Cores: []int{0, 1, 2}}},
				Config{CollectTrace: true, Faults: tc.plan})
		})
	}
}

// TestEngineGoldenCycles pins the reference engine's cycle counts in a
// golden file and requires the event engine to reproduce them, so a
// semantic change that shifts both engines in lockstep still surfaces.
// Regenerate with: go test ./internal/sim -run Golden -update
func TestEngineGoldenCycles(t *testing.T) {
	got := map[string]float64{}
	for _, cm := range allCompiledModels(t) {
		base, err := RunReference(cm.prog, Config{})
		if err != nil {
			t.Fatalf("%s: reference run: %v", cm.name, err)
		}
		for _, tc := range equivalencePlans(base.Stats.TotalCycles) {
			if tc.name == "kill" {
				continue // failure path; covered by the DeepEqual tests
			}
			key := cm.name + "/" + tc.name
			cores := make([]int, cm.prog.Arch.NumCores())
			for i := range cores {
				cores[i] = i
			}
			pl := []Placement{{Program: cm.prog, Cores: cores}}
			cfg := Config{Faults: tc.plan}
			ref, err := RunConcurrentReference(cm.prog.Arch, pl, cfg)
			if err != nil {
				t.Fatalf("%s: reference: %v", key, err)
			}
			ev, err := RunConcurrent(cm.prog.Arch, pl, cfg)
			if err != nil {
				t.Fatalf("%s: event: %v", key, err)
			}
			if ev.Stats.TotalCycles != ref.Stats.TotalCycles {
				t.Errorf("%s: event engine %v cycles, reference %v", key, ev.Stats.TotalCycles, ref.Stats.TotalCycles)
			}
			got[key] = ref.Stats.TotalCycles
		}
	}

	path := filepath.Join("testdata", "golden_cycles.json")
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	want := map[string]float64{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("golden has %d entries, run produced %d (regenerate with -update)", len(want), len(got))
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: in golden file but not produced", key)
			continue
		}
		if g != w {
			t.Errorf("%s: cycles %v, golden %v", key, g, w)
		}
	}
}

// TestRetriedTransferUsesFreshRate is the stale-rate regression test: a
// transfer that is dropped and re-issued after backoff must be
// allocated bandwidth from the bus conditions at retry time, never its
// pre-drop rate. The program is built by hand so the arithmetic is
// exact: two loads share a 14 B/cycle bus (7 each under water-filling);
// after the drop, the retried load runs alone and must get the full 14.
func TestRetriedTransferUsesFreshRate(t *testing.T) {
	sub, err := arch.Exynos2100Like().Subset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Core DMA caps are 16 and 12 B/cycle; a 14 B/cycle bus splits 7/7
	// while both run and gives a lone transfer min(cap, 14).
	sub.BusBytesPerCycle = 14
	if sub.Cores[0].DMABytesPerCycle != 16 || sub.Cores[1].DMABytesPerCycle != 12 {
		t.Skipf("arch DMA caps changed (%v, %v); rebuild the arithmetic",
			sub.Cores[0].DMABytesPerCycle, sub.Cores[1].DMABytesPerCycle)
	}

	g := graph.New("stale-rate", tensor.Int8)
	g.Input("in", tensor.NewShape(8, 8, 1))
	prog := &plan.Program{
		Arch:  sub,
		Graph: g,
		Cores: [][]plan.Instr{
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7000, BarrierID: -1, Note: "victim"}},
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7700, BarrierID: -1, Note: "peer"}},
		},
	}

	// Find a seed that drops exactly the victim's first attempt. Global
	// node ids: victim = 0, peer = 1.
	var fp *fault.Plan
	for seed := uint64(0); ; seed++ {
		p := &fault.Plan{Seed: seed, DropRate: 0.5}
		if p.Drops(0, 0) && !p.Drops(0, 1) && !p.Drops(1, 0) {
			fp = p
			break
		}
	}

	cfg := Config{CollectTrace: true, Faults: fp}
	res, err := runBoth(t, sub, []Placement{
		{Program: prog, Cores: []int{0, 1}},
	}, cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	// Timeline: both setups finish at 400; both drain at 7 B/cycle. The
	// victim's 7000 bytes run out at 1400 and the transfer drops
	// (backoff 2x400 = 800, re-entry at 2200). The peer finishes
	// meanwhile, so the retry runs alone: 2200 + 7000/14 = 2700. A
	// stale 7 B/cycle rate would instead finish at 2200 + 1000 = 3200.
	var victim *Event
	for i := range res.Trace {
		if res.Trace[i].Note == "victim" {
			victim = &res.Trace[i]
		}
	}
	if victim == nil {
		t.Fatal("victim transfer missing from trace")
	}
	if victim.Retries != 1 {
		t.Fatalf("victim retries = %d, want 1 (seed search broken?)", victim.Retries)
	}
	if victim.End != 2700 {
		t.Errorf("retried transfer finished at %v, want 2700 (stale-rate bug gives 3200)", victim.End)
	}
	// The white-box half of this test (per-node rates zeroed after the
	// run) lives in whitebox_test.go, inside package sim.
}

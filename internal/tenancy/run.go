package tenancy

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// cycleEps matches the simulator's time-comparison tolerance.
const cycleEps = 1e-6

// Run simulates the tenants sharing one platform over the horizon and
// returns per-tenant serving statistics. The schedule is gang-rounded:
// every admitted tenant runs inferences back-to-back on its core
// subset, rounds are aligned (a round lasts as long as the slowest
// tenant's inference), and the bus is shared max–min fair within a
// round, so each tenant's measured period already includes the
// cross-tenant interference the report quantifies against a fault-free
// isolated run of the same program. Arrivals and departures end the
// current epoch: in-flight inferences are preempted at the stratum
// boundary the round trace implies (sim.CutAtCycle), surviving tenants
// are re-placed (priority first, sticky), and preempted suffixes are
// re-compiled bit-exactly through recovery.Remap for the new subsets.
//
// Everything is deterministic: same (arch, tenants, options) inputs
// produce identical reports, byte for byte.
func Run(a *arch.Arch, tenants []Tenant, opts Options) (*Report, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("tenancy: no tenants")
	}
	clock := float64(a.ClockMHz)
	if clock <= 0 {
		return nil, fmt.Errorf("tenancy: arch %s has no clock", a.Name)
	}
	horizon := opts.horizonUS() * clock
	opt := opts.opt()

	states := make([]*tenantState, len(tenants))
	seen := map[string]bool{}
	for i := range tenants {
		t := &tenants[i]
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenancy: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		g, err := buildModel(t.Model)
		if err != nil {
			return nil, err
		}
		states[i] = &tenantState{spec: t, index: i, g: g, firstUS: -1}
	}

	// Epoch boundaries: start, horizon, and every arrival/departure
	// strictly inside the window.
	timeSet := map[float64]bool{0: true, horizon: true}
	for _, ts := range states {
		if at := ts.spec.ArriveUS * clock; at > 0 && at < horizon {
			timeSet[at] = true
		}
		if dt := ts.spec.DepartUS * clock; dt > 0 && dt < horizon {
			timeSet[dt] = true
		}
	}
	times := sortedTimes(timeSet)

	cfg := opts.Sim
	cfg.CollectTrace = true // preemption cuts need the round trace
	// Isolated baselines are fault-free by construction: interference
	// must measure bus contention, not injected faults.
	icfg := sim.Config{Ctx: opts.Sim.Ctx, NoSPMCheck: opts.Sim.NoSPMCheck}

	// Degradation state: cores retired mid-horizon by a detected hang
	// or an announced failure never host tenants again; the serving loop
	// shrinks around them instead of erroring out.
	dead := map[int]bool{}
	alive := func() int { return a.NumCores() - len(dead) }
	var failureLog []string

	coSims := 0
	isolated := map[*plan.Program]float64{}
	isolatedOf := func(ts *tenantState) (float64, error) {
		if v, ok := isolated[ts.cur.Program]; ok {
			return v, nil
		}
		out, err := sim.RunConcurrent(a, []sim.Placement{{Program: ts.cur.Program, Cores: ts.cores}}, icfg)
		if err != nil {
			return 0, fmt.Errorf("tenancy: tenant %s isolated run: %w", ts.spec.Name, err)
		}
		coSims++
		v := out.Stats.ProgramCycles[0]
		isolated[ts.cur.Program] = v
		return v, nil
	}

	setProgram := func(ts *tenantState) error {
		comp := ts.completedList()
		rm, err := recovery.Remap(opts.Sim.Ctx, ts.g, comp, a, ts.cores, opt)
		if err != nil {
			return fmt.Errorf("tenancy: tenant %s: %w", ts.spec.Name, err)
		}
		ts.cur = rm.Compiled
		ts.isSuffix = len(comp) > 0
		ts.origin = rm.Origin
		return nil
	}

	cosim := func(admitted []*tenantState) (*sim.Result, error) {
		placements := make([]sim.Placement, len(admitted))
		for i, ts := range admitted {
			placements[i] = sim.Placement{Program: ts.cur.Program, Cores: ts.cores}
		}
		out, err := sim.RunConcurrent(a, placements, cfg)
		if err != nil {
			return nil, fmt.Errorf("tenancy: co-run: %w", err)
		}
		coSims++
		return out, nil
	}

	// account books n inferences of identical per-inference latency,
	// with interference weighted against the isolated baseline I of the
	// co-run period L.
	account := func(ts *tenantState, n int64, latency, L, I float64) {
		ts.infs += n
		ts.sumLatency += float64(n) * latency
		if slo := ts.spec.SLOUS * clock; ts.spec.SLOUS <= 0 || latency <= slo+cycleEps {
			ts.hits += n
		}
		if I > 0 {
			w := float64(n)
			ts.weight += w
			ts.wIsolated += w * I
			ts.wInterf += w * (L - I) / I * 100
		}
	}

	// finish completes one inference and, if it was a resumed suffix,
	// swaps the tenant back to its full program for the next round.
	finish := func(ts *tenantState, L, latency float64) error {
		I, err := isolatedOf(ts)
		if err != nil {
			return err
		}
		account(ts, 1, latency, L, I)
		ts.completed = nil
		ts.carried = 0
		if ts.isSuffix {
			return setProgram(ts)
		}
		return nil
	}

	// preempt cuts the tenant's in-flight inference at cut cycles into
	// the round, folding the trace checkpoint into original-graph
	// coordinates.
	preempt := func(ts *tenantState, trace []sim.Event, cut float64) {
		comp := sim.CutAtCycle(ts.cur.Program, ts.cores, trace, cut)
		if ts.completed == nil {
			ts.completed = make(map[graph.LayerID]bool, len(comp))
		}
		for _, id := range comp {
			orig := id
			if ts.isSuffix {
				orig = ts.origin[id]
			}
			ts.completed[orig] = true
		}
		ts.carried += cut
		ts.preempts++
	}

	// runEpoch drives one epoch of duration D and reports the wall
	// cycles actually consumed: D on success, the cut time when a
	// co-run dies mid-epoch (the failure's typed error comes back for
	// the caller's degradation path).
	runEpoch := func(admitted []*tenantState, D float64) (float64, error) {
		// Round 1 may mix resumed suffixes with full models.
		hadSuffix := false
		for _, ts := range admitted {
			if ts.isSuffix {
				hadSuffix = true
			}
		}
		out, err := cosim(admitted)
		if err != nil {
			return failCycle(err), err
		}
		L1 := out.Stats.ProgramCycles
		R1 := maxOf(L1)
		if D < R1-cycleEps {
			// The next event lands mid-round: count what finished in
			// time, cut the rest at the boundary.
			for i, ts := range admitted {
				if L1[i] <= D+cycleEps {
					if err := finish(ts, L1[i], ts.carried+L1[i]); err != nil {
						return D, err
					}
				} else {
					preempt(ts, out.Trace, D)
				}
			}
			return D, nil
		}
		for i, ts := range admitted {
			if err := finish(ts, L1[i], ts.carried+L1[i]); err != nil {
				return R1, err
			}
		}
		spent := R1

		// Steady state: every tenant on its full model. Identical to
		// round 1 unless a suffix ran there.
		outS, LS := out, L1
		if hadSuffix {
			if outS, err = cosim(admitted); err != nil {
				return spent + failCycle(err), err
			}
			LS = outS.Stats.ProgramCycles
		}
		R := maxOf(LS)
		if n := int64((D - spent + cycleEps) / R); n > 0 {
			for i, ts := range admitted {
				I, err := isolatedOf(ts)
				if err != nil {
					return spent, err
				}
				account(ts, n, LS[i], LS[i], I)
			}
			spent += float64(n) * R
		}
		if rem := D - spent; rem > cycleEps {
			for i, ts := range admitted {
				if LS[i] <= rem+cycleEps {
					if err := finish(ts, LS[i], LS[i]); err != nil {
						return D, err
					}
				} else {
					preempt(ts, outS.Trace, rem)
				}
			}
		}
		return D, nil
	}

	// rePlace assigns cores to the admitted prefix, counting re-maps and
	// recompiling every tenant for its (possibly new) subset.
	rePlace := func(admitted []*tenantState, nowUS float64) error {
		prev := make([][]int, len(admitted))
		for i, ts := range admitted {
			prev[i] = ts.cores
		}
		place(a, admitted, dead)
		for i, ts := range admitted {
			if ts.firstUS < 0 {
				ts.firstUS = nowUS
			}
			if prev[i] != nil && !sameCores(prev[i], ts.cores) {
				ts.remaps++
			}
			if err := setProgram(ts); err != nil {
				return err
			}
		}
		return nil
	}

	epochs := 0
	for ei := 0; ei+1 < len(times); ei++ {
		now, next := times[ei], times[ei+1]
		var active []*tenantState
		for _, ts := range states {
			at := ts.spec.ArriveUS * clock
			dt := ts.spec.DepartUS * clock
			in := at <= now+cycleEps && (ts.spec.DepartUS <= 0 || dt > now+cycleEps)
			if ts.active && !in {
				// Departure: in-flight work leaves with the tenant.
				ts.cores, ts.completed, ts.carried, ts.cur = nil, nil, 0, nil
			}
			ts.active = in
			if in {
				active = append(active, ts)
			}
		}
		admitOrder(active)
		admitted := active
		if len(admitted) > alive() {
			// Admission control: at most one tenant per surviving core.
			// The rest queue (checkpoints intact) until a slot frees.
			for _, ts := range admitted[alive():] {
				ts.cores = nil
			}
			admitted = admitted[:alive()]
		}
		if err := rePlace(admitted, now/clock); err != nil {
			return nil, err
		}
		if len(admitted) > 0 && next-now > cycleEps {
			remaining := next - now
			for remaining > cycleEps {
				spent, err := runEpoch(admitted, remaining)
				if err == nil {
					break
				}
				cores, atCycle, comp, pi, ok := failureInfo(err)
				if !ok {
					return nil, err
				}
				// Degradation: retire the dead cores, keep serving on the
				// survivors. The failed placement resumes from its typed
				// checkpoint; every other admitted tenant loses its
				// in-flight round (charged to carried, restarting from its
				// last own checkpoint) — the co-run died without a trace to
				// cut from.
				for _, c := range cores {
					dead[c] = true
				}
				failureLog = append(failureLog, err.Error())
				if pi >= 0 && pi < len(admitted) {
					ts := admitted[pi]
					if ts.completed == nil {
						ts.completed = make(map[graph.LayerID]bool, len(comp))
					}
					for _, id := range comp {
						orig := id
						if ts.isSuffix {
							orig = ts.origin[id]
						}
						ts.completed[orig] = true
					}
				}
				for _, ts := range admitted {
					ts.carried += atCycle
				}
				remaining -= spent
				if alive() == 0 {
					return nil, fmt.Errorf("tenancy: every core lost to faults: %w", err)
				}
				if remaining <= cycleEps {
					break
				}
				if len(admitted) > alive() {
					for _, ts := range admitted[alive():] {
						ts.cores = nil
					}
					admitted = admitted[:alive()]
				}
				// Isolated baselines are per-(program, subset); shrinking
				// subsets recompile, so the cache keys stay valid.
				if err := rePlace(admitted, now/clock); err != nil {
					return nil, err
				}
			}
			epochs++
		}
	}
	return buildReport(a, opt.Name(), opts.horizonUS(), epochs, coSims, states, deadList(dead), failureLog), nil
}

// failureInfo unwraps a co-run error into its degradation facts: the
// cores lost, the cut cycle (the failing run's local clock), the failed
// placement's checkpoint, and that placement's index. ok is false for
// errors that are not survivable core losses.
func failureInfo(err error) (cores []int, atCycle float64, comp []graph.LayerID, placement int, ok bool) {
	var cf *sim.CoreFailure
	if errors.As(err, &cf) {
		return []int{cf.Core}, cf.AtCycle, cf.Completed, cf.Placement, true
	}
	var hd *sim.HangDetected
	if errors.As(err, &hd) {
		return hd.Cores, hd.AtCycle, hd.Completed, hd.Placement, true
	}
	return nil, 0, nil, -1, false
}

// failCycle is the cut cycle of a survivable failure, 0 otherwise.
func failCycle(err error) float64 {
	if _, at, _, _, ok := failureInfo(err); ok {
		return at
	}
	return 0
}

func deadList(dead map[int]bool) []int {
	if len(dead) == 0 {
		return nil
	}
	out := make([]int, 0, len(dead))
	for c := range dead {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func sameCores(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedTimes(set map[float64]bool) []float64 {
	out := make([]float64, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	for i := 1; i < len(out); i++ { // insertion sort; the set is tiny
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

package dse

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/sim"
)

func explore(t *testing.T, p Params) *Result {
	t.Helper()
	r, err := Explore(context.Background(), models.TinyCNN(), arch.Exynos2100Like(), core.Stratum(), p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestExploreBeatsOrMatchesBaseline(t *testing.T) {
	r := explore(t, Params{Seed: 1})
	if r.BestCycles > r.BaselineCycles {
		t.Errorf("best %.0f worse than baseline %.0f", r.BestCycles, r.BaselineCycles)
	}
	if !r.EngineMatch {
		t.Error("winner not verified bit-identical across engines")
	}
	if r.Points < 2 {
		t.Errorf("points = %d: search never left the baseline", r.Points)
	}
	if r.Points != len(r.Explored) {
		t.Errorf("Points %d != len(Explored) %d", r.Points, len(r.Explored))
	}
	// The baseline genome must be the first explored point and carry no
	// overrides, so its Options fingerprint-match the plain config.
	m, b, s := r.Explored[0].Genome.Overrides()
	if m+b+s != 0 {
		t.Errorf("baseline genome has %d/%d/%d overrides", m, b, s)
	}
	if r.Explored[0].Cycles != r.BaselineCycles {
		t.Errorf("first point %.0f != baseline %.0f", r.Explored[0].Cycles, r.BaselineCycles)
	}
	// On TinyCNN the default budget reliably finds a strict improvement
	// (measured 17% at seed 1); regressing to 0 means the moves stopped
	// working.
	if r.BestCycles == r.BaselineCycles {
		t.Errorf("no improvement found on TinyCNN (baseline %.0f)", r.BaselineCycles)
	}
}

// TestExploredSchedulesAdmit is the SPM-admission property test: every
// feasible explored genome must recompile (a cache hit) and pass the
// simulator's SPM admission check, and the winning genome must simulate
// bit-identically on the event and reference engines.
func TestExploredSchedulesAdmit(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	base := core.Stratum()
	r, err := Explore(context.Background(), g, a, base, Params{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := core.CacheStats()
	for i, e := range r.Explored {
		if !e.Feasible {
			continue
		}
		cres, err := core.CompileCached(g, a, e.Genome.Options(base))
		if err != nil {
			t.Fatalf("explored point %d no longer compiles: %v", i, err)
		}
		if _, err := sim.Run(cres.Program, sim.Config{}); err != nil {
			t.Errorf("explored point %d fails SPM admission: %v", i, err)
		}
	}
	hits1, misses1 := core.CacheStats()
	if misses1 != misses0 {
		t.Errorf("re-checking explored points recompiled %d schedules; want all cache hits", misses1-misses0)
	}
	if hits1-hits0 < int64(r.Points-r.Infeasible) {
		t.Errorf("expected >= %d cache hits, got %d", r.Points-r.Infeasible, hits1-hits0)
	}

	// Winner bit-identity, independently of the in-Explore check.
	wres, err := core.CompileCached(g, a, r.Best.Options(base))
	if err != nil {
		t.Fatal(err)
	}
	ev, err := sim.Run(wres.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := sim.RunReference(wres.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !statsEqual(&ev.Stats, &ref.Stats) {
		t.Errorf("winner diverges: event %.0f vs reference %.0f cycles",
			ev.Stats.TotalCycles, ref.Stats.TotalCycles)
	}
	if ev.Stats.TotalCycles != r.BestCycles {
		t.Errorf("winner re-simulates to %.0f, reported %.0f", ev.Stats.TotalCycles, r.BestCycles)
	}
}

// TestExploreDeterministic pins the cross-worker determinism contract:
// the same seed must produce a byte-identical serialized Result at -j 8
// and -j 1. The compile cache is reset before each run because the
// Result embeds the cache-delta counters.
func TestExploreDeterministic(t *testing.T) {
	run := func(workers int) []byte {
		t.Helper()
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		core.ResetCache()
		r := explore(t, Params{Seed: 42})
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		return buf
	}
	j8 := run(8)
	j1 := run(1)
	if string(j8) != string(j1) {
		t.Errorf("same-seed runs diverge across worker counts:\n-j 8: %s\n-j 1: %s", j8, j1)
	}
	// And a distinct seed explores a different trajectory (sanity that
	// the seed actually feeds the search).
	core.ResetCache()
	other := explore(t, Params{Seed: 43})
	var r42 Result
	if err := json.Unmarshal(j8, &r42); err != nil {
		t.Fatal(err)
	}
	if other.Points == r42.Points && other.BestCycles == r42.BestCycles && other.Revisits == r42.Revisits {
		t.Logf("seeds 42 and 43 coincide on (points, best, revisits); suspicious but not fatal")
	}
}

func TestExploreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	core.ResetCache() // cached compiles would skip the ctx check
	_, err := Explore(ctx, models.TinyCNN(), arch.Exynos2100Like(), core.Stratum(), Params{Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenomeKeyAndOptions(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	base := core.Stratum()
	fp := func(o core.Options) core.CacheKey { return core.Fingerprint(g, a, o) }
	gen := newGenome(g, a.NumCores())
	if k1, k2 := gen.key(), gen.clone().key(); k1 != k2 {
		t.Errorf("clone changes key: %q vs %q", k1, k2)
	}
	// The all-default genome must lower to exactly the base options so
	// evaluating it is a compile-cache hit against the plain config.
	if fp(gen.Options(base)) != fp(base) {
		t.Error("baseline genome fingerprint differs from plain options")
	}
	// Any deviation must change both the key and the fingerprint.
	dev := gen.clone()
	dev.Scale[0] = scaleGrid[unitScale+1]
	if dev.key() == gen.key() {
		t.Error("scale deviation not reflected in key")
	}
	if fp(dev.Options(base)) == fp(base) {
		t.Error("scale deviation not reflected in options fingerprint")
	}
}

package arch

import "testing"

func TestExynosPresetValid(t *testing.T) {
	a := Exynos2100Like()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.NumCores() != 3 {
		t.Errorf("NumCores = %d", a.NumCores())
	}
	if a.MaxAlignC() != 32 {
		t.Errorf("MaxAlignC = %d, want 32", a.MaxAlignC())
	}
	if a.MaxAlignSpatial() != 1 {
		t.Errorf("MaxAlignSpatial = %d", a.MaxAlignSpatial())
	}
}

func TestSingleCore(t *testing.T) {
	a := SingleCore()
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.NumCores() != 1 {
		t.Errorf("NumCores = %d", a.NumCores())
	}
	if a.SyncCost(1) != 0 {
		t.Error("single core must have zero sync cost")
	}
}

func TestHomogeneous(t *testing.T) {
	a := Homogeneous(8)
	if err := a.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if a.NumCores() != 8 {
		t.Errorf("NumCores = %d", a.NumCores())
	}
	for i := 1; i < 8; i++ {
		if a.Cores[i].MACsPerCycle != a.Cores[0].MACsPerCycle {
			t.Errorf("core %d differs", i)
		}
	}
	if a.Cores[3].Name != "P3" {
		t.Errorf("core name %q", a.Cores[3].Name)
	}
}

func TestSyncCostGrowsWithCores(t *testing.T) {
	a := Exynos2100Like()
	if a.SyncCost(3) <= a.SyncCost(2) {
		t.Error("sync cost must grow with participants")
	}
	if a.SyncCost(0) != 0 {
		t.Error("zero participants must be free")
	}
}

func TestCycleConversion(t *testing.T) {
	a := Exynos2100Like()
	us := a.CyclesToMicros(1300)
	if us != 1.0 {
		t.Errorf("1300 cycles at 1300 MHz = %g us, want 1", us)
	}
	if a.MicrosToCycles(2.0) != 2600 {
		t.Errorf("MicrosToCycles(2) = %d", a.MicrosToCycles(2.0))
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []func(*Arch){
		func(a *Arch) { a.Cores = nil },
		func(a *Arch) { a.ClockMHz = 0 },
		func(a *Arch) { a.BusBytesPerCycle = 0 },
		func(a *Arch) { a.ComputeEfficiency = 0 },
		func(a *Arch) { a.ComputeEfficiency = 1.5 },
		func(a *Arch) { a.Cores[0].MACsPerCycle = 0 },
		func(a *Arch) { a.Cores[1].DMABytesPerCycle = 0 },
		func(a *Arch) { a.Cores[2].SPMBytes = 0 },
		func(a *Arch) { a.Cores[0].AlignC = 0 },
		func(a *Arch) { a.Cores[0].AlignSpatial = 0 },
	}
	for i, mutate := range mutations {
		a := Exynos2100Like()
		mutate(a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

// Package spm profiles scratch-pad memory occupancy over a simulated
// run. Mobile NPU local memory is explicitly managed (the premise of
// the whole paper); this profiler derives every SPM buffer's live
// interval from the executed timeline — a load's destination lives
// until its last dependent compute finishes; a compute's output lives
// until the last reader (store, halo send, or a forwarded consumer's
// compute) finishes — and reports each core's peak footprint against
// its capacity.
//
// The tiler's double-buffered accounting is an estimate made per
// layer; this profiler measures the real cross-layer concurrency the
// pipeline creates, so it is the authority on whether a compiled
// schedule actually fits.
package spm

import (
	"fmt"
	"sort"

	"repro/internal/plan"
	"repro/internal/sim"
)

// CoreProfile is one core's SPM occupancy result.
type CoreProfile struct {
	// PeakBytes is the maximum concurrently live SPM footprint.
	PeakBytes int64
	// PeakAtCycle is when the peak occurred.
	PeakAtCycle float64
	// CapacityBytes is the core's SPM size.
	CapacityBytes int64
	// Buffers is the number of distinct live intervals profiled.
	Buffers int
}

// Fits reports whether the peak stayed within capacity.
func (c CoreProfile) Fits() bool { return c.PeakBytes <= c.CapacityBytes }

// Profile computes per-core SPM occupancy from a program and the
// trace of its simulation (sim.Config{CollectTrace: true}). The trace
// must be complete; use ProfileTimeline for partial timelines.
func Profile(p *plan.Program, trace []sim.Event) ([]CoreProfile, error) {
	if len(trace) != p.NumInstrs() {
		return nil, fmt.Errorf("spm: trace has %d events for %d instructions (was CollectTrace set?)",
			len(trace), p.NumInstrs())
	}
	return ProfileTimeline(p, trace), nil
}

// ProfileTimeline computes per-core SPM occupancy from a program and
// whatever execution timeline is available. Unlike Profile it tolerates
// partial timelines (a run cut short by an injected core failure):
// instructions without a recorded event never allocated their buffers
// and are skipped, and a buffer whose readers never ran dies at its
// producer's completion. On a complete trace the result is identical
// to Profile's.
func ProfileTimeline(p *plan.Program, trace []sim.Event) []CoreProfile {
	ncores := p.Arch.NumCores()

	// Times per instruction, keyed by (core, index).
	type key struct{ core, index int }
	start := make(map[key]float64, len(trace))
	end := make(map[key]float64, len(trace))
	for _, ev := range trace {
		start[key{ev.Core, ev.Index}] = ev.Start
		end[key{ev.Core, ev.Index}] = ev.End
	}

	// dependents[core][i] lists instructions depending on (core, i).
	dependents := make([][][]plan.Ref, ncores)
	for c := range p.Cores {
		dependents[c] = make([][]plan.Ref, len(p.Cores[c]))
	}
	for c, stream := range p.Cores {
		for i, in := range stream {
			for _, d := range in.Deps {
				dependents[d.Core][d.Index] = append(dependents[d.Core][d.Index], plan.Ref{Core: c, Index: i})
			}
		}
	}

	type interval struct {
		from, to float64
		bytes    int64
	}
	intervals := make([][]interval, ncores)

	for c, stream := range p.Cores {
		for i, in := range stream {
			k := key{c, i}
			var bytes int64
			switch in.Op {
			case plan.LoadInput, plan.LoadKernel, plan.LoadHalo:
				bytes = in.Bytes
			case plan.Compute:
				bytes = in.OutBytes
			default:
				continue // stores read an existing buffer
			}
			from, ran := start[k]
			if bytes <= 0 || !ran {
				continue
			}
			// The buffer dies when its last reader finishes: dependent
			// computes for loads; dependent stores/halo-sends and
			// forwarded consumer computes for compute outputs. Load
			// dependents that exist only for double-buffer slot reuse
			// are excluded — they do not read the data.
			to := end[k]
			for _, d := range dependents[c][i] {
				dop := p.Cores[d.Core][d.Index].Op
				read := false
				switch in.Op {
				case plan.LoadInput, plan.LoadKernel, plan.LoadHalo:
					read = dop == plan.Compute
				case plan.Compute:
					read = dop == plan.Compute || dop == plan.Store || dop == plan.StoreHalo
				}
				if read {
					if t := end[key{d.Core, d.Index}]; t > to {
						to = t
					}
				}
			}
			intervals[c] = append(intervals[c], interval{from: from, to: to, bytes: bytes})
		}
	}

	profiles := make([]CoreProfile, ncores)
	for c := range profiles {
		profiles[c].CapacityBytes = p.Arch.Cores[c].SPMBytes
		profiles[c].Buffers = len(intervals[c])
		// Sweep: +bytes at from, -bytes at to.
		type edge struct {
			t     float64
			delta int64
		}
		edges := make([]edge, 0, 2*len(intervals[c]))
		for _, iv := range intervals[c] {
			edges = append(edges, edge{iv.from, iv.bytes}, edge{iv.to, -iv.bytes})
		}
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].t != edges[j].t {
				return edges[i].t < edges[j].t
			}
			return edges[i].delta < edges[j].delta // frees before allocs at ties
		})
		var cur, peak int64
		var peakAt float64
		for _, e := range edges {
			cur += e.delta
			if cur > peak {
				peak, peakAt = cur, e.t
			}
		}
		profiles[c].PeakBytes = peak
		profiles[c].PeakAtCycle = peakAt
	}
	return profiles
}

// Report formats the profiles for humans.
func Report(profiles []CoreProfile, clockMHz int) string {
	s := ""
	for c, p := range profiles {
		status := "fits"
		if !p.Fits() {
			status = "OVERFLOWS"
		}
		s += fmt.Sprintf("P%d: peak %d KB of %d KB (%s) at %.1f us across %d buffers\n",
			c, p.PeakBytes/1024, p.CapacityBytes/1024, status,
			p.PeakAtCycle/float64(clockMHz), p.Buffers)
	}
	return s
}

package metrics

import (
	"math/rand"
	"testing"
	"time"
)

// TestHistogramMergeExact: per-shard histograms combined with Merge
// report exactly the quantiles of one histogram fed every observation.
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const shards, per = 8, 500

	var single Histogram
	shard := make([]*Histogram, shards)
	for s := range shard {
		shard[s] = &Histogram{}
		for i := 0; i < per; i++ {
			d := time.Duration(rng.Intn(5_000_000)) * time.Microsecond
			single.Observe(d)
			shard[s].Observe(d)
		}
	}
	var merged Histogram
	for _, h := range shard {
		merged.Merge(h)
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), single.Count())
	}
	if merged.Mean() != single.Mean() {
		t.Fatalf("merged mean %v, want %v", merged.Mean(), single.Mean())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := merged.Quantile(q), single.Quantile(q); got != want {
			t.Errorf("q=%v: merged %v, single %v", q, got, want)
		}
	}
	if merged.Snapshot() != single.Snapshot() {
		t.Errorf("snapshots differ: %+v vs %+v", merged.Snapshot(), single.Snapshot())
	}
}

// TestDistMergeExact: the snapshot-level Dist form merges exactly too,
// and agrees with the live histogram it was captured from.
func TestDistMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const shards, per = 5, 400

	var single Histogram
	var merged Dist
	for s := 0; s < shards; s++ {
		var d Dist
		for i := 0; i < per; i++ {
			us := int64(rng.Intn(3_000_000))
			single.Observe(time.Duration(us) * time.Microsecond)
			d.Observe(us)
		}
		merged.Merge(&d)
	}
	if merged.Count() != single.Count() {
		t.Fatalf("merged count %d, want %d", merged.Count(), single.Count())
	}
	want := single.Dist()
	if merged != want {
		t.Fatalf("merged Dist differs from live capture")
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, w := merged.Quantile(q), single.Quantile(q); got != w {
			t.Errorf("q=%v: Dist %v, Histogram %v", q, got, w)
		}
	}
	if merged.Snapshot() != single.Snapshot() {
		t.Errorf("snapshots differ: %+v vs %+v", merged.Snapshot(), single.Snapshot())
	}
}

// TestDistNegativeObserve: negative inputs clamp to 0 like Observe.
func TestDistNegativeObserve(t *testing.T) {
	var d Dist
	d.Observe(-5)
	if d.N != 1 || d.SumUS != 0 || d.Counts[0] != 1 {
		t.Fatalf("negative observation not clamped: %+v", d)
	}
}

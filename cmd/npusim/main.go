// Command npusim compiles and simulates a benchmark network on the
// multicore-NPU model, printing latency and per-core utilization, and
// optionally writing a Chrome trace or a text Gantt chart.
//
// Usage:
//
//	npusim -model InceptionV3 -cores 3 -config stratum
//	npusim -model MobileNetV2 -gantt 120
//	npusim -model UNet -trace unet.json   # open in chrome://tracing
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/serialize"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	model := flag.String("model", "MobileNetV2", "benchmark model name")
	cores := flag.Int("cores", 3, "number of NPU cores")
	config := flag.String("config", "stratum", "optimization configuration: base, halo, stratum")
	mode := flag.String("partition", "adaptive", "partitioning policy: adaptive, spatial, channel")
	inFile := flag.String("in", "", "simulate a precompiled program (from npuc -o) instead of compiling")
	traceOut := flag.String("trace", "", "write Chrome trace JSON to this file")
	gantt := flag.Int("gantt", 0, "print a text Gantt chart this many columns wide")
	mem := flag.Bool("mem", false, "profile SPM occupancy per core")
	flag.Parse()

	if *inFile != "" {
		simulateFile(*inFile, *traceOut, *gantt)
		return
	}

	m, err := models.ByName(*model)
	if err != nil {
		fatal(err)
	}
	g := m.Build()

	a, err := cliutil.Arch(*cores)
	if err != nil {
		fatal(err)
	}
	opt, err := cliutil.Config(*config)
	if err != nil {
		fatal(err)
	}
	opt.Partitioning, err = cliutil.Mode(*mode)
	if err != nil {
		fatal(err)
	}

	res, err := core.Compile(g, a, opt)
	if err != nil {
		fatal(err)
	}
	needTrace := *traceOut != "" || *gantt > 0 || *mem
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: needTrace})
	if err != nil {
		fatal(err)
	}

	clock := a.ClockMHz
	fmt.Printf("%s on %s, %s: %.1f us end-to-end\n",
		g.Name, a.Name, opt.Name(), out.Stats.LatencyMicros(clock))
	var idles, syncs []float64
	for c, cs := range out.Stats.PerCore {
		idles = append(idles, cs.Idle/float64(clock))
		syncs = append(syncs, cs.SyncWait/float64(clock))
		fmt.Printf("  %s: compute %.1fus  load %.1fus  store %.1fus  idle %.1fus  %.1fMB moved\n",
			a.Cores[c].Name,
			cs.ComputeBusy/float64(clock), cs.LoadBusy/float64(clock),
			cs.StoreBusy/float64(clock), cs.Idle/float64(clock),
			float64(cs.BytesLoaded+cs.BytesStored)/1e6)
	}
	fmt.Printf("  idle %sus, sync %sus across cores; %d barriers; %.2f GMACs executed\n",
		stats.Summarize(idles), stats.Summarize(syncs),
		out.Stats.Barriers, float64(out.Stats.TotalMACs())/1e9)

	if *mem {
		profiles, err := spm.Profile(res.Program, out.Trace)
		if err != nil {
			fatal(err)
		}
		fmt.Println("SPM occupancy:")
		fmt.Print(spm.Report(profiles, a.ClockMHz))
	}
	if *gantt > 0 {
		if err := trace.Gantt(os.Stdout, out.Trace, a, *gantt); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteChrome(f, out.Trace, a); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing)\n", *traceOut)
	}
}

// simulateFile replays a precompiled program artifact.
func simulateFile(path, traceOut string, gantt int) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := serialize.LoadProgram(f)
	if err != nil {
		fatal(err)
	}
	out, err := sim.Run(p, sim.Config{CollectTrace: traceOut != "" || gantt > 0})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %.1f us end-to-end (replayed from %s)\n",
		p.Graph.Name, p.Arch.Name, out.Stats.LatencyMicros(p.Arch.ClockMHz), path)
	if gantt > 0 {
		if err := trace.Gantt(os.Stdout, out.Trace, p.Arch, gantt); err != nil {
			fatal(err)
		}
	}
	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		if err := trace.WriteChrome(tf, out.Trace, p.Arch); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npusim:", err)
	os.Exit(1)
}

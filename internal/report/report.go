// Package report renders compiler decisions for humans: a per-layer
// table of partitioning/tiling choices and a Graphviz DOT export of
// the network colored by partition direction.
package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/plan"
)

// Layers writes a per-layer table: operator, output shape, partition
// direction and deciding heuristic, per-core output rows/channels, and
// compute/traffic cost.
func Layers(w io.Writer, g *graph.Graph, res *core.Result) error {
	if _, err := fmt.Fprintf(w, "%-28s %-22s %-12s %-9s %10s %10s  %s\n",
		"layer", "op", "out", "direction", "MMACs", "kernelKB", "reason"); err != nil {
		return err
	}
	for _, id := range res.Order {
		l := g.Layer(id)
		if l.IsInput() {
			continue
		}
		p := res.Plans[id]
		var macs, kernel int64
		for _, s := range p.Subs {
			macs += s.MACs
			kernel += s.KernelBytes
		}
		opName := l.Op.String()
		if len(opName) > 22 {
			opName = opName[:22]
		}
		if _, err := fmt.Fprintf(w, "%-28s %-22s %-12s %-9s %10.2f %10.1f  %s\n",
			l.Name, opName, l.OutShape.String(), p.Direction,
			float64(macs)/1e6, float64(kernel)/1024, p.Reason); err != nil {
			return err
		}
	}
	return nil
}

// dirColor maps partition directions to Graphviz fill colors.
func dirColor(d partition.Direction) string {
	switch d {
	case partition.DirSpatialH, partition.DirSpatialW:
		return "lightblue"
	case partition.DirChannel:
		return "lightsalmon"
	default:
		return "lightgray"
	}
}

// DOT writes the network as a Graphviz digraph. Nodes are colored by
// partition direction (blue spatial, salmon channel, gray none) and
// layers merged into one stratum share a cluster.
func DOT(w io.Writer, g *graph.Graph, res *core.Result) error {
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, style=filled, fontsize=10];\n", g.Name); err != nil {
		return err
	}
	inStratum := map[graph.LayerID]int{}
	for si, s := range res.Strata {
		if s.Len() > 1 {
			for _, id := range s.Layers {
				inStratum[id] = si
			}
		}
	}
	// Emit stratum clusters first.
	emitted := map[graph.LayerID]bool{}
	for si, s := range res.Strata {
		if s.Len() <= 1 {
			continue
		}
		fmt.Fprintf(w, "  subgraph cluster_stratum%d {\n    label=\"stratum %d\";\n    color=forestgreen;\n", si, si)
		for _, id := range s.Layers {
			l := g.Layer(id)
			fmt.Fprintf(w, "    n%d [label=\"%s\\n%s\", fillcolor=%s];\n",
				id, l.Name, l.OutShape, dirColor(res.Plans[id].Direction))
			emitted[id] = true
		}
		fmt.Fprintln(w, "  }")
	}
	for _, l := range g.Layers() {
		if emitted[l.ID] {
			continue
		}
		color := "white"
		if !l.IsInput() {
			color = dirColor(res.Plans[l.ID].Direction)
		}
		fmt.Fprintf(w, "  n%d [label=\"%s\\n%s\", fillcolor=%s];\n", l.ID, l.Name, l.OutShape, color)
	}
	for _, l := range g.Layers() {
		for _, in := range l.Inputs {
			fmt.Fprintf(w, "  n%d -> n%d;\n", in, l.ID)
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// InstrSummary counts instructions by opcode for one program.
func InstrSummary(p *plan.Program) map[string]int {
	m := map[string]int{}
	for _, stream := range p.Cores {
		for _, in := range stream {
			m[in.Op.String()]++
		}
	}
	return m
}

package experiments

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Fig12Variant is one pipelining profile of Figure 12.
type Fig12Variant struct {
	Name string
	// Opt is the compiler configuration producing the profile.
	Opt core.Options
	// Trace holds the events of the first two convolution layers.
	Trace []sim.Event
	// ExposedIdleUS is the worst per-core compute-engine gap between
	// the first and second convolution layer — the idle the paper's
	// Figure 12(a) arrow marks.
	ExposedIdleUS float64
	// LatencyUS is the stem latency under the variant.
	LatencyUS float64
}

// Fig12 reproduces the pipelining profiles of Figure 12 on the first
// two convolution layers of InceptionV3:
//
//	(a) no halo-exchange: the layer boundary is a full store-sync-load
//	    round trip, exposing idle while cores wait for boundary data;
//	(b) halo-exchange with feature-map forwarding but without the
//	    halo-first policy — the halo is produced last, so the exchange
//	    is still exposed;
//	(c) halo-exchange with the halo-first policy — the halo transfer
//	    overlaps the remaining tiles' computation, and nothing but halo
//	    data is loaded from global memory.
func Fig12() ([]Fig12Variant, error) {
	g := models.InceptionV3Stem()
	a := arch.Exynos2100Like()

	noFirst := core.Halo()
	noFirst.HaloFirst = false
	variants := []Fig12Variant{
		{Name: "(a) store-sync-load (no halo-exchange)", Opt: core.Base()},
		{Name: "(b) halo-exchange, no halo-first", Opt: noFirst},
		{Name: "(c) halo-exchange + halo-first", Opt: core.Halo()},
	}

	// Identify the first two convolution layers.
	conv1, _ := g.LayerByName("stem_conv1")
	conv2, _ := g.LayerByName("stem_conv2")
	relu1, _ := g.LayerByName("stem_conv1_relu")
	keep := map[graph.LayerID]bool{conv1.ID: true, conv2.ID: true, relu1.ID: true}

	err := parallel.ForEach(len(variants), func(i int) error {
		res, out, err := runOne(g, a, variants[i].Opt, true)
		if err != nil {
			return fmt.Errorf("fig12 %s: %w", variants[i].Name, err)
		}
		variants[i].LatencyUS = out.Stats.LatencyMicros(a.ClockMHz)
		for _, ev := range out.Trace {
			if keep[ev.Layer] {
				variants[i].Trace = append(variants[i].Trace, ev)
			}
		}
		variants[i].ExposedIdleUS = exposedIdle(out.Trace, res.Program, conv2.ID, a)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return variants, nil
}

// exposedIdle returns the worst per-core gap between the end of the
// previous compute and the first compute of layer target.
func exposedIdle(events []sim.Event, p *plan.Program, target graph.LayerID, a *arch.Arch) float64 {
	worst := 0.0
	for c := range a.Cores {
		targetStart := -1.0
		for _, ev := range events {
			if ev.Core == c && ev.Op == plan.Compute && ev.Layer == target {
				if targetStart < 0 || ev.Start < targetStart {
					targetStart = ev.Start
				}
			}
		}
		if targetStart < 0 {
			continue
		}
		prevEnd := 0.0
		for _, ev := range events {
			if ev.Core == c && ev.Op == plan.Compute && ev.Layer != target &&
				ev.End <= targetStart && ev.End > prevEnd {
				prevEnd = ev.End
			}
		}
		if gap := targetStart - prevEnd; gap > worst {
			worst = gap
		}
	}
	return worst / float64(a.ClockMHz)
}

// PrintFig12 renders the three Gantt profiles and the idle comparison.
func PrintFig12(w io.Writer, variants []Fig12Variant, a *arch.Arch) error {
	fmt.Fprintln(w, "Figure 12: pipelining profile of the first two InceptionV3 convolutions")
	for _, v := range variants {
		fmt.Fprintf(w, "\n%s  (stem latency %.1f us, exposed idle before conv2: %.2f us)\n",
			v.Name, v.LatencyUS, v.ExposedIdleUS)
		if err := trace.Gantt(w, normalize(v.Trace), a, 100); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\npaper: (a) shows idle waiting for halo transfer; (b) proceeds immediately;")
	fmt.Fprintln(w, "(c) additionally loads nothing from global memory except halo data")
	return nil
}

// normalize shifts events so the excerpt starts at t=0.
func normalize(events []sim.Event) []sim.Event {
	if len(events) == 0 {
		return events
	}
	min := events[0].Start
	for _, ev := range events {
		if ev.Start < min {
			min = ev.Start
		}
	}
	out := make([]sim.Event, len(events))
	for i, ev := range events {
		ev.Start -= min
		ev.End -= min
		out[i] = ev
	}
	return out
}

// Fig12Summary returns a compact one-line-per-variant comparison.
func Fig12Summary(variants []Fig12Variant) string {
	var b strings.Builder
	for _, v := range variants {
		fmt.Fprintf(&b, "%-36s exposed idle %.2f us, stem %.1f us\n", v.Name, v.ExposedIdleUS, v.LatencyUS)
	}
	return b.String()
}

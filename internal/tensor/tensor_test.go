package tensor

import (
	"testing"
	"testing/quick"
)

func TestDTypeSize(t *testing.T) {
	cases := []struct {
		d    DType
		size int
		name string
	}{
		{Int8, 1, "INT8"},
		{Int16, 2, "INT16"},
		{Int32, 4, "INT32"},
	}
	for _, c := range cases {
		if got := c.d.Size(); got != c.size {
			t.Errorf("%v.Size() = %d, want %d", c.d, got, c.size)
		}
		if got := c.d.String(); got != c.name {
			t.Errorf("%v.String() = %q, want %q", c.d, got, c.name)
		}
	}
}

func TestDTypeSizePanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown dtype")
		}
	}()
	DType(99).Size()
}

func TestShapeBasics(t *testing.T) {
	s := NewShape(10, 20, 3)
	if s.Elems() != 600 {
		t.Errorf("Elems = %d, want 600", s.Elems())
	}
	if s.Bytes(Int16) != 1200 {
		t.Errorf("Bytes(Int16) = %d, want 1200", s.Bytes(Int16))
	}
	if s.Empty() {
		t.Error("non-empty shape reported Empty")
	}
	if !NewShape(0, 20, 3).Empty() {
		t.Error("zero-H shape not Empty")
	}
	if s.String() != "10x20x3" {
		t.Errorf("String = %q", s.String())
	}
}

func TestShapeDimAccess(t *testing.T) {
	s := NewShape(4, 5, 6)
	if s.Dim(AxisH) != 4 || s.Dim(AxisW) != 5 || s.Dim(AxisC) != 6 {
		t.Errorf("Dim mismatch: %v", s)
	}
	s2 := s.WithDim(AxisW, 9)
	if s2.W != 9 || s.W != 5 {
		t.Errorf("WithDim should copy: got %v from %v", s2, s)
	}
}

func TestNewShapePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative extent")
		}
	}()
	NewShape(-1, 2, 3)
}

func TestAxisString(t *testing.T) {
	if AxisH.String() != "H" || AxisW.String() != "W" || AxisC.String() != "C" {
		t.Error("axis names wrong")
	}
	if !AxisH.Spatial() || !AxisW.Spatial() || AxisC.Spatial() {
		t.Error("Spatial classification wrong")
	}
}

func TestRegionIntersect(t *testing.T) {
	whole := WholeRegion(NewShape(10, 10, 8))
	r := Region{Off: NewShape(2, 3, 0), Ext: NewShape(4, 4, 8)}
	if !whole.Contains(r) {
		t.Error("whole should contain r")
	}
	q := Region{Off: NewShape(5, 5, 0), Ext: NewShape(5, 5, 8)}
	got := r.Intersect(q)
	want := Region{Off: NewShape(5, 5, 0), Ext: NewShape(1, 2, 8)}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	far := Region{Off: NewShape(9, 9, 0), Ext: NewShape(1, 1, 8)}
	if r.Overlaps(far) {
		t.Error("disjoint regions reported overlapping")
	}
	if !r.Overlaps(q) {
		t.Error("overlapping regions reported disjoint")
	}
}

func TestRegionGrowClamp(t *testing.T) {
	s := NewShape(10, 10, 4)
	r := Region{Off: NewShape(0, 4, 0), Ext: NewShape(5, 2, 4)}
	g := r.Grow(AxisH, 1, 1).ClampTo(s)
	// Growing below offset 0 clamps to 0; above grows normally.
	if g.Off.H != 0 || g.Ext.H != 6 {
		t.Errorf("Grow+Clamp H = [%d,+%d], want [0,+6]", g.Off.H, g.Ext.H)
	}
	g2 := r.Grow(AxisW, 2, 2).ClampTo(s)
	if g2.Off.W != 2 || g2.Ext.W != 6 {
		t.Errorf("Grow+Clamp W = [%d,+%d], want [2,+6]", g2.Off.W, g2.Ext.W)
	}
}

func TestRegionEndAndString(t *testing.T) {
	r := Region{Off: NewShape(1, 2, 3), Ext: NewShape(4, 5, 6)}
	if r.End(AxisH) != 5 || r.End(AxisW) != 7 || r.End(AxisC) != 9 {
		t.Errorf("End wrong: %v", r)
	}
	if r.String() != "[1:5,2:7,3:9]" {
		t.Errorf("String = %q", r.String())
	}
	if r.Elems() != 120 {
		t.Errorf("Elems = %d", r.Elems())
	}
	if r.Bytes(Int8) != 120 {
		t.Errorf("Bytes = %d", r.Bytes(Int8))
	}
}

func TestRoundUpDown(t *testing.T) {
	cases := []struct{ n, align, up, down int }{
		{0, 4, 0, 0},
		{1, 4, 4, 0},
		{4, 4, 4, 4},
		{5, 4, 8, 4},
		{7, 1, 7, 7},
		{7, 0, 7, 7},
		{15, 16, 16, 0},
	}
	for _, c := range cases {
		if got := RoundUp(c.n, c.align); got != c.up {
			t.Errorf("RoundUp(%d,%d) = %d, want %d", c.n, c.align, got, c.up)
		}
		if got := RoundDown(c.n, c.align); got != c.down {
			t.Errorf("RoundDown(%d,%d) = %d, want %d", c.n, c.align, got, c.down)
		}
	}
}

func TestSplitEvenExact(t *testing.T) {
	chunks := SplitEven(12, 3, 1)
	for i, c := range chunks {
		if c != 4 {
			t.Errorf("chunk %d = %d, want 4", i, c)
		}
	}
}

func TestSplitEvenAligned(t *testing.T) {
	chunks := SplitEven(100, 3, 16)
	sum := 0
	for i, c := range chunks {
		sum += c
		if i < len(chunks)-1 && c%16 != 0 {
			t.Errorf("chunk %d = %d not 16-aligned", i, c)
		}
	}
	if sum != 100 {
		t.Errorf("chunks sum to %d, want 100", sum)
	}
}

func TestSplitWeightedProportional(t *testing.T) {
	chunks := SplitWeighted(100, []float64{3, 1}, 1)
	if chunks[0] != 75 || chunks[1] != 25 {
		t.Errorf("chunks = %v, want [75 25]", chunks)
	}
}

func TestSplitWeightedTooSmall(t *testing.T) {
	// Extent smaller than one aligned unit per core: some cores get zero.
	chunks := SplitEven(3, 3, 16)
	sum := 0
	zero := 0
	for _, c := range chunks {
		sum += c
		if c == 0 {
			zero++
		}
	}
	if sum != 3 {
		t.Errorf("sum = %d, want 3", sum)
	}
	if zero == 0 {
		t.Error("expected at least one empty chunk for tiny extent")
	}
}

func TestSplitWeightedZeroWeights(t *testing.T) {
	chunks := SplitWeighted(10, []float64{0, 0}, 1)
	if chunks[0] != 10 || chunks[1] != 0 {
		t.Errorf("chunks = %v, want [10 0]", chunks)
	}
}

func TestSplitWeightedPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SplitWeighted(10, []float64{1, -1}, 1)
}

func TestChunksToRegions(t *testing.T) {
	whole := NewShape(10, 6, 8)
	regions := ChunksToRegions(whole, AxisH, []int{4, 6})
	if regions[0].Off.H != 0 || regions[0].Ext.H != 4 {
		t.Errorf("region 0 = %v", regions[0])
	}
	if regions[1].Off.H != 4 || regions[1].Ext.H != 6 {
		t.Errorf("region 1 = %v", regions[1])
	}
	for _, r := range regions {
		if r.Ext.W != 6 || r.Ext.C != 8 {
			t.Errorf("non-split axes altered: %v", r)
		}
	}
}

// Property: SplitWeighted chunks are non-negative, sum to total, and all
// interior boundaries are aligned.
func TestSplitWeightedProperties(t *testing.T) {
	f := func(total uint16, w1, w2, w3 uint8, alignSel uint8) bool {
		tot := int(total % 4096)
		weights := []float64{float64(w1%8) + 0.5, float64(w2 % 8), float64(w3 % 8)}
		aligns := []int{1, 2, 4, 8, 16, 32}
		align := aligns[int(alignSel)%len(aligns)]
		chunks := SplitWeighted(tot, weights, align)
		sum, bound := 0, 0
		for i, c := range chunks {
			if c < 0 {
				return false
			}
			sum += c
			bound += c
			if i < len(chunks)-1 && bound%align != 0 && bound != tot {
				return false
			}
		}
		return sum == tot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Intersect is commutative and contained in both operands.
func TestIntersectProperties(t *testing.T) {
	f := func(o1, o2, e1, e2 uint8) bool {
		r := Region{Off: NewShape(int(o1%20), int(o2%20), 0), Ext: NewShape(int(e1%20)+1, int(e2%20)+1, 4)}
		q := Region{Off: NewShape(int(o2%20), int(o1%20), 0), Ext: NewShape(int(e2%20)+1, int(e1%20)+1, 4)}
		a := r.Intersect(q)
		b := q.Intersect(r)
		if a != b {
			return false
		}
		if a.Empty() {
			return true
		}
		return r.Contains(a) && q.Contains(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

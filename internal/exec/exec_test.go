package exec

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/stratum"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

func TestTensorBasics(t *testing.T) {
	a := NewTensor(tensor.NewShape(4, 4, 2))
	a.Set(1, 2, 1, 42)
	if a.At(1, 2, 1) != 42 {
		t.Error("Set/At roundtrip failed")
	}
	a.Fill(7)
	b := NewTensor(tensor.NewShape(4, 4, 2))
	b.Fill(7)
	if !a.Equal(b) {
		t.Error("same seed fills differ")
	}
	b.Fill(8)
	if a.Equal(b) {
		t.Error("different seed fills equal")
	}
	if a.Equal(NewTensor(tensor.NewShape(2, 2, 2))) {
		t.Error("different shapes equal")
	}
}

func TestViewPanicsOutsideRegion(t *testing.T) {
	full := NewTensor(tensor.NewShape(8, 8, 4))
	full.Fill(1)
	v := ViewOf(full, tensor.Region{Off: tensor.NewShape(2, 2, 0), Ext: tensor.NewShape(4, 4, 4)})
	if v.At(3, 3, 1) != full.At(3, 3, 1) {
		t.Error("view read differs from tensor")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for out-of-view read")
		}
		if !strings.Contains(r.(string), "halo") {
			t.Errorf("panic message %v lacks halo hint", r)
		}
	}()
	v.At(0, 0, 0)
}

func TestWeightsDeterministicAndSliceable(t *testing.T) {
	w1 := WeightsFor(3)
	w2 := WeightsFor(3)
	if w1.Conv(5, 1, 1, 2, 3, 3, 8) != w2.Conv(5, 1, 1, 2, 3, 3, 8) {
		t.Error("same layer weights differ")
	}
	if w1.Bias(7) != w2.Bias(7) {
		t.Error("biases differ")
	}
	w3 := WeightsFor(4)
	same := true
	for i := 0; i < 16; i++ {
		if w1.W(int64(i)) != w3.W(int64(i)) {
			same = false
		}
	}
	if same {
		t.Error("different layers share weights")
	}
}

// validationGraph builds a network covering every operator kind.
func validationGraph() *graph.Graph {
	g := graph.New("validation", tensor.Int8)
	in := g.Input("input", tensor.NewShape(24, 24, 6))
	c1 := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	r1 := g.MustAdd("relu", ops.Activation{Func: ops.ReLU}, c1)
	dw := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), r1)
	h1 := g.MustAdd("hswish", ops.Activation{Func: ops.HSwish}, dw)
	pw := g.MustAdd("pw", ops.NewConv2D(1, 1, 1, 1, 16, ops.Padding{}), h1)
	add := g.MustAdd("add", ops.Add{Arity: 2}, r1, pw)
	mp := g.MustAdd("maxpool", ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, add)
	ap := g.MustAdd("avgpool", ops.AvgPool2D{KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		Pad: ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, mp)
	cat := g.MustAdd("concat", ops.Concat{Arity: 2}, mp, ap)
	crop := g.MustAdd("crop", ops.Crop{Top: 1, Bottom: 1, Left: 1, Right: 1}, cat)
	up := g.MustAdd("resize", ops.Resize{ScaleH: 2, ScaleW: 2, Mode: ops.Bilinear}, crop)
	dn := g.MustAdd("stride2", ops.NewConv2D(3, 3, 2, 2, 8,
		ops.SamePad(tensor.NewShape(20, 20, 32), 3, 3, 2, 2, 1, 1)), up)
	tc := g.MustAdd("upconv", ops.TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 8}, dn)
	sm := g.MustAdd("softmax", ops.Softmax{}, tc)
	gap := g.MustAdd("gap", ops.GlobalAvgPool{}, sm)
	se := g.MustAdd("mul", ops.Mul{}, sm, gap)
	gap2 := g.MustAdd("gap2", ops.GlobalAvgPool{}, se)
	fc := g.MustAdd("fc", ops.FullyConnected{OutC: 10}, gap2)
	g.MustAdd("sig", ops.Activation{Func: ops.Sigmoid}, fc)
	return g
}

func TestReferenceRunsAllOps(t *testing.T) {
	g := validationGraph()
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != g.Len() {
		t.Errorf("ref has %d tensors, want %d", len(ref), g.Len())
	}
	// The conv output must not be all zeros (weights and inputs are
	// nonzero pseudo-random values).
	conv, _ := g.LayerByName("conv")
	allZero := true
	for _, v := range ref[conv.ID].Data {
		if v != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		t.Error("conv output is all zeros")
	}
}

func TestPartitionedMatchesReference(t *testing.T) {
	g := validationGraph()
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []partition.Mode{partition.Adaptive, partition.ForceSpatial, partition.ForceChannel} {
		p := partition.New(g, arch.Exynos2100Like())
		p.Mode = mode
		if err := ValidatePartitioned(g, p.PlanAll(), ref); err != nil {
			t.Errorf("mode %v: %v", mode, err)
		}
	}
}

func TestTiledMatchesReference(t *testing.T) {
	g := validationGraph()
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Exynos2100Like()
	p := partition.New(g, a)
	if err := ValidateTiled(g, p.PlanAll(), tiling.New(a), ref); err != nil {
		t.Error(err)
	}
}

func TestStrataMatchReference(t *testing.T) {
	// A conv chain where strata actually form.
	g := graph.New("chain", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(48, 48, 8))
	for i := 0; i < 4; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
	}
	a := arch.Exynos2100Like()
	p := partition.New(g, a)
	plans := p.PlanAll()
	pred := func(l *graph.Layer) bool { return plans[l.ID].Direction.Spatial() }
	order := schedule.New(g, pred).Order()
	b := stratum.New(g, a, plans, order)
	strata := b.Build()
	merged := false
	for _, s := range strata {
		if s.Len() > 1 {
			merged = true
		}
	}
	if !merged {
		t.Skip("no multi-layer strata formed; nothing to validate")
	}
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateStrata(g, plans, strata, ref); err != nil {
		t.Error(err)
	}
}

func TestValidationCatchesCorruptedPlan(t *testing.T) {
	// Shrink a sub-layer's input region below the receptive field: the
	// view read must panic and surface as an error.
	g := graph.New("bad", tensor.Int8)
	in := g.Input("input", tensor.NewShape(16, 16, 4))
	g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 4,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	p := partition.New(g, arch.Exynos2100Like())
	plans := p.PlanAll()
	// Corrupt: remove the halo row from the middle core's input.
	for i := range plans[1].Subs {
		s := &plans[1].Subs[i]
		if s.Empty() || s.Out.Off.H == 0 {
			continue
		}
		s.In[0] = s.In[0].Grow(tensor.AxisH, -1, 0) // drop top halo row
		if err := ValidatePartitioned(g, plans, ref); err == nil {
			t.Fatal("corrupted halo not detected")
		}
		return
	}
	t.Skip("no middle core found")
}

func TestValidationCatchesWrongValues(t *testing.T) {
	// A plan whose regions are fine but whose stitched output is
	// tampered with must fail Equal — exercised by corrupting ref.
	g := graph.New("v", tensor.Int8)
	in := g.Input("input", tensor.NewShape(8, 8, 4))
	g.MustAdd("relu", ops.Activation{Func: ops.ReLU}, in)
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	plans := partition.New(g, arch.Exynos2100Like()).PlanAll()
	ref[1].Data[0] += 1
	if err := ValidatePartitioned(g, plans, ref); err == nil {
		t.Fatal("value mismatch not detected")
	}
}

func TestActivationFunctions(t *testing.T) {
	cases := []struct {
		f    ops.ActFunc
		in   int32
		want int32
	}{
		{ops.ReLU, -5, 0},
		{ops.ReLU, 5, 5},
		{ops.ReLU6, 200, 96},
		{ops.ReLU6, -1, 0},
		{ops.ReLU6, 50, 50},
		{ops.HSwish, -100, 0},
		{ops.HSwish, 100, 100},
	}
	for _, c := range cases {
		if got := act(c.f, c.in); got != c.want {
			t.Errorf("act(%v, %d) = %d, want %d", c.f, c.in, got, c.want)
		}
	}
	// Sigmoid and TanH are monotone and bounded.
	prevSig, prevTanh := int32(-1<<30), int32(-1<<30)
	for x := int32(-100); x <= 100; x += 10 {
		s := act(ops.Sigmoid, x)
		th := act(ops.TanH, x)
		if s < prevSig || th < prevTanh {
			t.Errorf("non-monotone activation at %d", x)
		}
		if s < 0 || s > 64 || th < -64 || th > 64 {
			t.Errorf("activation out of bounds at %d: sig=%d tanh=%d", x, s, th)
		}
		prevSig, prevTanh = s, th
	}
}

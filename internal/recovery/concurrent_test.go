package recovery

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/sim"
)

// TestRecoverConcurrentIdentical: concurrent Recover calls from the
// same checkpoint must neither race (run with -race) nor diverge — a
// serving layer may re-partition the same failure from several
// goroutines at once, and every one must produce the identical plan.
func TestRecoverConcurrentIdentical(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	opt := core.Stratum()
	killAt := 0.4 * cleanCycles(t, g, a, opt)
	plan := &fault.Plan{Deaths: []fault.Death{{Core: 1, AtCycle: killAt}}}
	cf := failWith(t, g, a, opt, plan)

	const workers = 4
	results := make([]*Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w], errs[w] = Recover(g, a, cf, Options{Opt: opt, Sim: sim.Config{Faults: plan}})
		}(w)
	}
	wg.Wait()

	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	ref := results[0]
	for w := 1; w < workers; w++ {
		r := results[w]
		if !reflect.DeepEqual(r.DeadCores, ref.DeadCores) ||
			!reflect.DeepEqual(r.Survivors, ref.Survivors) ||
			!reflect.DeepEqual(r.Completed, ref.Completed) {
			t.Fatalf("worker %d recovered a different checkpoint: dead %v survivors %v completed %v, want %v %v %v",
				w, r.DeadCores, r.Survivors, r.Completed, ref.DeadCores, ref.Survivors, ref.Completed)
		}
		if !reflect.DeepEqual(r.Compiled.Plans, ref.Compiled.Plans) {
			t.Fatalf("worker %d partitioned the suffix differently", w)
		}
		if !reflect.DeepEqual(r.Compiled.Order, ref.Compiled.Order) {
			t.Fatalf("worker %d scheduled the suffix differently", w)
		}
		if got, want := r.Compiled.Program.NumInstrs(), ref.Compiled.Program.NumInstrs(); got != want {
			t.Fatalf("worker %d emitted %d instructions, want %d", w, got, want)
		}
		if !reflect.DeepEqual(r.Final.Stats, ref.Final.Stats) {
			t.Fatalf("worker %d resumed run diverged: %+v vs %+v", w, r.Final.Stats, ref.Final.Stats)
		}
		if r.TotalCycles != ref.TotalCycles {
			t.Fatalf("worker %d degraded latency %v, want %v", w, r.TotalCycles, ref.TotalCycles)
		}
	}
	if err := Validate(g, ref); err != nil {
		t.Fatalf("recovered plan fails numeric validation: %v", err)
	}
}

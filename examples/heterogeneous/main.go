// Heterogeneous: show how the partitioner balances work across cores
// with different DMA bandwidths and alignment constraints — the load-
// balancing problem of Section 3.1.1.
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

func main() {
	g := npu.BuildModel("InceptionV3")

	// The Exynos-2100-like preset has asymmetric DMA bandwidth
	// (16/12/8 bytes per cycle) and a 32-channel alignment on the
	// third core.
	a := npu.Exynos2100Like()
	fmt.Println("cores:")
	for _, c := range a.Cores {
		fmt.Printf("  %s: %d MACs/cycle, %.0f B/cycle DMA, align C%d\n",
			c.Name, c.MACsPerCycle, c.DMABytesPerCycle, c.AlignC)
	}

	res, err := npu.Compile(g, a, npu.Stratum())
	if err != nil {
		log.Fatal(err)
	}

	// Inspect a few partitioning decisions: a spatial layer splits
	// rows proportional to effective core speed; a channel-wise layer
	// splits channels at the 16/32 alignment.
	fmt.Println("\nsample partitioning decisions:")
	shown := 0
	for _, l := range g.Layers() {
		if l.IsInput() || shown >= 6 {
			continue
		}
		p := res.Plans[l.ID]
		if p.Direction.String() == "none" {
			continue
		}
		fmt.Printf("  %-24s %-9s", l.Name, p.Direction)
		for _, s := range p.Subs {
			fmt.Printf("  %s=%s", a.Cores[s.Core].Name, s.Out.Ext)
		}
		fmt.Printf("   (%s)\n", p.Reason)
		shown++
	}

	rep, err := npu.Simulate(res, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nper-core utilization after balancing:")
	clock := float64(a.ClockMHz)
	for i, cs := range rep.Stats.PerCore {
		fmt.Printf("  %s: compute %.0f us, dma %.0f us, idle %.0f us\n",
			a.Cores[i].Name, cs.ComputeBusy/clock, (cs.LoadBusy+cs.StoreBusy)/clock, cs.Idle/clock)
	}
	fmt.Printf("end-to-end: %.1f us\n", rep.LatencyMicros())
}

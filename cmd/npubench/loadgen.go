package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/loadgen"
)

// runLoadgen is the -experiment loadgen hook: a fixed, seeded
// fleet-scale replay sweep — the default Table 2 mix over the default
// capacity multiples — written to benchPath as the BENCH_loadgen.json
// artifact. It is the one-command version of the npuload CLI; use
// npuload directly for custom mixes, batching windows, or live
// -serve targets.
func runLoadgen(w io.Writer, benchPath string) error {
	rep, err := loadgen.RunReplay(loadgen.DefaultMix(), loadgen.Options{
		Requests: 200_000,
		Seed:     1,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "fleet replay: %d requests/point, %d devices, estimated capacity %.0f req/s\n",
		200_000, rep.Devices, rep.CapacityRPS)
	if err := rep.WriteTable(w); err != nil {
		return err
	}
	f, err := os.Create(benchPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", benchPath)
	return nil
}

package sim

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// FailureKind classifies why a simulated core became unusable.
type FailureKind int

const (
	// FailCoreDeath: a fault.Death fired while the core still had
	// unexecuted instructions.
	FailCoreDeath FailureKind = iota
	// FailDMAExhausted: a single DMA transfer was dropped more times
	// than the plan's retry bound — the runtime treats the core's link
	// as dead.
	FailDMAExhausted
)

func (k FailureKind) String() string {
	switch k {
	case FailCoreDeath:
		return "core-death"
	case FailDMAExhausted:
		return "dma-retries-exhausted"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// CoreFailure is the typed error a fault-injected run returns when a
// core becomes unusable mid-program. It carries everything a recovery
// runtime needs: which core died, when, the checkpoint to resume from,
// and the statistics accumulated up to the failure (so degraded-mode
// latency can account for the wasted cycles).
type CoreFailure struct {
	Kind FailureKind
	// Core is the global core index that failed.
	Core int
	// Placement indexes the placement the core was running (0 for
	// single-program Run; -1 if the core was unassigned).
	Placement int
	// AtCycle is the simulated time of the failure.
	AtCycle float64
	// Completed is the checkpoint: the longest prefix of the failed
	// placement's layer execution order (its strata, flattened) whose
	// layers all finished every instruction AND whose results needed
	// outside the prefix were stored to global memory. Because
	// forwarding and stratum layers keep intermediates in SPM without
	// stores, this cut naturally falls on a barrier or stratum
	// boundary — exactly the paper's synchronization points.
	Completed []graph.LayerID
	// Partial holds the statistics accumulated up to AtCycle.
	Partial Stats
}

func (f *CoreFailure) Error() string {
	return fmt.Sprintf("sim: core %d failed (%s) at cycle %.0f with %d layers checkpointed",
		f.Core, f.Kind, f.AtCycle, len(f.Completed))
}

// HangDetected is the typed error the watchdog returns when one or
// more cores with pending work have silently stopped making progress.
// Unlike CoreFailure it is raised by detection, not by the fault
// itself: the simulated time is the heartbeat at which the stall was
// observed, not the cycle the hang was injected. It carries the same
// recovery payload as CoreFailure — checkpoint and partial stats — so
// recovery.Recover can re-map the suffix onto the survivors.
type HangDetected struct {
	// Cores lists every core the watchdog found stalled at this
	// heartbeat, ascending. (A single SoC-level event — e.g. a power
	// domain browning out — can stall several cores at once.)
	Cores []int
	// Placement indexes the placement of Cores[0] (-1 if unassigned).
	Placement int
	// AtCycle is the heartbeat at which the stall was detected; the
	// detection latency is AtCycle minus the injection cycle, bounded
	// by the heartbeat interval for a core that was mid-instruction.
	AtCycle float64
	// Completed is the checkpoint of the first stalled core's
	// placement (same cut rule as CoreFailure.Completed).
	Completed []graph.LayerID
	// Partial holds the statistics accumulated up to AtCycle.
	Partial Stats
}

func (h *HangDetected) Error() string {
	return fmt.Sprintf("sim: watchdog: core %d hung (no progress) detected at cycle %.0f with %d layers checkpointed",
		h.Cores[0], h.AtCycle, len(h.Completed))
}

// Corruption records one silently corrupted stratum: some DMA
// transfer feeding the stratum delivered flipped bytes, and the
// stratum-boundary checksum caught it when the stratum's last
// instruction retired. Re-executing just that stratum (its inputs are
// DRAM-resident at the boundary) repairs the run — the blast radius
// is bounded by the checksum granularity.
type Corruption struct {
	// Placement indexes the placement the stratum belongs to.
	Placement int
	// Stratum is the index into the placement program's Strata.
	Stratum int
	// DetectedAtCycle is when the stratum's checksum was verified —
	// the completion time of its last instruction.
	DetectedAtCycle float64
	// Transfers counts the corrupted DMA transfers in the stratum.
	Transfers int
}

// faultState is the per-run mutable view of a fault.Plan: the merged
// event timeline (fault.Timeline, in firing order) plus the current
// effective speed/liveness of every core. The effective speed is the
// product of the announced throttle factor and the silent slowdown
// factor, forced to 0 while the core is hung; throttleF/silentF/hung
// keep the components so a resume restores exactly the pre-hang
// speed. All buffers are reusable so a pooled engine run injects
// faults without steady-state allocation.
type faultState struct {
	plan       *fault.Plan
	maxRetries int
	speed      []float64 // effective: throttleF * silentF, 0 while hung
	throttleF  []float64
	silentF    []float64
	hung       []bool
	dead       []bool
	events     []fault.TimedEvent // merged timeline, pending from pos on
	pos        int
	fired      []firedEvent // reusable fire() output buffer
}

// firedEvent is one fault event applied at the current time.
type firedEvent struct {
	kind     fault.EventKind
	core     int
	oldSpeed float64 // effective speed before the event
	newSpeed float64 // effective speed after the event
}

// init validates and loads a plan for ncores cores, reusing fs's
// buffers. It reports whether the plan injects anything; an empty
// plan leaves the fault-free simulation path untouched. Plans naming
// cores outside the architecture are rejected with a typed
// *fault.CoreRangeError.
func (fs *faultState) init(p *fault.Plan, ncores int) (bool, error) {
	if p.Empty() {
		return false, nil
	}
	if err := p.ValidateFor(ncores); err != nil {
		return false, err
	}
	fs.plan = p
	fs.maxRetries = p.Retries()
	if cap(fs.speed) < ncores {
		fs.speed = make([]float64, ncores)
		fs.throttleF = make([]float64, ncores)
		fs.silentF = make([]float64, ncores)
		fs.hung = make([]bool, ncores)
		fs.dead = make([]bool, ncores)
	}
	fs.speed = fs.speed[:ncores]
	fs.throttleF = fs.throttleF[:ncores]
	fs.silentF = fs.silentF[:ncores]
	fs.hung = fs.hung[:ncores]
	fs.dead = fs.dead[:ncores]
	for i := range fs.speed {
		fs.speed[i] = 1
		fs.throttleF[i] = 1
		fs.silentF[i] = 1
		fs.hung[i] = false
		fs.dead[i] = false
	}
	fs.events = p.Timeline(ncores, fs.events)
	fs.pos = 0
	return true, nil
}

// newFaultState validates and instantiates a plan for ncores cores.
// An empty (or nil) plan yields a nil state.
func newFaultState(p *fault.Plan, ncores int) (*faultState, error) {
	fs := &faultState{}
	active, err := fs.init(p, ncores)
	if err != nil || !active {
		return nil, err
	}
	return fs, nil
}

// next returns the earliest pending fault-event time, or +Inf.
func (fs *faultState) next() float64 {
	if fs.pos >= len(fs.events) {
		return math.Inf(1)
	}
	return fs.events[fs.pos].AtCycle
}

// fire pops and applies every event due at or before now, in time
// order, and returns them for the simulator to act on (rescaling
// in-flight compute, freezing hung cores, failing dead cores with
// pending work). Speed-affecting events (throttle, slowdown) landing
// on a hung core update the component factor but emit oldSpeed ==
// newSpeed == 0 — the effective speed stays zero until the resume.
// The returned slice is valid until the next call.
func (fs *faultState) fire(now float64) []firedEvent {
	out := fs.fired[:0]
	for fs.pos < len(fs.events) && fs.events[fs.pos].AtCycle <= now+eps {
		ev := fs.events[fs.pos]
		fs.pos++
		old := fs.speed[ev.Core]
		switch ev.Kind {
		case fault.KindDeath:
			fs.dead[ev.Core] = true
			out = append(out, firedEvent{kind: ev.Kind, core: ev.Core})
			continue
		case fault.KindThrottle:
			fs.throttleF[ev.Core] = ev.Factor
		case fault.KindSlowdown:
			fs.silentF[ev.Core] = ev.Factor
		case fault.KindHang:
			fs.hung[ev.Core] = true
		case fault.KindResume:
			fs.hung[ev.Core] = false
		}
		newSpeed := fs.throttleF[ev.Core] * fs.silentF[ev.Core]
		if fs.hung[ev.Core] {
			newSpeed = 0
		}
		fs.speed[ev.Core] = newSpeed
		out = append(out, firedEvent{kind: ev.Kind, core: ev.Core, oldSpeed: old, newSpeed: newSpeed})
	}
	fs.fired = out
	return out
}

// StratumLayers returns the layers of the program stratum a
// Corruption names, mirroring the engines' checksum granularity: the
// program's strata when it has them, otherwise one stratum per layer.
func StratumLayers(p *plan.Program, stratum int) []graph.LayerID {
	if len(p.Strata) == 0 {
		return []graph.LayerID{graph.LayerID(stratum)}
	}
	return p.Strata[stratum]
}

// deadlockError builds the quiescent-machine diagnostic, shared by
// both engines so the message (and thus error-comparing tests) stays
// identical. When cores are silently hung with work outstanding the
// message names them — that is the deadlock's cause, and the fix is a
// watchdog.
func deadlockError(now float64, completed, total int, hungPending []int) error {
	if len(hungPending) > 0 {
		return fmt.Errorf("sim: deadlock at t=%.0f with %d/%d instructions done; cores %v silently hung with pending work (set Config.WatchdogCycles to detect hangs)",
			now, completed, total, hungPending)
	}
	return fmt.Errorf("sim: deadlock at t=%.0f with %d/%d instructions done", now, completed, total)
}

// checkpoint computes the recovery cut for a partially executed
// program: the longest prefix of the flattened strata order such that
// (a) every prefix layer completed all its instructions, and (b) every
// prefix layer with a consumer outside the prefix published its output
// to global memory via at least one Store. Condition (b) is what makes
// the cut safe — forwarded/stratum intermediates live only in the dead
// core's SPM and cannot seed a resumed run.
func checkpoint(p *plan.Program, done, total []int, hasStore []bool) []graph.LayerID {
	var order []graph.LayerID
	for _, s := range p.Strata {
		order = append(order, s...)
	}
	if len(order) == 0 {
		return nil
	}
	pos := make(map[graph.LayerID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	// k = longest fully-executed prefix.
	k := 0
	for k < len(order) {
		id := order[k]
		if done[id] < total[id] {
			break
		}
		k++
	}
	// Largest j <= k where every prefix layer is either stored or has
	// all consumers inside the prefix.
	for j := k; j > 0; j-- {
		ok := true
		for i := 0; i < j && ok; i++ {
			id := order[i]
			if hasStore[id] {
				continue
			}
			for _, u := range p.Graph.Users(id) {
				pu, in := pos[u]
				if !in || pu >= j {
					ok = false
					break
				}
			}
		}
		if ok {
			return append([]graph.LayerID(nil), order[:j]...)
		}
	}
	return nil
}

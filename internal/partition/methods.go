package partition

// Method describes one convolution-layer partitioning method, one row
// of the paper's Table 1. The compiler only ever selects the two
// Preferred methods; the reduction-requiring alternatives are listed
// so the Table 1 experiment can enumerate and justify the choice.
type Method struct {
	// Name is the paper's label; an asterisk marks the dispreferred
	// partial-sum variants.
	Name string
	// Direction is the output split the method corresponds to (the
	// partial-sum variants split the kernel or input instead of the
	// output and have no output Direction; they are marked DirNone).
	Direction Direction
	// DataPartitioned lists which tensors the method splits.
	DataPartitioned []string
	// DataReplicated lists which tensors every core must hold whole.
	DataReplicated []string
	// ExtraCommComp names the extra stage the method needs, if any.
	ExtraCommComp string
	// Preferred reports whether the compiler may select the method.
	Preferred bool
}

// ConvMethods returns the four convolution partitioning methods of
// Table 1 in paper order.
func ConvMethods() []Method {
	return []Method{
		{
			Name:            "spatial",
			Direction:       DirSpatialH,
			DataPartitioned: []string{"input", "output"},
			DataReplicated:  []string{"kernel"},
			ExtraCommComp:   "none",
			Preferred:       true,
		},
		{
			Name:            "spatial*",
			Direction:       DirNone,
			DataPartitioned: []string{"kernel"},
			DataReplicated:  []string{"input", "output"},
			ExtraCommComp:   "partial sum reduction",
			Preferred:       false,
		},
		{
			Name:            "channel",
			Direction:       DirChannel,
			DataPartitioned: []string{"kernel", "output"},
			DataReplicated:  []string{"input"},
			ExtraCommComp:   "none",
			Preferred:       true,
		},
		{
			Name:            "channel*",
			Direction:       DirNone,
			DataPartitioned: []string{"input", "kernel"},
			DataReplicated:  []string{},
			ExtraCommComp:   "partial sum reduction",
			Preferred:       false,
		},
	}
}

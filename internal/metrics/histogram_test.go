package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileBuckets(t *testing.T) {
	var h Histogram
	// 90 fast observations, 10 slow ones: p50 lands in the fast
	// bucket, p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	if n := h.Count(); n != 100 {
		t.Fatalf("count = %d", n)
	}
	p50 := h.Quantile(0.50)
	if p50 < 64*time.Microsecond || p50 >= 128*time.Microsecond {
		t.Errorf("p50 = %v, want within the [64us, 128us) bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 64*time.Millisecond || p99 >= 132*time.Millisecond {
		t.Errorf("p99 = %v, want within the slow bucket", p99)
	}
	if p99 <= p50 {
		t.Errorf("p99 %v <= p50 %v", p99, p50)
	}
}

func TestHistogramMonotoneQuantiles(t *testing.T) {
	var h Histogram
	for us := 1; us <= 4096; us *= 2 {
		for i := 0; i < us; i++ {
			h.Observe(time.Duration(us) * time.Microsecond)
		}
	}
	prev := time.Duration(-1)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile %v = %v below previous %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*100+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if n := h.Count(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
	s := h.Snapshot()
	if s.Count != workers*per || s.P99US < s.P50US {
		t.Fatalf("snapshot inconsistent: %+v", s)
	}
}

package dse

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/stratum"
)

// Genome encodes one point of the joint schedule design space:
//
//   - Methods: per-layer partitioning-method override (Table 1 row),
//     generalizing the fixed h1–h5 choice. MethodAuto defers to the
//     heuristics; only overrides partition.MethodSupported admits are
//     ever generated.
//   - Boundary: per-layer stratum boundary override, generalizing the
//     fixed h6–h8 cutoff into a tunable fusion-depth vector (Break
//     forces a boundary, Fuse merges through the h8 cost check).
//   - Scale: per-core partition-weight multipliers drawn from a fixed
//     quantized grid, subsuming package autotune's profile-guided
//     damped rebalancing as one search move.
//
// The all-auto, unit-scale genome lowers to exactly the heuristic
// baseline: its derived Options fingerprint-match the plain
// configuration, so evaluating it is a compile-cache hit.
type Genome struct {
	// Methods is indexed by LayerID; nil or short means all-auto.
	Methods []partition.MethodID
	// Boundary is indexed by LayerID; nil or short means all-auto.
	Boundary []stratum.Boundary
	// Scale has one grid value per core; nil means unit scales.
	Scale []float64
}

// scaleGrid is the quantized ladder of per-core weight multipliers.
// Quantizing keeps the genome space finite and revisit-friendly: a
// rebalancing move that lands near a previous candidate snaps onto it
// and costs a dedupe (or compile-cache) hit instead of a fresh
// compile. unitScale indexes the 1.0 entry.
var scaleGrid = []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.25, 1.4, 1.6}

const unitScale = 4

// scaleIndex returns the grid index nearest to v (ties toward the
// lower index, keeping snapping deterministic).
func scaleIndex(v float64) int {
	best, bestD := 0, math.Inf(1)
	for i, g := range scaleGrid {
		if d := math.Abs(g - v); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// newGenome returns the baseline genome for a graph on n cores: every
// gene at its heuristic default.
func newGenome(g *graph.Graph, n int) Genome {
	gen := Genome{
		Methods:  make([]partition.MethodID, g.Len()),
		Boundary: make([]stratum.Boundary, g.Len()),
		Scale:    make([]float64, n),
	}
	for i := range gen.Scale {
		gen.Scale[i] = scaleGrid[unitScale]
	}
	return gen
}

// clone returns a deep copy.
func (g Genome) clone() Genome {
	return Genome{
		Methods:  append([]partition.MethodID(nil), g.Methods...),
		Boundary: append([]stratum.Boundary(nil), g.Boundary...),
		Scale:    append([]float64(nil), g.Scale...),
	}
}

// key returns a canonical string identity for dedupe maps.
func (g Genome) key() string {
	var b strings.Builder
	for _, m := range g.Methods {
		fmt.Fprintf(&b, "%d,", int(m))
	}
	b.WriteByte('|')
	for _, x := range g.Boundary {
		fmt.Fprintf(&b, "%d,", int(x))
	}
	b.WriteByte('|')
	for _, s := range g.Scale {
		fmt.Fprintf(&b, "%d,", scaleIndex(s))
	}
	return b.String()
}

// Options lowers the genome onto a base configuration. Vectors that
// are entirely at their defaults stay nil, so the baseline genome's
// Options are bit-identical (and fingerprint-identical) to the plain
// heuristic configuration.
func (g Genome) Options(base core.Options) core.Options {
	o := base
	for _, m := range g.Methods {
		if m != partition.MethodAuto {
			o.ForceMethods = append([]partition.MethodID(nil), g.Methods...)
			break
		}
	}
	for _, x := range g.Boundary {
		if x != stratum.BoundaryAuto {
			o.StratumBoundary = append([]stratum.Boundary(nil), g.Boundary...)
			break
		}
	}
	for _, s := range g.Scale {
		if s != scaleGrid[unitScale] {
			o.WeightScale = append([]float64(nil), g.Scale...)
			break
		}
	}
	return o
}

// Overrides counts the genes deviating from the heuristic default, for
// compact reporting.
func (g Genome) Overrides() (methods, boundaries, scales int) {
	for _, m := range g.Methods {
		if m != partition.MethodAuto {
			methods++
		}
	}
	for _, x := range g.Boundary {
		if x != stratum.BoundaryAuto {
			boundaries++
		}
	}
	for _, s := range g.Scale {
		if s != scaleGrid[unitScale] {
			scales++
		}
	}
	return
}

// prng is splitmix64, matching the determinism conventions of
// internal/loadgen: fast, host-independent, and allocation-free, so
// same-seed searches are byte-identical at any worker count.
type prng uint64

func (p *prng) next() uint64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// intn returns a deterministic value in [0, n). n must be positive.
func (p *prng) intn(n int) int { return int(p.next() % uint64(n)) }

// moveSpace precomputes, per graph, which genes each move type may
// touch: layers with at least one supported non-auto method, and
// layers whose edge to their single consumer satisfies the structural
// half of h6 (the only edges a Boundary gene can influence).
type moveSpace struct {
	methodTargets []graph.LayerID
	methodChoices map[graph.LayerID][]partition.MethodID
	fuseTargets   []graph.LayerID
}

func newMoveSpace(g *graph.Graph) *moveSpace {
	ms := &moveSpace{methodChoices: make(map[graph.LayerID][]partition.MethodID)}
	for _, l := range g.Layers() {
		if l.IsInput() {
			continue
		}
		var choices []partition.MethodID
		for _, m := range []partition.MethodID{partition.MethodSpatial, partition.MethodChannel} {
			if ok, _ := partition.MethodSupported(m, l); ok {
				choices = append(choices, m)
			}
		}
		if len(choices) > 0 {
			ms.methodTargets = append(ms.methodTargets, l.ID)
			ms.methodChoices[l.ID] = append(choices, partition.MethodAuto)
		}
		if users := g.Users(l.ID); len(users) == 1 {
			if len(g.Layer(users[0]).Inputs) == 1 {
				ms.fuseTargets = append(ms.fuseTargets, l.ID)
			}
		}
	}
	return ms
}

// mutate returns a copy of parent with one gene perturbed. work is the
// parent's per-core occupancy profile (nil when unknown); when
// present, one of the move types is the autotune-style damped
// rebalancing step applied to the whole scale vector.
func (ms *moveSpace) mutate(rng *prng, parent Genome, work []float64) Genome {
	child := parent.clone()
	// Move weights: methods and boundaries carry the search; scale
	// steps and the profile-guided rebalance refine the balance.
	move := rng.intn(100)
	switch {
	case move < 35 && len(ms.methodTargets) > 0:
		id := ms.methodTargets[rng.intn(len(ms.methodTargets))]
		choices := ms.methodChoices[id]
		cur := child.Methods[id]
		pick := choices[rng.intn(len(choices))]
		if pick == cur {
			pick = choices[(scanIndex(choices, cur)+1)%len(choices)]
		}
		child.Methods[id] = pick
	case move < 65 && len(ms.fuseTargets) > 0:
		id := ms.fuseTargets[rng.intn(len(ms.fuseTargets))]
		all := []stratum.Boundary{stratum.BoundaryAuto, stratum.BoundaryBreak, stratum.BoundaryFuse}
		cur := child.Boundary[id]
		pick := all[rng.intn(len(all))]
		if pick == cur {
			pick = all[(int(cur)+1)%len(all)]
		}
		child.Boundary[id] = pick
	case move < 85 && len(work) == len(child.Scale) && len(work) > 0:
		// Rebalance move: the damped profile-guided update of package
		// autotune, snapped onto the scale grid.
		var mean float64
		for _, w := range work {
			mean += w
		}
		mean /= float64(len(work))
		for c := range child.Scale {
			w := work[c]
			if w < 1 {
				w = 1
			}
			child.Scale[c] = scaleGrid[scaleIndex(child.Scale[c]*math.Sqrt(mean/w))]
		}
	default:
		c := rng.intn(len(child.Scale))
		i := scaleIndex(child.Scale[c])
		step := 1
		if rng.intn(2) == 0 {
			step = -1
		}
		j := i + step
		if j < 0 || j >= len(scaleGrid) {
			j = i - step
		}
		child.Scale[c] = scaleGrid[j]
	}
	return child
}

// randomize applies k random mutations (without profile information),
// seeding a restart away from the baseline.
func (ms *moveSpace) randomize(rng *prng, base Genome, k int) Genome {
	g := base
	for i := 0; i < k; i++ {
		g = ms.mutate(rng, g, nil)
	}
	return g
}

func scanIndex(xs []partition.MethodID, v partition.MethodID) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}

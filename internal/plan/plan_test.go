package plan

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tensor"
)

func testGraph() *graph.Graph {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(8, 8, 4))
	g.MustAdd("relu", ops.Activation{Func: ops.ReLU}, in)
	return g
}

// tinyProgram builds a hand-written two-core program:
// core0: load, compute, store, barrier; core1: barrier, load (dep
// barrier), compute.
func tinyProgram() *Program {
	a := arch.Homogeneous(2)
	g := testGraph()
	c0 := []Instr{
		{Op: LoadInput, Layer: 1, Tile: 0, Bytes: 64, BarrierID: -1},
		{Op: Compute, Layer: 1, Tile: 0, MACs: 100, Deps: []Ref{{0, 0}}, BarrierID: -1},
		{Op: Store, Layer: 1, Tile: 0, Bytes: 64, Deps: []Ref{{0, 1}}, BarrierID: -1},
		{Op: Barrier, Layer: 1, Tile: -1, Deps: []Ref{{0, 2}}, BarrierID: 0},
	}
	c1 := []Instr{
		{Op: Barrier, Layer: 1, Tile: -1, BarrierID: 0},
		{Op: LoadInput, Layer: 1, Tile: 0, Bytes: 32, Deps: []Ref{{1, 0}}, BarrierID: -1},
		{Op: Compute, Layer: 1, Tile: 0, MACs: 50, Deps: []Ref{{1, 1}}, BarrierID: -1},
	}
	return &Program{
		Arch:        a,
		Graph:       g,
		Cores:       [][]Instr{c0, c1},
		NumBarriers: 1,
		Directions:  make([]partition.Direction, g.Len()),
	}
}

func TestValidateAcceptsWellFormed(t *testing.T) {
	p := tinyProgram()
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAccounting(t *testing.T) {
	p := tinyProgram()
	if got := p.TotalBytes(0); got != 128 {
		t.Errorf("TotalBytes(0) = %d, want 128", got)
	}
	if got := p.TotalMACs(1); got != 50 {
		t.Errorf("TotalMACs(1) = %d, want 50", got)
	}
	if p.NumInstrs() != 7 {
		t.Errorf("NumInstrs = %d", p.NumInstrs())
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Program)
		want   string
	}{
		{"dep out of range", func(p *Program) {
			p.Cores[0][1].Deps = []Ref{{0, 99}}
		}, "out of range"},
		{"dep bad core", func(p *Program) {
			p.Cores[0][1].Deps = []Ref{{5, 0}}
		}, "out of range"},
		{"barrier id out of range", func(p *Program) {
			p.Cores[0][3].BarrierID = 7
		}, "barrier id"},
		{"zero byte load", func(p *Program) {
			p.Cores[0][0].Bytes = 0
		}, "bytes"},
		{"zero mac compute", func(p *Program) {
			p.Cores[0][1].MACs = 0
		}, "MACs"},
		{"missing barrier on a core", func(p *Program) {
			p.Cores[1] = []Instr{
				{Op: LoadInput, Layer: 1, Tile: 0, Bytes: 32, BarrierID: -1},
				{Op: Compute, Layer: 1, Tile: 0, MACs: 50, Deps: []Ref{{1, 0}}, BarrierID: -1},
			}
		}, "barrier"},
		{"wrong core count", func(p *Program) {
			p.Cores = p.Cores[:1]
		}, "streams"},
	}
	for _, c := range cases {
		p := tinyProgram()
		c.mutate(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q missing %q", c.name, err, c.want)
		}
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	p := tinyProgram()
	// compute depends on store which depends on compute.
	p.Cores[0][1].Deps = append(p.Cores[0][1].Deps, Ref{0, 2})
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("cycle not detected: %v", err)
	}
}

func TestEngineMapping(t *testing.T) {
	cases := []struct {
		op     OpCode
		engine Engine
	}{
		{LoadInput, EngineLoad},
		{LoadKernel, EngineLoad},
		{LoadHalo, EngineLoad},
		{Compute, EngineCompute},
		{Store, EngineStore},
		{StoreHalo, EngineStore},
		{Barrier, EngineSync},
	}
	for _, c := range cases {
		if c.op.Engine() != c.engine {
			t.Errorf("%v.Engine() = %v, want %v", c.op, c.op.Engine(), c.engine)
		}
		if c.op.String() == "" || c.engine.String() == "" {
			t.Error("empty mnemonic")
		}
	}
}

func TestBarrierDoubleRegistration(t *testing.T) {
	p := tinyProgram()
	// Same barrier twice on one core.
	p.Cores[0] = append(p.Cores[0], Instr{Op: Barrier, Layer: 1, Tile: -1, BarrierID: 0})
	if err := p.Validate(); err == nil {
		t.Error("double barrier accepted")
	}
}

package sim_test

import (
	. "repro/internal/sim"

	"reflect"
	"testing"

	"repro/internal/plan"
)

// recordingHook is a minimal Hook for tests (package metrics has the
// real collector; sim must not import it).
type recordingHook struct {
	instrs []InstrSample
	bus    []BusSample
}

func (h *recordingHook) OnInstr(s InstrSample) { h.instrs = append(h.instrs, s) }
func (h *recordingHook) OnBus(s BusSample)     { h.bus = append(h.bus, s) }

// TestHookObserverIsPure holds the hook to its contract: attaching one
// changes nothing about the run's outcome, on every model and fault
// plan of the equivalence matrix.
func TestHookObserverIsPure(t *testing.T) {
	for _, cm := range allCompiledModels(t) {
		base, err := Run(cm.prog, Config{})
		if err != nil {
			t.Fatalf("%s: %v", cm.name, err)
		}
		for _, fp := range equivalencePlans(base.Stats.TotalCycles) {
			t.Run(cm.name+"/"+fp.name, func(t *testing.T) {
				plain, plainErr := Run(cm.prog, Config{CollectTrace: true, Faults: fp.plan})
				hook := &recordingHook{}
				hooked, hookedErr := Run(cm.prog, Config{CollectTrace: true, Faults: fp.plan, Hook: hook})
				switch {
				case plainErr == nil && hookedErr == nil:
					if !reflect.DeepEqual(plain, hooked) {
						t.Fatal("hooked run result differs from plain run")
					}
				case plainErr != nil && hookedErr != nil:
					if !reflect.DeepEqual(plainErr, hookedErr) {
						t.Fatalf("hooked failure %v differs from plain failure %v", hookedErr, plainErr)
					}
				default:
					t.Fatalf("plain err %v, hooked err %v", plainErr, hookedErr)
				}
				if plainErr != nil {
					return
				}
				// Exactly one sample per instruction, in trace order with
				// matching fields.
				if len(hook.instrs) != len(hooked.Trace) {
					t.Fatalf("%d instruction samples for %d trace events", len(hook.instrs), len(hooked.Trace))
				}
				for i, s := range hook.instrs {
					ev := hooked.Trace[i]
					if s.Core != ev.Core || s.Index != ev.Index || s.Op != ev.Op ||
						s.Start != ev.Start || s.End != ev.End || s.Retries != ev.Retries {
						t.Fatalf("sample %d = %+v does not match trace event %+v", i, s, ev)
					}
				}
				// The bus series is closed: non-decreasing timestamps, final
				// sample empty at the run's end.
				if len(hook.bus) == 0 {
					t.Fatal("no bus samples")
				}
				for i := 1; i < len(hook.bus); i++ {
					if hook.bus[i].At < hook.bus[i-1].At {
						t.Fatalf("bus sample %d at %f before %f", i, hook.bus[i].At, hook.bus[i-1].At)
					}
				}
				last := hook.bus[len(hook.bus)-1]
				if last.At != hooked.Stats.TotalCycles || last.Channels != 0 || last.Granted != 0 {
					t.Fatalf("series not closed: last sample %+v, total %f", last, hooked.Stats.TotalCycles)
				}
			})
		}
	}
}

// TestHookSampleTotals cross-foots the samples against the engine's
// own stats: re-accumulating the raw per-engine sums in sample order
// reproduces CoreStats bit-for-bit (same values, same order, no
// tolerance).
func TestHookSampleTotals(t *testing.T) {
	for _, cm := range allCompiledModels(t) {
		hook := &recordingHook{}
		out, err := Run(cm.prog, Config{Hook: hook})
		if err != nil {
			t.Fatalf("%s: %v", cm.name, err)
		}
		acc := make([]CoreStats, len(out.Stats.PerCore))
		for _, s := range hook.instrs {
			st := &acc[s.Core]
			dur := s.End - s.Start
			switch s.Op.Engine() {
			case plan.EngineCompute:
				st.ComputeBusy += dur
				st.MACs += s.MACs
			case plan.EngineLoad:
				st.LoadBusy += dur
				st.BytesLoaded += s.Bytes
			case plan.EngineStore:
				st.StoreBusy += dur
				st.BytesStored += s.Bytes
			case plan.EngineSync:
				st.SyncWait += dur
			}
			st.Retries += s.Retries
			if s.End > st.Finish {
				st.Finish = s.End
			}
		}
		for c, st := range out.Stats.PerCore {
			got := acc[c]
			if got.ComputeBusy != st.ComputeBusy || got.LoadBusy != st.LoadBusy ||
				got.StoreBusy != st.StoreBusy || got.SyncWait != st.SyncWait ||
				got.BytesLoaded != st.BytesLoaded || got.BytesStored != st.BytesStored ||
				got.MACs != st.MACs || got.Retries != st.Retries || got.Finish != st.Finish {
				t.Fatalf("%s core %d: sample accumulation %+v != engine stats %+v", cm.name, c, got, st)
			}
		}
	}
}

// TestNilHookCheapPath pins the nil-hook cost story: a steady-state
// run allocates orders of magnitude below the pre-pooling engine
// (15k-33k allocs per run). The exact count (5, see BENCH_sim.json)
// is asserted by BenchmarkSimulate; AllocsPerRun can see a few extra
// when GC empties the machine pool mid-measurement, so this test only
// bounds the order of magnitude.
func TestNilHookCheapPath(t *testing.T) {
	cm := allCompiledModels(t)[0]
	if _, err := Run(cm.prog, Config{}); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, err := Run(cm.prog, Config{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 100 {
		t.Fatalf("nil-hook run averaged %.0f allocs; pooled path should stay far below 100", avg)
	}
}

package sim_test

import (
	. "repro/internal/sim"

	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
)

// strataOrder flattens a program's strata into the execution order the
// checkpoint rule cuts prefixes of.
func strataOrder(strata [][]graph.LayerID) []graph.LayerID {
	var order []graph.LayerID
	for _, s := range strata {
		order = append(order, s...)
	}
	return order
}

// CutAtCycle must reproduce the engine's own kill checkpoint: cutting a
// fault-free trace at cycle T yields the same Completed set a core
// death at T reports. This is what lets the tenancy scheduler preempt
// at stratum boundaries without a fault plan.
func TestCutAtCycleMatchesKillCheckpoint(t *testing.T) {
	g := convNet(6)
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Base())
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Run(res.Program, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	allCores := []int{0, 1, 2}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		cut := clean.Stats.TotalCycles * frac
		_, err := Run(res.Program, Config{Faults: &fault.Plan{
			Deaths: []fault.Death{{Core: 1, AtCycle: cut}},
		}})
		var cf *CoreFailure
		if !errors.As(err, &cf) {
			t.Fatalf("cut %.2f: expected *CoreFailure, got %v", frac, err)
		}
		got := CutAtCycle(res.Program, allCores, clean.Trace, cut)
		if !reflect.DeepEqual(got, cf.Completed) {
			t.Errorf("cut %.2f: CutAtCycle = %v, kill checkpoint = %v", frac, got, cf.Completed)
		}
	}
}

func TestCutAtCycleBoundsAndMonotonic(t *testing.T) {
	g := convNet(5)
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Base())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	allCores := []int{0, 1, 2}
	order := strataOrder(res.Program.Strata)

	if got := CutAtCycle(res.Program, allCores, out.Trace, 0); len(got) != 0 {
		t.Errorf("cut at 0 checkpointed %v", got)
	}
	full := CutAtCycle(res.Program, allCores, out.Trace, out.Stats.TotalCycles)
	if !reflect.DeepEqual(full, order) {
		t.Errorf("cut at completion = %v, want full order %v", full, order)
	}

	prev := 0
	for f := 0.0; f <= 1.0; f += 0.05 {
		got := CutAtCycle(res.Program, allCores, out.Trace, out.Stats.TotalCycles*f)
		if len(got) < prev {
			t.Fatalf("checkpoint shrank at f=%.2f: %d -> %d layers", f, prev, len(got))
		}
		prev = len(got)
		for i, id := range got {
			if order[i] != id {
				t.Fatalf("f=%.2f: checkpoint[%d]=%d not a prefix of execution order", f, i, id)
			}
		}
	}
}

// In a concurrent run each placement's cut must count only its own
// cores' events: placement programs index layers in their own graphs,
// and cross-placement traffic would corrupt the counts.
func TestCutAtCycleFiltersByPlacementCores(t *testing.T) {
	gBig := convNet(6)
	gSmall := convNet(2)
	a := arch.Exynos2100Like()
	resBig, err := core.Compile(gBig, mustSubset(t, a, []int{0, 1}), core.Base())
	if err != nil {
		t.Fatal(err)
	}
	resSmall, err := core.Compile(gSmall, mustSubset(t, a, []int{2}), core.Base())
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunConcurrent(a, []Placement{
		{Program: resBig.Program, Cores: []int{0, 1}},
		{Program: resSmall.Program, Cores: []int{2}},
	}, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	end := out.Stats.TotalCycles
	if got, want := CutAtCycle(resBig.Program, []int{0, 1}, out.Trace, end), strataOrder(resBig.Program.Strata); !reflect.DeepEqual(got, want) {
		t.Errorf("big placement full cut = %v, want %v", got, want)
	}
	if got, want := CutAtCycle(resSmall.Program, []int{2}, out.Trace, end), strataOrder(resSmall.Program.Strata); !reflect.DeepEqual(got, want) {
		t.Errorf("small placement full cut = %v, want %v", got, want)
	}
	// Cut the big placement mid-run: still a strict prefix of its own
	// order even though core 2's (small-placement) events share the trace.
	mid := CutAtCycle(resBig.Program, []int{0, 1}, out.Trace, end/2)
	order := strataOrder(resBig.Program.Strata)
	for i, id := range mid {
		if order[i] != id {
			t.Fatalf("mid cut[%d]=%d not a prefix of the big placement's order", i, id)
		}
	}
}

func mustSubset(t *testing.T, a *arch.Arch, cores []int) *arch.Arch {
	t.Helper()
	sub, err := a.Subset(cores)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

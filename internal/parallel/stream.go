package parallel

import (
	"context"
	"sync"
)

// Stream runs an unbounded work stream through the worker pool: the
// producer emits values into a bounded channel and Workers() consumers
// drain it concurrently. It is the streaming sibling of ForEach for
// work whose size is not known up front — a load generator's request
// stream, a service's admission feed — where ForEach's fixed-n shape
// does not fit. buffer bounds the number of emitted-but-unconsumed
// items (<= 0 uses 2×Workers()), so a slow consumer backpressures the
// producer instead of ballooning memory.
//
// produce runs on the calling goroutine and pushes values with emit;
// emit returns false once the stream is shutting down (a consumer
// failed, or ctx was canceled), at which point the producer should
// return promptly. consume runs on pool goroutines and receives the
// worker's index in [0, Workers()), so per-worker state — shard
// histograms, RNGs, HTTP clients — needs no locking.
//
// Error contract: a stream has no index space, so unlike ForEach there
// is no serial-equivalent "lowest failing index". The first consumer
// error to be observed wins and shuts the stream down; items already
// emitted but not yet consumed are dropped. Precedence of the returned
// error: a re-raised panic (producer's or any consumer's), then the
// first consumer error, then produce's own error, then ctx.Err(). A
// nil ctx disables cancellation, like ForEachCtx.
func Stream[T any](ctx context.Context, buffer int, produce func(emit func(T) bool) error, consume func(worker int, v T) error) error {
	w := Workers()
	if buffer <= 0 {
		buffer = 2 * w
	}
	ch := make(chan T, buffer)
	done := make(chan struct{})
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}

	var (
		mu        sync.Mutex
		firstErr  error
		panicked  any
		hasPanic  bool
		closeOnce sync.Once
	)
	fail := func(err error, p any, isPanic bool) {
		mu.Lock()
		if firstErr == nil && !hasPanic {
			firstErr, panicked, hasPanic = err, p, isPanic
		}
		mu.Unlock()
		closeOnce.Do(func() { close(done) })
	}

	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func(worker int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(nil, r, true)
				}
			}()
			for {
				select {
				case <-done:
					return
				case <-ctxDone:
					return
				case v, ok := <-ch:
					if !ok {
						return
					}
					if err := consume(worker, v); err != nil {
						fail(err, nil, false)
						return
					}
				}
			}
		}(g)
	}

	emit := func(v T) bool {
		select {
		case ch <- v:
			return true
		case <-done:
			return false
		case <-ctxDone:
			return false
		}
	}
	prodErr := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				fail(nil, r, true)
			}
		}()
		return produce(emit)
	}()
	close(ch)
	wg.Wait()

	mu.Lock()
	err, p, isPanic := firstErr, panicked, hasPanic
	mu.Unlock()
	if isPanic {
		panic(p)
	}
	if err != nil {
		return err
	}
	if prodErr != nil {
		return prodErr
	}
	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return nil
}

package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers runs f under a fixed pool size and restores the default.
func withWorkers(t *testing.T, n int, f func()) {
	t.Helper()
	prev := SetWorkers(n)
	defer SetWorkers(prev)
	f()
}

func TestWorkersDefaultTracksGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("Workers() = %d, want %d", got, want)
	}
	if SetWorkers(3); Workers() != 3 {
		t.Errorf("Workers() = %d after SetWorkers(3)", Workers())
	}
	if SetWorkers(-5); Workers() != runtime.GOMAXPROCS(0) {
		t.Errorf("negative SetWorkers should restore the default")
	}
	SetWorkers(0)
}

func TestMapOrdered(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		withWorkers(t, w, func() {
			got, err := Map(100, func(i int) (int, error) { return i * i, nil })
			if err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			for i, v := range got {
				if v != i*i {
					t.Fatalf("workers=%d: got[%d] = %d", w, i, v)
				}
			}
		})
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestLowestIndexErrorWins(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			err := ForEach(64, func(i int) error {
				if i >= 7 {
					return fmt.Errorf("fail at %d", i)
				}
				return nil
			})
			if err == nil || err.Error() != "fail at 7" {
				t.Errorf("workers=%d: err = %v, want fail at 7", w, err)
			}
		})
	}
}

func TestPanicPropagatesToCaller(t *testing.T) {
	for _, w := range []int{1, 4} {
		withWorkers(t, w, func() {
			defer func() {
				r := recover()
				if r != "boom 3" {
					t.Errorf("workers=%d: recovered %v, want boom 3", w, r)
				}
			}()
			ForEach(32, func(i int) error {
				if i >= 3 {
					panic(fmt.Sprintf("boom %d", i))
				}
				return nil
			})
			t.Errorf("workers=%d: ForEach returned instead of panicking", w)
		})
	}
}

func TestEveryIndexRunsExactlyOnce(t *testing.T) {
	withWorkers(t, 8, func() {
		const n = 5000
		var counts [n]atomic.Int32
		if err := ForEach(n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("index %d ran %d times", i, c)
			}
		}
	})
}

// TestStress hammers the pool from many shapes and nesting depths at
// once; under -race this is the data-race check for the engine.
func TestStress(t *testing.T) {
	withWorkers(t, 8, func() {
		var total atomic.Int64
		err := ForEach(50, func(i int) error {
			// Nested fan-out: the kernels shard inside experiment sweeps.
			sub, err := Map(20, func(j int) (int64, error) {
				if (i+j)%97 == 13 {
					return 0, errors.New("planned")
				}
				return int64(i*j + 1), nil
			})
			if err != nil {
				return nil // planned errors are part of the stress
			}
			for _, v := range sub {
				total.Add(v)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() == 0 {
			t.Error("no work observed")
		}
	})
}

func TestSerialReporting(t *testing.T) {
	withWorkers(t, 1, func() {
		if !Serial() {
			t.Error("Serial() = false with 1 worker")
		}
	})
	withWorkers(t, 4, func() {
		if Serial() {
			t.Error("Serial() = true with 4 workers")
		}
	})
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// TinyCNN builds a small classifier used by examples and tests:
// two conv/pool stages, a depthwise-separable residual block, and a
// classifier head. It compiles and simulates in milliseconds.
func TinyCNN() *graph.Graph {
	b := newBuilder("TinyCNN", tensor.Int8)
	in := b.input(tensor.NewShape(64, 64, 3))
	x := b.conv("conv1", in, 3, 2, 16)
	x = b.conv("conv2", x, 3, 1, 32)
	x = b.maxpool("pool1", x, 2, 2)
	res := x
	x = b.dwconv("dw1", x, 3, 1)
	x = b.convLinear("pw1", x, 1, 1, 32)
	x = b.add("add1", res, x)
	x = b.maxpool("pool2", x, 2, 2)
	b.classifierHead(x, 10)
	return b.g
}

// ConvChain builds a chain of depth SAME 3x3 convolutions over an
// hxwxc input — the canonical stratum-construction workload.
func ConvChain(depth, h, w, c int) *graph.Graph {
	b := newBuilder(fmt.Sprintf("ConvChain%d", depth), tensor.Int8)
	x := b.input(tensor.NewShape(h, w, c))
	for i := 0; i < depth; i++ {
		x = b.g.MustAdd(fmt.Sprintf("conv%d", i),
			ops.NewConv2D(3, 3, 1, 1, c, ops.SamePad(tensor.NewShape(h, w, c), 3, 3, 1, 1, 1, 1)), x)
	}
	return b.g
}

package sim_test

import (
	. "repro/internal/sim"

	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// convNet builds a conv-heavy network large enough for parallelism to
// pay off.
func convNet(depth int) *graph.Graph {
	g := graph.New("convnet", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(96, 96, 32))
	for i := 0; i < depth; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 64, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
	}
	return g
}

func runCfg(t *testing.T, g *graph.Graph, a *arch.Arch, opt core.Options) *Result {
	t.Helper()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	out, err := Run(res.Program, Config{})
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return out
}

func TestSimulatesToCompletion(t *testing.T) {
	g := convNet(4)
	out := runCfg(t, g, arch.Exynos2100Like(), core.Base())
	if out.Stats.TotalCycles <= 0 {
		t.Fatal("zero latency")
	}
	for c, cs := range out.Stats.PerCore {
		if cs.ComputeBusy <= 0 {
			t.Errorf("core %d never computed", c)
		}
		if cs.Finish > out.Stats.TotalCycles+1 {
			t.Errorf("core %d finish %.0f beyond total %.0f", c, cs.Finish, out.Stats.TotalCycles)
		}
		if cs.ComputeBusy+cs.Idle > out.Stats.TotalCycles+1 {
			t.Errorf("core %d busy+idle %.0f exceeds total %.0f", c, cs.ComputeBusy+cs.Idle, out.Stats.TotalCycles)
		}
	}
}

func TestMulticoreBeatsSingleCore(t *testing.T) {
	g := convNet(6)
	multi := runCfg(t, g, arch.Exynos2100Like(), core.Base())
	single := runCfg(t, g, arch.SingleCore(), core.Base())
	speedup := single.Stats.TotalCycles / multi.Stats.TotalCycles
	if speedup < 1.3 {
		t.Errorf("3-core speedup = %.2fx, want > 1.3x", speedup)
	}
	if speedup > 3.0 {
		t.Errorf("3-core speedup = %.2fx exceeds core count", speedup)
	}
}

func TestOptimizationsImproveLatency(t *testing.T) {
	g := convNet(8)
	a := arch.Exynos2100Like()
	base := runCfg(t, g, a, core.Base())
	halo := runCfg(t, g, a, core.Halo())
	strat := runCfg(t, g, a, core.Stratum())
	if halo.Stats.TotalCycles >= base.Stats.TotalCycles {
		t.Errorf("+Halo %.0f >= Base %.0f", halo.Stats.TotalCycles, base.Stats.TotalCycles)
	}
	// On a compute-bound chain the halo exchange hides completely, so
	// stratum's redundant compute makes it at best comparable (the
	// paper's Table 5 shows the same near-tie: 387 vs 386 us).
	if strat.Stats.TotalCycles > 1.02*halo.Stats.TotalCycles {
		t.Errorf("+Stratum %.0f much worse than +Halo %.0f on a compute-bound chain",
			strat.Stats.TotalCycles, halo.Stats.TotalCycles)
	}
	var baseSync float64
	for c := range base.Stats.PerCore {
		baseSync += base.Stats.PerCore[c].SyncWait
	}
	if baseSync <= 0 {
		t.Error("Base shows no sync overhead")
	}
}

func TestStratumWinsWhenSyncBound(t *testing.T) {
	// Shallow channels: per-layer compute is small, so the implicit
	// rendezvous of halo-exchange is exposed at every boundary. The
	// layers fit SPM (128x128x8 = 128 KB), so strata form and remove
	// the synchronization entirely — stratum must win here.
	g := graph.New("syncbound", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(128, 128, 8))
	for i := 0; i < 6; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
	}
	a := arch.Exynos2100Like()
	haloRes, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	stratRes, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if stratRes.Program.NumBarriers >= haloRes.Program.NumBarriers {
		t.Errorf("stratum barriers %d >= halo %d", stratRes.Program.NumBarriers, haloRes.Program.NumBarriers)
	}
	halo, err := Run(haloRes.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	strat, err := Run(stratRes.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if strat.Stats.TotalCycles >= halo.Stats.TotalCycles {
		t.Errorf("+Stratum %.0f >= +Halo %.0f on a sync-bound chain",
			strat.Stats.TotalCycles, halo.Stats.TotalCycles)
	}
}

func TestTraceCollection(t *testing.T) {
	g := convNet(2)
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trace) != res.Program.NumInstrs() {
		t.Errorf("trace has %d events, program has %d instrs", len(out.Trace), res.Program.NumInstrs())
	}
	for _, ev := range out.Trace {
		if ev.End < ev.Start {
			t.Errorf("event %q ends before it starts", ev.Note)
		}
	}
}

func TestTraceRespectsDependencies(t *testing.T) {
	g := convNet(3)
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Base())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild completion times per instruction and check all deps
	// finished before each start.
	end := make(map[[2]int]float64)
	start := make(map[[2]int]float64)
	for _, ev := range out.Trace {
		// Identify the instruction by core + scan order; trace events
		// are unique per instruction, so match by core and note+times.
		_ = ev
	}
	// Simpler: re-run and match sequentially per core by instruction
	// order using the engine-queue invariant: events per (core, note)
	// are unique in this program.
	type key struct {
		core int
		note string
	}
	seen := map[key]Event{}
	for _, ev := range out.Trace {
		seen[key{ev.Core, ev.Note}] = ev
	}
	for c, stream := range res.Program.Cores {
		for i, in := range stream {
			ev, ok := seen[key{c, in.Note}]
			if !ok {
				t.Fatalf("no trace event for core %d instr %d (%s)", c, i, in.Note)
			}
			start[[2]int{c, i}] = ev.Start
			end[[2]int{c, i}] = ev.End
		}
	}
	for c, stream := range res.Program.Cores {
		for i, in := range stream {
			for _, d := range in.Deps {
				if end[[2]int{d.Core, d.Index}] > start[[2]int{c, i}]+1e-6 {
					t.Errorf("core %d instr %d (%s) started before dep %v finished", c, i, in.Note, d)
				}
			}
		}
	}
}

func TestBusContentionSlowsTransfers(t *testing.T) {
	// Narrow the bus far below the sum of core DMA rates: traffic-heavy
	// programs must slow down.
	g := convNet(4)
	wide := arch.Exynos2100Like()
	wide.BusBytesPerCycle = 1e9
	narrow := arch.Exynos2100Like()
	narrow.BusBytesPerCycle = 4
	fast := runCfg(t, g, wide, core.Base())
	slow := runCfg(t, g, narrow, core.Base())
	if slow.Stats.TotalCycles <= fast.Stats.TotalCycles {
		t.Errorf("narrow bus %.0f <= wide bus %.0f", slow.Stats.TotalCycles, fast.Stats.TotalCycles)
	}
}

func TestSyncCostVisible(t *testing.T) {
	// Raising the barrier cost must increase Base latency.
	g := convNet(4)
	cheap := arch.Exynos2100Like()
	cheap.SyncBaseCycles = 10
	costly := arch.Exynos2100Like()
	costly.SyncBaseCycles = 100000
	fast := runCfg(t, g, cheap, core.Base())
	slow := runCfg(t, g, costly, core.Base())
	if slow.Stats.TotalCycles <= fast.Stats.TotalCycles {
		t.Errorf("costly sync %.0f <= cheap sync %.0f", slow.Stats.TotalCycles, fast.Stats.TotalCycles)
	}
}

func TestStatsAccounting(t *testing.T) {
	g := convNet(3)
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Base())
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(res.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for c := range res.Program.Cores {
		if out.Stats.PerCore[c].MACs != res.Program.TotalMACs(c) {
			t.Errorf("core %d MACs %d != program %d", c, out.Stats.PerCore[c].MACs, res.Program.TotalMACs(c))
		}
		got := out.Stats.PerCore[c].BytesLoaded + out.Stats.PerCore[c].BytesStored
		if got != res.Program.TotalBytes(c) {
			t.Errorf("core %d bytes %d != program %d", c, got, res.Program.TotalBytes(c))
		}
	}
	us := out.Stats.LatencyMicros(res.Program.Arch.ClockMHz)
	if us <= 0 {
		t.Error("non-positive latency in microseconds")
	}
	if out.Stats.TotalMACs() <= 0 || out.Stats.TotalBytes() <= 0 {
		t.Error("aggregate totals not positive")
	}
}

func TestEmptyProgram(t *testing.T) {
	a := arch.SingleCore()
	p := &plan.Program{Arch: a, Cores: make([][]plan.Instr, 1)}
	out, err := Run(p, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.TotalCycles != 0 {
		t.Errorf("empty program latency %.0f", out.Stats.TotalCycles)
	}
}

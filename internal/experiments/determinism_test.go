package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
)

// runBoth evaluates fn once serially and once with a worker pool, each
// from a cold compile cache so the parallel run really exercises
// concurrent compilation rather than replaying cached results.
func runBoth[T any](t *testing.T, fn func() (T, error)) (serial, par T) {
	t.Helper()
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	core.ResetCache()
	serial, err := fn()
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(8)
	core.ResetCache()
	par, err = fn()
	if err != nil {
		t.Fatal(err)
	}
	return serial, par
}

// TestFig11SerialParallelIdentical asserts the headline sweep is
// bit-identical regardless of worker count.
func TestFig11SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep in -short mode")
	}
	serial, par := runBoth(t, Fig11)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Fig11 rows differ:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

func TestTable4SerialParallelIdentical(t *testing.T) {
	serial, par := runBoth(t, Table4)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Table4 rows differ:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

func TestTable5SerialParallelIdentical(t *testing.T) {
	serial, par := runBoth(t, Table5)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("Table5 rows differ:\nserial:   %+v\nparallel: %+v", serial, par)
	}
}

// TestFig12SerialParallelIdentical covers the trace-carrying variant
// structs: event streams must match element for element.
func TestFig12SerialParallelIdentical(t *testing.T) {
	serial, par := runBoth(t, Fig12)
	if !reflect.DeepEqual(serial, par) {
		t.Error("Fig12 variants differ between serial and parallel runs")
	}
}

// TestSweepsSerialParallelIdentical spot-checks the flattened-grid
// fan-outs: a sync sweep (per-point arch mutation) and a death sweep
// (fault plan + recovery per point).
func TestSweepsSerialParallelIdentical(t *testing.T) {
	serialSync, parSync := runBoth(t, func() ([]AblationPoint, error) {
		return SyncCostSweep("MobileNetV2")
	})
	if !reflect.DeepEqual(serialSync, parSync) {
		t.Errorf("SyncCostSweep differs:\nserial:   %+v\nparallel: %+v", serialSync, parSync)
	}

	chain := models.ConvChain(6, 64, 64, 16)
	serialDeath, parDeath := runBoth(t, func() ([]DeathRow, error) {
		return DeathSweep(chain)
	})
	if !reflect.DeepEqual(serialDeath, parDeath) {
		t.Errorf("DeathSweep differs:\nserial:   %+v\nparallel: %+v", serialDeath, parDeath)
	}
}

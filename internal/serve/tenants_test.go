package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/tenancy"
)

func postTenants(t *testing.T, srv *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+"/tenants", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestTenantsEndpoint(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()

	resp := postTenants(t, srv,
		`{"Spec":"cam=ShuffleNetV2:prio=2:slo=4000,kbd=TinyCNN:slo=600","HorizonUS":4000}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var rep tenancy.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("got %d tenant rows", len(rep.Tenants))
	}
	for _, tr := range rep.Tenants {
		if tr.Inferences == 0 {
			t.Errorf("tenant %s served nothing", tr.Name)
		}
		if tr.SLOHitPct < 0 || tr.SLOHitPct > 100 {
			t.Errorf("tenant %s: hit rate %.1f out of range", tr.Name, tr.SLOHitPct)
		}
	}
}

// The same request body must return the same report bytes: the tenancy
// report has no wall-clock fields.
func TestTenantsEndpointDeterministic(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()

	body := `{"Spec":"a=TinyCNN:slo=500,b=TinyCNN","HorizonUS":2000}`
	read := func() []byte {
		resp := postTenants(t, srv, body)
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(read(), read()) {
		t.Error("same request produced different report bytes")
	}
}

func TestTenantsEndpointErrors(t *testing.T) {
	srv := httptest.NewServer(New(Options{}).Handler())
	defer srv.Close()

	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"Spec":""}`, http.StatusBadRequest},              // empty spec
		{`{"Spec":"x=NoSuchModel"}`, http.StatusBadRequest}, // unknown model
		{`{"Spec":"x=TinyCNN","TimeoutMS":-1}`, http.StatusBadRequest},
		{`{"Spec":"x=TinyCNN","Wat":1}`, http.StatusBadRequest}, // unknown field
		{`{"Spec":"x=TinyCNN","Config":"nope"}`, http.StatusBadRequest},
	} {
		resp := postTenants(t, srv, tc.body)
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decode error body: %v", tc.body, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.body, resp.StatusCode, tc.code, e.Error)
		}
		if e.Kind != "bad_request" {
			t.Errorf("%s: kind %q", tc.body, e.Kind)
		}
	}

	getResp, err := http.Get(srv.URL + "/tenants")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /tenants: status %d", getResp.StatusCode)
	}
}

package stratum

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// convChain builds n stacked 3x3 SAME convolutions over a 64x64x32
// input — ideal stratum material.
func convChain(n int) *graph.Graph {
	g := graph.New("chain", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(64, 64, 32))
	for i := 0; i < n; i++ {
		prev = g.MustAdd(
			"conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 32, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}),
			prev)
	}
	return g
}

func build(t *testing.T, g *graph.Graph, a *arch.Arch) (*Builder, []Stratum) {
	t.Helper()
	p := partition.New(g, a)
	plans := p.PlanAll()
	pred := func(l *graph.Layer) bool {
		d, _ := p.ChooseDirection(l)
		return d.Spatial()
	}
	order := schedule.New(g, pred).Order()
	b := New(g, a, plans, order)
	strata := b.Build()
	if err := b.Validate(strata); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return b, strata
}

func TestConvChainMerges(t *testing.T) {
	g := convChain(4)
	_, strata := build(t, g, arch.Exynos2100Like())
	// Four cheap stacked convs should merge into one stratum.
	if len(strata) != 1 {
		t.Fatalf("strata = %d, want 1 (got %v)", len(strata), strataSizes(strata))
	}
	s := strata[0]
	if s.Len() != 4 {
		t.Errorf("stratum size = %d", s.Len())
	}
	if s.RedundantMACs <= 0 {
		t.Error("merged stratum must record redundant compute")
	}
}

func TestHaloGrowsTowardTop(t *testing.T) {
	g := convChain(3)
	_, strata := build(t, g, arch.Exynos2100Like())
	if len(strata) != 1 {
		t.Fatalf("strata = %v", strataSizes(strata))
	}
	s := strata[0]
	// The middle core's expanded region must grow monotonically toward
	// the top layer: top layer carries the most redundancy.
	core := 1
	var prevRows int
	for i := len(s.Layers) - 1; i >= 0; i-- {
		rows := s.Expanded[s.Layers[i]][core].Ext.H
		if i < len(s.Layers)-1 && rows < prevRows {
			t.Errorf("layer %d rows %d < successor %d: halo must grow upward", i, rows, prevRows)
		}
		prevRows = rows
	}
	bottom := s.Expanded[s.Layers[len(s.Layers)-1]][core]
	top := s.Expanded[s.Layers[0]][core]
	if top.Ext.H <= bottom.Ext.H {
		t.Errorf("top rows %d <= bottom rows %d", top.Ext.H, bottom.Ext.H)
	}
}

func TestChannelLayerBreaksStratum(t *testing.T) {
	// conv -> depthwise(channel partitioned) -> conv: the channel
	// layer violates h7 and must split the chain.
	g := graph.New("mix", tensor.Int8)
	in := g.Input("input", tensor.NewShape(64, 64, 96))
	c1 := g.MustAdd("c1", ops.NewConv2D(3, 3, 1, 1, 96,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	dw := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c1)
	g.MustAdd("c2", ops.NewConv2D(3, 3, 1, 1, 96,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), dw)

	b, strata := build(t, g, arch.Exynos2100Like())
	if b.Plans[dw].Direction != partition.DirChannel {
		t.Skip("depthwise not channel partitioned under current heuristics")
	}
	for _, s := range strata {
		for i, id := range s.Layers {
			if id == dw && s.Len() > 1 && i != 0 {
				t.Errorf("channel-partitioned layer merged below a stratum top: %v", strataSizes(strata))
			}
		}
	}
	if len(strata) < 2 {
		t.Errorf("expected chain broken into >= 2 strata, got %v", strataSizes(strata))
	}
}

func TestBranchBreaksStratum(t *testing.T) {
	// A layer with two users cannot merge (h6).
	g := graph.New("branch", tensor.Int8)
	in := g.Input("input", tensor.NewShape(32, 32, 16))
	a := g.MustAdd("a", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	b1 := g.MustAdd("b1", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), a)
	c1 := g.MustAdd("c1", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), a)
	g.MustAdd("add", ops.Add{Arity: 2}, b1, c1)

	_, strata := build(t, g, arch.Exynos2100Like())
	for _, s := range strata {
		for _, id := range s.Layers[:s.Len()-1] {
			if id == a {
				t.Error("multi-user layer a merged into a stratum above another layer")
			}
		}
	}
}

func TestSingleCoreNoMerge(t *testing.T) {
	// With one core there is no synchronization to save; h8's
	// sync_cost is 0, so no merge should happen.
	g := convChain(3)
	_, strata := build(t, g, arch.SingleCore())
	for _, s := range strata {
		if !s.Singleton() {
			t.Errorf("single-core stratum of %d layers; syncs are free, redundancy is not", s.Len())
		}
	}
}

func TestSPMNeedAndTrim(t *testing.T) {
	g := convChain(4)
	b, strata := build(t, g, arch.Exynos2100Like())
	if len(strata) != 1 {
		t.Fatalf("strata = %v", strataSizes(strata))
	}
	s := strata[0]
	need := b.SPMNeed(&s, 0)
	if need <= 0 {
		t.Fatal("SPMNeed must be positive")
	}
	// With ample SPM nothing is trimmed.
	out := b.TrimToFit(&s)
	if len(out) != 1 || out[0].Len() != s.Len() {
		t.Errorf("TrimToFit with ample SPM changed the stratum: %v", strataSizes(out))
	}
	// Shrink SPM below the requirement: top layers must split off.
	tiny := arch.Exynos2100Like()
	for i := range tiny.Cores {
		tiny.Cores[i].SPMBytes = need / 2
	}
	b2 := New(g, tiny, b.Plans, b.Order)
	out2 := b2.TrimToFit(&s)
	if len(out2) < 2 {
		t.Errorf("TrimToFit with tiny SPM did not trim: %v", strataSizes(out2))
	}
	total := 0
	for _, st := range out2 {
		total += st.Len()
	}
	if total != s.Len() {
		t.Errorf("TrimToFit lost layers: %d != %d", total, s.Len())
	}
	if err := b2.Validate(out2); err != nil {
		t.Errorf("trimmed strata invalid: %v", err)
	}
}

func TestExpensiveRedundancyStopsAccumulation(t *testing.T) {
	// Huge 7x7 convs with a massive channel count make per-layer halo
	// recompute much more expensive than one barrier.
	g := graph.New("fat", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(36, 36, 512))
	for i := 0; i < 3; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(7, 7, 1, 1, 512, ops.Padding{Top: 3, Bottom: 3, Left: 3, Right: 3}),
			prev)
	}
	_, strata := build(t, g, arch.Exynos2100Like())
	for _, s := range strata {
		if s.Len() > 1 {
			t.Errorf("expensive layers merged (%v); h8 should refuse", strataSizes(strata))
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := convChain(3)
	b, strata := build(t, g, arch.Exynos2100Like())
	// Drop a layer.
	bad := []Stratum{{
		Layers:   strata[0].Layers[:1],
		Expanded: strata[0].Expanded,
	}}
	if err := b.Validate(bad); err == nil {
		t.Error("missing layers not caught")
	}
	// Empty stratum.
	if err := b.Validate([]Stratum{{}}); err == nil {
		t.Error("empty stratum not caught")
	}
}

func strataSizes(strata []Stratum) []int {
	sizes := make([]int, len(strata))
	for i, s := range strata {
		sizes[i] = s.Len()
	}
	return sizes
}

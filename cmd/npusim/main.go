// Command npusim compiles and simulates a benchmark network on the
// multicore-NPU model, printing latency and per-core utilization, and
// optionally writing a Chrome trace or a text Gantt chart. With
// -serve it runs instead as a long-lived HTTP service with deadlines,
// backpressure, and graceful shutdown.
//
// Usage:
//
//	npusim -model InceptionV3 -cores 3 -config stratum
//	npusim -model MobileNetV2 -gantt 120
//	npusim -model UNet -trace unet.json   # open in chrome://tracing
//	npusim -model TinyCNN -faults "drop=0.02,kill=2@400000" -fault-seed 7
//	npusim -model MobileNetV2 -dse -dse-seed 7   # search schedules beyond h1-h8
//	npusim -serve :8080                   # POST /run /tenants, GET /healthz /readyz /stats
//	npusim -tenants "cam=MobileNetV2:prio=2:slo=9000,kbd=TinyCNN:slo=600"
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/plan"
	"repro/internal/recovery"
	"repro/internal/report"
	"repro/internal/serialize"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/stats"
	"repro/internal/tenancy"
	"repro/internal/trace"
)

// runSim is the selected simulator engine (-engine flag). Recovery
// re-simulation always uses the production engine; the two are held
// bit-identical by the sim package's equivalence tests.
var runSim = sim.Run

// noSPMCheck disables the simulator's SPM admission check
// (-strict-spm=false); both engines honor it identically.
var noSPMCheck bool

func main() {
	model := flag.String("model", "MobileNetV2", "benchmark model name")
	cores := flag.Int("cores", 3, "number of NPU cores")
	config := flag.String("config", "stratum", "optimization configuration: base, halo, stratum")
	mode := flag.String("partition", "adaptive", "partitioning policy: adaptive, spatial, channel")
	inFile := flag.String("in", "", "simulate a precompiled program (from npuc -o) instead of compiling")
	traceOut := flag.String("trace", "", "write Chrome trace JSON to this file")
	gantt := flag.Int("gantt", 0, "print a text Gantt chart this many columns wide")
	mem := flag.Bool("mem", false, "profile SPM occupancy per core")
	metricsFlag := flag.Bool("metrics", false, "print the structured utilization report (event engine only)")
	metricsOut := flag.String("metrics-out", "", "write the structured metrics report as JSON to this file (event engine only)")
	dseFlag := flag.Bool("dse", false, "run the schedule design-space explorer on the model instead of a one-shot simulation; -config is the heuristic baseline to beat")
	dseSeed := flag.Uint64("dse-seed", 1, "seed for the -dse search (same seed, same result at any -j)")
	dseRestarts := flag.Int("dse-restarts", 0, "-dse hill-climbing restarts (0 = default)")
	dseIters := flag.Int("dse-iters", 0, "-dse generations per restart (0 = default)")
	dseBeam := flag.Int("dse-beam", 0, "-dse beam width (0 = default)")
	dseNeighbors := flag.Int("dse-neighbors", 0, "-dse perturbations per beam genome per generation (0 = default)")
	faults := flag.String("faults", "", `fault spec, e.g. "drop=0.02,throttle=1@50000x0.5,kill=2@400000,hang=1@50000,flip=0.01"`)
	faultSeed := flag.Uint64("fault-seed", 0, "seed for probabilistic fault decisions")
	watchdog := flag.Float64("watchdog", 0, "fault mode: progress-watchdog heartbeat in cycles (0 = off); silent hangs become typed detections the recovery path survives")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for partition planning and reference kernels (1 forces serial)")
	engine := flag.String("engine", "event", "simulator engine: event (production) or reference (retained oracle; bit-identical, for A/B checks)")
	strictSPM := flag.Bool("strict-spm", true, "exit non-zero when simulated live SPM bytes overflow a core's capacity; =false tolerates over-budget schedules")
	tenantsSpec := flag.String("tenants", "", `multi-tenant serving mode: comma-separated tenant spec, e.g. "cam=MobileNetV2:prio=2:slo=9000,seg=DeepLabV3+:arrive=5000"`)
	tenantsHorizon := flag.Float64("tenants-horizon", 0, "tenants mode: simulated serving window in us (0 = 20000)")
	tenantsOut := flag.String("tenants-out", "", "tenants mode: write the report as JSON to this file")
	serveAddr := flag.String("serve", "", "run as an HTTP service on this address (e.g. :8080) instead of a one-shot simulation; POST /run /tenants, GET /healthz /readyz /stats")
	serveConc := flag.Int("serve-concurrency", 0, "serve mode: requests executed at once (0 = GOMAXPROCS)")
	serveQueue := flag.Int("serve-queue", 0, "serve mode: admitted requests waiting beyond the executing set; beyond this, shed with 429 (0 = 2x concurrency)")
	serveTimeout := flag.Duration("serve-timeout", 30*time.Second, "serve mode: default per-request deadline (requests may set a shorter one)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "serve mode: how long SIGTERM/SIGINT waits for in-flight requests before giving up")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), "\n"+cliutil.ExitCodeDoc)
	}
	flag.Parse()
	parallel.SetWorkers(*jobs)
	noSPMCheck = !*strictSPM

	mo := metricsOpts{print: *metricsFlag, out: *metricsOut}
	switch *engine {
	case "event":
	case "reference":
		runSim = sim.RunReference
		if mo.wanted() {
			fatal(errors.New("-metrics/-metrics-out need the event engine (the reference oracle stays unobserved)"))
		}
	default:
		fatal(fmt.Errorf("unknown engine %q (event, reference)", *engine))
	}

	if *serveAddr != "" {
		runServe(*serveAddr, serve.Options{
			Concurrency:    *serveConc,
			Queue:          *serveQueue,
			DefaultTimeout: *serveTimeout,
			Logger:         log.New(os.Stderr, "npusim: ", log.LstdFlags),
		}, *drainTimeout)
		return
	}

	if *inFile != "" {
		simulateFile(*inFile, *traceOut, *gantt, mo)
		return
	}

	m, err := models.ByName(*model)
	if err != nil {
		fatal(err)
	}
	g := m.Build()

	a, err := cliutil.Arch(*cores)
	if err != nil {
		fatal(err)
	}
	opt, err := cliutil.Config(*config)
	if err != nil {
		fatal(err)
	}
	opt.Partitioning, err = cliutil.Mode(*mode)
	if err != nil {
		fatal(err)
	}

	if *tenantsSpec != "" {
		runTenants(a, *tenantsSpec, *tenantsHorizon, *tenantsOut, opt)
		return
	}

	if *dseFlag {
		runDSE(g, a, opt, dse.Params{
			Seed:      *dseSeed,
			Restarts:  *dseRestarts,
			Iters:     *dseIters,
			Beam:      *dseBeam,
			Neighbors: *dseNeighbors,
			Sim:       sim.Config{NoSPMCheck: noSPMCheck},
		})
		return
	}

	res, err := core.Compile(g, a, opt)
	if err != nil {
		fatal(err)
	}
	if res.Fallback != core.FallbackNone {
		fmt.Printf("SPM fallback: %s (%d downgrades to fit)\n", res.Fallback, len(res.Downgrades))
	}

	if *faults != "" {
		plan, err := fault.ParseSpec(*faults, *faultSeed)
		if err != nil {
			fatal(err)
		}
		if err := plan.ValidateFor(a.NumCores()); err != nil {
			fatal(err)
		}
		runFaulted(g, a, opt, res, plan, *watchdog, mo)
		return
	}

	needTrace := *traceOut != "" || *gantt > 0 || *mem
	col := mo.collector()
	out, err := runSim(res.Program, sim.Config{CollectTrace: needTrace, Hook: col.hook(), NoSPMCheck: noSPMCheck})
	if err != nil {
		fatal(err)
	}

	clock := a.ClockMHz
	fmt.Printf("%s on %s, %s: %.1f us end-to-end\n",
		g.Name, a.Name, opt.Name(), out.Stats.LatencyMicros(clock))
	var idles, syncs []float64
	for c, cs := range out.Stats.PerCore {
		idles = append(idles, cs.Idle/float64(clock))
		syncs = append(syncs, cs.SyncWait/float64(clock))
		fmt.Printf("  %s: compute %.1fus  load %.1fus  store %.1fus  idle %.1fus  %.1fMB moved\n",
			a.Cores[c].Name,
			cs.ComputeBusy/float64(clock), cs.LoadBusy/float64(clock),
			cs.StoreBusy/float64(clock), cs.Idle/float64(clock),
			float64(cs.BytesLoaded+cs.BytesStored)/1e6)
	}
	fmt.Printf("  idle %sus, sync %sus across cores; %d barriers; %.2f GMACs executed\n",
		stats.Summarize(idles), stats.Summarize(syncs),
		out.Stats.Barriers, float64(out.Stats.TotalMACs())/1e9)

	if mo.wanted() {
		rep := buildReport(a, res.Program, &out.Stats, mo.col)
		rep.AttachCompile(res)
		rep.Model = g.Name
		rep.Config = opt.Name()
		emitMetrics(rep, mo)
	}
	if *mem {
		profiles, err := spm.Profile(res.Program, out.Trace)
		if err != nil {
			fatal(err)
		}
		fmt.Println("SPM occupancy:")
		fmt.Print(spm.Report(profiles, a.ClockMHz))
	}
	if *gantt > 0 {
		if err := trace.Gantt(os.Stdout, out.Trace, a, *gantt); err != nil {
			fatal(err)
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := trace.WriteChrome(f, out.Trace, a); err != nil {
			fatal(err)
		}
		fmt.Printf("trace written to %s (open in chrome://tracing)\n", *traceOut)
	}
}

// runTenants co-schedules a multi-tenant serving scenario over the
// platform and prints per-tenant SLO hit rates and interference. The
// report carries no wall-clock fields: the same spec writes the same
// bytes, so scripts can diff reruns.
func runTenants(a *arch.Arch, spec string, horizonUS float64, out string, opt core.Options) {
	tenants, err := tenancy.ParseSpec(spec)
	if err != nil {
		fatal(err)
	}
	rep, err := tenancy.Run(a, tenants, tenancy.Options{
		HorizonUS: horizonUS,
		Opt:       opt,
		OptSet:    true,
		Sim:       sim.Config{NoSPMCheck: noSPMCheck},
	})
	if err != nil {
		fatal(err)
	}
	rep.Print(os.Stdout)
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fatal(err)
		}
		fmt.Printf("tenancy report written to %s\n", out)
	}
}

// runDSE searches the joint schedule design space (per-layer
// partitioning method, stratum fusion boundaries, per-core weight
// scales) for a schedule faster than the heuristic baseline opt, and
// prints what it found. The winning schedule is admission-checked and
// verified bit-identical across both simulator engines by the
// explorer itself.
func runDSE(g *graph.Graph, a *arch.Arch, opt core.Options, p dse.Params) {
	t0 := time.Now()
	r, err := dse.Explore(nil, g, a, opt, p)
	if err != nil {
		fatal(err)
	}
	clock := a.ClockMHz
	fmt.Printf("%s on %s: DSE over %s baseline (seed %d)\n", g.Name, a.Name, opt.Name(), r.Seed)
	fmt.Printf("  baseline %.1f us (%.0f cycles)\n", r.BaselineCycles/float64(clock), r.BaselineCycles)
	fmt.Printf("  best     %.1f us (%.0f cycles), %.2f%% faster\n",
		r.BestCycles/float64(clock), r.BestCycles, r.ImprovementPct)
	mm, bb, ss := r.Best.Overrides()
	fmt.Printf("  genome: %d method, %d boundary, %d scale overrides; fallback %s\n",
		mm, bb, ss, r.BestFallback)
	fmt.Printf("  %d points evaluated (%d revisits deduped, %d infeasible), compile cache %d hits / %d misses\n",
		r.Points, r.Revisits, r.Infeasible, r.CacheHits, r.CacheMisses)
	fmt.Printf("  engines bit-identical on winner: %v; wall %v at -j %d\n",
		r.EngineMatch, time.Since(t0).Round(time.Millisecond), parallel.Workers())
}

// runFaulted simulates under a fault plan and, when a core dies or the
// watchdog catches a silent hang, recovers the unexecuted suffix onto
// the surviving cores. Metrics observe the first attempt: a completed
// run reports it whole; a failed one reports the partial execution up
// to the failure.
func runFaulted(g *graph.Graph, a *arch.Arch, opt core.Options, res *core.Result, plan *fault.Plan, watchdog float64, mo metricsOpts) {
	clock := a.ClockMHz
	printRetries := func(per []sim.CoreStats) {
		total := 0
		for _, cs := range per {
			total += cs.Retries
		}
		if total > 0 {
			fmt.Printf("  %d DMA transfers dropped and re-issued\n", total)
		}
	}
	printCorruptions := func(cors []sim.Corruption) {
		for _, c := range cors {
			fmt.Printf("  corrupted stratum %d detected at cycle %.0f (%d flipped transfers); re-execute it to repair\n",
				c.Stratum, c.DetectedAtCycle, c.Transfers)
		}
	}
	emit := func(st *sim.Stats) {
		if !mo.wanted() {
			return
		}
		rep := buildReport(a, res.Program, st, mo.col)
		rep.AttachCompile(res)
		rep.Model = g.Name
		rep.Config = opt.Name()
		emitMetrics(rep, mo)
	}

	col := mo.collector()
	simCfg := sim.Config{Faults: plan, WatchdogCycles: watchdog, Hook: col.hook(), NoSPMCheck: noSPMCheck}
	out, err := runSim(res.Program, simCfg)
	if err == nil {
		fmt.Printf("%s on %s, %s under faults [%s]: %.1f us end-to-end\n",
			g.Name, a.Name, opt.Name(), plan, out.Stats.LatencyMicros(clock))
		printRetries(out.Stats.PerCore)
		printCorruptions(out.Corruptions)
		emit(&out.Stats)
		return
	}
	var cf *sim.CoreFailure
	var hd *sim.HangDetected
	switch {
	case errors.As(err, &cf):
		emit(&cf.Partial)
	case errors.As(err, &hd):
		emit(&hd.Partial)
	default:
		fatal(err)
	}

	rec, rerr := recovery.RecoverFrom(g, a, err, recovery.Options{
		Opt: opt,
		Sim: sim.Config{Faults: plan, WatchdogCycles: watchdog, NoSPMCheck: noSPMCheck},
	})
	if rerr != nil {
		fatal(err) // exit with the original typed failure, not the recovery error
	}
	fmt.Printf("%s on %s, %s under faults [%s]: degraded but recovered\n",
		g.Name, a.Name, opt.Name(), plan)
	for _, f := range rec.Failures {
		fmt.Printf("  core %s failed (%s) at cycle %.0f, checkpoint %d layers\n",
			a.Cores[f.Core].Name, f.Kind, f.AtCycle, len(f.Completed))
	}
	for _, h := range rec.Hangs {
		var hung []string
		for _, c := range h.Cores {
			hung = append(hung, a.Cores[c].Name)
		}
		fmt.Printf("  watchdog caught %v silently hung at cycle %.0f (heartbeat %.0f), checkpoint %d layers\n",
			hung, h.AtCycle, watchdog, len(h.Completed))
	}
	var names []string
	for _, c := range rec.Survivors {
		names = append(names, a.Cores[c].Name)
	}
	fmt.Printf("  resumed on %v from %d checkpointed layers, re-executing %d\n",
		names, len(rec.Completed), rec.ReExecutedLayers())
	merged := rec.MergedStats()
	fmt.Printf("  degraded latency %.1f us (re-dispatch penalties included)\n",
		merged.LatencyMicros(clock))
	printRetries(merged.PerCore)
	printCorruptions(rec.Final.Corruptions)
}

// simulateFile replays a precompiled program artifact. Compile-side
// metrics (strata, pass timings) are unavailable here — the report
// covers the run only.
func simulateFile(path, traceOut string, gantt int, mo metricsOpts) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := serialize.LoadProgram(f)
	if err != nil {
		fatal(err)
	}
	col := mo.collector()
	out, err := runSim(p, sim.Config{CollectTrace: traceOut != "" || gantt > 0, Hook: col.hook(), NoSPMCheck: noSPMCheck})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s on %s: %.1f us end-to-end (replayed from %s)\n",
		p.Graph.Name, p.Arch.Name, out.Stats.LatencyMicros(p.Arch.ClockMHz), path)
	if mo.wanted() {
		rep := buildReport(p.Arch, p, &out.Stats, mo.col)
		rep.Model = p.Graph.Name
		emitMetrics(rep, mo)
	}
	if gantt > 0 {
		if err := trace.Gantt(os.Stdout, out.Trace, p.Arch, gantt); err != nil {
			fatal(err)
		}
	}
	if traceOut != "" {
		tf, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		if err := trace.WriteChrome(tf, out.Trace, p.Arch); err != nil {
			fatal(err)
		}
	}
}

// metricsOpts carries the -metrics/-metrics-out request plus the
// collector observing the run (nil when metrics are off, which keeps
// the engine's nil-hook fast path).
type metricsOpts struct {
	print bool
	out   string
	col   *metrics.Collector
}

func (mo metricsOpts) wanted() bool { return mo.print || mo.out != "" }

// collector lazily allocates the hook and returns the opts themselves
// so call sites can thread one value through.
func (mo *metricsOpts) collector() *metricsOpts {
	if mo.wanted() && mo.col == nil {
		mo.col = &metrics.Collector{}
	}
	return mo
}

// hook returns the sim.Hook to install: a typed nil interface when
// metrics are off.
func (mo *metricsOpts) hook() sim.Hook {
	if mo.col == nil {
		return nil
	}
	return mo.col
}

// buildReport assembles the metrics report for a whole-platform run of
// one program (the placement Run uses).
func buildReport(a *arch.Arch, p *plan.Program, st *sim.Stats, col *metrics.Collector) *metrics.Report {
	cores := make([]int, a.NumCores())
	for i := range cores {
		cores[i] = i
	}
	return metrics.BuildReport(a, []sim.Placement{{Program: p, Cores: cores}}, st, col)
}

// emitMetrics prints and/or writes the report per the flags.
func emitMetrics(rep *metrics.Report, mo metricsOpts) {
	if mo.print {
		if err := report.Utilization(os.Stdout, rep); err != nil {
			fatal(err)
		}
	}
	if mo.out != "" {
		f, err := os.Create(mo.out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
		fmt.Printf("metrics written to %s\n", mo.out)
	}
}

// runServe runs the HTTP service until SIGTERM/SIGINT, then drains:
// admissions stop (readyz flips to 503, new /run requests shed), every
// in-flight request finishes (up to drainTimeout), and the process
// exits 0 on a clean drain.
func runServe(addr string, opts serve.Options, drainTimeout time.Duration) {
	s := serve.New(opts)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- s.ListenAndServe(addr) }()
	opts.Logger.Printf("serving on %s (POST /run /tenants, GET /healthz /readyz /stats)", addr)

	select {
	case err := <-errCh:
		// The listener died on its own (bad address, port in use).
		fatal(err)
	case <-ctx.Done():
		stop() // restore default signal handling: a second signal kills
		opts.Logger.Printf("signal received, draining (timeout %s)", drainTimeout)
		sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		if err := s.Shutdown(sctx); err != nil {
			fatal(fmt.Errorf("drain: %w", err))
		}
		if err := <-errCh; err != nil {
			fatal(err)
		}
		opts.Logger.Printf("drained cleanly")
	}
}

// fatal reports err and exits with its typed exit code (see the
// cliutil exit-code table in -help).
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npusim:", err)
	os.Exit(cliutil.ExitCode(err))
}

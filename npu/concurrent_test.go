package npu_test

import (
	"testing"

	"repro/npu"
)

func TestRunConcurrent(t *testing.T) {
	a := npu.Exynos2100Like()
	g1 := npu.BuildModel("MobileNetV2")
	g2 := npu.BuildModel("MobileNetV2")
	rep, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: g1, Cores: []int{0, 1}, Options: npu.Halo()},
		{Graph: g2, Cores: []int{2}, Options: npu.Halo()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerWorkloadUS) != 2 {
		t.Fatalf("workload times = %v", rep.PerWorkloadUS)
	}
	for i, us := range rep.PerWorkloadUS {
		if us <= 0 {
			t.Errorf("workload %d time %f", i, us)
		}
	}
	// The 2-core placement must beat the 1-core placement for the
	// same network.
	if rep.PerWorkloadUS[0] >= rep.PerWorkloadUS[1] {
		t.Errorf("2-core run %.1fus >= 1-core run %.1fus", rep.PerWorkloadUS[0], rep.PerWorkloadUS[1])
	}
}

func TestRunConcurrentRejectsOverlap(t *testing.T) {
	a := npu.Exynos2100Like()
	g := npu.BuildModel("MobileNetV2")
	_, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: g, Cores: []int{0, 1}, Options: npu.Base()},
		{Graph: g, Cores: []int{1, 2}, Options: npu.Base()},
	})
	if err == nil {
		t.Fatal("overlapping cores accepted")
	}
}

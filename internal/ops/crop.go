package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Crop removes spatial margins (UNet center-crops encoder features to
// match the decoder's valid-convolution extents).
type Crop struct {
	Top, Bottom, Left, Right int
}

// Kind implements Op. Crop reuses the Resize kind space; it gets its
// own constant below.
func (Crop) Kind() Kind { return KindCrop }

// KindCrop identifies the crop operator.
const KindCrop Kind = 100

// OutShape implements Op.
func (o Crop) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Crop", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h := in[0].H - o.Top - o.Bottom
	w := in[0].W - o.Left - o.Right
	if h <= 0 || w <= 0 {
		return tensor.Shape{}, fmt.Errorf("ops: Crop margins %d/%d/%d/%d consume input %s",
			o.Top, o.Bottom, o.Left, o.Right, in[0])
	}
	return tensor.NewShape(h, w, in[0].C), nil
}

// MACs implements Op: a copy.
func (Crop) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (Crop) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: the output region shifted by the crop
// offset.
func (o Crop) InputRegion(out tensor.Region, _ int, _ []tensor.Shape) tensor.Region {
	r := out
	r.Off = r.Off.WithDim(tensor.AxisH, out.Off.H+o.Top)
	r.Off = r.Off.WithDim(tensor.AxisW, out.Off.W+o.Left)
	return r
}

// SupportsPartition implements Op.
func (Crop) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Crop) ChannelWise() bool { return false }

func (o Crop) String() string {
	return fmt.Sprintf("Crop(%d/%d/%d/%d)", o.Top, o.Bottom, o.Left, o.Right)
}

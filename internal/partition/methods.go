package partition

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// MethodID identifies one of Table 1's convolution partitioning
// methods as a per-layer override target. MethodAuto is the absence of
// an override: heuristics h1–h5 decide. The design-space explorer
// (package dse) mutates a vector of these; the compiler applies them
// through Partitioner.Force.
type MethodID int

// Per-layer partitioning method overrides, Table 1 order.
const (
	// MethodAuto defers to the adaptive heuristics h1–h5.
	MethodAuto MethodID = iota
	// MethodSpatial is Table 1 "spatial": input and output split along
	// an image axis, kernel replicated. Resolves to spatial-H when the
	// operator supports it, else spatial-W.
	MethodSpatial
	// MethodSpatialPS is Table 1 "spatial*": the kernel is split and
	// every core holds the whole input/output, requiring a partial-sum
	// reduction stage. The emitter has no reduction stage, so this
	// method is never supported; it exists so the Table 1 matrix can be
	// enumerated and tested.
	MethodSpatialPS
	// MethodChannel is Table 1 "channel": kernel and output split along
	// channels, input replicated.
	MethodChannel
	// MethodChannelPS is Table 1 "channel*": input and kernel split with
	// a partial-sum reduction. Unsupported, like MethodSpatialPS.
	MethodChannelPS
)

// String returns the Table 1 label.
func (m MethodID) String() string {
	switch m {
	case MethodAuto:
		return "auto"
	case MethodSpatial:
		return "spatial"
	case MethodSpatialPS:
		return "spatial*"
	case MethodChannel:
		return "channel"
	case MethodChannelPS:
		return "channel*"
	default:
		return fmt.Sprintf("MethodID(%d)", int(m))
	}
}

// Methods returns every MethodID a per-layer override may name, in
// Table 1 order (MethodAuto first).
func Methods() []MethodID {
	return []MethodID{MethodAuto, MethodSpatial, MethodSpatialPS, MethodChannel, MethodChannelPS}
}

// MethodSupported reports whether forcing method m on layer l can be
// lowered by the compiler, and why not otherwise. MethodAuto is always
// supported (the heuristics pick among the legal directions, including
// "no split"). The partial-sum variants are never supported: the
// emitter has no reduction stage, matching the paper's choice to use
// only the reduction-free rows of Table 1.
func MethodSupported(m MethodID, l *graph.Layer) (bool, string) {
	if l.IsInput() {
		return m == MethodAuto, "graph input is not partitioned"
	}
	switch m {
	case MethodAuto:
		return true, ""
	case MethodSpatial:
		if l.Op.SupportsPartition(tensor.AxisH) && l.OutShape.H > 1 {
			return true, ""
		}
		if l.Op.SupportsPartition(tensor.AxisW) && l.OutShape.W > 1 {
			return true, ""
		}
		return false, "operator admits no reduction-free spatial split"
	case MethodChannel:
		if l.Op.SupportsPartition(tensor.AxisC) && l.OutShape.C > 1 {
			return true, ""
		}
		return false, "operator admits no reduction-free channel split"
	case MethodSpatialPS, MethodChannelPS:
		return false, "partial-sum reduction is not implemented"
	default:
		return false, fmt.Sprintf("unknown method %d", int(m))
	}
}

// Method describes one convolution-layer partitioning method, one row
// of the paper's Table 1. The compiler only ever selects the two
// Preferred methods; the reduction-requiring alternatives are listed
// so the Table 1 experiment can enumerate and justify the choice.
type Method struct {
	// ID is the override identifier for this row (MethodID); the
	// per-layer Force vector names rows by it.
	ID MethodID
	// Name is the paper's label; an asterisk marks the dispreferred
	// partial-sum variants.
	Name string
	// Direction is the output split the method corresponds to (the
	// partial-sum variants split the kernel or input instead of the
	// output and have no output Direction; they are marked DirNone).
	Direction Direction
	// DataPartitioned lists which tensors the method splits.
	DataPartitioned []string
	// DataReplicated lists which tensors every core must hold whole.
	DataReplicated []string
	// ExtraCommComp names the extra stage the method needs, if any.
	ExtraCommComp string
	// Preferred reports whether the compiler may select the method.
	Preferred bool
}

// ConvMethods returns the four convolution partitioning methods of
// Table 1 in paper order.
func ConvMethods() []Method {
	return []Method{
		{
			ID:              MethodSpatial,
			Name:            "spatial",
			Direction:       DirSpatialH,
			DataPartitioned: []string{"input", "output"},
			DataReplicated:  []string{"kernel"},
			ExtraCommComp:   "none",
			Preferred:       true,
		},
		{
			ID:              MethodSpatialPS,
			Name:            "spatial*",
			Direction:       DirNone,
			DataPartitioned: []string{"kernel"},
			DataReplicated:  []string{"input", "output"},
			ExtraCommComp:   "partial sum reduction",
			Preferred:       false,
		},
		{
			ID:              MethodChannel,
			Name:            "channel",
			Direction:       DirChannel,
			DataPartitioned: []string{"kernel", "output"},
			DataReplicated:  []string{"input"},
			ExtraCommComp:   "none",
			Preferred:       true,
		},
		{
			ID:              MethodChannelPS,
			Name:            "channel*",
			Direction:       DirNone,
			DataPartitioned: []string{"input", "kernel"},
			DataReplicated:  []string{},
			ExtraCommComp:   "partial sum reduction",
			Preferred:       false,
		},
	}
}

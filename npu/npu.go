// Package npu is the public API of the multicore-NPU compiler and
// simulator reproducing "Accelerating Deep Neural Networks on Mobile
// Multicore NPUs" (CGO 2023).
//
// Typical use:
//
//	g := npu.BuildModel("MobileNetV2")        // or build your own graph
//	a := npu.Exynos2100Like()                  // 3-core NPU description
//	res, err := npu.Compile(g, a, npu.Stratum()) // Base() / Halo() / Stratum()
//	rep, err := npu.Simulate(res, false)
//	fmt.Println(rep)
//
// The package re-exports the building blocks (graph construction,
// operators, architecture description, compiler options) via type
// aliases, so the whole pipeline is scriptable from one import.
package npu

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/arch"
	"repro/internal/autotune"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// Core data-model aliases.
type (
	// Graph is the network IR; build with NewGraph and Graph.MustAdd.
	Graph = graph.Graph
	// Layer is one node of a Graph.
	Layer = graph.Layer
	// LayerID identifies a layer within its graph.
	LayerID = graph.LayerID
	// Shape is an HxWxC tensor extent.
	Shape = tensor.Shape
	// DType is a tensor element type (Int8, Int16, Int32).
	DType = tensor.DType
	// Arch describes the NPU hardware.
	Arch = arch.Arch
	// CoreDesc describes one NPU core.
	CoreDesc = arch.Core
	// Options selects the optimization configuration (Table 3).
	Options = core.Options
	// Result is the compiler's output.
	Result = core.Result
	// ModelInfo describes one benchmark network (Table 2).
	ModelInfo = models.Info
	// SimStats is the aggregate outcome of a simulation.
	SimStats = sim.Stats
	// TraceEvent is one executed instruction interval.
	TraceEvent = sim.Event
	// PartitionMode forces a partitioning policy (Table 4 compares them).
	PartitionMode = partition.Mode
)

// Element types.
const (
	Int8  = tensor.Int8
	Int16 = tensor.Int16
	Int32 = tensor.Int32
)

// Partitioning policies.
const (
	Adaptive     = partition.Adaptive
	ForceSpatial = partition.ForceSpatial
	ForceChannel = partition.ForceChannel
)

// NewGraph returns an empty network with default element type dt.
func NewGraph(name string, dt DType) *Graph { return graph.New(name, dt) }

// NewShape returns the shape {h, w, c}.
func NewShape(h, w, c int) Shape { return tensor.NewShape(h, w, c) }

// Architecture presets.
var (
	// Exynos2100Like is the paper's three-core evaluation platform.
	Exynos2100Like = arch.Exynos2100Like
	// SingleCore is the one-core baseline of Figure 11.
	SingleCore = arch.SingleCore
	// Homogeneous returns an n-core NPU with identical cores.
	Homogeneous = arch.Homogeneous
)

// Optimization configurations (Table 3).
var (
	// Base partitions and pipelines but synchronizes at every layer.
	Base = core.Base
	// Halo adds halo-exchange, halo-first tiling, and forwarding.
	Halo = core.Halo
	// Stratum adds synchronization-free strata on top of Halo.
	Stratum = core.Stratum
)

// Models returns the six benchmark networks of Table 2.
func Models() []ModelInfo { return models.All() }

// BuildModelByName constructs a benchmark network by name, returning
// an error on an unknown name (use Models for the list).
func BuildModelByName(name string) (*Graph, error) {
	m, err := models.ByName(name)
	if err != nil {
		return nil, err
	}
	return m.Build(), nil
}

// BuildModel constructs a benchmark network by name; it panics on an
// unknown name (use Models for the list, or BuildModelByName for the
// non-panicking variant).
func BuildModel(name string) *Graph {
	g, err := BuildModelByName(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Compile lowers a network for an architecture under the given
// optimization options.
func Compile(g *Graph, a *Arch, opt Options) (*Result, error) {
	return core.Compile(g, a, opt)
}

// CompileCtx is Compile with cooperative cancellation: ctx is polled
// at checkpoints throughout the compile pipeline (including the
// admission simulation), so an expired deadline or canceled request
// aborts promptly with an error wrapping ctx's error. A nil ctx
// behaves exactly like Compile.
func CompileCtx(ctx context.Context, g *Graph, a *Arch, opt Options) (*Result, error) {
	return core.CompileCtx(ctx, g, a, opt)
}

// CompileCached is Compile with process-wide memoization; identical
// (graph, arch, options) points compile once. See core.CompileCached.
func CompileCached(g *Graph, a *Arch, opt Options) (*Result, error) {
	return core.CompileCached(g, a, opt)
}

// CompileCachedCtx is CompileCached with cooperative cancellation. A
// canceled compile never stores a partial entry, so a follow-up
// identical request compiles cleanly (or hits a prior good entry).
func CompileCachedCtx(ctx context.Context, g *Graph, a *Arch, opt Options) (*Result, error) {
	return core.CompileCachedCtx(ctx, g, a, opt)
}

// Typed-error surface, re-exported so API users can classify failures
// with errors.Is/errors.As against a single import.
type (
	// UnfitError reports that the graceful-degradation chain was
	// exhausted without finding a schedule that fits SPM.
	UnfitError = core.UnfitError
	// SPMOverflowError reports a schedule whose live bytes exceeded a
	// core's scratchpad during admission or simulation.
	SPMOverflowError = sim.SPMOverflowError
	// CanceledError reports a simulation aborted at a cooperative
	// cancellation checkpoint; it unwraps to the context error.
	CanceledError = sim.CanceledError
	// CannotFitError reports a single layer whose minimal tile exceeds
	// the SPM budget.
	CannotFitError = tiling.CannotFitError
)

// ErrCanceled matches (via errors.Is) any simulation or compilation
// aborted by context cancellation.
var ErrCanceled = sim.ErrCanceled

// Report is a simulation outcome with convenient accessors.
type Report struct {
	// Stats holds latency and per-core metrics (cycles).
	Stats SimStats
	// Trace holds per-instruction events when requested.
	Trace []TraceEvent
	// Arch is the simulated platform (for unit conversions).
	Arch *Arch
	// Config names the optimization configuration.
	Config string
}

// LatencyMicros returns the end-to-end inference latency. If the
// architecture's clock is zero or negative it returns 0 (never
// +Inf/NaN) — see sim.Stats.LatencyMicros.
func (r *Report) LatencyMicros() float64 {
	return r.Stats.LatencyMicros(r.Arch.ClockMHz)
}

// String formats a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s: %.1f us\n", r.Config, r.Arch.Name, r.LatencyMicros())
	var idle, syncW []float64
	for _, c := range r.Stats.PerCore {
		idle = append(idle, c.Idle)
		syncW = append(syncW, c.SyncWait)
	}
	fmt.Fprintf(&b, "  idle %s, sync %s, %d barriers, %.1f MB moved, %.2f GMACs executed\n",
		stats.Summarize(idle).Micros(r.Arch.ClockMHz),
		stats.Summarize(syncW).Micros(r.Arch.ClockMHz),
		r.Stats.Barriers,
		float64(r.Stats.TotalBytes())/1e6,
		float64(r.Stats.TotalMACs())/1e9)
	for i, c := range r.Stats.PerCore {
		fmt.Fprintf(&b, "  %s: compute %.1f us, dma %.1f us, idle %.1f us, %d KB loaded, %d KB stored\n",
			r.Arch.Cores[i].Name,
			c.ComputeBusy/float64(r.Arch.ClockMHz),
			(c.LoadBusy+c.StoreBusy)/float64(r.Arch.ClockMHz),
			c.Idle/float64(r.Arch.ClockMHz),
			c.BytesLoaded/1024, c.BytesStored/1024)
	}
	return b.String()
}

// Simulate runs a compiled program on the discrete-event simulator.
func Simulate(res *Result, collectTrace bool) (*Report, error) {
	return SimulateCtx(nil, res, collectTrace)
}

// SimulateCtx is Simulate with cooperative cancellation: the engine
// polls ctx every few dozen event-loop steps and aborts with a typed
// *CanceledError (matching ErrCanceled). A nil ctx costs one pointer
// compare per step.
func SimulateCtx(ctx context.Context, res *Result, collectTrace bool) (*Report, error) {
	out, err := sim.Run(res.Program, sim.Config{Ctx: ctx, CollectTrace: collectTrace})
	if err != nil {
		return nil, err
	}
	return &Report{
		Stats:  out.Stats,
		Trace:  out.Trace,
		Arch:   res.Program.Arch,
		Config: "compiled",
	}, nil
}

// Run compiles and simulates in one step.
func Run(g *Graph, a *Arch, opt Options) (*Report, error) {
	return RunCtx(nil, g, a, opt)
}

// RunCtx is Run with cooperative cancellation covering both the
// compile pipeline and the simulation. A nil ctx behaves exactly
// like Run.
func RunCtx(ctx context.Context, g *Graph, a *Arch, opt Options) (*Report, error) {
	res, err := CompileCtx(ctx, g, a, opt)
	if err != nil {
		return nil, err
	}
	rep, err := SimulateCtx(ctx, res, false)
	if err != nil {
		return nil, err
	}
	rep.Config = opt.Name()
	return rep, nil
}

// EnergyMicroJoules estimates the inference energy from the
// architecture's per-MAC and per-DRAM-byte costs.
func (r *Report) EnergyMicroJoules(int16Model bool) float64 {
	return r.Stats.EnergyMicroJoules(r.Arch.PJPerMAC, r.Arch.PJPerDRAMByte, int16Model)
}

// TuneResult is the outcome of profile-guided rebalancing.
type TuneResult = autotune.Result

// AutoBalance compiles, simulates, and iteratively rebalances the
// per-core partitioning weights from the observed utilization (the
// paper's profile-guided fix for unbalanced workloads), returning the
// best schedule found.
func AutoBalance(g *Graph, a *Arch, opt Options, iters int) (*TuneResult, error) {
	return autotune.AutoBalance(g, a, opt, iters)
}

// RunBatch simulates n back-to-back inferences and returns the
// steady-state inference period in microseconds (sustained-throughput
// metric) next to the single-shot latency report. A zero or negative
// clock yields 0, matching the LatencyMicros contract.
func RunBatch(g *Graph, a *Arch, opt Options, n int) (periodUS float64, err error) {
	res, err := Compile(g, a, opt)
	if err != nil {
		return 0, err
	}
	period, _, err := sim.Throughput(res.Program, n, sim.Config{})
	if err != nil {
		return 0, err
	}
	if a.ClockMHz <= 0 {
		return 0, nil
	}
	return period / float64(a.ClockMHz), nil
}

// Validate checks a compilation result's region arithmetic by
// executing the graph numerically three ways — whole (reference),
// partitioned per core, and per stratum with feature-map forwarding —
// and comparing bit-exactly. It is slow on full benchmark models; use
// small graphs or prefixes.
func Validate(g *Graph, res *Result) error {
	ref, err := exec.RunReference(g)
	if err != nil {
		return err
	}
	if err := exec.ValidatePartitioned(g, res.Plans, ref); err != nil {
		return err
	}
	if err := exec.ValidateTiled(g, res.Plans, tiling.New(res.Program.Arch), ref); err != nil {
		return err
	}
	return exec.ValidateStrata(g, res.Plans, res.Strata, ref)
}

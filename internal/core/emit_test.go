package core

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// countOps tallies instruction kinds across all cores.
func countOps(p *plan.Program) map[plan.OpCode]int {
	m := map[plan.OpCode]int{}
	for _, stream := range p.Cores {
		for _, in := range stream {
			m[in.Op]++
		}
	}
	return m
}

// convPair builds input -> conv1 -> conv2 (both SAME 3x3, spatial).
func convPair() *graph.Graph {
	g := graph.New("pair", tensor.Int8)
	in := g.Input("input", tensor.NewShape(64, 64, 16))
	c1 := g.MustAdd("conv1", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	g.MustAdd("conv2", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c1)
	return g
}

func TestBaseEmitsStoreBarrierLoad(t *testing.T) {
	g := convPair()
	res, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	ops := countOps(res.Program)
	if ops[plan.StoreHalo] != 0 || ops[plan.LoadHalo] != 0 {
		t.Error("Base must not emit halo-exchange")
	}
	if ops[plan.Barrier] == 0 {
		t.Error("Base must synchronize between the convolutions")
	}
	// conv1 stores its output, conv2 loads it.
	var conv1Stores, conv2Loads int
	for _, stream := range res.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.Store && strings.Contains(in.Note, "conv1") {
				conv1Stores++
			}
			if in.Op == plan.LoadInput && strings.Contains(in.Note, "conv2") {
				conv2Loads++
			}
		}
	}
	if conv1Stores == 0 || conv2Loads == 0 {
		t.Errorf("store/load round trip missing: %d stores, %d loads", conv1Stores, conv2Loads)
	}
}

func TestHaloEmitsExchangeAndForwards(t *testing.T) {
	g := convPair()
	res, err := Compile(g, arch.Exynos2100Like(), Halo())
	if err != nil {
		t.Fatal(err)
	}
	opsCount := countOps(res.Program)
	if opsCount[plan.StoreHalo] == 0 || opsCount[plan.LoadHalo] == 0 {
		t.Error("+Halo must emit halo-exchange for the spatial pair")
	}
	// conv2's input is forwarded: no LoadInput for conv2 (only the
	// halo and the kernel).
	for _, stream := range res.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.LoadInput && strings.Contains(in.Note, "conv2") {
				t.Errorf("forwarded conv2 still loads input: %s", in.Note)
			}
		}
	}
	// conv1 has no other consumers, so its full store disappears too.
	for _, stream := range res.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.Store && strings.Contains(in.Note, "conv1") {
				t.Errorf("forwarded conv1 still stores: %s", in.Note)
			}
		}
	}
}

func TestGraphOutputAlwaysStored(t *testing.T) {
	g := convPair()
	for _, opt := range []Options{Base(), Halo(), Stratum()} {
		res, err := Compile(g, arch.Exynos2100Like(), opt)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, stream := range res.Program.Cores {
			for _, in := range stream {
				if in.Op == plan.Store && strings.Contains(in.Note, "conv2") {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: graph output conv2 never stored", opt.Name())
		}
	}
}

func TestElementwiseForwardingNeedsNoHaloOrBarrier(t *testing.T) {
	// conv -> relu: zero halo (elementwise) means pure forwarding with
	// no exchange and no rendezvous under +Halo.
	g := graph.New("cr", tensor.Int8)
	in := g.Input("input", tensor.NewShape(32, 32, 16))
	c := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	g.MustAdd("relu", ops.Activation{Func: ops.ReLU}, c)

	res, err := Compile(g, arch.Exynos2100Like(), Halo())
	if err != nil {
		t.Fatal(err)
	}
	opsCount := countOps(res.Program)
	if opsCount[plan.StoreHalo] != 0 || opsCount[plan.LoadHalo] != 0 {
		t.Error("elementwise consumer incurred halo-exchange")
	}
	if res.Program.NumBarriers != 0 {
		t.Errorf("elementwise forwarding chain has %d barriers, want 0", res.Program.NumBarriers)
	}
}

func TestForwardingFallsBackWhenTensorTooBig(t *testing.T) {
	// A producer whose per-core output exceeds the forwarding budget:
	// the edge must fall back to the global round trip.
	g := graph.New("big", tensor.Int8)
	in := g.Input("input", tensor.NewShape(512, 512, 16)) // 4 MB feature map
	c1 := g.MustAdd("conv1", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	g.MustAdd("conv2", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c1)

	res, err := Compile(g, arch.SingleCore(), Halo())
	if err != nil {
		t.Fatal(err)
	}
	loads := 0
	for _, in := range res.Program.Cores[0] {
		if in.Op == plan.LoadInput && strings.Contains(in.Note, "conv2") {
			loads++
		}
	}
	if loads == 0 {
		t.Error("oversized forwarding not rejected: conv2 loads nothing")
	}
}

func TestKernelLoadedOncePerGroup(t *testing.T) {
	g := convPair()
	res, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	// Spatial tiling without channel pressure: exactly one kernel load
	// per (layer, core) with work.
	type key struct {
		core  int
		layer graph.LayerID
	}
	kernelLoads := map[key]int{}
	for c, stream := range res.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.LoadKernel {
				kernelLoads[key{c, in.Layer}]++
			}
		}
	}
	for k, n := range kernelLoads {
		if n != 1 {
			t.Errorf("layer %d core %d: %d kernel loads, want 1", k.layer, k.core, n)
		}
	}
	if len(kernelLoads) != 2*res.Program.Arch.NumCores() {
		t.Errorf("kernel loads on %d (layer,core) pairs, want %d",
			len(kernelLoads), 2*res.Program.Arch.NumCores())
	}
}

func TestInputStationaryReuse(t *testing.T) {
	// A channel-partitioned dense conv streams kernel slices over a
	// stationary input: per core there must be exactly one input load
	// despite multiple kernel groups.
	g := graph.New("cp", tensor.Int8)
	in := g.Input("input", tensor.NewShape(8, 8, 64))
	g.MustAdd("fat", ops.NewConv2D(3, 3, 1, 1, 1024,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)

	res, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	if res.Plans[1].Direction.String() != "channel" {
		t.Skipf("direction = %v", res.Plans[1].Direction)
	}
	for c, stream := range res.Program.Cores {
		loads, kernels := 0, 0
		for _, in := range stream {
			switch in.Op {
			case plan.LoadInput:
				loads++
			case plan.LoadKernel:
				kernels++
			}
		}
		if loads > 1 {
			t.Errorf("core %d: %d input loads; input-stationary reuse missing", c, loads)
		}
		if kernels > 0 && loads == 1 && kernels < 2 {
			t.Logf("core %d: %d kernel groups (ok if SPM roomy)", c, kernels)
		}
	}
}

func TestStratumInteriorHasNoLoadsOrStores(t *testing.T) {
	g := graph.New("chain", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(48, 48, 8))
	for i := 0; i < 4; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
	}
	res, err := Compile(g, arch.Exynos2100Like(), Stratum())
	if err != nil {
		t.Fatal(err)
	}
	var interior []graph.LayerID
	for _, s := range res.Strata {
		if s.Len() > 2 {
			interior = s.Layers[1 : s.Len()-1]
		}
	}
	if len(interior) == 0 {
		t.Skip("no stratum interior formed")
	}
	inSet := map[graph.LayerID]bool{}
	for _, id := range interior {
		inSet[id] = true
	}
	for _, stream := range res.Program.Cores {
		for _, in := range stream {
			if !inSet[in.Layer] {
				continue
			}
			switch in.Op {
			case plan.LoadInput, plan.Store, plan.StoreHalo, plan.LoadHalo:
				t.Errorf("stratum-interior layer %d has %v (%s)", in.Layer, in.Op, in.Note)
			}
		}
	}
}

func TestHaloSendPlacedBeforeLastTileStoreWithHaloFirst(t *testing.T) {
	// With halo-first, the halo send must appear in the store stream
	// before some later tile's work (i.e., not as the very last store
	// engine item of the layer) for the middle core.
	g := convPair()
	res, err := Compile(g, arch.Exynos2100Like(), Halo())
	if err != nil {
		t.Fatal(err)
	}
	stream := res.Program.Cores[1] // middle core: halo on both sides
	sendPos, lastComputePos := -1, -1
	for i, in := range stream {
		if in.Op == plan.StoreHalo && strings.Contains(in.Note, "conv1") {
			sendPos = i
		}
		if in.Op == plan.Compute && strings.Contains(in.Note, "conv1") {
			lastComputePos = i
		}
	}
	if sendPos < 0 {
		t.Skip("no halo send on middle core")
	}
	if sendPos > lastComputePos {
		t.Errorf("halo send at %d after the last conv1 compute at %d; halo-first not effective",
			sendPos, lastComputePos)
	}
}

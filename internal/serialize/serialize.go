// Package serialize persists graphs and compiled programs as JSON, so
// compilation artifacts can be inspected, diffed, and replayed
// (npuc -o writes them; npusim -in simulates them without recompiling).
package serialize

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// opEnvelope tags an operator with its kind for decoding.
type opEnvelope struct {
	Kind string          `json:"kind"`
	Attr json.RawMessage `json:"attr"`
}

// encodeOp wraps an operator in a tagged envelope.
func encodeOp(op ops.Op) (opEnvelope, error) {
	kind := op.Kind().String()
	raw, err := json.Marshal(op)
	if err != nil {
		return opEnvelope{}, err
	}
	return opEnvelope{Kind: kind, Attr: raw}, nil
}

// decodeOp reconstructs an operator from its envelope.
func decodeOp(env opEnvelope) (ops.Op, error) {
	unmarshal := func(v ops.Op) (ops.Op, error) {
		// v is a pointer to the zero value; fill and deref.
		if err := json.Unmarshal(env.Attr, v); err != nil {
			return nil, err
		}
		return v, nil
	}
	switch env.Kind {
	case "Input":
		o := &ops.Input{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Conv2D":
		o := &ops.Conv2D{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "DepthwiseConv2D":
		o := &ops.DepthwiseConv2D{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "TransposeConv2D":
		o := &ops.TransposeConv2D{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "MaxPool2D":
		o := &ops.MaxPool2D{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "AvgPool2D":
		o := &ops.AvgPool2D{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "GlobalAvgPool":
		return ops.GlobalAvgPool{}, nil
	case "FullyConnected":
		o := &ops.FullyConnected{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Add":
		o := &ops.Add{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Mul":
		return ops.Mul{}, nil
	case "Concat":
		o := &ops.Concat{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Activation":
		o := &ops.Activation{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Softmax":
		return ops.Softmax{}, nil
	case "Resize":
		o := &ops.Resize{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "Crop":
		o := &ops.Crop{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "ChannelSlice":
		o := &ops.ChannelSlice{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	case "ChannelShuffle":
		o := &ops.ChannelShuffle{}
		if _, err := unmarshal(o); err != nil {
			return nil, err
		}
		return *o, nil
	default:
		return nil, fmt.Errorf("serialize: unknown op kind %q", env.Kind)
	}
}

// layerJSON is the persisted form of a layer.
type layerJSON struct {
	Name   string          `json:"name"`
	Op     opEnvelope      `json:"op"`
	Inputs []graph.LayerID `json:"inputs"`
	DType  tensor.DType    `json:"dtype"`
}

// graphJSON is the persisted form of a graph.
type graphJSON struct {
	Name   string       `json:"name"`
	DType  tensor.DType `json:"dtype"`
	Layers []layerJSON  `json:"layers"`
}

// SaveGraph writes g as JSON.
func SaveGraph(w io.Writer, g *graph.Graph) error {
	doc := graphJSON{Name: g.Name, DType: g.DType}
	for _, l := range g.Layers() {
		env, err := encodeOp(l.Op)
		if err != nil {
			return fmt.Errorf("serialize: layer %s: %w", l.Name, err)
		}
		doc.Layers = append(doc.Layers, layerJSON{
			Name: l.Name, Op: env, Inputs: l.Inputs, DType: l.DType,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// LoadGraph reconstructs a graph from JSON, re-running shape inference
// and validation.
func LoadGraph(r io.Reader) (*graph.Graph, error) {
	var doc graphJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	g := graph.New(doc.Name, doc.DType)
	for _, l := range doc.Layers {
		op, err := decodeOp(l.Op)
		if err != nil {
			return nil, fmt.Errorf("serialize: layer %s: %w", l.Name, err)
		}
		g.DType = l.DType
		if _, err := g.Add(l.Name, op, l.Inputs...); err != nil {
			return nil, fmt.Errorf("serialize: %w", err)
		}
	}
	g.DType = doc.DType
	return g, g.Validate()
}

// programJSON is the persisted form of a compiled program. The graph
// and architecture travel with it so a simulation needs nothing else.
type programJSON struct {
	Arch        *arch.Arch            `json:"arch"`
	Graph       graphJSON             `json:"graph"`
	Cores       [][]plan.Instr        `json:"cores"`
	NumBarriers int                   `json:"num_barriers"`
	Directions  []partition.Direction `json:"directions"`
	Strata      [][]graph.LayerID     `json:"strata"`
}

// SaveProgram writes a compiled program (with its graph and
// architecture) as JSON.
func SaveProgram(w io.Writer, p *plan.Program) error {
	gdoc := graphJSON{Name: p.Graph.Name, DType: p.Graph.DType}
	for _, l := range p.Graph.Layers() {
		env, err := encodeOp(l.Op)
		if err != nil {
			return fmt.Errorf("serialize: layer %s: %w", l.Name, err)
		}
		gdoc.Layers = append(gdoc.Layers, layerJSON{
			Name: l.Name, Op: env, Inputs: l.Inputs, DType: l.DType,
		})
	}
	doc := programJSON{
		Arch:        p.Arch,
		Graph:       gdoc,
		Cores:       p.Cores,
		NumBarriers: p.NumBarriers,
		Directions:  p.Directions,
		Strata:      p.Strata,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// LoadProgram reads a compiled program back and re-validates it.
func LoadProgram(r io.Reader) (*plan.Program, error) {
	var doc programJSON
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	if doc.Arch == nil {
		return nil, fmt.Errorf("serialize: program has no architecture")
	}
	g := graph.New(doc.Graph.Name, doc.Graph.DType)
	for _, l := range doc.Graph.Layers {
		op, err := decodeOp(l.Op)
		if err != nil {
			return nil, err
		}
		g.DType = l.DType
		if _, err := g.Add(l.Name, op, l.Inputs...); err != nil {
			return nil, fmt.Errorf("serialize: %w", err)
		}
	}
	g.DType = doc.Graph.DType
	p := &plan.Program{
		Arch:        doc.Arch,
		Graph:       g,
		Cores:       doc.Cores,
		NumBarriers: doc.NumBarriers,
		Directions:  doc.Directions,
		Strata:      doc.Strata,
	}
	if err := doc.Arch.Validate(); err != nil {
		return nil, fmt.Errorf("serialize: %w", err)
	}
	return p, p.Validate()
}

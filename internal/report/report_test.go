package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/sim"
)

func compiled(t *testing.T) (*core.Result, func() *bytes.Buffer) {
	t.Helper()
	g := models.TinyCNN()
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	return res, func() *bytes.Buffer { return &bytes.Buffer{} }
}

func TestLayersTable(t *testing.T) {
	g := models.TinyCNN()
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Layers(&buf, g, res); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"conv1", "direction", "MMACs", "spatial", "h1"} {
		if !strings.Contains(s, want) {
			t.Errorf("layers table missing %q:\n%s", want, s)
		}
	}
	// One row per non-input layer.
	rows := strings.Count(s, "\n") - 1
	if rows != g.Len()-1 {
		t.Errorf("rows = %d, want %d", rows, g.Len()-1)
	}
}

func TestDOT(t *testing.T) {
	g := models.ConvChain(4, 48, 48, 8)
	res, err := core.Compile(g, arch.Exynos2100Like(), core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DOT(&buf, g, res); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "digraph") || !strings.HasSuffix(strings.TrimSpace(s), "}") {
		t.Error("not a digraph")
	}
	// Edges for every graph edge.
	edges := strings.Count(s, "->")
	want := 0
	for _, l := range g.Layers() {
		want += len(l.Inputs)
	}
	if edges != want {
		t.Errorf("edges = %d, want %d", edges, want)
	}
	// The chain forms a stratum cluster.
	if !strings.Contains(s, "cluster_stratum") {
		t.Error("no stratum cluster in DOT output")
	}
	if !strings.Contains(s, "lightblue") {
		t.Error("no direction coloring")
	}
}

func TestInstrSummary(t *testing.T) {
	res, _ := compiled(t)
	m := InstrSummary(res.Program)
	if m["comp"] == 0 || m["ld"] == 0 {
		t.Errorf("summary = %v", m)
	}
	total := 0
	for _, n := range m {
		total += n
	}
	if total != res.Program.NumInstrs() {
		t.Errorf("summary total %d != %d", total, res.Program.NumInstrs())
	}
}

func TestUtilizationTable(t *testing.T) {
	res, buf := compiled(t)
	col := &metrics.Collector{}
	out, err := sim.Run(res.Program, sim.Config{Hook: col})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Program.Arch
	cores := make([]int, a.NumCores())
	for i := range cores {
		cores[i] = i
	}
	rep := metrics.BuildReport(a, []sim.Placement{{Program: res.Program, Cores: cores}}, &out.Stats, col)
	rep.AttachCompile(res)
	rep.Model = "TinyCNN"
	rep.Config = "+Stratum"
	w := buf()
	if err := Utilization(w, rep); err != nil {
		t.Fatal(err)
	}
	s := w.String()
	for _, want := range []string{"TinyCNN", "+Stratum", "compute", "P0", "SPM P0", "bus:", "compile:"} {
		if !strings.Contains(s, want) {
			t.Errorf("utilization table missing %q:\n%s", want, s)
		}
	}
	// One row per core plus one SPM line per core.
	if n := strings.Count(s, "SPM P"); n != a.NumCores() {
		t.Errorf("%d SPM lines for %d cores", n, a.NumCores())
	}
}

package loadgen

import (
	"sync"
	"testing"
)

var benchMixOnce struct {
	sync.Once
	rm  *Mix
	err error
}

// benchMix resolves a two-line replay cache once per test binary; the
// models are small so the one-time compile+sim cost stays low, and the
// replay hot path being measured is identical for any mix.
func benchMix(b testing.TB) *Mix {
	benchMixOnce.Do(func() {
		benchMixOnce.rm, benchMixOnce.err = Resolve([]MixEntry{
			{Model: "TinyCNN", Weight: 3},
			{Model: "ShuffleNetV2", Weight: 1},
		})
	})
	if benchMixOnce.err != nil {
		b.Fatal(benchMixOnce.err)
	}
	return benchMixOnce.rm
}

// BenchmarkLoadgen measures the replay hot path: virtual-time Poisson
// arrivals through the sharded device pool, one op = one replayed
// request. The acceptance floor is >= 1e6 requests/second with ~0
// allocs/request; the per-run shard setup amortizes to zero over b.N.
func BenchmarkLoadgen(b *testing.B) {
	rm := benchMix(b)
	o := Options{Requests: int64(b.N), Seed: 1}.withDefaults()
	rate := 0.9 * rm.CapacityRPS(o.Devices)
	b.ReportAllocs()
	b.ResetTimer()
	p := replayPoint(rm, o, rate)
	b.StopTimer()
	if p.Requests != int64(b.N) {
		b.Fatalf("replayed %d requests, want %d", p.Requests, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// BenchmarkLoadgenBatched is the same path with the batching window
// open — the coalescing bookkeeping must stay allocation-free too.
func BenchmarkLoadgenBatched(b *testing.B) {
	rm := benchMix(b)
	o := Options{Requests: int64(b.N), Seed: 1, BatchWindowUS: 500}.withDefaults()
	rate := 2 * rm.CapacityRPS(o.Devices)
	b.ReportAllocs()
	b.ResetTimer()
	p := replayPoint(rm, o, rate)
	b.StopTimer()
	if p.Requests != int64(b.N) {
		b.Fatalf("replayed %d requests, want %d", p.Requests, b.N)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "req/s")
}

// TestReplayAllocsPerRequest pins the ~0 allocs/request contract
// deterministically (benchmarks only report; this gates): one full
// 200k-request point may allocate only its fixed per-run setup — shard
// state, histograms, goroutines — under 500 allocations total, i.e.
// < 0.0025 allocs/request.
func TestReplayAllocsPerRequest(t *testing.T) {
	rm := benchMix(t)
	o := Options{Requests: 200_000, Seed: 1}.withDefaults()
	rate := 0.9 * rm.CapacityRPS(o.Devices)
	allocs := testing.AllocsPerRun(3, func() {
		p := replayPoint(rm, o, rate)
		if p.Requests != o.Requests {
			t.Fatalf("replayed %d, want %d", p.Requests, o.Requests)
		}
	})
	if allocs > 500 {
		t.Errorf("one 200k-request point allocated %v times (> 500): the replay hot path is allocating per request", allocs)
	}
}

// TestReplayThroughputFloor is a soft sanity check on the 1M req/s
// acceptance floor: it logs the measured rate and only fails below a
// tenth of the floor, so CI noise cannot flake it while a real
// regression (an accidental allocation or sim call per request)
// still trips.
func TestReplayThroughputFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	rm := benchMix(t)
	o := Options{Requests: 2_000_000, Seed: 1}.withDefaults()
	rate := 0.9 * rm.CapacityRPS(o.Devices)
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			replayPoint(rm, o, rate)
		}
	})
	reqPerSec := float64(o.Requests) * float64(res.N) / res.T.Seconds()
	t.Logf("replay throughput: %.2fM requests/sec (acceptance floor 1M)", reqPerSec/1e6)
	if reqPerSec < 100_000 {
		t.Errorf("replay throughput %.0f req/s is below even 0.1M — hot path regressed", reqPerSec)
	}
}

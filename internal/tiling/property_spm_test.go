package tiling_test

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/spm"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// SPM-capacity properties of the tiler and the compile driver's
// fallback chain (external test package: the end-to-end properties
// need core and sim, which import tiling).

// Property: a scaled-down budget is a soft target. For random conv
// geometries and random budgets at or below the core's physical SPM,
// PlanSubLayer either produces a plan or fails with a typed
// *CannotFitError whose MinNeed exceeds the physical capacity — i.e.
// only hardware-unfittable geometries are rejected; a merely-missed
// soft budget still plans (at the minimum-footprint grid) and leaves
// the verdict to the simulator admission check.
func TestSoftBudgetOnlyRejectsHardwareUnfit(t *testing.T) {
	f := func(hRaw, cRaw, outCRaw, spmRaw, budRaw, kSel uint8) bool {
		h := int(hRaw%96) + 8
		c := int(cRaw%48) + 1
		outC := (int(outCRaw%32) + 1) * 4
		k := []int{1, 3, 5}[int(kSel)%3]
		pad := k / 2

		g := graph.New("q", tensor.Int8)
		in := g.Input("input", tensor.NewShape(h, h, c))
		id, err := g.Add("conv", ops.NewConv2D(k, k, 1, 1, outC,
			ops.Padding{Top: pad, Bottom: pad, Left: pad, Right: pad}), in)
		if err != nil {
			return true
		}
		l := g.Layer(id)

		a := arch.Exynos2100Like()
		hard := int64(64<<10) << (spmRaw % 6) // 64KB .. 2MB
		for i := range a.Cores {
			a.Cores[i].SPMBytes = hard
		}
		// Budget between 10% and 100% of the physical capacity.
		budget := hard * int64(budRaw%91+10) / 100

		plans := partition.New(g, a).PlanAll()
		tiler := tiling.New(a)
		inShapes := g.InShapes(l)
		for coreID, sub := range plans[id].Subs {
			if sub.Empty() {
				continue
			}
			_, err := tiler.PlanSubLayer(l, inShapes, sub, coreID, tiling.Options{
				Direction: plans[id].Direction,
				Budget:    budget,
			})
			if err == nil {
				continue
			}
			var cf *tiling.CannotFitError
			if !errors.As(err, &cf) {
				return false // failures must be typed
			}
			if cf.MinNeed <= hard {
				return false // soft budget rejected a hardware-fittable grid
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: the fallback chain always terminates, and its two outcomes
// are exactly "admissible schedule" or "typed *core.UnfitError". When
// it produces a schedule, the simulator-measured liveness-exact peak
// (spm.Profile over a full trace — the authority the admission check
// mirrors) fits every core's capacity.
func TestFallbackChainTerminatesAdmissibly(t *testing.T) {
	f := func(hRaw, cRaw, depthRaw, spmRaw uint8, widths [4]uint8) bool {
		h := int(hRaw%48) + 16
		c := int(cRaw%16) + 1
		depth := int(depthRaw%4) + 1

		g := graph.New("q", tensor.Int8)
		prev := g.Input("input", tensor.NewShape(h, h, c))
		for d := 0; d < depth; d++ {
			outC := (int(widths[d]%24) + 1) * 4
			id, err := g.Add(fmt.Sprintf("conv%d", d), ops.NewConv2D(3, 3, 1, 1, outC,
				ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
			if err != nil {
				return true
			}
			prev = id
		}

		a := arch.Exynos2100Like()
		// 16KB .. 512KB: small enough that the chain's deeper rungs and
		// the terminal UnfitError both get exercised.
		cap := int64(16<<10) << (spmRaw % 6)
		for i := range a.Cores {
			a.Cores[i].SPMBytes = cap
		}

		res, err := core.Compile(g, a, core.Stratum())
		if err != nil {
			var uf *core.UnfitError
			return errors.As(err, &uf)
		}
		out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
		if err != nil {
			return false // admitted schedules must simulate cleanly
		}
		profiles, err := spm.Profile(res.Program, out.Trace)
		if err != nil {
			return false
		}
		for _, p := range profiles {
			if !p.Fits() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: an injected over-budget schedule fails admission the same
// way everywhere — both engines return a *SPMOverflowError, the two
// errors agree on every field, and repeated runs reproduce them
// exactly.
func TestOverBudgetScheduleDeterministicOnBothEngines(t *testing.T) {
	a := arch.Exynos2100Like()
	g := graph.New("q", tensor.Int8)
	in := g.Input("input", tensor.NewShape(56, 56, 16))
	prev := in
	for d := 0; d < 2; d++ {
		id, err := g.Add(fmt.Sprintf("conv%d", d), ops.NewConv2D(3, 3, 1, 1, 32,
			ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
		if err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	res, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	// Measure the schedule's real peak, then cap the cores below it: the
	// fixed schedule is over-budget by construction and the admission
	// check must trip.
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := spm.Profile(res.Program, out.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var peak int64
	for _, p := range profiles {
		if p.PeakBytes > peak {
			peak = p.PeakBytes
		}
	}
	for _, capacity := range []int64{peak - 1, peak / 2, peak / 4, peak / 16} {
		for i := range res.Program.Arch.Cores {
			res.Program.Arch.Cores[i].SPMBytes = capacity
		}
		overflow := func(run func() error) *sim.SPMOverflowError {
			t.Helper()
			err := run()
			var oe *sim.SPMOverflowError
			if !errors.As(err, &oe) {
				t.Fatalf("capacity %d: got %v, want *sim.SPMOverflowError", capacity, err)
			}
			return oe
		}
		ev1 := overflow(func() error { _, err := sim.Run(res.Program, sim.Config{}); return err })
		ev2 := overflow(func() error { _, err := sim.Run(res.Program, sim.Config{}); return err })
		ref := overflow(func() error { _, err := sim.RunReference(res.Program, sim.Config{}); return err })
		for _, got := range []*sim.SPMOverflowError{ev2, ref} {
			if got.Core != ev1.Core || got.Cycle != ev1.Cycle ||
				got.LiveBytes != ev1.LiveBytes || got.CapacityBytes != ev1.CapacityBytes ||
				len(got.Buffers) != len(ev1.Buffers) {
				t.Errorf("capacity %d: engines disagree: %v vs %v", capacity, got, ev1)
			}
		}
		// NoSPMCheck tolerates the same schedule (the npusim/npubench
		// -strict-spm=false escape hatch).
		if _, err := sim.Run(res.Program, sim.Config{NoSPMCheck: true}); err != nil {
			t.Errorf("capacity %d: NoSPMCheck run failed: %v", capacity, err)
		}
	}
	// Restore the shared arch fields for any test that might reuse it.
	for i := range res.Program.Arch.Cores {
		res.Program.Arch.Cores[i].SPMBytes = arch.Exynos2100Like().Cores[i].SPMBytes
	}
}

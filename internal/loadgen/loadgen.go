// Package loadgen is the fleet-scale load generator: it drives
// millions of simulated inference requests through pools of simulated
// devices, against either the in-process engine (replay mode) or a
// live npusim -serve endpoint (live mode), and reports throughput and
// tail-latency percentiles per offered load.
//
// Replay mode is the performance core. Simulation is deterministic, so
// each distinct (model, cores, config) point in the request mix is
// compiled and simulated exactly once — through the fingerprint-keyed
// compile cache — and every subsequent request replays the cached
// latency into a virtual-time device model: a million requests cost a
// handful of real sims plus a tight, allocation-free replay loop. The
// stream is sharded; each shard owns its slice of the device pool, an
// independent splitmix64 RNG, and per-shard metrics.Histogram
// instances that merge exactly at the end, so the hot path touches no
// cross-shard state at all.
//
// The device model: every simulated device runs inferences serially.
// A request is routed to the least-loaded device of its shard (or
// joins an open same-model batch, below), starts when the device
// frees, and completes one cached service time later; latency is
// completion minus arrival. With a batching window W > 0, requests for
// the same model arriving within W µs of a batch's first member
// coalesce: the batch issues once the window closes (or the batch
// fills), and each item beyond the first costs BatchDiscount × the
// solo service time — back-to-back same-model inference keeps weights
// resident in SPM, so the marginal item skips the weight reload.
//
// Arrival processes: "poisson" is an open loop — arrivals at the
// offered rate regardless of completions, the fleet-scale regime where
// queues actually grow — and "closed" is a fixed population of clients
// that each issue, wait, think, and reissue.
//
// Determinism: replay mode is a pure function of (mix, Options). The
// shard count is part of the RNG stream layout and defaults to a fixed
// 8 (not GOMAXPROCS), so the same seed produces byte-identical reports
// on any host, at any -j.
package loadgen

import (
	"fmt"
	"math"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// MixEntry is one weighted component of the request mix.
type MixEntry struct {
	// Model names a benchmark network (models.ByName).
	Model string
	// Weight is the entry's relative share of requests (normalized
	// over the mix; must be > 0).
	Weight float64
	// Cores selects the architecture (0 → 3, the Exynos-2100-like).
	Cores int
	// Config is the optimization configuration (empty → "stratum").
	Config string
}

// DefaultMix is the Table 2 fleet mix: the always-on interactive
// models (keyboard/camera classification, detection) dominate, the
// heavy segmentation networks trail — the concurrent-mobile-workload
// shape Puzzle motivates.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Model: "MobileNetV2", Weight: 0.30},
		{Model: "MobileNetV2-SSD", Weight: 0.20},
		{Model: "MobileDet-SSD", Weight: 0.20},
		{Model: "InceptionV3", Weight: 0.10},
		{Model: "DeepLabV3+", Weight: 0.10},
		{Model: "UNet", Weight: 0.10},
	}
}

// Options configures a load-generation run. The zero value picks the
// documented defaults.
type Options struct {
	// Requests is the exact number of requests per load point
	// (default 1e6 in replay mode; live callers should set it).
	Requests int64
	// Rates lists the offered loads (requests/second) to sweep. Empty
	// derives points from the mix's estimated capacity × Utilizations.
	Rates []float64
	// Utilizations are the capacity multiples used when Rates is empty
	// (default 0.3, 0.6, 0.9, 1.2, 2.0).
	Utilizations []float64
	// Devices is the simulated device-pool size (default 16), split
	// across shards.
	Devices int
	// Shards is the parallelism grain. It is part of the deterministic
	// RNG layout, so it defaults to a fixed 8 regardless of host size;
	// the actual goroutine count is still bounded by parallel.Workers.
	Shards int
	// Arrival is the arrival process: "poisson" (open loop, default)
	// or "closed".
	Arrival string
	// Clients is the closed-loop population (default 4 × Devices).
	Clients int
	// ThinkUS is the closed-loop mean think time between a completion
	// and the client's next request (exponential; 0 = reissue at once).
	ThinkUS float64
	// BatchWindowUS is the per-device batching window (0 = no
	// batching, open loop only).
	BatchWindowUS float64
	// BatchMax caps requests coalesced into one batch (default 16,
	// hard cap 64).
	BatchMax int
	// BatchDiscount is the marginal cost of each same-model item after
	// a batch's first, as a fraction of the solo service time
	// (default 0.85).
	BatchDiscount float64
	// MaxRetries bounds live-mode re-issues of a request the server
	// shed with 429 or 503: each retry backs off exponentially with
	// seeded jitter and honors the server's Retry-After as a floor.
	// 0 (default) disables retries — every shed counts as Failed.
	MaxRetries int
	// Seed seeds every arrival process and mix sampler. Two replay
	// runs with equal mix, Options, and Seed produce byte-identical
	// reports.
	Seed uint64
}

const batchCap = 64

func (o Options) withDefaults() Options {
	if o.Requests <= 0 {
		o.Requests = 1_000_000
	}
	if len(o.Utilizations) == 0 {
		o.Utilizations = []float64{0.3, 0.6, 0.9, 1.2, 2.0}
	}
	if o.Devices <= 0 {
		o.Devices = 16
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Shards > o.Devices {
		o.Shards = o.Devices
	}
	if int64(o.Shards) > o.Requests && o.Requests > 0 {
		o.Shards = int(o.Requests)
	}
	if o.Arrival == "" {
		o.Arrival = ArrivalPoisson
	}
	if o.Clients <= 0 {
		o.Clients = 4 * o.Devices
	}
	if o.BatchMax <= 0 {
		o.BatchMax = 16
	}
	if o.BatchMax > batchCap {
		o.BatchMax = batchCap
	}
	if o.BatchDiscount <= 0 {
		o.BatchDiscount = 0.85
	}
	return o
}

// Arrival process names.
const (
	ArrivalPoisson = "poisson"
	ArrivalClosed  = "closed"
)

// resolved is one mix entry with its replay-cache line: the bit-exact
// service latency of one sim of that (model, cores, config) point.
type resolved struct {
	MixEntry
	prob      float64 // normalized weight
	cum       float64 // cumulative probability upper bound
	serviceUS float64 // cached sim latency, bit-exact
	cycles    float64 // cached sim total cycles
}

// Mix is a resolved request mix: the sim-result replay cache for a
// run. Build one with Resolve.
type Mix struct {
	entries []resolved
}

// Resolve compiles and simulates each distinct (model, cores, config)
// point of the mix exactly once (compiles dedupe further through the
// fingerprint-keyed compile cache) and normalizes the weights. This is
// the only place replay mode runs real sims.
func Resolve(mix []MixEntry) (*Mix, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	var totalW float64
	for i, e := range mix {
		if e.Weight <= 0 || math.IsNaN(e.Weight) || math.IsInf(e.Weight, 0) {
			return nil, fmt.Errorf("loadgen: mix entry %d (%s) has non-positive weight %v", i, e.Model, e.Weight)
		}
		totalW += e.Weight
	}

	entries, err := parallel.Map(len(mix), func(i int) (resolved, error) {
		e := mix[i]
		if e.Cores == 0 {
			e.Cores = 3
		}
		if e.Config == "" {
			e.Config = "stratum"
		}
		m, err := models.ByName(e.Model)
		if err != nil {
			return resolved{}, err
		}
		a, err := cliutil.Arch(e.Cores)
		if err != nil {
			return resolved{}, err
		}
		opt, err := cliutil.Config(e.Config)
		if err != nil {
			return resolved{}, err
		}
		res, err := core.CompileCached(m.Build(), a, opt)
		if err != nil {
			return resolved{}, fmt.Errorf("loadgen: compile %s/%s/%d: %w", e.Model, e.Config, e.Cores, err)
		}
		out, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			return resolved{}, fmt.Errorf("loadgen: sim %s/%s/%d: %w", e.Model, e.Config, e.Cores, err)
		}
		return resolved{
			MixEntry:  e,
			serviceUS: out.Stats.LatencyMicros(a.ClockMHz),
			cycles:    out.Stats.TotalCycles,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	var cum float64
	for i := range entries {
		entries[i].prob = mix[i].Weight / totalW
		cum += entries[i].prob
		entries[i].cum = cum
	}
	entries[len(entries)-1].cum = 1 // guard float drift at the top end
	return &Mix{entries: entries}, nil
}

// CapacityRPS estimates the device pool's saturation throughput:
// devices divided by the mix's mean service time.
func (m *Mix) CapacityRPS(devices int) float64 {
	var meanUS float64
	for _, e := range m.entries {
		meanUS += e.prob * e.serviceUS
	}
	if meanUS <= 0 {
		return 0
	}
	return float64(devices) / (meanUS * 1e-6)
}

// ServiceUS returns the cached service latency of entry i — the value
// every replayed request of that entry reuses. Tests cross-check it
// bit-identical against a fresh compile+sim.
func (m *Mix) ServiceUS(i int) float64 { return m.entries[i].serviceUS }

// Entries returns the resolved mix entries (defaults filled in).
func (m *Mix) Entries() []MixEntry {
	out := make([]MixEntry, len(m.entries))
	for i, e := range m.entries {
		out[i] = e.MixEntry
	}
	return out
}

// RunReplay executes the full replay-mode sweep: resolve the mix once,
// then replay Requests requests per offered-load point. The returned
// report is a pure function of the arguments (see the package doc on
// determinism).
func RunReplay(mix []MixEntry, o Options) (*Report, error) {
	o = o.withDefaults()
	rm, err := Resolve(mix)
	if err != nil {
		return nil, err
	}
	return runResolved(rm, o)
}

// runResolved is RunReplay after mix resolution (benchmarks call it
// directly to keep compile/sim out of the timed region).
func runResolved(rm *Mix, o Options) (*Report, error) {
	o = o.withDefaults()
	rep := newReport("replay", rm, o)
	switch o.Arrival {
	case ArrivalPoisson:
		rates := o.Rates
		if len(rates) == 0 {
			capRPS := rm.CapacityRPS(o.Devices)
			for _, u := range o.Utilizations {
				rates = append(rates, capRPS*u)
			}
		}
		for _, rate := range rates {
			if rate <= 0 {
				return nil, fmt.Errorf("loadgen: non-positive offered rate %v", rate)
			}
			rep.Points = append(rep.Points, replayPoint(rm, o, rate))
		}
	case ArrivalClosed:
		rep.Points = append(rep.Points, replayPoint(rm, o, 0))
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (poisson, closed)", o.Arrival)
	}
	return rep, nil
}

// splitRange gives shard s of nShards its contiguous share of n items:
// sizes differ by at most one, low shards take the remainder.
func splitRange(n int64, s, nShards int) int64 {
	base := n / int64(nShards)
	if int64(s) < n%int64(nShards) {
		return base + 1
	}
	return base
}

package ops

import (
	"testing"

	"repro/internal/tensor"
)

// TestUniformOpContract drives the full Op interface across every
// operator with a valid input, checking the cross-cutting contract:
// MACs scale with the output extent, KernelBytes scale with output
// channels (and only with them), InputRegion stays in bounds, and the
// partition-legality and channel-wise classifications are internally
// consistent.
func TestUniformOpContract(t *testing.T) {
	in16 := shape(16, 16, 8)
	cases := []struct {
		op          Op
		ins         []tensor.Shape
		hasKernel   bool
		channelWise bool
	}{
		{NewConv2D(3, 3, 1, 1, 8, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), []tensor.Shape{in16}, true, false},
		{NewDepthwiseConv2D(3, 3, 1, 1, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), []tensor.Shape{in16}, true, true},
		{TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: 8}, []tensor.Shape{in16}, true, false},
		{MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, []tensor.Shape{in16}, false, true},
		{AvgPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, []tensor.Shape{in16}, false, true},
		{GlobalAvgPool{}, []tensor.Shape{in16}, false, true},
		{FullyConnected{OutC: 4}, []tensor.Shape{shape(1, 1, 8)}, true, false},
		{Add{Arity: 2}, []tensor.Shape{in16, in16}, false, false},
		{Mul{}, []tensor.Shape{in16, in16}, false, false},
		{Concat{Arity: 2}, []tensor.Shape{in16, in16}, false, false},
		{Activation{Func: ReLU}, []tensor.Shape{in16}, false, false},
		{Softmax{}, []tensor.Shape{in16}, false, false},
		{Resize{ScaleH: 2, ScaleW: 2, Mode: Nearest}, []tensor.Shape{in16}, false, true},
		{Crop{Top: 1, Bottom: 1, Left: 1, Right: 1}, []tensor.Shape{in16}, false, false},
	}

	for _, c := range cases {
		c := c
		t.Run(c.op.Kind().String(), func(t *testing.T) {
			out, err := c.op.OutShape(c.ins)
			if err != nil {
				t.Fatalf("OutShape: %v", err)
			}
			whole := tensor.WholeRegion(out)

			// Wrong arity must be rejected (except Input, not listed).
			if _, err := c.op.OutShape(append(append([]tensor.Shape{}, c.ins...), in16, in16, in16)); err == nil {
				t.Error("excess inputs accepted")
			}

			// MACs: full >= half extent along H (when H splittable).
			full := c.op.MACs(out, c.ins)
			if full < 0 {
				t.Errorf("negative MACs %d", full)
			}
			if out.H > 1 {
				half := c.op.MACs(out.WithDim(tensor.AxisH, out.H/2), c.ins)
				if half > full {
					t.Errorf("MACs not monotone: half %d > full %d", half, full)
				}
			}

			// KernelBytes: zero for kernel-less ops; proportional to
			// output channels for the rest.
			kb := c.op.KernelBytes(out, c.ins, tensor.Int8)
			if c.hasKernel && kb <= 0 {
				t.Error("kernel-bearing op reports zero kernel bytes")
			}
			if !c.hasKernel && kb != 0 {
				t.Errorf("kernel-less op reports %d kernel bytes", kb)
			}
			if c.hasKernel && out.C >= 2 {
				halfC := c.op.KernelBytes(out.WithDim(tensor.AxisC, out.C/2), c.ins, tensor.Int8)
				if halfC >= kb {
					t.Errorf("kernel bytes not split by channels: %d >= %d", halfC, kb)
				}
				// Spatial extent must not affect kernel bytes.
				if out.H >= 2 {
					halfH := c.op.KernelBytes(out.WithDim(tensor.AxisH, out.H/2), c.ins, tensor.Int8)
					if halfH != kb {
						t.Errorf("kernel bytes vary with spatial extent: %d != %d", halfH, kb)
					}
				}
			}

			// InputRegion of the whole output stays within each input.
			for j := range c.ins {
				r := c.op.InputRegion(whole, j, c.ins)
				if !tensor.WholeRegion(c.ins[j]).Contains(r) {
					t.Errorf("input %d region %v escapes shape %v", j, r, c.ins[j])
				}
			}

			// ChannelWise classification as declared.
			if c.op.ChannelWise() != c.channelWise {
				t.Errorf("ChannelWise = %v, want %v", c.op.ChannelWise(), c.channelWise)
			}

			// At least one axis must be partitionable for every
			// operator in the set (DirNone layers cannot parallelize).
			any := false
			for _, ax := range []tensor.Axis{tensor.AxisH, tensor.AxisW, tensor.AxisC} {
				if c.op.SupportsPartition(ax) {
					any = true
				}
			}
			if !any {
				t.Error("no partitionable axis")
			}
			if c.op.String() == "" {
				t.Error("empty String()")
			}
		})
	}
}

func TestCropDetails(t *testing.T) {
	crop := Crop{Top: 2, Bottom: 1, Left: 3, Right: 1}
	out, err := crop.OutShape([]tensor.Shape{shape(10, 10, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if out != shape(7, 6, 4) {
		t.Errorf("out = %v, want 7x6x4", out)
	}
	r := crop.InputRegion(tensor.Region{Off: shape(1, 1, 0), Ext: shape(2, 2, 4)}, 0, []tensor.Shape{shape(10, 10, 4)})
	if r.Off.H != 3 || r.Off.W != 4 {
		t.Errorf("region = %v, want offset (3,4)", r)
	}
	if _, err := crop.OutShape([]tensor.Shape{shape(3, 3, 4)}); err == nil {
		t.Error("margins consuming the input accepted")
	}
}

func TestActivationNames(t *testing.T) {
	for _, f := range []ActFunc{ReLU, ReLU6, Sigmoid, HSwish, TanH} {
		if f.String() == "" || f.String()[0] == 'A' {
			t.Errorf("bad name %q", f.String())
		}
	}
	if ActFunc(99).String() == "" {
		t.Error("unknown func has empty name")
	}
}

func TestTransposeConvDetails(t *testing.T) {
	up := TransposeConv2D{KH: 3, KW: 3, StrideH: 2, StrideW: 2, OutC: 4,
		Pad: Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}
	// out = (in-1)*2 + 3 - 2 = 2*in - 1.
	out := mustOut(t, up, shape(5, 5, 2))
	if out != shape(9, 9, 4) {
		t.Errorf("out = %v, want 9x9x4", out)
	}
	if _, err := up.OutShape([]tensor.Shape{shape(1, 1, 2)}); err != nil {
		t.Errorf("1x1 input rejected: %v", err)
	}
	bad := TransposeConv2D{KH: 1, KW: 1, StrideH: 1, StrideW: 1, OutC: 4,
		Pad: Padding{Top: 3, Bottom: 3, Left: 0, Right: 0}}
	if _, err := bad.OutShape([]tensor.Shape{shape(2, 2, 2)}); err == nil {
		t.Error("non-positive output accepted")
	}
	// MACs and kernel bytes positive and channel-proportional.
	in := []tensor.Shape{shape(5, 5, 2)}
	if up.MACs(out, in) <= 0 {
		t.Error("zero MACs")
	}
	kbFull := up.KernelBytes(out, in, tensor.Int8)
	kbHalf := up.KernelBytes(out.WithDim(tensor.AxisC, 2), in, tensor.Int8)
	if kbHalf*2 != kbFull {
		t.Errorf("kernel slice %d != half of %d", kbHalf, kbFull)
	}
}

func TestMulBroadcastMACs(t *testing.T) {
	m := Mul{}
	ins := []tensor.Shape{shape(8, 8, 4), shape(1, 1, 4)}
	out := mustOut(t, m, ins...)
	if got := m.MACs(out, ins); got != out.Elems() {
		t.Errorf("MACs = %d", got)
	}
	if m.KernelBytes(out, ins, tensor.Int8) != 0 {
		t.Error("Mul has no kernel")
	}
}

func TestResizeNearestRegion(t *testing.T) {
	rz := Resize{ScaleH: 2, ScaleW: 2, Mode: Nearest}
	in := []tensor.Shape{shape(8, 8, 4)}
	r := rz.InputRegion(tensor.Region{Off: shape(4, 4, 0), Ext: shape(4, 4, 4)}, 0, in)
	if r.Off.H != 2 || r.Ext.H != 2 {
		t.Errorf("nearest region = %v, want rows [2,4)", r)
	}
	if rz.MACs(shape(4, 4, 4), in) != 64 {
		t.Errorf("nearest MACs = %d", rz.MACs(shape(4, 4, 4), in))
	}
	bl := Resize{ScaleH: 2, ScaleW: 2, Mode: Bilinear}
	if bl.MACs(shape(4, 4, 4), in) != 256 {
		t.Errorf("bilinear MACs = %d", bl.MACs(shape(4, 4, 4), in))
	}
	if bl.String() == "" || rz.String() == "" || Nearest.String() == "" || Bilinear.String() == "" {
		t.Error("empty names")
	}
}

func TestSoftmaxAndGapCosts(t *testing.T) {
	in := []tensor.Shape{shape(4, 4, 8)}
	sm := Softmax{}
	if sm.MACs(shape(4, 4, 8), in) != 4*128 {
		t.Errorf("softmax MACs = %d", sm.MACs(shape(4, 4, 8), in))
	}
	gap := GlobalAvgPool{}
	if gap.MACs(shape(1, 1, 8), in) != 8*16 {
		t.Errorf("gap MACs = %d", gap.MACs(shape(1, 1, 8), in))
	}
	if sm.KernelBytes(shape(4, 4, 8), in, tensor.Int8) != 0 ||
		gap.KernelBytes(shape(1, 1, 8), in, tensor.Int8) != 0 {
		t.Error("reduction ops have no kernels")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{7, 2, 3}, {-7, 2, -4}, {7, -2, -4}, {-7, -2, 3}, {6, 3, 2}, {-6, 3, -2},
	}
	for _, c := range cases {
		if got := floorDiv(c.a, c.b); got != c.want {
			t.Errorf("floorDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

package npu

import (
	"fmt"

	"repro/internal/sim"
)

// Workload is one network of a concurrent multi-network run: the graph,
// the global core indices it owns, and its optimization options.
type Workload struct {
	Graph   *Graph
	Cores   []int
	Options Options
}

// MultiReport is the outcome of a concurrent run.
type MultiReport struct {
	// Stats aggregates over the whole platform.
	Stats SimStats
	// PerWorkloadUS is each workload's completion time in microseconds.
	PerWorkloadUS []float64
	// Arch is the shared platform.
	Arch *Arch
}

// RunConcurrent compiles each workload for its core subset and
// simulates them together on one architecture, sharing the global
// memory bus — the multi-network concurrency scenario that motivates
// multicore NPU designs in the paper's introduction.
func RunConcurrent(a *Arch, workloads []Workload) (*MultiReport, error) {
	placements := make([]sim.Placement, len(workloads))
	for i, w := range workloads {
		sub, err := a.Subset(w.Cores)
		if err != nil {
			return nil, fmt.Errorf("workload %d: %w", i, err)
		}
		res, err := Compile(w.Graph, sub, w.Options)
		if err != nil {
			return nil, fmt.Errorf("workload %d (%s): %w", i, w.Graph.Name, err)
		}
		placements[i] = sim.Placement{Program: res.Program, Cores: w.Cores}
	}
	out, err := sim.RunConcurrent(a, placements, sim.Config{})
	if err != nil {
		return nil, err
	}
	rep := &MultiReport{Stats: out.Stats, Arch: a}
	for _, pc := range out.Stats.ProgramCycles {
		rep.PerWorkloadUS = append(rep.PerWorkloadUS, pc/float64(a.ClockMHz))
	}
	return rep, nil
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// UNet builds the original Ronneberger et al. U-Net (572x572x3, INT8):
// a four-level valid-convolution contracting path (64..512 channels),
// a 1024-channel bottleneck, and an expanding path of 2x2 up-
// convolutions with center-cropped skip connections, ending in a 1x1
// two-class head. All spatial extents match the paper's figure
// (572 -> 388 output).
func UNet() *graph.Graph {
	b := newBuilder("UNet", tensor.Int8)
	in := b.input(tensor.NewShape(572, 572, 3))

	type level struct {
		skip graph.LayerID
	}
	var skips []level

	// Contracting path.
	x := graph.LayerID(in)
	channels := []int{64, 128, 256, 512}
	for i, c := range channels {
		x = b.convValid(fmt.Sprintf("enc%d_conv1", i), x, 3, 1, c)
		x = b.convValid(fmt.Sprintf("enc%d_conv2", i), x, 3, 1, c)
		skips = append(skips, level{skip: x})
		x = b.maxpool(fmt.Sprintf("enc%d_pool", i), x, 2, 2)
	}

	// Bottleneck: 32 -> 28 at 1024 channels.
	x = b.convValid("mid_conv1", x, 3, 1, 1024)
	x = b.convValid("mid_conv2", x, 3, 1, 1024)

	// Expanding path.
	for i := len(channels) - 1; i >= 0; i-- {
		c := channels[i]
		name := fmt.Sprintf("dec%d", i)
		up := b.g.MustAdd(name+"_up",
			ops.TransposeConv2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2, OutC: c}, x)
		upShape := b.shape(up)
		skip := skips[i].skip
		skShape := b.shape(skip)
		mh := skShape.H - upShape.H
		mw := skShape.W - upShape.W
		cropped := b.g.MustAdd(name+"_crop", ops.Crop{
			Top: mh / 2, Bottom: mh - mh/2, Left: mw / 2, Right: mw - mw/2,
		}, skip)
		x = b.concat(name+"_concat", cropped, up)
		x = b.convValid(name+"_conv1", x, 3, 1, c)
		x = b.convValid(name+"_conv2", x, 3, 1, c)
	}

	// 388x388x64 -> two-class map.
	logits := b.convLinear("logits", x, 1, 1, 2)
	b.g.MustAdd("softmax", ops.Softmax{}, logits)
	return b.g
}

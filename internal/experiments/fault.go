package experiments

import (
	"errors"
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// faultLatency simulates g under a fault plan and returns the
// end-to-end latency in microseconds, recovering onto surviving cores
// when a core fails.
func faultLatency(g *graph.Graph, a *arch.Arch, opt core.Options, p *fault.Plan) (float64, error) {
	res, err := core.CompileCached(g, a, opt)
	if err != nil {
		return 0, err
	}
	cfg := simConfig()
	cfg.Faults = p
	out, err := sim.Run(res.Program, cfg)
	if err == nil {
		return out.Stats.LatencyMicros(a.ClockMHz), nil
	}
	var cf *sim.CoreFailure
	if !errors.As(err, &cf) {
		return 0, err
	}
	rec, err := recovery.Recover(g, a, cf, recovery.Options{Opt: opt, Sim: cfg})
	if err != nil {
		return 0, err
	}
	return rec.TotalCycles / float64(a.ClockMHz), nil
}

// FaultRateSweep measures the latency-degradation curve under
// transient DMA drops for the three Table 3 configurations: every
// dropped transfer re-consumes bus bandwidth after an exponential
// backoff, so the curve steepens with the configuration's traffic.
func FaultRateSweep(model string) ([]AblationPoint, error) {
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	g := m.Build()
	a := arch.Exynos2100Like()
	rates := []float64{0, 0.02, 0.05, 0.10, 0.20}
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}
	return parallel.Map(len(rates)*len(opts), func(i int) (AblationPoint, error) {
		rate, opt := rates[i/len(opts)], opts[i%len(opts)]
		us, err := faultLatency(g, a, opt, &fault.Plan{Seed: 1, DropRate: rate})
		if err != nil {
			return AblationPoint{}, fmt.Errorf("fault sweep %g %s: %w", rate, opt.Name(), err)
		}
		// Percent, so printSweep's one-decimal column keeps the
		// 2% and 5% rows distinguishable.
		return AblationPoint{Param: 100 * rate, Config: opt.Name(), LatencyUS: us}, nil
	})
}

// DeathRow is one configuration's exposure to a mid-run core death.
type DeathRow struct {
	Config           string
	CleanUS          float64
	DegradedUS       float64 // failed attempt + re-dispatch + recovered rerun
	CheckpointLayers int     // layers safely published before the failure
	ReExecuted       int     // layers the recovery had to recompute
}

// DeathSweep kills one core halfway through a clean run under each
// configuration and measures the recovery cost. It quantifies the
// stratum trade-off the paper never had to face: Base stores every
// layer to global memory and resumes from a deep checkpoint, while
// +Halo/+Stratum forward intermediates through SPM across many layers
// without publishing — a dead core loses all of it, forcing a restart.
func DeathSweep(g *graph.Graph) ([]DeathRow, error) {
	a := arch.Exynos2100Like()
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}
	return parallel.Map(len(opts), func(i int) (DeathRow, error) {
		opt := opts[i]
		res, err := core.CompileCached(g, a, opt)
		if err != nil {
			return DeathRow{}, err
		}
		clean, err := sim.Run(res.Program, simConfig())
		if err != nil {
			return DeathRow{}, err
		}
		plan := &fault.Plan{Deaths: []fault.Death{{Core: 1, AtCycle: 0.5 * clean.Stats.TotalCycles}}}
		fcfg := simConfig()
		fcfg.Faults = plan
		_, err = sim.Run(res.Program, fcfg)
		var cf *sim.CoreFailure
		if !errors.As(err, &cf) {
			return DeathRow{}, fmt.Errorf("death sweep %s: expected core failure, got %v", opt.Name(), err)
		}
		rec, err := recovery.Recover(g, a, cf, recovery.Options{Opt: opt, Sim: fcfg})
		if err != nil {
			return DeathRow{}, fmt.Errorf("death sweep %s: %w", opt.Name(), err)
		}
		return DeathRow{
			Config:           opt.Name(),
			CleanUS:          clean.Stats.LatencyMicros(a.ClockMHz),
			DegradedUS:       rec.TotalCycles / float64(a.ClockMHz),
			CheckpointLayers: len(rec.Completed),
			ReExecuted:       rec.ReExecutedLayers(),
		}, nil
	})
}

func printDeathRows(w io.Writer, rows []DeathRow) {
	fmt.Fprintf(w, "%-10s %10s %12s %12s %12s %10s\n",
		"config", "clean", "degraded", "slowdown", "checkpoint", "re-exec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8.1fus %10.1fus %11.2fx %12d %10d\n",
			r.Config, r.CleanUS, r.DegradedUS, r.DegradedUS/r.CleanUS,
			r.CheckpointLayers, r.ReExecuted)
	}
}

// PrintFaults renders ablation A11: graceful degradation under faults.
func PrintFaults(w io.Writer, model string) error {
	fmt.Fprintf(w, "Ablation A11: DMA drop rate vs latency (%s, latency us)\n", model)
	points, err := FaultRateSweep(model)
	if err != nil {
		return err
	}
	printSweep(w, points, "drop_%")

	fmt.Fprintf(w, "\nAblation A11: core death at 50%% of clean latency (%s)\n", model)
	m, err := models.ByName(model)
	if err != nil {
		return err
	}
	rows, err := DeathSweep(m.Build())
	if err != nil {
		return err
	}
	printDeathRows(w, rows)

	// A branching model stores at every residual junction, hiding the
	// stratum exposure; a deep SAME-conv chain is the workload strata
	// were built for, and there the trade-off is stark: Base resumes
	// from its per-layer stores while the forwarding configurations
	// restart from the input.
	chain := models.ConvChain(12, 96, 96, 32)
	fmt.Fprintf(w, "\nAblation A11: core death exposure on %s (strata span layers without stores)\n", chain.Name)
	rows, err = DeathSweep(chain)
	if err != nil {
		return err
	}
	printDeathRows(w, rows)
	return nil
}

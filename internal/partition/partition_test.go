package partition

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

func convGraph() (*graph.Graph, graph.LayerID) {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(64, 64, 32))
	c := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 64,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	return g, c
}

func TestDirectionStringsAndAxis(t *testing.T) {
	if DirSpatialH.Axis() != tensor.AxisH || DirSpatialW.Axis() != tensor.AxisW || DirChannel.Axis() != tensor.AxisC {
		t.Error("Axis mapping wrong")
	}
	if !DirSpatialH.Spatial() || DirChannel.Spatial() {
		t.Error("Spatial classification wrong")
	}
	for _, d := range []Direction{DirNone, DirSpatialH, DirSpatialW, DirChannel} {
		if d.String() == "" {
			t.Error("empty direction name")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DirNone.Axis must panic")
		}
	}()
	DirNone.Axis()
}

func TestPlanConvSpatialDefault(t *testing.T) {
	g, c := convGraph()
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	if plan.Direction != DirSpatialH {
		t.Fatalf("direction = %v (%s), want spatial-H", plan.Direction, plan.Reason)
	}
	if len(plan.Subs) != 3 {
		t.Fatalf("subs = %d", len(plan.Subs))
	}
	// Regions must tile the output exactly: disjoint and covering.
	total := int64(0)
	for i, s := range plan.Subs {
		total += s.Out.Elems()
		for j := i + 1; j < len(plan.Subs); j++ {
			if !s.Empty() && !plan.Subs[j].Empty() && s.Out.Overlaps(plan.Subs[j].Out) {
				t.Errorf("subs %d and %d overlap", i, j)
			}
		}
	}
	if total != g.Layer(c).OutShape.Elems() {
		t.Errorf("regions cover %d elems, want %d", total, g.Layer(c).OutShape.Elems())
	}
	// Spatial partition: every core reads all input channels; interior
	// cores need halo rows beyond their share.
	for _, s := range plan.Subs {
		if s.Empty() {
			continue
		}
		if s.In[0].Ext.C != 32 {
			t.Errorf("core %d input channels %d, want 32", s.Core, s.In[0].Ext.C)
		}
		if s.In[0].Ext.H < s.Out.Ext.H {
			t.Errorf("core %d input rows %d < output rows %d", s.Core, s.In[0].Ext.H, s.Out.Ext.H)
		}
	}
}

func TestPlanInputLayer(t *testing.T) {
	g, _ := convGraph()
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(0))
	if plan.Direction != DirNone || plan.Subs != nil {
		t.Errorf("input plan = %+v", plan)
	}
}

func TestChannelWiseOpPrefersChannel(t *testing.T) {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(56, 56, 192))
	dw := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(dw))
	if plan.Direction != DirChannel {
		t.Errorf("depthwise direction = %v (%s), want channel (h4)", plan.Direction, plan.Reason)
	}
	// Channel chunks must respect the 32-channel max alignment.
	for i, s := range plan.Subs[:len(plan.Subs)-1] {
		if !s.Empty() && s.Out.Ext.C%32 != 0 {
			t.Errorf("core %d channel chunk %d not 32-aligned", i, s.Out.Ext.C)
		}
	}
}

func TestShallowShapePrefersChannel(t *testing.T) {
	// 2x2 spatial output cannot feed 3 cores; channel is deep.
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(2, 2, 512))
	c := g.MustAdd("conv", ops.NewConv2D(1, 1, 1, 1, 512, ops.Padding{}), in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	if plan.Direction != DirChannel {
		t.Errorf("direction = %v (%s), want channel (h3)", plan.Direction, plan.Reason)
	}
}

func TestHugeKernelPrefersChannel(t *testing.T) {
	// 1x1 conv with massive fan-out: kernel dwarfs the input (h2).
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(32, 32, 16))
	c := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 2048,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	if plan.Direction != DirChannel {
		t.Errorf("direction = %v (%s), want channel (h2)", plan.Direction, plan.Reason)
	}
}

func TestSoftmaxForcedSpatial(t *testing.T) {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(64, 64, 21))
	sm := g.MustAdd("softmax", ops.Softmax{}, in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(sm))
	if plan.Direction != DirSpatialH {
		t.Errorf("softmax direction = %v, want spatial", plan.Direction)
	}
}

func TestFCForcedChannel(t *testing.T) {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(1, 1, 2048))
	fc := g.MustAdd("fc", ops.FullyConnected{OutC: 1000}, in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(fc))
	if plan.Direction != DirChannel {
		t.Errorf("fc direction = %v, want channel", plan.Direction)
	}
}

func TestUnpartitionableRunsOnOneCore(t *testing.T) {
	// A 1x1x1 output admits no split anywhere.
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(4, 4, 1))
	gp := g.MustAdd("gap", ops.GlobalAvgPool{}, in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(gp))
	if plan.Direction != DirNone {
		t.Fatalf("direction = %v, want none", plan.Direction)
	}
	nonEmpty := 0
	for _, s := range plan.Subs {
		if !s.Empty() {
			nonEmpty++
			if s.Out.Ext != g.Layer(gp).OutShape {
				t.Errorf("single sub must own whole output, got %v", s.Out)
			}
		}
	}
	if nonEmpty != 1 {
		t.Errorf("nonEmpty = %d, want 1", nonEmpty)
	}
}

func TestForcedModes(t *testing.T) {
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(56, 56, 192))
	dw := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)

	ps := New(g, arch.Exynos2100Like())
	ps.Mode = ForceSpatial
	if plan := ps.PlanLayer(g.Layer(dw)); plan.Direction != DirSpatialH {
		t.Errorf("ForceSpatial gave %v", plan.Direction)
	}
	pc := New(g, arch.Exynos2100Like())
	pc.Mode = ForceChannel
	if plan := pc.PlanLayer(g.Layer(dw)); plan.Direction != DirChannel {
		t.Errorf("ForceChannel gave %v", plan.Direction)
	}

	// Forced channel on a softmax falls back to spatial.
	g2 := graph.New("t2", tensor.Int8)
	in2 := g2.Input("input", tensor.NewShape(64, 64, 21))
	sm := g2.MustAdd("softmax", ops.Softmax{}, in2)
	pc2 := New(g2, arch.Exynos2100Like())
	pc2.Mode = ForceChannel
	if plan := pc2.PlanLayer(g2.Layer(sm)); plan.Direction != DirSpatialH {
		t.Errorf("ForceChannel softmax gave %v", plan.Direction)
	}
}

func TestSingleCorePlan(t *testing.T) {
	g, c := convGraph()
	p := New(g, arch.SingleCore())
	plan := p.PlanLayer(g.Layer(c))
	if len(plan.Subs) != 1 || plan.Subs[0].Out.Ext != g.Layer(c).OutShape {
		t.Errorf("single-core plan = %+v", plan)
	}
}

func TestHeterogeneousBalanceFavorsFastDMA(t *testing.T) {
	// A memory-bound layer (1x1 conv, huge spatial extent) should give
	// the high-bandwidth core at least as many rows as the slow one.
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(512, 64, 8))
	c := g.MustAdd("conv", ops.NewConv2D(1, 1, 1, 1, 8, ops.Padding{}), in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	if plan.Direction != DirSpatialH {
		t.Fatalf("direction = %v", plan.Direction)
	}
	h0 := plan.Subs[0].Out.Ext.H
	h2 := plan.Subs[2].Out.Ext.H
	if h0 < h2 {
		t.Errorf("fast-DMA core got %d rows < slow core %d", h0, h2)
	}
}

func TestWideFlatInputUsesSpatialW(t *testing.T) {
	// A 1-row image cannot split along H; spatial preference falls to W.
	g := graph.New("w", tensor.Int8)
	in := g.Input("input", tensor.NewShape(1, 256, 8))
	c := g.MustAdd("conv", ops.NewConv2D(1, 3, 1, 1, 8,
		ops.Padding{Left: 1, Right: 1}), in)
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	if plan.Direction != DirSpatialW {
		t.Fatalf("direction = %v (%s), want spatial-W", plan.Direction, plan.Reason)
	}
	var total int64
	for _, s := range plan.Subs {
		total += s.Out.Elems()
		if !s.Empty() && s.Out.Ext.H != 1 {
			t.Errorf("H extent changed: %v", s.Out)
		}
	}
	if total != g.Layer(c).OutShape.Elems() {
		t.Errorf("W partition does not cover the output")
	}
}

func TestOwnerOf(t *testing.T) {
	g, c := convGraph()
	p := New(g, arch.Exynos2100Like())
	plan := p.PlanLayer(g.Layer(c))
	seen := make(map[int]bool)
	for _, h := range []int{0, 20, 40, 63} {
		owner := plan.OwnerOf(h, 0, 0)
		if owner < 0 {
			t.Errorf("row %d unowned", h)
		}
		seen[owner] = true
	}
	if len(seen) < 2 {
		t.Error("expected multiple owners across rows")
	}
	if plan.OwnerOf(64, 0, 0) != -1 {
		t.Error("out-of-range coordinate has an owner")
	}
}

func TestHaloAndLocalBytes(t *testing.T) {
	// Two stacked convs, both spatial: consumer's input needs one halo
	// row from each neighbouring core.
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(60, 60, 16))
	c1 := g.MustAdd("c1", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	c2 := g.MustAdd("c2", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c1)
	p := New(g, arch.Exynos2100Like())
	prod := p.PlanLayer(g.Layer(c1))
	cons := p.PlanLayer(g.Layer(c2))
	if prod.Direction != DirSpatialH || cons.Direction != DirSpatialH {
		t.Fatalf("directions = %v,%v", prod.Direction, cons.Direction)
	}
	for i, s := range cons.Subs {
		if s.Empty() {
			continue
		}
		halo := HaloBytes(&prod, s.In[0], i, tensor.Int8)
		local := LocalBytes(&prod, s.In[0], i, tensor.Int8)
		if halo+local != s.In[0].Bytes(tensor.Int8) {
			t.Errorf("core %d: halo %d + local %d != in %d", i, halo, local, s.In[0].Bytes(tensor.Int8))
		}
		if local == 0 {
			t.Errorf("core %d: expected local reuse", i)
		}
		// Middle core needs halo from both sides; edges from one.
		if i == 1 && halo != 2*60*16 {
			t.Errorf("middle core halo = %d bytes, want %d", halo, 2*60*16)
		}
	}
	// Producer that is a graph input contributes no halo.
	if HaloBytes(&Plan{}, cons.Subs[0].In[0], 0, tensor.Int8) != 0 {
		t.Error("nil-sub producer must have zero halo")
	}
}

func TestConvMethodsTable1(t *testing.T) {
	ms := ConvMethods()
	if len(ms) != 4 {
		t.Fatalf("methods = %d, want 4", len(ms))
	}
	preferred := 0
	for _, m := range ms {
		if m.Preferred {
			preferred++
			if m.ExtraCommComp != "none" {
				t.Errorf("%s: preferred method has extra stage %q", m.Name, m.ExtraCommComp)
			}
		} else if m.ExtraCommComp != "partial sum reduction" {
			t.Errorf("%s: dispreferred method missing reduction stage", m.Name)
		}
	}
	if preferred != 2 {
		t.Errorf("preferred = %d, want 2", preferred)
	}
	if ms[0].Direction != DirSpatialH || ms[2].Direction != DirChannel {
		t.Error("preferred directions wrong")
	}
}

func TestModeString(t *testing.T) {
	if Adaptive.String() != "adaptive" || ForceSpatial.String() != "spatial" || ForceChannel.String() != "channel" {
		t.Error("mode names wrong")
	}
}

// Property: for any conv geometry, PlanLayer's sub-layer outputs
// exactly tile the layer output (cover, no overlap) and every
// non-empty sub has inputs within bounds.
func TestPlanCoversOutput(t *testing.T) {
	a := arch.Exynos2100Like()
	f := func(h, w, c, k, outC uint8) bool {
		H := int(h%60) + 4
		W := int(w%60) + 4
		C := int(c%64) + 1
		K := []int{1, 3, 5}[int(k)%3]
		OC := int(outC%128) + 1
		g := graph.New("q", tensor.Int8)
		in := g.Input("input", tensor.NewShape(H, W, C))
		pad := K / 2
		id, err := g.Add("conv", ops.NewConv2D(K, K, 1, 1, OC,
			ops.Padding{Top: pad, Bottom: pad, Left: pad, Right: pad}), in)
		if err != nil {
			return true
		}
		l := g.Layer(id)
		plan := New(g, a).PlanLayer(l)
		var total int64
		inWhole := tensor.WholeRegion(tensor.NewShape(H, W, C))
		for i, s := range plan.Subs {
			total += s.Out.Elems()
			if s.Empty() {
				continue
			}
			if !tensor.WholeRegion(l.OutShape).Contains(s.Out) {
				return false
			}
			if !inWhole.Contains(s.In[0]) {
				return false
			}
			for j := i + 1; j < len(plan.Subs); j++ {
				if !plan.Subs[j].Empty() && s.Out.Overlaps(plan.Subs[j].Out) {
					return false
				}
			}
		}
		return total == l.OutShape.Elems()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: MACs across subs equals the whole layer's MACs (partition
// conserves compute except halo redundancy, which PlanLayer does not
// introduce — strata do).
func TestPlanConservesMACs(t *testing.T) {
	f := func(h, c uint8) bool {
		H := int(h%50) + 8
		C := int(c%32) + 1
		g := graph.New("q", tensor.Int8)
		in := g.Input("input", tensor.NewShape(H, H, C))
		id := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 32,
			ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
		l := g.Layer(id)
		plan := New(g, arch.Exynos2100Like()).PlanLayer(l)
		var total int64
		for _, s := range plan.Subs {
			total += s.MACs
		}
		return total == l.Op.MACs(l.OutShape, g.InShapes(l))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRetryAfterUnified: every shedding path — the drain 503s on /run
// and /readyz, and the queue-full 429 — carries a Retry-After header
// produced by the one retryAfterSeconds helper, so the advertised
// backoff is consistent across paths.
func TestRetryAfterUnified(t *testing.T) {
	s := New(Options{Concurrency: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.beforeExecute = func(*RunRequest) {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	// Fill the slot and the queue seat.
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
				strings.NewReader(`{"Model":"MobileNetV2"}`))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	<-started
	waitFor(t, time.Second, func() bool { return s.queued.Load() == 2 })

	// Queue-full 429 advertises the helper's value.
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"Model":"MobileNetV2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	want := strconv.Itoa(s.retryAfterSeconds())
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("429 Retry-After = %q, want helper value %q", got, want)
	}

	// Drain: /readyz and /run both 503 with the same helper value.
	go s.Shutdown(context.Background())
	waitFor(t, time.Second, func() bool { return s.Draining() })

	resp, err = ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz status %d, want 503", resp.StatusCode)
	}
	want = strconv.Itoa(s.retryAfterSeconds())
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("readyz Retry-After = %q, want helper value %q", got, want)
	}

	resp, err = ts.Client().Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"Model":"MobileNetV2"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /run status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("draining /run Retry-After = %q, want helper value %q", got, want)
	}
}

// TestRetryAfterSeconds pins the helper's formula: the 1-second floor
// with no history, backlog-scaled estimates once latency is observed,
// and the 30-second cap.
func TestRetryAfterSeconds(t *testing.T) {
	s := New(Options{Concurrency: 2, Queue: 2})
	if got := s.retryAfterSeconds(); got != 1 {
		t.Errorf("no history: %d, want 1", got)
	}

	// Mean latency 3s, backlog 4 over concurrency 2 → 2 waves → 6s.
	for i := 0; i < 10; i++ {
		s.latency.Observe(3 * time.Second)
	}
	s.queued.Store(4)
	if got := s.retryAfterSeconds(); got != 6 {
		t.Errorf("backlog estimate: %d, want 6", got)
	}

	// Empty backlog still advertises one wave.
	s.queued.Store(0)
	if got := s.retryAfterSeconds(); got != 3 {
		t.Errorf("idle estimate: %d, want 3", got)
	}

	// Enormous backlog clamps to 30s.
	s.queued.Store(1000)
	if got := s.retryAfterSeconds(); got != 30 {
		t.Errorf("clamp: %d, want 30", got)
	}
}

package exec

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// shardedOpsGraph exercises every sharded kernel (dense conv, grouped
// conv, depthwise, transpose conv, FC) at sizes past the shard
// threshold, kept small enough for the race detector.
func shardedOpsGraph() *graph.Graph {
	g := graph.New("sharded-ops", tensor.Int8)
	in := g.Input("in", tensor.NewShape(32, 32, 16))
	conv := g.MustAdd("conv", ops.Conv2D{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		Pad: ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, in)
	grp := g.MustAdd("grouped", ops.Conv2D{OutC: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, Groups: 4,
		Pad: ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, conv)
	dw := g.MustAdd("dw", ops.DepthwiseConv2D{KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		Pad: ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}, grp)
	up := g.MustAdd("up", ops.TransposeConv2D{OutC: 16, KH: 2, KW: 2, StrideH: 2, StrideW: 2}, dw)
	gap := g.MustAdd("gap", ops.GlobalAvgPool{}, up)
	// 4096 outputs over 16 inputs keeps the FC past the shard threshold.
	g.MustAdd("fc", ops.FullyConnected{OutC: 4096}, gap)
	return g
}

// refAll runs the whole-graph reference under a fixed worker count.
func refAll(t *testing.T, g *graph.Graph, workers int) map[graph.LayerID]*Tensor {
	t.Helper()
	prev := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prev)
	ref, err := RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestShardedKernelsBitExact verifies that row/channel-sharded kernels
// produce the same bits as the serial loops — the property the
// bit-exact validation suite depends on.
func TestShardedKernelsBitExact(t *testing.T) {
	g := shardedOpsGraph()
	serial := refAll(t, g, 1)
	sharded := refAll(t, g, 8)
	for _, l := range g.Layers() {
		if !serial[l.ID].Equal(sharded[l.ID]) {
			t.Errorf("layer %s: sharded kernel differs from serial", l.Name)
		}
	}
}

// TestShardedKernelPanicsSurface checks that an out-of-view read — the
// halo-validation mechanism — still reaches the caller as a panic when
// the kernel row that trips it runs on a pool goroutine.
func TestShardedKernelPanicsSurface(t *testing.T) {
	prev := parallel.SetWorkers(8)
	defer parallel.SetWorkers(prev)

	in := tensor.NewShape(40, 40, 8)
	op := ops.Conv2D{OutC: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1,
		Pad: ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}}
	out, err := op.OutShape([]tensor.Shape{in})
	if err != nil {
		t.Fatal(err)
	}
	// A view one row short of what the conv needs: the missing halo
	// must panic, not read garbage.
	short := tensor.Region{Off: tensor.NewShape(0, 0, 0), Ext: tensor.NewShape(in.H-1, in.W, in.C)}
	err = guard("short view", func() error {
		Apply(op, tensor.WholeRegion(out), []*View{NewView(short)}, []tensor.Shape{in}, WeightsFor(1))
		return nil
	})
	if err == nil {
		t.Fatal("under-provisioned view did not surface a panic")
	}
}

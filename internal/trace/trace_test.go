package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/sim"
)

func traceOf(t *testing.T) ([]sim.Event, *arch.Arch) {
	t.Helper()
	a := arch.Exynos2100Like()
	g := models.TinyCNN()
	res, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return out.Trace, a
}

func TestGantt(t *testing.T) {
	events, a := traceOf(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, events, a, 80); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "compute") {
		t.Errorf("gantt missing lanes:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Error("gantt shows no compute activity")
	}
	if !strings.Contains(s, "legend") {
		t.Error("gantt missing legend")
	}
	// Every row must be the requested width.
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			row := line[i+1 : len(line)-1]
			if len(row) != 80 {
				t.Errorf("row width %d, want 80", len(row))
			}
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil, arch.SingleCore(), 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not reported")
	}
}

func TestChromeExport(t *testing.T) {
	events, a := traceOf(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, a); err != nil {
		t.Fatal(err)
	}
	var doc map[string][]map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	evs := doc["traceEvents"]
	if len(evs) != len(events) {
		t.Errorf("exported %d events, want %d", len(evs), len(events))
	}
	for _, ev := range evs[:3] {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Errorf("bad event %v", ev)
		}
	}
}

func TestSummary(t *testing.T) {
	events, a := traceOf(t)
	s := Summary(events, a)
	if !strings.Contains(s, "compute") || !strings.Contains(s, "P2") {
		t.Errorf("summary = %q", s)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

func TestGanttBucketEdges(t *testing.T) {
	a := arch.SingleCore()
	const columns = 10
	// end = 100 cycles, so each bucket spans 10 cycles.
	events := []sim.Event{
		{Core: 0, Op: plan.Compute, Start: 0, End: 50},    // buckets 0..5
		{Core: 0, Op: plan.LoadInput, Start: 35, End: 35}, // zero-duration, bucket 3
		{Core: 0, Op: plan.Store, Start: 100, End: 100},   // instantaneous at the end
	}
	var buf bytes.Buffer
	if err := Gantt(&buf, events, a, columns); err != nil {
		t.Fatal(err)
	}
	rows := map[string]string{}
	for _, line := range strings.Split(buf.String(), "\n") {
		i := strings.IndexByte(line, '|')
		if i < 0 {
			continue
		}
		f := strings.Fields(line)
		rows[f[1]] = line[i+1 : len(line)-1]
	}
	for lane, row := range rows {
		if len(row) != columns {
			t.Errorf("%s row is %d columns, want %d: %q", lane, len(row), columns, row)
		}
	}
	if got := strings.Count(rows["compute"], "#"); got != 6 {
		t.Errorf("compute spans %d cells, want 6: %q", got, rows["compute"])
	}
	if rows["load"] != "...<......" {
		t.Errorf("zero-duration load not a single cell: %q", rows["load"])
	}
	// An instantaneous event at exactly the timeline end lands in the
	// final column instead of being dropped (its raw bucket index is one
	// past the row).
	if rows["store"] != ".........>" {
		t.Errorf("event at timeline end not clamped into final column: %q", rows["store"])
	}
}

func TestChromeNameFallback(t *testing.T) {
	a := arch.SingleCore()
	events := []sim.Event{
		{Core: 0, Op: plan.Compute, Start: 0, End: 10},
		{Core: 0, Op: plan.Barrier, Start: 10, End: 12},
		{Core: 0, Op: plan.LoadHalo, Start: 12, End: 15},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, a); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ev := range doc.TraceEvents {
		names = append(names, ev.Name)
	}
	want := []string{"comp", "sync", "halo-recv"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("fallback names = %v, want %v", names, want)
	}
}

// TestChromeGolden pins the exact Chrome trace JSON for TinyCNN under
// the halo configuration: event order (including timestamp ties), the
// microsecond conversion, and the note-derived names that keep halo
// exchanges and barriers distinguishable from plain loads and stores.
// Regenerate with `go test ./internal/trace -run Golden -update` after
// an intentional simulator or exporter change.
func TestChromeGolden(t *testing.T) {
	events, a := traceOf(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, a); err != nil {
		t.Fatal(err)
	}
	const golden = "testdata/chrome_tinycnn.json"
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("chrome trace diverged from %s (run with -update if intentional)", golden)
	}
	s := buf.String()
	for _, name := range []string{`"halo-send`, `"halo-recv`, `"sync`, `"comp`} {
		if !strings.Contains(s, name) {
			t.Errorf("trace missing %s events", name)
		}
	}
}

package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestSyncCostSweepShape(t *testing.T) {
	points, err := SyncCostSweep("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	// Group by config and check monotonic growth with sync cost, and
	// that the optimized configurations dominate Base at high cost.
	byCfg := map[string][]AblationPoint{}
	for _, p := range points {
		byCfg[p.Config] = append(byCfg[p.Config], p)
	}
	for cfg, ps := range byCfg {
		for i := 1; i < len(ps); i++ {
			if ps[i].LatencyUS < ps[i-1].LatencyUS {
				t.Errorf("%s: latency dropped as sync cost rose: %.1f -> %.1f",
					cfg, ps[i-1].LatencyUS, ps[i].LatencyUS)
			}
		}
	}
	base := byCfg["Base"]
	strat := byCfg["+Stratum"]
	last := len(base) - 1
	if strat[last].LatencyUS >= base[last].LatencyUS {
		t.Errorf("at max sync cost, +Stratum %.1f >= Base %.1f",
			strat[last].LatencyUS, base[last].LatencyUS)
	}
	// The absolute gap Base - Stratum must widen with sync cost (the
	// optimizations remove synchronization).
	gapFirst := base[0].LatencyUS - strat[0].LatencyUS
	gapLast := base[last].LatencyUS - strat[last].LatencyUS
	if gapLast <= gapFirst {
		t.Errorf("sync-elimination gap did not grow: %.1f -> %.1f", gapFirst, gapLast)
	}
}

func TestBusSweepShape(t *testing.T) {
	points, err := BusSweep("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	// More bandwidth never hurts.
	byCfg := map[string][]AblationPoint{}
	for _, p := range points {
		byCfg[p.Config] = append(byCfg[p.Config], p)
	}
	for cfg, ps := range byCfg {
		for i := 1; i < len(ps); i++ {
			if ps[i].LatencyUS > ps[i-1].LatencyUS*1.001 {
				t.Errorf("%s: latency rose with more bandwidth: %.1f -> %.1f",
					cfg, ps[i-1].LatencyUS, ps[i].LatencyUS)
			}
		}
	}
}

func TestSPMSweepShape(t *testing.T) {
	rows, err := SPMSweep("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	// Smaller SPM can only need more instructions (more tiles) and
	// never runs faster.
	for i := 1; i < len(rows); i++ {
		if rows[i].Instrs > rows[i-1].Instrs {
			t.Errorf("instructions rose with larger SPM: %d -> %d at %dKB",
				rows[i-1].Instrs, rows[i].Instrs, rows[i].SPMKB)
		}
		if rows[i].LatencyUS > rows[i-1].LatencyUS*1.01 {
			t.Errorf("latency rose with larger SPM: %.1f -> %.1f", rows[i-1].LatencyUS, rows[i].LatencyUS)
		}
	}
}

func TestCoreScalingShape(t *testing.T) {
	points, err := CoreScaling("MobileNetV2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Four cores must beat one core.
	if points[3].LatencyUS >= points[0].LatencyUS {
		t.Errorf("4 cores %.1f >= 1 core %.1f", points[3].LatencyUS, points[0].LatencyUS)
	}
}

func TestEnergySweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	rows, err := EnergySweep()
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]EnergyRow{}
	for _, r := range rows {
		byKey[r.Model+"/"+r.Config] = r
	}
	// The optimized configurations move less data, so they use less
	// energy despite stratum's extra MACs (DRAM dominates).
	for _, m := range []string{"MobileNetV2", "InceptionV3"} {
		if byKey[m+"/+Halo"].UJ >= byKey[m+"/Base"].UJ {
			t.Errorf("%s: +Halo energy %.0f >= Base %.0f", m, byKey[m+"/+Halo"].UJ, byKey[m+"/Base"].UJ)
		}
	}
	// Stratum executes at least as many MACs as Halo on models where
	// strata form.
	if byKey["InceptionV3/+Stratum"].GMACs < byKey["InceptionV3/+Halo"].GMACs {
		t.Error("stratum lost MACs")
	}
}

func TestSchedulingSweepValid(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	rows, err := SchedulingSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Algorithm1 <= 0 || r.DepthFirst <= 0 || r.BreadthFirst <= 0 {
			t.Errorf("%s: non-positive latency", r.Model)
		}
		// On a pure chain (MobileNetV2 is nearly one), the strategies
		// coincide.
		if r.Model == "MobileNetV2" {
			if r.Algorithm1 != r.DepthFirst {
				t.Errorf("MobileNetV2: algorithm1 %.1f != depth-first %.1f on a chain-like graph",
					r.Algorithm1, r.DepthFirst)
			}
		}
	}
}

func TestInterconnectNeverHurts(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	rows, err := InterconnectSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// A dedicated link can only remove bus contention.
		if r.DirectUS > r.DRAMUS*1.001 {
			t.Errorf("%s bus=%g: direct link %.1f worse than DRAM path %.1f",
				r.Model, r.Bus, r.DirectUS, r.DRAMUS)
		}
	}
	// The gain must be larger under the congested bus for InceptionV3.
	var tight, roomy float64
	for _, r := range rows {
		if r.Model != "InceptionV3" {
			continue
		}
		gain := r.DRAMUS - r.DirectUS
		if r.Bus == 8 {
			tight = gain
		} else {
			roomy = gain
		}
	}
	if tight <= roomy {
		t.Errorf("congested-bus gain %.1f <= roomy-bus gain %.1f", tight, roomy)
	}
}

func TestConcurrentExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	rows, err := Concurrent()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ConcurrentUS <= 0 || r.SequentialUS <= 0 {
			t.Errorf("%s: bad latencies", r.Pair)
		}
		// Spatial sharing must beat time multiplexing for these
		// workload pairs (the bus is not the bottleneck at 32 B/cyc).
		if r.ConcurrentUS >= r.SequentialUS {
			t.Errorf("%s: concurrent %.1f >= sequential %.1f", r.Pair, r.ConcurrentUS, r.SequentialUS)
		}
	}
}

func TestThroughputSweep(t *testing.T) {
	rows, err := ThroughputSweep("MobileNetV2", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Steady-state period never exceeds single-shot latency.
		if r.PeriodUS > r.LatencyUS+0.1 {
			t.Errorf("%s: period %.1f > latency %.1f", r.Config, r.PeriodUS, r.LatencyUS)
		}
	}
}

func TestPipelineSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep")
	}
	rows, err := PipelineSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Removing double buffering can only slow things down.
		if r.PipelinedUS > r.SerialUS+0.1 {
			t.Errorf("%s: pipelined %.1f > single-buffer %.1f", r.Model, r.PipelinedUS, r.SerialUS)
		}
	}
}

func TestPrintAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every sweep")
	}
	var buf bytes.Buffer
	if err := PrintAblations(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"A1", "A2", "A3", "A4", "A5", "speedup"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("ablation output missing %q", want)
		}
	}
}

// Package randgraph's tests are the compiler's fuzzing harness: many
// random graphs, every configuration, every result validated
// bit-exactly against the reference executor and structurally against
// the program validator.
package randgraph

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/sim"
	"repro/internal/tiling"
)

func TestGeneratorDeterministic(t *testing.T) {
	a := New(42, Params{})
	b := New(42, Params{})
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different sizes: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		la, lb := a.Layers()[i], b.Layers()[i]
		if la.Name != lb.Name || la.OutShape != lb.OutShape {
			t.Fatalf("layer %d differs: %v vs %v", i, la, lb)
		}
	}
	c := New(43, Params{})
	if c.Len() == a.Len() && fmt.Sprint(c.Layers()) == fmt.Sprint(a.Layers()) {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGeneratedGraphsValid(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := New(seed, Params{})
		if err := g.Validate(); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzCompileSimulateValidate is the heavyweight end-to-end fuzz
// pass: random graphs x configurations x architectures, with program
// validation, simulation to completion, and bit-exact numeric checks.
func TestFuzzCompileSimulateValidate(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	archs := []*arch.Arch{arch.SingleCore(), arch.Exynos2100Like(), arch.Homogeneous(4)}
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}

	for seed := int64(0); seed < int64(seeds); seed++ {
		g := New(seed, Params{})
		ref, err := exec.RunReference(g)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, a := range archs {
			for _, opt := range opts {
				name := fmt.Sprintf("seed%d/%s/%s", seed, a.Name, opt.Name())
				res, err := core.Compile(g, a, opt)
				if err != nil {
					t.Errorf("%s: compile: %v", name, err)
					continue
				}
				out, err := sim.Run(res.Program, sim.Config{})
				if err != nil {
					t.Errorf("%s: sim: %v", name, err)
					continue
				}
				if out.Stats.TotalCycles <= 0 {
					t.Errorf("%s: zero latency", name)
				}
				// All compute must be accounted: every layer's MACs
				// (with stratum redundancy) appear in the program.
				var macs int64
				for c := range res.Program.Cores {
					macs += res.Program.TotalMACs(c)
				}
				if macs < g.TotalMACs() {
					t.Errorf("%s: program MACs %d < graph %d", name, macs, g.TotalMACs())
				}
				if err := exec.ValidatePartitioned(g, res.Plans, ref); err != nil {
					t.Errorf("%s: partition validation: %v", name, err)
				}
				if err := exec.ValidateStrata(g, res.Plans, res.Strata, ref); err != nil {
					t.Errorf("%s: strata validation: %v", name, err)
				}
			}
			// Tiling validation once per arch (configuration-independent).
			res, err := core.Compile(g, a, core.Base())
			if err != nil {
				continue
			}
			if err := exec.ValidateTiled(g, res.Plans, tiling.New(a), ref); err != nil {
				t.Errorf("seed%d/%s: tiling validation: %v", seed, a.Name, err)
			}
		}
	}
}

// TestFuzzSimulatorDeterministic verifies that the full pipeline is
// reproducible: identical latency on repeated runs.
func TestFuzzSimulatorDeterministic(t *testing.T) {
	g := New(7, Params{})
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	first, err := sim.Run(res.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Stats.TotalCycles != first.Stats.TotalCycles {
			t.Fatalf("run %d: latency %.0f != %.0f", i, again.Stats.TotalCycles, first.Stats.TotalCycles)
		}
	}
}

package npu_test

import (
	"fmt"

	"repro/npu"
)

// ExampleCompile shows the basic build-compile flow and what the
// compiler decides.
func ExampleCompile() {
	g := npu.NewGraph("demo", npu.Int8)
	in := g.Input("input", npu.NewShape(32, 32, 8))
	c := g.MustAdd("conv", npu.NewConv2D(3, 3, 1, 1, 16,
		npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	g.MustAdd("relu", npu.Activation{Func: npu.ReLU}, c)

	res, err := npu.Compile(g, npu.Exynos2100Like(), npu.Stratum())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("layers:", g.Len())
	fmt.Println("barriers:", res.Program.NumBarriers)
	fmt.Println("validated:", npu.Validate(g, res) == nil)
	// Output:
	// layers: 3
	// barriers: 0
	// validated: true
}

// ExampleModels lists the paper's benchmark networks.
func ExampleModels() {
	for _, m := range npu.Models() {
		fmt.Printf("%s %s %s\n", m.Name, m.Input, m.DType)
	}
	// Output:
	// InceptionV3 299x299x3 INT8
	// MobileNetV2 224x224x3 INT8
	// MobileNetV2-SSD 300x300x3 INT8
	// MobileDet-SSD 320x320x3 INT8
	// DeepLabV3+ 513x513x3 INT16
	// UNet 572x572x3 INT8
}

// ExampleRun compares the Table 3 configurations on one graph.
func ExampleRun() {
	g := npu.NewGraph("chain", npu.Int8)
	x := g.Input("input", npu.NewShape(64, 64, 16))
	for i := 0; i < 3; i++ {
		x = g.MustAdd(fmt.Sprintf("conv%d", i), npu.NewConv2D(3, 3, 1, 1, 16,
			npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), x)
	}
	a := npu.Exynos2100Like()
	var base, strat float64
	for _, opt := range []npu.Options{npu.Base(), npu.Stratum()} {
		rep, err := npu.Run(g, a, opt)
		if err != nil {
			fmt.Println(err)
			return
		}
		if opt.Stratum {
			strat = rep.LatencyMicros()
		} else {
			base = rep.LatencyMicros()
		}
	}
	fmt.Println("stratum faster:", strat < base)
	// Output:
	// stratum faster: true
}

// Package schedule implements the layer execution scheduler of the
// paper's Algorithm 1: a topological order that follows the successor
// (depth-first) when the current layer is spatially partitioned — so
// feature-map forwarding, halo-exchange, and stratum construction can
// exploit data reuse — and otherwise switches to a sibling layer,
// extending the span between synchronization points (the
// breadth-first advantage).
package schedule

import (
	"fmt"

	"repro/internal/graph"
)

// Scheduler orders the layers of a graph.
type Scheduler struct {
	Graph *graph.Graph
	// SpatialPartitioning reports whether the layer will be spatially
	// partitioned (the spatial_partitioning() predicate of Algorithm
	// 1, implemented by the partitioner's h1–h5 heuristics). A nil
	// predicate treats every layer as spatial, which degenerates to
	// depth-first order.
	SpatialPartitioning func(*graph.Layer) bool
}

// New returns a scheduler using pred as the spatial-partitioning
// predicate.
func New(g *graph.Graph, pred func(*graph.Layer) bool) *Scheduler {
	return &Scheduler{Graph: g, SpatialPartitioning: pred}
}

// Order returns the execution order of all layers (graph inputs
// included, first) following Algorithm 1.
func (s *Scheduler) Order() []graph.LayerID {
	g := s.Graph
	n := g.Len()
	indeg := make([]int, n)
	for _, l := range g.Layers() {
		indeg[l.ID] = len(l.Inputs)
	}

	// ready holds schedulable layers in arrival order; arrival order
	// approximates the depth-first traversal tree: successors of the
	// most recently scheduled layers arrive last.
	var ready []graph.LayerID
	for _, l := range g.Layers() {
		if indeg[l.ID] == 0 {
			ready = append(ready, l.ID)
		}
	}
	if len(ready) == 0 {
		return nil
	}

	scheduled := make([]bool, n)
	out := make([]graph.LayerID, 0, n)

	remove := func(id graph.LayerID) {
		for i, r := range ready {
			if r == id {
				ready = append(ready[:i], ready[i+1:]...)
				return
			}
		}
	}

	isSucc := func(cur, cand graph.LayerID) bool {
		for _, u := range g.Users(cur) {
			if u == cand {
				return true
			}
		}
		return false
	}

	cur := ready[0]
	for {
		// Schedule the current layer.
		out = append(out, cur)
		scheduled[cur] = true
		remove(cur)
		for _, u := range g.Users(cur) {
			indeg[u]--
			if indeg[u] == 0 {
				ready = append(ready, u)
			}
		}
		if len(ready) == 0 {
			break
		}

		// get_succ: the first ready direct successor of cur.
		succ := graph.LayerID(-1)
		for _, r := range ready {
			if isSucc(cur, r) {
				succ = r
				break
			}
		}
		// get_sibling: the most recently readied layer that does not
		// depend on cur (a sibling or an ancestor's sibling in the
		// depth-first traversal tree).
		sibling := graph.LayerID(-1)
		for i := len(ready) - 1; i >= 0; i-- {
			if !isSucc(cur, ready[i]) {
				sibling = ready[i]
				break
			}
		}

		switch {
		case succ >= 0 && sibling >= 0:
			if s.spatial(cur) {
				cur = succ // reuse the forwarded feature map
			} else {
				cur = sibling // widen the span between syncs
			}
		case succ >= 0:
			cur = succ
		case sibling >= 0:
			cur = sibling
		default:
			cur = ready[0]
		}
	}
	return out
}

func (s *Scheduler) spatial(id graph.LayerID) bool {
	if s.SpatialPartitioning == nil {
		return true
	}
	return s.SpatialPartitioning(s.Graph.Layer(id))
}

// DepthFirst returns a pure depth-first topological order (always
// follow a ready successor), the order Figure 6(a) illustrates.
func DepthFirst(g *graph.Graph) []graph.LayerID {
	return New(g, func(*graph.Layer) bool { return true }).Order()
}

// BreadthFirst returns a level-order (FIFO) topological order, the
// order Figure 6(b) illustrates.
func BreadthFirst(g *graph.Graph) []graph.LayerID {
	n := g.Len()
	indeg := make([]int, n)
	for _, l := range g.Layers() {
		indeg[l.ID] = len(l.Inputs)
	}
	var queue []graph.LayerID
	for _, l := range g.Layers() {
		if indeg[l.ID] == 0 {
			queue = append(queue, l.ID)
		}
	}
	out := make([]graph.LayerID, 0, n)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		out = append(out, cur)
		for _, u := range g.Users(cur) {
			indeg[u]--
			if indeg[u] == 0 {
				queue = append(queue, u)
			}
		}
	}
	return out
}

// Verify checks that order is a complete topological order of g.
func Verify(g *graph.Graph, order []graph.LayerID) error {
	if len(order) != g.Len() {
		return fmt.Errorf("schedule: order has %d layers, graph has %d", len(order), g.Len())
	}
	pos := make(map[graph.LayerID]int, len(order))
	for i, id := range order {
		if _, dup := pos[id]; dup {
			return fmt.Errorf("schedule: layer %d appears twice", id)
		}
		pos[id] = i
	}
	for _, l := range g.Layers() {
		for _, in := range l.Inputs {
			if pos[in] > pos[l.ID] {
				return fmt.Errorf("schedule: layer %d scheduled before its input %d", l.ID, in)
			}
		}
	}
	return nil
}

// Package stats aggregates per-core simulation metrics into the
// mean/standard-deviation summaries the paper's Tables 4 and 5 report.
package stats

import (
	"fmt"
	"math"
)

// Summary holds the mean and population standard deviation of a
// per-core metric.
type Summary struct {
	Mean, Std float64
	Values    []float64
}

// Summarize computes a Summary over per-core values.
func Summarize(values []float64) Summary {
	s := Summary{Values: append([]float64(nil), values...)}
	if len(values) == 0 {
		return s
	}
	var sum float64
	for _, v := range values {
		sum += v
	}
	s.Mean = sum / float64(len(values))
	var ss float64
	for _, v := range values {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(values)))
	return s
}

// String formats as "μ:x σ:y" like the paper's tables.
func (s Summary) String() string {
	return fmt.Sprintf("μ:%.1f σ:%.1f", s.Mean, s.Std)
}

// KB formats a byte summary in kilobytes, Table 4 style.
func (s Summary) KB() string {
	return fmt.Sprintf("μ:%.0fKB σ:%.0fKB", s.Mean/1024, s.Std/1024)
}

// Micros formats a cycle summary in microseconds at the given clock.
func (s Summary) Micros(clockMHz int) string {
	return fmt.Sprintf("μ:%.0fus σ:%.0fus", s.Mean/float64(clockMHz), s.Std/float64(clockMHz))
}

// Mobilenet: sweep MobileNetV2 across core counts and optimization
// configurations — a miniature of the paper's Figure 11 for one model.
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

func main() {
	g := npu.BuildModel("MobileNetV2")
	fmt.Printf("%s: %d layers, %.2f GMACs\n\n", g.Name, g.Len(), float64(g.TotalMACs())/1e9)

	single, err := npu.Run(g, npu.SingleCore(), npu.Base())
	if err != nil {
		log.Fatal(err)
	}
	base := single.LatencyMicros()
	fmt.Printf("%-28s %10.1f us   1.00x\n", "1 core, Base", base)

	for _, opt := range []npu.Options{npu.Base(), npu.Halo(), npu.Stratum()} {
		rep, err := npu.Run(g, npu.Exynos2100Like(), opt)
		if err != nil {
			log.Fatal(err)
		}
		us := rep.LatencyMicros()
		fmt.Printf("%-28s %10.1f us   %.2fx\n", "3 cores, "+opt.Name(), us, base/us)
	}

	fmt.Println("\nscaling beyond the paper's platform (homogeneous cores, +Stratum):")
	for _, n := range []int{2, 4, 6, 8} {
		rep, err := npu.Run(g, npu.Homogeneous(n), npu.Stratum())
		if err != nil {
			log.Fatal(err)
		}
		us := rep.LatencyMicros()
		fmt.Printf("  %d cores: %8.1f us   %.2fx\n", n, us, base/us)
	}
}

package npu_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/npu"
)

func report(t *testing.T, trace bool) *npu.Report {
	t.Helper()
	g := npu.BuildModel("MobileNetV2")
	res, err := npu.Compile(g, npu.Exynos2100Like(), npu.Halo())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := npu.Simulate(res, trace)
	if err != nil {
		t.Fatal(err)
	}
	rep.Config = "+Halo"
	return rep
}

func TestReportString(t *testing.T) {
	rep := report(t, false)
	s := rep.String()
	for _, want := range []string{"+Halo", "P0", "P2", "barriers", "GMACs"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestReportEnergy(t *testing.T) {
	rep := report(t, false)
	e8 := rep.EnergyMicroJoules(false)
	e16 := rep.EnergyMicroJoules(true)
	if e8 <= 0 || e16 <= e8 {
		t.Errorf("energy int8 %f, int16 %f", e8, e16)
	}
}

func TestReportGanttAndChrome(t *testing.T) {
	rep := report(t, true)
	var g bytes.Buffer
	if err := rep.WriteGantt(&g, 60); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(g.String(), "compute") {
		t.Error("gantt missing lanes")
	}
	var c bytes.Buffer
	if err := rep.WriteChromeTrace(&c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), "traceEvents") {
		t.Error("chrome trace malformed")
	}
	if rep.EngineSummary() == "" {
		t.Error("empty engine summary")
	}
}

func TestRunBatch(t *testing.T) {
	g := npu.BuildModel("MobileNetV2")
	a := npu.Exynos2100Like()
	period, err := npu.RunBatch(g, a, npu.Stratum(), 4)
	if err != nil {
		t.Fatal(err)
	}
	single, err := npu.Run(g, a, npu.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if period <= 0 || period > single.LatencyMicros()+0.1 {
		t.Errorf("period %.1f vs latency %.1f", period, single.LatencyMicros())
	}
}

func TestAutoBalancePublicAPI(t *testing.T) {
	g := npu.BuildModel("MobileNetV2")
	res, err := npu.AutoBalance(g, npu.Exynos2100Like(), npu.Halo(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil || len(res.Steps) != 2 {
		t.Errorf("tune result incomplete: %+v", res)
	}
}

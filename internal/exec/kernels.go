package exec

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// shardMinOps is the approximate operation count below which a kernel
// stays serial: smaller regions cannot amortize the pool handoff.
const shardMinOps = 1 << 15

// shard runs fn(i) for i in [0, n) — each index covering a disjoint
// slice of the output, so writes never overlap — fanning out across
// the worker pool when n*opsPerIndex is large enough to pay for it.
// Out-of-view panics (the halo-validation mechanism) surface on the
// calling goroutine either way, so guard() in validate.go still works.
func shard(n, opsPerIndex int, fn func(i int)) {
	if n < 2 || n*opsPerIndex < shardMinOps || parallel.Serial() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	parallel.ForEach(n, func(i int) error {
		fn(i)
		return nil
	})
}

// read returns the input element at absolute (h, w, c): zero when the
// coordinates fall outside the full input shape (implicit padding),
// otherwise the view's value (which panics when the view lacks the
// element — the halo-validation mechanism).
func read(v *View, shape tensor.Shape, h, w, c int) int32 {
	if h < 0 || h >= shape.H || w < 0 || w >= shape.W || c < 0 || c >= shape.C {
		return 0
	}
	return v.At(h, w, c)
}

// Apply computes the output region of op from input views, using
// deterministic weights. The views must cover (at least) the regions
// op.InputRegion reports for out.
func Apply(op ops.Op, out tensor.Region, ins []*View, inShapes []tensor.Shape, w *Weights) (*View, error) {
	switch o := op.(type) {
	case ops.Input:
		return nil, fmt.Errorf("exec: Input layers are not computed")
	case ops.Conv2D:
		return applyConv(o, out, ins[0], inShapes[0], w), nil
	case ops.DepthwiseConv2D:
		return applyDepthwise(o, out, ins[0], inShapes[0], w), nil
	case ops.TransposeConv2D:
		return applyTransposeConv(o, out, ins[0], inShapes[0], w), nil
	case ops.MaxPool2D:
		return applyMaxPool(o, out, ins[0], inShapes[0]), nil
	case ops.AvgPool2D:
		return applyAvgPool(o, out, ins[0], inShapes[0]), nil
	case ops.GlobalAvgPool:
		return applyGlobalAvgPool(out, ins[0], inShapes[0]), nil
	case ops.FullyConnected:
		return applyFC(o, out, ins[0], inShapes[0], w), nil
	case ops.Add:
		return applyAdd(out, ins), nil
	case ops.Mul:
		return applyMul(out, ins, inShapes), nil
	case ops.Concat:
		return applyConcat(out, ins, inShapes), nil
	case ops.Activation:
		return applyActivation(o, out, ins[0]), nil
	case ops.Softmax:
		return applySoftmax(out, ins[0], inShapes[0]), nil
	case ops.Resize:
		return applyResize(o, out, ins[0], inShapes[0]), nil
	case ops.Crop:
		return applyCrop(o, out, ins[0]), nil
	case ops.ChannelSlice:
		return applyChannelSlice(o, out, ins[0]), nil
	case ops.ChannelShuffle:
		return applyChannelShuffle(o, out, ins[0], inShapes[0]), nil
	default:
		return nil, fmt.Errorf("exec: unsupported op %v", op)
	}
}

func applyConv(o ops.Conv2D, out tensor.Region, in *View, inShape tensor.Shape, w *Weights) *View {
	res := NewView(out)
	groups := o.Groups
	if groups <= 1 {
		groups = 1
	}
	inCg := inShape.C / groups
	outCg := o.OutC / groups
	shard(out.Ext.H, out.Ext.W*out.Ext.C*o.KH*o.KW*inCg, func(row int) {
		oh := out.Off.H + row
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				acc := w.Bias(oc)
				icBase := (oc / outCg) * inCg
				for kh := 0; kh < o.KH; kh++ {
					ih := oh*o.StrideH - o.Pad.Top + kh*o.DilH
					if ih < 0 || ih >= inShape.H {
						continue
					}
					for kw := 0; kw < o.KW; kw++ {
						iw := ow*o.StrideW - o.Pad.Left + kw*o.DilW
						if iw < 0 || iw >= inShape.W {
							continue
						}
						for icg := 0; icg < inCg; icg++ {
							acc += in.At(ih, iw, icBase+icg) * w.Conv(oc, kh, kw, icg, o.KH, o.KW, inCg)
						}
					}
				}
				res.Set(oh, ow, oc, acc)
			}
		}
	})
	return res
}

func applyDepthwise(o ops.DepthwiseConv2D, out tensor.Region, in *View, inShape tensor.Shape, w *Weights) *View {
	res := NewView(out)
	shard(out.Ext.H, out.Ext.W*out.Ext.C*o.KH*o.KW, func(row int) {
		oh := out.Off.H + row
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				acc := w.Bias(oc)
				for kh := 0; kh < o.KH; kh++ {
					ih := oh*o.StrideH - o.Pad.Top + kh*o.DilH
					if ih < 0 || ih >= inShape.H {
						continue
					}
					for kw := 0; kw < o.KW; kw++ {
						iw := ow*o.StrideW - o.Pad.Left + kw*o.DilW
						if iw < 0 || iw >= inShape.W {
							continue
						}
						acc += in.At(ih, iw, oc) * w.Conv(oc, kh, kw, 0, o.KH, o.KW, 1)
					}
				}
				res.Set(oh, ow, oc, acc)
			}
		}
	})
	return res
}

func applyTransposeConv(o ops.TransposeConv2D, out tensor.Region, in *View, inShape tensor.Shape, w *Weights) *View {
	res := NewView(out)
	shard(out.Ext.H, out.Ext.W*out.Ext.C*o.KH*o.KW*inShape.C, func(row int) {
		oh := out.Off.H + row
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				acc := w.Bias(oc)
				for kh := 0; kh < o.KH; kh++ {
					num := oh + o.Pad.Top - kh
					if num%o.StrideH != 0 {
						continue
					}
					ih := num / o.StrideH
					if ih < 0 || ih >= inShape.H {
						continue
					}
					for kw := 0; kw < o.KW; kw++ {
						numW := ow + o.Pad.Left - kw
						if numW%o.StrideW != 0 {
							continue
						}
						iw := numW / o.StrideW
						if iw < 0 || iw >= inShape.W {
							continue
						}
						for ic := 0; ic < inShape.C; ic++ {
							acc += in.At(ih, iw, ic) * w.Conv(oc, kh, kw, ic, o.KH, o.KW, inShape.C)
						}
					}
				}
				res.Set(oh, ow, oc, acc)
			}
		}
	})
	return res
}

func applyMaxPool(o ops.MaxPool2D, out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	const minInt32 = -1 << 31
	for oh := out.Off.H; oh < out.End(tensor.AxisH); oh++ {
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				best := int32(minInt32)
				for kh := 0; kh < o.KH; kh++ {
					ih := oh*o.StrideH - o.Pad.Top + kh
					if ih < 0 || ih >= inShape.H {
						continue
					}
					for kw := 0; kw < o.KW; kw++ {
						iw := ow*o.StrideW - o.Pad.Left + kw
						if iw < 0 || iw >= inShape.W {
							continue
						}
						if v := in.At(ih, iw, oc); v > best {
							best = v
						}
					}
				}
				res.Set(oh, ow, oc, best)
			}
		}
	}
	return res
}

func applyAvgPool(o ops.AvgPool2D, out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	for oh := out.Off.H; oh < out.End(tensor.AxisH); oh++ {
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				var sum int32
				count := int32(0)
				for kh := 0; kh < o.KH; kh++ {
					ih := oh*o.StrideH - o.Pad.Top + kh
					if ih < 0 || ih >= inShape.H {
						continue
					}
					for kw := 0; kw < o.KW; kw++ {
						iw := ow*o.StrideW - o.Pad.Left + kw
						if iw < 0 || iw >= inShape.W {
							continue
						}
						sum += in.At(ih, iw, oc)
						count++
					}
				}
				if count > 0 {
					sum /= count
				}
				res.Set(oh, ow, oc, sum)
			}
		}
	}
	return res
}

func applyGlobalAvgPool(out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	area := int32(inShape.H * inShape.W)
	for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
		var sum int32
		for h := 0; h < inShape.H; h++ {
			for w := 0; w < inShape.W; w++ {
				sum += in.At(h, w, oc)
			}
		}
		res.Set(0, 0, oc, sum/area)
	}
	return res
}

func applyFC(o ops.FullyConnected, out tensor.Region, in *View, inShape tensor.Shape, w *Weights) *View {
	res := NewView(out)
	shard(out.Ext.C, inShape.C, func(ci int) {
		oc := out.Off.C + ci
		acc := w.Bias(oc)
		for ic := 0; ic < inShape.C; ic++ {
			acc += in.At(0, 0, ic) * w.Conv(oc, 0, 0, ic, 1, 1, inShape.C)
		}
		res.Set(0, 0, oc, acc)
	})
	return res
}

func applyAdd(out tensor.Region, ins []*View) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		var sum int32
		for _, in := range ins {
			sum += in.At(h, w, c)
		}
		res.Set(h, w, c, sum)
	})
	return res
}

func applyMul(out tensor.Region, ins []*View, inShapes []tensor.Shape) *View {
	res := NewView(out)
	bcast := inShapes[1].H == 1 && inShapes[1].W == 1 && inShapes[0] != inShapes[1]
	forEach(out, func(h, w, c int) {
		var b int32
		if bcast {
			b = ins[1].At(0, 0, c)
		} else {
			b = ins[1].At(h, w, c)
		}
		res.Set(h, w, c, ins[0].At(h, w, c)*b)
	})
	return res
}

func applyConcat(out tensor.Region, ins []*View, inShapes []tensor.Shape) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		base := 0
		for j, s := range inShapes {
			if c < base+s.C {
				res.Set(h, w, c, ins[j].At(h, w, c-base))
				return
			}
			base += s.C
		}
		panic("exec: concat channel out of range")
	})
	return res
}

// act applies the integer activation. The nonlinear functions use
// fixed-point rational approximations: exactness only requires
// determinism, not numerical fidelity.
func act(f ops.ActFunc, x int32) int32 {
	switch f {
	case ops.ReLU:
		if x < 0 {
			return 0
		}
		return x
	case ops.ReLU6:
		if x < 0 {
			return 0
		}
		if x > 6*16 {
			return 6 * 16
		}
		return x
	case ops.Sigmoid:
		ax := x
		if ax < 0 {
			ax = -ax
		}
		return 32 + (x*32)/(64+ax)
	case ops.HSwish:
		t := x + 48
		if t < 0 {
			t = 0
		}
		if t > 96 {
			t = 96
		}
		return (x * t) / 96
	case ops.TanH:
		ax := x
		if ax < 0 {
			ax = -ax
		}
		return (x * 64) / (64 + ax)
	default:
		panic(fmt.Sprintf("exec: unknown activation %v", f))
	}
}

func applyActivation(o ops.Activation, out tensor.Region, in *View) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		res.Set(h, w, c, act(o.Func, in.At(h, w, c)))
	})
	return res
}

// applySoftmax computes a shifted log-softmax surrogate (x - max over
// channels): integer-exact while still exercising the full-channel
// reduction.
func applySoftmax(out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	for oh := out.Off.H; oh < out.End(tensor.AxisH); oh++ {
		for ow := out.Off.W; ow < out.End(tensor.AxisW); ow++ {
			best := in.At(oh, ow, 0)
			for c := 1; c < inShape.C; c++ {
				if v := in.At(oh, ow, c); v > best {
					best = v
				}
			}
			for oc := out.Off.C; oc < out.End(tensor.AxisC); oc++ {
				res.Set(oh, ow, oc, in.At(oh, ow, oc)-best)
			}
		}
	}
	return res
}

func applyResize(o ops.Resize, out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	const fp = 256
	forEach(out, func(h, w, c int) {
		if o.Mode == ops.Nearest {
			res.Set(h, w, c, in.At(h/o.ScaleH, w/o.ScaleW, c))
			return
		}
		// Bilinear with half-pixel centers in 8.8 fixed point.
		sy := ((2*h+1)*fp/(2*o.ScaleH) - fp/2)
		sx := ((2*w+1)*fp/(2*o.ScaleW) - fp/2)
		y0 := floorDiv(sy, fp)
		x0 := floorDiv(sx, fp)
		fy := sy - y0*fp
		fx := sx - x0*fp
		v := func(y, x int) int32 {
			if y < 0 {
				y = 0
			}
			if y > inShape.H-1 {
				y = inShape.H - 1
			}
			if x < 0 {
				x = 0
			}
			if x > inShape.W-1 {
				x = inShape.W - 1
			}
			return read(in, inShape, y, x, c)
		}
		top := v(y0, x0)*int32(fp-fx) + v(y0, x0+1)*int32(fx)
		bot := v(y0+1, x0)*int32(fp-fx) + v(y0+1, x0+1)*int32(fx)
		res.Set(h, w, c, (top*int32(fp-fy)+bot*int32(fy))/(fp*fp))
	})
	return res
}

func applyCrop(o ops.Crop, out tensor.Region, in *View) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		res.Set(h, w, c, in.At(h+o.Top, w+o.Left, c))
	})
	return res
}

func applyChannelSlice(o ops.ChannelSlice, out tensor.Region, in *View) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		res.Set(h, w, c, in.At(h, w, c+o.From))
	})
	return res
}

func applyChannelShuffle(o ops.ChannelShuffle, out tensor.Region, in *View, inShape tensor.Shape) *View {
	res := NewView(out)
	forEach(out, func(h, w, c int) {
		res.Set(h, w, c, in.At(h, w, o.SourceChannel(c, inShape.C)))
	})
	return res
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// forEach visits every coordinate of a region.
func forEach(r tensor.Region, f func(h, w, c int)) {
	for h := r.Off.H; h < r.End(tensor.AxisH); h++ {
		for w := r.Off.W; w < r.End(tensor.AxisW); w++ {
			for c := r.Off.C; c < r.End(tensor.AxisC); c++ {
				f(h, w, c)
			}
		}
	}
}

package loadgen

import (
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/parallel"
)

// replayPoint replays one offered-load point: o.Requests requests,
// split across shards, each shard owning its slice of the device pool.
// rate is the offered load in requests/second (ignored by the closed
// loop). Shards run under the worker pool but are data-independent, so
// the merged result does not depend on scheduling.
func replayPoint(rm *Mix, o Options, rate float64) Point {
	shards := make([]*shard, o.Shards)
	var assigned int64
	for s := range shards {
		n := splitRange(o.Requests, s, o.Shards)
		shards[s] = newShard(rm, o, s, n)
		assigned += n
	}

	parallel.ForEach(len(shards), func(i int) error {
		sh := shards[i]
		if o.Arrival == ArrivalClosed {
			sh.runClosed()
		} else {
			// Each shard offers its proportional slice of the rate, so
			// the aggregate arrival process has the requested intensity.
			sh.runOpen(rate * float64(sh.requests) / float64(assigned))
		}
		return nil
	})

	// Merge per-shard results in shard order: bucket counts add
	// exactly, so the merged quantiles equal a single histogram's.
	agg := shards[0]
	for _, sh := range shards[1:] {
		agg.latency.Merge(&sh.latency)
		for m := range agg.perModel {
			agg.perModel[m].Merge(&sh.perModel[m])
		}
		if sh.maxUS > agg.maxUS {
			agg.maxUS = sh.maxUS
		}
		if sh.maxCompletion > agg.maxCompletion {
			agg.maxCompletion = sh.maxCompletion
		}
		agg.batches += sh.batches
	}

	p := Point{
		OfferedRPS: round3(rate),
		Requests:   agg.latency.Count(),
		MakespanUS: round3(agg.maxCompletion),
		Latency:    summarize(agg.latency.Dist(), agg.maxUS),
	}
	if agg.maxCompletion > 0 {
		p.AchievedRPS = round3(float64(p.Requests) / (agg.maxCompletion * 1e-6))
	}
	if o.BatchWindowUS > 0 && agg.batches > 0 {
		p.Batches = agg.batches
		p.MeanBatch = round3(float64(p.Requests) / float64(agg.batches))
	}
	for m := range agg.perModel {
		d := agg.perModel[m].Dist()
		p.PerModel = append(p.PerModel, ModelPoint{
			Model:   rm.entries[m].Model,
			Config:  rm.entries[m].Config,
			Latency: summarize(d, 0),
		})
	}
	return p
}

// device is one simulated NPU's timeline within a shard. Work is
// tracked as a busy horizon plus at most one open (unissued) batch.
type device struct {
	busyUntil float64
	batModel  int // -1 = no open batch
	batCount  int
	batFirst  float64
	arrivals  [batchCap]float64
}

// shard is the per-goroutine replay state: its own devices, RNG, and
// histograms. Everything is preallocated in newShard; the replay loop
// itself performs no allocation.
type shard struct {
	mix      []resolved
	requests int64

	devices  []device
	clients  int
	windowUS float64
	batchMax int
	discount float64
	thinkUS  float64

	rng prng

	latency       metrics.Histogram
	perModel      []metrics.Histogram
	maxUS         int64
	maxCompletion float64
	batches       int64

	// closed-loop client heap: parallel arrays, min by (time, id).
	heapT  []float64
	heapID []int32
}

func newShard(rm *Mix, o Options, index int, requests int64) *shard {
	devices := int(splitRange(int64(o.Devices), index, o.Shards))
	if devices < 1 {
		devices = 1
	}
	clients := int(splitRange(int64(o.Clients), index, o.Shards))
	if clients < 1 {
		clients = 1
	}
	sh := &shard{
		mix:      rm.entries,
		requests: requests,
		devices:  make([]device, devices),
		clients:  clients,
		windowUS: o.BatchWindowUS,
		batchMax: o.BatchMax,
		discount: o.BatchDiscount,
		thinkUS:  o.ThinkUS,
		// Decorrelate shard streams: golden-ratio offsets per shard
		// index, so shard 0 of seed 1 is unrelated to shard 1's stream.
		rng:      prng(o.Seed + uint64(index+1)*0x9e3779b97f4a7c15),
		perModel: make([]metrics.Histogram, len(rm.entries)),
	}
	for d := range sh.devices {
		sh.devices[d].batModel = -1
	}
	return sh
}

// prng is splitmix64: fast, full-period, allocation-free, and
// host-independent — the backbone of the -seed reproducibility
// contract.
type prng uint64

func (p *prng) next() uint64 {
	*p += 0x9e3779b97f4a7c15
	z := uint64(*p)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// uniform returns a float64 in [0, 1).
func (p *prng) uniform() float64 {
	return float64(p.next()>>11) / (1 << 53)
}

// exp returns a standard-exponential variate.
func (p *prng) exp() float64 {
	return -math.Log(1 - p.uniform())
}

func (sh *shard) uniform() float64 { return sh.rng.uniform() }
func (sh *shard) exp() float64     { return sh.rng.exp() }

// sample draws a mix entry index by cumulative weight. Mixes are a
// handful of entries, so a linear scan beats any fancier structure.
func (sh *shard) sample() int {
	u := sh.uniform()
	for i := range sh.mix {
		if u < sh.mix[i].cum {
			return i
		}
	}
	return len(sh.mix) - 1
}

// runOpen replays an open-loop (Poisson) arrival stream at ratePerSec
// through the shard's devices.
func (sh *shard) runOpen(ratePerSec float64) {
	meanGapUS := 1e6 / ratePerSec
	t := 0.0
	for i := int64(0); i < sh.requests; i++ {
		t += sh.exp() * meanGapUS
		sh.dispatch(sh.sample(), t)
	}
	sh.flush()
}

// dispatch routes one request: join an open same-model batch if one is
// accepting, otherwise seal the chosen device's open batch and start a
// new one. The scan is deterministic (lowest joinable index wins; ties
// on load go to the lowest index).
func (sh *shard) dispatch(m int, t float64) {
	if sh.windowUS > 0 {
		for d := range sh.devices {
			dev := &sh.devices[d]
			if dev.batModel == m && dev.batCount < sh.batchMax && t <= dev.batFirst+sh.windowUS {
				dev.arrivals[dev.batCount] = t
				dev.batCount++
				return
			}
		}
	}
	best, bestLoad := 0, math.Inf(1)
	for d := range sh.devices {
		dev := &sh.devices[d]
		load := dev.busyUntil + sh.openCost(dev)
		if load < bestLoad {
			best, bestLoad = d, load
		}
	}
	dev := &sh.devices[best]
	sh.seal(dev)
	dev.batModel = m
	dev.batCount = 1
	dev.batFirst = t
	dev.arrivals[0] = t
	if sh.windowUS == 0 {
		sh.seal(dev) // no batching: issue immediately
	}
}

// openCost estimates the unissued work already promised to a device.
func (sh *shard) openCost(dev *device) float64 {
	if dev.batCount == 0 {
		return 0
	}
	svc := sh.mix[dev.batModel].serviceUS
	return svc * (1 + sh.discount*float64(dev.batCount-1))
}

// seal issues a device's open batch: it becomes ready when its window
// closes (or immediately at its last arrival, if it filled), starts
// when the device frees, and every member completes at batch end.
func (sh *shard) seal(dev *device) {
	if dev.batCount == 0 {
		return
	}
	ready := dev.batFirst + sh.windowUS
	if dev.batCount >= sh.batchMax {
		ready = dev.arrivals[dev.batCount-1]
	}
	start := dev.busyUntil
	if ready > start {
		start = ready
	}
	svc := sh.mix[dev.batModel].serviceUS
	end := start + svc*(1+sh.discount*float64(dev.batCount-1))
	for i := 0; i < dev.batCount; i++ {
		sh.observe(dev.batModel, end-dev.arrivals[i])
	}
	dev.busyUntil = end
	if end > sh.maxCompletion {
		sh.maxCompletion = end
	}
	sh.batches++
	dev.batCount = 0
	dev.batModel = -1
}

// flush seals every still-open batch at end of stream.
func (sh *shard) flush() {
	for d := range sh.devices {
		sh.seal(&sh.devices[d])
	}
}

// observe records one completed request's latency (µs).
func (sh *shard) observe(m int, latUS float64) {
	us := int64(latUS)
	d := time.Duration(us) * time.Microsecond
	sh.latency.Observe(d)
	sh.perModel[m].Observe(d)
	if us > sh.maxUS {
		sh.maxUS = us
	}
}

// runClosed replays a closed loop: sh.clients virtual clients each
// issue, wait for completion, think, and reissue, until the shard's
// request quota is spent. Batching does not apply — a closed-loop
// client has at most one request outstanding, so the window would
// never coalesce anything (the window is an open-loop construct).
func (sh *shard) runClosed() {
	k := sh.clients
	if sh.heapT == nil {
		sh.heapT = make([]float64, 0, k)
		sh.heapID = make([]int32, 0, k)
	}
	for i := 0; i < k; i++ {
		sh.heapPush(0, int32(i))
	}
	for i := int64(0); i < sh.requests; i++ {
		t, id := sh.heapPop()
		m := sh.sample()
		best, bestBusy := 0, math.Inf(1)
		for d := range sh.devices {
			if b := sh.devices[d].busyUntil; b < bestBusy {
				best, bestBusy = d, b
			}
		}
		dev := &sh.devices[best]
		start := dev.busyUntil
		if t > start {
			start = t
		}
		end := start + sh.mix[m].serviceUS
		sh.observe(m, end-t)
		dev.busyUntil = end
		if end > sh.maxCompletion {
			sh.maxCompletion = end
		}
		next := end
		if sh.thinkUS > 0 {
			next += sh.exp() * sh.thinkUS
		}
		sh.heapPush(next, id)
	}
}

// heapPush/heapPop implement a binary min-heap over (time, client id)
// on preallocated parallel slices — deterministic tie-break by id,
// no interfaces, no allocation after warm-up.
func (sh *shard) heapPush(t float64, id int32) {
	sh.heapT = append(sh.heapT, t)
	sh.heapID = append(sh.heapID, id)
	i := len(sh.heapT) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !heapLess(sh.heapT[i], sh.heapID[i], sh.heapT[p], sh.heapID[p]) {
			break
		}
		sh.heapSwap(i, p)
		i = p
	}
}

func (sh *shard) heapPop() (float64, int32) {
	t, id := sh.heapT[0], sh.heapID[0]
	last := len(sh.heapT) - 1
	sh.heapSwap(0, last)
	sh.heapT = sh.heapT[:last]
	sh.heapID = sh.heapID[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < last && heapLess(sh.heapT[l], sh.heapID[l], sh.heapT[min], sh.heapID[min]) {
			min = l
		}
		if r < last && heapLess(sh.heapT[r], sh.heapID[r], sh.heapT[min], sh.heapID[min]) {
			min = r
		}
		if min == i {
			break
		}
		sh.heapSwap(i, min)
		i = min
	}
	return t, id
}

func (sh *shard) heapSwap(i, j int) {
	sh.heapT[i], sh.heapT[j] = sh.heapT[j], sh.heapT[i]
	sh.heapID[i], sh.heapID[j] = sh.heapID[j], sh.heapID[i]
}

func heapLess(t1 float64, id1 int32, t2 float64, id2 int32) bool {
	if t1 != t2 {
		return t1 < t2
	}
	return id1 < id2
}

// round3 keeps report floats stable and readable: 3 decimal places is
// beyond the model's fidelity but well within float64 exactness.
func round3(v float64) float64 {
	return math.Round(v*1000) / 1000
}

package tiling

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// convSub returns a spatially partitioned conv layer and its middle
// core's sub-layer.
func convSub(t *testing.T, h, w, c, outC int) (*graph.Graph, *graph.Layer, partition.Plan) {
	t.Helper()
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(h, w, c))
	id := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, outC,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	l := g.Layer(id)
	plan := partition.New(g, arch.Exynos2100Like()).PlanLayer(l)
	return g, l, plan
}

func TestTilesCoverSubLayer(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	for core, sub := range plan.Subs {
		tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, core, Options{Direction: plan.Direction})
		if err != nil {
			t.Fatalf("core %d: %v", core, err)
		}
		if err := Validate(&tp, sub); err != nil {
			t.Errorf("core %d: %v", core, err)
		}
	}
}

func TestPipeliningPrefersThreeTiles(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	sub := plan.Subs[0]
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTiles() < 3 {
		t.Errorf("tiles = %d, want >= 3 for pipelining", tp.NumTiles())
	}
	if tp.Axis != tensor.AxisH {
		t.Errorf("axis = %v, want H (match partition direction)", tp.Axis)
	}
}

func TestSPMPressureForcesMoreTiles(t *testing.T) {
	g, l, plan := convSub(t, 256, 256, 64, 64)
	small := arch.Exynos2100Like()
	for i := range small.Cores {
		small.Cores[i].SPMBytes = 256 << 10
	}
	big := arch.Exynos2100Like()
	for i := range big.Cores {
		big.Cores[i].SPMBytes = 64 << 20
	}
	sub := plan.Subs[0]
	tpSmall, err := New(small).PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	tpBig, err := New(big).PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	if tpSmall.NumTiles() <= tpBig.NumTiles() {
		t.Errorf("small SPM %d tiles, big SPM %d tiles; small must tile more",
			tpSmall.NumTiles(), tpBig.NumTiles())
	}
}

func TestTooSmallSPMErrors(t *testing.T) {
	g, l, plan := convSub(t, 256, 256, 64, 64)
	tiny := arch.Exynos2100Like()
	for i := range tiny.Cores {
		tiny.Cores[i].SPMBytes = 1 << 10 // 1 KB: nothing fits
	}
	_, err := New(tiny).PlanSubLayer(l, g.InShapes(l), plan.Subs[0], 0, Options{Direction: plan.Direction})
	if err == nil {
		t.Error("expected SPM-fit error")
	}
}

func TestHaloFirstOrdering(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	sub := plan.Subs[1] // middle core: halo on both sides
	opt := Options{
		Direction: plan.Direction,
		HaloLo:    true, HaloHi: true,
		HaloWidth: 1,
		HaloFirst: true,
	}
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !tp.HaloFirst {
		t.Fatal("HaloFirst not recorded")
	}
	if err := Validate(&tp, sub); err != nil {
		t.Fatal(err)
	}
	// All halo-producing tiles must precede all interior tiles.
	seenInterior := false
	haloCount := 0
	for _, tile := range tp.Tiles {
		if tile.ProducesHalo {
			haloCount++
			if seenInterior {
				t.Error("halo tile scheduled after interior tile")
			}
		} else {
			seenInterior = true
		}
	}
	if haloCount == 0 {
		t.Error("no halo tiles marked for middle core")
	}
	// Without halo-first, creation order is kept.
	tp2, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 1, Options{
		Direction: plan.Direction, HaloLo: true, HaloHi: true, HaloWidth: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, tile := range tp2.Tiles {
		if tile.Index != tp2.Tiles[0].Index+i {
			t.Error("natural order not preserved without halo-first")
			break
		}
	}
}

func TestEdgeCoreHaloOnlyOneSide(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	sub := plan.Subs[0] // top core: halo only below (toward core 1)
	opt := Options{Direction: plan.Direction, HaloHi: true, HaloWidth: 1, HaloFirst: true}
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, opt)
	if err != nil {
		t.Fatal(err)
	}
	haloCount := 0
	for _, tile := range tp.Tiles {
		if tile.ProducesHalo {
			haloCount++
		}
	}
	if haloCount != 1 {
		t.Errorf("edge core halo tiles = %d, want 1", haloCount)
	}
}

func TestChannelTilingSplitsKernel(t *testing.T) {
	// Channel-partitioned depthwise layer tiles along C; every tile
	// carries its own kernel slice.
	g := graph.New("t", tensor.Int8)
	in := g.Input("input", tensor.NewShape(8, 8, 512))
	id := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	l := g.Layer(id)
	a := arch.Exynos2100Like()
	plan := partition.New(g, a).PlanLayer(l)
	if plan.Direction != partition.DirChannel {
		t.Skip("not channel partitioned")
	}
	tiler := New(a)
	sub := plan.Subs[0]
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Axis != tensor.AxisC {
		t.Fatalf("axis = %v, want C", tp.Axis)
	}
	var kb int64
	for _, tile := range tp.Tiles {
		if tp.NumTiles() > 1 && tile.KernelBytes == 0 {
			t.Error("channel tile missing kernel slice")
		}
		kb += tile.KernelBytes
		// Channel tiles must respect the core's channel alignment
		// except possibly the last.
		if tile.Out.Ext.C%a.Cores[0].AlignC != 0 && tile.Out.End(tensor.AxisC) != sub.Out.End(tensor.AxisC) {
			t.Errorf("tile channels %d not aligned", tile.Out.Ext.C)
		}
	}
	if kb != sub.KernelBytes {
		t.Errorf("tile kernels sum %d != sub kernel %d", kb, sub.KernelBytes)
	}
}

func TestSpatialTilingSingleKernelGroup(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	sub := plan.Subs[0]
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	// Spatial tiling without channel pressure: one kernel group whose
	// slice is the whole kernel, shared by every tile.
	for _, tile := range tp.Tiles {
		if tile.CGroup != 0 {
			t.Errorf("tile %d in group %d; expected a single group", tile.Index, tile.CGroup)
		}
		if tile.KernelBytes != sub.KernelBytes {
			t.Errorf("tile kernel slice = %d, want full kernel %d", tile.KernelBytes, sub.KernelBytes)
		}
	}
}

func TestEmptySubLayer(t *testing.T) {
	g, l, _ := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), partition.SubLayer{Core: 0}, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tp.NumTiles() != 0 {
		t.Errorf("empty sub-layer got %d tiles", tp.NumTiles())
	}
	if err := Validate(&tp, partition.SubLayer{Core: 0}); err != nil {
		t.Error(err)
	}
}

func TestForwardedInputReducesSPMNeed(t *testing.T) {
	g, l, plan := convSub(t, 128, 128, 64, 64)
	a := arch.Exynos2100Like()
	tiler := New(a)
	sub := plan.Subs[0]
	plain, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	fwd, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{
		Direction: plan.Direction, ForwardedInput: []bool{true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if fwd.NumTiles() > plain.NumTiles() {
		t.Errorf("forwarded input needed more tiles (%d > %d)", fwd.NumTiles(), plain.NumTiles())
	}
}

func TestValidateCatchesBadPlans(t *testing.T) {
	g, l, plan := convSub(t, 96, 96, 32, 64)
	tiler := New(arch.Exynos2100Like())
	sub := plan.Subs[0]
	tp, err := tiler.PlanSubLayer(l, g.InShapes(l), sub, 0, Options{Direction: plan.Direction})
	if err != nil {
		t.Fatal(err)
	}
	// Drop a tile: coverage broken.
	bad := Plan{Axis: tp.Axis, Tiles: tp.Tiles[1:]}
	if err := Validate(&bad, sub); err == nil {
		t.Error("missing tile not caught")
	}
	// Duplicate a tile: overlap.
	dup := Plan{Axis: tp.Axis, Tiles: append([]Tile{tp.Tiles[0]}, tp.Tiles...)}
	if err := Validate(&dup, sub); err == nil {
		t.Error("overlapping tiles not caught")
	}
}

package schedule

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// branchy builds:
//
//	input -> a -> b -> d
//	          \-> c -/   (a has two users b, c; d = add(b, c))
func branchy() *graph.Graph {
	g := graph.New("branchy", tensor.Int8)
	in := g.Input("input", tensor.NewShape(16, 16, 8))
	a := g.MustAdd("a", ops.Activation{Func: ops.ReLU}, in)
	b := g.MustAdd("b", ops.NewConv2D(1, 1, 1, 1, 8, ops.Padding{}), a)
	c := g.MustAdd("c", ops.NewConv2D(3, 3, 1, 1, 8,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), a)
	g.MustAdd("d", ops.Add{Arity: 2}, b, c)
	return g
}

func TestOrderIsTopological(t *testing.T) {
	g := branchy()
	order := New(g, nil).Order()
	if err := Verify(g, order); err != nil {
		t.Fatal(err)
	}
}

func TestDepthFirstFollowsSuccessor(t *testing.T) {
	g := branchy()
	order := DepthFirst(g)
	if err := Verify(g, order); err != nil {
		t.Fatal(err)
	}
	// Depth-first from input: input, a, then one branch then the other.
	names := orderNames(g, order)
	if names[0] != "input" || names[1] != "a" {
		t.Errorf("order = %v", names)
	}
}

func TestBreadthFirst(t *testing.T) {
	g := branchy()
	order := BreadthFirst(g)
	if err := Verify(g, order); err != nil {
		t.Fatal(err)
	}
	names := orderNames(g, order)
	// BFS: b and c are adjacent, both before d.
	if names[2] != "b" || names[3] != "c" {
		t.Errorf("order = %v", names)
	}
}

func TestSiblingPreferredWhenNotSpatial(t *testing.T) {
	// Two independent chains from one input. With a never-spatial
	// predicate, after scheduling x1 the scheduler must jump to the
	// sibling chain (y1) instead of following x2.
	g := graph.New("twochain", tensor.Int8)
	in := g.Input("input", tensor.NewShape(16, 16, 8))
	x1 := g.MustAdd("x1", ops.Activation{Func: ops.ReLU}, in)
	g.MustAdd("x2", ops.Activation{Func: ops.ReLU}, x1)
	y1 := g.MustAdd("y1", ops.Activation{Func: ops.ReLU6}, in)
	g.MustAdd("y2", ops.Activation{Func: ops.ReLU6}, y1)

	never := func(*graph.Layer) bool { return false }
	order := New(g, never).Order()
	if err := Verify(g, order); err != nil {
		t.Fatal(err)
	}
	names := orderNames(g, order)
	// After input, the two chain heads should alternate with the
	// sibling policy: x1, y1 (or y1, x1), not x1, x2.
	if names[1] == "x1" && names[2] == "x2" {
		t.Errorf("sibling policy not applied: %v", names)
	}
	if names[1] == "y1" && names[2] == "y2" {
		t.Errorf("sibling policy not applied: %v", names)
	}

	// With an always-spatial predicate the successor is followed.
	always := func(*graph.Layer) bool { return true }
	order2 := New(g, always).Order()
	names2 := orderNames(g, order2)
	if !(names2[1] == "x1" && names2[2] == "x2") && !(names2[1] == "y1" && names2[2] == "y2") {
		t.Errorf("successor policy not applied: %v", names2)
	}
}

func TestEmptyGraphOrder(t *testing.T) {
	g := graph.New("empty", tensor.Int8)
	if got := New(g, nil).Order(); got != nil {
		t.Errorf("empty graph order = %v", got)
	}
}

func TestVerifyCatchesErrors(t *testing.T) {
	g := branchy()
	order := DepthFirst(g)
	if err := Verify(g, order[:3]); err == nil {
		t.Error("short order accepted")
	}
	bad := append([]graph.LayerID(nil), order...)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	if err := Verify(g, bad); err == nil {
		t.Error("non-topological order accepted")
	}
	dup := append([]graph.LayerID(nil), order...)
	dup[1] = dup[0]
	if err := Verify(g, dup); err == nil {
		t.Error("duplicated order accepted")
	}
}

func orderNames(g *graph.Graph, order []graph.LayerID) []string {
	names := make([]string, len(order))
	for i, id := range order {
		names[i] = g.Layer(id).Name
	}
	return names
}

// Property: for random layered DAGs, Algorithm 1 with a random spatial
// predicate always yields a complete topological order.
func TestOrderAlwaysTopological(t *testing.T) {
	f := func(widths [4]uint8, pred uint8) bool {
		g := graph.New("rand", tensor.Int8)
		prev := []graph.LayerID{g.Input("input", tensor.NewShape(8, 8, 4))}
		name := 0
		for _, wRaw := range widths {
			w := int(wRaw%3) + 1
			var level []graph.LayerID
			for j := 0; j < w; j++ {
				src := prev[(int(wRaw)+j)%len(prev)]
				name++
				id := g.MustAdd(
					string(rune('a'+name%26))+string(rune('0'+name/26)),
					ops.Activation{Func: ops.ReLU}, src)
				level = append(level, id)
			}
			prev = level
		}
		p := func(l *graph.Layer) bool { return (int(pred)+int(l.ID))%2 == 0 }
		order := New(g, p).Order()
		return Verify(g, order) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

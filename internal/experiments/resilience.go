package experiments

import (
	"errors"
	"fmt"
	"io"
	"reflect"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/recovery"
	"repro/internal/sim"
)

// resilienceFracs are the watchdog heartbeat intervals swept per
// model, as fractions of the model's clean end-to-end latency.
var resilienceFracs = []float64{0.02, 0.05, 0.10}

// resilienceFlipRate is the per-transfer corruption probability of the
// silent-data-corruption leg — high enough that every Table 2 model
// sees at least one flip at any seed.
const resilienceFlipRate = 0.05

// HangRow is one (model, heartbeat) point of the hang-detection sweep:
// a core silently stalls halfway through a clean run, the watchdog
// catches it, and recovery re-executes the suffix on the survivors.
type HangRow struct {
	Model string `json:"model"`
	// HeartbeatFrac is the watchdog interval as a fraction of the
	// model's clean latency.
	HeartbeatFrac float64 `json:"heartbeat_frac"`
	// Detected: the run returned a typed HangDetected (never false in a
	// written report — a miss fails the experiment — but CI gates on it).
	Detected bool `json:"detected"`
	// DetectionLatencyBeats is the detection latency in heartbeat
	// units; the watchdog guarantees <= 2.
	DetectionLatencyBeats float64 `json:"detection_latency_beats"`
	// EngineMatch: the reference engine returned a bit-identical
	// detection (same cores, cycle, checkpoint, partial stats).
	EngineMatch bool `json:"engine_match"`
	metrics.ResilienceReport
}

// FlipRow is one model's silent-data-corruption leg: seeded bit-flips
// on DMA transfers, caught at stratum-boundary checksums, repaired by
// re-executing only the corrupted strata.
type FlipRow struct {
	Model    string  `json:"model"`
	FlipRate float64 `json:"flip_rate"`
	// FlipsInjected counts the corrupted transfers per the reference
	// engine (the independent oracle); FlipsDetected per the event
	// engine. The acceptance gate requires them equal — every injected
	// flip surfaced at a stratum boundary in both implementations.
	FlipsInjected int `json:"flips_injected"`
	FlipsDetected int `json:"flips_detected"`
	// EngineMatch: both engines reported identical Corruption lists.
	EngineMatch bool `json:"engine_match"`
	metrics.CorruptionReport
}

// ResilienceBench is the BENCH_resilience.json payload.
type ResilienceBench struct {
	Seed  uint64    `json:"seed"`
	Hangs []HangRow `json:"hangs"`
	Flips []FlipRow `json:"flips"`
}

// Resilience sweeps hang detection and silent-data-corruption repair
// over every Table 2 model under +Stratum. Deterministic: the same
// seed produces an identical report at any worker count.
func Resilience(seed uint64) (*ResilienceBench, error) {
	a := arch.Exynos2100Like()
	opt := core.Stratum()
	ms := models.All()

	hangs, err := parallel.Map(len(ms)*len(resilienceFracs), func(i int) (HangRow, error) {
		m := ms[i/len(resilienceFracs)]
		frac := resilienceFracs[i%len(resilienceFracs)]
		g := m.Build()
		res, err := core.CompileCached(g, a, opt)
		if err != nil {
			return HangRow{}, fmt.Errorf("resilience %s: %w", m.Name, err)
		}
		clean, err := sim.Run(res.Program, simConfig())
		if err != nil {
			return HangRow{}, fmt.Errorf("resilience %s clean: %w", m.Name, err)
		}
		cleanCycles := clean.Stats.TotalCycles
		// Inject off the heartbeat grid (0.437 is not a multiple of any
		// swept fraction), so the sweep measures real detection latency
		// instead of a beat landing exactly on the injection cycle.
		injectAt := 0.437 * cleanCycles
		heartbeat := frac * cleanCycles

		cfg := simConfig()
		cfg.Faults = &fault.Plan{Seed: seed, Hangs: []fault.Hang{{Core: 1, AtCycle: injectAt}}}
		cfg.WatchdogCycles = heartbeat
		_, eerr := sim.Run(res.Program, cfg)
		var hd *sim.HangDetected
		if !errors.As(eerr, &hd) {
			return HangRow{}, fmt.Errorf("resilience %s H=%g: hang not detected: %v", m.Name, frac, eerr)
		}
		_, rerr := sim.RunReference(res.Program, cfg)
		var hdRef *sim.HangDetected
		match := errors.As(rerr, &hdRef) && reflect.DeepEqual(hd, hdRef)

		rec, err := recovery.RecoverFrom(g, a, eerr, recovery.Options{Opt: opt, Sim: cfg})
		if err != nil {
			return HangRow{}, fmt.Errorf("resilience %s H=%g: recovery: %w", m.Name, frac, err)
		}
		rep, err := metrics.BuildResilience("hang", injectAt, heartbeat, cleanCycles, rec)
		if err != nil {
			return HangRow{}, fmt.Errorf("resilience %s H=%g: %w", m.Name, frac, err)
		}
		return HangRow{
			Model:                 m.Name,
			HeartbeatFrac:         frac,
			Detected:              true,
			DetectionLatencyBeats: rep.DetectionLatencyCycles / heartbeat,
			EngineMatch:           match,
			ResilienceReport:      rep,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	flips, err := parallel.Map(len(ms), func(i int) (FlipRow, error) {
		m := ms[i]
		g := m.Build()
		res, err := core.CompileCached(g, a, opt)
		if err != nil {
			return FlipRow{}, fmt.Errorf("resilience %s: %w", m.Name, err)
		}
		clean, err := sim.Run(res.Program, simConfig())
		if err != nil {
			return FlipRow{}, fmt.Errorf("resilience %s clean: %w", m.Name, err)
		}
		cfg := simConfig()
		cfg.Faults = &fault.Plan{Seed: seed, FlipRate: resilienceFlipRate}
		outE, err := sim.Run(res.Program, cfg)
		if err != nil {
			return FlipRow{}, fmt.Errorf("resilience %s flips: %w", m.Name, err)
		}
		outR, err := sim.RunReference(res.Program, cfg)
		if err != nil {
			return FlipRow{}, fmt.Errorf("resilience %s flips (reference): %w", m.Name, err)
		}
		detected, injected := 0, 0
		for _, c := range outE.Corruptions {
			detected += c.Transfers
		}
		for _, c := range outR.Corruptions {
			injected += c.Transfers
		}
		if detected == 0 {
			return FlipRow{}, fmt.Errorf("resilience %s: flip rate %g injected nothing", m.Name, resilienceFlipRate)
		}

		// Repair cost: re-execute exactly the corrupted strata. Each
		// stratum's inputs are DRAM-resident at its boundary, so the
		// repair graph compiles and runs stand-alone.
		reexecLayers, reexecCycles := 0, 0.0
		for _, c := range outE.Corruptions {
			layers := sim.StratumLayers(res.Program, c.Stratum)
			sub, _, err := recovery.StratumGraph(g, layers)
			if err != nil {
				return FlipRow{}, fmt.Errorf("resilience %s stratum %d: %w", m.Name, c.Stratum, err)
			}
			subRes, err := core.CompileCached(sub, a, opt)
			if err != nil {
				return FlipRow{}, fmt.Errorf("resilience %s stratum %d: %w", m.Name, c.Stratum, err)
			}
			subOut, err := sim.Run(subRes.Program, simConfig())
			if err != nil {
				return FlipRow{}, fmt.Errorf("resilience %s stratum %d: %w", m.Name, c.Stratum, err)
			}
			reexecLayers += len(layers)
			reexecCycles += subOut.Stats.TotalCycles
		}
		return FlipRow{
			Model:            m.Name,
			FlipRate:         resilienceFlipRate,
			FlipsInjected:    injected,
			FlipsDetected:    detected,
			EngineMatch:      reflect.DeepEqual(outE.Corruptions, outR.Corruptions),
			CorruptionReport: metrics.BuildCorruption(clean.Stats.TotalCycles, outE.Corruptions, reexecLayers, reexecCycles),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &ResilienceBench{Seed: seed, Hangs: hangs, Flips: flips}, nil
}

// PrintResilience renders the sweep as tables.
func PrintResilience(w io.Writer, b *ResilienceBench) {
	fmt.Fprintf(w, "Silent-hang detection and recovery (+Stratum, hang on core 1 at 43.7%% of clean, seed %d)\n", b.Seed)
	fmt.Fprintf(w, "%-16s %6s %10s %10s %7s %10s %10s %8s %7s\n",
		"model", "hb", "latency", "beats", "dead", "wasted", "degraded", "ovh%", "engines")
	for _, r := range b.Hangs {
		fmt.Fprintf(w, "%-16s %5.0f%% %9.0fc %10.2f %7v %9.0fc %9.0fc %8.1f %7v\n",
			r.Model, 100*r.HeartbeatFrac, r.DetectionLatencyCycles, r.DetectionLatencyBeats,
			r.DeadCores, r.WastedCycles, r.DegradedCycles, r.OverheadPct, r.EngineMatch)
	}
	fmt.Fprintf(w, "\nSilent-data-corruption detection at stratum boundaries (flip rate %g)\n", resilienceFlipRate)
	fmt.Fprintf(w, "%-16s %8s %8s %8s %9s %10s %8s %7s\n",
		"model", "injected", "detected", "strata", "re-exec", "cycles", "ovh%", "engines")
	for _, r := range b.Flips {
		fmt.Fprintf(w, "%-16s %8d %8d %8d %9d %9.0fc %8.1f %7v\n",
			r.Model, r.FlipsInjected, r.FlipsDetected, r.Detected,
			r.ReExecutedLayers, r.ReExecutedCycles, r.OverheadPct, r.EngineMatch)
	}
}

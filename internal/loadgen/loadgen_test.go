package loadgen

import (
	"bytes"
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/serve"
	"repro/internal/sim"
)

// testMix exercises distinct models, configs, and core counts — four
// distinct replay-cache lines.
func testMix() []MixEntry {
	return []MixEntry{
		{Model: "TinyCNN", Weight: 4},
		{Model: "TinyCNN", Weight: 2, Config: "base"},
		{Model: "ShuffleNetV2", Weight: 3},
		{Model: "TinyCNN", Weight: 1, Cores: 1},
	}
}

// TestReplayCrossCheck is the acceptance gate for the replay cache:
// for every (model, config) point in the mix, the cached service
// latency every replayed request reuses is bit-identical to a fresh,
// uncached compile + sim of that point.
func TestReplayCrossCheck(t *testing.T) {
	rm, err := Resolve(testMix())
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range rm.Entries() {
		m, err := models.ByName(e.Model)
		if err != nil {
			t.Fatal(err)
		}
		a, err := cliutil.Arch(e.Cores)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := cliutil.Config(e.Config)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Compile(m.Build(), a, opt) // fresh, bypasses the cache
		if err != nil {
			t.Fatal(err)
		}
		out, err := sim.Run(res.Program, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		fresh := out.Stats.LatencyMicros(a.ClockMHz)
		if got := rm.ServiceUS(i); got != fresh {
			t.Errorf("%s/%s/%d cores: replay cache %v µs, fresh sim %v µs (must be bit-identical)",
				e.Model, e.Config, e.Cores, got, fresh)
		}
	}
}

// TestReplayExactCounts: every load point replays exactly the
// requested number of requests, and the per-model slices sum to it.
func TestReplayExactCounts(t *testing.T) {
	const n = 50_000
	rep, err := RunReplay(testMix(), Options{
		Requests: n,
		Rates:    []float64{500, 5_000},
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points = %d, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.Requests != n {
			t.Errorf("rate %v: %d requests, want exactly %d", p.OfferedRPS, p.Requests, n)
		}
		if p.Latency.Count != n {
			t.Errorf("rate %v: histogram count %d, want %d", p.OfferedRPS, p.Latency.Count, n)
		}
		var perModel int64
		for _, mp := range p.PerModel {
			perModel += mp.Latency.Count
		}
		if perModel != n {
			t.Errorf("rate %v: per-model counts sum to %d, want %d", p.OfferedRPS, perModel, n)
		}
		if p.Latency.P99US <= 0 || p.Latency.P999US < p.Latency.P99US {
			t.Errorf("rate %v: implausible tail: %+v", p.OfferedRPS, p.Latency)
		}
		if p.AchievedRPS <= 0 {
			t.Errorf("rate %v: no throughput reported", p.OfferedRPS)
		}
	}
	// Under heavier offered load, tail latency must not improve.
	if rep.Points[1].Latency.P99US < rep.Points[0].Latency.P99US {
		t.Errorf("p99 fell from %d to %d µs as offered load rose 10x",
			rep.Points[0].Latency.P99US, rep.Points[1].Latency.P99US)
	}
}

// TestReplayDeterminism is the -seed regression gate: two runs with
// the same seed produce byte-identical reports; a different seed does
// not.
func TestReplayDeterminism(t *testing.T) {
	opts := Options{Requests: 20_000, Rates: []float64{2_000}, BatchWindowUS: 500, Seed: 7}
	render := func(o Options) []byte {
		rep, err := RunReplay(testMix(), o)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := rep.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(opts), render(opts)
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different reports:\n%s\n----\n%s", a, b)
	}
	opts.Seed = 8
	if bytes.Equal(a, render(opts)) {
		t.Fatal("different seeds produced identical reports — RNG not seeded")
	}
}

// TestReplayBatching: with a window open and load clustered on one
// model, batches form, respect the cap, and coalesce multiple
// requests; the exact request count still holds.
func TestReplayBatching(t *testing.T) {
	mix := []MixEntry{{Model: "TinyCNN", Weight: 1}}
	rm, err := Resolve(mix)
	if err != nil {
		t.Fatal(err)
	}
	// 4x the pool's capacity: queues form and windows fill, whatever
	// TinyCNN's absolute service time is.
	rate := 4 * rm.CapacityRPS(16)
	const n = 30_000
	rep, err := RunReplay(mix, Options{
		Requests:      n,
		Rates:         []float64{rate},
		BatchWindowUS: 1_000,
		BatchMax:      8,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.Requests != n {
		t.Fatalf("requests %d, want %d", p.Requests, n)
	}
	if p.Batches == 0 || p.Batches >= n {
		t.Fatalf("batches = %d, want coalescing (0 < batches < %d)", p.Batches, n)
	}
	if p.MeanBatch <= 1 || p.MeanBatch > 8 {
		t.Fatalf("mean batch %v, want in (1, BatchMax=8]", p.MeanBatch)
	}

	// Batching must beat no-batching on throughput at saturation: the
	// discount makes marginal same-model items cheaper.
	noBatch, err := RunReplay(mix, Options{Requests: n, Rates: []float64{rate}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.AchievedRPS <= noBatch.Points[0].AchievedRPS {
		t.Errorf("batched throughput %v <= unbatched %v at saturation",
			p.AchievedRPS, noBatch.Points[0].AchievedRPS)
	}
}

// TestReplayClosedLoop: the closed loop issues exactly n requests and
// every latency is at least one service time.
func TestReplayClosedLoop(t *testing.T) {
	const n = 20_000
	rep, err := RunReplay(testMix(), Options{
		Requests: n,
		Arrival:  ArrivalClosed,
		Clients:  32,
		ThinkUS:  100,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 1 {
		t.Fatalf("closed loop points = %d, want 1", len(rep.Points))
	}
	p := rep.Points[0]
	if p.Requests != n || p.Latency.Count != n {
		t.Fatalf("requests %d / count %d, want %d", p.Requests, p.Latency.Count, n)
	}
	if p.OfferedRPS != 0 {
		t.Errorf("closed loop reported an offered rate: %v", p.OfferedRPS)
	}
	if p.AchievedRPS <= 0 {
		t.Error("closed loop reported no throughput")
	}
	// Fastest possible completion is the cheapest service time; the
	// √2-bucket quantile can sit one factor below it, no further.
	rm, err := Resolve(testMix())
	if err != nil {
		t.Fatal(err)
	}
	minSvc := rm.ServiceUS(0)
	for i := range rm.Entries() {
		if s := rm.ServiceUS(i); s < minSvc {
			minSvc = s
		}
	}
	if lo := int64(minSvc / 1.5); p.Latency.P50US < lo {
		t.Errorf("closed-loop p50 %d µs below any service time (min %v µs)", p.Latency.P50US, minSvc)
	}
}

// TestResolveErrors: bad mixes fail with errors, not panics.
func TestResolveErrors(t *testing.T) {
	if _, err := Resolve(nil); err == nil {
		t.Error("empty mix resolved")
	}
	if _, err := Resolve([]MixEntry{{Model: "NoSuchNet", Weight: 1}}); err == nil {
		t.Error("unknown model resolved")
	}
	if _, err := Resolve([]MixEntry{{Model: "TinyCNN", Weight: 0}}); err == nil {
		t.Error("zero weight resolved")
	}
	if _, err := RunReplay(testMix(), Options{Requests: 10, Arrival: "bursty"}); err == nil {
		t.Error("unknown arrival process accepted")
	}
	if _, err := RunReplay(testMix(), Options{Requests: 10, Rates: []float64{-1}}); err == nil {
		t.Error("negative rate accepted")
	}
}

// TestRunLive drives a real in-process serve.Server over HTTP through
// the streaming pool: exact request accounting and a populated tail.
func TestRunLive(t *testing.T) {
	s := serve.New(serve.Options{Concurrency: 4, Queue: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 40
	mix := []MixEntry{
		{Model: "TinyCNN", Weight: 3},
		{Model: "ShuffleNetV2", Weight: 1},
	}
	rep, err := RunLive(context.Background(), ts.URL, mix, Options{
		Requests: n,
		Arrival:  ArrivalClosed,
		Clients:  4,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.Requests != n {
		t.Fatalf("live requests %d, want exactly %d", p.Requests, n)
	}
	if p.Failed != 0 {
		t.Fatalf("%d live requests failed", p.Failed)
	}
	if p.Latency.Count != n || p.Latency.P99US <= 0 {
		t.Fatalf("live latency summary incomplete: %+v", p.Latency)
	}
	if rep.Mode != "live" || rep.Target != ts.URL {
		t.Errorf("report mode/target = %q/%q", rep.Mode, rep.Target)
	}
}

// Shed requests (429/503) are re-issued with backoff under
// -max-retries: an overloaded-then-recovering endpoint ends with zero
// failures, and the report accounts every re-issue.
func TestRunLiveRetriesSheds(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Shed two of every three attempts, alternating 429 and 503.
		switch hits.Add(1) % 3 {
		case 1:
			w.Header().Set("Retry-After", "0") // sub-second floor: ignored
			http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
		case 2:
			http.Error(w, `{"error":"draining"}`, http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{}`))
		}
	}))
	defer ts.Close()

	const n = 12
	mix := []MixEntry{{Model: "TinyCNN", Weight: 1}}
	rep, err := RunLive(context.Background(), ts.URL, mix, Options{
		Requests:   n,
		Arrival:    ArrivalClosed,
		Clients:    2,
		MaxRetries: 8,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.Requests != n || p.Failed != 0 || p.GaveUp != 0 {
		t.Fatalf("requests %d failed %d gave up %d, want %d/0/0", p.Requests, p.Failed, p.GaveUp, n)
	}
	if p.Retried == 0 {
		t.Error("sheds were never retried")
	}

	// Exhausted retries count the request as failed AND given up.
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"queue full"}`, http.StatusTooManyRequests)
	}))
	defer always.Close()
	rep, err = RunLive(context.Background(), always.URL, mix, Options{
		Requests:   4,
		Arrival:    ArrivalClosed,
		Clients:    2,
		MaxRetries: 1,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	p = rep.Points[0]
	if p.Failed != 4 || p.GaveUp != 4 || p.Retried != 4 {
		t.Errorf("always-shedding endpoint: failed %d gave up %d retried %d, want 4/4/4",
			p.Failed, p.GaveUp, p.Retried)
	}
}

// retryDelay grows exponentially, is jittered deterministically per
// (request, attempt), and honors the Retry-After floor.
func TestRetryDelayShape(t *testing.T) {
	for attempt := 1; attempt <= 5; attempt++ {
		d := retryDelay(7, 3, attempt, "")
		lo := time.Duration(float64(retryBase) * math.Pow(2, float64(attempt-1)) * 0.5)
		hi := time.Duration(float64(retryBase) * math.Pow(2, float64(attempt-1)) * 1.5)
		if hi > retryCap {
			hi = retryCap
		}
		if lo > retryCap {
			lo = retryCap
		}
		if d < lo || d > hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v]", attempt, d, lo, hi)
		}
		if again := retryDelay(7, 3, attempt, ""); again != d {
			t.Errorf("attempt %d: delay not deterministic: %v vs %v", attempt, d, again)
		}
	}
	if a, b := retryDelay(7, 3, 1, ""), retryDelay(7, 4, 1, ""); a == b {
		t.Error("different requests drew identical jitter")
	}
	if d := retryDelay(7, 3, 1, "2"); d != 2*time.Second {
		t.Errorf("Retry-After floor ignored: %v", d)
	}
}

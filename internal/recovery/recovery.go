// Package recovery implements the graceful-degradation path after a
// simulated core failure: it rebuilds the unexecuted suffix of the
// network as a fresh graph, re-compiles it for the surviving cores
// (reusing the whole partition/schedule/emit pipeline), and resumes
// from the failure's checkpoint. Recovery never changes numerics —
// the resumed computation consumes the checkpointed layer outputs
// exactly as they sit in global memory, and Validate proves the final
// result bit-exact against the whole-graph reference executor.
//
// Cascading failures are handled by iterating: if the resumed run
// loses another core, its checkpoint is folded back into the original
// graph's coordinates and the remainder is re-compiled again, until
// the network completes or no cores survive.
package recovery

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// DefaultRedispatchCycles models the host-side cost of detecting a
// core failure and re-dispatching the recompiled suffix (~15 us at
// 1.3 GHz) — charged once per failure on top of the wasted cycles.
const DefaultRedispatchCycles = 20000

// Options configures the recovery loop.
type Options struct {
	// Opt is the compiler configuration for recompiled suffixes
	// (typically the one the original program was built with).
	Opt core.Options
	// RedispatchCycles overrides DefaultRedispatchCycles when > 0.
	RedispatchCycles float64
	// Sim configures the resumed runs. Its fault plan keeps applying —
	// event times are interpreted in each resumed run's local clock,
	// and events naming already-dead cores are inert — which is how
	// cascading failures arise.
	Sim sim.Config
}

func (o Options) redispatch() float64 {
	if o.RedispatchCycles > 0 {
		return o.RedispatchCycles
	}
	return DefaultRedispatchCycles
}

// Result describes a completed recovery.
type Result struct {
	// Failures lists every core failure handled, in order (the initial
	// one first, then any cascades during resumed runs).
	Failures []*sim.CoreFailure
	// Hangs lists every watchdog detection handled. A hung core is
	// retired like a dead one — even a hang that would eventually
	// resume is not waited for, because the watchdog cannot know the
	// stall is transient.
	Hangs []*sim.HangDetected
	// DeadCores are the global indices lost, in failure order.
	DeadCores []int
	// Survivors are the global core indices the final run used.
	Survivors []int
	// Completed holds the checkpointed layers (original-graph IDs)
	// that the final suffix resumed from, in execution order.
	Completed []graph.LayerID
	// Suffix is the recompiled remainder of the network and Origin
	// maps its layer IDs back to the original graph's.
	Suffix *graph.Graph
	// Origin maps every suffix-graph layer (inputs included) to the
	// original-graph layer it stands for.
	Origin map[graph.LayerID]graph.LayerID
	// Compiled is the suffix program that ran to completion.
	Compiled *core.Result
	// Final is the simulation of the successful suffix run.
	Final *sim.Result
	// TotalCycles is the end-to-end degraded latency: every failed
	// attempt's wasted cycles, a re-dispatch penalty per failure, and
	// the final run.
	TotalCycles float64
}

// ReExecutedLayers counts the original-graph layers the final suffix
// had to recompute (compute layers only — checkpoint inputs excluded).
func (r *Result) ReExecutedLayers() int {
	n := 0
	for _, l := range r.Suffix.Layers() {
		if !l.IsInput() {
			n++
		}
	}
	return n
}

// SuffixGraph builds the graph of everything not yet completed:
// original layers outside the completed set keep their operators,
// while completed producers still feeding the suffix become input
// pseudo-layers (their outputs sit checkpointed in global memory).
// The returned map gives each new layer's original ID — needed to
// reproduce reference numerics (weights and input fills are keyed by
// original-graph IDs).
func SuffixGraph(g *graph.Graph, completed []graph.LayerID) (*graph.Graph, map[graph.LayerID]graph.LayerID, error) {
	done := make(map[graph.LayerID]bool, len(completed))
	for _, id := range completed {
		done[id] = true
	}
	suffix := graph.New(g.Name+"-suffix", g.DType)
	origin := make(map[graph.LayerID]graph.LayerID)
	idMap := make(map[graph.LayerID]graph.LayerID) // orig -> suffix

	addInput := func(orig *graph.Layer, name string) {
		nid := suffix.Input(name, orig.OutShape)
		idMap[orig.ID] = nid
		origin[nid] = orig.ID
	}

	var defaultDType = g.DType
	for _, l := range g.Layers() {
		// Inputs and checkpointed producers materialize lazily, only
		// when a suffix layer actually consumes them.
		if done[l.ID] || l.IsInput() {
			continue
		}
		for _, pid := range l.Inputs {
			if _, ok := idMap[pid]; ok {
				continue
			}
			p := g.Layer(pid)
			switch {
			case p.IsInput():
				addInput(p, p.Name)
			case done[pid]:
				addInput(p, "ckpt_"+p.Name)
			default:
				return nil, nil, fmt.Errorf("recovery: layer %s needs %s, which is neither completed nor in the suffix",
					l.Name, p.Name)
			}
		}
		ins := make([]graph.LayerID, len(l.Inputs))
		for i, pid := range l.Inputs {
			ins[i] = idMap[pid]
		}
		// Preserve per-layer element types the way graph.Subgraph does.
		suffix.DType = l.DType
		nid, err := suffix.Add(l.Name, l.Op, ins...)
		suffix.DType = defaultDType
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: rebuilding %s: %w", l.Name, err)
		}
		idMap[l.ID] = nid
		origin[nid] = l.ID
	}
	if suffix.Len() == 0 {
		return nil, nil, fmt.Errorf("recovery: nothing left to execute (%d layers completed)", len(completed))
	}
	return suffix, origin, nil
}

// StratumGraph builds the re-execution graph for one corrupted
// stratum: exactly the given layers keep their operators, and every
// producer outside the set becomes a checkpoint input pseudo-layer.
// This is sound because stratum boundaries publish their outputs to
// global memory: once the previous stratum's checksum verified, the
// inputs are DRAM-resident and known-good, so re-running just these
// layers repairs a silent corruption with a bounded blast radius.
// The returned map gives each new layer's original ID, as SuffixGraph.
func StratumGraph(g *graph.Graph, layers []graph.LayerID) (*graph.Graph, map[graph.LayerID]graph.LayerID, error) {
	in := make(map[graph.LayerID]bool, len(layers))
	for _, id := range layers {
		in[id] = true
	}
	sub := graph.New(g.Name+"-stratum", g.DType)
	origin := make(map[graph.LayerID]graph.LayerID)
	idMap := make(map[graph.LayerID]graph.LayerID) // orig -> sub

	addInput := func(orig *graph.Layer, name string) {
		nid := sub.Input(name, orig.OutShape)
		idMap[orig.ID] = nid
		origin[nid] = orig.ID
	}

	defaultDType := g.DType
	for _, l := range g.Layers() {
		if !in[l.ID] || l.IsInput() {
			continue
		}
		for _, pid := range l.Inputs {
			if _, ok := idMap[pid]; ok {
				continue
			}
			p := g.Layer(pid)
			switch {
			case p.IsInput():
				addInput(p, p.Name)
			case !in[pid]:
				addInput(p, "ckpt_"+p.Name)
			default:
				return nil, nil, fmt.Errorf("recovery: stratum layer %s needs %s before it was rebuilt",
					l.Name, p.Name)
			}
		}
		ins := make([]graph.LayerID, len(l.Inputs))
		for i, pid := range l.Inputs {
			ins[i] = idMap[pid]
		}
		sub.DType = l.DType
		nid, err := sub.Add(l.Name, l.Op, ins...)
		sub.DType = defaultDType
		if err != nil {
			return nil, nil, fmt.Errorf("recovery: rebuilding stratum layer %s: %w", l.Name, err)
		}
		idMap[l.ID] = nid
		origin[nid] = l.ID
	}
	if sub.Len() == 0 {
		return nil, nil, fmt.Errorf("recovery: stratum has no layers to re-execute")
	}
	return sub, origin, nil
}

// Recover resumes after a core failure on a program that occupied all
// of a's cores. It loops until the remaining network completes on the
// surviving cores or none survive.
func Recover(g *graph.Graph, a *arch.Arch, failure *sim.CoreFailure, opts Options) (*Result, error) {
	return RecoverFrom(g, a, failure, opts)
}

// RecoverFrom is Recover generalized over failure kinds: it accepts
// either a *sim.CoreFailure (announced death, exhausted DMA retries)
// or a *sim.HangDetected (watchdog detection of a silent stall). All
// cores named by a hang are retired like dead ones.
func RecoverFrom(g *graph.Graph, a *arch.Arch, failure error, opts Options) (*Result, error) {
	r := &Result{}
	dead := make(map[int]bool)
	completedSet := make(map[graph.LayerID]bool)

	fold := func(atCycle float64, checkpointed []graph.LayerID, origin map[graph.LayerID]graph.LayerID) {
		r.TotalCycles += atCycle + opts.redispatch()
		for _, id := range checkpointed {
			orig := id
			if origin != nil {
				orig = origin[id]
			}
			completedSet[orig] = true
		}
	}
	absorb := func(err error, origin map[graph.LayerID]graph.LayerID) bool {
		switch f := err.(type) {
		case *sim.CoreFailure:
			r.Failures = append(r.Failures, f)
			r.DeadCores = append(r.DeadCores, f.Core)
			dead[f.Core] = true
			fold(f.AtCycle, f.Completed, origin)
			return true
		case *sim.HangDetected:
			r.Hangs = append(r.Hangs, f)
			for _, c := range f.Cores {
				r.DeadCores = append(r.DeadCores, c)
				dead[c] = true
			}
			fold(f.AtCycle, f.Completed, origin)
			return true
		}
		return false
	}
	if !absorb(failure, nil) {
		return nil, fmt.Errorf("recovery: cannot recover from %T: %w", failure, failure)
	}

	for {
		var alive []int
		for c := 0; c < a.NumCores(); c++ {
			if !dead[c] {
				alive = append(alive, c)
			}
		}
		if len(alive) == 0 {
			return nil, fmt.Errorf("recovery: all %d cores dead after %d failures", a.NumCores(), len(r.Failures))
		}

		// Completed layers in the original execution order: any stable
		// topological order works for SuffixGraph; layer-ID order is one.
		var completed []graph.LayerID
		for _, l := range g.Layers() {
			if completedSet[l.ID] {
				completed = append(completed, l.ID)
			}
		}
		// Remap compiles the suffix through the fingerprint cache, so
		// repeated failures at the same checkpoint (sweeps, chaos soaks)
		// compile once, and honors the caller's Sim.Ctx cancellation.
		rm, err := Remap(opts.Sim.Ctx, g, completed, a, alive, opts.Opt)
		if err != nil {
			return nil, err
		}
		suffix, origin, res := rm.Suffix, rm.Origin, rm.Compiled

		// Resume on the global architecture so the fault plan's core
		// indices keep their meaning (dead cores are unplaced -> inert).
		out, err := sim.RunConcurrent(a, []sim.Placement{{Program: res.Program, Cores: alive}}, opts.Sim)
		if err != nil {
			if absorb(err, origin) {
				continue
			}
			return nil, err
		}

		r.Survivors = alive
		r.Completed = completed
		r.Suffix = suffix
		r.Origin = origin
		r.Compiled = res
		r.Final = out
		r.TotalCycles += out.Stats.TotalCycles
		return r, nil
	}
}

// MergedStats folds the wasted work of every failed attempt and the
// final run into one per-core account, indexed by global core. Engine
// activity overlaps within a core, so Idle is the conservative
// remainder after summing all engines (a lower bound).
func (r *Result) MergedStats() sim.Stats {
	ncores := len(r.Final.Stats.PerCore)
	merged := sim.Stats{
		PerCore:       make([]sim.CoreStats, ncores),
		TotalCycles:   r.TotalCycles,
		ProgramCycles: []float64{r.TotalCycles},
	}
	add := func(s *sim.Stats) {
		merged.Barriers += s.Barriers
		for c := range s.PerCore {
			m, p := &merged.PerCore[c], &s.PerCore[c]
			m.ComputeBusy += p.ComputeBusy
			m.LoadBusy += p.LoadBusy
			m.StoreBusy += p.StoreBusy
			m.SyncWait += p.SyncWait
			m.BytesLoaded += p.BytesLoaded
			m.BytesStored += p.BytesStored
			m.MACs += p.MACs
			m.Retries += p.Retries
		}
	}
	for _, f := range r.Failures {
		add(&f.Partial)
	}
	for _, h := range r.Hangs {
		add(&h.Partial)
	}
	add(&r.Final.Stats)
	for c := range merged.PerCore {
		m := &merged.PerCore[c]
		busy := m.ComputeBusy + m.LoadBusy + m.StoreBusy + m.SyncWait
		if idle := merged.TotalCycles - busy; idle > 0 {
			m.Idle = idle
		}
		m.Finish = merged.TotalCycles
	}
	return merged
}

// Validate proves recovery never changed numerics: the suffix graph,
// executed with checkpoint inputs taken from the whole-graph reference
// (the bits the completed layers stored to global memory) and weights
// keyed by original layer IDs, must reproduce every original layer's
// output bit-exactly.
func Validate(g *graph.Graph, r *Result) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("recovery: validation panicked: %v", p)
		}
	}()
	ref, err := exec.RunReference(g)
	if err != nil {
		return err
	}
	out := make(map[graph.LayerID]*exec.Tensor, r.Suffix.Len())
	for _, l := range r.Suffix.Layers() {
		orig, ok := r.Origin[l.ID]
		if !ok {
			return fmt.Errorf("recovery: suffix layer %s has no origin", l.Name)
		}
		if l.IsInput() {
			if g.Layer(orig).IsInput() {
				// Original network input: same deterministic fill the
				// reference used, keyed by the original ID.
				t := exec.NewTensor(l.OutShape)
				t.Fill(0xBEEF + uint64(orig))
				out[l.ID] = t
			} else {
				// Checkpointed intermediate, read back from global
				// memory — by construction identical to the reference.
				out[l.ID] = ref[orig]
			}
			continue
		}
		ins := make([]*exec.View, len(l.Inputs))
		for j, pid := range l.Inputs {
			ins[j] = exec.WholeView(out[pid])
		}
		v, err := exec.Apply(l.Op, tensor.WholeRegion(l.OutShape), ins, r.Suffix.InShapes(l), exec.WeightsFor(orig))
		if err != nil {
			return fmt.Errorf("recovery: layer %s: %w", l.Name, err)
		}
		t := exec.NewTensor(l.OutShape)
		v.CopyInto(t)
		out[l.ID] = t
		if !t.Equal(ref[orig]) {
			return fmt.Errorf("recovery: layer %s differs from reference after recovery", l.Name)
		}
	}
	return nil
}

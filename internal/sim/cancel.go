package sim

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel for cooperative cancellation: every
// *CanceledError matches it under errors.Is, so callers can test for
// "the run was cut short" without caring which engine noticed.
var ErrCanceled = errors.New("sim: run canceled")

// CanceledError reports that a simulation (or the admission check
// inside a compile) observed its context's cancellation at a
// cooperative checkpoint and stopped. The run's partial progress is
// discarded — the pooled engine state is reset on the next run, and no
// caller-visible structure (compile cache, program, stats) retains
// anything from the aborted execution.
//
// It unwraps to the context's error (context.Canceled or
// context.DeadlineExceeded), so errors.Is distinguishes a client
// abandoning a request from a deadline expiring.
type CanceledError struct {
	// AtCycle is the simulated time when the checkpoint fired.
	AtCycle float64
	// Completed and Total count retired vs. scheduled instructions.
	Completed, Total int
	// Cause is the context's error.
	Cause error
}

func (e *CanceledError) Error() string {
	return fmt.Sprintf("sim: canceled at cycle %.0f with %d/%d instructions done: %v",
		e.AtCycle, e.Completed, e.Total, e.Cause)
}

// Is matches the ErrCanceled sentinel.
func (e *CanceledError) Is(target error) bool { return target == ErrCanceled }

// Unwrap exposes the context error for errors.Is(err, context.Canceled)
// and errors.Is(err, context.DeadlineExceeded).
func (e *CanceledError) Unwrap() error { return e.Cause }

// cancelCheckMask throttles the cooperative checkpoint: the engines
// poll ctx.Err() once every cancelCheckMask+1 event-loop steps. A step
// advances simulated time past at least one instruction or barrier
// completion, so at typical step costs (hundreds of nanoseconds) the
// poll interval stays far under a millisecond of wall clock while the
// per-step overhead with a non-nil context stays below 1% (pinned by
// BenchmarkSimulateCtx and the npubench -bench-json ctx column).
const cancelCheckMask = 63

// canceled polls ctx at a checkpoint; it returns nil when ctx is nil
// (the fast path: one pointer compare per step) or still live.
func canceled(ctx context.Context, step int, atCycle float64, completed, total int) error {
	if ctx == nil || step&cancelCheckMask != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CanceledError{AtCycle: atCycle, Completed: completed, Total: total, Cause: err}
	}
	return nil
}

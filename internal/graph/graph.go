// Package graph provides the neural-network intermediate representation
// consumed by the multicore-NPU compiler: a DAG of layers, each wrapping
// an operator from package ops, with shape inference performed at
// construction time.
//
// Layers must be added in topological order (every input must already
// exist), which mirrors how the benchmark models are defined and makes
// the builder infallible at use sites via the Must* helpers.
package graph

import (
	"fmt"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// LayerID identifies a layer within its graph.
type LayerID int

// Layer is one node of the network DAG.
type Layer struct {
	ID       LayerID
	Name     string
	Op       ops.Op
	Inputs   []LayerID    // producing layers, in operator input order
	OutShape tensor.Shape // inferred at Add time
	DType    tensor.DType
}

// IsInput reports whether the layer is a graph source.
func (l *Layer) IsInput() bool { return l.Op.Kind() == ops.KindInput }

// OutBytes returns the storage size of the layer's full output tensor.
func (l *Layer) OutBytes() int64 { return l.OutShape.Bytes(l.DType) }

// String formats the layer for diagnostics.
func (l *Layer) String() string {
	return fmt.Sprintf("%s#%d %v -> %s", l.Name, l.ID, l.Op, l.OutShape)
}

// Graph is a DAG of layers.
type Graph struct {
	Name   string
	DType  tensor.DType // default element type for new layers
	layers []*Layer
	byName map[string]LayerID
	users  map[LayerID][]LayerID
}

// New returns an empty graph whose layers default to element type dt.
func New(name string, dt tensor.DType) *Graph {
	return &Graph{
		Name:   name,
		DType:  dt,
		byName: make(map[string]LayerID),
		users:  make(map[LayerID][]LayerID),
	}
}

// Add appends a layer computing op over the given input layers, infers
// its output shape, and returns its ID. Names must be unique within
// the graph.
func (g *Graph) Add(name string, op ops.Op, inputs ...LayerID) (LayerID, error) {
	if _, dup := g.byName[name]; dup {
		return 0, fmt.Errorf("graph: duplicate layer name %q", name)
	}
	inShapes := make([]tensor.Shape, len(inputs))
	for i, id := range inputs {
		if int(id) < 0 || int(id) >= len(g.layers) {
			return 0, fmt.Errorf("graph: layer %q input #%d references unknown layer %d", name, i, id)
		}
		inShapes[i] = g.layers[id].OutShape
	}
	out, err := op.OutShape(inShapes)
	if err != nil {
		return 0, fmt.Errorf("graph: layer %q: %w", name, err)
	}
	id := LayerID(len(g.layers))
	l := &Layer{
		ID:       id,
		Name:     name,
		Op:       op,
		Inputs:   append([]LayerID(nil), inputs...),
		OutShape: out,
		DType:    g.DType,
	}
	g.layers = append(g.layers, l)
	g.byName[name] = id
	for _, in := range inputs {
		g.users[in] = append(g.users[in], id)
	}
	return id, nil
}

// MustAdd is Add for statically known-valid model definitions; it
// panics on error.
func (g *Graph) MustAdd(name string, op ops.Op, inputs ...LayerID) LayerID {
	id, err := g.Add(name, op, inputs...)
	if err != nil {
		panic(err)
	}
	return id
}

// Input adds a source layer of the given shape.
func (g *Graph) Input(name string, s tensor.Shape) LayerID {
	return g.MustAdd(name, ops.Input{Shape: s})
}

// Len returns the number of layers.
func (g *Graph) Len() int { return len(g.layers) }

// Layer returns the layer with the given ID; it panics on an invalid ID.
func (g *Graph) Layer(id LayerID) *Layer {
	if int(id) < 0 || int(id) >= len(g.layers) {
		panic(fmt.Sprintf("graph: invalid layer id %d", id))
	}
	return g.layers[id]
}

// LayerByName returns the layer with the given name.
func (g *Graph) LayerByName(name string) (*Layer, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.layers[id], true
}

// Layers returns all layers in insertion (topological) order. The
// returned slice must not be modified.
func (g *Graph) Layers() []*Layer { return g.layers }

// Users returns the IDs of layers that consume id's output. The
// returned slice must not be modified.
func (g *Graph) Users(id LayerID) []LayerID { return g.users[id] }

// InShapes returns the input shapes of layer l in operator order.
func (g *Graph) InShapes(l *Layer) []tensor.Shape {
	shapes := make([]tensor.Shape, len(l.Inputs))
	for i, id := range l.Inputs {
		shapes[i] = g.Layer(id).OutShape
	}
	return shapes
}

// InputLayers returns the graph sources in order.
func (g *Graph) InputLayers() []*Layer {
	var ins []*Layer
	for _, l := range g.layers {
		if l.IsInput() {
			ins = append(ins, l)
		}
	}
	return ins
}

// OutputLayers returns the layers with no users (the network outputs).
func (g *Graph) OutputLayers() []*Layer {
	var outs []*Layer
	for _, l := range g.layers {
		if len(g.users[l.ID]) == 0 {
			outs = append(outs, l)
		}
	}
	return outs
}

// Validate checks structural invariants: at least one source, all edges
// in range, insertion order topological, no empty shapes.
func (g *Graph) Validate() error {
	if len(g.layers) == 0 {
		return fmt.Errorf("graph %q: empty", g.Name)
	}
	if len(g.InputLayers()) == 0 {
		return fmt.Errorf("graph %q: no input layer", g.Name)
	}
	for _, l := range g.layers {
		if l.OutShape.Empty() {
			return fmt.Errorf("graph %q: layer %s has empty output", g.Name, l)
		}
		for _, in := range l.Inputs {
			if in >= l.ID {
				return fmt.Errorf("graph %q: layer %s uses non-preceding input %d", g.Name, l, in)
			}
		}
	}
	return nil
}

// TotalMACs returns the multiply-accumulate count of one full inference.
func (g *Graph) TotalMACs() int64 {
	var total int64
	for _, l := range g.layers {
		total += l.Op.MACs(l.OutShape, g.InShapes(l))
	}
	return total
}

// TotalKernelBytes returns the total weight storage of the network.
func (g *Graph) TotalKernelBytes() int64 {
	var total int64
	for _, l := range g.layers {
		total += l.Op.KernelBytes(l.OutShape, g.InShapes(l), l.DType)
	}
	return total
}

// Subgraph returns a new graph containing the first n layers of g (a
// prefix in topological order). It is used to isolate regions such as
// the InceptionV3 stem for the Table 5 experiment. Prefix layers keep
// their names; users outside the prefix are dropped.
func (g *Graph) Subgraph(name string, n int) (*Graph, error) {
	if n <= 0 || n > len(g.layers) {
		return nil, fmt.Errorf("graph: prefix length %d out of range (1..%d)", n, len(g.layers))
	}
	sub := New(name, g.DType)
	for _, l := range g.layers[:n] {
		sub.DType = l.DType
		if _, err := sub.Add(l.Name, l.Op, l.Inputs...); err != nil {
			return nil, err
		}
	}
	sub.DType = g.DType
	return sub, nil
}

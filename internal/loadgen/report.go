package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/metrics"
)

// Report is a load-generation run's full result: one Point per offered
// load. In replay mode it is a pure function of (mix, Options) — no
// wall-clock fields — so equal seeds marshal byte-identically.
type Report struct {
	// Mode is "replay" (virtual-time, in-process) or "live" (wall
	// clock against a -serve endpoint).
	Mode string
	// Target is the live endpoint URL (empty in replay mode).
	Target  string `json:",omitempty"`
	Arrival string
	Seed    uint64
	// Requests is the per-point request count (exact).
	Requests int64
	Devices  int `json:",omitempty"`
	Shards   int `json:",omitempty"`
	Clients  int `json:",omitempty"`
	// BatchWindowUS etc. echo the batching model parameters.
	BatchWindowUS float64 `json:",omitempty"`
	BatchMax      int     `json:",omitempty"`
	BatchDiscount float64 `json:",omitempty"`
	// Mix is the resolved request mix, with each entry's cached
	// service latency (0 in live mode: the server owns the sims).
	Mix []MixInfo
	// CapacityRPS is the estimated saturation throughput of the device
	// pool under this mix (replay mode).
	CapacityRPS float64 `json:",omitempty"`
	Points      []Point
}

// MixInfo is one resolved mix entry as reported.
type MixInfo struct {
	Model     string
	Config    string
	Cores     int
	Weight    float64
	ServiceUS float64 `json:",omitempty"`
}

// Point is one offered-load measurement.
type Point struct {
	// OfferedRPS is the arrival intensity (0 for closed loops, where
	// load is set by the client population instead).
	OfferedRPS float64 `json:",omitempty"`
	// Requests is the number of requests measured at this point.
	Requests int64
	// MakespanUS is the virtual (replay) or wall (live) time from the
	// first arrival to the last completion.
	MakespanUS  float64
	AchievedRPS float64
	Latency     LatencySummary
	PerModel    []ModelPoint `json:",omitempty"`
	// Batches counts issued batches and MeanBatch the requests per
	// batch; both omitted when the batching window is off.
	Batches   int64   `json:",omitempty"`
	MeanBatch float64 `json:",omitempty"`
	// Failed counts non-200 responses (live mode only).
	Failed int64 `json:",omitempty"`
	// Retried counts re-issued attempts after a 429/503 shed, and
	// GaveUp the requests that exhausted MaxRetries and stayed shed
	// (live mode with -max-retries only).
	Retried int64 `json:",omitempty"`
	GaveUp  int64 `json:",omitempty"`
}

// ModelPoint is one model's slice of a Point.
type ModelPoint struct {
	Model   string
	Config  string `json:",omitempty"`
	Latency LatencySummary
}

// LatencySummary is the percentile block every Point carries.
type LatencySummary struct {
	Count  int64
	MeanUS int64
	P50US  int64
	P90US  int64
	P99US  int64
	P999US int64
	MaxUS  int64 `json:",omitempty"`
}

// summarize folds a merged distribution (plus an exact max, when
// tracked) into the report form.
func summarize(d metrics.Dist, maxUS int64) LatencySummary {
	s := d.Snapshot()
	return LatencySummary{
		Count:  s.Count,
		MeanUS: s.MeanUS,
		P50US:  s.P50US,
		P90US:  s.P90US,
		P99US:  s.P99US,
		P999US: s.P999US,
		MaxUS:  maxUS,
	}
}

func newReport(mode string, rm *Mix, o Options) *Report {
	rep := &Report{
		Mode:     mode,
		Arrival:  o.Arrival,
		Seed:     o.Seed,
		Requests: o.Requests,
		Devices:  o.Devices,
		Shards:   o.Shards,
	}
	if o.Arrival == ArrivalClosed {
		rep.Clients = o.Clients
	}
	if o.BatchWindowUS > 0 {
		rep.BatchWindowUS = o.BatchWindowUS
		rep.BatchMax = o.BatchMax
		rep.BatchDiscount = o.BatchDiscount
	}
	if rm != nil {
		for _, e := range rm.entries {
			rep.Mix = append(rep.Mix, MixInfo{
				Model:     e.Model,
				Config:    e.Config,
				Cores:     e.Cores,
				Weight:    round3(e.prob),
				ServiceUS: round3(e.serviceUS),
			})
		}
		rep.CapacityRPS = round3(rm.CapacityRPS(o.Devices))
	}
	return rep
}

// WriteJSON writes the report as indented JSON. The encoding is
// deterministic, so replay reports with equal seeds are byte-identical.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteCSV writes one row per load point: the throughput-vs-offered-
// load and tail-latency curve in spreadsheet form.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "offered_rps,requests,achieved_rps,makespan_us,mean_us,p50_us,p90_us,p99_us,p999_us,max_us,batches,failed,retried,gave_up"); err != nil {
		return err
	}
	for _, p := range r.Points {
		l := p.Latency
		if _, err := fmt.Fprintf(w, "%g,%d,%g,%g,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d\n",
			p.OfferedRPS, p.Requests, p.AchievedRPS, p.MakespanUS,
			l.MeanUS, l.P50US, l.P90US, l.P99US, l.P999US, l.MaxUS,
			p.Batches, p.Failed, p.Retried, p.GaveUp); err != nil {
			return err
		}
	}
	return nil
}

// WriteTable renders the human summary: the curve npuload prints.
func (r *Report) WriteTable(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 0, 0, 2, ' ', 0)
	fmt.Fprintf(tw, "offered_rps\tachieved_rps\trequests\tp50_us\tp90_us\tp99_us\tp99.9_us\tmax_us\n")
	for _, p := range r.Points {
		l := p.Latency
		offered := fmt.Sprintf("%.0f", p.OfferedRPS)
		if p.OfferedRPS == 0 {
			offered = "closed"
		}
		fmt.Fprintf(tw, "%s\t%.0f\t%d\t%d\t%d\t%d\t%d\t%d\n",
			offered, p.AchievedRPS, p.Requests, l.P50US, l.P90US, l.P99US, l.P999US, l.MaxUS)
	}
	return tw.Flush()
}

package metrics

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestDistObserveNMatchesRepeatedObserve: ObserveN(us, n) leaves the
// Dist in exactly the state n individual Observe(us) calls would —
// including the negative-latency clamp — so bulk-booked replays report
// identical quantiles.
func TestDistObserveNMatchesRepeatedObserve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var bulk, loop Dist
	for trial := 0; trial < 200; trial++ {
		us := rng.Int63n(3_000_000) - 1000 // occasionally negative
		n := rng.Int63n(50)
		bulk.ObserveN(us, n)
		for i := int64(0); i < n; i++ {
			loop.Observe(us)
		}
	}
	if !reflect.DeepEqual(bulk, loop) {
		t.Errorf("bulk %+v != loop %+v", bulk, loop)
	}
}

func TestDistObserveNNonPositiveIsNoOp(t *testing.T) {
	var d Dist
	d.ObserveN(100, 0)
	d.ObserveN(100, -3)
	var zero Dist
	if !reflect.DeepEqual(d, zero) {
		t.Errorf("n <= 0 mutated the dist: %+v", d)
	}
}

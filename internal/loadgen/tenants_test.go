package loadgen

import (
	"bytes"
	"testing"

	"repro/internal/arch"
	"repro/internal/tenancy"
)

func TestRunTenantsDeterministic(t *testing.T) {
	a := arch.Exynos2100Like()
	loads := []TenantLoad{
		{Tenant: tenancy.Tenant{Name: "cam", Model: "ShuffleNetV2", Priority: 2, SLOUS: 4000}, RPS: 2000},
		{Tenant: tenancy.Tenant{Name: "kbd", Model: "TinyCNN", Priority: 1, SLOUS: 500}, RPS: 3000},
	}
	o := TenantsOptions{HorizonUS: 5000, Seed: 42}
	r1, err := RunTenants(a, loads, o)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunTenants(a, loads, o)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := r1.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("same seed and loads produced different JSON bytes")
	}
	// A different seed must change the arrival pattern.
	r3, err := RunTenants(a, loads, TenantsOptions{HorizonUS: 5000, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r3.Tenants {
		if r3.Tenants[i].Requests != r1.Tenants[i].Requests {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical request counts for every tenant")
	}
}

func TestRunTenantsColumnsAndWindows(t *testing.T) {
	a := arch.Exynos2100Like()
	loads := []TenantLoad{
		{Tenant: tenancy.Tenant{Name: "p", Model: "ShuffleNetV2", Priority: 2}, RPS: 5000},
		{Tenant: tenancy.Tenant{Name: "q", Model: "ShuffleNetV2", Priority: 1, ArriveUS: 1000, DepartUS: 2000}, RPS: 5000},
	}
	rep, err := RunTenants(a, loads, TenantsOptions{HorizonUS: 6000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedule == nil || len(rep.Schedule.Tenants) != 2 {
		t.Fatal("report did not embed the tenancy schedule")
	}
	for _, tp := range rep.Tenants {
		if tp.Requests == 0 {
			t.Errorf("tenant %s replayed zero requests", tp.Name)
		}
		if tp.SLOHitPct < 0 || tp.SLOHitPct > 100 {
			t.Errorf("tenant %s: hit rate %.1f out of range", tp.Name, tp.SLOHitPct)
		}
		if tp.InterferencePct < 0 {
			t.Errorf("tenant %s: negative interference %.2f", tp.Name, tp.InterferencePct)
		}
		if tp.ServiceUS < tp.IsolatedUS {
			t.Errorf("tenant %s: service %.1f beat isolated %.1f", tp.Name, tp.ServiceUS, tp.IsolatedUS)
		}
	}
	// q's window is 1 ms; the always-on tenant must see far more load.
	p, q := rep.Tenants[0], rep.Tenants[1]
	if q.Requests >= p.Requests {
		t.Errorf("windowed tenant saw %d requests vs %d for the resident", q.Requests, p.Requests)
	}
	// No SLO declared: every served request is a hit.
	if p.SLOHits != p.Requests {
		t.Errorf("tenant p without SLO hit %d of %d", p.SLOHits, p.Requests)
	}
}

func TestRunTenantsSLOSeparatesRates(t *testing.T) {
	a := arch.Exynos2100Like()
	// Probe the service time once, then pick SLOs around it.
	probe, err := RunTenants(a, []TenantLoad{
		{Tenant: tenancy.Tenant{Name: "x", Model: "TinyCNN"}},
	}, TenantsOptions{HorizonUS: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	svc := probe.Tenants[0].ServiceUS
	if svc <= 0 {
		t.Fatalf("probe measured service %.2f", svc)
	}
	run := func(slo float64) TenantPoint {
		rep, err := RunTenants(a, []TenantLoad{
			{Tenant: tenancy.Tenant{Name: "x", Model: "TinyCNN", SLOUS: slo}},
		}, TenantsOptions{HorizonUS: 2000, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Tenants[0]
	}
	generous := run(svc * 100)
	if generous.SLOHitPct != 100 {
		t.Errorf("generous SLO hit %.1f%%, want 100", generous.SLOHitPct)
	}
	tight := run(svc / 2)
	if tight.SLOHits != 0 {
		t.Errorf("SLO below the service time still hit %d times", tight.SLOHits)
	}
	if generous.Requests != tight.Requests {
		t.Errorf("same seed produced %d vs %d requests", generous.Requests, tight.Requests)
	}
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// ActFunc selects the activation function.
type ActFunc int

// Supported activation functions.
const (
	ReLU ActFunc = iota
	ReLU6
	Sigmoid
	HSwish
	TanH
)

// String returns the activation name.
func (f ActFunc) String() string {
	switch f {
	case ReLU:
		return "ReLU"
	case ReLU6:
		return "ReLU6"
	case Sigmoid:
		return "Sigmoid"
	case HSwish:
		return "HSwish"
	case TanH:
		return "TanH"
	default:
		return fmt.Sprintf("ActFunc(%d)", int(f))
	}
}

// Activation applies a pointwise non-linearity.
type Activation struct {
	Func ActFunc
}

// Kind implements Op.
func (Activation) Kind() Kind { return KindActivation }

// OutShape implements Op.
func (Activation) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Activation", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	return in[0], nil
}

// MACs implements Op: one op per element (the lookup-table cost on the
// NPU is flat per element regardless of function).
func (Activation) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (Activation) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: identity.
func (Activation) InputRegion(out tensor.Region, _ int, _ []tensor.Shape) tensor.Region {
	return out
}

// SupportsPartition implements Op.
func (Activation) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op. Activations are pointwise, which is
// stronger than channel-wise, but h4 targets ops whose kernel is per
// channel; activations have no kernel so the heuristic treats them as
// direction-neutral.
func (Activation) ChannelWise() bool { return false }

func (o Activation) String() string { return fmt.Sprintf("Activation(%s)", o.Func) }

// Add sums its inputs elementwise (residual connections).
type Add struct {
	Arity int // number of inputs, >= 2
}

// Kind implements Op.
func (Add) Kind() Kind { return KindAdd }

// OutShape implements Op.
func (o Add) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	n := o.Arity
	if n == 0 {
		n = 2
	}
	if err := checkArity("Add", in, n); err != nil {
		return tensor.Shape{}, err
	}
	for i := 1; i < len(in); i++ {
		if in[i] != in[0] {
			return tensor.Shape{}, fmt.Errorf("ops: Add input %d shape %s != %s", i, in[i], in[0])
		}
	}
	return in[0], nil
}

// MACs implements Op.
func (o Add) MACs(ext tensor.Shape, in []tensor.Shape) int64 {
	return ext.Elems() * int64(len(in)-1)
}

// KernelBytes implements Op.
func (Add) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: identity on every input.
func (Add) InputRegion(out tensor.Region, _ int, _ []tensor.Shape) tensor.Region { return out }

// SupportsPartition implements Op.
func (Add) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Add) ChannelWise() bool { return false }

func (o Add) String() string { return fmt.Sprintf("Add(x%d)", o.Arity) }

// Mul multiplies two inputs elementwise, broadcasting a 1x1xC second
// input over the spatial extent of the first (squeeze-excite scaling).
type Mul struct{}

// Kind implements Op.
func (Mul) Kind() Kind { return KindMul }

// OutShape implements Op.
func (Mul) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Mul", in, 2); err != nil {
		return tensor.Shape{}, err
	}
	bcast := in[1].H == 1 && in[1].W == 1 && in[1].C == in[0].C
	if in[1] != in[0] && !bcast {
		return tensor.Shape{}, fmt.Errorf("ops: Mul input shapes %s, %s incompatible", in[0], in[1])
	}
	return in[0], nil
}

// MACs implements Op.
func (Mul) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (Mul) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: identity for input 0; a broadcast second
// input contributes its whole (1x1) plane for the output channel range.
func (Mul) InputRegion(out tensor.Region, inIdx int, in []tensor.Shape) tensor.Region {
	if inIdx == 0 || in[1] == in[0] {
		return out
	}
	r := tensor.WholeRegion(in[1])
	r.Off = r.Off.WithDim(tensor.AxisC, out.Off.C)
	r.Ext = r.Ext.WithDim(tensor.AxisC, out.Ext.C)
	return r
}

// SupportsPartition implements Op.
func (Mul) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Mul) ChannelWise() bool { return false }

func (Mul) String() string { return "Mul" }

// Package tensor provides the shape, data-type, and region arithmetic
// underlying the multicore-NPU compiler.
//
// All feature maps use the NHWC layout with N == 1 (single-image mobile
// inference, as in the paper). A Shape describes a whole tensor; a
// Region describes a rectangular sub-volume of a tensor, which is the
// unit produced by layer partitioning (per-core sub-layers), halo
// expansion, and tiling.
package tensor

import (
	"fmt"
)

// DType is the element type of a tensor. The benchmark networks in the
// paper run in INT8 except DeepLabV3+, which runs in INT16.
type DType int

// Supported element types.
const (
	Int8 DType = iota
	Int16
	Int32
)

// Size returns the size of one element in bytes.
func (d DType) Size() int {
	switch d {
	case Int8:
		return 1
	case Int16:
		return 2
	case Int32:
		return 4
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

// String returns the conventional name of the dtype.
func (d DType) String() string {
	switch d {
	case Int8:
		return "INT8"
	case Int16:
		return "INT16"
	case Int32:
		return "INT32"
	default:
		return fmt.Sprintf("DType(%d)", int(d))
	}
}

// Axis identifies a partitionable dimension of a feature map.
type Axis int

// Feature-map axes. Batch is never partitioned (N == 1).
const (
	AxisH Axis = iota // spatial height
	AxisW             // spatial width
	AxisC             // channels
)

// String returns the single-letter axis name.
func (a Axis) String() string {
	switch a {
	case AxisH:
		return "H"
	case AxisW:
		return "W"
	case AxisC:
		return "C"
	default:
		return fmt.Sprintf("Axis(%d)", int(a))
	}
}

// Spatial reports whether the axis is one of the two image axes.
func (a Axis) Spatial() bool { return a == AxisH || a == AxisW }

// Shape is the extent of a feature map in NHWC layout with N == 1.
type Shape struct {
	H, W, C int
}

// NewShape returns the shape {h, w, c}. It panics if any extent is
// negative; zero extents denote an empty tensor and are allowed.
func NewShape(h, w, c int) Shape {
	if h < 0 || w < 0 || c < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%dx%d", h, w, c))
	}
	return Shape{H: h, W: w, C: c}
}

// Elems returns the number of elements in the tensor.
func (s Shape) Elems() int64 {
	return int64(s.H) * int64(s.W) * int64(s.C)
}

// Bytes returns the storage size of the tensor for dtype d.
func (s Shape) Bytes(d DType) int64 {
	return s.Elems() * int64(d.Size())
}

// Empty reports whether the shape has no elements.
func (s Shape) Empty() bool { return s.H == 0 || s.W == 0 || s.C == 0 }

// Dim returns the extent along axis a.
func (s Shape) Dim(a Axis) int {
	switch a {
	case AxisH:
		return s.H
	case AxisW:
		return s.W
	case AxisC:
		return s.C
	default:
		panic(fmt.Sprintf("tensor: bad axis %d", int(a)))
	}
}

// WithDim returns a copy of s with the extent along axis a replaced by n.
func (s Shape) WithDim(a Axis, n int) Shape {
	switch a {
	case AxisH:
		s.H = n
	case AxisW:
		s.W = n
	case AxisC:
		s.C = n
	default:
		panic(fmt.Sprintf("tensor: bad axis %d", int(a)))
	}
	return s
}

// String formats the shape as "HxWxC".
func (s Shape) String() string {
	return fmt.Sprintf("%dx%dx%d", s.H, s.W, s.C)
}

// Region is a rectangular sub-volume of a tensor: a half-open interval
// along each axis. Regions describe per-core partitions, halo-expanded
// inputs, and tiles.
type Region struct {
	Off Shape // inclusive start offsets (H, W, C fields reused as offsets)
	Ext Shape // extents
}

// WholeRegion returns the region covering all of shape s.
func WholeRegion(s Shape) Region {
	return Region{Off: Shape{}, Ext: s}
}

// Empty reports whether the region covers no elements.
func (r Region) Empty() bool { return r.Ext.Empty() }

// Elems returns the number of elements covered by the region.
func (r Region) Elems() int64 { return r.Ext.Elems() }

// Bytes returns the storage size of the region for dtype d.
func (r Region) Bytes(d DType) int64 { return r.Ext.Bytes(d) }

// End returns the exclusive end offset along axis a.
func (r Region) End(a Axis) int { return r.Off.Dim(a) + r.Ext.Dim(a) }

// Contains reports whether r fully contains q.
func (r Region) Contains(q Region) bool {
	for _, a := range []Axis{AxisH, AxisW, AxisC} {
		if q.Off.Dim(a) < r.Off.Dim(a) || q.End(a) > r.End(a) {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of r and q. The returned region is
// empty (possibly with negative-clamped extents set to zero) if they
// do not overlap.
func (r Region) Intersect(q Region) Region {
	var out Region
	for _, a := range []Axis{AxisH, AxisW, AxisC} {
		lo := maxInt(r.Off.Dim(a), q.Off.Dim(a))
		hi := minInt(r.End(a), q.End(a))
		if hi < lo {
			hi = lo
		}
		out.Off = out.Off.WithDim(a, lo)
		out.Ext = out.Ext.WithDim(a, hi-lo)
	}
	return out
}

// ClampTo returns r clipped to lie within the whole tensor of shape s.
func (r Region) ClampTo(s Shape) Region {
	return r.Intersect(WholeRegion(s))
}

// Overlaps reports whether r and q share at least one element.
func (r Region) Overlaps(q Region) bool { return !r.Intersect(q).Empty() }

// Grow expands the region by lo elements below and hi elements above
// along axis a, without clamping. Use ClampTo to constrain the result
// to a tensor boundary.
func (r Region) Grow(a Axis, lo, hi int) Region {
	r.Off = r.Off.WithDim(a, r.Off.Dim(a)-lo)
	r.Ext = r.Ext.WithDim(a, r.Ext.Dim(a)+lo+hi)
	return r
}

// String formats the region as "[h0:h1,w0:w1,c0:c1]".
func (r Region) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d,%d:%d]",
		r.Off.H, r.Off.H+r.Ext.H,
		r.Off.W, r.Off.W+r.Ext.W,
		r.Off.C, r.Off.C+r.Ext.C)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

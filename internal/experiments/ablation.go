package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// AblationPoint is one (parameter value, configuration) measurement.
type AblationPoint struct {
	Param     float64
	Config    string
	LatencyUS float64
}

// SyncCostSweep measures how the barrier cost shifts the balance
// between the three configurations: stratum construction's value is
// exactly the synchronization it removes, so its margin over +Halo
// must grow with the sync cost (DESIGN.md design-choice ablation).
func SyncCostSweep(model string) ([]AblationPoint, error) {
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	g := m.Build()
	syncs := []float64{0.5, 2, 8, 32}
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}
	return parallel.Map(len(syncs)*len(opts), func(i int) (AblationPoint, error) {
		syncUS, opt := syncs[i/len(opts)], opts[i%len(opts)]
		a := arch.Exynos2100Like()
		a.SyncBaseCycles = a.MicrosToCycles(syncUS)
		a.SyncJitterCycles = a.SyncBaseCycles
		_, out, err := runOne(g, a, opt, false)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("sync sweep %gus %s: %w", syncUS, opt.Name(), err)
		}
		return AblationPoint{
			Param: syncUS, Config: opt.Name(),
			LatencyUS: out.Stats.LatencyMicros(a.ClockMHz),
		}, nil
	})
}

// BusSweep measures sensitivity to the shared-bus ceiling: below the
// sum of per-core DMA rates the fabric congests and the traffic-saving
// optimizations matter most.
func BusSweep(model string) ([]AblationPoint, error) {
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	g := m.Build()
	buses := []float64{8, 16, 32, 64}
	opts := []core.Options{core.Base(), core.Stratum()}
	return parallel.Map(len(buses)*len(opts), func(i int) (AblationPoint, error) {
		bus, opt := buses[i/len(opts)], opts[i%len(opts)]
		a := arch.Exynos2100Like()
		a.BusBytesPerCycle = bus
		_, out, err := runOne(g, a, opt, false)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("bus sweep %g %s: %w", bus, opt.Name(), err)
		}
		return AblationPoint{
			Param: bus, Config: opt.Name(),
			LatencyUS: out.Stats.LatencyMicros(a.ClockMHz),
		}, nil
	})
}

// SPMSweepRow is one SPM capacity's compilation profile.
type SPMSweepRow struct {
	SPMKB       int64
	LatencyUS   float64
	Instrs      int
	MultiStrata int
}

// SPMSweep shows tiling and stratum construction reacting to SPM
// pressure: smaller scratch-pads force more tiles (more instructions)
// and break strata apart.
func SPMSweep(model string) ([]SPMSweepRow, error) {
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	g := m.Build()
	kbs := []int64{512, 1024, 2048, 4096}
	return parallel.Map(len(kbs), func(i int) (SPMSweepRow, error) {
		kb := kbs[i]
		a := arch.Exynos2100Like()
		for c := range a.Cores {
			a.Cores[c].SPMBytes = kb << 10
		}
		res, out, err := runOne(g, a, core.Stratum(), false)
		if err != nil {
			return SPMSweepRow{}, fmt.Errorf("spm sweep %dKB: %w", kb, err)
		}
		multi := 0
		for _, s := range res.Strata {
			if s.Len() > 1 {
				multi++
			}
		}
		return SPMSweepRow{
			SPMKB:       kb,
			LatencyUS:   out.Stats.LatencyMicros(a.ClockMHz),
			Instrs:      res.Program.NumInstrs(),
			MultiStrata: multi,
		}, nil
	})
}

// CoreScaling measures speedup versus core count beyond the paper's
// three-core platform (homogeneous cores, +Stratum).
func CoreScaling(model string, maxCores int) ([]AblationPoint, error) {
	m, err := models.ByName(model)
	if err != nil {
		return nil, err
	}
	g := m.Build()
	return parallel.Map(maxCores, func(i int) (AblationPoint, error) {
		n := i + 1
		a := arch.Homogeneous(n)
		_, out, err := runOne(g, a, core.Stratum(), false)
		if err != nil {
			return AblationPoint{}, fmt.Errorf("core scaling %d: %w", n, err)
		}
		return AblationPoint{
			Param: float64(n), Config: "+Stratum",
			LatencyUS: out.Stats.LatencyMicros(a.ClockMHz),
		}, nil
	})
}

// EnergyRow is one model/config energy estimate.
type EnergyRow struct {
	Model  string
	Config string
	UJ     float64
	GMACs  float64
	MB     float64
}

// EnergySweep estimates inference energy per configuration: stratum
// trades DRAM traffic (expensive) for redundant MACs (cheap), so the
// optimized configurations should also be the most efficient.
func EnergySweep() ([]EnergyRow, error) {
	a := arch.Exynos2100Like()
	ms := models.All()
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}
	return parallel.Map(len(ms)*len(opts), func(i int) (EnergyRow, error) {
		m, opt := ms[i/len(opts)], opts[i%len(opts)]
		_, out, err := runOne(m.Build(), a, opt, false)
		if err != nil {
			return EnergyRow{}, fmt.Errorf("energy %s %s: %w", m.Name, opt.Name(), err)
		}
		return EnergyRow{
			Model:  m.Name,
			Config: opt.Name(),
			UJ:     out.Stats.EnergyMicroJoules(a.PJPerMAC, a.PJPerDRAMByte, m.DType == tensor.Int16),
			GMACs:  float64(out.Stats.TotalMACs()) / 1e9,
			MB:     float64(out.Stats.TotalBytes()) / 1e6,
		}, nil
	})
}

// InterconnectRow compares halo-exchange through global memory (the
// Exynos 2100's only option) against a hypothetical dedicated
// core-to-core link.
type InterconnectRow struct {
	Model    string
	Bus      float64
	DRAMUS   float64 // halo via global memory
	DirectUS float64 // halo via dedicated link
}

// InterconnectSweep quantifies what a direct halo interconnect would
// buy (a hardware design-space question the paper's platform cannot
// answer): halo transfers stop competing for the shared bus.
func InterconnectSweep() ([]InterconnectRow, error) {
	names := []string{"InceptionV3", "MobileNetV2"}
	buses := []float64{8, 32}
	return parallel.Map(len(names)*len(buses), func(i int) (InterconnectRow, error) {
		name, bus := names[i/len(buses)], buses[i%len(buses)]
		g := models.ByNameMust(name)
		row := InterconnectRow{Model: name, Bus: bus}
		for _, direct := range []bool{false, true} {
			a := arch.Exynos2100Like()
			a.BusBytesPerCycle = bus
			a.DirectHaloInterconnect = direct
			_, out, err := runOne(g, a, core.Halo(), false)
			if err != nil {
				return InterconnectRow{}, fmt.Errorf("interconnect %s bus%g: %w", name, bus, err)
			}
			us := out.Stats.LatencyMicros(a.ClockMHz)
			if direct {
				row.DirectUS = us
			} else {
				row.DRAMUS = us
			}
		}
		return row, nil
	})
}

// PrintInterconnect renders the interconnect study.
func PrintInterconnect(w io.Writer, rows []InterconnectRow) {
	fmt.Fprintln(w, "Ablation A8: halo-exchange path — global memory vs dedicated link (+Halo)")
	fmt.Fprintf(w, "%-17s %10s %12s %12s %8s\n", "Model", "bus(B/cyc)", "via DRAM", "direct link", "gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %10.0f %10.1fus %10.1fus %7.2f%%\n",
			r.Model, r.Bus, r.DRAMUS, r.DirectUS, 100*(r.DRAMUS-r.DirectUS)/r.DRAMUS)
	}
}

// PipelineRow compares double-buffered pipelining against
// single-buffered execution for one model.
type PipelineRow struct {
	Model       string
	PipelinedUS float64
	SerialUS    float64
}

// PipelineSweep quantifies the double-buffered load/compute/store
// pipeline of Section 2.2: without it, a tile's load waits for the
// previous tile to finish entirely, exposing all DMA time.
func PipelineSweep() ([]PipelineRow, error) {
	a := arch.Exynos2100Like()
	names := []string{"InceptionV3", "MobileNetV2", "UNet"}
	return parallel.Map(len(names), func(i int) (PipelineRow, error) {
		name := names[i]
		g := models.ByNameMust(name)
		row := PipelineRow{Model: name}
		for _, serial := range []bool{false, true} {
			opt := core.Stratum()
			opt.NoDoubleBuffer = serial
			_, out, err := runOne(g, a, opt, false)
			if err != nil {
				return PipelineRow{}, fmt.Errorf("pipeline %s: %w", name, err)
			}
			us := out.Stats.LatencyMicros(a.ClockMHz)
			if serial {
				row.SerialUS = us
			} else {
				row.PipelinedUS = us
			}
		}
		return row, nil
	})
}

// PrintPipeline renders the pipelining ablation.
func PrintPipeline(w io.Writer, rows []PipelineRow) {
	fmt.Fprintln(w, "Ablation A10: double-buffered pipelining vs single-buffered tiles (+Stratum)")
	fmt.Fprintf(w, "%-17s %14s %14s %9s\n", "Model", "pipelined", "single-buffer", "gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %12.1fus %12.1fus %8.1f%%\n",
			r.Model, r.PipelinedUS, r.SerialUS, 100*(r.SerialUS-r.PipelinedUS)/r.SerialUS)
	}
}

// ThroughputRow is one model/config latency-vs-throughput comparison.
type ThroughputRow struct {
	Model     string
	Config    string
	LatencyUS float64 // single-shot latency
	PeriodUS  float64 // steady-state inference period over a batch
}

// ThroughputSweep measures sustained throughput (a camera stream) next
// to the paper's single-shot latency: back-to-back inferences pipeline
// across iterations, so the steady-state period undercuts the latency.
func ThroughputSweep(model string, batch int) ([]ThroughputRow, error) {
	a := arch.Exynos2100Like()
	g := models.ByNameMust(model)
	opts := []core.Options{core.Base(), core.Halo(), core.Stratum()}
	return parallel.Map(len(opts), func(i int) (ThroughputRow, error) {
		opt := opts[i]
		res, out, err := runOne(g, a, opt, false)
		if err != nil {
			return ThroughputRow{}, fmt.Errorf("throughput %s: %w", opt.Name(), err)
		}
		period, _, err := sim.Throughput(res.Program, batch, simConfig())
		if err != nil {
			return ThroughputRow{}, err
		}
		return ThroughputRow{
			Model:     model,
			Config:    opt.Name(),
			LatencyUS: out.Stats.LatencyMicros(a.ClockMHz),
			PeriodUS:  period / float64(a.ClockMHz),
		}, nil
	})
}

// PrintThroughput renders the latency/throughput comparison.
func PrintThroughput(w io.Writer, rows []ThroughputRow, batch int) {
	fmt.Fprintf(w, "Ablation A9: single-shot latency vs steady-state period (batch of %d)\n", batch)
	fmt.Fprintf(w, "%-17s %-10s %12s %12s %18s\n", "Model", "config", "latency", "period", "pipelining gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %-10s %10.1fus %10.1fus %17.1f%%\n",
			r.Model, r.Config, r.LatencyUS, r.PeriodUS, 100*(r.LatencyUS-r.PeriodUS)/r.LatencyUS)
	}
}

// SchedulingRow compares layer-ordering strategies on one model.
type SchedulingRow struct {
	Model        string
	Algorithm1   float64 // latency us
	DepthFirst   float64
	BreadthFirst float64
}

// SchedulingSweep compares Algorithm 1 against pure depth-first and
// breadth-first orders under the full optimization stack (Figure 6/8:
// depth-first maximizes reuse, breadth-first widens sync spans;
// Algorithm 1 mixes them by partition direction).
func SchedulingSweep() ([]SchedulingRow, error) {
	a := arch.Exynos2100Like()
	names := []string{"InceptionV3", "MobileNetV2", "MobileNetV2-SSD"}
	return parallel.Map(len(names), func(i int) (SchedulingRow, error) {
		name := names[i]
		g := models.ByNameMust(name)
		row := SchedulingRow{Model: name}
		for _, pt := range []struct {
			s    core.Scheduling
			dest *float64
		}{
			{core.ScheduleAlgorithm1, &row.Algorithm1},
			{core.ScheduleDepthFirst, &row.DepthFirst},
			{core.ScheduleBreadthFirst, &row.BreadthFirst},
		} {
			opt := core.Stratum()
			opt.Scheduling = pt.s
			_, out, err := runOne(g, a, opt, false)
			if err != nil {
				return SchedulingRow{}, fmt.Errorf("scheduling %s %v: %w", name, pt.s, err)
			}
			*pt.dest = out.Stats.LatencyMicros(a.ClockMHz)
		}
		return row, nil
	})
}

// PrintScheduling renders the strategy comparison.
func PrintScheduling(w io.Writer, rows []SchedulingRow) {
	fmt.Fprintln(w, "Ablation A7: layer scheduling strategies (+Stratum, latency us)")
	fmt.Fprintf(w, "%-17s %12s %12s %14s\n", "Model", "Algorithm1", "depth-first", "breadth-first")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %12.1f %12.1f %14.1f\n", r.Model, r.Algorithm1, r.DepthFirst, r.BreadthFirst)
	}
}

// ConcurrentRow compares spatial sharing against time multiplexing
// for a two-network workload.
type ConcurrentRow struct {
	Pair         string
	ConcurrentUS float64 // both done, cores partitioned
	SequentialUS float64 // both done, whole NPU time-multiplexed
}

// Concurrent measures the multi-network scenario: two streams on
// disjoint core subsets versus running each on all cores in turn.
func Concurrent() ([]ConcurrentRow, error) {
	a := arch.Exynos2100Like()
	pairs := [][2]string{
		{"MobileNetV2-SSD", "MobileNetV2"},
		{"MobileDet-SSD", "MobileNetV2"},
	}
	return parallel.Map(len(pairs), func(i int) (ConcurrentRow, error) {
		pair := pairs[i]
		g1 := models.ByNameMust(pair[0])
		g2 := models.ByNameMust(pair[1])

		sub01, err := a.Subset([]int{0, 1})
		if err != nil {
			return ConcurrentRow{}, err
		}
		sub2, err := a.Subset([]int{2})
		if err != nil {
			return ConcurrentRow{}, err
		}
		r1, err := core.CompileCached(g1, sub01, core.Stratum())
		if err != nil {
			return ConcurrentRow{}, err
		}
		r2, err := core.CompileCached(g2, sub2, core.Stratum())
		if err != nil {
			return ConcurrentRow{}, err
		}
		both, err := sim.RunConcurrent(a, []sim.Placement{
			{Program: r1.Program, Cores: []int{0, 1}},
			{Program: r2.Program, Cores: []int{2}},
		}, simConfig())
		if err != nil {
			return ConcurrentRow{}, err
		}

		var seq float64
		for _, g := range []string{pair[0], pair[1]} {
			_, out, err := runOne(models.ByNameMust(g), a, core.Stratum(), false)
			if err != nil {
				return ConcurrentRow{}, err
			}
			seq += out.Stats.LatencyMicros(a.ClockMHz)
		}
		return ConcurrentRow{
			Pair:         pair[0] + " + " + pair[1],
			ConcurrentUS: both.Stats.TotalCycles / float64(a.ClockMHz),
			SequentialUS: seq,
		}, nil
	})
}

// PrintConcurrent renders the multi-network comparison.
func PrintConcurrent(w io.Writer, rows []ConcurrentRow) {
	fmt.Fprintln(w, "Multi-network concurrency: spatial core sharing vs time multiplexing")
	fmt.Fprintf(w, "%-36s %14s %14s %9s\n", "pair", "concurrent", "sequential", "gain")
	for _, r := range rows {
		fmt.Fprintf(w, "%-36s %12.1fus %12.1fus %8.1f%%\n",
			r.Pair, r.ConcurrentUS, r.SequentialUS, 100*(r.SequentialUS-r.ConcurrentUS)/r.SequentialUS)
	}
}

// PrintAblations renders every ablation study.
func PrintAblations(w io.Writer) error {
	fmt.Fprintln(w, "Ablation A1: synchronization cost sweep (MobileNetV2, latency us)")
	sync, err := SyncCostSweep("MobileNetV2")
	if err != nil {
		return err
	}
	printSweep(w, sync, "sync_us")

	fmt.Fprintln(w, "\nAblation A2: shared-bus bandwidth sweep (InceptionV3, latency us)")
	bus, err := BusSweep("InceptionV3")
	if err != nil {
		return err
	}
	printSweep(w, bus, "bus_B/cyc")

	fmt.Fprintln(w, "\nAblation A3: SPM capacity sweep (InceptionV3, +Stratum)")
	spm, err := SPMSweep("InceptionV3")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %10s %12s\n", "SPM(KB)", "latency(us)", "instrs", "multi-strata")
	for _, r := range spm {
		fmt.Fprintf(w, "%10d %12.1f %10d %12d\n", r.SPMKB, r.LatencyUS, r.Instrs, r.MultiStrata)
	}

	fmt.Fprintln(w, "\nAblation A4: core-count scaling (MobileNetV2, +Stratum)")
	scaling, err := CoreScaling("MobileNetV2", 8)
	if err != nil {
		return err
	}
	base := scaling[0].LatencyUS
	fmt.Fprintf(w, "%8s %12s %9s\n", "cores", "latency(us)", "speedup")
	for _, p := range scaling {
		fmt.Fprintf(w, "%8.0f %12.1f %8.2fx\n", p.Param, p.LatencyUS, base/p.LatencyUS)
	}

	sched, err := SchedulingSweep()
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	PrintScheduling(w, sched)

	fmt.Fprintln(w, "\nAblation A5: energy model (uJ per inference)")
	energy, err := EnergySweep()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-17s %10s %10s %10s\n", "Model", "Base", "+Halo", "+Stratum")
	byModel := map[string]map[string]EnergyRow{}
	for _, r := range energy {
		if byModel[r.Model] == nil {
			byModel[r.Model] = map[string]EnergyRow{}
		}
		byModel[r.Model][r.Config] = r
	}
	for _, m := range models.All() {
		e := byModel[m.Name]
		fmt.Fprintf(w, "%-17s %10.0f %10.0f %10.0f\n",
			m.Name, e["Base"].UJ, e["+Halo"].UJ, e["+Stratum"].UJ)
	}

	ic, err := InterconnectSweep()
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	PrintInterconnect(w, ic)

	tp, err := ThroughputSweep("MobileNetV2", 8)
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	PrintThroughput(w, tp, 8)

	pl, err := PipelineSweep()
	if err != nil {
		return err
	}
	fmt.Fprintln(w)
	PrintPipeline(w, pl)
	return nil
}

// printSweep renders points grouped by parameter value.
func printSweep(w io.Writer, points []AblationPoint, param string) {
	configs := []string{}
	seen := map[string]bool{}
	for _, p := range points {
		if !seen[p.Config] {
			seen[p.Config] = true
			configs = append(configs, p.Config)
		}
	}
	fmt.Fprintf(w, "%10s", param)
	for _, c := range configs {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	byParam := map[float64]map[string]float64{}
	var params []float64
	for _, p := range points {
		if byParam[p.Param] == nil {
			byParam[p.Param] = map[string]float64{}
			params = append(params, p.Param)
		}
		byParam[p.Param][p.Config] = p.LatencyUS
	}
	for _, v := range params {
		fmt.Fprintf(w, "%10.1f", v)
		for _, c := range configs {
			fmt.Fprintf(w, " %10.1f", byParam[v][c])
		}
		fmt.Fprintln(w)
	}
}

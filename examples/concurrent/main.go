// Concurrent: run two networks at once on disjoint core subsets — the
// multi-DNN scenario that motivates multicore NPUs (e.g. a camera
// pipeline running detection and segmentation together). Compares
// core-partitioned concurrency against time-multiplexing the whole
// NPU.
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

func main() {
	det := npu.BuildModel("MobileNetV2-SSD") // detection stream
	cls := npu.BuildModel("MobileNetV2")     // classification stream
	a := npu.Exynos2100Like()

	// Option A: spatial sharing — detector on 2 cores, classifier on 1.
	rep, err := npu.RunConcurrent(a, []npu.Workload{
		{Graph: det, Cores: []int{0, 1}, Options: npu.Stratum()},
		{Graph: cls, Cores: []int{2}, Options: npu.Stratum()},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("spatial sharing (SSD on P0+P1, classifier on P2):")
	fmt.Printf("  SSD done at %9.1f us\n", rep.PerWorkloadUS[0])
	fmt.Printf("  cls done at %9.1f us\n", rep.PerWorkloadUS[1])
	both := rep.Stats.TotalCycles / float64(a.ClockMHz)
	fmt.Printf("  both done at %8.1f us\n", both)

	// Option B: time multiplexing — each network gets all 3 cores,
	// one after the other.
	repDet, err := npu.Run(det, a, npu.Stratum())
	if err != nil {
		log.Fatal(err)
	}
	repCls, err := npu.Run(cls, a, npu.Stratum())
	if err != nil {
		log.Fatal(err)
	}
	seq := repDet.LatencyMicros() + repCls.LatencyMicros()
	fmt.Println("\ntime multiplexing (each network gets all 3 cores in turn):")
	fmt.Printf("  SSD alone %9.1f us, cls alone %8.1f us, total %8.1f us\n",
		repDet.LatencyMicros(), repCls.LatencyMicros(), seq)

	fmt.Printf("\nconcurrent finishes %.1f%% %s than time multiplexing\n",
		100*abs(seq-both)/seq, cmp(both, seq))
	fmt.Println("(sharing avoids per-layer sync across all 3 cores, but the two")
	fmt.Println("streams contend for the memory bus — the trade-off is workload-dependent)")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func cmp(a, b float64) string {
	if a < b {
		return "sooner"
	}
	return "later"
}

package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/stats"
)

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var buf bytes.Buffer
	PrintTable1(&buf, rows)
	s := buf.String()
	for _, want := range []string{"spatial", "channel*", "partial sum reduction", "kernel"} {
		if !strings.Contains(s, want) {
			t.Errorf("table1 missing %q:\n%s", want, s)
		}
	}
}

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Layers == 0 || r.GMACs <= 0 {
			t.Errorf("%s: empty stats", r.Info.Name)
		}
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "DeepLabV3+") || !strings.Contains(buf.String(), "INT16") {
		t.Error("table2 missing models")
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table4Row{}
	total := func(r Table4Row) int64 {
		var s int64
		for _, b := range r.BytesPerCore {
			s += b
		}
		return s
	}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// Paper's finding: adaptive moves the least data.
	if total(byName["adaptive"]) > total(byName["spatial"]) {
		t.Errorf("adaptive transfer %d > spatial %d", total(byName["adaptive"]), total(byName["spatial"]))
	}
	if total(byName["adaptive"]) > total(byName["channel"]) {
		t.Errorf("adaptive transfer %d > channel %d", total(byName["adaptive"]), total(byName["channel"]))
	}
	// And the lowest latency.
	if byName["adaptive"].LatencyUS > byName["spatial"].LatencyUS ||
		byName["adaptive"].LatencyUS > byName["channel"].LatencyUS {
		t.Errorf("adaptive latency %.1f not best (spatial %.1f, channel %.1f)",
			byName["adaptive"].LatencyUS, byName["spatial"].LatencyUS, byName["channel"].LatencyUS)
	}
	// And the lowest idle mean and spread across cores (the paper's
	// core-utilization argument for adaptive partitioning).
	idle := func(r Table4Row) (mean, std float64) {
		s := stats.Summarize(r.IdleUSPerCore)
		return s.Mean, s.Std
	}
	am, as := idle(byName["adaptive"])
	for _, other := range []string{"spatial", "channel"} {
		om, os := idle(byName[other])
		if am > om {
			t.Errorf("adaptive idle μ %.0f > %s %.0f", am, other, om)
		}
		if as > os {
			t.Errorf("adaptive idle σ %.0f > %s %.0f", as, other, os)
		}
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "adaptive") {
		t.Error("table4 print missing scheme")
	}
}

func TestTable5ShapeMatchesPaper(t *testing.T) {
	rows, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Table5Row{}
	for _, r := range rows {
		byName[r.Config] = r
	}
	// Stratum-bearing configs execute more MACs (redundant halo
	// compute) than halo-exchange alone.
	if byName["+Stratum"].GMACs < byName["+Halo"].GMACs {
		t.Errorf("+Stratum GMACs %.3f < +Halo %.3f", byName["+Stratum"].GMACs, byName["+Halo"].GMACs)
	}
	// Stratum reduces sync overhead versus halo (paper: 17.5 vs 21.2us).
	if byName["+Stratum"].SyncUS.Mean > byName["+Halo"].SyncUS.Mean {
		t.Errorf("+Stratum sync %.1f > +Halo %.1f", byName["+Stratum"].SyncUS.Mean, byName["+Halo"].SyncUS.Mean)
	}
	// Combined must not lose to halo-only (paper: 378.8 vs 387 us).
	if byName["Combined"].LatencyUS > byName["+Halo"].LatencyUS*1.02 {
		t.Errorf("Combined %.1fus much worse than +Halo %.1fus",
			byName["Combined"].LatencyUS, byName["+Halo"].LatencyUS)
	}
	var buf bytes.Buffer
	PrintTable5(&buf, rows)
	if !strings.Contains(buf.String(), "Combined") {
		t.Error("table5 print incomplete")
	}
}

func TestFig12HaloFirstHidesIdle(t *testing.T) {
	variants, err := Fig12()
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 3 {
		t.Fatalf("variants = %d", len(variants))
	}
	a, b, c := variants[0], variants[1], variants[2]
	// Halo-exchange must reduce the exposed boundary idle versus the
	// store-sync-load round trip, and halo-first must not regress it.
	if b.ExposedIdleUS > a.ExposedIdleUS {
		t.Errorf("halo-exchange idle %.2f > store-sync-load %.2f", b.ExposedIdleUS, a.ExposedIdleUS)
	}
	if c.ExposedIdleUS > b.ExposedIdleUS {
		t.Errorf("halo-first idle %.2f > no-halo-first %.2f", c.ExposedIdleUS, b.ExposedIdleUS)
	}
	if c.LatencyUS > a.LatencyUS {
		t.Errorf("full halo variant %.1fus slower than store-sync-load %.1fus", c.LatencyUS, a.LatencyUS)
	}
	if len(b.Trace) == 0 {
		t.Error("variant (b) has no trace for the first two convs")
	}
	var buf bytes.Buffer
	if err := PrintFig12(&buf, variants, arch.Exynos2100Like()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "halo-first") {
		t.Error("fig12 print incomplete")
	}
	if Fig12Summary(variants) == "" {
		t.Error("empty summary")
	}
}

func TestFig11ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full model sweep in -short mode")
	}
	rows, err := Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	better := 0
	for _, r := range rows {
		// Multicore with all optimizations must beat single core on
		// every model (Figure 11).
		if r.StratumUS >= r.SingleUS {
			t.Errorf("%s: +Stratum %.1f >= single %.1f", r.Model, r.StratumUS, r.SingleUS)
		}
		// The full optimization stack must beat Base everywhere.
		if r.StratumUS >= r.BaseUS {
			t.Errorf("%s: +Stratum %.1f >= Base %.1f", r.Model, r.StratumUS, r.BaseUS)
		}
		if r.HaloUS < r.BaseUS {
			better++
		}
	}
	// Halo may occasionally degrade (the paper's DeepLabV3+ does) but
	// must win on most models.
	if better < 4 {
		t.Errorf("+Halo beat Base on only %d/6 models", better)
	}
	var buf bytes.Buffer
	PrintFig11(&buf, rows)
	if !strings.Contains(buf.String(), "geomean") {
		t.Error("fig11 print incomplete")
	}
}

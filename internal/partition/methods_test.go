package partition

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// matrixGraph builds one graph touching every operator class whose
// Table 1 method support differs, so the supported/unsupported matrix
// can be asserted per (operator, method) pair.
func matrixGraph() (*graph.Graph, map[string]graph.LayerID) {
	g := graph.New("matrix", tensor.Int8)
	ids := map[string]graph.LayerID{}
	in := g.Input("input", tensor.NewShape(32, 32, 16))
	ids["input"] = in
	ids["conv"] = g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	ids["dwconv"] = g.MustAdd("dwconv", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), ids["conv"])
	ids["pool"] = g.MustAdd("pool", ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, ids["dwconv"])
	ids["act"] = g.MustAdd("act", ops.Activation{Func: ops.ReLU}, ids["pool"])
	ids["add"] = g.MustAdd("add", ops.Add{Arity: 2}, ids["pool"], ids["act"])
	ids["concat"] = g.MustAdd("concat", ops.Concat{Arity: 2}, ids["add"], ids["act"])
	ids["gap"] = g.MustAdd("gap", ops.GlobalAvgPool{}, ids["concat"])
	ids["fc"] = g.MustAdd("fc", ops.FullyConnected{OutC: 10}, ids["gap"])
	ids["softmax"] = g.MustAdd("softmax", ops.Softmax{}, ids["fc"])
	return g, ids
}

// TestMethodMatrix pins the Table 1 supported/unsupported matrix: for
// each operator class, which of the four methods (plus auto) a
// per-layer override may force. The partial-sum variants are never
// supported — the emitter has no reduction stage, matching the paper's
// use of only the reduction-free rows.
func TestMethodMatrix(t *testing.T) {
	g, ids := matrixGraph()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// want maps layer -> supported methods; every method absent from the
	// set must be rejected. MethodAuto is supported everywhere except
	// nowhere (inputs included: auto means "no override").
	want := map[string][]MethodID{
		"input":   {MethodAuto},
		"conv":    {MethodAuto, MethodSpatial, MethodChannel},
		"dwconv":  {MethodAuto, MethodSpatial, MethodChannel},
		"pool":    {MethodAuto, MethodSpatial, MethodChannel},
		"act":     {MethodAuto, MethodSpatial, MethodChannel},
		"add":     {MethodAuto, MethodSpatial, MethodChannel},
		"concat":  {MethodAuto, MethodSpatial, MethodChannel},
		"gap":     {MethodAuto, MethodChannel}, // 1x1 spatial output
		"fc":      {MethodAuto, MethodChannel}, // channel-only operator
		"softmax": {MethodAuto},                // spatial-only op on a 1x1 map
	}
	for name, supported := range want {
		l := g.Layer(ids[name])
		set := map[MethodID]bool{}
		for _, m := range supported {
			set[m] = true
		}
		for _, m := range Methods() {
			ok, why := MethodSupported(m, l)
			if ok != set[m] {
				t.Errorf("%s: MethodSupported(%s) = %v (%s), want %v", name, m, ok, why, set[m])
			}
			if !ok && why == "" {
				t.Errorf("%s: rejected %s without a reason", name, m)
			}
		}
	}
}

// TestMethodTableShape pins the Table 1 row metadata: IDs, labels, and
// that exactly the reduction-free rows are Preferred.
func TestMethodTableShape(t *testing.T) {
	rows := ConvMethods()
	if len(rows) != 4 {
		t.Fatalf("ConvMethods = %d rows, want 4", len(rows))
	}
	wantID := []MethodID{MethodSpatial, MethodSpatialPS, MethodChannel, MethodChannelPS}
	for i, row := range rows {
		if row.ID != wantID[i] {
			t.Errorf("row %d ID = %v, want %v", i, row.ID, wantID[i])
		}
		if row.Name != row.ID.String() {
			t.Errorf("row %d Name %q != ID label %q", i, row.Name, row.ID.String())
		}
		star := strings.HasSuffix(row.Name, "*")
		if row.Preferred == star {
			t.Errorf("row %q: Preferred=%v but asterisk=%v", row.Name, row.Preferred, star)
		}
		if !row.Preferred {
			if row.ExtraCommComp != "partial sum reduction" {
				t.Errorf("row %q: dispreferred without a reduction stage", row.Name)
			}
			// And no layer may ever force it.
			g, ids := matrixGraph()
			if ok, _ := MethodSupported(row.ID, g.Layer(ids["conv"])); ok {
				t.Errorf("row %q must be unsupported on every layer", row.Name)
			}
		}
	}
	if Methods()[0] != MethodAuto || len(Methods()) != 5 {
		t.Errorf("Methods() = %v, want auto-first Table 1 order", Methods())
	}
	if MethodAuto.String() != "auto" || MethodID(99).String() == "" {
		t.Error("MethodID labels broken")
	}
}

// TestForceOverridesHeuristics pins the per-layer override semantics of
// ChooseDirection: a supported Force entry wins over h1–h5 and the
// Reason names it; unsupported or absent entries defer to the
// heuristics; whole-graph forced modes beat per-layer overrides.
func TestForceOverridesHeuristics(t *testing.T) {
	g, ids := matrixGraph()
	a := arch.Exynos2100Like()
	conv := g.Layer(ids["conv"])

	p := New(g, a)
	base, baseReason := p.ChooseDirection(conv)
	if !base.Spatial() || !strings.HasPrefix(baseReason, "h") {
		t.Fatalf("baseline conv = %v (%s), want heuristic spatial", base, baseReason)
	}

	// Supported override flips the direction and says so.
	p.Force = make([]MethodID, g.Len())
	p.Force[conv.ID] = MethodChannel
	d, reason := p.ChooseDirection(conv)
	if d != DirChannel || reason != "override: channel method" {
		t.Errorf("forced channel: got %v (%s)", d, reason)
	}
	p.Force[conv.ID] = MethodSpatial
	d, reason = p.ChooseDirection(conv)
	if !d.Spatial() || reason != "override: spatial method" {
		t.Errorf("forced spatial: got %v (%s)", d, reason)
	}

	// Unsupported override (channel on the spatial-only softmax) defers
	// to the heuristics rather than failing.
	softmax := g.Layer(ids["softmax"])
	p.Force[softmax.ID] = MethodChannel
	_, reason = p.ChooseDirection(softmax)
	if strings.HasPrefix(reason, "override") {
		t.Errorf("unsupported override must defer to heuristics, got %s", reason)
	}

	// Whole-graph forced modes outrank per-layer overrides, so the
	// compile fallback chain's forced-channel last resort keeps its
	// capacity guarantee.
	p.Mode = ForceSpatial
	p.Force[conv.ID] = MethodChannel
	d, reason = p.ChooseDirection(conv)
	if !d.Spatial() || !strings.HasPrefix(reason, "forced") {
		t.Errorf("mode must beat override: got %v (%s)", d, reason)
	}
}

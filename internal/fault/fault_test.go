package fault

import (
	"math"
	"reflect"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	p, err := ParseSpec("drop=0.02,retries=4,throttle=1@50000x0.5,kill=2@400000", 7)
	if err != nil {
		t.Fatal(err)
	}
	want := &Plan{
		Seed:       7,
		DropRate:   0.02,
		MaxRetries: 4,
		Throttles:  []Throttle{{Core: 1, AtCycle: 50000, Factor: 0.5}},
		Deaths:     []Death{{Core: 2, AtCycle: 400000}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	back, err := ParseSpec(p.String(), 7)
	if err != nil {
		t.Fatalf("re-parse %q: %v", p.String(), err)
	}
	if !reflect.DeepEqual(back, want) {
		t.Fatalf("round trip %+v, want %+v", back, want)
	}
}

func TestParseSpecEmpty(t *testing.T) {
	p, err := ParseSpec("  ", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Empty() {
		t.Errorf("blank spec not empty: %+v", p)
	}
	if p.String() != "none" {
		t.Errorf("empty plan renders %q", p.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"drop",               // no value
		"drop=x",             // bad float
		"drop=1.5",           // out of range
		"throttle=1@5000",    // missing factor
		"throttle=1@axb",     // bad numbers
		"throttle=0@100x1.5", // factor > 1
		"kill=2",             // missing cycle
		"warp=9",             // unknown clause
		"retries=-1",         // negative bound
	} {
		if _, err := ParseSpec(spec, 0); err == nil {
			t.Errorf("spec %q parsed without error", spec)
		}
	}
}

func TestDropsDeterministicAndSeeded(t *testing.T) {
	a := &Plan{Seed: 1, DropRate: 0.3}
	b := &Plan{Seed: 1, DropRate: 0.3}
	c := &Plan{Seed: 2, DropRate: 0.3}
	same, diff := true, false
	for tr := 0; tr < 512; tr++ {
		for at := 0; at < 3; at++ {
			if a.Drops(tr, at) != b.Drops(tr, at) {
				same = false
			}
			if a.Drops(tr, at) != c.Drops(tr, at) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("identical (seed, transfer, attempt) decisions differ")
	}
	if !diff {
		t.Error("different seeds never diverge")
	}
}

func TestDropsRateEmpirical(t *testing.T) {
	p := &Plan{Seed: 42, DropRate: 0.25}
	n, hits := 20000, 0
	for tr := 0; tr < n; tr++ {
		if p.Drops(tr, 0) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.25) > 0.02 {
		t.Errorf("empirical drop rate %.3f, want ~0.25", got)
	}
}

func TestDropsNilAndZero(t *testing.T) {
	var nilPlan *Plan
	if nilPlan.Drops(3, 0) {
		t.Error("nil plan drops")
	}
	if !nilPlan.Empty() {
		t.Error("nil plan not empty")
	}
	if (&Plan{Seed: 9}).Drops(3, 0) {
		t.Error("zero drop rate drops")
	}
	if nilPlan.Retries() != DefaultMaxRetries {
		t.Errorf("nil plan retries %d", nilPlan.Retries())
	}
}

func TestBackoffCycles(t *testing.T) {
	if got := BackoffCycles(400, 1); got != 800 {
		t.Errorf("attempt 1 backoff %g, want 800", got)
	}
	if got := BackoffCycles(400, 3); got != 3200 {
		t.Errorf("attempt 3 backoff %g, want 3200", got)
	}
	// Capped growth.
	if got := BackoffCycles(400, 50); got != 400*256 {
		t.Errorf("capped backoff %g, want %d", got, 400*256)
	}
	if BackoffCycles(0, 1) <= 0 {
		t.Error("zero setup cost yields non-positive backoff")
	}
}

func TestSortedEvents(t *testing.T) {
	p := &Plan{
		Throttles: []Throttle{{Core: 0, AtCycle: 500, Factor: 0.5}, {Core: 1, AtCycle: 100, Factor: 0.9}},
		Deaths:    []Death{{Core: 2, AtCycle: 900}, {Core: 0, AtCycle: 200}},
	}
	th := p.SortedThrottles()
	if th[0].AtCycle != 100 || th[1].AtCycle != 500 {
		t.Errorf("throttles unsorted: %+v", th)
	}
	de := p.SortedDeaths()
	if de[0].AtCycle != 200 || de[1].AtCycle != 900 {
		t.Errorf("deaths unsorted: %+v", de)
	}
	// Original plan untouched.
	if p.Throttles[0].AtCycle != 500 {
		t.Error("SortedThrottles mutated the plan")
	}
}

func TestTimelineCollidingCycles(t *testing.T) {
	// Same-cycle events must order by (kind, core) no matter how the
	// plan lists them: throttles before deaths, then ascending core.
	p := &Plan{
		Throttles: []Throttle{
			{Core: 2, AtCycle: 100, Factor: 0.5},
			{Core: 0, AtCycle: 100, Factor: 0.25},
		},
		Deaths: []Death{
			{Core: 1, AtCycle: 100},
			{Core: 0, AtCycle: 100},
			{Core: 2, AtCycle: 50},
		},
	}
	got := p.Timeline(3, nil)
	want := []TimedEvent{
		{Kind: KindDeath, Core: 2, AtCycle: 50},
		{Kind: KindThrottle, Core: 0, AtCycle: 100, Factor: 0.25},
		{Kind: KindThrottle, Core: 2, AtCycle: 100, Factor: 0.5},
		{Kind: KindDeath, Core: 0, AtCycle: 100},
		{Kind: KindDeath, Core: 1, AtCycle: 100},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("timeline order:\n got %+v\nwant %+v", got, want)
	}
	// A permuted plan produces the identical timeline.
	q := &Plan{
		Throttles: []Throttle{p.Throttles[1], p.Throttles[0]},
		Deaths:    []Death{p.Deaths[2], p.Deaths[0], p.Deaths[1]},
	}
	if got2 := q.Timeline(3, nil); !reflect.DeepEqual(got2, want) {
		t.Errorf("permuted plan diverged:\n got %+v\nwant %+v", got2, want)
	}
	// Events on cores the architecture lacks stay inert.
	if short := p.Timeline(1, nil); len(short) != 2 {
		t.Errorf("ncores=1 timeline has %d events, want 2: %+v", len(short), short)
	}
}

package metrics

import (
	"fmt"

	"repro/internal/recovery"
	"repro/internal/sim"
)

// ResilienceReport quantifies one detected failure and its recovery:
// how long the fault ran silently before the watchdog (or the fault's
// own announcement) caught it, how much finished work was thrown away,
// and what the degraded end-to-end latency cost relative to a clean
// run. It marshals directly to JSON (npubench -experiment resilience).
type ResilienceReport struct {
	// Kind names the failure class: "hang", "death", or "dma".
	Kind string `json:"kind"`
	// InjectedAtCycle is when the fault plan fired the fault.
	InjectedAtCycle float64 `json:"injected_at_cycle"`
	// DetectedAtCycle is when the run returned its typed error — the
	// watchdog heartbeat for hangs, the fault cycle itself for deaths.
	DetectedAtCycle float64 `json:"detected_at_cycle"`
	// DetectionLatencyCycles is Detected - Injected. For a hang it is
	// bounded by twice the heartbeat interval (one beat to land after
	// the stall, one more if the first beat raced the freeze).
	DetectionLatencyCycles float64 `json:"detection_latency_cycles"`
	// HeartbeatCycles is the watchdog interval in force (0 = no
	// watchdog; detection then relied on the fault announcing itself).
	HeartbeatCycles float64 `json:"heartbeat_cycles"`
	// DeadCores and Survivors partition the machine after recovery.
	DeadCores []int `json:"dead_cores"`
	Survivors []int `json:"survivors"`
	// CheckpointedLayers is how much of the network the recovery cut
	// preserved; ReExecutedLayers is what the final suffix recomputed.
	CheckpointedLayers int `json:"checkpointed_layers"`
	ReExecutedLayers   int `json:"reexecuted_layers"`
	// WastedCycles sums the simulated time of every abandoned attempt —
	// work that ran but could not be kept (minus nothing: checkpointed
	// layers still had to be paid for once).
	WastedCycles float64 `json:"wasted_cycles"`
	// CleanCycles and DegradedCycles compare the fault-free latency
	// with the end-to-end recovered one; OverheadPct is the relative
	// cost, (Degraded-Clean)/Clean * 100.
	CleanCycles    float64 `json:"clean_cycles"`
	DegradedCycles float64 `json:"degraded_cycles"`
	OverheadPct    float64 `json:"overhead_pct"`
}

// BuildResilience assembles the report for one recovery episode. kind
// labels the initial failure; injectedAt and heartbeat describe the
// experiment (heartbeat 0 when no watchdog was armed); clean is the
// fault-free latency of the same program.
func BuildResilience(kind string, injectedAt, heartbeat, clean float64, r *recovery.Result) (ResilienceReport, error) {
	rep := ResilienceReport{
		Kind:               kind,
		InjectedAtCycle:    injectedAt,
		HeartbeatCycles:    heartbeat,
		DeadCores:          r.DeadCores,
		Survivors:          r.Survivors,
		CheckpointedLayers: len(r.Completed),
		ReExecutedLayers:   r.ReExecutedLayers(),
		CleanCycles:        clean,
		DegradedCycles:     r.TotalCycles,
	}
	switch kind {
	case "hang":
		if len(r.Hangs) == 0 {
			return rep, fmt.Errorf("metrics: hang episode recorded no hang detections")
		}
		rep.DetectedAtCycle = r.Hangs[0].AtCycle
	case "death", "dma":
		if len(r.Failures) == 0 {
			return rep, fmt.Errorf("metrics: %s episode recorded no core failures", kind)
		}
		rep.DetectedAtCycle = r.Failures[0].AtCycle
	default:
		return rep, fmt.Errorf("metrics: unknown failure kind %q", kind)
	}
	rep.DetectionLatencyCycles = rep.DetectedAtCycle - injectedAt
	if rep.DetectionLatencyCycles < 0 {
		// A beat can land exactly on the injection cycle; clamp float -0.
		rep.DetectionLatencyCycles = 0
	}
	for _, h := range r.Hangs {
		rep.WastedCycles += h.AtCycle
	}
	for _, f := range r.Failures {
		rep.WastedCycles += f.AtCycle
	}
	if clean > 0 {
		rep.OverheadPct = (r.TotalCycles - clean) / clean * 100
	}
	return rep, nil
}

// CorruptionReport quantifies silent-data-corruption detection over
// one run: every injected flip is caught at the next stratum boundary,
// and repair re-executes only the corrupted strata.
type CorruptionReport struct {
	// Detected counts corrupted strata; CorruptedTransfers the flipped
	// DMA transfers across them.
	Detected           int `json:"detected"`
	CorruptedTransfers int `json:"corrupted_transfers"`
	// FirstDetectedCycle / LastDetectedCycle bracket the detections.
	FirstDetectedCycle float64 `json:"first_detected_cycle"`
	LastDetectedCycle  float64 `json:"last_detected_cycle"`
	// ReExecutedLayers counts the layers of every corrupted stratum —
	// the bounded blast radius — and ReExecutedCycles the simulated
	// cost of re-running them (caller-measured).
	ReExecutedLayers int     `json:"reexecuted_layers"`
	ReExecutedCycles float64 `json:"reexecuted_cycles"`
	// CleanCycles and OverheadPct relate repair cost to a clean run.
	CleanCycles float64 `json:"clean_cycles"`
	OverheadPct float64 `json:"overhead_pct"`
}

// BuildCorruption assembles the report from a run's detections plus
// the caller's measured repair cost.
func BuildCorruption(clean float64, cors []sim.Corruption, reexecLayers int, reexecCycles float64) CorruptionReport {
	rep := CorruptionReport{
		Detected:         len(cors),
		ReExecutedLayers: reexecLayers,
		ReExecutedCycles: reexecCycles,
		CleanCycles:      clean,
	}
	for i, c := range cors {
		rep.CorruptedTransfers += c.Transfers
		if i == 0 || c.DetectedAtCycle < rep.FirstDetectedCycle {
			rep.FirstDetectedCycle = c.DetectedAtCycle
		}
		if c.DetectedAtCycle > rep.LastDetectedCycle {
			rep.LastDetectedCycle = c.DetectedAtCycle
		}
	}
	if clean > 0 {
		rep.OverheadPct = reexecCycles / clean * 100
	}
	return rep
}

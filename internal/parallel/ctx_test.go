package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachCtxNil: a nil context is exactly ForEach.
func TestForEachCtxNil(t *testing.T) {
	var n atomic.Int64
	if err := ForEachCtx(nil, 100, func(_ context.Context, i int) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 100 {
		t.Fatalf("ran %d/100 indexes", n.Load())
	}
}

// TestForEachCtxPreCanceled: nothing runs when the context is already
// done.
func TestForEachCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachCtx(ctx, 100, func(_ context.Context, i int) error {
		ran = true
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran under a pre-canceled context")
	}
}

// TestForEachCtxMidSweep: cancellation mid-sweep stops claiming new
// indexes and surfaces the context error.
func TestForEachCtxMidSweep(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	err := ForEachCtx(ctx, 10000, func(_ context.Context, i int) error {
		if n.Add(1) == 8 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if got := n.Load(); got >= 10000 {
		t.Fatalf("cancellation did not shed work: %d indexes ran", got)
	}
}

// TestForEachCtxLowerErrorWins: a real failure at a lower index beats
// the cancellation error of higher indexes — the serial-equivalence
// contract is preserved under cancellation.
func TestForEachCtxLowerErrorWins(t *testing.T) {
	prev := SetWorkers(1) // serial: index 3 fails before any cancellation check
	defer SetWorkers(prev)
	boom := errors.New("boom")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := ForEachCtx(ctx, 100, func(_ context.Context, i int) error {
		if i == 3 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

// TestMapCtxCollects: MapCtx preserves Map's index-order collection.
func TestMapCtxCollects(t *testing.T) {
	out, err := MapCtx(context.Background(), 50, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

// TestMapCtxCanceled: a canceled MapCtx returns a nil slice and the
// context error.
func TestMapCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 50, func(_ context.Context, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) || out != nil {
		t.Fatalf("got (%v, %v), want (nil, context.Canceled)", out, err)
	}
}

// TestForEachCtxPanicReraised: panics still re-raise on the calling
// goroutine through the ctx path.
func TestForEachCtxPanicReraised(t *testing.T) {
	defer func() {
		if r := recover(); r != "ctx-panic" {
			t.Fatalf("recovered %v, want ctx-panic", r)
		}
	}()
	ForEachCtx(context.Background(), 4, func(_ context.Context, i int) error {
		if i == 0 {
			panic("ctx-panic")
		}
		return nil
	})
}

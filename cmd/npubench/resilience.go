package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

// runResilience is the -experiment resilience hook: hang detection
// latency vs watchdog heartbeat and silent-data-corruption repair for
// every Table 2 model, written to BENCH_resilience.json. The report is
// byte-identical across reruns at the same seed and any -j.
func runResilience(w io.Writer, benchPath string, seed uint64) error {
	b, err := experiments.Resilience(seed)
	if err != nil {
		return err
	}
	experiments.PrintResilience(w, b)
	f, err := os.Create(benchPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", benchPath)
	return nil
}

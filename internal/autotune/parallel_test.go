package autotune

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/parallel"
)

// TestAutoBalanceParallelMatchesSerial asserts that evaluating the
// per-iteration candidate set concurrently commits exactly the
// schedule the serial evaluation commits: same steps, same latencies,
// same winning scale vectors, same instruction streams.
func TestAutoBalanceParallelMatchesSerial(t *testing.T) {
	g := models.ConvChain(6, 64, 64, 16)
	a := arch.Exynos2100Like()
	a.Cores[2].DMABytesPerCycle = 2 // skew so rebalancing actually moves

	prev := parallel.SetWorkers(1)
	serial, err := AutoBalance(g, a, core.Halo(), 4)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetWorkers(8)
	par, err := AutoBalance(g, a, core.Halo(), 4)
	parallel.SetWorkers(prev)
	if err != nil {
		t.Fatal(err)
	}

	if serial.BestLatencyCycles != par.BestLatencyCycles {
		t.Errorf("best latency differs: serial %.0f vs parallel %.0f",
			serial.BestLatencyCycles, par.BestLatencyCycles)
	}
	if serial.Evaluated != par.Evaluated {
		t.Errorf("evaluated %d vs %d", serial.Evaluated, par.Evaluated)
	}
	if !reflect.DeepEqual(serial.Steps, par.Steps) {
		t.Errorf("step traces differ:\nserial:   %+v\nparallel: %+v", serial.Steps, par.Steps)
	}
	if !reflect.DeepEqual(serial.Best.Program.Cores, par.Best.Program.Cores) {
		t.Error("winning instruction streams differ between serial and parallel")
	}
}

// TestAutoBalanceEvaluatedCount checks the candidate-set accounting:
// one unscaled point, then one point per damping per later iteration.
func TestAutoBalanceEvaluatedCount(t *testing.T) {
	g := models.TinyCNN()
	res, err := AutoBalance(g, arch.Exynos2100Like(), core.Base(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 + 2*len(dampings); res.Evaluated != want {
		t.Errorf("Evaluated = %d, want %d", res.Evaluated, want)
	}
	if len(res.Steps) != 3 {
		t.Errorf("steps = %d, want 3", len(res.Steps))
	}
}

// Package core is the multicore-NPU compiler: the paper's primary
// contribution. It orchestrates layer partitioning (heuristics h1–h5),
// layer scheduling (Algorithm 1), stratum construction (Algorithm 2,
// heuristics h6–h8), and tiling with the halo-first policy, and lowers
// the result to per-core instruction streams (package plan) that the
// discrete-event simulator (package sim) executes.
package core

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/stratum"
)

// Scheduling selects the layer-ordering strategy (Figure 6 contrasts
// depth-first and breadth-first; Algorithm 1 mixes them by partition
// direction).
type Scheduling int

// Layer scheduling strategies.
const (
	// ScheduleAlgorithm1 follows the successor after spatially
	// partitioned layers and a sibling otherwise (the paper's
	// scheduler).
	ScheduleAlgorithm1 Scheduling = iota
	// ScheduleDepthFirst always follows a ready successor
	// (Figure 6(a): maximal data reuse).
	ScheduleDepthFirst
	// ScheduleBreadthFirst visits layers level by level (Figure 6(b):
	// longest spans between dependencies).
	ScheduleBreadthFirst
)

// String returns the strategy name.
func (s Scheduling) String() string {
	switch s {
	case ScheduleAlgorithm1:
		return "algorithm1"
	case ScheduleDepthFirst:
		return "depth-first"
	case ScheduleBreadthFirst:
		return "breadth-first"
	default:
		return "Scheduling(?)"
	}
}

// Options selects the optimization configuration (Table 3), plus
// fine-grained toggles the Figure 12 experiment isolates.
type Options struct {
	// Partitioning selects adaptive (h1–h5) or a forced direction
	// (Table 4 compares the three).
	Partitioning partition.Mode
	// Scheduling selects the layer execution order strategy.
	Scheduling Scheduling
	// HaloExchange exchanges borderline data between cores through the
	// halo-exchange interface instead of a full store-sync-load round
	// trip, removing the barrier from compatible adjacent layer pairs.
	HaloExchange bool
	// HaloFirst schedules halo-producing tiles before interior tiles
	// so the exchange overlaps with remaining computation.
	HaloFirst bool
	// Forwarding keeps a producer's output in SPM for the immediately
	// following consumer (feature-map forwarding), removing the local
	// store/load round trip as well.
	Forwarding bool
	// Stratum builds strata (Algorithm 2): synchronization-free chains
	// at the cost of redundant halo computation.
	Stratum bool
	// NoDoubleBuffer disables the double-buffered software pipeline
	// within each core: a tile's load then waits for the previous
	// tile's compute (single input buffer) and its compute for the
	// previous store (single output buffer). Exists to quantify the
	// pipelining benefit of Section 2.2 (ablation A10).
	NoDoubleBuffer bool
	// WeightScale optionally multiplies each core's partitioning
	// weight; the profile-guided rebalancing loop (package autotune)
	// feeds measured utilization back through it. Nil means unit
	// scales.
	WeightScale []float64
	// ForceMethods optionally overrides the partitioning method per
	// layer, indexed by LayerID (the design-space explorer's genome;
	// see partition.MethodID). MethodAuto entries and overrides the
	// operator cannot support defer to h1–h5. Only consulted under
	// Partitioning == partition.Adaptive, so the fallback chain's
	// forced-channel last resort keeps its capacity guarantee.
	ForceMethods []partition.MethodID
	// StratumBoundary optionally overrides stratum accumulation per
	// layer, indexed by LayerID (see stratum.Boundary): Break forces a
	// stratum boundary, Fuse merges through the h8 cost cutoff where
	// h6/h7 legality holds. Nil means all-auto (the paper's h6–h8).
	StratumBoundary []stratum.Boundary
}

// Base returns the paper's Base configuration: adaptive partitioning
// and pipelined tiling, but every layer boundary goes through
// store-sync-load.
func Base() Options {
	return Options{Partitioning: partition.Adaptive}
}

// Halo returns the +Halo configuration: Base plus halo-exchange,
// halo-first tile order, and feature-map forwarding.
func Halo() Options {
	return Options{
		Partitioning: partition.Adaptive,
		HaloExchange: true,
		HaloFirst:    true,
		Forwarding:   true,
	}
}

// Stratum returns the +Stratum configuration: Halo plus stratum
// construction.
func Stratum() Options {
	o := Halo()
	o.Stratum = true
	return o
}

// Name returns the Table 3 label of the configuration.
func (o Options) Name() string {
	switch {
	case o.Stratum:
		return "+Stratum"
	case o.HaloExchange:
		return "+Halo"
	default:
		return "Base"
	}
}

// FallbackLevel identifies how far the compile driver's graceful-
// degradation chain had to back off before producing a schedule that
// fits SPM (tiler budget and simulator admission check both).
type FallbackLevel int

// Fallback chain levels, in the order the driver tries them. Each
// level keeps the restrictions of the previous ones.
const (
	// FallbackNone: the requested configuration compiled and admitted
	// as-is.
	FallbackNone FallbackLevel = iota
	// FallbackShrinkTiles: the tiler budget was scaled down (smaller
	// tiles, more of them), leaving headroom for cross-layer prefetch
	// overlap the per-layer budget cannot see.
	FallbackShrinkTiles
	// FallbackShallowStrata: stratum accumulation was capped so fewer
	// forwarded feature maps stay resident at once.
	FallbackShallowStrata
	// FallbackNoForwarding: feature-map forwarding was disabled; layer
	// boundaries go back through store-sync-load.
	FallbackNoForwarding
	// FallbackChannelPartition: the partitioner was forced to channel
	// mode (weights split, full feature maps per core) with forwarding
	// and strata off — the last resort for layers whose spatial slices
	// cannot fit.
	FallbackChannelPartition
)

// String returns a short human-readable label.
func (f FallbackLevel) String() string {
	switch f {
	case FallbackNone:
		return "none"
	case FallbackShrinkTiles:
		return "shrink-tiles"
	case FallbackShallowStrata:
		return "shallow-strata"
	case FallbackNoForwarding:
		return "no-forwarding"
	case FallbackChannelPartition:
		return "channel-partition"
	default:
		return "FallbackLevel(?)"
	}
}

// Downgrade records one step of the fallback chain: the level the
// driver moved to and the capacity failure that forced it.
type Downgrade struct {
	Level  FallbackLevel
	Reason string
}

// UnfitError reports that the fallback chain was exhausted without
// producing an admissible schedule.
type UnfitError struct {
	// Graph is the model name.
	Graph string
	// Downgrades lists every step the chain tried.
	Downgrades []Downgrade
	// Last is the failure of the final attempt.
	Last error
}

func (e *UnfitError) Error() string {
	return fmt.Sprintf("core: %s does not fit SPM at any fallback level (%d downgrades tried): %v",
		e.Graph, len(e.Downgrades), e.Last)
}

// Unwrap exposes the final attempt's failure for errors.As/Is.
func (e *UnfitError) Unwrap() error { return e.Last }

// Timing records the wall-clock cost of each compile pass. Cached
// compiles (CompileCached hits) return the timing of the original
// compilation, not the lookup.
type Timing struct {
	Partition time.Duration // stage 1: heuristics h1-h5
	Schedule  time.Duration // stage 2: Algorithm 1 + verification
	Stratum   time.Duration // stage 3: Algorithm 2 + trimming + validation
	Emit      time.Duration // stage 4: tiling + lowering
	Admit     time.Duration // stage 5: simulator SPM admission check
	Total     time.Duration // end to end, fallback retries included
}

// Result is the outcome of compilation.
type Result struct {
	// Program is the lowered, simulatable schedule.
	Program *plan.Program
	// Plans holds each layer's partitioning decision, by LayerID.
	Plans []partition.Plan
	// Order is the layer execution schedule (Algorithm 1).
	Order []graph.LayerID
	// Strata is the stratum decomposition actually lowered (singletons
	// when stratum construction is disabled or declined).
	Strata []stratum.Stratum
	// RedundantMACs is the extra compute stratum construction added.
	RedundantMACs int64
	// Timing is the wall-clock cost of each compile pass.
	Timing Timing
	// Fallback is how far the graceful-degradation chain backed off to
	// fit SPM (FallbackNone when the requested configuration admitted
	// as-is).
	Fallback FallbackLevel
	// Downgrades records each fallback step taken and why.
	Downgrades []Downgrade
}

// Package fault defines deterministic, seed-driven fault plans for the
// NPU simulator: the dynamic processor conditions a mobile SoC imposes
// on a compiled schedule. Three fault classes are modeled, mirroring
// what deployed multicore NPUs actually suffer:
//
//   - transient DMA transfer failures (dropped bus transactions,
//     re-issued with exponential backoff in simulated cycles — the
//     retried bytes consume real shared-bus bandwidth);
//   - sustained core slowdown (a thermal-throttle factor applied to a
//     core's compute and DMA rates from a given cycle on);
//   - hard core death (preemption by a higher-priority client, or a
//     hung engine) at a given cycle.
//
// Every decision is a pure function of (plan, seed, transfer identity),
// so a fixed (program, fault plan, seed) triple reproduces identical
// simulations bit for bit. Package sim consumes plans via Config.Faults
// and surfaces core death as a typed CoreFailure; package recovery
// re-partitions the unexecuted schedule suffix onto surviving cores.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// DefaultMaxRetries bounds re-issues of a single DMA transfer before
// the core is declared failed (the runtime cannot distinguish a link
// that drops every retry from a dead one).
const DefaultMaxRetries = 8

// Throttle is a sustained slowdown of one core: from AtCycle on, the
// core's compute and DMA rates are multiplied by Factor. A later
// Throttle for the same core overrides the factor (it is absolute, not
// cumulative), so a recovery-to-full-speed event is Factor: 1.
type Throttle struct {
	Core    int
	AtCycle float64
	Factor  float64 // in (0, 1]: 0.5 halves the core's rates
}

// Death is a hard core failure at AtCycle: the core executes nothing
// from that cycle on, and any simulation still needing it fails with a
// sim.CoreFailure carrying the last safe checkpoint.
type Death struct {
	Core    int
	AtCycle float64
}

// Hang is a silent core stall: from AtCycle on, the core stops
// retiring instructions — compute freezes mid-flight, its DMA engines
// stop moving bytes, and nothing new issues — without any failure
// being signaled. Unlike Death, the hardware never announces the
// condition; only a watchdog observing the absence of progress can.
// If ResumeAfter > 0 the core silently resumes at AtCycle+ResumeAfter,
// continuing exactly where it froze (a thermal stall that clears).
type Hang struct {
	Core        int
	AtCycle     float64
	ResumeAfter float64 // 0 = hangs forever
}

// Slowdown is a silent throttle: from AtCycle on, the core's compute
// and DMA rates are multiplied by Factor, exactly like Throttle —
// except the condition is not visible to the scheduler or watchdog
// bookkeeping (no announced event, no speed-change accounting). It
// models DVFS/thermal capping the runtime cannot observe directly.
// A later Slowdown for the same core overrides the factor.
type Slowdown struct {
	Core    int
	AtCycle float64
	Factor  float64 // in (0, 1]: 0.5 halves the core's rates, silently
}

// Plan describes the faults injected into one simulation run. The zero
// value (and a nil *Plan) injects nothing.
//
// Core indices refer to the simulated architecture's cores. The
// simulator validates them against the target architecture via
// ValidateFor and rejects out-of-range cores with a *CoreRangeError —
// a plan that names a core the hardware does not have is a
// configuration bug, not a fault to inject. (Recovery runs resume on
// the full global architecture with dead cores simply unplaced, so
// plans remain reusable across a failure cascade.)
type Plan struct {
	// Seed drives every probabilistic decision. Two runs of the same
	// program under the same plan and seed are identical.
	Seed uint64
	// DropRate is the per-DMA-transfer probability that the transfer
	// fails after moving its bytes and must be re-issued from scratch.
	DropRate float64
	// FlipRate is the per-DMA-transfer probability that the transfer
	// completes normally but delivers corrupted bytes — a silent data
	// corruption only a checksum at the next stratum boundary catches.
	FlipRate float64
	// MaxRetries bounds re-issues per transfer; a transfer dropped more
	// than MaxRetries times fails its core. Zero means
	// DefaultMaxRetries.
	MaxRetries int
	// Throttles lists sustained slowdowns, applied in AtCycle order.
	Throttles []Throttle
	// Deaths lists hard core failures.
	Deaths []Death
	// Hangs lists silent core stalls (watchdog-detectable only).
	Hangs []Hang
	// Slowdowns lists silent throttles (invisible to the scheduler).
	Slowdowns []Slowdown
}

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool {
	return p == nil || (p.DropRate <= 0 && p.FlipRate <= 0 &&
		len(p.Throttles) == 0 && len(p.Deaths) == 0 &&
		len(p.Hangs) == 0 && len(p.Slowdowns) == 0)
}

// Retries returns the effective per-transfer retry bound.
func (p *Plan) Retries() int {
	if p == nil || p.MaxRetries <= 0 {
		return DefaultMaxRetries
	}
	return p.MaxRetries
}

// Validate checks the plan's parameters are sensible. It does not
// range-check core indices against an architecture — use ValidateFor
// once the target core count is known.
func (p *Plan) Validate() error {
	if p == nil {
		return nil
	}
	if p.DropRate < 0 || p.DropRate >= 1 {
		return fmt.Errorf("fault: drop rate %g outside [0, 1)", p.DropRate)
	}
	if p.FlipRate < 0 || p.FlipRate >= 1 {
		return fmt.Errorf("fault: flip rate %g outside [0, 1)", p.FlipRate)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("fault: negative retry bound %d", p.MaxRetries)
	}
	for _, t := range p.Throttles {
		if t.Factor <= 0 || t.Factor > 1 {
			return fmt.Errorf("fault: throttle factor %g outside (0, 1]", t.Factor)
		}
		if t.Core < 0 || t.AtCycle < 0 {
			return fmt.Errorf("fault: throttle core %d at cycle %g", t.Core, t.AtCycle)
		}
	}
	for _, d := range p.Deaths {
		if d.Core < 0 || d.AtCycle < 0 {
			return fmt.Errorf("fault: death core %d at cycle %g", d.Core, d.AtCycle)
		}
	}
	for _, h := range p.Hangs {
		if h.Core < 0 || h.AtCycle < 0 {
			return fmt.Errorf("fault: hang core %d at cycle %g", h.Core, h.AtCycle)
		}
		if h.ResumeAfter < 0 {
			return fmt.Errorf("fault: hang resume delay %g is negative", h.ResumeAfter)
		}
	}
	for _, s := range p.Slowdowns {
		if s.Factor <= 0 || s.Factor > 1 {
			return fmt.Errorf("fault: slowdown factor %g outside (0, 1]", s.Factor)
		}
		if s.Core < 0 || s.AtCycle < 0 {
			return fmt.Errorf("fault: slowdown core %d at cycle %g", s.Core, s.AtCycle)
		}
	}
	return nil
}

// CoreRangeError is returned by ValidateFor when a plan names a core
// the target architecture does not have.
type CoreRangeError struct {
	What   string // event kind: "throttle", "kill", "hang", "slow"
	Core   int
	NCores int
}

func (e *CoreRangeError) Error() string {
	return fmt.Sprintf("fault: %s names core %d but the architecture has cores 0..%d",
		e.What, e.Core, e.NCores-1)
}

// ValidateFor runs Validate and additionally rejects, with a typed
// *CoreRangeError, any timed event naming a core at or beyond ncores.
// Historically such events were silently dropped; a plan that
// references hardware that does not exist is a configuration bug and
// is now surfaced as one.
func (p *Plan) ValidateFor(ncores int) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p == nil {
		return nil
	}
	for _, t := range p.Throttles {
		if t.Core >= ncores {
			return &CoreRangeError{What: "throttle", Core: t.Core, NCores: ncores}
		}
	}
	for _, d := range p.Deaths {
		if d.Core >= ncores {
			return &CoreRangeError{What: "kill", Core: d.Core, NCores: ncores}
		}
	}
	for _, h := range p.Hangs {
		if h.Core >= ncores {
			return &CoreRangeError{What: "hang", Core: h.Core, NCores: ncores}
		}
	}
	for _, s := range p.Slowdowns {
		if s.Core >= ncores {
			return &CoreRangeError{What: "slow", Core: s.Core, NCores: ncores}
		}
	}
	return nil
}

// Drops decides deterministically whether the transfer identified by
// its global instruction id fails on the given attempt (0 = first
// issue). The decision is a pure hash of (seed, transfer, attempt).
func (p *Plan) Drops(transfer, attempt int) bool {
	if p == nil || p.DropRate <= 0 {
		return false
	}
	h := splitmix(p.Seed ^ splitmix(uint64(transfer)+1) ^ splitmix(uint64(attempt)*0x9E3779B97F4A7C15+0xD1CE))
	// Top 53 bits to a uniform float in [0, 1).
	u := float64(h>>11) / float64(1<<53)
	return u < p.DropRate
}

// Flips decides deterministically whether the transfer identified by
// its global instruction id delivers corrupted bytes on the given
// attempt. The hash stream is salted differently from Drops so drop
// and flip decisions for the same transfer are independent.
func (p *Plan) Flips(transfer, attempt int) bool {
	if p == nil || p.FlipRate <= 0 {
		return false
	}
	h := splitmix(p.Seed ^ splitmix(uint64(transfer)+0xF11B) ^ splitmix(uint64(attempt)*0x9E3779B97F4A7C15+0x5DC0))
	u := float64(h>>11) / float64(1<<53)
	return u < p.FlipRate
}

// BackoffCycles returns the re-issue delay after the attempt-th drop:
// exponential in the architecture's DMA setup cost, capped so a long
// retry chain stays bounded (attempt 1 waits 2x setup, attempt 2 4x,
// ... up to 256x).
func BackoffCycles(dmaSetupCycles int64, attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	shift := attempt
	if shift > 8 {
		shift = 8
	}
	base := dmaSetupCycles
	if base <= 0 {
		base = 1
	}
	return float64(base << uint(shift))
}

// EventKind classifies one entry of a merged fault timeline.
type EventKind int

// Timeline event kinds. KindThrottle sorts before KindDeath at equal
// cycles, matching the simulator's historical fire order; the silent
// kinds follow in declaration order.
const (
	KindThrottle EventKind = iota
	KindDeath
	KindSlowdown
	KindHang
	KindResume
)

// TimedEvent is one fault event on the merged timeline: a throttle or
// silent slowdown (Factor set), a death, a hang, or a hang resume
// (Factor unused).
type TimedEvent struct {
	Kind    EventKind
	Core    int
	AtCycle float64
	Factor  float64
}

// Timeline merges the plan's throttles, deaths, hangs (each hang with
// ResumeAfter > 0 also synthesizing a KindResume event at
// AtCycle+ResumeAfter), and silent slowdowns into one event queue
// sorted by (AtCycle, kind, core, declaration order) — the order the
// simulator's event engine consumes them in. The core tie-break keeps
// the order independent of how the plan happened to list same-cycle,
// same-kind events on different cores. Events naming cores at or
// beyond ncores are dropped here (the simulator rejects them earlier
// via ValidateFor). The returned slice is appended to buf, letting
// callers reuse a scratch buffer across runs without steady-state
// allocation.
func (p *Plan) Timeline(ncores int, buf []TimedEvent) []TimedEvent {
	if p == nil {
		return buf[:0]
	}
	out := buf[:0]
	for _, t := range p.Throttles {
		if t.Core < ncores {
			out = append(out, TimedEvent{Kind: KindThrottle, Core: t.Core, AtCycle: t.AtCycle, Factor: t.Factor})
		}
	}
	for _, d := range p.Deaths {
		if d.Core < ncores {
			out = append(out, TimedEvent{Kind: KindDeath, Core: d.Core, AtCycle: d.AtCycle})
		}
	}
	for _, s := range p.Slowdowns {
		if s.Core < ncores {
			out = append(out, TimedEvent{Kind: KindSlowdown, Core: s.Core, AtCycle: s.AtCycle, Factor: s.Factor})
		}
	}
	for _, h := range p.Hangs {
		if h.Core < ncores {
			out = append(out, TimedEvent{Kind: KindHang, Core: h.Core, AtCycle: h.AtCycle})
			if h.ResumeAfter > 0 {
				out = append(out, TimedEvent{Kind: KindResume, Core: h.Core, AtCycle: h.AtCycle + h.ResumeAfter})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].AtCycle != out[j].AtCycle {
			return out[i].AtCycle < out[j].AtCycle
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Core < out[j].Core
	})
	return out
}

// SortedThrottles returns the throttles in AtCycle order (stable for
// equal cycles), leaving the plan unmodified.
func (p *Plan) SortedThrottles() []Throttle {
	out := append([]Throttle(nil), p.Throttles...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtCycle < out[j].AtCycle })
	return out
}

// SortedDeaths returns the deaths in AtCycle order.
func (p *Plan) SortedDeaths() []Death {
	out := append([]Death(nil), p.Deaths...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].AtCycle < out[j].AtCycle })
	return out
}

// ParseSpec parses the command-line fault specification: a
// comma-separated list of clauses
//
//	drop=RATE              per-transfer DMA drop probability in [0, 1)
//	flip=RATE              per-transfer silent-corruption probability in [0, 1)
//	retries=N              per-transfer retry bound (default 8)
//	throttle=CORE@CYCLExFACTOR  slow CORE to FACTOR of its rates from CYCLE
//	slow=CORE@CYCLExFACTOR      same, but silent (invisible to the scheduler)
//	kill=CORE@CYCLE        hard core death at CYCLE
//	hang=CORE@CYCLE[+RESUME]    silent stall at CYCLE, resuming RESUME cycles later if given
//
// e.g. "drop=0.02,throttle=1@50000x0.5,kill=2@400000" or
// "hang=1@200000+50000,flip=0.001". The seed drives the drop and flip
// decisions; the same (spec, seed) is fully reproducible.
func ParseSpec(spec string, seed uint64) (*Plan, error) {
	p := &Plan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return p, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, ok := strings.Cut(clause, "=")
		if !ok {
			return nil, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		switch key {
		case "drop":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: drop rate %q: %v", val, err)
			}
			p.DropRate = r
		case "flip":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: flip rate %q: %v", val, err)
			}
			p.FlipRate = r
		case "retries":
			n, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fault: retries %q: %v", val, err)
			}
			p.MaxRetries = n
		case "throttle":
			at, rest, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: throttle %q wants CORE@CYCLExFACTOR", val)
			}
			cyc, fac, ok := strings.Cut(rest, "x")
			if !ok {
				return nil, fmt.Errorf("fault: throttle %q wants CORE@CYCLExFACTOR", val)
			}
			core, err := strconv.Atoi(at)
			if err != nil {
				return nil, fmt.Errorf("fault: throttle core %q: %v", at, err)
			}
			cycle, err := strconv.ParseFloat(cyc, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: throttle cycle %q: %v", cyc, err)
			}
			factor, err := strconv.ParseFloat(fac, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: throttle factor %q: %v", fac, err)
			}
			p.Throttles = append(p.Throttles, Throttle{Core: core, AtCycle: cycle, Factor: factor})
		case "slow":
			at, rest, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: slow %q wants CORE@CYCLExFACTOR", val)
			}
			cyc, fac, ok := strings.Cut(rest, "x")
			if !ok {
				return nil, fmt.Errorf("fault: slow %q wants CORE@CYCLExFACTOR", val)
			}
			core, err := strconv.Atoi(at)
			if err != nil {
				return nil, fmt.Errorf("fault: slow core %q: %v", at, err)
			}
			cycle, err := strconv.ParseFloat(cyc, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: slow cycle %q: %v", cyc, err)
			}
			factor, err := strconv.ParseFloat(fac, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: slow factor %q: %v", fac, err)
			}
			p.Slowdowns = append(p.Slowdowns, Slowdown{Core: core, AtCycle: cycle, Factor: factor})
		case "hang":
			at, rest, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: hang %q wants CORE@CYCLE[+RESUME]", val)
			}
			core, err := strconv.Atoi(at)
			if err != nil {
				return nil, fmt.Errorf("fault: hang core %q: %v", at, err)
			}
			cyc, res, resumes := strings.Cut(rest, "+")
			cycle, err := strconv.ParseFloat(cyc, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: hang cycle %q: %v", cyc, err)
			}
			h := Hang{Core: core, AtCycle: cycle}
			if resumes {
				r, err := strconv.ParseFloat(res, 64)
				if err != nil {
					return nil, fmt.Errorf("fault: hang resume %q: %v", res, err)
				}
				h.ResumeAfter = r
			}
			p.Hangs = append(p.Hangs, h)
		case "kill":
			at, cyc, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("fault: kill %q wants CORE@CYCLE", val)
			}
			core, err := strconv.Atoi(at)
			if err != nil {
				return nil, fmt.Errorf("fault: kill core %q: %v", at, err)
			}
			cycle, err := strconv.ParseFloat(cyc, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: kill cycle %q: %v", cyc, err)
			}
			p.Deaths = append(p.Deaths, Death{Core: core, AtCycle: cycle})
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (drop, flip, retries, throttle, slow, kill, hang)", key)
		}
	}
	return p, p.Validate()
}

// String renders the plan in ParseSpec syntax (seed excluded).
func (p *Plan) String() string {
	if p.Empty() {
		return "none"
	}
	var parts []string
	if p.DropRate > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", p.DropRate))
	}
	if p.FlipRate > 0 {
		parts = append(parts, fmt.Sprintf("flip=%g", p.FlipRate))
	}
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", p.MaxRetries))
	}
	for _, t := range p.Throttles {
		parts = append(parts, fmt.Sprintf("throttle=%d@%gx%g", t.Core, t.AtCycle, t.Factor))
	}
	for _, s := range p.Slowdowns {
		parts = append(parts, fmt.Sprintf("slow=%d@%gx%g", s.Core, s.AtCycle, s.Factor))
	}
	for _, d := range p.Deaths {
		parts = append(parts, fmt.Sprintf("kill=%d@%g", d.Core, d.AtCycle))
	}
	for _, h := range p.Hangs {
		if h.ResumeAfter > 0 {
			parts = append(parts, fmt.Sprintf("hang=%d@%g+%g", h.Core, h.AtCycle, h.ResumeAfter))
		} else {
			parts = append(parts, fmt.Sprintf("hang=%d@%g", h.Core, h.AtCycle))
		}
	}
	return strings.Join(parts, ",")
}

// splitmix is SplitMix64, the repository's standard deterministic
// value generator (also used by the numeric executor).
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

package sim

// White-box tests that reach into unexported engine internals. The rest
// of the test suite lives in package sim_test so it can exercise
// programs produced by internal/core (which now imports sim for the
// compile-time admission check).

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/tensor"
)

func TestUnionLength(t *testing.T) {
	iv := [][2]float64{{0, 10}, {5, 15}, {20, 25}, {24, 26}}
	if got := unionLength(iv); got != 21 {
		t.Errorf("unionLength = %g, want 21", got)
	}
	if unionLength(nil) != 0 {
		t.Error("empty union not zero")
	}
}

// TestRunZeroesRatesAfterRetry is the white-box half of
// TestRetriedTransferUsesFreshRate: after any completed run, every
// per-node rate entry must have been zeroed when its transfer left the
// water-filling set. The program and fault plan mirror that test.
func TestRunZeroesRatesAfterRetry(t *testing.T) {
	sub, err := arch.Exynos2100Like().Subset([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	sub.BusBytesPerCycle = 14
	if sub.Cores[0].DMABytesPerCycle != 16 || sub.Cores[1].DMABytesPerCycle != 12 {
		t.Skipf("arch DMA caps changed (%v, %v); rebuild the arithmetic",
			sub.Cores[0].DMABytesPerCycle, sub.Cores[1].DMABytesPerCycle)
	}

	g := graph.New("stale-rate", tensor.Int8)
	g.Input("in", tensor.NewShape(8, 8, 1))
	prog := &plan.Program{
		Arch:  sub,
		Graph: g,
		Cores: [][]plan.Instr{
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7000, BarrierID: -1, Note: "victim"}},
			{{Op: plan.LoadInput, Layer: 0, Tile: 0, Bytes: 7700, BarrierID: -1, Note: "peer"}},
		},
	}
	var fp *fault.Plan
	for seed := uint64(0); ; seed++ {
		p := &fault.Plan{Seed: seed, DropRate: 0.5}
		if p.Drops(0, 0) && !p.Drops(0, 1) && !p.Drops(1, 0) {
			fp = p
			break
		}
	}

	var m machine
	if _, err := m.run(sub, []Placement{{Program: prog, Cores: []int{0, 1}}}, Config{CollectTrace: true, Faults: fp}); err != nil {
		t.Fatalf("direct run: %v", err)
	}
	for nid, r := range m.rates {
		if r != 0 {
			t.Errorf("rates[%d] = %v after run, want 0 (stale entry)", nid, r)
		}
	}
}

package sim

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/plan"
)

// FailureKind classifies why a simulated core became unusable.
type FailureKind int

const (
	// FailCoreDeath: a fault.Death fired while the core still had
	// unexecuted instructions.
	FailCoreDeath FailureKind = iota
	// FailDMAExhausted: a single DMA transfer was dropped more times
	// than the plan's retry bound — the runtime treats the core's link
	// as dead.
	FailDMAExhausted
)

func (k FailureKind) String() string {
	switch k {
	case FailCoreDeath:
		return "core-death"
	case FailDMAExhausted:
		return "dma-retries-exhausted"
	}
	return fmt.Sprintf("FailureKind(%d)", int(k))
}

// CoreFailure is the typed error a fault-injected run returns when a
// core becomes unusable mid-program. It carries everything a recovery
// runtime needs: which core died, when, the checkpoint to resume from,
// and the statistics accumulated up to the failure (so degraded-mode
// latency can account for the wasted cycles).
type CoreFailure struct {
	Kind FailureKind
	// Core is the global core index that failed.
	Core int
	// Placement indexes the placement the core was running (0 for
	// single-program Run; -1 if the core was unassigned).
	Placement int
	// AtCycle is the simulated time of the failure.
	AtCycle float64
	// Completed is the checkpoint: the longest prefix of the failed
	// placement's layer execution order (its strata, flattened) whose
	// layers all finished every instruction AND whose results needed
	// outside the prefix were stored to global memory. Because
	// forwarding and stratum layers keep intermediates in SPM without
	// stores, this cut naturally falls on a barrier or stratum
	// boundary — exactly the paper's synchronization points.
	Completed []graph.LayerID
	// Partial holds the statistics accumulated up to AtCycle.
	Partial Stats
}

func (f *CoreFailure) Error() string {
	return fmt.Sprintf("sim: core %d failed (%s) at cycle %.0f with %d layers checkpointed",
		f.Core, f.Kind, f.AtCycle, len(f.Completed))
}

// faultState is the per-run mutable view of a fault.Plan: the merged
// event timeline (fault.Timeline, throttles and deaths in firing
// order) plus the current speed/liveness of every core. All buffers
// are reusable so a pooled engine run injects faults without
// steady-state allocation.
type faultState struct {
	plan       *fault.Plan
	maxRetries int
	speed      []float64
	dead       []bool
	events     []fault.TimedEvent // merged timeline, pending from pos on
	pos        int
	fired      []firedEvent // reusable fire() output buffer
}

// firedEvent is one fault event applied at the current time.
type firedEvent struct {
	death    bool
	core     int
	oldSpeed float64
	newSpeed float64
}

// init validates and loads a plan for ncores cores, reusing fs's
// buffers. It reports whether the plan injects anything; an empty
// plan leaves the fault-free simulation path untouched. Events naming
// cores outside the architecture are dropped here — inert by contract.
func (fs *faultState) init(p *fault.Plan, ncores int) (bool, error) {
	if p.Empty() {
		return false, nil
	}
	if err := p.Validate(); err != nil {
		return false, err
	}
	fs.plan = p
	fs.maxRetries = p.Retries()
	if cap(fs.speed) < ncores {
		fs.speed = make([]float64, ncores)
		fs.dead = make([]bool, ncores)
	}
	fs.speed = fs.speed[:ncores]
	fs.dead = fs.dead[:ncores]
	for i := range fs.speed {
		fs.speed[i] = 1
		fs.dead[i] = false
	}
	fs.events = p.Timeline(ncores, fs.events)
	fs.pos = 0
	return true, nil
}

// newFaultState validates and instantiates a plan for ncores cores.
// An empty (or nil) plan yields a nil state.
func newFaultState(p *fault.Plan, ncores int) (*faultState, error) {
	fs := &faultState{}
	active, err := fs.init(p, ncores)
	if err != nil || !active {
		return nil, err
	}
	return fs, nil
}

// next returns the earliest pending fault-event time, or +Inf.
func (fs *faultState) next() float64 {
	if fs.pos >= len(fs.events) {
		return math.Inf(1)
	}
	return fs.events[fs.pos].AtCycle
}

// fire pops and applies every event due at or before now, in time
// order, and returns them for the simulator to act on (rescaling
// in-flight compute, failing dead cores with pending work). The
// returned slice is valid until the next call.
func (fs *faultState) fire(now float64) []firedEvent {
	out := fs.fired[:0]
	for fs.pos < len(fs.events) && fs.events[fs.pos].AtCycle <= now+eps {
		ev := fs.events[fs.pos]
		fs.pos++
		if ev.Kind == fault.KindDeath {
			fs.dead[ev.Core] = true
			out = append(out, firedEvent{death: true, core: ev.Core})
			continue
		}
		old := fs.speed[ev.Core]
		fs.speed[ev.Core] = ev.Factor
		out = append(out, firedEvent{core: ev.Core, oldSpeed: old, newSpeed: ev.Factor})
	}
	fs.fired = out
	return out
}

// checkpoint computes the recovery cut for a partially executed
// program: the longest prefix of the flattened strata order such that
// (a) every prefix layer completed all its instructions, and (b) every
// prefix layer with a consumer outside the prefix published its output
// to global memory via at least one Store. Condition (b) is what makes
// the cut safe — forwarded/stratum intermediates live only in the dead
// core's SPM and cannot seed a resumed run.
func checkpoint(p *plan.Program, done, total []int, hasStore []bool) []graph.LayerID {
	var order []graph.LayerID
	for _, s := range p.Strata {
		order = append(order, s...)
	}
	if len(order) == 0 {
		return nil
	}
	pos := make(map[graph.LayerID]int, len(order))
	for i, id := range order {
		pos[id] = i
	}
	// k = longest fully-executed prefix.
	k := 0
	for k < len(order) {
		id := order[k]
		if done[id] < total[id] {
			break
		}
		k++
	}
	// Largest j <= k where every prefix layer is either stored or has
	// all consumers inside the prefix.
	for j := k; j > 0; j-- {
		ok := true
		for i := 0; i < j && ok; i++ {
			id := order[i]
			if hasStore[id] {
				continue
			}
			for _, u := range p.Graph.Users(id) {
				pu, in := pos[u]
				if !in || pu >= j {
					ok = false
					break
				}
			}
		}
		if ok {
			return append([]graph.LayerID(nil), order[:j]...)
		}
	}
	return nil
}

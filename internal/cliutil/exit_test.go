package cliutil

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tiling"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		code int
	}{
		{nil, ExitOK},
		{errors.New("plain"), ExitError},
		{&core.UnfitError{Graph: "g"}, ExitUnfit},
		// Specific class wrapped in UnfitError: the chain failure wins.
		{&core.UnfitError{Graph: "g", Last: &tiling.CannotFitError{}}, ExitUnfit},
		{fmt.Errorf("w: %w", &sim.SPMOverflowError{Core: 0}), ExitSPMOverflow},
		{&tiling.CannotFitError{}, ExitCannotFit},
		{&sim.CoreFailure{Core: 1}, ExitCoreFailure},
		{context.Canceled, ExitCanceled},
		{context.DeadlineExceeded, ExitCanceled},
		{&sim.CanceledError{Cause: context.DeadlineExceeded}, ExitCanceled},
		{fmt.Errorf("core: compile canceled: %w", context.Canceled), ExitCanceled},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.code {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.code)
		}
	}
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Operator kinds for the channel-manipulation operators.
const (
	// KindChannelSlice identifies the channel-slice operator.
	KindChannelSlice Kind = 101
	// KindChannelShuffle identifies the channel-shuffle operator.
	KindChannelShuffle Kind = 102
)

// ChannelSlice selects the channel interval [From, To) of its input
// (ShuffleNet branch splits; the inverse of Concat).
type ChannelSlice struct {
	From, To int
}

// Kind implements Op.
func (ChannelSlice) Kind() Kind { return KindChannelSlice }

// OutShape implements Op.
func (o ChannelSlice) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("ChannelSlice", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	if o.From < 0 || o.To <= o.From || o.To > in[0].C {
		return tensor.Shape{}, fmt.Errorf("ops: ChannelSlice [%d:%d) outside input channels %d",
			o.From, o.To, in[0].C)
	}
	return tensor.NewShape(in[0].H, in[0].W, o.To-o.From), nil
}

// MACs implements Op: a copy.
func (ChannelSlice) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (ChannelSlice) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: the output region shifted by From.
func (o ChannelSlice) InputRegion(out tensor.Region, _ int, _ []tensor.Shape) tensor.Region {
	r := out
	r.Off = r.Off.WithDim(tensor.AxisC, out.Off.C+o.From)
	return r
}

// SupportsPartition implements Op.
func (ChannelSlice) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (ChannelSlice) ChannelWise() bool { return true }

func (o ChannelSlice) String() string { return fmt.Sprintf("ChannelSlice[%d:%d)", o.From, o.To) }

// ChannelShuffle permutes channels by interleaving Groups blocks
// (ShuffleNet's information exchange between grouped convolutions):
// output channel c reads input channel (c%g)*(C/g) + c/g.
type ChannelShuffle struct {
	Groups int
}

// Kind implements Op.
func (ChannelShuffle) Kind() Kind { return KindChannelShuffle }

// OutShape implements Op.
func (o ChannelShuffle) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("ChannelShuffle", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	if o.Groups < 2 || in[0].C%o.Groups != 0 {
		return tensor.Shape{}, fmt.Errorf("ops: ChannelShuffle groups %d incompatible with %d channels",
			o.Groups, in[0].C)
	}
	return in[0], nil
}

// SourceChannel returns the input channel feeding output channel c for
// C total channels.
func (o ChannelShuffle) SourceChannel(c, C int) int {
	perG := C / o.Groups
	return (c%o.Groups)*perG + c/o.Groups
}

// MACs implements Op: a permuting copy.
func (ChannelShuffle) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (ChannelShuffle) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: an output channel range maps to scattered
// input channels; the contiguous bounding range is reported (the DMA
// moves contiguous blocks). Spatial coordinates pass through.
func (o ChannelShuffle) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	lo, hi := in[0].C, 0
	for c := out.Off.C; c < out.End(tensor.AxisC); c++ {
		src := o.SourceChannel(c, in[0].C)
		if src < lo {
			lo = src
		}
		if src+1 > hi {
			hi = src + 1
		}
	}
	r := out
	r.Off = r.Off.WithDim(tensor.AxisC, lo)
	r.Ext = r.Ext.WithDim(tensor.AxisC, hi-lo)
	return r
}

// SupportsPartition implements Op: spatial splits are free; channel
// splits are legal too (each output channel depends on exactly one
// input channel).
func (ChannelShuffle) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op: no kernel, channels processed
// independently.
func (ChannelShuffle) ChannelWise() bool { return true }

func (o ChannelShuffle) String() string { return fmt.Sprintf("ChannelShuffle(g=%d)", o.Groups) }

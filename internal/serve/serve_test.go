package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/serialize"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// postRun sends one /run request and decodes the reply.
func postRun(t *testing.T, ts *httptest.Server, req RunRequest) (int, *RunResponse, *ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/run", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		var rr RunResponse
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, &rr, nil
	}
	var er ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatalf("status %d with undecodable error body: %v", resp.StatusCode, err)
	}
	return resp.StatusCode, nil, &er
}

func getStatus(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestHealthReadyStats(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code := getStatus(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz = %d", code)
	}
	if code := getStatus(t, ts, "/readyz"); code != http.StatusOK {
		t.Errorf("/readyz = %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Concurrency <= 0 || st.QueueLimit <= 0 {
		t.Errorf("stats missing limits: %+v", st)
	}
}

// TestRunModelBitIdentical: a served benchmark-model run reports the
// same cycle-exact numbers as a direct library run.
func TestRunModelBitIdentical(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g := buildModel(t, "MobileNetV2")
	a := arch.Exynos2100Like()
	res, err := core.CompileCached(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(res.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}

	code, rr, er := postRun(t, ts, RunRequest{Model: "MobileNetV2"})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, er)
	}
	if rr.TotalCycles != want.Stats.TotalCycles || rr.Barriers != want.Stats.Barriers ||
		rr.Instrs != res.Program.NumInstrs() {
		t.Errorf("served %+v disagrees with direct run (cycles %v, barriers %d, instrs %d)",
			rr, want.Stats.TotalCycles, want.Stats.Barriers, res.Program.NumInstrs())
	}
	if !rr.CacheHit {
		t.Error("second compile of MobileNetV2 should have hit the cache")
	}
}

// TestRunCustomGraph: the serialized-graph path works end to end.
func TestRunCustomGraph(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var buf bytes.Buffer
	if err := serialize.SaveGraph(&buf, tinyGraph()); err != nil {
		t.Fatal(err)
	}
	code, rr, er := postRun(t, ts, RunRequest{Graph: json.RawMessage(buf.Bytes())})
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, er)
	}
	if rr.TotalCycles <= 0 || rr.Instrs <= 0 {
		t.Errorf("empty result: %+v", rr)
	}
}

// TestRunDeadline is the acceptance bound: a 1ms-deadline ResNet-50
// request returns a typed deadline error within 50ms of expiry and
// leaves the compile cache uncorrupted — the identical follow-up
// request succeeds, and the one after that hits the cache.
func TestRunDeadline(t *testing.T) {
	core.ResetCache()
	s := New(Options{})
	// Hold the request until its 1ms deadline has expired, so the
	// compile deterministically starts against a dead context and must
	// abort at its first checkpoint (a fast machine could otherwise
	// serve ResNet50 inside the deadline).
	s.beforeExecute = func(req *RunRequest) {
		if req.TimeoutMS > 0 {
			time.Sleep(time.Duration(req.TimeoutMS) * 3 * time.Millisecond)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := RunRequest{Model: "ResNet50", TimeoutMS: 1}
	start := time.Now()
	code, _, er := postRun(t, ts, req)
	late := time.Since(start) - time.Millisecond
	if code != http.StatusGatewayTimeout || er.Kind != "deadline" {
		t.Fatalf("status %d kind %q, want 504 deadline", code, er.Kind)
	}
	if late > 50*time.Millisecond {
		t.Errorf("deadline reply arrived %v after expiry (bound 50ms)", late)
	}

	req.TimeoutMS = 0
	code, rr, er2 := postRun(t, ts, req)
	if code != http.StatusOK {
		t.Fatalf("follow-up request failed: %d %+v", code, er2)
	}
	if rr.CacheHit {
		t.Error("canceled compile left a cache entry")
	}
	code, rr, _ = postRun(t, ts, req)
	if code != http.StatusOK || !rr.CacheHit {
		t.Errorf("third request: status %d, CacheHit %v, want 200 hit", code, rr.CacheHit)
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed", `{not json`, http.StatusBadRequest},
		{"empty", `{}`, http.StatusBadRequest},
		{"both", `{"Model":"MobileNetV2","Graph":{"x":1}}`, http.StatusBadRequest},
		{"unknown model", `{"Model":"NoSuchNet"}`, http.StatusBadRequest},
		{"unknown field", `{"Model":"MobileNetV2","Bogus":1}`, http.StatusBadRequest},
		{"bad config", `{"Model":"MobileNetV2","Config":"warp"}`, http.StatusBadRequest},
		{"bad cores", `{"Model":"MobileNetV2","Cores":-2}`, http.StatusBadRequest},
		{"bad faults", `{"Model":"MobileNetV2","Faults":"explode=1"}`, http.StatusBadRequest},
		{"bad graph", `{"Graph":{"layers":"no"}}`, http.StatusBadRequest},
		{"negative timeout", `{"Model":"MobileNetV2","TimeoutMS":-5}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, err := ts.Client().Post(ts.URL+"/run", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.code {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.code)
		}
	}

	resp, err := ts.Client().Get(ts.URL + "/run")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /run = %d, want 405", resp.StatusCode)
	}
}

// TestQueueFull: with one slot and one queue seat, a third concurrent
// request is shed with 429 + Retry-After.
func TestQueueFull(t *testing.T) {
	s := New(Options{Concurrency: 1, Queue: 1})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.beforeExecute = func(*RunRequest) {
		started <- struct{}{}
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer close(release)

	done := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			code, _, _ := postRun(t, ts, RunRequest{Model: "MobileNetV2"})
			done <- code
		}()
	}
	// Wait until one request is executing and the other is queued.
	<-started
	waitFor(t, time.Second, func() bool { return s.queued.Load() == 2 })

	resp, err := ts.Client().Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"Model":"MobileNetV2"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	release <- struct{}{}
	release <- struct{}{}
	<-started
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("blocked request finished with %d", code)
		}
	}
}

// TestPanicRecovery: a panic inside one request returns 500 and the
// server keeps serving.
func TestPanicRecovery(t *testing.T) {
	s := New(Options{})
	s.beforeExecute = func(req *RunRequest) {
		if req.FaultSeed == 666 {
			panic("injected test panic")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, er := postRun(t, ts, RunRequest{Model: "MobileNetV2", FaultSeed: 666})
	if code != http.StatusInternalServerError || er.Kind != "panic" {
		t.Fatalf("status %d kind %q, want 500 panic", code, er.Kind)
	}
	code, _, _ = postRun(t, ts, RunRequest{Model: "MobileNetV2"})
	if code != http.StatusOK {
		t.Fatalf("server did not survive the panic: next request %d", code)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Errorf("Panics = %d, want 1", st.Panics)
	}
}

// TestFaultInjection: a request with a kill fault gets the typed
// core-failure 422, and the same model without faults still serves.
func TestFaultInjection(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, _, er := postRun(t, ts, RunRequest{Model: "MobileNetV2", Faults: "kill=1@1000"})
	if code != http.StatusUnprocessableEntity || er.Kind != "core_failure" {
		t.Fatalf("status %d kind %q, want 422 core_failure", code, er.Kind)
	}
	if code, _, _ := postRun(t, ts, RunRequest{Model: "MobileNetV2"}); code != http.StatusOK {
		t.Fatalf("fault-free request after fault run: %d", code)
	}
}

// TestDrain: Shutdown stops admissions, releases queued waiters with
// 503, waits for the in-flight request, and flips /readyz.
func TestDrain(t *testing.T) {
	s := New(Options{Concurrency: 1, Queue: 4})
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	s.beforeExecute = func(*RunRequest) {
		select {
		case started <- struct{}{}:
			<-release
		default:
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	inflightDone := make(chan int, 1)
	go func() {
		code, _, _ := postRun(t, ts, RunRequest{Model: "MobileNetV2"})
		inflightDone <- code
	}()
	<-started

	// A waiter queued behind the in-flight request must be released by
	// the drain, not left hanging.
	queuedDone := make(chan int, 1)
	go func() {
		code, _, _ := postRun(t, ts, RunRequest{Model: "MobileNetV2"})
		queuedDone <- code
	}()
	waitFor(t, time.Second, func() bool { return s.queued.Load() == 2 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, time.Second, func() bool { return s.Draining() })

	if code := <-queuedDone; code != http.StatusServiceUnavailable {
		t.Errorf("queued request drained with %d, want 503", code)
	}
	if code := getStatus(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", code)
	}
	if code := getStatus(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	code, _, _ := postRun(t, ts, RunRequest{Model: "MobileNetV2"})
	if code != http.StatusServiceUnavailable {
		t.Errorf("new request while draining = %d, want 503", code)
	}

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before the in-flight request finished: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	close(release)
	if code := <-inflightDone; code != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain", code)
	}
	if err := <-shutdownDone; err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestErrStatus pins the full typed-error -> HTTP status table.
func TestErrStatus(t *testing.T) {
	cases := []struct {
		err  error
		code int
		kind string
	}{
		{badRequest(errors.New("x")), http.StatusBadRequest, "bad_request"},
		{&panicError{val: "x"}, http.StatusInternalServerError, "panic"},
		{&core.UnfitError{Graph: "g"}, http.StatusUnprocessableEntity, "unfit"},
		{fmt.Errorf("wrap: %w", &sim.SPMOverflowError{Core: 1}), http.StatusUnprocessableEntity, "spm_overflow"},
		{&tiling.CannotFitError{}, http.StatusUnprocessableEntity, "cannot_fit"},
		{&sim.CoreFailure{Core: 2}, http.StatusUnprocessableEntity, "core_failure"},
		{fmt.Errorf("late: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline"},
		{&sim.CanceledError{Cause: context.DeadlineExceeded}, http.StatusGatewayTimeout, "deadline"},
		{&sim.CanceledError{Cause: context.Canceled}, StatusClientClosedRequest, "canceled"},
		{context.Canceled, StatusClientClosedRequest, "canceled"},
		{errors.New("mystery"), http.StatusServiceUnavailable, "internal"},
	}
	for _, c := range cases {
		code, kind, _ := errStatus(c.err)
		if code != c.code || kind != c.kind {
			t.Errorf("errStatus(%v) = (%d, %q), want (%d, %q)", c.err, code, kind, c.code, c.kind)
		}
	}
}

// waitFor polls cond until true or the deadline.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

// buildModel builds a named benchmark model via the request path.
func buildModel(t *testing.T, name string) *graph.Graph {
	t.Helper()
	g, err := requestGraph(&RunRequest{Model: name})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// tinyGraph is a minimal three-layer network for custom-graph tests.
func tinyGraph() *graph.Graph {
	g := graph.New("tiny", tensor.Int8)
	in := g.Input("input", tensor.NewShape(32, 32, 3))
	c1 := g.MustAdd("conv1", ops.NewConv2D(3, 3, 1, 1, 8,
		ops.SamePad(tensor.NewShape(32, 32, 3), 3, 3, 1, 1, 1, 1)), in)
	g.MustAdd("pool", ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, c1)
	return g
}

// Package tiling decomposes per-core sub-layers into tiles executed as
// a load/compute/store software pipeline with double buffering
// (Section 2.2). A sub-layer is tiled when its working set exceeds the
// core's SPM or when tiling lets DMA overlap computation; with three
// or more tiles, double buffering also shrinks the SPM footprint.
//
// Tiles form a 2-D grid: a primary axis (the partition axis for
// spatially partitioned sub-layers, so halo transfers hide behind
// interior tiles; the channel axis for channel-partitioned ones) and a
// secondary channel/spatial axis engaged only under SPM pressure —
// e.g. a convolution whose kernel alone exceeds SPM streams
// output-channel slices.
//
// Tile execution order implements the halo-first policy (Section
// 3.1.3): tiles that produce halo data for the next layer run first,
// so the halo-exchange overlaps with the remaining tiles' computation.
package tiling

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/tensor"
)

// Tile is one pipeline unit of a sub-layer.
type Tile struct {
	// Index is the tile's creation-order position in the grid.
	Index int
	// CGroup identifies the tile's slice along the secondary axis;
	// tiles in one group share the same kernel slice.
	CGroup int
	// Out is the output region the tile produces (whole-layer output
	// coordinates).
	Out tensor.Region
	// In are the input regions required, one per layer input.
	In []tensor.Region
	// MACs is the tile's compute cost.
	MACs int64
	// KernelBytes is the kernel slice the tile's CGroup needs; the
	// emitter loads it once per group.
	KernelBytes int64
	// ProducesHalo marks tiles whose output contains rows/columns
	// adjacent to a partition boundary — the data neighbouring cores
	// will need. The halo-first policy schedules these before interior
	// tiles.
	ProducesHalo bool
}

// Plan is the tiling decision for one sub-layer on one core.
type Plan struct {
	// Axis is the primary tiling direction.
	Axis tensor.Axis
	// SecondaryAxis is the grid's other direction (meaningful when
	// SecondaryCuts > 1).
	SecondaryAxis tensor.Axis
	// SecondaryCuts is the number of slices along the secondary axis.
	SecondaryCuts int
	// Tiles in execution order.
	Tiles []Tile
	// HaloFirst records whether the halo-first policy reordered the
	// tiles.
	HaloFirst bool
}

// NumTiles returns the number of tiles.
func (p *Plan) NumTiles() int { return len(p.Tiles) }

// Tiler sizes and orders tiles for an architecture.
type Tiler struct {
	Arch  *arch.Arch
	Model *cost.Model
	// MinPipelineTiles is the preferred minimum tile count when the
	// extent allows it (3+ tiles both pipeline and reduce SPM need);
	// defaults to 3.
	MinPipelineTiles int
	// MaxTiles caps the primary-axis tile count when SPM pressure does
	// not force more; defaults to 16.
	MaxTiles int
}

// New returns a Tiler with default pipelining parameters.
func New(a *arch.Arch) *Tiler {
	return &Tiler{Arch: a, Model: cost.New(a), MinPipelineTiles: 3, MaxTiles: 16}
}

// Options describes the context of the sub-layer being tiled.
type Options struct {
	// Direction is the layer's partitioning direction; spatially
	// partitioned sub-layers tile along the same axis so halo
	// transfers hide behind interior tiles.
	Direction partition.Direction
	// HaloLo/HaloHi report whether a neighbouring core's partition
	// abuts this sub-layer below/above along the partition axis (so
	// the respective edge tile produces halo).
	HaloLo, HaloHi bool
	// HaloWidth is the halo extent in elements along the axis (how
	// many edge rows neighbours need).
	HaloWidth int
	// HaloFirst enables the halo-first execution order.
	HaloFirst bool
	// ForwardedInput marks layer inputs resident in SPM via
	// feature-map forwarding; their bytes count once (resident), not
	// per double-buffered tile (index parallel to layer inputs).
	ForwardedInput []bool
}

// PlanSubLayer tiles sub-layer sub of layer l for the given core.
// It returns an error when even maximal tiling cannot fit the core's
// SPM.
func (t *Tiler) PlanSubLayer(l *graph.Layer, inShapes []tensor.Shape, sub partition.SubLayer, core int, opt Options) (Plan, error) {
	if sub.Empty() {
		return Plan{Axis: tensor.AxisH}, nil
	}
	primary, secondary := t.chooseAxes(l, sub, opt)
	spm := t.Arch.Cores[core].SPMBytes

	extA := sub.Out.Ext.Dim(primary)
	alignA := t.alignFor(core, primary)
	maxA := maxCuts(extA, alignA)
	extB := sub.Out.Ext.Dim(secondary)
	alignB := t.alignFor(core, secondary)
	maxB := maxCuts(extB, alignB)

	loA := 1
	if extA >= t.minTiles()*alignA {
		loA = t.minTiles()
	}

	var chosen []Tile
	var chosenB int
search:
	for kb := 1; kb <= maxB; kb++ {
		for ka := loA; ka <= maxA; ka++ {
			tiles := t.cutGrid(l, inShapes, sub, primary, ka, alignA, secondary, kb, alignB)
			if t.spmNeed(tiles, l.DType, opt) <= spm {
				chosen, chosenB = tiles, kb
				break search
			}
			// Past the soft cap, only keep growing the primary count
			// if it still helps; otherwise move to the next secondary
			// cut sooner. (The loop bound maxA already terminates.)
		}
		if kb == 1 && loA > 1 {
			// Also consider fewer-than-pipelining tile counts before
			// engaging the secondary axis.
			for ka := 1; ka < loA; ka++ {
				tiles := t.cutGrid(l, inShapes, sub, primary, ka, alignA, secondary, kb, alignB)
				if t.spmNeed(tiles, l.DType, opt) <= spm {
					chosen, chosenB = tiles, kb
					break search
				}
			}
		}
	}
	if chosen == nil {
		return Plan{}, fmt.Errorf(
			"tiling: layer %s sub-layer %v does not fit SPM of core %d (%d B) at any tile count",
			l.Name, sub.Out, core, spm)
	}

	t.markHalo(chosen, sub, primary, opt)
	plan := Plan{Axis: primary, SecondaryAxis: secondary, SecondaryCuts: chosenB, Tiles: chosen}
	if opt.HaloFirst && opt.Direction.Spatial() && primary == opt.Direction.Axis() {
		plan.Tiles = haloFirstOrder(plan.Tiles)
		plan.HaloFirst = true
	}
	return plan, nil
}

func (t *Tiler) minTiles() int {
	if t.MinPipelineTiles > 0 {
		return t.MinPipelineTiles
	}
	return 3
}

// maxCuts bounds the cut count along an axis by its aligned capacity.
func maxCuts(extent, align int) int {
	n := extent / align
	if n < 1 {
		n = 1
	}
	return n
}

// chooseAxes picks the tiling grid: the partition axis first (halo
// hiding for spatial, kernel slicing for channel), with the other
// family as the pressure-relief secondary.
func (t *Tiler) chooseAxes(l *graph.Layer, sub partition.SubLayer, opt Options) (primary, secondary tensor.Axis) {
	switch {
	case opt.Direction.Spatial():
		return opt.Direction.Axis(), tensor.AxisC
	case opt.Direction == partition.DirChannel:
		return tensor.AxisC, tensor.AxisH
	}
	// Unpartitioned: longest legal spatial axis primary, channels
	// secondary.
	primary = tensor.AxisH
	if sub.Out.Ext.W > sub.Out.Ext.H && l.Op.SupportsPartition(tensor.AxisW) {
		primary = tensor.AxisW
	}
	return primary, tensor.AxisC
}

func (t *Tiler) alignFor(core int, a tensor.Axis) int {
	if a == tensor.AxisC {
		return t.Arch.Cores[core].AlignC
	}
	return t.Arch.Cores[core].AlignSpatial
}

// cutGrid slices the sub-layer output into a ka x kb grid (ka cuts
// along the primary axis, kb along the secondary) and derives per-tile
// inputs and costs. Iteration is always channel-outer: all tiles
// sharing one kernel slice (a CGroup) are contiguous, so each kernel
// slice is loaded once and streamed over the other axis.
func (t *Tiler) cutGrid(l *graph.Layer, inShapes []tensor.Shape, sub partition.SubLayer,
	axisA tensor.Axis, ka, alignA int, axisB tensor.Axis, kb, alignB int) []Tile {

	extA := sub.Out.Ext.Dim(axisA)
	extB := sub.Out.Ext.Dim(axisB)
	if ka > extA {
		ka = extA
	}
	if kb > extB {
		kb = extB
	}
	chunksA := tensor.SplitEven(extA, ka, alignA)
	chunksB := tensor.SplitEven(extB, kb, alignB)

	// One of the two axes is always the channel axis: iterate it on
	// the outside so kernel-slice groups are contiguous.
	axisOut, chunksOut := axisA, chunksA
	axisIn, chunksIn := axisB, chunksB
	if axisB == tensor.AxisC {
		axisOut, chunksOut = axisB, chunksB
		axisIn, chunksIn = axisA, chunksA
	}

	var tiles []Tile
	offOut := sub.Out.Off.Dim(axisOut)
	group := 0
	idx := 0
	for _, szOut := range chunksOut {
		if szOut == 0 {
			continue
		}
		offIn := sub.Out.Off.Dim(axisIn)
		emitted := false
		for _, szIn := range chunksIn {
			if szIn == 0 {
				continue
			}
			out := sub.Out
			out.Off = out.Off.WithDim(axisOut, offOut).WithDim(axisIn, offIn)
			out.Ext = out.Ext.WithDim(axisOut, szOut).WithDim(axisIn, szIn)
			offIn += szIn
			tile := Tile{Index: idx, CGroup: group, Out: out}
			tile.In = make([]tensor.Region, len(inShapes))
			for j := range inShapes {
				tile.In[j] = l.Op.InputRegion(out, j, inShapes)
			}
			tile.MACs = l.Op.MACs(out.Ext, inShapes)
			// Kernel slice of the group: ops charge kernels by output
			// channel extent only.
			tile.KernelBytes = l.Op.KernelBytes(out.Ext, inShapes, l.DType)
			tiles = append(tiles, tile)
			emitted = true
			idx++
		}
		offOut += szOut
		if emitted {
			group++
		}
	}
	return tiles
}

// spmNeed returns the double-buffered SPM requirement of a tile plan.
// Inputs whose region is identical across tiles (or forwarded) are
// resident once; streamed inputs and outputs are double-buffered;
// kernels are resident per group, double-buffered when streamed.
func (t *Tiler) spmNeed(tiles []Tile, dt tensor.DType, opt Options) int64 {
	if len(tiles) == 0 {
		return 0
	}
	nIn := len(tiles[0].In)
	var need int64

	for j := 0; j < nIn; j++ {
		shared := true
		var maxIn, totalShared int64
		first := tiles[0].In[j]
		for _, tile := range tiles {
			b := tile.In[j].Bytes(dt)
			if b > maxIn {
				maxIn = b
			}
			if tile.In[j] != first {
				shared = false
			}
		}
		totalShared = first.Bytes(dt)
		switch {
		case j < len(opt.ForwardedInput) && opt.ForwardedInput[j]:
			// Forwarded: resident from the producer; count the full
			// region once.
			var u tensor.Region
			for i, tile := range tiles {
				if i == 0 {
					u = tile.In[j]
				} else {
					u = bbox(u, tile.In[j])
				}
			}
			need += u.Bytes(dt)
		case shared:
			need += totalShared // input-stationary
		default:
			need += 2 * maxIn
		}
	}

	var maxOut int64
	for _, tile := range tiles {
		if b := tile.Out.Bytes(dt); b > maxOut {
			maxOut = b
		}
	}
	need += 2 * maxOut

	groups := tiles[len(tiles)-1].CGroup + 1
	var maxKernel int64
	for _, tile := range tiles {
		if tile.KernelBytes > maxKernel {
			maxKernel = tile.KernelBytes
		}
	}
	if groups > 1 {
		need += 2 * maxKernel
	} else {
		need += maxKernel
	}
	return need
}

func bbox(a, b tensor.Region) tensor.Region {
	var out tensor.Region
	for _, ax := range []tensor.Axis{tensor.AxisH, tensor.AxisW, tensor.AxisC} {
		lo := a.Off.Dim(ax)
		if v := b.Off.Dim(ax); v < lo {
			lo = v
		}
		hi := a.End(ax)
		if v := b.End(ax); v > hi {
			hi = v
		}
		out.Off = out.Off.WithDim(ax, lo)
		out.Ext = out.Ext.WithDim(ax, hi-lo)
	}
	return out
}

// markHalo flags tiles whose output touches a partition boundary that
// a neighbour needs.
func (t *Tiler) markHalo(tiles []Tile, sub partition.SubLayer, axis tensor.Axis, opt Options) {
	if !opt.Direction.Spatial() || axis != opt.Direction.Axis() || opt.HaloWidth <= 0 {
		return
	}
	lo := sub.Out.Off.Dim(axis)
	hi := sub.Out.End(axis)
	for i := range tiles {
		tLo := tiles[i].Out.Off.Dim(axis)
		tHi := tiles[i].Out.End(axis)
		if opt.HaloLo && tLo < lo+opt.HaloWidth {
			tiles[i].ProducesHalo = true
		}
		if opt.HaloHi && tHi > hi-opt.HaloWidth {
			tiles[i].ProducesHalo = true
		}
	}
}

// haloFirstOrder moves halo-producing tiles to the front, preserving
// relative order within each class.
func haloFirstOrder(tiles []Tile) []Tile {
	out := make([]Tile, 0, len(tiles))
	for _, t := range tiles {
		if t.ProducesHalo {
			out = append(out, t)
		}
	}
	for _, t := range tiles {
		if !t.ProducesHalo {
			out = append(out, t)
		}
	}
	return out
}

// Validate checks that a plan's tiles exactly cover the sub-layer
// output without overlap.
func Validate(plan *Plan, sub partition.SubLayer) error {
	if sub.Empty() {
		if len(plan.Tiles) != 0 {
			return fmt.Errorf("tiling: empty sub-layer has %d tiles", len(plan.Tiles))
		}
		return nil
	}
	var total int64
	for i, a := range plan.Tiles {
		if !sub.Out.Contains(a.Out) {
			return fmt.Errorf("tiling: tile %d %v outside sub-layer %v", i, a.Out, sub.Out)
		}
		total += a.Out.Elems()
		for j := i + 1; j < len(plan.Tiles); j++ {
			if a.Out.Overlaps(plan.Tiles[j].Out) {
				return fmt.Errorf("tiling: tiles %d and %d overlap", i, j)
			}
		}
	}
	if total != sub.Out.Elems() {
		return fmt.Errorf("tiling: tiles cover %d elements, sub-layer has %d", total, sub.Out.Elems())
	}
	return nil
}

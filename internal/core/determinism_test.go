package core

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/models"
)

// TestCompileDeterministic guards against map-iteration order leaking
// into the lowered program: two compilations of the same input must be
// identical instruction for instruction (resumable builds and
// reproducible experiments depend on it).
func TestCompileDeterministic(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	for _, opt := range []Options{Base(), Halo(), Stratum()} {
		r1, err := Compile(g, a, opt)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Compile(g, a, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Program.Cores, r2.Program.Cores) {
			t.Errorf("%s: instruction streams differ between identical compiles", opt.Name())
		}
		if r1.Program.NumBarriers != r2.Program.NumBarriers {
			t.Errorf("%s: barrier counts differ", opt.Name())
		}
		if !reflect.DeepEqual(r1.Order, r2.Order) {
			t.Errorf("%s: schedules differ", opt.Name())
		}
	}
}

// TestCompileDeterministicLargeModel repeats the determinism check on
// a branchy benchmark model, where nondeterminism would be likeliest.
func TestCompileDeterministicLargeModel(t *testing.T) {
	if testing.Short() {
		t.Skip("full model compile")
	}
	g := models.ByNameMust("InceptionV3")
	a := arch.Exynos2100Like()
	r1, err := Compile(g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Compile(g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Program.Cores, r2.Program.Cores) {
		t.Error("InceptionV3 compilation is nondeterministic")
	}
}

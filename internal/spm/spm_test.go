package spm_test

import (
	. "repro/internal/spm"

	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

func profileModel(t *testing.T, name string, opt core.Options) []CoreProfile {
	t.Helper()
	g := models.ByNameMust(name)
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := Profile(res.Program, out.Trace)
	if err != nil {
		t.Fatal(err)
	}
	return profiles
}

func TestProfileBenchmarkModels(t *testing.T) {
	for _, name := range []string{"MobileNetV2", "InceptionV3"} {
		for _, opt := range []core.Options{core.Base(), core.Stratum()} {
			profiles := profileModel(t, name, opt)
			for c, p := range profiles {
				if p.PeakBytes <= 0 || p.Buffers == 0 {
					t.Errorf("%s/%s core %d: empty profile", name, opt.Name(), c)
				}
				// The occupancy must stay within a modest factor of
				// capacity: the tiler budgets per layer, and the
				// pipeline overlaps at most a couple of layers.
				if p.PeakBytes > 2*p.CapacityBytes {
					t.Errorf("%s/%s core %d: peak %d KB far beyond capacity %d KB",
						name, opt.Name(), c, p.PeakBytes/1024, p.CapacityBytes/1024)
				}
			}
		}
	}
}

func TestProfileRequiresTrace(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Base())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Profile(res.Program, nil); err == nil {
		t.Error("missing trace accepted")
	}
}

func TestProfileScalesWithTensorSize(t *testing.T) {
	small := profileModel(t, "MobileNetV2", core.Base())
	big := profileModel(t, "UNet", core.Base())
	var smallPeak, bigPeak int64
	for c := range small {
		if small[c].PeakBytes > smallPeak {
			smallPeak = small[c].PeakBytes
		}
		if big[c].PeakBytes > bigPeak {
			bigPeak = big[c].PeakBytes
		}
	}
	if bigPeak <= smallPeak {
		t.Errorf("UNet peak %d <= MobileNetV2 peak %d", bigPeak, smallPeak)
	}
}

func TestReportFormatting(t *testing.T) {
	profiles := profileModel(t, "MobileNetV2", core.Stratum())
	s := Report(profiles, 1300)
	if !strings.Contains(s, "P0") || !strings.Contains(s, "peak") {
		t.Errorf("report = %q", s)
	}
}

package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/models"
)

func TestUtilizationSweep(t *testing.T) {
	rows, err := Utilization(core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(models.All()) {
		t.Fatalf("%d rows for %d models", len(rows), len(models.All()))
	}
	for _, r := range rows {
		f := r.MeanFractions
		sum := f.Compute + f.Halo + f.Load + f.Store + f.Stall + f.Idle
		if d := sum - 1; d > 1e-9 || d < -1e-9 {
			t.Errorf("%s: mean fractions sum to %.12f", r.Model, sum)
		}
		if f.Compute <= 0 {
			t.Errorf("%s: no compute attributed", r.Model)
		}
		if r.Report == nil || r.Report.Model != r.Model || len(r.Report.Strata) == 0 {
			t.Errorf("%s: incomplete report", r.Model)
		}
	}
	var sb strings.Builder
	PrintUtilization(&sb, core.Stratum().Name(), rows)
	out := sb.String()
	for _, want := range []string{"Figure 10", "compute", "InceptionV3", "UNet"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

package stratum

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// wideChain builds n stacked 5x5 SAME convolutions over a 48x48x64
// input: spatially partitioned (h1), but the 5x5 halo redundancy makes
// h8 refuse every merge — the chain the Fuse override exists for.
func wideChain(n int) *graph.Graph {
	g := graph.New("wide", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(48, 48, 64))
	for i := 0; i < n; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(5, 5, 1, 1, 64, ops.Padding{Top: 2, Bottom: 2, Left: 2, Right: 2}), prev)
	}
	return g
}

// buildWith is build with a per-layer boundary vector applied.
func buildWith(t *testing.T, g *graph.Graph, a *arch.Arch, bound []Boundary) []Stratum {
	t.Helper()
	p := partition.New(g, a)
	plans := p.PlanAll()
	pred := func(l *graph.Layer) bool {
		d, _ := p.ChooseDirection(l)
		return d.Spatial()
	}
	order := schedule.New(g, pred).Order()
	b := New(g, a, plans, order)
	b.Boundary = bound
	strata := b.Build()
	if err := b.Validate(strata); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return strata
}

func uniform(g *graph.Graph, x Boundary) []Boundary {
	b := make([]Boundary, g.Len())
	for i := range b {
		b[i] = x
	}
	return b
}

// TestBoundaryBreakSplits pins BoundaryBreak: a chain h6–h8 fully
// merge must split exactly at the forced boundary, and an all-Break
// vector must yield singleton strata.
func TestBoundaryBreakSplits(t *testing.T) {
	g := convChain(4)
	a := arch.Exynos2100Like()
	if n := len(buildWith(t, g, a, nil)); n != 1 {
		t.Fatalf("auto strata = %d, want 1 (premise: the chain merges)", n)
	}
	if sizes := strataSizes(buildWith(t, g, a, uniform(g, BoundaryBreak))); len(sizes) != 4 {
		t.Errorf("all-Break strata = %v, want 4 singletons", sizes)
	}
	// One break mid-chain: the edge from the second conv (LayerID 2;
	// the input is 0) to the third refuses to merge -> two strata of 2.
	bound := make([]Boundary, g.Len())
	bound[2] = BoundaryBreak
	sizes := strataSizes(buildWith(t, g, a, bound))
	if len(sizes) != 2 || sizes[0] != 2 || sizes[1] != 2 {
		t.Errorf("single break strata = %v, want [2 2]", sizes)
	}
}

// TestBoundaryFuseOverridesH8 pins BoundaryFuse: on a chain the h8
// cost cutoff keeps fully split, forcing Fuse merges it — h8 is
// bypassed but the merge still passes Validate (legality and halo
// accounting intact).
func TestBoundaryFuseOverridesH8(t *testing.T) {
	g := wideChain(4)
	a := arch.Exynos2100Like()
	auto := buildWith(t, g, a, nil)
	if len(auto) != 4 {
		t.Fatalf("auto strata = %v, want 4 singletons (premise: h8 breaks)", strataSizes(auto))
	}
	fused := buildWith(t, g, a, uniform(g, BoundaryFuse))
	if len(fused) != 1 || fused[0].Len() != 4 {
		t.Fatalf("fused strata = %v, want one stratum of 4", strataSizes(fused))
	}
	if fused[0].RedundantMACs <= 0 {
		t.Error("forced merge must still account redundant compute")
	}
}

// TestBoundaryFuseRespectsLegality pins that Fuse only skips the h8
// cost check: the structural h6 and direction h7 requirements still
// hold, so a channel-partitioned chain stays split no matter what the
// override says.
func TestBoundaryFuseRespectsLegality(t *testing.T) {
	// 16x16 input with 5x5 kernels: h2 partitions along channels, and
	// channel-partitioned layers can never fuse (h7).
	g := graph.New("chan", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(16, 16, 64))
	for i := 0; i < 3; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(5, 5, 1, 1, 64, ops.Padding{Top: 2, Bottom: 2, Left: 2, Right: 2}), prev)
	}
	a := arch.Exynos2100Like()
	p := partition.New(g, a)
	d, why := p.ChooseDirection(g.Layer(graph.LayerID(1)))
	if d.Spatial() {
		t.Fatalf("premise broken: layer partitioned %v (%s), want channel", d, why)
	}
	fused := buildWith(t, g, a, uniform(g, BoundaryFuse))
	if len(fused) != 3 {
		t.Errorf("Fuse merged illegally: strata = %v, want 3 singletons", strataSizes(fused))
	}
}

// TestBoundaryString covers the label mapping.
func TestBoundaryString(t *testing.T) {
	for b, want := range map[Boundary]string{
		BoundaryAuto: "auto", BoundaryBreak: "break", BoundaryFuse: "fuse",
	} {
		if b.String() != want {
			t.Errorf("Boundary(%d).String() = %q, want %q", int8(b), b.String(), want)
		}
	}
	if Boundary(9).String() == "" {
		t.Error("unknown boundary label empty")
	}
}

package sim

// eventKind classifies entries of the engine's indexed min-heap event
// queue. Each kind keys its entries by a small integer id, letting the
// heap support O(log n) update/remove by (kind, id) — the "indexed"
// part — without any per-entry allocation.
type eventKind uint8

const (
	// evCompute: a scheduled compute finish; id is the node id.
	evCompute eventKind = iota
	// evSetup: a DMA descriptor-setup (or retry-backoff) deadline after
	// which the transfer joins the bus water-filling set; id is the
	// node id.
	evSetup
	// evBarrier: a released barrier's rendezvous completion; id is the
	// flat barrier index (placement offset + barrier id).
	evBarrier
	// evFault: the next pending fault-plan firing; id is always 0.
	evFault
)

// heapEntry is one pending event.
type heapEntry struct {
	t    float64
	id   int32
	kind eventKind
}

// eventHeap is an indexed binary min-heap over simulation events,
// ordered by time (ties broken by kind then id for determinism). The
// position tables map (kind, id) to heap slot + 1 (0 = absent) so
// entries can be updated or removed when a throttle rescales a compute
// finish, a transfer drops, or a barrier completes. All storage is
// reused across runs via the engine scratch pool.
type eventHeap struct {
	items []heapEntry
	// pos[kind] maps id -> slot+1. evFault shares posBarrier? No —
	// it has a dedicated scalar since there is only ever one entry.
	posCompute []int32
	posSetup   []int32
	posBarrier []int32
	posFault   int32
}

// reset prepares the heap for a run with nNodes nodes and nBarriers
// flat barriers, reusing prior capacity.
func (h *eventHeap) reset(nNodes, nBarriers int) {
	h.items = h.items[:0]
	h.posCompute = resizeInt32(h.posCompute, nNodes)
	h.posSetup = resizeInt32(h.posSetup, nNodes)
	h.posBarrier = resizeInt32(h.posBarrier, nBarriers)
	h.posFault = 0
}

// resizeInt32 returns a zeroed slice of length n, reusing capacity.
func resizeInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func (h *eventHeap) slot(kind eventKind, id int32) *int32 {
	switch kind {
	case evCompute:
		return &h.posCompute[id]
	case evSetup:
		return &h.posSetup[id]
	case evBarrier:
		return &h.posBarrier[id]
	default:
		return &h.posFault
	}
}

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.t != b.t {
		return a.t < b.t
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.id < b.id
}

func (h *eventHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	*h.slot(h.items[i].kind, h.items[i].id) = int32(i + 1)
	*h.slot(h.items[j].kind, h.items[j].id) = int32(j + 1)
}

func (h *eventHeap) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) siftDown(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.swap(i, small)
		i = small
	}
}

// update inserts the (kind, id) event at time t, or re-keys it if
// already present.
func (h *eventHeap) update(kind eventKind, id int32, t float64) {
	p := h.slot(kind, id)
	if *p == 0 {
		h.items = append(h.items, heapEntry{t: t, id: id, kind: kind})
		*p = int32(len(h.items))
		h.siftUp(len(h.items) - 1)
		return
	}
	i := int(*p) - 1
	old := h.items[i].t
	h.items[i].t = t
	if t < old {
		h.siftUp(i)
	} else if t > old {
		h.siftDown(i)
	}
}

// remove deletes the (kind, id) event if present.
func (h *eventHeap) remove(kind eventKind, id int32) {
	p := h.slot(kind, id)
	if *p == 0 {
		return
	}
	i := int(*p) - 1
	*p = 0
	last := len(h.items) - 1
	if i != last {
		h.items[i] = h.items[last]
		*h.slot(h.items[i].kind, h.items[i].id) = int32(i + 1)
	}
	h.items = h.items[:last]
	if i < len(h.items) {
		h.siftUp(i)
		h.siftDown(i)
	}
}

// top returns the earliest pending event without removing it.
func (h *eventHeap) top() (heapEntry, bool) {
	if len(h.items) == 0 {
		return heapEntry{}, false
	}
	return h.items[0], true
}

// pop removes and returns the earliest pending event.
func (h *eventHeap) pop() heapEntry {
	e := h.items[0]
	h.remove(e.kind, e.id)
	return e
}

package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/parallel"
)

// sampleMix is the live-mode mix sampler: weights normalized, no local
// compile or sim — the server owns those.
type sampleMix struct {
	entries []MixEntry
	cum     []float64
	bodies  [][]byte
}

func newSampleMix(mix []MixEntry) (*sampleMix, error) {
	if len(mix) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	var total float64
	for i, e := range mix {
		if e.Weight <= 0 {
			return nil, fmt.Errorf("loadgen: mix entry %d (%s) has non-positive weight %v", i, e.Model, e.Weight)
		}
		total += e.Weight
	}
	sm := &sampleMix{entries: make([]MixEntry, len(mix))}
	var cum float64
	for i, e := range mix {
		if e.Cores == 0 {
			e.Cores = 3
		}
		if e.Config == "" {
			e.Config = "stratum"
		}
		e.Weight /= total // report normalized shares, like replay mode
		sm.entries[i] = e
		cum += e.Weight
		sm.cum = append(sm.cum, cum)
		// The wire shape of serve.RunRequest, prebuilt once per entry.
		body, err := json.Marshal(struct {
			Model  string
			Cores  int
			Config string
		}{e.Model, e.Cores, e.Config})
		if err != nil {
			return nil, err
		}
		sm.bodies = append(sm.bodies, body)
	}
	sm.cum[len(sm.cum)-1] = 1
	return sm, nil
}

func (sm *sampleMix) sample(rng *prng) int {
	u := rng.uniform()
	for i, c := range sm.cum {
		if u < c {
			return i
		}
	}
	return len(sm.cum) - 1
}

// liveItem is one scheduled request flowing through parallel.Stream.
type liveItem struct {
	entry int
	seq   int64
	sched time.Time
}

// liveWorker is one HTTP client's private state: no locking, indexed
// by the Stream worker id.
type liveWorker struct {
	latency metrics.Histogram
	failed  int64
	retried int64
	gaveUp  int64
	maxUS   int64
	done    int64
	perEnt  []metrics.Histogram
}

// Retry backoff shape: exponential from retryBase, capped at retryCap,
// jittered to [0.5x, 1.5x) so a shed burst does not re-arrive as a
// synchronized burst.
const (
	retryBase = 10 * time.Millisecond
	retryCap  = time.Second
)

// retryDelay is the wait before re-issuing attempt (1-based) of
// request seq. The jitter draw is seeded per (request, attempt), so a
// given schedule backs off identically run to run; the server's
// Retry-After (seconds) is honored as a floor.
func retryDelay(seed uint64, seq int64, attempt int, retryAfter string) time.Duration {
	j := prng(seed ^ uint64(seq)*0x9e3779b97f4a7c15 ^ uint64(attempt)<<32)
	d := time.Duration(float64(retryBase) * math.Pow(2, float64(attempt-1)) * (0.5 + j.uniform()))
	if d > retryCap {
		d = retryCap
	}
	if s, err := strconv.Atoi(retryAfter); err == nil && s > 0 {
		if floor := time.Duration(s) * time.Second; d < floor {
			d = floor
		}
	}
	return d
}

// retryable reports whether a status is a shed the client may retry:
// queue full (429) or draining/not-ready (503).
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable
}

// RunLive drives a live npusim -serve endpoint with real HTTP
// requests through the streaming worker pool: the producer emits the
// (seeded, reproducible) request schedule, and o.Clients concurrent
// workers execute it, each with its own histogram, merged at the end.
//
// The open loop paces arrivals in wall time at the offered rate (the
// first of o.Rates; exactly one rate per call); the closed loop lets
// the worker population itself set the pace. Latency is measured from
// the scheduled arrival (open) or issue (closed) to the response, so
// open-loop queueing delay counts against the server — the honest
// fleet view. Non-2xx responses count as Failed, not errors; only
// transport failures abort the run.
func RunLive(ctx context.Context, target string, mix []MixEntry, o Options) (*Report, error) {
	o = o.withDefaults()
	sm, err := newSampleMix(mix)
	if err != nil {
		return nil, err
	}
	var rate float64
	if o.Arrival == ArrivalPoisson {
		if len(o.Rates) != 1 {
			return nil, fmt.Errorf("loadgen: live open-loop runs need exactly one -rates value (got %d)", len(o.Rates))
		}
		rate = o.Rates[0]
		if rate <= 0 {
			return nil, fmt.Errorf("loadgen: non-positive offered rate %v", rate)
		}
	} else if o.Arrival != ArrivalClosed {
		return nil, fmt.Errorf("loadgen: unknown arrival process %q (poisson, closed)", o.Arrival)
	}

	prev := parallel.SetWorkers(o.Clients)
	defer parallel.SetWorkers(prev)
	workers := parallel.Workers()
	state := make([]*liveWorker, workers)
	for i := range state {
		state[i] = &liveWorker{perEnt: make([]metrics.Histogram, len(sm.entries))}
	}
	client := &http.Client{Timeout: 2 * time.Minute}
	url := target + "/run"

	rng := prng(o.Seed)
	start := time.Now()
	err = parallel.Stream(ctx, 2*workers,
		func(emit func(liveItem) bool) error {
			t := start
			for i := int64(0); i < o.Requests; i++ {
				it := liveItem{entry: sm.sample(&rng), seq: i, sched: time.Now()}
				if rate > 0 {
					t = t.Add(time.Duration(rng.exp() * 1e6 / rate * float64(time.Microsecond)))
					time.Sleep(time.Until(t))
					it.sched = t
				}
				if !emit(it) {
					return nil
				}
			}
			return nil
		},
		func(worker int, it liveItem) error {
			w := state[worker]
			for attempt := 0; ; attempt++ {
				resp, err := client.Post(url, "application/json", bytes.NewReader(sm.bodies[it.entry]))
				if err != nil {
					return fmt.Errorf("loadgen: POST %s: %w", url, err)
				}
				retryAfter := resp.Header.Get("Retry-After")
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if retryable(resp.StatusCode) && attempt < o.MaxRetries {
					w.retried++
					select {
					case <-ctx.Done():
						return ctx.Err()
					case <-time.After(retryDelay(o.Seed, it.seq, attempt+1, retryAfter)):
					}
					continue
				}
				lat := time.Since(it.sched)
				w.done++
				if resp.StatusCode != http.StatusOK {
					w.failed++
					if o.MaxRetries > 0 && retryable(resp.StatusCode) {
						w.gaveUp++
					}
					return nil
				}
				w.latency.Observe(lat)
				w.perEnt[it.entry].Observe(lat)
				if us := lat.Microseconds(); us > w.maxUS {
					w.maxUS = us
				}
				return nil
			}
		})
	if err != nil {
		return nil, err
	}
	makespan := time.Since(start)

	agg := state[0]
	for _, w := range state[1:] {
		agg.latency.Merge(&w.latency)
		for e := range agg.perEnt {
			agg.perEnt[e].Merge(&w.perEnt[e])
		}
		agg.failed += w.failed
		agg.retried += w.retried
		agg.gaveUp += w.gaveUp
		agg.done += w.done
		if w.maxUS > agg.maxUS {
			agg.maxUS = w.maxUS
		}
	}

	rep := newReport("live", nil, o)
	rep.Target = target
	rep.Devices, rep.Shards = 0, 0
	rep.Clients = o.Clients
	for _, e := range sm.entries {
		rep.Mix = append(rep.Mix, MixInfo{Model: e.Model, Config: e.Config, Cores: e.Cores, Weight: round3(e.Weight)})
	}
	p := Point{
		OfferedRPS: round3(rate),
		Requests:   agg.done,
		MakespanUS: round3(float64(makespan) / float64(time.Microsecond)),
		Latency:    summarize(agg.latency.Dist(), agg.maxUS),
		Failed:     agg.failed,
		Retried:    agg.retried,
		GaveUp:     agg.gaveUp,
	}
	if makespan > 0 {
		p.AchievedRPS = round3(float64(agg.done) / makespan.Seconds())
	}
	for e := range sm.entries {
		d := agg.perEnt[e].Dist()
		if d.Count() == 0 {
			continue
		}
		p.PerModel = append(p.PerModel, ModelPoint{
			Model:   sm.entries[e].Model,
			Config:  sm.entries[e].Config,
			Latency: summarize(d, 0),
		})
	}
	rep.Points = append(rep.Points, p)
	return rep, nil
}

// Package arch describes the multicore NPU hardware the compiler
// targets and the simulator models: per-core compute throughput, DMA
// bandwidth, scratch-pad memory (SPM) capacity, data alignment
// constraints, the shared global-memory bus, and synchronization cost.
//
// The paper evaluates on the Samsung Exynos 2100, whose NPU has three
// adder-tree cores with fixed input/output channel alignments and
// differing bandwidth capabilities. Exynos2100Like captures that
// structure; the absolute parameter values are calibrated estimates,
// not vendor data.
package arch

import (
	"fmt"
)

// Core describes one NPU core.
type Core struct {
	// Name identifies the core in reports ("P0", "P1", ...).
	Name string
	// MACsPerCycle is the peak INT8 multiply-accumulate throughput of
	// the core's adder-tree engine. INT16 operation halves it.
	MACsPerCycle int
	// DMABytesPerCycle is the core's own DMA engine bandwidth to
	// global memory, before bus contention.
	DMABytesPerCycle float64
	// SPMBytes is the core's scratch-pad (local) memory capacity.
	SPMBytes int64
	// AlignC is the channel alignment the adder tree imposes on
	// input/output channel partitions.
	AlignC int
	// AlignSpatial is the row alignment for spatial partitions.
	AlignSpatial int
}

// Arch describes the NPU subsystem.
type Arch struct {
	// Name identifies the configuration in reports.
	Name string
	// Cores lists the NPU cores. Layer partitioning produces one
	// sub-layer per core.
	Cores []Core
	// ClockMHz converts cycles to wall time for reporting.
	ClockMHz int
	// BusBytesPerCycle is the shared global-memory bandwidth ceiling;
	// concurrent DMA transfers from multiple cores share it.
	BusBytesPerCycle float64
	// SyncBaseCycles is the fixed cost of an inter-core barrier
	// (interrupt + runtime bookkeeping), paid by every participant
	// after the last core arrives.
	SyncBaseCycles int64
	// SyncPerCoreCycles is the additional barrier cost per
	// participating core.
	SyncPerCoreCycles int64
	// SyncJitterCycles bounds the per-barrier release variance caused
	// by the runtime (interrupt latency, scheduler noise) — the
	// "dynamic situations of the system" the paper cites as the
	// implicit toll of synchronization. The simulator adds a
	// deterministic pseudo-random delay in [0, SyncJitterCycles] to
	// each barrier release; the cost model charges the expectation.
	SyncJitterCycles int64
	// DMASetupCycles is the fixed cost of every DMA transfer job
	// (descriptor setup, completion interrupt) before data flows.
	// It is what makes many small transfers — e.g. per-layer
	// halo-exchange — more expensive than few large ones, the
	// "implicit synchronization toll" of halo-exchange the paper
	// contrasts with stratum execution.
	DMASetupCycles int64
	// ComputeEfficiency derates peak MACs for real layer shapes
	// (pipeline bubbles, edge effects); in (0, 1].
	ComputeEfficiency float64
	// DirectHaloInterconnect models a dedicated core-to-core link for
	// halo-exchange. The Exynos 2100 has none — the paper transfers
	// halo "through global memory, due to no direct connection or
	// shared memory between cores" — so the preset leaves this false;
	// enabling it is a hardware design-space experiment: halo
	// transfers then run at the core's DMA rate without consuming
	// shared-bus bandwidth.
	DirectHaloInterconnect bool
	// PJPerMAC is the energy of one INT8 multiply-accumulate in
	// picojoules (INT16 doubles it). Used by the energy model.
	PJPerMAC float64
	// PJPerDRAMByte is the energy of moving one byte between global
	// memory and SPM (DRAM access + bus + DMA), in picojoules.
	PJPerDRAMByte float64
}

// NumCores returns the number of NPU cores.
func (a *Arch) NumCores() int { return len(a.Cores) }

// Validate checks that the description is physically sensible.
func (a *Arch) Validate() error {
	if len(a.Cores) == 0 {
		return fmt.Errorf("arch %q: no cores", a.Name)
	}
	if a.ClockMHz <= 0 {
		return fmt.Errorf("arch %q: clock %d MHz", a.Name, a.ClockMHz)
	}
	if a.BusBytesPerCycle <= 0 {
		return fmt.Errorf("arch %q: bus bandwidth %g", a.Name, a.BusBytesPerCycle)
	}
	if a.ComputeEfficiency <= 0 || a.ComputeEfficiency > 1 {
		return fmt.Errorf("arch %q: compute efficiency %g outside (0,1]", a.Name, a.ComputeEfficiency)
	}
	for i, c := range a.Cores {
		switch {
		case c.MACsPerCycle <= 0:
			return fmt.Errorf("arch %q core %d: MACsPerCycle %d", a.Name, i, c.MACsPerCycle)
		case c.DMABytesPerCycle <= 0:
			return fmt.Errorf("arch %q core %d: DMABytesPerCycle %g", a.Name, i, c.DMABytesPerCycle)
		case c.SPMBytes <= 0:
			return fmt.Errorf("arch %q core %d: SPMBytes %d", a.Name, i, c.SPMBytes)
		case c.AlignC < 1 || c.AlignSpatial < 1:
			return fmt.Errorf("arch %q core %d: alignment %d/%d", a.Name, i, c.AlignC, c.AlignSpatial)
		}
	}
	return nil
}

// CyclesToMicros converts a cycle count to microseconds.
func (a *Arch) CyclesToMicros(cycles int64) float64 {
	return float64(cycles) / float64(a.ClockMHz)
}

// MicrosToCycles converts microseconds to cycles.
func (a *Arch) MicrosToCycles(us float64) int64 {
	return int64(us * float64(a.ClockMHz))
}

// SyncCost returns the modeled barrier cost in cycles for n
// participating cores (excluding waiting time for stragglers, which
// the simulator accounts separately).
func (a *Arch) SyncCost(n int) int64 {
	if n <= 1 {
		return 0
	}
	return a.SyncBaseCycles + int64(n)*a.SyncPerCoreCycles
}

// MaxAlignC returns the largest channel alignment across cores: the
// granularity channel partitioning must respect to satisfy every core.
func (a *Arch) MaxAlignC() int {
	m := 1
	for _, c := range a.Cores {
		if c.AlignC > m {
			m = c.AlignC
		}
	}
	return m
}

// MaxAlignSpatial returns the largest spatial alignment across cores.
func (a *Arch) MaxAlignSpatial() int {
	m := 1
	for _, c := range a.Cores {
		if c.AlignSpatial > m {
			m = c.AlignSpatial
		}
	}
	return m
}

// Exynos2100Like returns a three-core NPU resembling the paper's
// evaluation platform: equal adder-tree compute per core (the ISSCC'21
// description is a 6K-MAC NPU organized as three 2K-MAC cores), fixed
// 16-channel alignment (32 on the third core, giving channel
// partitioning its larger alignment burden), and heterogeneous DMA
// bandwidth.
func Exynos2100Like() *Arch {
	return &Arch{
		Name:     "exynos2100-like-3core",
		ClockMHz: 1300,
		Cores: []Core{
			{Name: "P0", MACsPerCycle: 2048, DMABytesPerCycle: 16, SPMBytes: 2 << 20, AlignC: 16, AlignSpatial: 1},
			{Name: "P1", MACsPerCycle: 2048, DMABytesPerCycle: 12, SPMBytes: 2 << 20, AlignC: 16, AlignSpatial: 1},
			{Name: "P2", MACsPerCycle: 2048, DMABytesPerCycle: 8, SPMBytes: 2 << 20, AlignC: 32, AlignSpatial: 1},
		},
		BusBytesPerCycle:  32,
		SyncBaseCycles:    2600, // ~2 us at 1.3 GHz
		SyncPerCoreCycles: 260,  // ~0.2 us per participant
		SyncJitterCycles:  3900, // up to ~3 us of runtime variance
		DMASetupCycles:    400,  // ~0.3 us per DMA job
		ComputeEfficiency: 0.55,
		PJPerMAC:          0.25, // ~7nm INT8 MAC incl. local SRAM traffic
		PJPerDRAMByte:     20,   // LPDDR5 access + interconnect
	}
}

// SingleCore returns a one-core configuration with the same per-core
// parameters as Exynos2100Like's first core; the single-core baseline
// of Figure 11.
func SingleCore() *Arch {
	a := Exynos2100Like()
	a.Name = "exynos2100-like-1core"
	a.Cores = a.Cores[:1]
	return a
}

// Subset returns an architecture exposing only the chosen cores of a,
// for compiling one network onto a core subset while other networks
// occupy the rest (multi-network concurrent execution). The shared
// parameters (bus, sync, clock) are inherited; contention with the
// other cores is the simulator's job.
func (a *Arch) Subset(cores []int) (*Arch, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("arch: empty core subset")
	}
	sub := *a
	sub.Name = fmt.Sprintf("%s-subset%v", a.Name, cores)
	sub.Cores = make([]Core, len(cores))
	for i, c := range cores {
		if c < 0 || c >= len(a.Cores) {
			return nil, fmt.Errorf("arch: core index %d out of range (0..%d)", c, len(a.Cores)-1)
		}
		sub.Cores[i] = a.Cores[c]
	}
	return &sub, nil
}

// Homogeneous returns an n-core NPU with identical cores, for
// scalability studies beyond the paper's three-core platform.
func Homogeneous(n int) *Arch {
	base := Exynos2100Like()
	cores := make([]Core, n)
	for i := range cores {
		cores[i] = base.Cores[0]
		cores[i].Name = fmt.Sprintf("P%d", i)
	}
	return &Arch{
		Name:              fmt.Sprintf("homogeneous-%dcore", n),
		ClockMHz:          base.ClockMHz,
		Cores:             cores,
		BusBytesPerCycle:  base.BusBytesPerCycle,
		SyncBaseCycles:    base.SyncBaseCycles,
		SyncPerCoreCycles: base.SyncPerCoreCycles,
		SyncJitterCycles:  base.SyncJitterCycles,
		DMASetupCycles:    base.DMASetupCycles,
		ComputeEfficiency: base.ComputeEfficiency,
		PJPerMAC:          base.PJPerMAC,
		PJPerDRAMByte:     base.PJPerDRAMByte,
	}
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// shuffleUnit appends one ShuffleNetV2 basic unit (stride 1): split
// channels in half, transform the right half with a 1x1 -> dw3x3 ->
// 1x1 sandwich, concatenate, and shuffle.
func shuffleUnit(b *builder, name string, in graph.LayerID) graph.LayerID {
	c := b.shape(in).C
	half := c / 2
	left := b.g.MustAdd(name+"_left", ops.ChannelSlice{From: 0, To: half}, in)
	right := b.g.MustAdd(name+"_right", ops.ChannelSlice{From: half, To: c}, in)

	x := b.conv(name+"_pw1", right, 1, 1, half)
	x = b.g.MustAdd(name+"_dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.SamePad(b.shape(x), 3, 3, 1, 1, 1, 1)), x)
	x = b.conv(name+"_pw2", x, 1, 1, half)

	cat := b.concat(name+"_concat", left, x)
	return b.g.MustAdd(name+"_shuffle", ops.ChannelShuffle{Groups: 2}, cat)
}

// shuffleDownUnit appends one ShuffleNetV2 downsampling unit (stride
// 2): both branches process the full input and their concatenation
// doubles the channels.
func shuffleDownUnit(b *builder, name string, in graph.LayerID, outC int) graph.LayerID {
	half := outC / 2
	s := b.shape(in)

	left := b.g.MustAdd(name+"_ldw", ops.NewDepthwiseConv2D(3, 3, 2, 2,
		ops.SamePad(s, 3, 3, 2, 2, 1, 1)), in)
	left = b.conv(name+"_lpw", left, 1, 1, half)

	right := b.conv(name+"_rpw1", in, 1, 1, half)
	right = b.g.MustAdd(name+"_rdw", ops.NewDepthwiseConv2D(3, 3, 2, 2,
		ops.SamePad(b.shape(right), 3, 3, 2, 2, 1, 1)), right)
	right = b.conv(name+"_rpw2", right, 1, 1, half)

	cat := b.concat(name+"_concat", left, right)
	return b.g.MustAdd(name+"_shuffle", ops.ChannelShuffle{Groups: 2}, cat)
}

// ShuffleNetV2 builds the Ma et al. x1.0 classifier (224x224x3): a
// 24-channel stem, three stages of shuffle units (116/232/464
// channels), a 1024-channel head convolution, and the classifier. It
// exercises the channel-slice and channel-shuffle operators.
func ShuffleNetV2() *graph.Graph {
	b := newBuilder("ShuffleNetV2", tensor.Int8)
	in := b.input(tensor.NewShape(224, 224, 3))

	x := b.conv("conv1", in, 3, 2, 24)  // 112x112x24
	x = b.maxpoolSame("pool1", x, 3, 2) // 56x56x24

	stages := []struct {
		units, c int
	}{
		{4, 116}, {8, 232}, {4, 464},
	}
	for si, st := range stages {
		x = shuffleDownUnit(b, fmt.Sprintf("stage%d_down", si+2), x, st.c)
		for u := 1; u < st.units; u++ {
			x = shuffleUnit(b, fmt.Sprintf("stage%d_u%d", si+2, u), x)
		}
	}
	x = b.conv("conv5", x, 1, 1, 1024)
	b.classifierHead(x, 1000)
	return b.g
}

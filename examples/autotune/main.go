// Autotune: profile-guided rebalancing. The compile-time cost model
// balances partitions from the cores' nominal DMA rates (16/12/8
// bytes/cycle), but when the shared bus is the real bottleneck, every
// core gets roughly equal effective bandwidth and the analytic split
// overloads the nominally fast core. The tuner measures each core's
// bottleneck-engine occupancy on the simulator and shifts the
// partitioning weights until latency stops improving — the paper's
// "profiling execution assists to detect unwanted idle times and fix
// the unbalance".
package main

import (
	"fmt"
	"log"

	"repro/npu"
)

func main() {
	g := npu.BuildModel("MobileNetV2")

	// Saturate the bus: cores advertise 16/12/8 B/cycle but share 8.
	a := npu.Exynos2100Like()
	a.BusBytesPerCycle = 8
	fmt.Println("platform: per-core DMA 16/12/8 B/cycle, shared bus capped at 8 B/cycle")

	res, err := npu.AutoBalance(g, a, npu.Stratum(), 6)
	if err != nil {
		log.Fatal(err)
	}

	clock := float64(a.ClockMHz)
	fmt.Println("\ntuning iterations:")
	for i, s := range res.Steps {
		fmt.Printf("  iter %d: %8.1f us   scales %.2f / %.2f / %.2f\n",
			i, s.LatencyCycles/clock, s.Scale[0], s.Scale[1], s.Scale[2])
	}
	first := res.Steps[0].LatencyCycles
	fmt.Printf("\nbest: %.1f us (%.2f%% better than the analytic balance)\n",
		res.BestLatencyCycles/clock, 100*(first-res.BestLatencyCycles)/first)
	fmt.Println("note the direction: work shifts away from the nominally fast core")
	fmt.Println("(scale P0 < 1) toward the slow one (scale P2 > 1), because the")
	fmt.Println("saturated bus equalizes their effective bandwidth at runtime.")
}

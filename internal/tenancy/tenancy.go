// Package tenancy implements a multi-tenant serving scheduler above
// the concurrent simulator: tenants are admitted as (model, priority,
// SLO) tuples, mapped onto disjoint core subsets of one platform, and
// co-scheduled in gang rounds against the max–min-fair bus model, so
// cross-tenant interference falls out of the same simulation that
// produces latencies. Arrivals and departures re-plan the placement;
// running tenants are preempted at stratum boundaries (sim.CutAtCycle
// on the round trace) and re-mapped bit-exactly onto their new subsets
// through recovery.Remap's suffix re-partitioner.
package tenancy

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/sim"
)

// Tenant is one admitted serving client: a model it runs back-to-back,
// a scheduling priority (higher wins cores), a per-inference latency
// SLO, and its lifetime on the platform.
type Tenant struct {
	// Name labels the tenant in reports.
	Name string
	// Model is a models.ByName network name.
	Model string
	// Priority orders core allocation; higher priorities receive the
	// leftover cores first. Ties break by arrival time, then spec order.
	Priority int
	// SLOUS is the per-inference latency objective in microseconds;
	// 0 means no objective (every inference counts as a hit).
	SLOUS float64
	// ArriveUS is when the tenant requests admission.
	ArriveUS float64
	// DepartUS is when the tenant leaves; <= 0 means it stays for the
	// whole horizon.
	DepartUS float64
}

// Validate checks a tenant spec entry.
func (t *Tenant) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("tenancy: tenant with empty name")
	}
	if _, err := models.ByName(t.Model); err != nil {
		return fmt.Errorf("tenancy: tenant %s: %w", t.Name, err)
	}
	if t.SLOUS < 0 {
		return fmt.Errorf("tenancy: tenant %s: negative SLO %.1f", t.Name, t.SLOUS)
	}
	if t.ArriveUS < 0 {
		return fmt.Errorf("tenancy: tenant %s: negative arrival %.1f", t.Name, t.ArriveUS)
	}
	if t.DepartUS > 0 && t.DepartUS <= t.ArriveUS {
		return fmt.Errorf("tenancy: tenant %s departs at %.1f before arriving at %.1f",
			t.Name, t.DepartUS, t.ArriveUS)
	}
	return nil
}

// ParseSpec parses a comma-separated tenant list. Each tenant is
// colon-separated fields, the first being name=Model, the rest
// optional key=value pairs:
//
//	cam=MobileNetV2:prio=2:slo=4000,seg=DeepLabV3+:slo=40000:arrive=5000:depart=15000
//
// Keys: prio (int, default 1), slo (µs, default 0 = none), arrive
// (µs, default 0), depart (µs, default 0 = never).
func ParseSpec(spec string) ([]Tenant, error) {
	var out []Tenant
	seen := map[string]bool{}
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		fields := strings.Split(entry, ":")
		name, model, ok := strings.Cut(fields[0], "=")
		if !ok {
			return nil, fmt.Errorf("tenancy: %q: want name=Model first", entry)
		}
		t := Tenant{Name: strings.TrimSpace(name), Model: strings.TrimSpace(model), Priority: 1}
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("tenancy: %q: field %q is not key=value", entry, f)
			}
			switch strings.TrimSpace(k) {
			case "prio":
				n, err := strconv.Atoi(strings.TrimSpace(v))
				if err != nil {
					return nil, fmt.Errorf("tenancy: %q: prio: %w", entry, err)
				}
				t.Priority = n
			case "slo":
				x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("tenancy: %q: slo: %w", entry, err)
				}
				t.SLOUS = x
			case "arrive":
				x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("tenancy: %q: arrive: %w", entry, err)
				}
				t.ArriveUS = x
			case "depart":
				x, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					return nil, fmt.Errorf("tenancy: %q: depart: %w", entry, err)
				}
				t.DepartUS = x
			default:
				return nil, fmt.Errorf("tenancy: %q: unknown key %q", entry, k)
			}
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("tenancy: duplicate tenant name %q", t.Name)
		}
		seen[t.Name] = true
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("tenancy: empty tenant spec")
	}
	return out, nil
}

// Options configures a tenancy run.
type Options struct {
	// HorizonUS is the simulated serving window; 0 picks
	// DefaultHorizonUS.
	HorizonUS float64
	// Opt is the compiler configuration every tenant compiles with;
	// zero value means core.Stratum().
	Opt core.Options
	// OptSet marks Opt as explicitly provided (a zero core.Options is
	// a meaningful configuration, so presence needs its own bit).
	OptSet bool
	// Sim configures every co-simulation (cancellation via Ctx, fault
	// plans). CollectTrace is forced on — preemption cuts need traces.
	Sim sim.Config
}

// DefaultHorizonUS is the serving window simulated when the caller
// does not pick one: 20 ms, a couple of camera frames.
const DefaultHorizonUS = 20000

func (o *Options) horizonUS() float64 {
	if o.HorizonUS > 0 {
		return o.HorizonUS
	}
	return DefaultHorizonUS
}

func (o *Options) opt() core.Options {
	if o.OptSet {
		return o.Opt
	}
	return core.Stratum()
}

// buildModel resolves a tenant's model name to a fresh graph.
func buildModel(name string) (*graph.Graph, error) {
	m, err := models.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("tenancy: %w", err)
	}
	return m.Build(), nil
}

// tenantState is the scheduler's mutable view of one tenant.
type tenantState struct {
	spec  *Tenant
	index int // spec order, final tie-break
	g     *graph.Graph

	active   bool
	admitted bool    // ever held cores
	firstUS  float64 // first admission time

	cores []int // current subset; nil when not placed

	// In-flight inference checkpoint, original-graph coordinates, plus
	// the cycles already spent on it in earlier epochs.
	completed map[graph.LayerID]bool
	carried   float64

	// cur is the program the next round runs (a suffix when resuming a
	// preempted inference, the full model otherwise); origin maps its
	// layers back to g when it is a suffix.
	cur      *core.Result
	isSuffix bool
	origin   map[graph.LayerID]graph.LayerID

	// Accounting.
	infs, hits         int64
	sumLatency         float64 // cycles, completed inferences
	wIsolated, wInterf float64 // inference-weighted sums
	weight             float64
	remaps, preempts   int
}

// completedList materializes the checkpoint set in the original
// graph's layer order — the stable order recovery.SuffixGraph expects.
func (ts *tenantState) completedList() []graph.LayerID {
	if len(ts.completed) == 0 {
		return nil
	}
	var out []graph.LayerID
	for _, l := range ts.g.Layers() {
		if ts.completed[l.ID] {
			out = append(out, l.ID)
		}
	}
	return out
}

// coreRank orders a's core indices fastest-first (DMA bandwidth, then
// MAC throughput, then index) — the order leftover cores are handed to
// high-priority tenants.
func coreRank(a *arch.Arch) []int {
	rank := make([]int, a.NumCores())
	for i := range rank {
		rank[i] = i
	}
	sort.SliceStable(rank, func(i, j int) bool {
		ci, cj := a.Cores[rank[i]], a.Cores[rank[j]]
		if ci.DMABytesPerCycle != cj.DMABytesPerCycle {
			return ci.DMABytesPerCycle > cj.DMABytesPerCycle
		}
		if ci.MACsPerCycle != cj.MACsPerCycle {
			return ci.MACsPerCycle > cj.MACsPerCycle
		}
		return rank[i] < rank[j]
	})
	return rank
}

// admitOrder sorts active tenants by scheduling precedence: priority
// desc, arrival asc, spec order.
func admitOrder(states []*tenantState) {
	sort.SliceStable(states, func(i, j int) bool {
		a, b := states[i], states[j]
		if a.spec.Priority != b.spec.Priority {
			return a.spec.Priority > b.spec.Priority
		}
		if a.spec.ArriveUS != b.spec.ArriveUS {
			return a.spec.ArriveUS < b.spec.ArriveUS
		}
		return a.index < b.index
	})
}

// place assigns core subsets to the admitted tenants (already in
// precedence order). Every tenant gets at least one core; the leftover
// cores go to the front of the order, one each. Assignment is sticky:
// a tenant keeps the cores it already holds when its share allows,
// minimizing re-maps (subsets are compile keys on this heterogeneous
// platform — {0,1} and {1,2} are different programs). Cores in the
// dead set (lost to a failure or a detected hang) are never assigned.
func place(a *arch.Arch, admitted []*tenantState, dead map[int]bool) {
	rank := coreRank(a)
	if len(dead) > 0 {
		alive := rank[:0]
		for _, c := range rank {
			if !dead[c] {
				alive = append(alive, c)
			}
		}
		rank = alive
	}
	ncores := len(rank)
	k := len(admitted)
	if k == 0 {
		return
	}
	share := make([]int, k)
	for i := range share {
		share[i] = 1
	}
	for extra := ncores - k; extra > 0; extra-- {
		share[(ncores-k-extra)%k]++
	}
	free := make(map[int]bool, a.NumCores())
	for _, c := range rank {
		free[c] = true
	}
	for i, ts := range admitted {
		want := share[i]
		var got []int
		for _, c := range ts.cores { // sticky: previously-held first
			if len(got) < want && free[c] {
				got = append(got, c)
				free[c] = false
			}
		}
		for _, c := range rank { // then fastest available
			if len(got) >= want {
				break
			}
			if free[c] {
				got = append(got, c)
				free[c] = false
			}
		}
		sort.Ints(got)
		ts.cores = got
	}
}

package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Padding holds per-side spatial padding.
type Padding struct {
	Top, Bottom, Left, Right int
}

// SamePad returns the TensorFlow-style "SAME" padding for the given
// kernel, stride, dilation, and input extent along one axis, split
// into (before, after) with the extra element after, matching the
// asymmetric padding the benchmark models use.
func samePad1D(in, k, stride, dil int) (before, after int) {
	eff := (k-1)*dil + 1
	out := (in + stride - 1) / stride
	total := (out-1)*stride + eff - in
	if total < 0 {
		total = 0
	}
	return total / 2, total - total/2
}

// SamePad returns "SAME" padding for a kernel on the given input shape.
func SamePad(in tensor.Shape, kh, kw, strideH, strideW, dilH, dilW int) Padding {
	t, b := samePad1D(in.H, kh, strideH, dilH)
	l, r := samePad1D(in.W, kw, strideW, dilW)
	return Padding{Top: t, Bottom: b, Left: l, Right: r}
}

// window describes a sliding spatial window (shared by convolution and
// pooling): kernel extent, stride, dilation, and padding along one axis.
type window struct {
	k, stride, dil, padLo int
}

// outExtent returns the output extent produced over an input extent.
func (w window) outExtent(in, padHi int) (int, error) {
	eff := (w.k-1)*w.dil + 1
	padded := in + w.padLo + padHi
	if padded < eff {
		return 0, fmt.Errorf("ops: effective kernel %d exceeds padded input %d", eff, padded)
	}
	return (padded-eff)/w.stride + 1, nil
}

// inputSpan maps the half-open output interval [o0, o1) to the input
// interval required to compute it, before clamping.
func (w window) inputSpan(o0, o1 int) (i0, i1 int) {
	if o1 <= o0 {
		return 0, 0
	}
	eff := (w.k-1)*w.dil + 1
	i0 = o0*w.stride - w.padLo
	i1 = (o1-1)*w.stride - w.padLo + eff
	return i0, i1
}

// spanToAxis applies the input span of win along axis a of out to r.
func spanToAxis(r tensor.Region, a tensor.Axis, win window, out tensor.Region, inExtent int) tensor.Region {
	i0, i1 := win.inputSpan(out.Off.Dim(a), out.End(a))
	if i0 < 0 {
		i0 = 0
	}
	if i1 > inExtent {
		i1 = inExtent
	}
	if i1 < i0 {
		i1 = i0
	}
	r.Off = r.Off.WithDim(a, i0)
	r.Ext = r.Ext.WithDim(a, i1-i0)
	return r
}

// Conv2D is a standard (dense) 2-D convolution with OutC output
// channels, fused bias, and optional fused activation handled as a
// separate Activation layer by the model builders.
type Conv2D struct {
	KH, KW           int
	StrideH, StrideW int
	DilH, DilW       int
	Pad              Padding
	OutC             int
	// Groups splits input and output channels into independent groups
	// (ResNeXt-style grouped convolution); 0 or 1 means dense. OutC
	// and the input channel count must both divide by Groups.
	Groups int
}

// groups returns the effective group count.
func (o Conv2D) groups() int {
	if o.Groups <= 1 {
		return 1
	}
	return o.Groups
}

// NewConv2D returns a convolution with unit dilation.
func NewConv2D(kh, kw, strideH, strideW, outC int, pad Padding) Conv2D {
	return Conv2D{KH: kh, KW: kw, StrideH: strideH, StrideW: strideW, DilH: 1, DilW: 1, Pad: pad, OutC: outC}
}

func (o Conv2D) hWin() window {
	return window{k: o.KH, stride: o.StrideH, dil: o.DilH, padLo: o.Pad.Top}
}
func (o Conv2D) wWin() window {
	return window{k: o.KW, stride: o.StrideW, dil: o.DilW, padLo: o.Pad.Left}
}

// Kind implements Op.
func (Conv2D) Kind() Kind { return KindConv2D }

// OutShape implements Op.
func (o Conv2D) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Conv2D", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h, err := o.hWin().outExtent(in[0].H, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	w, err := o.wWin().outExtent(in[0].W, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(h, w, o.OutC), nil
}

// MACs implements Op: each output element costs KH*KW*(InC/Groups)
// MACs.
func (o Conv2D) MACs(ext tensor.Shape, in []tensor.Shape) int64 {
	return ext.Elems() * int64(o.KH) * int64(o.KW) * int64(in[0].C/o.groups())
}

// KernelBytes implements Op: the kernel is KH*KW*InC*OutC weights plus
// one bias per output channel; a channel-partitioned output extent
// takes the proportional kernel slice.
func (o Conv2D) KernelBytes(ext tensor.Shape, in []tensor.Shape, dt tensor.DType) int64 {
	perChan := int64(o.KH)*int64(o.KW)*int64(in[0].C/o.groups())*int64(dt.Size()) + int64(tensor.Int32.Size())
	return perChan * int64(ext.C)
}

// InputRegion implements Op.
func (o Conv2D) InputRegion(out tensor.Region, inIdx int, in []tensor.Shape) tensor.Region {
	r := tensor.WholeRegion(in[0])
	r = spanToAxis(r, tensor.AxisH, o.hWin(), out, in[0].H)
	r = spanToAxis(r, tensor.AxisW, o.wWin(), out, in[0].W)
	if g := o.groups(); g > 1 && o.OutC%g == 0 && in[0].C%g == 0 {
		// Grouped convolution: output channels [c0,c1) read only the
		// input channels of the groups they span.
		outPerG := o.OutC / g
		inPerG := in[0].C / g
		gLo := out.Off.C / outPerG
		gHi := (out.End(tensor.AxisC) - 1) / outPerG
		r.Off = r.Off.WithDim(tensor.AxisC, gLo*inPerG)
		r.Ext = r.Ext.WithDim(tensor.AxisC, (gHi-gLo+1)*inPerG)
	}
	// A dense convolution reads every input channel for any output
	// channel.
	return r
}

// SupportsPartition implements Op: spatial partition replicates the
// kernel; channel partition splits kernel and output and replicates the
// input (Table 1 rows 1 and 3). Both avoid partial-sum reduction.
func (Conv2D) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Conv2D) ChannelWise() bool { return false }

func (o Conv2D) String() string {
	return fmt.Sprintf("Conv2D(%dx%d,s%dx%d,d%dx%d,outC=%d)", o.KH, o.KW, o.StrideH, o.StrideW, o.DilH, o.DilW, o.OutC)
}

// DepthwiseConv2D convolves each input channel with its own kernel
// (channel multiplier 1): OutC == InC.
type DepthwiseConv2D struct {
	KH, KW           int
	StrideH, StrideW int
	DilH, DilW       int
	Pad              Padding
}

// NewDepthwiseConv2D returns a depthwise convolution with unit dilation.
func NewDepthwiseConv2D(kh, kw, strideH, strideW int, pad Padding) DepthwiseConv2D {
	return DepthwiseConv2D{KH: kh, KW: kw, StrideH: strideH, StrideW: strideW, DilH: 1, DilW: 1, Pad: pad}
}

func (o DepthwiseConv2D) hWin() window {
	return window{k: o.KH, stride: o.StrideH, dil: o.DilH, padLo: o.Pad.Top}
}
func (o DepthwiseConv2D) wWin() window {
	return window{k: o.KW, stride: o.StrideW, dil: o.DilW, padLo: o.Pad.Left}
}

// Kind implements Op.
func (DepthwiseConv2D) Kind() Kind { return KindDepthwiseConv2D }

// OutShape implements Op.
func (o DepthwiseConv2D) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("DepthwiseConv2D", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h, err := o.hWin().outExtent(in[0].H, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	w, err := o.wWin().outExtent(in[0].W, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(h, w, in[0].C), nil
}

// MACs implements Op: KH*KW per output element.
func (o DepthwiseConv2D) MACs(ext tensor.Shape, _ []tensor.Shape) int64 {
	return ext.Elems() * int64(o.KH) * int64(o.KW)
}

// KernelBytes implements Op: one KHxKW filter plus bias per channel.
func (o DepthwiseConv2D) KernelBytes(ext tensor.Shape, _ []tensor.Shape, dt tensor.DType) int64 {
	perChan := int64(o.KH)*int64(o.KW)*int64(dt.Size()) + int64(tensor.Int32.Size())
	return perChan * int64(ext.C)
}

// InputRegion implements Op: spatial receptive field, matching channels.
func (o DepthwiseConv2D) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := out // channel interval carries over unchanged
	r = spanToAxis(r, tensor.AxisH, o.hWin(), out, in[0].H)
	r = spanToAxis(r, tensor.AxisW, o.wWin(), out, in[0].W)
	return r
}

// SupportsPartition implements Op: every axis is independent.
func (DepthwiseConv2D) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op: depthwise convolution is the canonical
// channel-wise operator (heuristic h4).
func (DepthwiseConv2D) ChannelWise() bool { return true }

func (o DepthwiseConv2D) String() string {
	return fmt.Sprintf("DepthwiseConv2D(%dx%d,s%dx%d)", o.KH, o.KW, o.StrideH, o.StrideW)
}

// TransposeConv2D (a.k.a. deconvolution) upsamples by stride; used by
// the UNet decoder. Output spatial extent is in*stride + k - stride -
// padTop - padBottom (the usual transpose-convolution arithmetic).
type TransposeConv2D struct {
	KH, KW           int
	StrideH, StrideW int
	Pad              Padding
	OutC             int
}

// Kind implements Op.
func (TransposeConv2D) Kind() Kind { return KindTransposeConv2D }

// OutShape implements Op.
func (o TransposeConv2D) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("TransposeConv2D", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h := (in[0].H-1)*o.StrideH + o.KH - o.Pad.Top - o.Pad.Bottom
	w := (in[0].W-1)*o.StrideW + o.KW - o.Pad.Left - o.Pad.Right
	if h <= 0 || w <= 0 {
		return tensor.Shape{}, fmt.Errorf("ops: TransposeConv2D output %dx%d not positive", h, w)
	}
	return tensor.NewShape(h, w, o.OutC), nil
}

// MACs implements Op: each output element accumulates at most
// ceil(K/stride) taps per axis over InC channels.
func (o TransposeConv2D) MACs(ext tensor.Shape, in []tensor.Shape) int64 {
	tapsH := (o.KH + o.StrideH - 1) / o.StrideH
	tapsW := (o.KW + o.StrideW - 1) / o.StrideW
	return ext.Elems() * int64(tapsH) * int64(tapsW) * int64(in[0].C)
}

// KernelBytes implements Op.
func (o TransposeConv2D) KernelBytes(ext tensor.Shape, in []tensor.Shape, dt tensor.DType) int64 {
	perChan := int64(o.KH)*int64(o.KW)*int64(in[0].C)*int64(dt.Size()) + int64(tensor.Int32.Size())
	return perChan * int64(ext.C)
}

// transposeSpan maps output interval [o0,o1) back to the contributing
// input interval for a transposed convolution along one axis.
func transposeSpan(o0, o1, k, stride, padLo, inExt int) (int, int) {
	if o1 <= o0 {
		return 0, 0
	}
	// output o receives input i when o = i*stride - padLo + t, t in [0,k):
	// i ranges over ceil((o - k + 1 + padLo)/stride) .. floor((o + padLo)/stride).
	i0 := floorDiv(o0+padLo-k+1+stride-1, stride) // ceil((o0+padLo-k+1)/stride)
	i1 := floorDiv(o1-1+padLo, stride) + 1
	if i0 < 0 {
		i0 = 0
	}
	if i1 > inExt {
		i1 = inExt
	}
	if i1 < i0 {
		i1 = i0
	}
	return i0, i1
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// InputRegion implements Op.
func (o TransposeConv2D) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := tensor.WholeRegion(in[0])
	h0, h1 := transposeSpan(out.Off.H, out.End(tensor.AxisH), o.KH, o.StrideH, o.Pad.Top, in[0].H)
	w0, w1 := transposeSpan(out.Off.W, out.End(tensor.AxisW), o.KW, o.StrideW, o.Pad.Left, in[0].W)
	r.Off = tensor.NewShape(h0, w0, 0)
	r.Ext = tensor.NewShape(h1-h0, w1-w0, in[0].C)
	return r
}

// SupportsPartition implements Op.
func (TransposeConv2D) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (TransposeConv2D) ChannelWise() bool { return false }

func (o TransposeConv2D) String() string {
	return fmt.Sprintf("TransposeConv2D(%dx%d,s%dx%d,outC=%d)", o.KH, o.KW, o.StrideH, o.StrideW, o.OutC)
}

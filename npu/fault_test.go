package npu_test

import (
	"testing"

	"repro/npu"
)

func TestBuildModelByName(t *testing.T) {
	g, err := npu.BuildModelByName("MobileNetV2")
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() == 0 {
		t.Fatal("empty model")
	}
	if _, err := npu.BuildModelByName("nope"); err == nil {
		t.Fatal("unknown model did not error")
	}
}

func TestParseFaultSpec(t *testing.T) {
	p, err := npu.ParseFaultSpec("drop=0.05,kill=2@400000", 11)
	if err != nil {
		t.Fatal(err)
	}
	if p.DropRate != 0.05 || len(p.Deaths) != 1 || p.Seed != 11 {
		t.Errorf("parsed %+v", p)
	}
	if _, err := npu.ParseFaultSpec("bogus=1", 0); err == nil {
		t.Error("bad spec accepted")
	}
}

func TestRunWithFaultsCleanPlan(t *testing.T) {
	g := npu.BuildModel("TinyCNN")
	rep, err := npu.RunWithFaults(g, npu.Exynos2100Like(), npu.Halo(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded() {
		t.Error("fault-free run reported degraded")
	}
	if rep.LatencyMicros() <= 0 {
		t.Error("non-positive latency")
	}
}

func TestRunWithFaultsSurvivesCoreDeath(t *testing.T) {
	g := npu.BuildModel("TinyCNN")
	a := npu.Exynos2100Like()
	opt := npu.Stratum()
	clean, err := npu.Run(g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	plan := &npu.FaultPlan{Deaths: []npu.FaultDeath{
		{Core: 1, AtCycle: 0.5 * clean.Stats.TotalCycles},
	}}
	rep, err := npu.RunWithFaults(g, a, opt, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Degraded() || len(rep.Failures) != 1 || rep.Recovery == nil {
		t.Fatalf("degradation not reported: %+v", rep)
	}
	if rep.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("degraded run %.0f not slower than clean %.0f",
			rep.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
	if err := npu.ValidateRecovery(g, rep.Recovery); err != nil {
		t.Errorf("recovery changed numerics: %v", err)
	}
}

func TestReportGuardsZeroClock(t *testing.T) {
	a := npu.Exynos2100Like()
	g := npu.BuildModel("TinyCNN")
	rep, err := npu.Run(g, a, npu.Base())
	if err != nil {
		t.Fatal(err)
	}
	broken := *a
	broken.ClockMHz = 0
	rep.Arch = &broken
	if got := rep.LatencyMicros(); got != 0 {
		t.Errorf("zero-clock latency %g, want 0", got)
	}
}

package metrics

import (
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/plan"
)

// StratumReport is the paper's stratum-cost metric for one stratum:
// how much redundant halo computation buying the barrier-free chain
// cost, relative to the compute actually executed.
type StratumReport struct {
	Index  int
	Layers []int
	// ExecutedMACs is the compute lowered for the stratum's layers
	// (redundant work included), summed over cores from the program.
	ExecutedMACs int64
	// RedundantMACs is the extra compute versus the plain partition
	// plan (stratum.Stratum.RedundantMACs).
	RedundantMACs int64
	// RedundancyRatio is RedundantMACs / ExecutedMACs (0 when the
	// stratum executes nothing, e.g. a pure input stratum).
	RedundancyRatio float64
}

// CompileReport is the compile-pass wall-clock timing in milliseconds,
// plus the SPM fallback outcome of the compile driver.
type CompileReport struct {
	PartitionMillis float64
	ScheduleMillis  float64
	StratumMillis   float64
	EmitMillis      float64
	AdmitMillis     float64
	TotalMillis     float64
	// Fallback is how far the graceful-degradation chain backed off to
	// fit SPM ("none" when the requested configuration admitted as-is).
	Fallback string
	// Downgrades counts the fallback steps taken before admission.
	Downgrades int
}

// AttachCompile augments a run report with compile-side facts: the
// per-stratum halo-redundancy ratios and the compile-pass timings.
// Call it with the core.Result the simulated program came from.
func (r *Report) AttachCompile(res *core.Result) {
	r.Strata = StratumReports(res)
	tm := res.Timing
	r.Compile = &CompileReport{
		PartitionMillis: float64(tm.Partition.Nanoseconds()) / 1e6,
		ScheduleMillis:  float64(tm.Schedule.Nanoseconds()) / 1e6,
		StratumMillis:   float64(tm.Stratum.Nanoseconds()) / 1e6,
		EmitMillis:      float64(tm.Emit.Nanoseconds()) / 1e6,
		AdmitMillis:     float64(tm.Admit.Nanoseconds()) / 1e6,
		TotalMillis:     float64(tm.Total.Nanoseconds()) / 1e6,
		Fallback:        res.Fallback.String(),
		Downgrades:      len(res.Downgrades),
	}
}

// StratumReports computes per-stratum redundancy ratios from a compile
// result. Executed MACs come from the lowered program, so the ratios
// are exact for what the simulator runs, independent of whether a
// particular observed run completed.
func StratumReports(res *core.Result) []StratumReport {
	// Per-layer executed MACs from the instruction streams.
	perLayer := map[graph.LayerID]int64{}
	for _, stream := range res.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.Compute {
				perLayer[in.Layer] += in.MACs
			}
		}
	}
	out := make([]StratumReport, len(res.Strata))
	for i, s := range res.Strata {
		sr := StratumReport{Index: i, RedundantMACs: s.RedundantMACs}
		for _, id := range s.Layers {
			sr.Layers = append(sr.Layers, int(id))
			sr.ExecutedMACs += perLayer[id]
		}
		if sr.ExecutedMACs > 0 {
			sr.RedundancyRatio = float64(sr.RedundantMACs) / float64(sr.ExecutedMACs)
		}
		out[i] = sr
	}
	return out
}

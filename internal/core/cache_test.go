package core

import (
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/models"
)

func TestFingerprintSensitivity(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	base := Fingerprint(g, a, Base())

	// Rebuilding the same model must fingerprint identically — that is
	// what lets sweeps that rebuild graphs share compiles.
	if got := Fingerprint(models.TinyCNN(), a, Base()); got != base {
		t.Errorf("rebuilt graph fingerprints differ: %v vs %v", got, base)
	}
	// Each key component must react to its own input.
	if got := Fingerprint(models.ByNameMust("MobileNetV2"), a, Base()); got.Graph == base.Graph {
		t.Error("different model, same graph fingerprint")
	}
	if got := Fingerprint(g, arch.SingleCore(), Base()); got.Arch == base.Arch {
		t.Error("different arch, same arch fingerprint")
	}
	if got := Fingerprint(g, a, Stratum()); got.Opt == base.Opt {
		t.Error("different options, same option fingerprint")
	}
	opt := Base()
	opt.WeightScale = []float64{1, 0.9, 1.1}
	if got := Fingerprint(g, a, opt); got.Opt == base.Opt {
		t.Error("WeightScale ignored by the option fingerprint")
	}
	b := *a
	b.SyncBaseCycles++
	if got := Fingerprint(g, &b, Base()); got.Arch == base.Arch {
		t.Error("SyncBaseCycles ignored by the arch fingerprint")
	}
}

func TestCompileCachedBitIdentical(t *testing.T) {
	ResetCache()
	defer ResetCache()
	g := models.TinyCNN()
	a := arch.Exynos2100Like()

	fresh, err := Compile(g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	miss, err := CompileCached(g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	// A second call — even through a rebuilt graph — must hit.
	hit, err := CompileCached(models.TinyCNN(), a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if hits, misses := CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if hit.Program != miss.Program {
		t.Error("cache hit rebuilt the program instead of sharing it")
	}
	if !reflect.DeepEqual(fresh.Plans, miss.Plans) ||
		!reflect.DeepEqual(fresh.Order, miss.Order) ||
		fresh.RedundantMACs != miss.RedundantMACs {
		t.Error("cached result differs from a fresh compile")
	}
	if len(fresh.Program.Cores) != len(miss.Program.Cores) {
		t.Fatal("program shape differs")
	}
	for c := range fresh.Program.Cores {
		if !reflect.DeepEqual(fresh.Program.Cores[c], miss.Program.Cores[c]) {
			t.Errorf("core %d instruction stream differs from fresh compile", c)
		}
	}
}

func TestCompileCachedDistinguishesPoints(t *testing.T) {
	ResetCache()
	defer ResetCache()
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	for _, opt := range []Options{Base(), Halo(), Stratum()} {
		if _, err := CompileCached(g, a, opt); err != nil {
			t.Fatal(err)
		}
	}
	if hits, misses := CacheStats(); hits != 0 || misses != 3 {
		t.Errorf("stats = %d hits / %d misses, want 0/3", hits, misses)
	}
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/tensor"
)

// DeepLabV3Plus builds DeepLabV3+ semantic segmentation (513x513x3,
// INT16 — the one INT16 model in Table 2): a MobileNetV2 backbone at
// output stride 16 (the final stride-2 stage runs at stride 1 with
// atrous rate 2), the ASPP module with three dilated branches and
// image-level pooling, and the decoder that fuses a low-level feature
// before the final upsampling.
func DeepLabV3Plus() *graph.Graph {
	b := newBuilder("DeepLabV3+", tensor.Int16)
	in := b.input(tensor.NewShape(513, 513, 3))

	// Backbone: MobileNetV2 with the 160-channel group dilated.
	x := b.conv("conv1", in, 3, 2, 32) // 257x257
	var lowLevel graph.LayerID
	blk := 0
	for si, spec := range mobileNetV2Specs {
		for r := 0; r < spec.n; r++ {
			stride := spec.s
			if r > 0 {
				stride = 1
			}
			dilated := si >= 5 // output stride 16: stop downsampling
			if dilated && stride == 2 {
				stride = 1
			}
			name := fmt.Sprintf("block%d", blk)
			inC := b.shape(x).C
			y := x
			if spec.t != 1 {
				y = b.conv(name+"_expand", y, 1, 1, inC*spec.t)
			}
			if dilated {
				y = b.dwconvDilated(name+"_dw", y, 3, 2)
			} else {
				y = b.dwconv(name+"_dw", y, 3, stride)
			}
			y = b.convLinear(name+"_project", y, 1, 1, spec.c)
			if stride == 1 && inC == spec.c {
				y = b.add(name+"_add", x, y)
			}
			x = y
			if blk == 2 {
				lowLevel = x // 129x129x24 low-level feature
			}
			blk++
		}
	}
	// x: 33x33x320 at output stride 16.

	// ASPP: 1x1, three atrous 3x3 branches, and image pooling.
	a1 := b.conv("aspp_1x1", x, 1, 1, 256)
	var branches []graph.LayerID
	branches = append(branches, a1)
	for _, rate := range []int{6, 12, 18} {
		name := fmt.Sprintf("aspp_r%d", rate)
		s := b.shape(x)
		c := b.g.MustAdd(name, ops.Conv2D{
			KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilH: rate, DilW: rate,
			Pad:  ops.SamePad(s, 3, 3, 1, 1, rate, rate),
			OutC: 256,
		}, x)
		branches = append(branches, b.g.MustAdd(name+"_relu", ops.Activation{Func: ops.ReLU}, c))
	}
	ip := b.g.MustAdd("aspp_pool", ops.GlobalAvgPool{}, x)
	ip = b.conv("aspp_pool_1x1", ip, 1, 1, 256)
	ip = b.g.MustAdd("aspp_pool_up", ops.Resize{ScaleH: 33, ScaleW: 33, Mode: ops.Bilinear}, ip)
	branches = append(branches, ip)

	aspp := b.concat("aspp_concat", branches...)
	aspp = b.conv("aspp_project", aspp, 1, 1, 256)

	// Decoder: upsample x4 (33 -> 132, cropped to 129), fuse the
	// low-level feature, refine with separable convolutions.
	up := b.g.MustAdd("decoder_up", ops.Resize{ScaleH: 4, ScaleW: 4, Mode: ops.Bilinear}, aspp)
	up = b.g.MustAdd("decoder_up_crop", ops.Crop{Bottom: 3, Right: 3}, up) // 129x129

	ll := b.conv("decoder_lowlevel", lowLevel, 1, 1, 48)
	dec := b.concat("decoder_concat", up, ll)
	dec = b.dwconv("decoder_sep1_dw", dec, 3, 1)
	dec = b.conv("decoder_sep1_pw", dec, 1, 1, 256)
	dec = b.dwconv("decoder_sep2_dw", dec, 3, 1)
	dec = b.conv("decoder_sep2_pw", dec, 1, 1, 256)

	logits := b.convLinear("logits", dec, 1, 1, 21) // PASCAL VOC classes
	out := b.g.MustAdd("logits_up", ops.Resize{ScaleH: 4, ScaleW: 4, Mode: ops.Bilinear}, logits)
	out = b.g.MustAdd("logits_crop", ops.Crop{Bottom: 3, Right: 3}, out) // 513x513
	b.g.MustAdd("softmax", ops.Softmax{}, out)
	return b.g
}

package sim_test

import (
	. "repro/internal/sim"

	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
)

// compileOn compiles g for a subset of the global architecture.
func compileOn(t *testing.T, g *graph.Graph, global *arch.Arch, cores []int) Placement {
	t.Helper()
	sub, err := global.Subset(cores)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Compile(g, sub, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	return Placement{Program: res.Program, Cores: cores}
}

func TestConcurrentTwoNetworks(t *testing.T) {
	global := arch.Exynos2100Like()
	g1 := models.TinyCNN()
	g2 := models.ConvChain(4, 48, 48, 16)

	p1 := compileOn(t, g1, global, []int{0})
	p2 := compileOn(t, g2, global, []int{1, 2})

	out, err := RunConcurrent(global, []Placement{p1, p2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Stats.ProgramCycles) != 2 {
		t.Fatalf("program cycles = %v", out.Stats.ProgramCycles)
	}
	for i, pc := range out.Stats.ProgramCycles {
		if pc <= 0 {
			t.Errorf("program %d never finished", i)
		}
		if pc > out.Stats.TotalCycles {
			t.Errorf("program %d finish %.0f beyond total %.0f", i, pc, out.Stats.TotalCycles)
		}
	}
	// Every core computed something.
	for c, cs := range out.Stats.PerCore {
		if cs.MACs <= 0 {
			t.Errorf("core %d executed no MACs", c)
		}
	}
}

func TestConcurrentMatchesIsolatedWhenBusIsAmple(t *testing.T) {
	// With an effectively infinite bus, co-running programs on
	// disjoint cores must finish exactly as fast as running alone.
	global := arch.Exynos2100Like()
	global.BusBytesPerCycle = 1e9
	g1 := models.TinyCNN()
	g2 := models.ConvChain(4, 48, 48, 16)
	p1 := compileOn(t, g1, global, []int{0})
	p2 := compileOn(t, g2, global, []int{1, 2})

	alone1, err := Run(p1.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	alone2, err := Run(p2.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunConcurrent(global, []Placement{p1, p2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := both.Stats.ProgramCycles[0] - alone1.Stats.TotalCycles; d > 1 || d < -1 {
		t.Errorf("program 1 concurrent %.0f != alone %.0f", both.Stats.ProgramCycles[0], alone1.Stats.TotalCycles)
	}
	if d := both.Stats.ProgramCycles[1] - alone2.Stats.TotalCycles; d > 1 || d < -1 {
		t.Errorf("program 2 concurrent %.0f != alone %.0f", both.Stats.ProgramCycles[1], alone2.Stats.TotalCycles)
	}
}

func TestConcurrentBusContentionSlowsBoth(t *testing.T) {
	// With a narrow bus, co-running programs must be slower than when
	// each had the bus to itself.
	global := arch.Exynos2100Like()
	global.BusBytesPerCycle = 8
	g1 := models.ConvChain(3, 64, 64, 16)
	g2 := models.ConvChain(3, 64, 64, 16)
	p1 := compileOn(t, g1, global, []int{0})
	p2 := compileOn(t, g2, global, []int{1, 2})

	alone1, err := Run(p1.Program, Config{})
	if err != nil {
		t.Fatal(err)
	}
	both, err := RunConcurrent(global, []Placement{p1, p2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if both.Stats.ProgramCycles[0] <= alone1.Stats.TotalCycles {
		t.Errorf("no contention visible: concurrent %.0f <= alone %.0f",
			both.Stats.ProgramCycles[0], alone1.Stats.TotalCycles)
	}
}

func TestConcurrentRejectsBadPlacements(t *testing.T) {
	global := arch.Exynos2100Like()
	g := models.TinyCNN()
	p := compileOn(t, g, global, []int{0})

	// Overlapping cores.
	if _, err := RunConcurrent(global, []Placement{p, p}, Config{}); err == nil {
		t.Error("overlapping placement accepted")
	}
	// Out-of-range core.
	bad := p
	bad.Cores = []int{7}
	if _, err := RunConcurrent(global, []Placement{bad}, Config{}); err == nil {
		t.Error("out-of-range core accepted")
	}
	// Mismatched width.
	bad2 := p
	bad2.Cores = []int{0, 1}
	if _, err := RunConcurrent(global, []Placement{bad2}, Config{}); err == nil {
		t.Error("width mismatch accepted")
	}
}

func TestSubsetArch(t *testing.T) {
	a := arch.Exynos2100Like()
	sub, err := a.Subset([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumCores() != 2 {
		t.Fatalf("cores = %d", sub.NumCores())
	}
	if sub.Cores[0].Name != "P2" || sub.Cores[1].Name != "P0" {
		t.Errorf("subset order wrong: %v", sub.Cores)
	}
	if _, err := a.Subset(nil); err == nil {
		t.Error("empty subset accepted")
	}
	if _, err := a.Subset([]int{9}); err == nil {
		t.Error("bad index accepted")
	}
}

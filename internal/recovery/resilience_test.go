package recovery

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// hangWith compiles g for all of a's cores and runs it under the plan
// with a watchdog, requiring a hang detection.
func hangWith(t *testing.T, g *graph.Graph, a *arch.Arch, opt core.Options, cfg sim.Config) *sim.HangDetected {
	t.Helper()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = sim.Run(res.Program, cfg)
	var hd *sim.HangDetected
	if !errors.As(err, &hd) {
		t.Fatalf("expected hang detection, got %v", err)
	}
	return hd
}

func TestRecoverFromHangDetected(t *testing.T) {
	// A silent hang, caught by the watchdog, recovers exactly like an
	// announced death: the hung core is retired and the suffix re-runs
	// on the survivors, bit-exact.
	g := models.ConvChain(5, 48, 48, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	clean := cleanCycles(t, g, a, opt)
	cfg := sim.Config{
		Faults:         &fault.Plan{Hangs: []fault.Hang{{Core: 1, AtCycle: 0.4 * clean}}},
		WatchdogCycles: 0.05 * clean,
	}
	hd := hangWith(t, g, a, opt, cfg)
	r, err := RecoverFrom(g, a, hd, Options{Opt: opt, Sim: cfg})
	if err != nil {
		t.Fatalf("recover from hang: %v", err)
	}
	if len(r.Hangs) != 1 || len(r.Failures) != 0 {
		t.Fatalf("handled %d hangs / %d failures, want 1 / 0", len(r.Hangs), len(r.Failures))
	}
	if !reflect.DeepEqual(r.DeadCores, []int{1}) {
		t.Errorf("dead cores = %v, want [1]", r.DeadCores)
	}
	for _, s := range r.Survivors {
		if s == 1 {
			t.Error("hung core listed as survivor")
		}
	}
	if r.TotalCycles <= hd.AtCycle {
		t.Errorf("degraded latency %.0f not beyond detection point %.0f", r.TotalCycles, hd.AtCycle)
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("recovered numerics wrong: %v", err)
	}
	merged := r.MergedStats()
	if merged.TotalCycles != r.TotalCycles {
		t.Errorf("merged cycles %.0f != result %.0f", merged.TotalCycles, r.TotalCycles)
	}
	// The wasted pre-detection work must show up in the account.
	if merged.TotalMACs() < g.TotalMACs() {
		t.Errorf("merged MACs %d below one clean inference %d", merged.TotalMACs(), g.TotalMACs())
	}
}

func TestCascadedHangThenKill(t *testing.T) {
	// Core 0 silently hangs and is detected; the remapped two-core run
	// then loses core 1 to an announced death (plan times are per-run
	// local clocks), and Remap runs a second time onto core 2 alone.
	// The final compiled suffix must be bit-identical to a fresh
	// compile on the final survivor set.
	g := models.ConvChain(5, 48, 48, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	clean := cleanCycles(t, g, a, opt)
	cfg := sim.Config{
		Faults: &fault.Plan{
			Hangs:  []fault.Hang{{Core: 0, AtCycle: 0.2 * clean}},
			Deaths: []fault.Death{{Core: 1, AtCycle: 0.5 * clean}},
		},
		WatchdogCycles: 0.05 * clean,
	}
	// The watchdog fires around 0.2*clean, well before the death at
	// 0.5*clean, so the first failure is the hang.
	hd := hangWith(t, g, a, opt, cfg)
	if !reflect.DeepEqual(hd.Cores, []int{0}) {
		t.Fatalf("first failure stalls cores %v, want [0]", hd.Cores)
	}
	r, err := RecoverFrom(g, a, hd, Options{Opt: opt, Sim: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hangs) != 1 || len(r.Failures) != 1 {
		t.Fatalf("handled %d hangs / %d failures, want 1 / 1 (dead: %v)",
			len(r.Hangs), len(r.Failures), r.DeadCores)
	}
	if r.Failures[0].Core != 1 {
		t.Errorf("cascaded death on core %d, want 1", r.Failures[0].Core)
	}
	if !reflect.DeepEqual(r.Survivors, []int{2}) {
		t.Fatalf("survivors = %v, want [2]", r.Survivors)
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("recovered numerics wrong: %v", err)
	}

	// Fresh compile of the same remainder on the final survivor set:
	// instruction streams and clean simulations must match the cached
	// program the recovery loop actually ran.
	sub, err := a.Subset(r.Survivors)
	if err != nil {
		t.Fatal(err)
	}
	suffix := g
	if len(r.Completed) > 0 {
		suffix, _, err = SuffixGraph(g, r.Completed)
		if err != nil {
			t.Fatal(err)
		}
	}
	fresh, err := core.Compile(suffix, sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Program.Cores, r.Compiled.Program.Cores) {
		t.Error("recovered program's instruction streams differ from a fresh compile")
	}
	a1, err := sim.Run(r.Compiled.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sim.Run(fresh.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.Stats, a2.Stats) {
		t.Error("recovered program simulates differently from a fresh compile")
	}
}

// reexecStratum numerically re-executes a corrupted stratum's rebuilt
// graph with checkpoint inputs taken from the whole-graph reference and
// proves every recomputed layer bit-exact.
func reexecStratum(t *testing.T, g *graph.Graph, sub *graph.Graph, origin map[graph.LayerID]graph.LayerID,
	ref map[graph.LayerID]*exec.Tensor) {
	t.Helper()
	out := make(map[graph.LayerID]*exec.Tensor, sub.Len())
	for _, l := range sub.Layers() {
		orig := origin[l.ID]
		if l.IsInput() {
			if g.Layer(orig).IsInput() {
				tt := exec.NewTensor(l.OutShape)
				tt.Fill(0xBEEF + uint64(orig))
				out[l.ID] = tt
			} else {
				out[l.ID] = ref[orig]
			}
			continue
		}
		ins := make([]*exec.View, len(l.Inputs))
		for j, pid := range l.Inputs {
			ins[j] = exec.WholeView(out[pid])
		}
		v, err := exec.Apply(l.Op, tensor.WholeRegion(l.OutShape), ins, sub.InShapes(l), exec.WeightsFor(orig))
		if err != nil {
			t.Fatalf("re-execute %s: %v", l.Name, err)
		}
		tt := exec.NewTensor(l.OutShape)
		v.CopyInto(tt)
		out[l.ID] = tt
		if tt.Checksum() != ref[orig].Checksum() || !tt.Equal(ref[orig]) {
			t.Errorf("re-executed layer %s differs from reference", l.Name)
		}
	}
}

func TestStratumReexecutionRepairsCorruption(t *testing.T) {
	// Bit flips detected at stratum boundaries re-execute only the
	// corrupted stratum: its inputs are DRAM-resident, so StratumGraph
	// plus the reference executor reproduces the checkpointed bits.
	g := models.ConvChain(5, 48, 48, 16)
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{
		Faults: &fault.Plan{Seed: 13, FlipRate: 0.25},
	})
	if err != nil {
		t.Fatalf("flip run failed: %v", err)
	}
	if len(out.Corruptions) == 0 {
		t.Fatal("25% flip rate produced no detected corruptions")
	}
	ref, err := exec.RunReference(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range out.Corruptions {
		layers := sim.StratumLayers(res.Program, c.Stratum)
		// Checksum catches the corruption: flipping any element of a
		// stratum output changes the digest.
		for _, id := range layers {
			if g.Layer(id).IsInput() {
				continue
			}
			bad := exec.NewTensor(ref[id].Shape)
			copy(bad.Data, ref[id].Data)
			bad.Data[len(bad.Data)/2] ^= 1 << 6
			if bad.Checksum() == ref[id].Checksum() {
				t.Fatalf("layer %d: checksum blind to a single bit flip", id)
			}
		}
		var compute []graph.LayerID
		for _, id := range layers {
			if !g.Layer(id).IsInput() {
				compute = append(compute, id)
			}
		}
		if len(compute) == 0 {
			continue
		}
		sub, origin, err := StratumGraph(g, compute)
		if err != nil {
			t.Fatalf("stratum %d: %v", c.Stratum, err)
		}
		// Blast radius is bounded: only the corrupted stratum rebuilds.
		n := 0
		for _, l := range sub.Layers() {
			if !l.IsInput() {
				n++
			}
		}
		if n != len(compute) {
			t.Errorf("stratum %d: rebuilt %d layers, want %d", c.Stratum, n, len(compute))
		}
		reexecStratum(t, g, sub, origin, ref)
	}
}

func TestChecksumDetectsAnySingleFlip(t *testing.T) {
	tt := exec.NewTensor(tensor.NewShape(6, 5, 4))
	tt.Fill(0x5EED)
	sum := tt.Checksum()
	for i := range tt.Data {
		for bit := 0; bit < 32; bit += 7 {
			tt.Data[i] ^= 1 << bit
			if tt.Checksum() == sum {
				t.Fatalf("checksum blind to flip of bit %d at element %d", bit, i)
			}
			tt.Data[i] ^= 1 << bit
		}
	}
	if tt.Checksum() != sum {
		t.Fatal("checksum not deterministic after restore")
	}
	// Position sensitivity: swapping two unequal elements must change
	// the digest even though the multiset of values is unchanged.
	i, j := 0, len(tt.Data)-1
	for tt.Data[i] == tt.Data[j] && j > 0 {
		j--
	}
	tt.Data[i], tt.Data[j] = tt.Data[j], tt.Data[i]
	if tt.Checksum() == sum {
		t.Error("checksum blind to element reordering")
	}
}

// Command npubench regenerates every table and figure of the paper's
// evaluation section on the simulated platform.
//
// Usage:
//
//	npubench                      # everything
//	npubench -experiment fig11    # one experiment
//	npubench -experiment table4
//	npubench -bench-json BENCH_sim.json -bench-time 200ms
//	npubench -experiment dse -dse-seed 1 -dse-json BENCH_dse.json
//	npubench -experiment fig11 -cpuprofile cpu.pprof -memprofile mem.pprof
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/arch"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/dse"
	"repro/internal/experiments"
	"repro/internal/parallel"
)

// fatal reports err and exits with its typed exit code (see the
// cliutil exit-code table in -help): unfit schedules, SPM overflows,
// core failures, and cancellations each get a stable number scripts
// can branch on.
func fatal(prefix string, err error) {
	fmt.Fprintf(os.Stderr, "npubench: %s%v\n", prefix, err)
	os.Exit(cliutil.ExitCode(err))
}

func main() {
	which := flag.String("experiment", "all", "fig11, fig12, table1, table2, table4, table5, ablation, concurrent, dse, faults, loadgen, metrics, resilience, spm, tenancy, or all")
	metricsOnly := flag.Bool("metrics", false, "print the Figure-10-style utilization table for the Table 2 nets (alias for -experiment metrics)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for compile/simulate sweeps (1 forces serial)")
	benchJSON := flag.String("bench-json", "", "A/B-benchmark the event simulator engine against the reference engine, write the report to this file, and exit")
	benchTime := flag.Duration("bench-time", time.Second, "per-measurement duration for -bench-json")
	loadgenJSON := flag.String("loadgen-json", "BENCH_loadgen.json", "output file for the -experiment loadgen fleet-replay report")
	tenancyJSON := flag.String("tenancy-json", "BENCH_tenancy.json", "output file for the -experiment tenancy multi-tenant serving report")
	tenancySeed := flag.Uint64("tenancy-seed", 1, "seed for the -experiment tenancy Poisson replay (same seed, byte-identical report)")
	resilienceJSON := flag.String("resilience-json", "BENCH_resilience.json", "output file for the -experiment resilience hang/SDC detection report")
	resilienceSeed := flag.Uint64("resilience-seed", 1, "seed for the -experiment resilience fault decisions (same seed, byte-identical report)")
	dseJSON := flag.String("dse-json", "BENCH_dse.json", "output file for the -experiment dse schedule-search report")
	dseModels := flag.String("dse-models", "", "comma-separated models for -experiment dse (empty = all Table 2)")
	dseSeed := flag.Uint64("dse-seed", 1, "seed for the -experiment dse search (same seed, byte-identical report modulo wall-clock)")
	dseBase := flag.String("dse-base", "stratum", "heuristic baseline configuration the dse search must beat: base, halo, stratum")
	dseRestarts := flag.Int("dse-restarts", 0, "dse hill-climbing restarts (0 = default)")
	dseIters := flag.Int("dse-iters", 0, "dse generations per restart (0 = default)")
	dseBeam := flag.Int("dse-beam", 0, "dse beam width (0 = default)")
	dseNeighbors := flag.Int("dse-neighbors", 0, "dse perturbations per beam genome per generation (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	strictSPM := flag.Bool("strict-spm", true, "fail experiments on SPM overflow in the simulator; =false tolerates over-budget schedules")
	regenGolden := flag.Bool("regen-golden", false, "regenerate the simulator golden files under internal/{sim,trace}/testdata and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), "\n"+cliutil.ExitCodeDoc)
	}
	flag.Parse()
	parallel.SetWorkers(*jobs)
	experiments.StrictSPM = *strictSPM
	if *metricsOnly {
		*which = "metrics"
	}

	if *regenGolden {
		if err := regenGoldens(); err != nil {
			fatal("", err)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "npubench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "npubench: %v\n", err)
			}
		}()
	}

	if *benchJSON != "" {
		if err := runSimBench(os.Stdout, *benchJSON, *benchTime); err != nil {
			fatal("bench: ", err)
		}
		return
	}

	run := func(name string, f func() error) {
		if *which != "all" && *which != name {
			return
		}
		fmt.Printf("==== %s ====\n", name)
		if err := f(); err != nil {
			fatal(name+": ", err)
		}
		fmt.Println()
	}

	run("table1", func() error {
		experiments.PrintTable1(os.Stdout, experiments.Table1())
		return nil
	})
	run("table2", func() error {
		experiments.PrintTable2(os.Stdout, experiments.Table2())
		return nil
	})
	run("fig11", func() error {
		rows, err := experiments.Fig11()
		if err != nil {
			return err
		}
		experiments.PrintFig11(os.Stdout, rows)
		return nil
	})
	run("fig12", func() error {
		variants, err := experiments.Fig12()
		if err != nil {
			return err
		}
		return experiments.PrintFig12(os.Stdout, variants, arch.Exynos2100Like())
	})
	run("table4", func() error {
		rows, err := experiments.Table4()
		if err != nil {
			return err
		}
		experiments.PrintTable4(os.Stdout, rows)
		return nil
	})
	run("table5", func() error {
		rows, err := experiments.Table5()
		if err != nil {
			return err
		}
		experiments.PrintTable5(os.Stdout, rows)
		return nil
	})
	run("ablation", func() error {
		return experiments.PrintAblations(os.Stdout)
	})
	run("concurrent", func() error {
		rows, err := experiments.Concurrent()
		if err != nil {
			return err
		}
		experiments.PrintConcurrent(os.Stdout, rows)
		return nil
	})
	run("faults", func() error {
		return experiments.PrintFaults(os.Stdout, "MobileNetV2")
	})
	run("spm", func() error {
		return spmGate(os.Stdout)
	})
	run("loadgen", func() error {
		return runLoadgen(os.Stdout, *loadgenJSON)
	})
	run("tenancy", func() error {
		return runTenancy(os.Stdout, *tenancyJSON, *tenancySeed)
	})
	run("resilience", func() error {
		return runResilience(os.Stdout, *resilienceJSON, *resilienceSeed)
	})
	run("dse", func() error {
		return runDSE(os.Stdout, dseParams{
			json:    *dseJSON,
			models:  *dseModels,
			seed:    *dseSeed,
			jobs:    *jobs,
			baseCfg: *dseBase,
			params: dse.Params{
				Restarts:  *dseRestarts,
				Iters:     *dseIters,
				Beam:      *dseBeam,
				Neighbors: *dseNeighbors,
			},
		})
	})
	run("metrics", func() error {
		for _, opt := range []core.Options{core.Base(), core.Stratum()} {
			rows, err := experiments.Utilization(opt)
			if err != nil {
				return err
			}
			experiments.PrintUtilization(os.Stdout, opt.Name(), rows)
		}
		return nil
	})
}

package models

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// InceptionV3 builds the Szegedy et al. InceptionV3 classifier
// (299x299x3, INT8): the convolutional stem, three 35x35 Inception-A
// blocks, a grid reduction, four 17x17 Inception-C blocks with 1x7/7x1
// factorized convolutions, a second reduction, two 8x8 Inception-E
// blocks, and the classifier head.
func InceptionV3() *graph.Graph {
	b := newBuilder("InceptionV3", tensor.Int8)
	in := b.input(tensor.NewShape(299, 299, 3))

	// Stem: 299 -> 149 -> 147 -> 147 -> 73 -> 71 -> 35.
	x := b.convValid("stem_conv1", in, 3, 2, 32) // 149x149x32
	x = b.convValid("stem_conv2", x, 3, 1, 32)   // 147x147x32
	x = b.conv("stem_conv3", x, 3, 1, 64)        // 147x147x64
	x = b.maxpool("stem_pool1", x, 3, 2)         // 73x73x64
	x = b.convValid("stem_conv4", x, 1, 1, 80)   // 73x73x80
	x = b.convValid("stem_conv5", x, 3, 1, 192)  // 71x71x192
	x = b.maxpool("stem_pool2", x, 3, 2)         // 35x35x192

	// Three Inception-A blocks at 35x35.
	for i, poolC := range []int{32, 64, 64} {
		x = inceptionA(b, fmt.Sprintf("mixedA%d", i), x, poolC)
	}

	// Grid reduction 35 -> 17.
	x = inceptionB(b, "reductionA", x)

	// Four Inception-C blocks at 17x17 with growing 7x7 channels.
	for i, c7 := range []int{128, 160, 160, 192} {
		x = inceptionC(b, fmt.Sprintf("mixedC%d", i), x, c7)
	}

	// Grid reduction 17 -> 8.
	x = inceptionD(b, "reductionB", x)

	// Two Inception-E blocks at 8x8.
	for i := 0; i < 2; i++ {
		x = inceptionE(b, fmt.Sprintf("mixedE%d", i), x)
	}

	b.classifierHead(x, 1000)
	return b.g
}

// inceptionA is the 35x35 block: 1x1, 5x5, double-3x3, and pool
// branches concatenated.
func inceptionA(b *builder, name string, in graph.LayerID, poolC int) graph.LayerID {
	br1 := b.conv(name+"_b1_1x1", in, 1, 1, 64)

	br2 := b.conv(name+"_b2_1x1", in, 1, 1, 48)
	br2 = b.conv(name+"_b2_5x5", br2, 5, 1, 64)

	br3 := b.conv(name+"_b3_1x1", in, 1, 1, 64)
	br3 = b.conv(name+"_b3_3x3a", br3, 3, 1, 96)
	br3 = b.conv(name+"_b3_3x3b", br3, 3, 1, 96)

	br4 := b.avgpoolSame(name+"_b4_pool", in, 3, 1)
	br4 = b.conv(name+"_b4_1x1", br4, 1, 1, poolC)

	return b.concat(name+"_concat", br1, br2, br3, br4)
}

// inceptionB is the 35->17 grid reduction.
func inceptionB(b *builder, name string, in graph.LayerID) graph.LayerID {
	br1 := b.convValid(name+"_b1_3x3", in, 3, 2, 384)

	br2 := b.conv(name+"_b2_1x1", in, 1, 1, 64)
	br2 = b.conv(name+"_b2_3x3a", br2, 3, 1, 96)
	br2 = b.convValid(name+"_b2_3x3b", br2, 3, 2, 96)

	br3 := b.maxpool(name+"_b3_pool", in, 3, 2)

	return b.concat(name+"_concat", br1, br2, br3)
}

// inceptionC is the 17x17 block with factorized 7x7 convolutions.
func inceptionC(b *builder, name string, in graph.LayerID, c7 int) graph.LayerID {
	br1 := b.conv(name+"_b1_1x1", in, 1, 1, 192)

	br2 := b.conv(name+"_b2_1x1", in, 1, 1, c7)
	br2 = b.convRect(name+"_b2_1x7", br2, 1, 7, c7)
	br2 = b.convRect(name+"_b2_7x1", br2, 7, 1, 192)

	br3 := b.conv(name+"_b3_1x1", in, 1, 1, c7)
	br3 = b.convRect(name+"_b3_7x1a", br3, 7, 1, c7)
	br3 = b.convRect(name+"_b3_1x7a", br3, 1, 7, c7)
	br3 = b.convRect(name+"_b3_7x1b", br3, 7, 1, c7)
	br3 = b.convRect(name+"_b3_1x7b", br3, 1, 7, 192)

	br4 := b.avgpoolSame(name+"_b4_pool", in, 3, 1)
	br4 = b.conv(name+"_b4_1x1", br4, 1, 1, 192)

	return b.concat(name+"_concat", br1, br2, br3, br4)
}

// inceptionD is the 17->8 grid reduction.
func inceptionD(b *builder, name string, in graph.LayerID) graph.LayerID {
	br1 := b.conv(name+"_b1_1x1", in, 1, 1, 192)
	br1 = b.convValid(name+"_b1_3x3", br1, 3, 2, 320)

	br2 := b.conv(name+"_b2_1x1", in, 1, 1, 192)
	br2 = b.convRect(name+"_b2_1x7", br2, 1, 7, 192)
	br2 = b.convRect(name+"_b2_7x1", br2, 7, 1, 192)
	br2 = b.convValid(name+"_b2_3x3", br2, 3, 2, 192)

	br3 := b.maxpool(name+"_b3_pool", in, 3, 2)

	return b.concat(name+"_concat", br1, br2, br3)
}

// inceptionE is the 8x8 block with split 1x3/3x1 branches.
func inceptionE(b *builder, name string, in graph.LayerID) graph.LayerID {
	br1 := b.conv(name+"_b1_1x1", in, 1, 1, 320)

	br2 := b.conv(name+"_b2_1x1", in, 1, 1, 384)
	br2a := b.convRect(name+"_b2_1x3", br2, 1, 3, 384)
	br2b := b.convRect(name+"_b2_3x1", br2, 3, 1, 384)
	br2c := b.concat(name+"_b2_concat", br2a, br2b)

	br3 := b.conv(name+"_b3_1x1", in, 1, 1, 448)
	br3 = b.conv(name+"_b3_3x3", br3, 3, 1, 384)
	br3a := b.convRect(name+"_b3_1x3", br3, 1, 3, 384)
	br3b := b.convRect(name+"_b3_3x1", br3, 3, 1, 384)
	br3c := b.concat(name+"_b3_concat", br3a, br3b)

	br4 := b.avgpoolSame(name+"_b4_pool", in, 3, 1)
	br4 = b.conv(name+"_b4_1x1", br4, 1, 1, 192)

	return b.concat(name+"_concat", br1, br2c, br3c, br4)
}

// InceptionV3Stem builds only the stem region of InceptionV3 (the
// workload of the paper's Table 5 and Figure 12 experiments).
func InceptionV3Stem() *graph.Graph {
	full := InceptionV3()
	// The stem is everything up to and including stem_pool2: locate it.
	n := 0
	for i, l := range full.Layers() {
		if l.Name == "stem_pool2" {
			n = i + 1
		}
	}
	sub, err := full.Subgraph("InceptionV3-stem", n)
	if err != nil {
		panic(err)
	}
	return sub
}

// Tracing: compile the InceptionV3 stem, simulate with trace
// collection, print a Gantt timeline of the software pipeline, and
// export a Chrome trace.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/npu"
)

func main() {
	// A small stem network keeps the timeline readable.
	g := npu.NewGraph("stem", npu.Int8)
	in := g.Input("input", npu.NewShape(128, 128, 3))
	c1 := g.MustAdd("conv1", npu.NewConv2D(3, 3, 2, 2, 32, npu.Padding{}), in)
	c2 := g.MustAdd("conv2", npu.NewConv2D(3, 3, 1, 1, 32, npu.Padding{}), c1)
	c3 := g.MustAdd("conv3", npu.NewConv2D(3, 3, 1, 1, 64,
		npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c2)
	g.MustAdd("pool", npu.MaxPool2D{KH: 3, KW: 3, StrideH: 2, StrideW: 2}, c3)

	for _, opt := range []npu.Options{npu.Base(), npu.Halo()} {
		res, err := npu.Compile(g, npu.Exynos2100Like(), opt)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := npu.Simulate(res, true)
		if err != nil {
			log.Fatal(err)
		}
		rep.Config = opt.Name()
		fmt.Printf("\n%s: %.1f us\n", opt.Name(), rep.LatencyMicros())
		if err := rep.WriteGantt(os.Stdout, 110); err != nil {
			log.Fatal(err)
		}
	}

	// Export the optimized run for chrome://tracing.
	res, err := npu.Compile(g, npu.Exynos2100Like(), npu.Stratum())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := npu.Simulate(res, true)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("stem_trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := rep.WriteChromeTrace(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote stem_trace.json (open in chrome://tracing)")
}

// Command npuload is the fleet-scale load generator: it drives
// simulated inference requests — millions per second in replay mode —
// through pools of simulated devices and reports throughput and
// p50/p90/p99/p99.9 latency per offered load.
//
// With no -target it runs in replay mode: each distinct (model,
// cores, config) point of the request mix is compiled and simulated
// exactly once, and every request replays the cached result through a
// virtual-time device model, so a million-request sweep finishes in
// well under a second. With -target it drives a live npusim -serve
// endpoint over HTTP instead.
//
// Usage:
//
//	npuload                                    # default Table 2 mix, capacity sweep
//	npuload -requests 5000000 -rates 20000,80000,200000
//	npuload -mix "MobileNetV2=3,UNet=1" -batch-window-us 2000
//	npuload -arrival closed -clients 256 -think-us 5000
//	npuload -target http://127.0.0.1:8080 -arrival closed -clients 8 -requests 200
//	npuload -seed 7 -out BENCH_loadgen.json -csv loadgen.csv
//
// Reports are deterministic in replay mode: the same -seed (and
// options) produces a byte-identical -out file on any host.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/loadgen"
	"repro/internal/parallel"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npuload:", err)
	os.Exit(cliutil.ExitCode(err))
}

func main() {
	target := flag.String("target", "", "live npusim -serve base URL (e.g. http://127.0.0.1:8080); empty = in-process replay mode")
	mixSpec := flag.String("mix", "", `request mix as "Model=weight,Model=weight" (e.g. "MobileNetV2=3,UNet=1"); empty = the default Table 2 fleet mix`)
	cores := flag.Int("cores", 3, "NPU cores per simulated device (applies to every mix entry)")
	config := flag.String("config", "stratum", "optimization configuration for every mix entry: base, halo, stratum")
	requests := flag.Int64("requests", 1_000_000, "requests per load point (exact)")
	rates := flag.String("rates", "", "comma-separated offered loads in requests/sec; empty = sweep multiples of the pool's estimated capacity")
	utils := flag.String("utilizations", "", "capacity multiples for the default sweep (e.g. \"0.5,0.9,1.5\")")
	devices := flag.Int("devices", 16, "simulated device-pool size")
	shards := flag.Int("shards", 8, "replay shards (part of the deterministic RNG layout; fixed default keeps reports host-independent)")
	arrival := flag.String("arrival", "poisson", "arrival process: poisson (open loop) or closed")
	clients := flag.Int("clients", 0, "closed-loop client population (0 = 4x devices); live mode: concurrent HTTP workers")
	thinkUS := flag.Float64("think-us", 0, "closed-loop mean think time between requests, µs (exponential)")
	batchWindow := flag.Float64("batch-window-us", 0, "per-device batching window, µs (0 = no batching; open loop only)")
	batchMax := flag.Int("batch-max", 16, "max same-model requests coalesced per batch")
	batchDiscount := flag.Float64("batch-discount", 0.85, "marginal cost of each batched item after the first (fraction of solo service time)")
	maxRetries := flag.Int("max-retries", 0, "live mode: re-issue a 429/503-shed request up to this many times with exponential backoff, seeded jitter, and the server's Retry-After as a floor (0 = no retries)")
	seed := flag.Uint64("seed", 1, "seed for arrival processes and mix sampling; equal seeds reproduce replay reports byte-identically")
	out := flag.String("out", "", "write the JSON report to this file")
	csvOut := flag.String("csv", "", "write the per-point CSV curve to this file")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker goroutines for the replay shards (1 forces serial; results are identical either way)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "Usage of %s:\n", os.Args[0])
		flag.PrintDefaults()
		fmt.Fprint(flag.CommandLine.Output(), "\n"+cliutil.ExitCodeDoc)
	}
	flag.Parse()
	parallel.SetWorkers(*jobs)

	mix, err := parseMix(*mixSpec, *cores, *config)
	if err != nil {
		fatal(err)
	}
	o := loadgen.Options{
		Requests:      *requests,
		Devices:       *devices,
		Shards:        *shards,
		Arrival:       *arrival,
		Clients:       *clients,
		ThinkUS:       *thinkUS,
		BatchWindowUS: *batchWindow,
		BatchMax:      *batchMax,
		BatchDiscount: *batchDiscount,
		MaxRetries:    *maxRetries,
		Seed:          *seed,
	}
	if o.Rates, err = parseFloats(*rates); err != nil {
		fatal(fmt.Errorf("bad -rates: %w", err))
	}
	if o.Utilizations, err = parseFloats(*utils); err != nil {
		fatal(fmt.Errorf("bad -utilizations: %w", err))
	}

	var rep *loadgen.Report
	if *target != "" {
		rep, err = loadgen.RunLive(context.Background(), strings.TrimRight(*target, "/"), mix, o)
	} else {
		rep, err = loadgen.RunReplay(mix, o)
	}
	if err != nil {
		fatal(err)
	}

	if rep.CapacityRPS > 0 {
		fmt.Printf("estimated pool capacity: %.0f req/s (%d devices)\n", rep.CapacityRPS, rep.Devices)
	}
	if err := rep.WriteTable(os.Stdout); err != nil {
		fatal(err)
	}
	if *out != "" {
		if err := writeTo(*out, rep.WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *out)
	}
	if *csvOut != "" {
		if err := writeTo(*csvOut, rep.WriteCSV); err != nil {
			fatal(err)
		}
		fmt.Printf("curve written to %s\n", *csvOut)
	}
}

// parseMix turns "Model=weight,Model=weight" (weight optional,
// default 1) into mix entries with the CLI-wide cores/config applied.
func parseMix(spec string, cores int, config string) ([]loadgen.MixEntry, error) {
	if spec == "" {
		mix := loadgen.DefaultMix()
		for i := range mix {
			mix[i].Cores, mix[i].Config = cores, config
		}
		return mix, nil
	}
	var mix []loadgen.MixEntry
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, hasW := strings.Cut(part, "=")
		w := 1.0
		if hasW {
			var err error
			if w, err = strconv.ParseFloat(wstr, 64); err != nil {
				return nil, fmt.Errorf("bad mix weight %q: %w", part, err)
			}
		}
		mix = append(mix, loadgen.MixEntry{Model: strings.TrimSpace(name), Weight: w, Cores: cores, Config: config})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("empty -mix %q", spec)
	}
	return mix, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func writeTo(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

package recovery

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/serialize"
	"repro/internal/sim"
)

// programBytes serializes a program for bit-exact comparison.
func programBytes(t *testing.T, res *core.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := serialize.SaveProgram(&buf, res.Program); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Remap must be bit-exact against a fresh, uncached compile of the
// post-change placement — the acceptance bar for tenancy re-mapping.
func TestRemapBitExactVsFreshCompile(t *testing.T) {
	g := models.ConvChain(6, 64, 64, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	killAt := 0.6 * cleanCycles(t, g, a, opt)
	cf := failWith(t, g, a, opt, &fault.Plan{Deaths: []fault.Death{{Core: 2, AtCycle: killAt}}})
	if len(cf.Completed) == 0 {
		t.Fatal("late Base kill left no checkpoint")
	}

	survivors := []int{0, 1}
	rm, err := Remap(nil, g, cf.Completed, a, survivors, opt)
	if err != nil {
		t.Fatal(err)
	}

	// Fresh compile of the same suffix for the same subset, bypassing
	// the cache entirely.
	suffix, origin, err := SuffixGraph(g, cf.Completed)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := a.Subset(survivors)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Compile(suffix, sub, opt)
	if err != nil {
		t.Fatal(err)
	}

	if got, want := programBytes(t, rm.Compiled), programBytes(t, fresh); !bytes.Equal(got, want) {
		t.Error("remapped program differs from a fresh compile of the post-change placement")
	}
	if !reflect.DeepEqual(rm.Origin, origin) {
		t.Error("remapped origin map differs from a fresh SuffixGraph")
	}
	// The remapped suffix preserves numerics.
	if err := Validate(g, &Result{Suffix: rm.Suffix, Origin: rm.Origin}); err != nil {
		t.Errorf("remapped suffix numerics wrong: %v", err)
	}
}

// Preemption path: a checkpoint computed post-hoc from a clean trace
// (sim.CutAtCycle) remaps exactly like a kill checkpoint does.
func TestRemapFromTraceCutBitExact(t *testing.T) {
	g := models.ConvChain(6, 64, 64, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	completed := sim.CutAtCycle(res.Program, []int{0, 1, 2}, out.Trace, 0.6*out.Stats.TotalCycles)
	if len(completed) == 0 {
		t.Fatal("mid-run cut left no checkpoint")
	}

	target := []int{1, 2}
	rm, err := Remap(nil, g, completed, a, target, opt)
	if err != nil {
		t.Fatal(err)
	}
	suffix, _, err := SuffixGraph(g, completed)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := a.Subset(target)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Compile(suffix, sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(programBytes(t, rm.Compiled), programBytes(t, fresh)) {
		t.Error("trace-cut remap differs from a fresh compile of the suffix placement")
	}
	if err := Validate(g, &Result{Suffix: rm.Suffix, Origin: rm.Origin}); err != nil {
		t.Errorf("trace-cut suffix numerics wrong: %v", err)
	}
}

// Re-mapping the same (graph, checkpoint, subset, options) point twice
// must compile once: suffix graphs fingerprint structurally.
func TestRemapHitsCompileCache(t *testing.T) {
	g := models.ConvChain(5, 48, 48, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	killAt := 0.6 * cleanCycles(t, g, a, opt)
	cf := failWith(t, g, a, opt, &fault.Plan{Deaths: []fault.Death{{Core: 0, AtCycle: killAt}}})

	first, err := Remap(nil, g, cf.Completed, a, []int{1, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	hits0, misses0 := core.CacheStats()
	second, err := Remap(nil, g, cf.Completed, a, []int{1, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	hits1, misses1 := core.CacheStats()
	if misses1 != misses0 {
		t.Errorf("identical remap recompiled: %d fresh compiles", misses1-misses0)
	}
	if hits1 <= hits0 {
		t.Error("identical remap did not hit the compile cache")
	}
	if !bytes.Equal(programBytes(t, first.Compiled), programBytes(t, second.Compiled)) {
		t.Error("cached remap is not bit-identical to the first")
	}
}

// An empty checkpoint remaps the whole network without a suffix
// rebuild: the original graph compiles for the subset directly.
func TestRemapEmptyCheckpointUsesWholeGraph(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	opt := core.Stratum()
	rm, err := Remap(nil, g, nil, a, []int{0, 2}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Suffix != g {
		t.Error("empty checkpoint rebuilt the graph")
	}
	for _, l := range g.Layers() {
		if rm.Origin[l.ID] != l.ID {
			t.Fatalf("origin of layer %d = %d, want identity", l.ID, rm.Origin[l.ID])
		}
	}
	sub, err := a.Subset([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Compile(g, sub, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(programBytes(t, rm.Compiled), programBytes(t, fresh)) {
		t.Error("whole-graph remap differs from a fresh compile")
	}
}

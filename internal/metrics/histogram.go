package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is one bucket per power of two of microseconds: bucket i
// holds observations in [2^(i-1), 2^i) µs (bucket 0 holds < 1 µs).
// 64 buckets cover every representable duration.
const histBuckets = 64

// Histogram is a lock-free latency histogram with exponential
// (power-of-two microsecond) buckets. Concurrent Observe calls never
// block; Quantile reads a best-effort snapshot (exact once writers
// quiesce). The zero value is ready to use.
//
// Two-percent-style accuracy is plenty for serving dashboards: a
// quantile is resolved to its bucket and interpolated geometrically
// within it, so the reported value is within a factor of sqrt(2) of
// the true order statistic.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	count  atomic.Int64
	sumUS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.counts[bits.Len64(uint64(us))%histBuckets].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Mean returns the mean observed duration (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumUS.Load()/n) * time.Microsecond
}

// Quantile returns the q-quantile (0 <= q <= 1) of the observed
// durations, interpolated within its bucket. Empty histograms return 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	var counts [histBuckets]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(total-1))
	var seen int64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if rank < seen+c {
			lo, hi := bucketBounds(i)
			// Linear interpolation of the rank's position inside the
			// bucket, over the bucket's microsecond span.
			frac := float64(rank-seen+1) / float64(c)
			us := float64(lo) + frac*float64(hi-lo)
			return time.Duration(us) * time.Microsecond
		}
		seen += c
	}
	lo, _ := bucketBounds(histBuckets - 1)
	return time.Duration(lo) * time.Microsecond
}

// bucketBounds returns bucket i's [lo, hi) span in microseconds.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 1
	}
	return 1 << (i - 1), 1 << i
}

// HistogramSnapshot is a marshalable point-in-time view.
type HistogramSnapshot struct {
	Count  int64
	MeanUS int64
	P50US  int64
	P90US  int64
	P99US  int64
}

// Snapshot captures the histogram for a stats endpoint.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count:  h.Count(),
		MeanUS: h.Mean().Microseconds(),
		P50US:  h.Quantile(0.50).Microseconds(),
		P90US:  h.Quantile(0.90).Microseconds(),
		P99US:  h.Quantile(0.99).Microseconds(),
	}
}

// Package autotune implements profile-guided rebalancing: the paper
// notes that independently compiled sub-layers "may incur unbalanced
// workload across multicores and unnecessary idle time", and that
// "profiling execution assists to detect unwanted idle times and fix
// the unbalance" (Section 3.1.3).
//
// AutoBalance closes that loop against the simulator: compile,
// simulate, scale each core's partitioning weight by its observed
// utilization, and recompile, keeping the best schedule found. Each
// iteration evaluates several step sizes of the rebalancing update as
// concurrent candidates on the worker pool and commits the winner —
// the candidate set and the winner selection are deterministic, so a
// parallel run returns exactly the serial result.
package autotune

import (
	"context"
	"math"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// dampings are the candidate step exponents tried each iteration: the
// square root is the historical oscillation-damped step, 0.25 a
// conservative half of it, and 1 the full proportional correction.
// Order matters — ties in simulated latency resolve to the lowest
// index, keeping the damped step the deterministic default.
var dampings = []float64{0.5, 0.25, 1}

// Step records one tuning iteration.
type Step struct {
	// LatencyCycles is the simulated latency of the iteration's winning
	// candidate.
	LatencyCycles float64
	// Scale is the per-core weight multiplier the winner used.
	Scale []float64
}

// Result is the outcome of AutoBalance.
type Result struct {
	// Best is the best compilation found.
	Best *core.Result
	// BestLatencyCycles is its simulated latency.
	BestLatencyCycles float64
	// Steps traces every iteration in order.
	Steps []Step
	// Evaluated counts the compile+simulate points tried across all
	// iterations (each iteration past the first tries len of the
	// candidate step set).
	Evaluated int
}

// eval is one candidate's compile+simulate outcome.
type eval struct {
	res *core.Result
	lat float64
	// work is each core's busiest-engine occupancy — the profile the
	// next iteration's candidates are derived from.
	work []float64
}

// AutoBalance runs up to iters profile-and-rebalance iterations
// (iters >= 1; the first iteration is the unscaled compile).
func AutoBalance(g *graph.Graph, a *arch.Arch, opt core.Options, iters int) (*Result, error) {
	return AutoBalanceCtx(nil, g, a, opt, iters, sim.Config{})
}

// AutoBalanceCtx is AutoBalance with cooperative cancellation and a
// caller-supplied simulator configuration. Candidate compiles go
// through the fingerprint-keyed compile cache, so a sweep that
// revisits a scale vector (or an outer search, like the design-space
// explorer, that re-evaluates the unscaled point) costs a cache hit.
// ctx threads into both the compile (core.CompileCachedCtx) and the
// simulation (cfg.Ctx), so a deadline cuts the tuning loop short like
// every other sweep; cfg otherwise passes through unchanged (hooks,
// trace, SPM-check policy).
func AutoBalanceCtx(ctx context.Context, g *graph.Graph, a *arch.Arch, opt core.Options, iters int, cfg sim.Config) (*Result, error) {
	if iters < 1 {
		iters = 1
	}
	n := a.NumCores()

	evalOne := func(ctx context.Context, scale []float64) (eval, error) {
		o := opt
		o.WeightScale = append([]float64(nil), scale...)
		res, err := core.CompileCachedCtx(ctx, g, a, o)
		if err != nil {
			return eval{}, err
		}
		runCfg := cfg
		if runCfg.Ctx == nil {
			runCfg.Ctx = ctx
		}
		out, err := sim.Run(res.Program, runCfg)
		if err != nil {
			return eval{}, err
		}
		// A core's pace is set by its busiest engine (compute, load DMA,
		// or store DMA); equalizing that occupancy across cores
		// equalizes per-layer finish times — the imbalance profiling is
		// meant to fix.
		work := make([]float64, n)
		for c, cs := range out.Stats.PerCore {
			work[c] = math.Max(cs.ComputeBusy, math.Max(cs.LoadBusy, cs.StoreBusy))
			if work[c] < 1 {
				work[c] = 1
			}
		}
		return eval{res: res, lat: out.Stats.TotalCycles, work: work}, nil
	}

	scale := make([]float64, n)
	for i := range scale {
		scale[i] = 1
	}
	cur, err := evalOne(ctx, scale)
	if err != nil {
		return nil, err
	}
	result := &Result{
		Best:              cur.res,
		BestLatencyCycles: cur.lat,
		Steps:             []Step{{LatencyCycles: cur.lat, Scale: append([]float64(nil), scale...)}},
		Evaluated:         1,
	}

	for it := 1; it < iters; it++ {
		var mean float64
		for _, w := range cur.work {
			mean += w
		}
		mean /= float64(n)

		// One candidate per damping exponent, all derived from the
		// current winner's profile.
		cands := make([][]float64, len(dampings))
		for ci, d := range dampings {
			s := make([]float64, n)
			for c := range s {
				s[c] = scale[c] * math.Pow(mean/cur.work[c], d)
			}
			cands[ci] = s
		}
		evals, err := parallel.MapCtx(ctx, len(cands), func(ctx context.Context, i int) (eval, error) {
			return evalOne(ctx, cands[i])
		})
		if err != nil {
			return nil, err
		}
		result.Evaluated += len(cands)

		best := 0
		for i := 1; i < len(evals); i++ {
			if evals[i].lat < evals[best].lat {
				best = i
			}
		}
		scale, cur = cands[best], evals[best]
		result.Steps = append(result.Steps, Step{LatencyCycles: cur.lat, Scale: append([]float64(nil), scale...)})
		if cur.lat < result.BestLatencyCycles {
			result.Best = cur.res
			result.BestLatencyCycles = cur.lat
		}
	}
	return result, nil
}

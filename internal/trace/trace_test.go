package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/sim"
)

func traceOf(t *testing.T) ([]sim.Event, *arch.Arch) {
	t.Helper()
	a := arch.Exynos2100Like()
	g := models.TinyCNN()
	res, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	return out.Trace, a
}

func TestGantt(t *testing.T) {
	events, a := traceOf(t)
	var buf bytes.Buffer
	if err := Gantt(&buf, events, a, 80); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "compute") {
		t.Errorf("gantt missing lanes:\n%s", s)
	}
	if !strings.Contains(s, "#") {
		t.Error("gantt shows no compute activity")
	}
	if !strings.Contains(s, "legend") {
		t.Error("gantt missing legend")
	}
	// Every row must be the requested width.
	for _, line := range strings.Split(s, "\n") {
		if i := strings.IndexByte(line, '|'); i >= 0 {
			row := line[i+1 : len(line)-1]
			if len(row) != 80 {
				t.Errorf("row width %d, want 80", len(row))
			}
		}
	}
}

func TestGanttEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Gantt(&buf, nil, arch.SingleCore(), 40); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty") {
		t.Error("empty trace not reported")
	}
}

func TestChromeExport(t *testing.T) {
	events, a := traceOf(t)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events, a); err != nil {
		t.Fatal(err)
	}
	var doc map[string][]map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	evs := doc["traceEvents"]
	if len(evs) != len(events) {
		t.Errorf("exported %d events, want %d", len(evs), len(events))
	}
	for _, ev := range evs[:3] {
		if ev["ph"] != "X" || ev["name"] == "" {
			t.Errorf("bad event %v", ev)
		}
	}
}

func TestSummary(t *testing.T) {
	events, a := traceOf(t)
	s := Summary(events, a)
	if !strings.Contains(s, "compute") || !strings.Contains(s, "P2") {
		t.Errorf("summary = %q", s)
	}
}

package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stratum"
	"repro/internal/tensor"
	"repro/internal/tiling"
)

// attempt is one rung of the fallback chain: an option set, a tiler
// budget scale, and a stratum depth cap.
type attempt struct {
	level      FallbackLevel
	opt        Options
	scale      float64 // 0 or 1 = full SPM budget
	maxStratum int     // 0 = unlimited
}

// Compile lowers graph g for architecture a under the given options,
// guaranteeing the returned schedule fits every core's SPM: the tiler
// enforces a liveness-exact per-layer budget, and a fault-free
// simulation run then admission-checks the whole program against the
// simulator's own live-byte tracking (which sees the cross-layer
// concurrency the per-layer budget cannot).
//
// When either check fails, the driver walks a graceful-degradation
// chain — shrink the tiler budget, cap stratum depth, disable
// feature-map forwarding, force channel partitioning — recording each
// downgrade in Result.Downgrades. Exhausting the chain returns a
// typed *UnfitError.
func Compile(g *graph.Graph, a *arch.Arch, opt Options) (*Result, error) {
	return CompileCtx(nil, g, a, opt)
}

// CompileCtx is Compile with cooperative cancellation: ctx is polled
// between fallback attempts, between compile stages, per emitted layer,
// and (through sim.Config.Ctx) inside the admission simulation, so a
// canceled compile returns promptly — wrapping ctx's error, or the
// simulator's typed *CanceledError — without producing a Result. A
// nil ctx disables every checkpoint and behaves exactly like Compile.
func CompileCtx(ctx context.Context, g *graph.Graph, a *arch.Arch, opt Options) (*Result, error) {
	t0 := time.Now()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var downgrades []Downgrade
	var lastErr error
	for i, at := range fallbackChain(opt) {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		if i > 0 {
			downgrades = append(downgrades, Downgrade{Level: at.level, Reason: lastErr.Error()})
		}
		res, err := compileOnce(ctx, g, a, at.opt, at.scale, at.maxStratum)
		if err == nil {
			mark := time.Now()
			err = admit(ctx, res)
			res.Timing.Admit = time.Since(mark)
			if err == nil {
				res.Fallback = at.level
				res.Downgrades = downgrades
				res.Timing.Total = time.Since(t0)
				return res, nil
			}
		}
		if !capacityFailure(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, &UnfitError{Graph: g.Name, Downgrades: downgrades, Last: lastErr}
}

// compileCanceled wraps a context error observed at a compile-stage
// checkpoint. It matches sim.ErrCanceled, so one sentinel covers "the
// toolchain was cut short" wherever the checkpoint fired — compile
// stage, emitted layer, or mid-simulation — and unwraps to the
// context's error so errors.Is still distinguishes client abandonment
// from deadline expiry.
type compileCanceled struct{ cause error }

func (e *compileCanceled) Error() string {
	return "core: compile canceled: " + e.cause.Error()
}
func (e *compileCanceled) Is(target error) bool { return target == sim.ErrCanceled }
func (e *compileCanceled) Unwrap() error        { return e.cause }

// ctxErr polls an optional context, wrapping its error so compile-side
// cancellations are attributable. A nil ctx never fails.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &compileCanceled{cause: err}
	}
	return nil
}

// fallbackChain lists the attempts for one requested configuration,
// most capable first. Later rungs keep the earlier restrictions, so
// the chain degrades monotonically and always ends at a configuration
// with no cross-layer SPM residency at all.
func fallbackChain(opt Options) []attempt {
	chain := []attempt{
		{level: FallbackNone, opt: opt},
		{level: FallbackShrinkTiles, opt: opt, scale: 0.85},
		{level: FallbackShrinkTiles, opt: opt, scale: 0.7},
		{level: FallbackShrinkTiles, opt: opt, scale: 0.55},
		{level: FallbackShrinkTiles, opt: opt, scale: 0.45},
	}
	if opt.Stratum {
		chain = append(chain,
			attempt{level: FallbackShallowStrata, opt: opt, maxStratum: 2},
			attempt{level: FallbackShallowStrata, opt: opt, maxStratum: 1},
			attempt{level: FallbackShallowStrata, opt: opt, maxStratum: 1, scale: 0.7},
			attempt{level: FallbackShallowStrata, opt: opt, maxStratum: 1, scale: 0.55},
			attempt{level: FallbackShallowStrata, opt: opt, maxStratum: 1, scale: 0.45},
		)
	}
	if opt.Forwarding {
		o := opt
		o.Forwarding = false
		maxStratum := 0
		if opt.Stratum {
			maxStratum = 1
		}
		chain = append(chain,
			attempt{level: FallbackNoForwarding, opt: o, maxStratum: maxStratum},
			attempt{level: FallbackNoForwarding, opt: o, maxStratum: maxStratum, scale: 0.7},
			attempt{level: FallbackNoForwarding, opt: o, maxStratum: maxStratum, scale: 0.55},
			attempt{level: FallbackNoForwarding, opt: o, maxStratum: maxStratum, scale: 0.45},
		)
	}
	if opt.Partitioning == partition.Adaptive {
		o := opt
		o.Partitioning = partition.ForceChannel
		o.Forwarding = false
		o.Stratum = false
		chain = append(chain,
			attempt{level: FallbackChannelPartition, opt: o},
			attempt{level: FallbackChannelPartition, opt: o, scale: 0.7},
			attempt{level: FallbackChannelPartition, opt: o, scale: 0.55},
			attempt{level: FallbackChannelPartition, opt: o, scale: 0.45},
		)
	}
	return chain
}

// capacityFailure reports whether err is a fit failure the fallback
// chain can respond to, as opposed to a compiler bug or invalid input.
func capacityFailure(err error) bool {
	var cf *tiling.CannotFitError
	if errors.As(err, &cf) {
		return true
	}
	var of *sim.SPMOverflowError
	return errors.As(err, &of)
}

// admit runs the compiled program fault-free through the event engine
// with the SPM admission check on; the simulator's live-byte tracking
// is the authority on whether the schedule actually fits. The context
// threads into the engine's cooperative checkpoints, so a canceled
// compile aborts even mid-admission.
func admit(ctx context.Context, res *Result) error {
	_, err := sim.Run(res.Program, sim.Config{Ctx: ctx})
	return err
}

// compileOnce runs the four compile stages for one fallback attempt,
// polling ctx (when non-nil) between stages and inside the long ones.
func compileOnce(ctx context.Context, g *graph.Graph, a *arch.Arch, opt Options, scale float64, maxStratum int) (*Result, error) {
	// Stage 1: partition every layer (heuristics h1-h5 or forced mode).
	var tm Timing
	mark := time.Now()
	part := partition.New(g, a)
	part.Mode = opt.Partitioning
	part.WeightScale = opt.WeightScale
	part.Force = opt.ForceMethods
	plans, err := part.PlanAllCtx(ctx)
	if err != nil {
		return nil, &compileCanceled{cause: err}
	}
	tm.Partition = time.Since(mark)

	// Stage 2: schedule layer execution. Algorithm 1's
	// spatial_partitioning() predicate reads the partition decision;
	// the pure depth-/breadth-first orders serve as ablations.
	mark = time.Now()
	var order []graph.LayerID
	switch opt.Scheduling {
	case ScheduleDepthFirst:
		order = schedule.DepthFirst(g)
	case ScheduleBreadthFirst:
		order = schedule.BreadthFirst(g)
	default:
		pred := func(l *graph.Layer) bool { return plans[l.ID].Direction.Spatial() }
		order = schedule.New(g, pred).Order()
	}
	if err := schedule.Verify(g, order); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	tm.Schedule = time.Since(mark)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Stage 3: stratum construction (Algorithm 2), or singleton strata
	// when disabled.
	mark = time.Now()
	builder := stratum.New(g, a, plans, order)
	builder.MaxLayers = maxStratum
	builder.Boundary = opt.StratumBoundary
	var strata []stratum.Stratum
	if opt.Stratum && maxStratum != 1 {
		for _, s := range builder.Build() {
			strata = append(strata, builder.TrimToFit(&s)...)
		}
	} else {
		strata = singletonStrata(g, plans, order)
	}
	if err := builder.Validate(strata); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var redundant int64
	for _, s := range strata {
		redundant += s.RedundantMACs
	}
	tm.Stratum = time.Since(mark)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Stage 4: tile and lower to per-core instruction streams.
	mark = time.Now()
	em := newEmitter(g, a, opt, plans, order, strata)
	em.budgetScale = scale
	em.ctx = ctx
	prog, err := em.emit()
	if err != nil {
		return nil, err
	}
	tm.Emit = time.Since(mark)
	tm.Total = tm.Partition + tm.Schedule + tm.Stratum + tm.Emit
	return &Result{
		Program:       prog,
		Plans:         plans,
		Order:         order,
		Strata:        strata,
		RedundantMACs: redundant,
		Timing:        tm,
	}, nil
}

// singletonStrata wraps every executable layer in its own stratum with
// its planned (unexpanded) regions.
func singletonStrata(g *graph.Graph, plans []partition.Plan, order []graph.LayerID) []stratum.Stratum {
	var out []stratum.Stratum
	for _, id := range order {
		if g.Layer(id).IsInput() {
			continue
		}
		regions := make([]tensor.Region, len(plans[id].Subs))
		for i, s := range plans[id].Subs {
			regions[i] = s.Out
		}
		out = append(out, stratum.Stratum{
			Layers:   []graph.LayerID{id},
			Expanded: map[graph.LayerID][]tensor.Region{id: regions},
		})
	}
	return out
}

package sim_test

import (
	. "repro/internal/sim"

	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
)

// These tests cover the silent-failure kinds: Hang (a core stops
// retiring without signaling), Slowdown (a throttle the scheduler
// cannot see), and BitFlip (per-transfer corruption caught by
// stratum-boundary checksums) — plus the watchdog that turns silent
// hangs into typed HangDetected errors. Every behavior is asserted on
// both engines, which must agree bit-exactly.

// runBothHang runs both engines and requires identical outcomes,
// including DeepEqual *HangDetected errors.
func runBothHang(t *testing.T, a *arch.Arch, placements []Placement, cfg Config) (*Result, error) {
	t.Helper()
	ref, refErr := RunConcurrentReference(a, placements, cfg)
	ev, evErr := RunConcurrent(a, placements, cfg)
	switch {
	case refErr == nil && evErr == nil:
		if !reflect.DeepEqual(ref.Stats, ev.Stats) {
			t.Fatalf("stats diverge:\nreference: %+v\nevent:     %+v", ref.Stats, ev.Stats)
		}
		if !reflect.DeepEqual(ref.Trace, ev.Trace) {
			t.Fatal("traces diverge")
		}
		if !reflect.DeepEqual(ref.Corruptions, ev.Corruptions) {
			t.Fatalf("corruptions diverge:\nreference: %+v\nevent:     %+v", ref.Corruptions, ev.Corruptions)
		}
	case refErr != nil && evErr != nil:
		var refHD, evHD *HangDetected
		refIs := errors.As(refErr, &refHD)
		evIs := errors.As(evErr, &evHD)
		if refIs != evIs {
			t.Fatalf("failure types diverge: reference %T, event %T", refErr, evErr)
		}
		if refIs {
			if !reflect.DeepEqual(refHD, evHD) {
				t.Fatalf("hang detections diverge:\nreference: %+v\nevent:     %+v", refHD, evHD)
			}
		} else if refErr.Error() != evErr.Error() {
			t.Fatalf("errors diverge: reference %q, event %q", refErr, evErr)
		}
	default:
		t.Fatalf("outcomes diverge: reference err=%v, event err=%v", refErr, evErr)
	}
	return ref, refErr
}

// wholeMachine wraps a compiled program as a one-placement run over
// every core of its architecture.
func wholeMachine(t *testing.T, g *graph.Graph, opt core.Options) (*arch.Arch, []Placement) {
	t.Helper()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	cores := make([]int, a.NumCores())
	for i := range cores {
		cores[i] = i
	}
	return a, []Placement{{Program: res.Program, Cores: cores}}
}

func TestWatchdogDetectsHang(t *testing.T) {
	g := convNet(5)
	a, pl := wholeMachine(t, g, core.Base())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hangAt := clean.Stats.TotalCycles / 2
	heartbeat := clean.Stats.TotalCycles / 20
	_, err = runBothHang(t, a, pl, Config{
		Faults:         &fault.Plan{Hangs: []fault.Hang{{Core: 1, AtCycle: hangAt}}},
		WatchdogCycles: heartbeat,
	})
	var hd *HangDetected
	if !errors.As(err, &hd) {
		t.Fatalf("expected *HangDetected, got %v", err)
	}
	if len(hd.Cores) != 1 || hd.Cores[0] != 1 {
		t.Errorf("stalled cores = %v, want [1]", hd.Cores)
	}
	if hd.AtCycle < hangAt {
		t.Errorf("detected at %.0f, before the hang at %.0f", hd.AtCycle, hangAt)
	}
	// The acceptance bound: a hang is caught within two heartbeats.
	if latency := hd.AtCycle - hangAt; latency > 2*heartbeat {
		t.Errorf("detection latency %.0f exceeds 2x heartbeat %.0f", latency, 2*heartbeat)
	}
	if hd.Partial.TotalCycles != hd.AtCycle {
		t.Errorf("partial stats end at %.0f, want %.0f", hd.Partial.TotalCycles, hd.AtCycle)
	}
	// Base stores every layer, so a mid-run hang checkpoints a real,
	// strict prefix.
	if len(hd.Completed) == 0 {
		t.Error("mid-run hang under Base checkpointed nothing")
	}
	if len(hd.Completed) >= g.Len() {
		t.Error("mid-run hang checkpointed the whole graph")
	}
}

func TestWatchdogDetectionLatencySweep(t *testing.T) {
	g := convNet(5)
	a, pl := wholeMachine(t, g, core.Base())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	hangAt := clean.Stats.TotalCycles * 0.4
	for _, frac := range []float64{0.02, 0.05, 0.1, 0.25} {
		heartbeat := clean.Stats.TotalCycles * frac
		_, err := runBothHang(t, a, pl, Config{
			Faults:         &fault.Plan{Hangs: []fault.Hang{{Core: 0, AtCycle: hangAt}}},
			WatchdogCycles: heartbeat,
		})
		var hd *HangDetected
		if !errors.As(err, &hd) {
			t.Fatalf("heartbeat %.0f: expected *HangDetected, got %v", heartbeat, err)
		}
		// A beat can land on the injection cycle itself, so the latency
		// may be exactly zero (modulo float -0).
		if latency := hd.AtCycle - hangAt; latency < -1e-6 || latency > 2*heartbeat {
			t.Errorf("heartbeat %.0f: detection latency %.0f outside [0, %.0f]",
				heartbeat, latency, 2*heartbeat)
		}
	}
}

func TestWatchdogNoFalsePositives(t *testing.T) {
	// An armed watchdog must never perturb or fail runs whose cores all
	// make progress — including slowed-down and flaky ones.
	g := convNet(4)
	a, pl := wholeMachine(t, g, core.Halo())
	plans := []struct {
		name string
		plan *fault.Plan
	}{
		{"drop", &fault.Plan{Seed: 9, DropRate: 0.05}},
		{"throttle", &fault.Plan{Throttles: []fault.Throttle{{Core: 1, AtCycle: 1000, Factor: 0.2}}}},
		{"slowdown", &fault.Plan{Slowdowns: []fault.Slowdown{{Core: 2, AtCycle: 1000, Factor: 0.1}}}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			bare, err := RunConcurrent(a, pl, Config{Faults: tc.plan})
			if err != nil {
				t.Fatal(err)
			}
			watched, err := runBothHang(t, a, pl, Config{Faults: tc.plan, WatchdogCycles: 500})
			if err != nil {
				t.Fatalf("watchdog false positive: %v", err)
			}
			// Beats subdivide the DMA integration steps, so cycle counts
			// may drift at float-rounding scale — but no further, and the
			// two engines must still agree bit-exactly (runBothHang).
			d := watched.Stats.TotalCycles - bare.Stats.TotalCycles
			if d < 0 {
				d = -d
			}
			if d > 1e-6*bare.Stats.TotalCycles {
				t.Errorf("arming the watchdog shifted latency by %.3g cycles (%.0f vs %.0f)",
					d, watched.Stats.TotalCycles, bare.Stats.TotalCycles)
			}
		})
	}
}

func TestHangWithoutWatchdogDeadlocks(t *testing.T) {
	// No watchdog, no detection: the machine quiesces and the deadlock
	// diagnostic must name the silently hung core.
	g := convNet(3)
	a, pl := wholeMachine(t, g, core.Base())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = runBothHang(t, a, pl, Config{
		Faults: &fault.Plan{Hangs: []fault.Hang{{Core: 1, AtCycle: clean.Stats.TotalCycles / 2}}},
	})
	if err == nil {
		t.Fatal("hung run without watchdog completed")
	}
	if !strings.Contains(err.Error(), "silently hung") || !strings.Contains(err.Error(), "[1]") {
		t.Errorf("deadlock diagnostic does not name the hung core: %v", err)
	}
	if !strings.Contains(err.Error(), "WatchdogCycles") {
		t.Errorf("deadlock diagnostic does not suggest the watchdog: %v", err)
	}
}

func TestResumingHangCompletesSlower(t *testing.T) {
	g := convNet(4)
	a, pl := wholeMachine(t, g, core.Stratum())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	stall := clean.Stats.TotalCycles / 4
	res, err := runBothHang(t, a, pl, Config{
		Faults: &fault.Plan{Hangs: []fault.Hang{
			{Core: 1, AtCycle: clean.Stats.TotalCycles / 3, ResumeAfter: stall},
		}},
	})
	if err != nil {
		t.Fatalf("resuming hang failed the run: %v", err)
	}
	if res.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("hung-then-resumed run %.0f not slower than clean %.0f",
			res.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
	// The whole machine stalls at the next barrier, so the overhead is
	// at most the stall plus one barrier wait — it must not balloon.
	if res.Stats.TotalCycles > clean.Stats.TotalCycles+2*stall {
		t.Errorf("resumed run %.0f overshoots clean+2*stall %.0f",
			res.Stats.TotalCycles, clean.Stats.TotalCycles+2*stall)
	}
	// A watchdog with a heartbeat longer than the stall never sees the
	// frozen core at a beat where it is still frozen... it may or may
	// not fire depending on alignment, so only the no-watchdog contract
	// is pinned here.
}

func TestSilentSlowdownSlowsRun(t *testing.T) {
	g := convNet(4)
	a, pl := wholeMachine(t, g, core.Base())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := runBothHang(t, a, pl, Config{
		Faults: &fault.Plan{Slowdowns: []fault.Slowdown{{Core: 0, AtCycle: 0, Factor: 0.25}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Stats.TotalCycles <= clean.Stats.TotalCycles {
		t.Errorf("slowed run %.0f not slower than clean %.0f",
			slow.Stats.TotalCycles, clean.Stats.TotalCycles)
	}
	// Slowdown composes with an announced throttle: both at 0.5 on the
	// same core behave like an effective 0.25.
	both, err := runBothHang(t, a, pl, Config{
		Faults: &fault.Plan{
			Throttles: []fault.Throttle{{Core: 0, AtCycle: 0, Factor: 0.5}},
			Slowdowns: []fault.Slowdown{{Core: 0, AtCycle: 0, Factor: 0.5}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(both.Stats, slow.Stats) {
		t.Error("throttle 0.5 x slowdown 0.5 differs from slowdown 0.25")
	}
}

func TestBitFlipsDetectedAtStratumBoundaries(t *testing.T) {
	g := convNet(5)
	a, pl := wholeMachine(t, g, core.Stratum())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := runBothHang(t, a, pl, Config{
		Faults: &fault.Plan{Seed: 5, FlipRate: 0.2},
	})
	if err != nil {
		t.Fatalf("flip run failed: %v", err)
	}
	if len(res.Corruptions) == 0 {
		t.Fatal("20% flip rate produced no detected corruptions")
	}
	// Flips corrupt payloads, never timing: the run's cycle counts are
	// bit-identical to the clean run.
	if !reflect.DeepEqual(res.Stats, clean.Stats) {
		t.Error("bit flips changed the run's timing statistics")
	}
	var transfers int
	for i, c := range res.Corruptions {
		if c.Transfers <= 0 {
			t.Errorf("corruption %d records %d transfers", i, c.Transfers)
		}
		transfers += c.Transfers
		if c.DetectedAtCycle <= 0 || c.DetectedAtCycle > clean.Stats.TotalCycles {
			t.Errorf("corruption %d detected at %.0f, outside the run", i, c.DetectedAtCycle)
		}
		if i > 0 && res.Corruptions[i-1].DetectedAtCycle > c.DetectedAtCycle {
			t.Error("corruptions not in detection order")
		}
	}
	if transfers == 0 {
		t.Error("corruptions recorded zero corrupted transfers")
	}
	// A clean plan with the same seed detects nothing.
	none, err := RunConcurrent(a, pl, Config{Faults: &fault.Plan{Seed: 5, DropRate: 0.01}})
	if err != nil {
		t.Fatal(err)
	}
	if len(none.Corruptions) != 0 {
		t.Errorf("flip-free plan reported %d corruptions", len(none.Corruptions))
	}
}

func TestResilienceDeterminism(t *testing.T) {
	// Same plan, same seed: byte-identical outcomes for each new fault
	// kind, including the failure path.
	g := convNet(4)
	a, pl := wholeMachine(t, g, core.Stratum())
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Faults: &fault.Plan{
			Seed:      77,
			FlipRate:  0.1,
			Slowdowns: []fault.Slowdown{{Core: 2, AtCycle: clean.Stats.TotalCycles / 5, Factor: 0.5}},
			Hangs:     []fault.Hang{{Core: 1, AtCycle: clean.Stats.TotalCycles / 2}},
		},
		WatchdogCycles: clean.Stats.TotalCycles / 10,
	}
	_, err1 := runBothHang(t, a, pl, cfg)
	_, err2 := runBothHang(t, a, pl, cfg)
	var hd1, hd2 *HangDetected
	if !errors.As(err1, &hd1) || !errors.As(err2, &hd2) {
		t.Fatalf("expected hang detections, got %v / %v", err1, err2)
	}
	if !reflect.DeepEqual(hd1, hd2) {
		t.Errorf("identical runs detected different hangs:\n%+v\nvs\n%+v", hd1, hd2)
	}
}

func TestHangPlanValidation(t *testing.T) {
	g := convNet(2)
	a, pl := wholeMachine(t, g, core.Base())
	// Out-of-range hang core: typed error.
	_, err := RunConcurrent(a, pl, Config{
		Faults: &fault.Plan{Hangs: []fault.Hang{{Core: 9, AtCycle: 10}}},
	})
	var cre *fault.CoreRangeError
	if !errors.As(err, &cre) {
		t.Fatalf("out-of-range hang: got %v, want *fault.CoreRangeError", err)
	}
	if cre.Core != 9 || cre.What != "hang" {
		t.Errorf("CoreRangeError = %+v", cre)
	}
	// Hang after completion is inert (watchdog off so the timing is
	// exactly the clean run's: beats subdivide integration steps).
	clean, err := RunConcurrent(a, pl, Config{})
	if err != nil {
		t.Fatal(err)
	}
	late, err := RunConcurrent(a, pl, Config{
		Faults: &fault.Plan{Hangs: []fault.Hang{{Core: 0, AtCycle: clean.Stats.TotalCycles * 10}}},
	})
	if err != nil {
		t.Fatalf("post-completion hang failed the run: %v", err)
	}
	if late.Stats.TotalCycles != clean.Stats.TotalCycles {
		t.Error("post-completion hang changed latency")
	}
}

// Package partition implements layer partitioning for multicore
// parallel execution: choosing a partitioning direction per layer with
// the paper's heuristics h1–h5, balancing sub-layer sizes across
// heterogeneous cores under alignment constraints, and computing the
// input regions (including halo) each core requires.
package partition

import (
	"context"
	"fmt"

	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/tensor"
)

// Direction is the axis along which a layer's output is partitioned.
type Direction int

// Partitioning directions.
const (
	// DirNone marks layers that are not partitioned (graph inputs, or
	// operators that admit no reduction-free split; such layers run
	// whole on a single core).
	DirNone Direction = iota
	// DirSpatialH splits the output along image height.
	DirSpatialH
	// DirSpatialW splits the output along image width.
	DirSpatialW
	// DirChannel splits the output along channels.
	DirChannel
)

// String returns the direction name.
func (d Direction) String() string {
	switch d {
	case DirNone:
		return "none"
	case DirSpatialH:
		return "spatial-H"
	case DirSpatialW:
		return "spatial-W"
	case DirChannel:
		return "channel"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Spatial reports whether the direction splits an image axis.
func (d Direction) Spatial() bool { return d == DirSpatialH || d == DirSpatialW }

// Axis returns the tensor axis the direction splits. It panics for
// DirNone.
func (d Direction) Axis() tensor.Axis {
	switch d {
	case DirSpatialH:
		return tensor.AxisH
	case DirSpatialW:
		return tensor.AxisW
	case DirChannel:
		return tensor.AxisC
	default:
		panic("partition: DirNone has no axis")
	}
}

// SubLayer is the piece of a layer assigned to one core.
type SubLayer struct {
	// Core indexes arch.Cores.
	Core int
	// Out is the output region this core produces, in whole-layer
	// output coordinates. Empty when the core receives no work.
	Out tensor.Region
	// In are the input regions required, one per layer input, in each
	// producer's output coordinates.
	In []tensor.Region
	// MACs is the compute cost of producing Out.
	MACs int64
	// KernelBytes is the weight traffic needed for Out.
	KernelBytes int64
}

// Empty reports whether the sub-layer has no work.
func (s SubLayer) Empty() bool { return s.Out.Empty() }

// InBytes returns the total input traffic of the sub-layer at dtype dt.
func (s SubLayer) InBytes(dt tensor.DType) int64 {
	var b int64
	for _, r := range s.In {
		b += r.Bytes(dt)
	}
	return b
}

// Plan is the partitioning decision for one layer.
type Plan struct {
	Layer     graph.LayerID
	Direction Direction
	// Reason records which heuristic fixed the direction, for
	// diagnostics and the compiler report.
	Reason string
	// Subs has one entry per core (possibly empty). It is nil for
	// graph inputs, whose tensor lives in global memory.
	Subs []SubLayer
}

// OwnerOf returns the index into Subs of the core whose output region
// contains element coordinates (h, w, c), or -1 if none does.
func (p *Plan) OwnerOf(h, w, c int) int {
	probe := tensor.Region{Off: tensor.NewShape(h, w, c), Ext: tensor.NewShape(1, 1, 1)}
	for i, s := range p.Subs {
		if !s.Empty() && s.Out.Contains(probe) {
			return i
		}
	}
	return -1
}

// Mode forces a partitioning policy; the Table 4 experiment compares
// the three.
type Mode int

// Partitioning policies.
const (
	// Adaptive applies heuristics h1–h5 per layer (the paper's
	// "adaptive partitioning", used by all Table 3 configurations).
	Adaptive Mode = iota
	// ForceSpatial partitions every layer spatially when legal.
	ForceSpatial
	// ForceChannel partitions every layer along channels when legal.
	ForceChannel
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Adaptive:
		return "adaptive"
	case ForceSpatial:
		return "spatial"
	case ForceChannel:
		return "channel"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Partitioner chooses directions and balances sub-layers for one graph
// on one architecture.
type Partitioner struct {
	Graph *graph.Graph
	Arch  *arch.Arch
	Model *cost.Model
	Mode  Mode
	// WeightScale optionally multiplies each core's balance weight —
	// the profile-guided rebalancing hook (Section 3.1.3: "profiling
	// execution assists to detect unwanted idle times and fix the
	// unbalance"). Nil means unit scales.
	WeightScale []float64
	// Force optionally overrides the partitioning method per layer,
	// indexed by LayerID (the design-space explorer's genome drives
	// it). MethodAuto entries, indexes past the slice, and overrides
	// the operator cannot support (MethodSupported says no) all defer
	// to the h1–h5 heuristics. Force only applies in Adaptive mode:
	// the whole-graph ForceSpatial/ForceChannel modes (Table 4, the
	// fallback chain's last resort) take precedence, so the
	// graceful-degradation chain keeps its guarantee of reaching a
	// channel-partitioned schedule.
	Force []MethodID
}

// New returns a partitioner with an adaptive policy.
func New(g *graph.Graph, a *arch.Arch) *Partitioner {
	return &Partitioner{Graph: g, Arch: a, Model: cost.New(a), Mode: Adaptive}
}

// PlanLayer partitions one layer across the architecture's cores.
func (p *Partitioner) PlanLayer(l *graph.Layer) Plan {
	if l.IsInput() {
		return Plan{Layer: l.ID, Direction: DirNone, Reason: "graph input resides in global memory"}
	}
	dir, reason := p.ChooseDirection(l)
	return p.planWithDirection(l, dir, reason)
}

// planAllMinLayers is the graph size below which PlanAll stays serial:
// per-layer planning is cheap, so small graphs cannot amortize the
// worker-pool handoff.
const planAllMinLayers = 16

// PlanAll partitions every layer, indexed by LayerID. Layers are
// planned independently (PlanLayer only reads the graph, the arch, and
// the cost model), so large graphs fan out across the worker pool;
// each layer writes only its own slot, making the result identical to
// the serial loop.
func (p *Partitioner) PlanAll() []Plan {
	plans, _ := p.PlanAllCtx(nil)
	return plans
}

// PlanAllCtx is PlanAll with cooperative cancellation: ctx is polled
// between layers (serial path) or per claimed index (parallel path),
// so a canceled compile stops planning promptly and returns ctx's
// error with a nil slice. A nil ctx never fails.
func (p *Partitioner) PlanAllCtx(ctx context.Context) ([]Plan, error) {
	plans := make([]Plan, p.Graph.Len())
	layers := p.Graph.Layers()
	if len(layers) < planAllMinLayers || parallel.Serial() {
		for i, l := range layers {
			if ctx != nil && i&15 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			plans[l.ID] = p.PlanLayer(l)
		}
		return plans, nil
	}
	err := parallel.ForEachCtx(ctx, len(layers), func(_ context.Context, i int) error {
		plans[layers[i].ID] = p.PlanLayer(layers[i])
		return nil
	})
	if err != nil {
		return nil, err
	}
	return plans, nil
}

// legalDirs returns the directions the operator admits without
// partial-sum reduction, in preference order spatial-H, spatial-W,
// channel.
func legalDirs(l *graph.Layer) []Direction {
	var dirs []Direction
	if l.Op.SupportsPartition(tensor.AxisH) && l.OutShape.H > 1 {
		dirs = append(dirs, DirSpatialH)
	}
	if l.Op.SupportsPartition(tensor.AxisW) && l.OutShape.W > 1 {
		dirs = append(dirs, DirSpatialW)
	}
	if l.Op.SupportsPartition(tensor.AxisC) && l.OutShape.C > 1 {
		dirs = append(dirs, DirChannel)
	}
	return dirs
}

func hasDir(dirs []Direction, d Direction) bool {
	for _, x := range dirs {
		if x == d {
			return true
		}
	}
	return false
}

// ChooseDirection applies a per-layer override (Force), the forced
// whole-graph mode, or the paper's heuristics h1–h5, and reports the
// deciding rule. Reasons name their origin consistently: "hN: ..."
// for a heuristic decision, "forced: ..." for a whole-graph mode, and
// "override: ..." for a per-layer Force entry.
func (p *Partitioner) ChooseDirection(l *graph.Layer) (Direction, string) {
	dirs := legalDirs(l)
	if len(dirs) == 0 {
		return DirNone, "h1: no reduction-free partitioning axis"
	}
	spatial := DirNone
	if hasDir(dirs, DirSpatialH) {
		spatial = DirSpatialH
	} else if hasDir(dirs, DirSpatialW) {
		spatial = DirSpatialW
	}
	channel := DirNone
	if hasDir(dirs, DirChannel) {
		channel = DirChannel
	}

	switch p.Mode {
	case ForceSpatial:
		if spatial != DirNone {
			return spatial, "forced: spatial mode"
		}
		return channel, "forced: spatial mode unavailable; channel fallback"
	case ForceChannel:
		if channel != DirNone {
			return channel, "forced: channel mode"
		}
		return spatial, "forced: channel mode unavailable; spatial fallback"
	}

	// Per-layer override (Adaptive mode only; unsupported overrides
	// fall through to the heuristics).
	if int(l.ID) < len(p.Force) {
		switch m := p.Force[l.ID]; m {
		case MethodSpatial:
			if spatial != DirNone {
				return spatial, "override: spatial method"
			}
		case MethodChannel:
			if channel != DirNone {
				return channel, "override: channel method"
			}
		}
	}

	// Adaptive: h1-h5.
	if spatial == DirNone {
		return channel, "h1: spatial split not supported by operator"
	}
	if channel == DirNone {
		return spatial, "h1: channel split not supported by operator"
	}

	in := p.Graph.InShapes(l)
	n := p.Arch.NumCores()

	// h4 (operation type): channel-wise operators avoid kernel
	// replication entirely under channel partitioning.
	if l.Op.ChannelWise() && l.OutShape.C >= n*p.Arch.MaxAlignC() {
		return channel, "h4: channel-wise operation"
	}

	// h3 (data shape): too shallow to split spatially across all cores.
	minRows := n * p.Arch.MaxAlignSpatial() * 2
	if l.OutShape.Dim(spatial.Axis()) < minRows {
		if l.OutShape.C >= n*p.Arch.MaxAlignC() {
			return channel, "h3: spatial extent too shallow for all cores"
		}
		return spatial, "h3: both axes too shallow; keep spatial"
	}

	kernelBytes := l.Op.KernelBytes(l.OutShape, in, l.DType)
	var inBytes int64
	for i, s := range in {
		_ = i
		inBytes += s.Bytes(l.DType)
	}

	// h2 (data reuse): spatial replicates the kernel on every core;
	// channel replicates the input. Prefer the smaller replication.
	if kernelBytes > inBytes {
		return channel, "h2: kernel larger than input tensor"
	}

	// h5 (data exchange): when the operator's receptive field makes
	// spatial halos disproportionate (large kernel, stride, dilation),
	// channel partitioning moves less data.
	if haloRows := p.spatialHaloRows(l, spatial.Axis()); haloRows > 0 {
		share := l.OutShape.Dim(spatial.Axis()) / n
		if share > 0 && haloRows*4 >= share {
			return channel, "h5: spatial halo too large relative to partition"
		}
	}

	return spatial, "h1: spatial default (best data reusability)"
}

// spatialHaloRows returns how many input rows beyond its proportional
// share a middle partition needs on one side along axis a (the halo
// width in rows).
func (p *Partitioner) spatialHaloRows(l *graph.Layer, a tensor.Axis) int {
	in := p.Graph.InShapes(l)
	if len(in) == 0 {
		return 0
	}
	out := l.OutShape
	n := p.Arch.NumCores()
	share := out.Dim(a) / n
	if share == 0 {
		return 0
	}
	// Probe an interior slice [share, 2*share) to avoid border clamping.
	probe := tensor.WholeRegion(out)
	probe.Off = probe.Off.WithDim(a, share)
	probe.Ext = probe.Ext.WithDim(a, share)
	probe = probe.ClampTo(out)
	if probe.Empty() {
		return 0
	}
	region := l.Op.InputRegion(probe, 0, in)
	// Ideal (stride-scaled) input share for the probe, without halo.
	inShare := in[0].Dim(a) * probe.Ext.Dim(a) / out.Dim(a)
	halo := (region.Ext.Dim(a) - inShare) / 2
	if halo < 0 {
		return 0
	}
	return halo
}

// planWithDirection balances the chosen axis across cores and derives
// per-core regions, input requirements, and costs.
func (p *Partitioner) planWithDirection(l *graph.Layer, dir Direction, reason string) Plan {
	in := p.Graph.InShapes(l)
	n := p.Arch.NumCores()
	plan := Plan{Layer: l.ID, Direction: dir, Reason: reason}

	if dir == DirNone || n == 1 {
		// Whole layer on the fastest core.
		if dir != DirNone {
			plan.Reason = reason
		}
		subs := make([]SubLayer, n)
		best := fastestCore(p.Arch)
		for i := range subs {
			subs[i] = SubLayer{Core: i}
		}
		whole := tensor.WholeRegion(l.OutShape)
		subs[best] = p.makeSub(l, in, best, whole)
		plan.Subs = subs
		if dir == DirNone {
			plan.Direction = DirNone
		}
		return plan
	}

	axis := dir.Axis()
	extent := l.OutShape.Dim(axis)

	// Per-unit costs along the split axis drive heterogeneous balance.
	unit := l.OutShape.WithDim(axis, 1)
	macsPerUnit := float64(l.Op.MACs(unit, in))
	bytesPerUnit := float64(unit.Bytes(l.DType)) // output traffic
	if len(in) > 0 {
		// Input traffic scales with the split for spatial and for
		// channel-wise ops; dense channel splits replicate the input,
		// so it does not scale and is excluded from the per-unit cost.
		if dir.Spatial() || l.Op.ChannelWise() {
			var inPerUnit float64
			for _, s := range in {
				inPerUnit += float64(s.Bytes(l.DType)) / float64(extent)
			}
			bytesPerUnit += inPerUnit
		}
		if dir == DirChannel {
			bytesPerUnit += float64(l.Op.KernelBytes(unit, in, l.DType))
		}
	}

	weights := p.Model.BalanceWeights(macsPerUnit, bytesPerUnit, l.DType)
	for i := range weights {
		if i < len(p.WeightScale) && p.WeightScale[i] > 0 {
			weights[i] *= p.WeightScale[i]
		}
	}
	align := p.alignFor(dir)
	chunks := tensor.SplitWeighted(extent, weights, align)
	regions := tensor.ChunksToRegions(l.OutShape, axis, chunks)

	subs := make([]SubLayer, n)
	for i, r := range regions {
		subs[i] = p.makeSub(l, in, i, r)
	}
	plan.Subs = subs
	return plan
}

// alignFor returns the boundary alignment a direction must respect:
// the largest per-core requirement, so every core's chunk satisfies
// its own engine (the paper notes channel alignment is the larger
// burden).
func (p *Partitioner) alignFor(dir Direction) int {
	if dir == DirChannel {
		return p.Arch.MaxAlignC()
	}
	return p.Arch.MaxAlignSpatial()
}

// makeSub fills a SubLayer for core producing region r of layer l.
func (p *Partitioner) makeSub(l *graph.Layer, in []tensor.Shape, core int, r tensor.Region) SubLayer {
	s := SubLayer{Core: core, Out: r}
	if r.Empty() {
		return s
	}
	s.In = make([]tensor.Region, len(in))
	for i := range in {
		s.In[i] = l.Op.InputRegion(r, i, in)
	}
	s.MACs = l.Op.MACs(r.Ext, in)
	s.KernelBytes = l.Op.KernelBytes(r.Ext, in, l.DType)
	return s
}

// fastestCore returns the index of the core with the highest MAC
// throughput, breaking ties by DMA bandwidth.
func fastestCore(a *arch.Arch) int {
	best := 0
	for i, c := range a.Cores {
		b := a.Cores[best]
		if c.MACsPerCycle > b.MACsPerCycle ||
			(c.MACsPerCycle == b.MACsPerCycle && c.DMABytesPerCycle > b.DMABytesPerCycle) {
			best = i
		}
	}
	return best
}

// HaloBytes returns, for consumer sub-layer input inIdx on core,
// how many bytes of the required input region are owned by *other*
// cores under the producer's plan — the data that must arrive via
// halo-exchange (or a global-memory round trip). Bytes not owned by
// any core (producer is a graph input) are excluded: they always come
// from global memory.
func HaloBytes(producer *Plan, consumerIn tensor.Region, core int, dt tensor.DType) int64 {
	if consumerIn.Empty() || producer.Subs == nil {
		return 0
	}
	var remote int64
	for i, s := range producer.Subs {
		if i == core || s.Empty() {
			continue
		}
		remote += consumerIn.Intersect(s.Out).Bytes(dt)
	}
	return remote
}

// LocalBytes returns how many bytes of the consumer's required input
// region the same core already produced under the producer's plan —
// the candidate for feature-map forwarding.
func LocalBytes(producer *Plan, consumerIn tensor.Region, core int, dt tensor.DType) int64 {
	if consumerIn.Empty() || producer.Subs == nil {
		return 0
	}
	s := producer.Subs[core]
	if s.Empty() {
		return 0
	}
	return consumerIn.Intersect(s.Out).Bytes(dt)
}

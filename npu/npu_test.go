package npu_test

import (
	"strings"
	"testing"

	"repro/npu"
)

func TestEndToEndTinyGraph(t *testing.T) {
	g := npu.NewGraph("tiny", npu.Int8)
	in := g.Input("input", npu.NewShape(32, 32, 8))
	c := g.MustAdd("conv", npu.NewConv2D(3, 3, 1, 1, 16,
		npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	r := g.MustAdd("relu", npu.Activation{Func: npu.ReLU}, c)
	g.MustAdd("pool", npu.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, r)

	for _, opt := range []npu.Options{npu.Base(), npu.Halo(), npu.Stratum()} {
		rep, err := npu.Run(g, npu.Exynos2100Like(), opt)
		if err != nil {
			t.Fatalf("%s: %v", opt.Name(), err)
		}
		if rep.LatencyMicros() <= 0 {
			t.Errorf("%s: non-positive latency", opt.Name())
		}
		if !strings.Contains(rep.String(), opt.Name()) {
			t.Errorf("%s: report missing config name", opt.Name())
		}
	}
}

func TestValidateEndToEnd(t *testing.T) {
	g := npu.NewGraph("v", npu.Int8)
	in := g.Input("input", npu.NewShape(40, 40, 8))
	x := in
	for i := 0; i < 3; i++ {
		x = g.MustAdd("conv"+string(rune('a'+i)), npu.NewConv2D(3, 3, 1, 1, 8,
			npu.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), x)
	}
	res, err := npu.Compile(g, npu.Exynos2100Like(), npu.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if err := npu.Validate(g, res); err != nil {
		t.Fatal(err)
	}
}

func TestModelRegistry(t *testing.T) {
	ms := npu.Models()
	if len(ms) != 6 {
		t.Fatalf("models = %d, want 6", len(ms))
	}
	g := npu.BuildModel("MobileNetV2")
	if g.Len() == 0 {
		t.Fatal("empty model")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown model must panic")
		}
	}()
	npu.BuildModel("nope")
}

func TestSimulateWithTrace(t *testing.T) {
	g := npu.BuildModel("MobileNetV2")
	res, err := npu.Compile(g, npu.SingleCore(), npu.Base())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := npu.Simulate(res, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace) == 0 {
		t.Error("trace empty")
	}
}

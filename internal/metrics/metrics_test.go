package metrics

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/sim"
)

// TestExclusiveAttributionHandComputed checks the priority sweep on a
// hand-built overlap pattern:
//
//	compute  [0,10)
//	load     [5,20)   (overlaps compute 5..10)
//	barrier  [18,25)  (overlaps load 18..20)
//	total    30
//
// Exclusive: compute 10, load 10 (only 10..20), stall 5 (only 20..25),
// idle 5.
func TestExclusiveAttributionHandComputed(t *testing.T) {
	a := arch.Homogeneous(1)
	col := &Collector{Instrs: []sim.InstrSample{
		{Core: 0, Op: plan.Compute, Start: 0, End: 10, MACs: 100},
		{Core: 0, Op: plan.LoadInput, Start: 5, End: 20, Bytes: 64},
		{Core: 0, Op: plan.Barrier, Start: 18, End: 25},
	}}
	stats := &sim.Stats{TotalCycles: 30, PerCore: make([]sim.CoreStats, 1)}
	rep := BuildReport(a, nil, stats, col)
	got := rep.Cores[0].Exclusive
	want := Breakdown{Compute: 10, Load: 10, Stall: 5, Idle: 5}
	if got != want {
		t.Fatalf("exclusive = %+v, want %+v", got, want)
	}
	f := got.Fractions(30)
	sum := f.Compute + f.Halo + f.Load + f.Store + f.Stall + f.Idle
	if d := sum - 1; d > 1e-12 || d < -1e-12 {
		t.Fatalf("fractions sum to %v", sum)
	}
	eng := rep.Cores[0].Engines
	if eng.Compute != 10 || eng.Load != 15 || eng.Sync != 7 {
		t.Fatalf("engine sums = %+v", eng)
	}
	if rep.Cores[0].BytesLoaded != 64 || rep.Cores[0].MACs != 100 {
		t.Fatalf("traffic totals = %+v", rep.Cores[0])
	}
}

// TestExclusiveHaloPriority pins halo above load and below compute.
func TestExclusiveHaloPriority(t *testing.T) {
	a := arch.Homogeneous(1)
	col := &Collector{Instrs: []sim.InstrSample{
		{Core: 0, Op: plan.Compute, Start: 0, End: 4},
		{Core: 0, Op: plan.LoadHalo, Start: 2, End: 8, Bytes: 8},
		{Core: 0, Op: plan.LoadInput, Start: 2, End: 10, Bytes: 8},
	}}
	stats := &sim.Stats{TotalCycles: 10, PerCore: make([]sim.CoreStats, 1)}
	rep := BuildReport(a, nil, stats, col)
	got := rep.Cores[0].Exclusive
	want := Breakdown{Compute: 4, Halo: 4, Load: 2, Idle: 0}
	if got != want {
		t.Fatalf("exclusive = %+v, want %+v", got, want)
	}
}

// TestBusIntegration checks the piecewise-constant integration on a
// synthetic series: contended half, uncontended half, closed at 100.
func TestBusIntegration(t *testing.T) {
	a := arch.Homogeneous(1)
	col := &Collector{Bus: []sim.BusSample{
		{At: 0, Demand: 20, Granted: 10, Channels: 2},
		{At: 50, Demand: 5, Granted: 5, Channels: 1},
		{At: 100},
	}}
	stats := &sim.Stats{TotalCycles: 100, PerCore: make([]sim.CoreStats, 1)}
	br := BuildReport(a, nil, stats, col).Bus
	if br.BusyCycles != 100 || br.ContendedCycles != 50 {
		t.Fatalf("busy %v contended %v", br.BusyCycles, br.ContendedCycles)
	}
	if br.DeficitByteCycles != 500 {
		t.Fatalf("deficit %v", br.DeficitByteCycles)
	}
	if br.AvgDemand != 12.5 || br.AvgGranted != 7.5 {
		t.Fatalf("avg demand %v granted %v", br.AvgDemand, br.AvgGranted)
	}
	if br.PeakChannels != 2 || br.PeakDemand != 20 {
		t.Fatalf("peaks %v %v", br.PeakChannels, br.PeakDemand)
	}
	if len(br.Series) != 3 {
		t.Fatalf("series kept %d points", len(br.Series))
	}
}

// TestLayerReports checks per-layer aggregation and naming on a real
// compiled model.
func TestLayerReports(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Halo())
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	out, err := sim.Run(res.Program, sim.Config{Hook: col})
	if err != nil {
		t.Fatal(err)
	}
	cores := make([]int, a.NumCores())
	for i := range cores {
		cores[i] = i
	}
	placements := []sim.Placement{{Program: res.Program, Cores: cores}}
	rep := BuildReport(a, placements, &out.Stats, col)
	if len(rep.Layers) == 0 {
		t.Fatal("no layer reports")
	}
	var macs int64
	var named, computed int
	for _, lr := range rep.Layers {
		macs += lr.MACs
		if lr.Name != "" {
			named++
		}
		if lr.Compute > 0 {
			if lr.Tiles == 0 {
				t.Fatalf("layer %d computes %v cycles with 0 tiles", lr.Layer, lr.Compute)
			}
			computed++
		}
	}
	if macs != out.Stats.TotalMACs() {
		t.Fatalf("layer MACs %d != run MACs %d", macs, out.Stats.TotalMACs())
	}
	if named != len(rep.Layers) || computed == 0 {
		t.Fatalf("%d/%d layers named, %d computed", named, len(rep.Layers), computed)
	}
}

// TestStratumReports cross-foots the per-stratum redundancy ratios
// against the compile result's totals.
func TestStratumReports(t *testing.T) {
	g := models.ByNameMust("MobileNetV2")
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	srs := StratumReports(res)
	if len(srs) != len(res.Strata) {
		t.Fatalf("%d reports for %d strata", len(srs), len(res.Strata))
	}
	var redundant int64
	for i, sr := range srs {
		redundant += sr.RedundantMACs
		if sr.Index != i || len(sr.Layers) != len(res.Strata[i].Layers) {
			t.Fatalf("report %d misaligned: %+v", i, sr)
		}
		if sr.ExecutedMACs > 0 {
			want := float64(sr.RedundantMACs) / float64(sr.ExecutedMACs)
			if sr.RedundancyRatio != want {
				t.Fatalf("report %d ratio %v, want %v", i, sr.RedundancyRatio, want)
			}
		} else if sr.RedundancyRatio != 0 {
			t.Fatalf("report %d: ratio %v with no executed MACs", i, sr.RedundancyRatio)
		}
	}
	if redundant != res.RedundantMACs {
		t.Fatalf("per-stratum redundant MACs sum to %d, compile says %d", redundant, res.RedundantMACs)
	}
	// Per-layer executed MACs from the program must cover every stratum
	// with a compute layer.
	var executed int64
	for _, sr := range srs {
		executed += sr.ExecutedMACs
	}
	var progMACs int64
	for c := range res.Program.Cores {
		progMACs += res.Program.TotalMACs(c)
	}
	if executed != progMACs {
		t.Fatalf("stratum executed MACs %d != program MACs %d", executed, progMACs)
	}
}

// TestAttachCompile checks the timing passthrough.
func TestAttachCompile(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	rep := &Report{}
	rep.AttachCompile(res)
	if rep.Compile == nil || rep.Compile.TotalMillis <= 0 {
		t.Fatalf("compile timing not attached: %+v", rep.Compile)
	}
	stages := rep.Compile.PartitionMillis + rep.Compile.ScheduleMillis +
		rep.Compile.StratumMillis + rep.Compile.EmitMillis
	if stages > rep.Compile.TotalMillis {
		t.Fatalf("stage sum %v exceeds total %v", stages, rep.Compile.TotalMillis)
	}
	if len(rep.Strata) == 0 {
		t.Fatal("no stratum reports attached")
	}
}

// TestReportJSONRoundTrip keeps the report serializable and stable.
func TestReportJSONRoundTrip(t *testing.T) {
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	res, err := core.Compile(g, a, core.Stratum())
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{}
	out, err := sim.Run(res.Program, sim.Config{Hook: col})
	if err != nil {
		t.Fatal(err)
	}
	cores := []int{0, 1, 2}
	rep := BuildReport(a, []sim.Placement{{Program: res.Program, Cores: cores}}, &out.Stats, col)
	rep.AttachCompile(res)
	rep.Model = "TinyCNN"
	rep.Config = "+Stratum"
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, &back) {
		t.Fatal("report does not survive a JSON round trip")
	}
}

// TestCollectorReset keeps capacity, drops samples.
func TestCollectorReset(t *testing.T) {
	c := &Collector{}
	c.OnInstr(sim.InstrSample{Core: 1})
	c.OnBus(sim.BusSample{At: 2})
	c.Reset()
	if len(c.Instrs) != 0 || len(c.Bus) != 0 {
		t.Fatalf("reset left %d/%d samples", len(c.Instrs), len(c.Bus))
	}
	if cap(c.Instrs) == 0 || cap(c.Bus) == 0 {
		t.Fatal("reset dropped capacity")
	}
}

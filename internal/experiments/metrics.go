package experiments

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// UtilizationRow is one model's observed cycle attribution under a
// configuration — the simulated counterpart of Figure 10's stacked
// utilization bars.
type UtilizationRow struct {
	Model string
	// Report is the full structured report (per-core, per-layer, SPM,
	// bus, strata).
	Report *metrics.Report
	// MeanFractions averages the per-core exclusive fractions.
	MeanFractions metrics.Breakdown
}

// Utilization runs every Table 2 model under opt on the three-core
// platform with the metrics hook attached and reports the utilization
// breakdowns. Models fan out across the worker pool.
func Utilization(opt core.Options) ([]UtilizationRow, error) {
	a := arch.Exynos2100Like()
	ms := models.All()
	return parallel.Map(len(ms), func(i int) (UtilizationRow, error) {
		m := ms[i]
		res, err := core.CompileCached(m.Build(), a, opt)
		if err != nil {
			return UtilizationRow{}, fmt.Errorf("utilization %s: %w", m.Name, err)
		}
		col := &metrics.Collector{}
		cfg := simConfig()
		cfg.Hook = col
		out, err := sim.Run(res.Program, cfg)
		if err != nil {
			return UtilizationRow{}, fmt.Errorf("utilization %s: %w", m.Name, err)
		}
		cores := make([]int, a.NumCores())
		for c := range cores {
			cores[c] = c
		}
		rep := metrics.BuildReport(a, []sim.Placement{{Program: res.Program, Cores: cores}}, &out.Stats, col)
		rep.AttachCompile(res)
		rep.Model = m.Name
		rep.Config = opt.Name()

		row := UtilizationRow{Model: m.Name, Report: rep}
		if n := float64(len(rep.Cores)); n > 0 {
			for _, cr := range rep.Cores {
				f := cr.Exclusive.Fractions(cr.TotalCycles)
				row.MeanFractions.Compute += f.Compute / n
				row.MeanFractions.Halo += f.Halo / n
				row.MeanFractions.Load += f.Load / n
				row.MeanFractions.Store += f.Store / n
				row.MeanFractions.Stall += f.Stall / n
				row.MeanFractions.Idle += f.Idle / n
			}
		}
		return row, nil
	})
}

// PrintUtilization renders the Figure-10-style table: where each
// model's cycles go, averaged over cores, plus SPM pressure and bus
// contention.
func PrintUtilization(w io.Writer, config string, rows []UtilizationRow) {
	fmt.Fprintf(w, "Figure 10 (sim): per-model cycle attribution, %s, mean over cores\n", config)
	fmt.Fprintf(w, "%-17s %8s %8s %8s %8s %8s %8s | %9s %9s %8s %-14s\n",
		"Model", "compute", "halo", "load", "store", "stall", "idle", "SPM-peak", "bus-cont", "redund", "fallback")
	for _, r := range rows {
		f := r.MeanFractions
		var peakUtil float64
		for _, sp := range r.Report.SPM {
			if sp.Utilization > peakUtil {
				peakUtil = sp.Utilization
			}
		}
		var contended float64
		if r.Report.TotalCycles > 0 {
			contended = r.Report.Bus.ContendedCycles / r.Report.TotalCycles
		}
		var redundant, executed int64
		for _, sr := range r.Report.Strata {
			redundant += sr.RedundantMACs
			executed += sr.ExecutedMACs
		}
		var redundPct float64
		if executed > 0 {
			redundPct = 100 * float64(redundant) / float64(executed)
		}
		fallback := ""
		if r.Report.Compile != nil {
			fallback = r.Report.Compile.Fallback
		}
		fmt.Fprintf(w, "%-17s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% %7.1f%% | %8.0f%% %8.1f%% %7.2f%% %-14s\n",
			r.Model, 100*f.Compute, 100*f.Halo, 100*f.Load, 100*f.Store, 100*f.Stall, 100*f.Idle,
			100*peakUtil, 100*contended, redundPct, fallback)
	}
	fmt.Fprintln(w, "compute+halo+load+store+stall+idle = 100% per core by construction; the admission check holds SPM-peak <= 100%; fallback is how far the compile driver backed off to fit")
}

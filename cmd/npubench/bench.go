package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/plan"
	"repro/internal/sim"
)

// engineSample is one engine's measurement on one model.
type engineSample struct {
	NsPerOp     int64   `json:"ns_op"`
	AllocsPerOp int64   `json:"allocs_op"`
	BytesPerOp  int64   `json:"bytes_op"`
	Iterations  int     `json:"iterations"`
	LatencyUS   float64 `json:"latency_us"`
}

// benchRow is the A/B comparison for one benchmark model. EventCtx
// re-measures the event engine with a live context.Context installed
// (cooperative cancellation checkpoints armed), and CtxOverhead is its
// fractional slowdown over the bare event engine — the serving layer's
// deadline support is designed to cost <=1% here, and the JSON keeps
// the receipts.
type benchRow struct {
	Model       string       `json:"model"`
	Instrs      int          `json:"instrs"`
	Reference   engineSample `json:"reference"`
	Event       engineSample `json:"event"`
	EventCtx    engineSample `json:"event_ctx"`
	Speedup     float64      `json:"speedup"`
	CtxOverhead float64      `json:"ctx_overhead"`
}

// benchReport is the BENCH_sim.json schema.
type benchReport struct {
	BenchTime string     `json:"bench_time"`
	Arch      string     `json:"arch"`
	Config    string     `json:"config"`
	Rows      []benchRow `json:"rows"`
}

// runSimBench A/B-benchmarks the event engine against the retained
// reference engine over every Table 2 model on precompiled programs,
// prints the comparison, and writes it as JSON (the BENCH_sim.json
// artifact CI archives). Correctness of the comparison rests on the
// sim package's equivalence tests, which hold the engines
// bit-identical — so the ratio here is pure engine overhead.
func runSimBench(w io.Writer, jsonPath string, benchTime time.Duration) error {
	a := arch.Exynos2100Like()
	opt := core.Stratum()
	report := benchReport{BenchTime: benchTime.String(), Arch: a.Name, Config: opt.Name()}

	measure := func(p *plan.Program, cfg sim.Config, run func(*plan.Program, sim.Config) (*sim.Result, error)) (engineSample, error) {
		var simErr error
		var latency float64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out, err := run(p, cfg)
				if err != nil {
					simErr = err
					b.FailNow()
				}
				latency = out.Stats.LatencyMicros(a.ClockMHz)
			}
		})
		if simErr != nil {
			return engineSample{}, simErr
		}
		return engineSample{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			Iterations:  r.N,
			LatencyUS:   latency,
		}, nil
	}

	if err := setBenchTime(benchTime); err != nil {
		return err
	}

	fmt.Fprintf(w, "%-18s %14s %14s %14s %8s %9s\n",
		"model", "reference", "event", "event+ctx", "speedup", "ctx ovhd")
	for _, m := range models.All() {
		res, err := core.Compile(m.Build(), a, opt)
		if err != nil {
			return fmt.Errorf("compile %s: %v", m.Name, err)
		}
		ref, err := measure(res.Program, sim.Config{}, sim.RunReference)
		if err != nil {
			return fmt.Errorf("%s reference: %v", m.Name, err)
		}
		ev, err := measure(res.Program, sim.Config{}, sim.Run)
		if err != nil {
			return fmt.Errorf("%s event: %v", m.Name, err)
		}
		evCtx, err := measure(res.Program, sim.Config{Ctx: context.Background()}, sim.Run)
		if err != nil {
			return fmt.Errorf("%s event+ctx: %v", m.Name, err)
		}
		row := benchRow{
			Model:       m.Name,
			Instrs:      res.Program.NumInstrs(),
			Reference:   ref,
			Event:       ev,
			EventCtx:    evCtx,
			Speedup:     float64(ref.NsPerOp) / float64(ev.NsPerOp),
			CtxOverhead: float64(evCtx.NsPerOp)/float64(ev.NsPerOp) - 1,
		}
		report.Rows = append(report.Rows, row)
		fmt.Fprintf(w, "%-18s %12dns %12dns %12dns %7.2fx %8.2f%%\n",
			row.Model, ref.NsPerOp, ev.NsPerOp, evCtx.NsPerOp, row.Speedup, 100*row.CtxOverhead)
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "benchmark report written to %s\n", jsonPath)
	return nil
}

// setBenchTime points the testing package's -test.benchtime at d so
// testing.Benchmark measures long enough to be stable but short enough
// for a CI smoke run.
func setBenchTime(d time.Duration) error {
	testing.Init()
	return flag.Set("test.benchtime", d.String())
}

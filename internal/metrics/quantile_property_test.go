package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestQuantilePropertyMonotone: on random inputs the quantiles are
// monotone in q — p50 <= p90 <= p99 <= p99.9, and generally any
// increasing sequence of q values yields a non-decreasing sequence.
func TestQuantilePropertyMonotone(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		var h Histogram
		n := 1 + rng.Intn(2000)
		for i := 0; i < n; i++ {
			// Log-uniform over ~6 decades, the shape of real latency data.
			us := math.Exp(rng.Float64() * math.Log(1e6))
			h.Observe(time.Duration(us) * time.Microsecond)
		}
		prev := time.Duration(-1)
		for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1} {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: quantile %v = %v below previous %v", trial, q, v, prev)
			}
			prev = v
		}
		s := h.Snapshot()
		if s.P50US > s.P90US || s.P90US > s.P99US || s.P99US > s.P999US {
			t.Fatalf("trial %d: snapshot not monotone: %+v", trial, s)
		}
	}
}

// TestQuantilePropertySqrt2: the reported quantile is within a factor
// of sqrt(2) of the true order statistic on random inputs (with 1 µs
// of slack for integer truncation at the bucket edges).
func TestQuantilePropertySqrt2(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		var h Histogram
		n := 1 + rng.Intn(3000)
		obs := make([]int64, n)
		for i := range obs {
			var us int64
			switch rng.Intn(3) {
			case 0: // uniform small
				us = int64(rng.Intn(1000))
			case 1: // log-uniform wide
				us = int64(math.Exp(rng.Float64() * math.Log(1e8)))
			default: // heavy repeats
				us = int64(1 << uint(rng.Intn(20)))
			}
			obs[i] = us
			h.Observe(time.Duration(us) * time.Microsecond)
		}
		sort.Slice(obs, func(i, j int) bool { return obs[i] < obs[j] })
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
			rank := int64(q * float64(n-1))
			truth := float64(obs[rank])
			got := float64(h.Quantile(q).Microseconds())
			lo := truth/math.Sqrt2 - 1
			hi := truth*math.Sqrt2 + 1
			if got < lo || got > hi {
				t.Errorf("trial %d q=%v: got %v µs, true order statistic %v µs (allowed [%v, %v])",
					trial, q, got, truth, lo, hi)
			}
		}
	}
}

// TestQuantileEdges: the 0/empty edge cases are exact.
func TestQuantileEdges(t *testing.T) {
	var h Histogram
	if h.Quantile(0) != 0 || h.Quantile(0.5) != 0 || h.Quantile(1) != 0 {
		t.Fatal("empty histogram must report 0 at every quantile")
	}
	var d Dist
	if d.Quantile(0.5) != 0 {
		t.Fatal("empty Dist must report 0")
	}

	// All-zero observations stay exactly 0 at every quantile.
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("all-zero observations: quantile %v = %v, want 0", q, v)
		}
	}

	// Out-of-range q clamps rather than panics.
	h.Observe(100 * time.Microsecond)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q < 0 should clamp to 0")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q > 1 should clamp to 1")
	}
}

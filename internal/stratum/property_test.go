package stratum

import (
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/schedule"
	"repro/internal/tensor"
)

// Property: for random conv-chain geometries, stratum construction
// always yields a valid decomposition with non-negative redundancy,
// and every expanded region contains its planned region.
func TestStratumBuildProperties(t *testing.T) {
	a := arch.Exynos2100Like()
	f := func(hRaw, cRaw, depthRaw, kSel uint8) bool {
		h := int(hRaw%80) + 16
		c := int(cRaw%24) + 1
		depth := int(depthRaw%5) + 2
		k := []int{1, 3, 5}[int(kSel)%3]
		pad := k / 2

		g := graph.New("q", tensor.Int8)
		prev := g.Input("input", tensor.NewShape(h, h, c))
		for i := 0; i < depth; i++ {
			id, err := g.Add(
				"conv"+string(rune('a'+i)),
				ops.NewConv2D(k, k, 1, 1, c, ops.Padding{Top: pad, Bottom: pad, Left: pad, Right: pad}),
				prev)
			if err != nil {
				return true
			}
			prev = id
		}

		p := partition.New(g, a)
		plans := p.PlanAll()
		pred := func(l *graph.Layer) bool { return plans[l.ID].Direction.Spatial() }
		order := schedule.New(g, pred).Order()
		b := New(g, a, plans, order)
		strata := b.Build()
		if b.Validate(strata) != nil {
			return false
		}
		var trimmedAll []Stratum
		for _, s := range strata {
			if s.RedundantMACs < 0 {
				return false
			}
			// TrimToFit must preserve the layer set.
			trimmed := b.TrimToFit(&s)
			total := 0
			for _, ts := range trimmed {
				total += ts.Len()
			}
			if total != s.Len() {
				return false
			}
			trimmedAll = append(trimmedAll, trimmed...)
		}
		// The concatenated trimmed decomposition must validate (this is
		// what the compiler lowers).
		return b.Validate(trimmedAll) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

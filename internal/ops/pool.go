package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// MaxPool2D is a sliding-window max reduction over each channel.
type MaxPool2D struct {
	KH, KW           int
	StrideH, StrideW int
	Pad              Padding
}

// Kind implements Op.
func (MaxPool2D) Kind() Kind { return KindMaxPool2D }

func (o MaxPool2D) hWin() window { return window{k: o.KH, stride: o.StrideH, dil: 1, padLo: o.Pad.Top} }
func (o MaxPool2D) wWin() window {
	return window{k: o.KW, stride: o.StrideW, dil: 1, padLo: o.Pad.Left}
}

// OutShape implements Op.
func (o MaxPool2D) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("MaxPool2D", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h, err := o.hWin().outExtent(in[0].H, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	w, err := o.wWin().outExtent(in[0].W, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(h, w, in[0].C), nil
}

// MACs implements Op: one comparison per window element.
func (o MaxPool2D) MACs(ext tensor.Shape, _ []tensor.Shape) int64 {
	return ext.Elems() * int64(o.KH) * int64(o.KW)
}

// KernelBytes implements Op: pooling has no weights.
func (MaxPool2D) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op.
func (o MaxPool2D) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := out
	r = spanToAxis(r, tensor.AxisH, o.hWin(), out, in[0].H)
	r = spanToAxis(r, tensor.AxisW, o.wWin(), out, in[0].W)
	return r
}

// SupportsPartition implements Op.
func (MaxPool2D) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op: pooling is channel-wise (heuristic h4).
func (MaxPool2D) ChannelWise() bool { return true }

func (o MaxPool2D) String() string {
	return fmt.Sprintf("MaxPool2D(%dx%d,s%dx%d)", o.KH, o.KW, o.StrideH, o.StrideW)
}

// AvgPool2D is a sliding-window average over each channel.
type AvgPool2D struct {
	KH, KW           int
	StrideH, StrideW int
	Pad              Padding
}

// Kind implements Op.
func (AvgPool2D) Kind() Kind { return KindAvgPool2D }

func (o AvgPool2D) hWin() window { return window{k: o.KH, stride: o.StrideH, dil: 1, padLo: o.Pad.Top} }
func (o AvgPool2D) wWin() window {
	return window{k: o.KW, stride: o.StrideW, dil: 1, padLo: o.Pad.Left}
}

// OutShape implements Op.
func (o AvgPool2D) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("AvgPool2D", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	h, err := o.hWin().outExtent(in[0].H, o.Pad.Bottom)
	if err != nil {
		return tensor.Shape{}, err
	}
	w, err := o.wWin().outExtent(in[0].W, o.Pad.Right)
	if err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(h, w, in[0].C), nil
}

// MACs implements Op: one add per window element.
func (o AvgPool2D) MACs(ext tensor.Shape, _ []tensor.Shape) int64 {
	return ext.Elems() * int64(o.KH) * int64(o.KW)
}

// KernelBytes implements Op.
func (AvgPool2D) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op.
func (o AvgPool2D) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := out
	r = spanToAxis(r, tensor.AxisH, o.hWin(), out, in[0].H)
	r = spanToAxis(r, tensor.AxisW, o.wWin(), out, in[0].W)
	return r
}

// SupportsPartition implements Op.
func (AvgPool2D) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (AvgPool2D) ChannelWise() bool { return true }

func (o AvgPool2D) String() string {
	return fmt.Sprintf("AvgPool2D(%dx%d,s%dx%d)", o.KH, o.KW, o.StrideH, o.StrideW)
}

// GlobalAvgPool reduces the full spatial extent of each channel to a
// single value (output 1x1xC).
type GlobalAvgPool struct{}

// Kind implements Op.
func (GlobalAvgPool) Kind() Kind { return KindGlobalAvgPool }

// OutShape implements Op.
func (GlobalAvgPool) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("GlobalAvgPool", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	return tensor.NewShape(1, 1, in[0].C), nil
}

// MACs implements Op: one add per input element reduced.
func (GlobalAvgPool) MACs(ext tensor.Shape, in []tensor.Shape) int64 {
	return int64(ext.C) * int64(in[0].H) * int64(in[0].W)
}

// KernelBytes implements Op.
func (GlobalAvgPool) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: a channel slice of the output needs the
// whole spatial plane of those channels.
func (GlobalAvgPool) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := tensor.WholeRegion(in[0])
	r.Off = r.Off.WithDim(tensor.AxisC, out.Off.C)
	r.Ext = r.Ext.WithDim(tensor.AxisC, out.Ext.C)
	return r
}

// SupportsPartition implements Op: only the channel axis splits without
// a partial-sum reduction; the 1x1 spatial output cannot be split.
func (GlobalAvgPool) SupportsPartition(a tensor.Axis) bool { return a == tensor.AxisC }

// ChannelWise implements Op.
func (GlobalAvgPool) ChannelWise() bool { return true }

func (GlobalAvgPool) String() string { return "GlobalAvgPool" }

// Command npuc compiles a benchmark network for the simulated
// multicore NPU and dumps the compiler's decisions: the layer
// execution schedule, per-layer partitioning direction with the
// deciding heuristic, the strata, and the lowered instruction counts.
//
// Usage:
//
//	npuc -model InceptionV3 -cores 3 -config stratum
//	npuc -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/models"
	"repro/internal/partition"
	"repro/internal/report"
	"repro/internal/serialize"
)

func main() {
	model := flag.String("model", "MobileNetV2", "benchmark model name (see -list)")
	list := flag.Bool("list", false, "list benchmark models and exit")
	cores := flag.Int("cores", 3, "number of NPU cores (1 = single-core baseline, 3 = Exynos-2100-like)")
	config := flag.String("config", "stratum", "optimization configuration: base, halo, stratum")
	mode := flag.String("partition", "adaptive", "partitioning policy: adaptive, spatial, channel")
	verbose := flag.Bool("v", false, "print every layer's partitioning decision")
	out := flag.String("o", "", "write the compiled program (JSON) to this file for npusim -in")
	layers := flag.Bool("layers", false, "print a per-layer decision table")
	dot := flag.String("dot", "", "write a Graphviz DOT rendering (colored by direction, clustered by stratum)")
	flag.Parse()

	if *list {
		for _, m := range models.All() {
			fmt.Printf("%-17s %-17s input %s (%s)\n", m.Name, m.Category, m.Input, m.DType)
		}
		for _, m := range models.Extra() {
			fmt.Printf("%-17s %-17s input %s (%s)  [extra]\n", m.Name, m.Category, m.Input, m.DType)
		}
		return
	}

	m, err := models.ByName(*model)
	if err != nil {
		fatal(err)
	}
	g := m.Build()

	a, err := cliutil.Arch(*cores)
	if err != nil {
		fatal(err)
	}
	opt, err := cliutil.Config(*config)
	if err != nil {
		fatal(err)
	}
	opt.Partitioning, err = cliutil.Mode(*mode)
	if err != nil {
		fatal(err)
	}

	res, err := core.Compile(g, a, opt)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s on %s, %s configuration (%s partitioning)\n", g.Name, a.Name, opt.Name(), opt.Partitioning)
	fmt.Printf("layers: %d   MACs: %.2fG   weights: %.1fMB\n",
		g.Len(), float64(g.TotalMACs())/1e9, float64(g.TotalKernelBytes())/1e6)
	fmt.Printf("instructions: %d   barriers: %d   redundant MACs: %.3fG\n",
		res.Program.NumInstrs(), res.Program.NumBarriers, float64(res.RedundantMACs)/1e9)

	dirCount := map[partition.Direction]int{}
	for _, l := range g.Layers() {
		if !l.IsInput() {
			dirCount[res.Plans[l.ID].Direction]++
		}
	}
	fmt.Printf("directions: spatial-H %d, spatial-W %d, channel %d, none %d\n",
		dirCount[partition.DirSpatialH], dirCount[partition.DirSpatialW],
		dirCount[partition.DirChannel], dirCount[partition.DirNone])

	multi := 0
	for _, s := range res.Strata {
		if s.Len() > 1 {
			multi++
		}
	}
	fmt.Printf("strata: %d total, %d multi-layer\n", len(res.Strata), multi)
	for _, s := range res.Strata {
		if s.Len() <= 1 {
			continue
		}
		fmt.Printf("  stratum of %d layers:", s.Len())
		for _, id := range s.Layers {
			fmt.Printf(" %s", g.Layer(id).Name)
		}
		fmt.Printf("  (+%.1fM redundant MACs)\n", float64(s.RedundantMACs)/1e6)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := serialize.SaveProgram(f, res.Program); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("compiled program written to %s\n", *out)
	}

	if *layers {
		fmt.Println()
		if err := report.Layers(os.Stdout, g, res); err != nil {
			fatal(err)
		}
	}
	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			fatal(err)
		}
		if err := report.DOT(f, g, res); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("DOT graph written to %s (render with: dot -Tsvg)\n", *dot)
	}

	if *verbose {
		fmt.Println("\nschedule (execution order):")
		for _, id := range res.Order {
			l := g.Layer(id)
			if l.IsInput() {
				continue
			}
			p := res.Plans[id]
			fmt.Printf("  %-28s %-9s %s\n", l.Name, p.Direction, p.Reason)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "npuc:", err)
	os.Exit(1)
}

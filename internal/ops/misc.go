package ops

import (
	"fmt"

	"repro/internal/tensor"
)

// Concat concatenates its inputs along the channel axis (Inception
// branches, SSD feature pyramids, UNet skip connections).
type Concat struct {
	Arity int // number of inputs, >= 2
}

// Kind implements Op.
func (Concat) Kind() Kind { return KindConcat }

// OutShape implements Op.
func (o Concat) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	n := o.Arity
	if n == 0 {
		n = 2
	}
	if err := checkArity("Concat", in, n); err != nil {
		return tensor.Shape{}, err
	}
	c := 0
	for i, s := range in {
		if s.H != in[0].H || s.W != in[0].W {
			return tensor.Shape{}, fmt.Errorf("ops: Concat input %d spatial %dx%d != %dx%d", i, s.H, s.W, in[0].H, in[0].W)
		}
		c += s.C
	}
	return tensor.NewShape(in[0].H, in[0].W, c), nil
}

// MACs implements Op: concatenation is pure data movement; charge one
// op per element copied so tiles have a nonzero compute stage.
func (Concat) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return ext.Elems() }

// KernelBytes implements Op.
func (Concat) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// channelBase returns the output-channel offset at which input inIdx
// begins.
func channelBase(inIdx int, in []tensor.Shape) int {
	base := 0
	for i := 0; i < inIdx; i++ {
		base += in[i].C
	}
	return base
}

// InputRegion implements Op: the slice of input inIdx whose channel
// range intersects the requested output channels, shifted into the
// input's own channel coordinates.
func (Concat) InputRegion(out tensor.Region, inIdx int, in []tensor.Shape) tensor.Region {
	base := channelBase(inIdx, in)
	lo := out.Off.C - base
	hi := out.End(tensor.AxisC) - base
	if lo < 0 {
		lo = 0
	}
	if hi > in[inIdx].C {
		hi = in[inIdx].C
	}
	if hi < lo {
		hi = lo
	}
	r := out
	r.Off = r.Off.WithDim(tensor.AxisC, lo)
	r.Ext = r.Ext.WithDim(tensor.AxisC, hi-lo)
	return r
}

// SupportsPartition implements Op.
func (Concat) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Concat) ChannelWise() bool { return false }

func (o Concat) String() string { return fmt.Sprintf("Concat(x%d)", o.Arity) }

// FullyConnected maps a 1x1xInC vector to a 1x1xOutC vector (classifier
// heads).
type FullyConnected struct {
	OutC int
}

// Kind implements Op.
func (FullyConnected) Kind() Kind { return KindFullyConnected }

// OutShape implements Op.
func (o FullyConnected) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("FullyConnected", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	if in[0].H != 1 || in[0].W != 1 {
		return tensor.Shape{}, fmt.Errorf("ops: FullyConnected input must be 1x1xC, got %s", in[0])
	}
	return tensor.NewShape(1, 1, o.OutC), nil
}

// MACs implements Op.
func (o FullyConnected) MACs(ext tensor.Shape, in []tensor.Shape) int64 {
	return int64(ext.C) * int64(in[0].C)
}

// KernelBytes implements Op.
func (o FullyConnected) KernelBytes(ext tensor.Shape, in []tensor.Shape, dt tensor.DType) int64 {
	perChan := int64(in[0].C)*int64(dt.Size()) + int64(tensor.Int32.Size())
	return perChan * int64(ext.C)
}

// InputRegion implements Op: every output needs the whole input vector.
func (FullyConnected) InputRegion(_ tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	return tensor.WholeRegion(in[0])
}

// SupportsPartition implements Op: only output channels can be split
// (the 1x1 spatial extent admits no spatial parallelism).
func (FullyConnected) SupportsPartition(a tensor.Axis) bool { return a == tensor.AxisC }

// ChannelWise implements Op.
func (FullyConnected) ChannelWise() bool { return false }

func (o FullyConnected) String() string { return fmt.Sprintf("FullyConnected(outC=%d)", o.OutC) }

// Softmax normalizes along the channel axis.
type Softmax struct{}

// Kind implements Op.
func (Softmax) Kind() Kind { return KindSoftmax }

// OutShape implements Op.
func (Softmax) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Softmax", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	return in[0], nil
}

// MACs implements Op: exp, sum, divide — roughly 4 ops per element.
func (Softmax) MACs(ext tensor.Shape, _ []tensor.Shape) int64 { return 4 * ext.Elems() }

// KernelBytes implements Op.
func (Softmax) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op: each output pixel needs all channels of
// that pixel.
func (Softmax) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	r := out
	r.Off = r.Off.WithDim(tensor.AxisC, 0)
	r.Ext = r.Ext.WithDim(tensor.AxisC, in[0].C)
	return r
}

// SupportsPartition implements Op: the channel reduction forbids
// channel partitioning; spatial is free.
func (Softmax) SupportsPartition(a tensor.Axis) bool { return a.Spatial() }

// ChannelWise implements Op.
func (Softmax) ChannelWise() bool { return false }

func (Softmax) String() string { return "Softmax" }

// ResizeMode selects the interpolation used by Resize.
type ResizeMode int

// Interpolation modes.
const (
	Nearest ResizeMode = iota
	Bilinear
)

// String returns the mode name.
func (m ResizeMode) String() string {
	if m == Nearest {
		return "nearest"
	}
	return "bilinear"
}

// Resize scales the spatial extent by an integer factor (DeepLabV3+
// decoder upsampling).
type Resize struct {
	ScaleH, ScaleW int
	Mode           ResizeMode
}

// Kind implements Op.
func (Resize) Kind() Kind { return KindResize }

// OutShape implements Op.
func (o Resize) OutShape(in []tensor.Shape) (tensor.Shape, error) {
	if err := checkArity("Resize", in, 1); err != nil {
		return tensor.Shape{}, err
	}
	if o.ScaleH < 1 || o.ScaleW < 1 {
		return tensor.Shape{}, fmt.Errorf("ops: Resize scale %dx%d must be >= 1", o.ScaleH, o.ScaleW)
	}
	return tensor.NewShape(in[0].H*o.ScaleH, in[0].W*o.ScaleW, in[0].C), nil
}

// MACs implements Op: nearest is a copy (1 op); bilinear blends 4
// neighbours (4 ops).
func (o Resize) MACs(ext tensor.Shape, _ []tensor.Shape) int64 {
	if o.Mode == Bilinear {
		return 4 * ext.Elems()
	}
	return ext.Elems()
}

// KernelBytes implements Op.
func (Resize) KernelBytes(tensor.Shape, []tensor.Shape, tensor.DType) int64 { return 0 }

// InputRegion implements Op. Bilinear sampling uses half-pixel source
// centers, so it can read one source row/column on either side of the
// scaled interval.
func (o Resize) InputRegion(out tensor.Region, _ int, in []tensor.Shape) tensor.Region {
	h0 := out.Off.H / o.ScaleH
	h1 := (out.End(tensor.AxisH)-1)/o.ScaleH + 1
	w0 := out.Off.W / o.ScaleW
	w1 := (out.End(tensor.AxisW)-1)/o.ScaleW + 1
	if o.Mode == Bilinear {
		h0--
		h1++
		w0--
		w1++
	}
	if h0 < 0 {
		h0 = 0
	}
	if w0 < 0 {
		w0 = 0
	}
	if h1 > in[0].H {
		h1 = in[0].H
	}
	if w1 > in[0].W {
		w1 = in[0].W
	}
	r := out
	r.Off = tensor.NewShape(h0, w0, out.Off.C)
	r.Ext = tensor.NewShape(h1-h0, w1-w0, out.Ext.C)
	return r
}

// SupportsPartition implements Op.
func (Resize) SupportsPartition(tensor.Axis) bool { return true }

// ChannelWise implements Op.
func (Resize) ChannelWise() bool { return true }

func (o Resize) String() string { return fmt.Sprintf("Resize(x%dx%d,%s)", o.ScaleH, o.ScaleW, o.Mode) }

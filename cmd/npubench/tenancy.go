package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/loadgen"
	"repro/internal/tenancy"
)

// runTenancy is the -experiment tenancy hook: a fixed 3-tenant
// serving scenario on the Exynos-2100-like platform — a resident
// camera pipeline, a heavier segmentation tenant arriving mid-run, and
// a short high-priority burst that preempts both — co-scheduled by the
// tenancy scheduler and then replayed under seeded Poisson load. The
// report (BENCH_tenancy.json) carries per-tenant SLO hit rates and
// interference and is byte-identical across reruns at the same seed.
func runTenancy(w io.Writer, benchPath string, seed uint64) error {
	a := arch.Exynos2100Like()
	loads := []loadgen.TenantLoad{
		{Tenant: tenancy.Tenant{
			Name: "cam", Model: "MobileNetV2", Priority: 2, SLOUS: 9000,
		}},
		{Tenant: tenancy.Tenant{
			Name: "seg", Model: "InceptionV3", Priority: 1, SLOUS: 20000, ArriveUS: 4000,
		}, RPS: 200},
		{Tenant: tenancy.Tenant{
			Name: "burst", Model: "ShuffleNetV2", Priority: 3, SLOUS: 6000,
			ArriveUS: 8000, DepartUS: 14000,
		}, RPS: 1500},
	}
	rep, err := loadgen.RunTenants(a, loads, loadgen.TenantsOptions{
		HorizonUS: 20000,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	rep.Schedule.Print(w)
	fmt.Fprintf(w, "per-tenant Poisson replay (seed %d):\n", seed)
	if err := rep.WriteTable(w); err != nil {
		return err
	}
	f, err := os.Create(benchPath)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "report written to %s\n", benchPath)
	return nil
}

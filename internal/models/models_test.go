package models

import (
	"testing"

	"repro/internal/tensor"
)

func TestAllModelsBuildAndValidate(t *testing.T) {
	for _, m := range All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			g := m.Build()
			if err := g.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			ins := g.InputLayers()
			if len(ins) != 1 {
				t.Fatalf("inputs = %d", len(ins))
			}
			if ins[0].OutShape != m.Input {
				t.Errorf("input shape %v, want %v", ins[0].OutShape, m.Input)
			}
			if g.DType != m.DType {
				t.Errorf("dtype %v, want %v", g.DType, m.DType)
			}
			if g.TotalMACs() <= 0 || g.TotalKernelBytes() <= 0 {
				t.Error("zero MACs or weights")
			}
		})
	}
}

func TestByName(t *testing.T) {
	m, err := ByName("UNet")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "UNet" {
		t.Errorf("got %q", m.Name)
	}
	if _, err := ByName("ResNet-9000"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestInceptionV3Shapes(t *testing.T) {
	g := InceptionV3()
	cases := []struct {
		layer string
		shape tensor.Shape
	}{
		{"stem_conv1", tensor.NewShape(149, 149, 32)},
		{"stem_pool2", tensor.NewShape(35, 35, 192)},
		{"mixedA0_concat", tensor.NewShape(35, 35, 256)},
		{"mixedA2_concat", tensor.NewShape(35, 35, 288)},
		{"reductionA_concat", tensor.NewShape(17, 17, 768)},
		{"mixedC3_concat", tensor.NewShape(17, 17, 768)},
		{"reductionB_concat", tensor.NewShape(8, 8, 1280)},
		{"mixedE1_concat", tensor.NewShape(8, 8, 2048)},
		{"fc", tensor.NewShape(1, 1, 1000)},
	}
	for _, c := range cases {
		l, ok := g.LayerByName(c.layer)
		if !ok {
			t.Errorf("layer %q missing", c.layer)
			continue
		}
		if l.OutShape != c.shape {
			t.Errorf("%s: %v, want %v", c.layer, l.OutShape, c.shape)
		}
	}
	// ~5.7 GMACs for InceptionV3 at 299x299 (fused-BN INT8 deploy).
	macs := g.TotalMACs()
	if macs < 5e9 || macs > 7e9 {
		t.Errorf("InceptionV3 MACs = %.2fG, want ~5.7G", float64(macs)/1e9)
	}
}

func TestInceptionV3Stem(t *testing.T) {
	stem := InceptionV3Stem()
	if err := stem.Validate(); err != nil {
		t.Fatal(err)
	}
	outs := stem.OutputLayers()
	if len(outs) != 1 || outs[0].Name != "stem_pool2" {
		t.Errorf("stem output = %v", outs)
	}
	if stem.Len() >= InceptionV3().Len() {
		t.Error("stem not a strict prefix")
	}
}

func TestMobileNetV2Shapes(t *testing.T) {
	g := MobileNetV2()
	l, ok := g.LayerByName("conv_last_relu")
	if !ok {
		t.Fatal("conv_last missing")
	}
	if l.OutShape != tensor.NewShape(7, 7, 1280) {
		t.Errorf("final feature %v, want 7x7x1280", l.OutShape)
	}
	// ~0.3 GMACs for MobileNetV2.
	macs := g.TotalMACs()
	if macs < 2e8 || macs > 5e8 {
		t.Errorf("MobileNetV2 MACs = %.2fG, want ~0.3G", float64(macs)/1e9)
	}
}

func TestMobileNetV2SSDOutputs(t *testing.T) {
	g := MobileNetV2SSD()
	outs := g.OutputLayers()
	// Six scales, each with a class and a box head.
	if len(outs) != 12 {
		t.Errorf("SSD outputs = %d, want 12", len(outs))
	}
	l, ok := g.LayerByName("head0_cls")
	if !ok {
		t.Fatal("head0_cls missing")
	}
	if l.OutShape.H != 19 || l.OutShape.W != 19 {
		t.Errorf("first head at %v, want 19x19", l.OutShape)
	}
	last, ok := g.LayerByName("head5_box")
	if !ok {
		t.Fatal("head5_box missing")
	}
	if last.OutShape.H != 1 || last.OutShape.W != 1 {
		t.Errorf("last head at %v, want 1x1", last.OutShape)
	}
}

func TestMobileDetSSDOutputs(t *testing.T) {
	g := MobileDetSSD()
	outs := g.OutputLayers()
	if len(outs) != 12 {
		t.Errorf("outputs = %d, want 12", len(outs))
	}
	l, ok := g.LayerByName("head0_cls")
	if !ok {
		t.Fatal("head0_cls missing")
	}
	if l.OutShape.H != 20 || l.OutShape.W != 20 {
		t.Errorf("first head at %v, want 20x20", l.OutShape)
	}
}

func TestDeepLabShapes(t *testing.T) {
	g := DeepLabV3Plus()
	if g.DType != tensor.Int16 {
		t.Error("DeepLabV3+ must be INT16")
	}
	aspp, ok := g.LayerByName("aspp_concat")
	if !ok {
		t.Fatal("aspp_concat missing")
	}
	if aspp.OutShape != tensor.NewShape(33, 33, 1280) {
		t.Errorf("ASPP concat %v, want 33x33x1280", aspp.OutShape)
	}
	sm, ok := g.LayerByName("softmax")
	if !ok {
		t.Fatal("softmax missing")
	}
	if sm.OutShape != tensor.NewShape(513, 513, 21) {
		t.Errorf("output %v, want 513x513x21", sm.OutShape)
	}
}

func TestUNetShapes(t *testing.T) {
	g := UNet()
	cases := []struct {
		layer string
		shape tensor.Shape
	}{
		{"enc0_conv2_relu", tensor.NewShape(568, 568, 64)},
		{"enc3_conv2_relu", tensor.NewShape(64, 64, 512)},
		{"mid_conv2_relu", tensor.NewShape(28, 28, 1024)},
		{"dec3_up", tensor.NewShape(56, 56, 512)},
		{"dec0_conv2_relu", tensor.NewShape(388, 388, 64)},
		{"softmax", tensor.NewShape(388, 388, 2)},
	}
	for _, c := range cases {
		l, ok := g.LayerByName(c.layer)
		if !ok {
			t.Errorf("layer %q missing", c.layer)
			continue
		}
		if l.OutShape != c.shape {
			t.Errorf("%s: %v, want %v", c.layer, l.OutShape, c.shape)
		}
	}
}

func TestSmallModels(t *testing.T) {
	g := TinyCNN()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	c := ConvChain(4, 32, 32, 16)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 5 { // input + 4 convs
		t.Errorf("chain len = %d", c.Len())
	}
}

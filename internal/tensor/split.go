package tensor

import "fmt"

// RoundUp returns the smallest multiple of align that is >= n.
// align <= 1 returns n unchanged.
func RoundUp(n, align int) int {
	if align <= 1 {
		return n
	}
	rem := n % align
	if rem == 0 {
		return n
	}
	return n + align - rem
}

// RoundDown returns the largest multiple of align that is <= n.
// align <= 1 returns n unchanged.
func RoundDown(n, align int) int {
	if align <= 1 {
		return n
	}
	return n - n%align
}

// SplitWeighted divides an extent of total elements into len(weights)
// contiguous chunks whose sizes are proportional to weights, with every
// chunk boundary (and therefore every chunk size except possibly the
// last) aligned to align elements. Chunks may be zero-sized when total
// is too small to give every consumer an aligned share; the chunks
// always sum exactly to total.
//
// This implements the paper's heterogeneous load balancing: the
// partitioning ratio of each core follows its computing power and
// memory bandwidth, subject to the NPU core's data alignment
// constraints (Section 3.1.1).
func SplitWeighted(total int, weights []float64, align int) []int {
	if total < 0 {
		panic(fmt.Sprintf("tensor: negative split total %d", total))
	}
	n := len(weights)
	if n == 0 {
		return nil
	}
	chunks := make([]int, n)
	var wsum float64
	for _, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("tensor: negative split weight %g", w))
		}
		wsum += w
	}
	if wsum == 0 {
		// Degenerate: all weights zero. Give everything to chunk 0.
		chunks[0] = total
		return chunks
	}
	// Walk boundaries: boundary i is the aligned rounding of the ideal
	// cumulative share. The final boundary is pinned to total.
	prev := 0
	var cum float64
	for i := 0; i < n-1; i++ {
		cum += weights[i]
		ideal := int(float64(total)*cum/wsum + 0.5)
		b := RoundUp(ideal, align)
		if b > total {
			b = total
		}
		if b < prev {
			b = prev
		}
		chunks[i] = b - prev
		prev = b
	}
	chunks[n-1] = total - prev
	return chunks
}

// SplitEven divides total into n contiguous aligned chunks of roughly
// equal size. It is SplitWeighted with unit weights.
func SplitEven(total, n, align int) []int {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return SplitWeighted(total, w, align)
}

// ChunksToRegions converts chunk sizes along axis a into contiguous
// regions covering whole, in order. Chunks of size zero yield empty
// regions (which callers typically skip: that core receives no work
// for the layer).
func ChunksToRegions(whole Shape, a Axis, chunks []int) []Region {
	regions := make([]Region, len(chunks))
	off := 0
	for i, sz := range chunks {
		r := WholeRegion(whole)
		r.Off = r.Off.WithDim(a, off)
		r.Ext = r.Ext.WithDim(a, sz)
		regions[i] = r
		off += sz
	}
	if off != whole.Dim(a) {
		panic(fmt.Sprintf("tensor: chunks sum %d != extent %d along %s", off, whole.Dim(a), a))
	}
	return regions
}

package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/models"
	"repro/internal/sim"
	"repro/internal/trace"
)

// regenGoldens rewrites the repository's simulator golden files in
// place (the -regen-golden flag, also reachable through go:generate):
//
//   - internal/sim/testdata/golden_cycles.json — the reference engine's
//     cycle counts for every benchmark model compiled under +Stratum on
//     the three-core platform, across the equivalence fault matrix
//     (minus the kill plan, whose failure path the DeepEqual tests
//     cover);
//   - internal/trace/testdata/chrome_tinycnn.json — the exact Chrome
//     trace JSON of TinyCNN under +Halo.
//
// The generation mirrors TestEngineGoldenCycles and TestChromeGolden
// byte for byte, and cross-checks the event engine against the
// reference engine on every golden point so a regen can never pin a
// divergent pair.
func regenGoldens() error {
	root, err := repoRoot()
	if err != nil {
		return err
	}
	if err := regenGoldenCycles(filepath.Join(root, "internal", "sim", "testdata", "golden_cycles.json")); err != nil {
		return err
	}
	return regenChromeTrace(filepath.Join(root, "internal", "trace", "testdata", "chrome_tinycnn.json"))
}

// repoRoot walks up from the working directory to the directory holding
// go.mod, so the regen works from any subdirectory of the repository.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("regen-golden: no go.mod above %s (run inside the repository)", dir)
		}
		dir = parent
	}
}

// goldenFaultPlans mirrors the sim equivalence matrix minus the kill
// plan. The kill cycle parameter scales the throttle times to the
// model's fault-free latency, exactly as the tests do.
func goldenFaultPlans(killCycle float64) []struct {
	name string
	plan *fault.Plan
} {
	return []struct {
		name string
		plan *fault.Plan
	}{
		{"none", nil},
		{"drop", &fault.Plan{Seed: 7, DropRate: 0.01}},
		{"throttle-drop", &fault.Plan{
			Seed:     11,
			DropRate: 0.005,
			Throttles: []fault.Throttle{
				{Core: 1, AtCycle: killCycle * 0.2, Factor: 0.5},
				{Core: 0, AtCycle: killCycle * 0.5, Factor: 0.25},
				{Core: 1, AtCycle: killCycle * 0.8, Factor: 1},
			},
		}},
	}
}

func regenGoldenCycles(path string) error {
	a := arch.Exynos2100Like()
	got := map[string]float64{}
	for _, m := range append(models.All(), models.Extra()...) {
		res, err := core.Compile(m.Build(), a, core.Stratum())
		if err != nil {
			return fmt.Errorf("regen-golden: compile %s: %w", m.Name, err)
		}
		base, err := sim.RunReference(res.Program, sim.Config{})
		if err != nil {
			return fmt.Errorf("regen-golden: %s: reference run: %w", m.Name, err)
		}
		cores := make([]int, a.NumCores())
		for i := range cores {
			cores[i] = i
		}
		pl := []sim.Placement{{Program: res.Program, Cores: cores}}
		for _, tc := range goldenFaultPlans(base.Stats.TotalCycles) {
			key := m.Name + "/" + tc.name
			cfg := sim.Config{Faults: tc.plan}
			ref, err := sim.RunConcurrentReference(a, pl, cfg)
			if err != nil {
				return fmt.Errorf("regen-golden: %s: reference: %w", key, err)
			}
			ev, err := sim.RunConcurrent(a, pl, cfg)
			if err != nil {
				return fmt.Errorf("regen-golden: %s: event: %w", key, err)
			}
			if ev.Stats.TotalCycles != ref.Stats.TotalCycles {
				return fmt.Errorf("regen-golden: %s: engines diverge (event %v, reference %v) — refusing to pin",
					key, ev.Stats.TotalCycles, ref.Stats.TotalCycles)
			}
			got[key] = ref.Stats.TotalCycles
		}
	}
	data, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d golden cycle entries to %s\n", len(got), path)
	return nil
}

func regenChromeTrace(path string) error {
	a := arch.Exynos2100Like()
	res, err := core.Compile(models.TinyCNN(), a, core.Halo())
	if err != nil {
		return fmt.Errorf("regen-golden: compile TinyCNN: %w", err)
	}
	out, err := sim.Run(res.Program, sim.Config{CollectTrace: true})
	if err != nil {
		return fmt.Errorf("regen-golden: TinyCNN run: %w", err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, out.Trace, a); err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote Chrome trace golden to %s\n", path)
	return nil
}

package recovery

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// failWith compiles g for all of a's cores and runs it under the plan,
// requiring a core failure.
func failWith(t *testing.T, g *graph.Graph, a *arch.Arch, opt core.Options, p *fault.Plan) *sim.CoreFailure {
	t.Helper()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	_, err = sim.Run(res.Program, sim.Config{Faults: p})
	var cf *sim.CoreFailure
	if !errors.As(err, &cf) {
		t.Fatalf("expected core failure, got %v", err)
	}
	return cf
}

func cleanCycles(t *testing.T, g *graph.Graph, a *arch.Arch, opt core.Options) float64 {
	t.Helper()
	res, err := core.Compile(g, a, opt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.Run(res.Program, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return out.Stats.TotalCycles
}

func TestRecoverAfterEachCoreDeathMidStratum(t *testing.T) {
	// The quickstart net under +Stratum: kill each core in turn mid-run
	// and require the recovered output to be bit-exact vs the reference.
	g := models.TinyCNN()
	a := arch.Exynos2100Like()
	opt := core.Stratum()
	killAt := 0.4 * cleanCycles(t, g, a, opt)
	for victim := 0; victim < a.NumCores(); victim++ {
		plan := &fault.Plan{Deaths: []fault.Death{{Core: victim, AtCycle: killAt}}}
		cf := failWith(t, g, a, opt, plan)
		if cf.Core != victim {
			t.Fatalf("killed core %d, failure names %d", victim, cf.Core)
		}
		r, err := Recover(g, a, cf, Options{Opt: opt, Sim: sim.Config{Faults: plan}})
		if err != nil {
			t.Fatalf("victim %d: recover: %v", victim, err)
		}
		if len(r.Survivors) != a.NumCores()-1 {
			t.Errorf("victim %d: survivors %v", victim, r.Survivors)
		}
		for _, s := range r.Survivors {
			if s == victim {
				t.Errorf("victim %d listed as survivor", victim)
			}
		}
		if r.TotalCycles <= killAt {
			t.Errorf("victim %d: degraded latency %.0f not beyond failure point %.0f",
				victim, r.TotalCycles, killAt)
		}
		if err := Validate(g, r); err != nil {
			t.Errorf("victim %d: recovered numerics wrong: %v", victim, err)
		}
	}
}

func TestRecoverResumesFromCheckpoint(t *testing.T) {
	// Base stores every layer, so a late kill leaves a checkpoint and
	// the suffix re-executes strictly fewer layers than the network has.
	g := models.ConvChain(6, 64, 64, 16)
	a := arch.Exynos2100Like()
	opt := core.Base()
	killAt := 0.6 * cleanCycles(t, g, a, opt)
	plan := &fault.Plan{Deaths: []fault.Death{{Core: 2, AtCycle: killAt}}}
	cf := failWith(t, g, a, opt, plan)
	if len(cf.Completed) == 0 {
		t.Fatal("late Base kill left no checkpoint")
	}
	r, err := Recover(g, a, cf, Options{Opt: opt, Sim: sim.Config{Faults: plan}})
	if err != nil {
		t.Fatal(err)
	}
	totalCompute := 0
	for _, l := range g.Layers() {
		if !l.IsInput() {
			totalCompute++
		}
	}
	if got := r.ReExecutedLayers(); got >= totalCompute {
		t.Errorf("checkpoint saved nothing: re-executed %d of %d layers", got, totalCompute)
	}
	if len(r.Completed) != len(cf.Completed) {
		t.Errorf("result completed %d layers, failure checkpointed %d", len(r.Completed), len(cf.Completed))
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("recovered numerics wrong: %v", err)
	}
	// Merged accounting covers both the wasted attempt and the rerun.
	merged := r.MergedStats()
	if merged.TotalCycles != r.TotalCycles {
		t.Errorf("merged cycles %.0f != result %.0f", merged.TotalCycles, r.TotalCycles)
	}
	if merged.TotalMACs() < g.TotalMACs() {
		t.Errorf("merged MACs %d below one clean inference %d", merged.TotalMACs(), g.TotalMACs())
	}
}

func TestRecoverCascadingFailures(t *testing.T) {
	// Core 0 dies in the first run; the resumed two-core run then loses
	// core 1 (plan times are per-run local clocks); core 2 finishes.
	g := models.ConvChain(5, 48, 48, 16)
	a := arch.Exynos2100Like()
	opt := core.Halo()
	plan := &fault.Plan{Deaths: []fault.Death{
		{Core: 0, AtCycle: 1000},
		{Core: 1, AtCycle: 2000},
	}}
	cf := failWith(t, g, a, opt, plan)
	if cf.Core != 0 {
		t.Fatalf("first failure on core %d, want 0", cf.Core)
	}
	r, err := Recover(g, a, cf, Options{Opt: opt, Sim: sim.Config{Faults: plan}})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Failures) != 2 {
		t.Fatalf("handled %d failures, want 2 (%v)", len(r.Failures), r.DeadCores)
	}
	if len(r.Survivors) != 1 || r.Survivors[0] != 2 {
		t.Errorf("survivors = %v, want [2]", r.Survivors)
	}
	if err := Validate(g, r); err != nil {
		t.Errorf("recovered numerics wrong: %v", err)
	}
}

func TestRecoverAllCoresDead(t *testing.T) {
	g := models.ConvChain(4, 48, 48, 16)
	a := arch.Exynos2100Like()
	plan := &fault.Plan{Deaths: []fault.Death{
		{Core: 0, AtCycle: 1000},
		{Core: 1, AtCycle: 2000},
		{Core: 2, AtCycle: 3000},
	}}
	cf := failWith(t, g, a, core.Halo(), plan)
	_, err := Recover(g, a, cf, Options{Opt: core.Halo(), Sim: sim.Config{Faults: plan}})
	if err == nil || !strings.Contains(err.Error(), "all") {
		t.Fatalf("expected all-cores-dead error, got %v", err)
	}
}

func chain4(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New("chain", tensor.Int8)
	in := g.Input("input", tensor.NewShape(16, 16, 8))
	b := g.MustAdd("b", ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	c := g.MustAdd("c", ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), b)
	g.MustAdd("d", ops.NewConv2D(3, 3, 1, 1, 8, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), c)
	return g
}

func TestSuffixGraphCheckpointBecomesInput(t *testing.T) {
	g := chain4(t)
	b, _ := g.LayerByName("b")
	suffix, origin, err := SuffixGraph(g, []graph.LayerID{b.ID})
	if err != nil {
		t.Fatal(err)
	}
	// b is checkpointed, the original input feeds only b: the suffix is
	// ckpt_b -> c -> d.
	if suffix.Len() != 3 {
		t.Fatalf("suffix has %d layers: %v", suffix.Len(), suffix.Layers())
	}
	ck, ok := suffix.LayerByName("ckpt_b")
	if !ok || !ck.IsInput() {
		t.Fatal("checkpointed producer not rebuilt as an input")
	}
	if ck.OutShape != b.OutShape {
		t.Errorf("checkpoint shape %v != producer %v", ck.OutShape, b.OutShape)
	}
	if origin[ck.ID] != b.ID {
		t.Errorf("checkpoint origin %d, want %d", origin[ck.ID], b.ID)
	}
	for _, name := range []string{"c", "d"} {
		nl, ok := suffix.LayerByName(name)
		if !ok {
			t.Fatalf("suffix lost layer %s", name)
		}
		ol, _ := g.LayerByName(name)
		if origin[nl.ID] != ol.ID {
			t.Errorf("layer %s origin %d, want %d", name, origin[nl.ID], ol.ID)
		}
	}
	if err := suffix.Validate(); err != nil {
		t.Errorf("suffix graph invalid: %v", err)
	}
}

func TestSuffixGraphEmptyCheckpointMirrorsGraph(t *testing.T) {
	g := chain4(t)
	suffix, origin, err := SuffixGraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if suffix.Len() != g.Len() {
		t.Fatalf("suffix %d layers, original %d", suffix.Len(), g.Len())
	}
	for _, l := range suffix.Layers() {
		if origin[l.ID] != l.ID {
			t.Errorf("layer %s origin %d, want identity", l.Name, origin[l.ID])
		}
	}
}

func TestSuffixGraphNothingLeft(t *testing.T) {
	g := chain4(t)
	var all []graph.LayerID
	for _, l := range g.Layers() {
		if !l.IsInput() {
			all = append(all, l.ID)
		}
	}
	if _, _, err := SuffixGraph(g, all); err == nil {
		t.Fatal("fully completed graph produced a suffix")
	}
}

package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/graph"
	"repro/internal/ops"
	"repro/internal/partition"
	"repro/internal/plan"
	"repro/internal/tensor"
)

// smallCNN builds a representative network: stem convs, a residual
// block with depthwise conv, pooling, and a classifier head.
func smallCNN() *graph.Graph {
	g := graph.New("smallcnn", tensor.Int8)
	in := g.Input("input", tensor.NewShape(64, 64, 3))
	c1 := g.MustAdd("conv1", ops.NewConv2D(3, 3, 2, 2, 32,
		ops.SamePad(tensor.NewShape(64, 64, 3), 3, 3, 2, 2, 1, 1)), in)
	r1 := g.MustAdd("relu1", ops.Activation{Func: ops.ReLU}, c1)
	c2 := g.MustAdd("conv2", ops.NewConv2D(3, 3, 1, 1, 32,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), r1)
	r2 := g.MustAdd("relu2", ops.Activation{Func: ops.ReLU}, c2)
	dw := g.MustAdd("dw", ops.NewDepthwiseConv2D(3, 3, 1, 1,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), r2)
	pw := g.MustAdd("pw", ops.NewConv2D(1, 1, 1, 1, 32, ops.Padding{}), dw)
	add := g.MustAdd("add", ops.Add{Arity: 2}, r2, pw)
	p1 := g.MustAdd("pool", ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, add)
	gap := g.MustAdd("gap", ops.GlobalAvgPool{}, p1)
	fc := g.MustAdd("fc", ops.FullyConnected{OutC: 10}, gap)
	g.MustAdd("softmax", ops.Softmax{}, fc)
	return g
}

func configs() map[string]Options {
	return map[string]Options{
		"Base":     Base(),
		"+Halo":    Halo(),
		"+Stratum": Stratum(),
	}
}

func TestCompileAllConfigs(t *testing.T) {
	g := smallCNN()
	for name, opt := range configs() {
		for _, a := range []*archChoice{
			{"3core", arch.Exynos2100Like()},
			{"1core", arch.SingleCore()},
		} {
			res, err := Compile(g, a.a, opt)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, a.name, err)
			}
			if err := res.Program.Validate(); err != nil {
				t.Errorf("%s/%s: program invalid: %v", name, a.name, err)
			}
			if res.Program.NumInstrs() == 0 {
				t.Errorf("%s/%s: empty program", name, a.name)
			}
		}
	}
}

type archChoice struct {
	name string
	a    *arch.Arch
}

func TestBaseHasBarrierPerMulticoreLayer(t *testing.T) {
	g := smallCNN()
	res, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.NumBarriers == 0 {
		t.Error("Base on 3 cores must synchronize")
	}
	// Single core never synchronizes.
	res1, err := Compile(g, arch.SingleCore(), Base())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Program.NumBarriers != 0 {
		t.Errorf("single core has %d barriers", res1.Program.NumBarriers)
	}
}

func TestHaloReducesBarriers(t *testing.T) {
	g := smallCNN()
	base, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	halo, err := Compile(g, arch.Exynos2100Like(), Halo())
	if err != nil {
		t.Fatal(err)
	}
	if halo.Program.NumBarriers >= base.Program.NumBarriers {
		t.Errorf("halo barriers %d >= base %d", halo.Program.NumBarriers, base.Program.NumBarriers)
	}
	// Halo programs contain halo-exchange instructions.
	found := false
	for _, stream := range halo.Program.Cores {
		for _, in := range stream {
			if in.Op == plan.StoreHalo || in.Op == plan.LoadHalo {
				found = true
			}
		}
	}
	if !found {
		t.Error("no halo-exchange instructions in +Halo program")
	}
}

func TestStratumReducesBarriersFurther(t *testing.T) {
	// A deep conv chain where strata shine.
	g := graph.New("chain", tensor.Int8)
	prev := g.Input("input", tensor.NewShape(64, 64, 32))
	for i := 0; i < 6; i++ {
		prev = g.MustAdd("conv"+string(rune('a'+i)),
			ops.NewConv2D(3, 3, 1, 1, 32, ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), prev)
	}
	a := arch.Exynos2100Like()
	halo, err := Compile(g, a, Halo())
	if err != nil {
		t.Fatal(err)
	}
	strat, err := Compile(g, a, Stratum())
	if err != nil {
		t.Fatal(err)
	}
	if strat.Program.NumBarriers > halo.Program.NumBarriers {
		t.Errorf("stratum barriers %d > halo %d", strat.Program.NumBarriers, halo.Program.NumBarriers)
	}
	if strat.RedundantMACs <= 0 {
		t.Error("stratum compilation reported no redundant compute")
	}
	merged := false
	for _, s := range strat.Strata {
		if s.Len() > 1 {
			merged = true
		}
	}
	if !merged {
		t.Error("no multi-layer strata built")
	}
	// Inside a stratum there is no halo-exchange: halo traffic drops.
	haloBytes := func(p *plan.Program) int64 {
		var b int64
		for _, stream := range p.Cores {
			for _, in := range stream {
				if in.Op == plan.StoreHalo || in.Op == plan.LoadHalo {
					b += in.Bytes
				}
			}
		}
		return b
	}
	if haloBytes(strat.Program) >= haloBytes(halo.Program) {
		t.Errorf("stratum halo traffic %d >= halo config %d", haloBytes(strat.Program), haloBytes(halo.Program))
	}
	// Stratum runs redundant compute: its total MACs exceed the graph's.
	var stratMACs int64
	for c := range strat.Program.Cores {
		stratMACs += strat.Program.TotalMACs(c)
	}
	if stratMACs <= g.TotalMACs() {
		t.Errorf("stratum MACs %d <= graph MACs %d; redundancy missing", stratMACs, g.TotalMACs())
	}
}

func TestForcedPartitioningModes(t *testing.T) {
	g := smallCNN()
	for _, mode := range []partition.Mode{partition.ForceSpatial, partition.ForceChannel} {
		opt := Base()
		opt.Partitioning = mode
		res, err := Compile(g, arch.Exynos2100Like(), opt)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := res.Program.Validate(); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestCompileRejectsInvalidInputs(t *testing.T) {
	g := graph.New("empty", tensor.Int8)
	if _, err := Compile(g, arch.Exynos2100Like(), Base()); err == nil {
		t.Error("empty graph accepted")
	}
	g2 := smallCNN()
	bad := arch.Exynos2100Like()
	bad.ClockMHz = 0
	if _, err := Compile(g2, bad, Base()); err == nil {
		t.Error("invalid arch accepted")
	}
}

func TestOptionsNames(t *testing.T) {
	if Base().Name() != "Base" || Halo().Name() != "+Halo" || Stratum().Name() != "+Stratum" {
		t.Error("config names wrong")
	}
}

func TestTotalTrafficAccounting(t *testing.T) {
	g := smallCNN()
	res, err := Compile(g, arch.Exynos2100Like(), Base())
	if err != nil {
		t.Fatal(err)
	}
	var bytes, macs int64
	for c := range res.Program.Cores {
		bytes += res.Program.TotalBytes(c)
		macs += res.Program.TotalMACs(c)
	}
	if bytes <= 0 || macs <= 0 {
		t.Errorf("bytes=%d macs=%d", bytes, macs)
	}
	// Base has no redundancy: total MACs equal the graph's.
	if macs != g.TotalMACs() {
		t.Errorf("Base MACs %d != graph %d", macs, g.TotalMACs())
	}
}

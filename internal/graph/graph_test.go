package graph

import (
	"strings"
	"testing"

	"repro/internal/ops"
	"repro/internal/tensor"
)

// chainGraph builds input -> conv -> relu -> pool.
func chainGraph(t *testing.T) *Graph {
	t.Helper()
	g := New("chain", tensor.Int8)
	in := g.Input("input", tensor.NewShape(32, 32, 3))
	c := g.MustAdd("conv", ops.NewConv2D(3, 3, 1, 1, 16,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), in)
	r := g.MustAdd("relu", ops.Activation{Func: ops.ReLU}, c)
	g.MustAdd("pool", ops.MaxPool2D{KH: 2, KW: 2, StrideH: 2, StrideW: 2}, r)
	return g
}

func TestBuildChain(t *testing.T) {
	g := chainGraph(t)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	pool, ok := g.LayerByName("pool")
	if !ok {
		t.Fatal("pool not found")
	}
	if pool.OutShape != tensor.NewShape(16, 16, 16) {
		t.Errorf("pool out = %v", pool.OutShape)
	}
	if !g.Layer(0).IsInput() || g.Layer(1).IsInput() {
		t.Error("IsInput classification wrong")
	}
}

func TestAddErrors(t *testing.T) {
	g := New("g", tensor.Int8)
	in := g.Input("input", tensor.NewShape(8, 8, 4))
	if _, err := g.Add("input", ops.Activation{}, in); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := g.Add("bad", ops.Activation{}, LayerID(42)); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := g.Add("badshape", ops.NewConv2D(9, 9, 1, 1, 4, ops.Padding{}), in); err == nil {
		t.Error("shape inference error not propagated")
	}
}

func TestMustAddPanics(t *testing.T) {
	g := New("g", tensor.Int8)
	g.Input("input", tensor.NewShape(8, 8, 4))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.MustAdd("input", ops.Activation{})
}

func TestUsersAndOutputs(t *testing.T) {
	g := New("diamond", tensor.Int8)
	in := g.Input("input", tensor.NewShape(16, 16, 8))
	a := g.MustAdd("a", ops.Activation{Func: ops.ReLU}, in)
	b := g.MustAdd("b", ops.NewConv2D(1, 1, 1, 1, 8, ops.Padding{}), a)
	c := g.MustAdd("c", ops.NewConv2D(3, 3, 1, 1, 8,
		ops.Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}), a)
	d := g.MustAdd("d", ops.Add{Arity: 2}, b, c)

	users := g.Users(a)
	if len(users) != 2 || users[0] != b || users[1] != c {
		t.Errorf("Users(a) = %v", users)
	}
	outs := g.OutputLayers()
	if len(outs) != 1 || outs[0].ID != d {
		t.Errorf("OutputLayers = %v", outs)
	}
	ins := g.InputLayers()
	if len(ins) != 1 || ins[0].ID != in {
		t.Errorf("InputLayers = %v", ins)
	}
}

func TestInShapes(t *testing.T) {
	g := chainGraph(t)
	conv, _ := g.LayerByName("conv")
	shapes := g.InShapes(conv)
	if len(shapes) != 1 || shapes[0] != tensor.NewShape(32, 32, 3) {
		t.Errorf("InShapes = %v", shapes)
	}
}

func TestValidateEmpty(t *testing.T) {
	g := New("empty", tensor.Int8)
	if err := g.Validate(); err == nil {
		t.Error("empty graph validated")
	}
}

func TestValidateNoInput(t *testing.T) {
	// A graph whose first layer is not an Input cannot be built through
	// the public API (every op needs inputs), so only the empty and
	// valid paths are reachable; ensure a single-input graph passes.
	g := New("onlyinput", tensor.Int8)
	g.Input("input", tensor.NewShape(4, 4, 2))
	if err := g.Validate(); err != nil {
		t.Errorf("single input graph invalid: %v", err)
	}
}

func TestTotals(t *testing.T) {
	g := chainGraph(t)
	// conv: 32*32*16 * 3*3*3 MACs; relu: 32*32*16; pool: 16*16*16*4.
	wantMACs := int64(32*32*16*27 + 32*32*16 + 16*16*16*4)
	if got := g.TotalMACs(); got != wantMACs {
		t.Errorf("TotalMACs = %d, want %d", got, wantMACs)
	}
	// conv kernel: 16 * (3*3*3 + 4 bias bytes).
	wantK := int64(16 * (27 + 4))
	if got := g.TotalKernelBytes(); got != wantK {
		t.Errorf("TotalKernelBytes = %d, want %d", got, wantK)
	}
}

func TestSubgraph(t *testing.T) {
	g := chainGraph(t)
	sub, err := g.Subgraph("stem", 2)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Errorf("sub.Len = %d", sub.Len())
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("sub invalid: %v", err)
	}
	if _, err := g.Subgraph("bad", 0); err == nil {
		t.Error("zero-length prefix accepted")
	}
	if _, err := g.Subgraph("bad", 99); err == nil {
		t.Error("overlong prefix accepted")
	}
}

func TestLayerString(t *testing.T) {
	g := chainGraph(t)
	conv, _ := g.LayerByName("conv")
	s := conv.String()
	if !strings.Contains(s, "conv") || !strings.Contains(s, "Conv2D") {
		t.Errorf("String = %q", s)
	}
	if conv.OutBytes() != 32*32*16 {
		t.Errorf("OutBytes = %d", conv.OutBytes())
	}
}

func TestLayerPanicsOnBadID(t *testing.T) {
	g := chainGraph(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	g.Layer(LayerID(100))
}

package ops

import (
	"testing"

	"repro/internal/tensor"
)

func TestChannelSlice(t *testing.T) {
	sl := ChannelSlice{From: 8, To: 24}
	out := mustOut(t, sl, shape(10, 10, 32))
	if out != shape(10, 10, 16) {
		t.Errorf("out = %v, want 10x10x16", out)
	}
	r := sl.InputRegion(tensor.Region{Off: shape(2, 2, 4), Ext: shape(3, 3, 8)}, 0,
		[]tensor.Shape{shape(10, 10, 32)})
	if r.Off.C != 12 || r.Ext.C != 8 {
		t.Errorf("region = %v, want channels [12,20)", r)
	}
	for _, bad := range []ChannelSlice{{From: -1, To: 4}, {From: 4, To: 4}, {From: 0, To: 33}} {
		if _, err := bad.OutShape([]tensor.Shape{shape(10, 10, 32)}); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}

func TestChannelShuffle(t *testing.T) {
	sh := ChannelShuffle{Groups: 2}
	out := mustOut(t, sh, shape(4, 4, 8))
	if out != shape(4, 4, 8) {
		t.Errorf("out = %v", out)
	}
	// g=2, C=8: out c reads (c%2)*4 + c/2: 0,4,1,5,2,6,3,7.
	want := []int{0, 4, 1, 5, 2, 6, 3, 7}
	for c, w := range want {
		if got := sh.SourceChannel(c, 8); got != w {
			t.Errorf("SourceChannel(%d) = %d, want %d", c, got, w)
		}
	}
	// The shuffle is a permutation: every source hit exactly once.
	seen := map[int]bool{}
	for c := 0; c < 8; c++ {
		src := sh.SourceChannel(c, 8)
		if seen[src] {
			t.Errorf("source %d used twice", src)
		}
		seen[src] = true
	}
	if _, err := sh.OutShape([]tensor.Shape{shape(4, 4, 7)}); err == nil {
		t.Error("indivisible channels accepted")
	}
	if _, err := (ChannelShuffle{Groups: 1}).OutShape([]tensor.Shape{shape(4, 4, 8)}); err == nil {
		t.Error("groups < 2 accepted")
	}
	// InputRegion must contain every source channel of the range.
	in := []tensor.Shape{shape(4, 4, 8)}
	reg := tensor.Region{Off: shape(0, 0, 2), Ext: shape(4, 4, 3)}
	r := sh.InputRegion(reg, 0, in)
	for c := 2; c < 5; c++ {
		src := sh.SourceChannel(c, 8)
		if src < r.Off.C || src >= r.End(tensor.AxisC) {
			t.Errorf("source %d of out %d outside region %v", src, c, r)
		}
	}
}

func TestGroupedConv(t *testing.T) {
	g := Conv2D{KH: 3, KW: 3, StrideH: 1, StrideW: 1, DilH: 1, DilW: 1,
		Pad: Padding{Top: 1, Bottom: 1, Left: 1, Right: 1}, OutC: 32, Groups: 4}
	in := []tensor.Shape{shape(16, 16, 16)}
	out := mustOut(t, g, in[0])
	if out != shape(16, 16, 32) {
		t.Fatalf("out = %v", out)
	}
	// MACs: 1/4 of the dense cost.
	dense := NewConv2D(3, 3, 1, 1, 32, Padding{Top: 1, Bottom: 1, Left: 1, Right: 1})
	if 4*g.MACs(out, in) != dense.MACs(out, in) {
		t.Errorf("grouped MACs %d != dense/4 %d", g.MACs(out, in), dense.MACs(out, in)/4)
	}
	// Kernel: also 1/4 (minus identical bias terms).
	if g.KernelBytes(out, in, tensor.Int8) >= dense.KernelBytes(out, in, tensor.Int8) {
		t.Error("grouped kernel not smaller than dense")
	}
	// Output channels [8,16) are group 1: input channels [4,8).
	reg := tensor.Region{Off: shape(0, 0, 8), Ext: shape(16, 16, 8)}
	r := g.InputRegion(reg, 0, in)
	if r.Off.C != 4 || r.Ext.C != 4 {
		t.Errorf("group region C = [%d,+%d), want [4,+4)", r.Off.C, r.Ext.C)
	}
	// A range spanning groups 1-2 needs input channels [4,12).
	reg2 := tensor.Region{Off: shape(0, 0, 8), Ext: shape(16, 16, 16)}
	r2 := g.InputRegion(reg2, 0, in)
	if r2.Off.C != 4 || r2.Ext.C != 8 {
		t.Errorf("two-group region C = [%d,+%d), want [4,+8)", r2.Off.C, r2.Ext.C)
	}
}

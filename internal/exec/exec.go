// Package exec is a numeric reference executor for layer graphs. It
// exists to validate the compiler's region arithmetic bit-exactly: the
// same integer kernels run once over whole tensors (the reference) and
// once over the partitioned/halo-expanded/tiled regions the compiler
// derived; any insufficient halo or mis-sliced region either panics
// (an out-of-view read) or produces mismatching values.
//
// Arithmetic is integer (int32 accumulators over pseudo-random int8
// data and weights) and fully deterministic, so "correct" means
// identical bits, not approximately equal.
package exec

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// Tensor is a dense HWC tensor in full-graph coordinates.
type Tensor struct {
	Shape tensor.Shape
	Data  []int32
}

// NewTensor returns a zero tensor of shape s.
func NewTensor(s tensor.Shape) *Tensor {
	return &Tensor{Shape: s, Data: make([]int32, s.Elems())}
}

// At returns the element at (h, w, c).
func (t *Tensor) At(h, w, c int) int32 {
	return t.Data[(h*t.Shape.W+w)*t.Shape.C+c]
}

// Set stores v at (h, w, c).
func (t *Tensor) Set(h, w, c int, v int32) {
	t.Data[(h*t.Shape.W+w)*t.Shape.C+c] = v
}

// Fill populates the tensor with deterministic pseudo-random int8
// values derived from seed.
func (t *Tensor) Fill(seed uint64) {
	for i := range t.Data {
		t.Data[i] = int32(int8(splitmix(seed + uint64(i))))
	}
}

// Checksum folds the tensor's contents into a position-sensitive
// 64-bit digest. It is the numeric model of the simulator's
// stratum-boundary corruption check: any single flipped element (or
// any reordering) changes the digest, so comparing checksums detects
// silent data corruption without keeping a reference copy around.
func (t *Tensor) Checksum() uint64 {
	h := splitmix(uint64(t.Shape.H)<<42 ^ uint64(t.Shape.W)<<21 ^ uint64(t.Shape.C))
	for i, v := range t.Data {
		h = splitmix(h ^ splitmix(uint64(i)+1) ^ uint64(uint32(v)))
	}
	return h
}

// Equal reports whether two tensors match exactly.
func (t *Tensor) Equal(o *Tensor) bool {
	if t.Shape != o.Shape {
		return false
	}
	for i := range t.Data {
		if t.Data[i] != o.Data[i] {
			return false
		}
	}
	return true
}

// View exposes a rectangular region of a conceptual tensor. Reads
// outside the view's region panic: in validation, that means the
// compiler's halo/region math under-provisioned data.
type View struct {
	Region tensor.Region
	data   []int32
}

// NewView returns a zero-filled view over region r.
func NewView(r tensor.Region) *View {
	return &View{Region: r, data: make([]int32, r.Elems())}
}

// ViewOf extracts region r from a full tensor.
func ViewOf(t *Tensor, r tensor.Region) *View {
	r = r.ClampTo(t.Shape)
	v := NewView(r)
	for h := 0; h < r.Ext.H; h++ {
		for w := 0; w < r.Ext.W; w++ {
			for c := 0; c < r.Ext.C; c++ {
				v.data[(h*r.Ext.W+w)*r.Ext.C+c] = t.At(r.Off.H+h, r.Off.W+w, r.Off.C+c)
			}
		}
	}
	return v
}

// WholeView wraps a full tensor without copying.
func WholeView(t *Tensor) *View {
	return &View{Region: tensor.WholeRegion(t.Shape), data: t.Data}
}

// At returns the element at absolute coordinates (h, w, c); it panics
// when the coordinates fall outside the view.
func (v *View) At(h, w, c int) int32 {
	hh := h - v.Region.Off.H
	ww := w - v.Region.Off.W
	cc := c - v.Region.Off.C
	if hh < 0 || hh >= v.Region.Ext.H || ww < 0 || ww >= v.Region.Ext.W || cc < 0 || cc >= v.Region.Ext.C {
		panic(fmt.Sprintf("exec: read (%d,%d,%d) outside view %v — insufficient halo/region", h, w, c, v.Region))
	}
	return v.data[(hh*v.Region.Ext.W+ww)*v.Region.Ext.C+cc]
}

// Set stores v at absolute coordinates.
func (v *View) Set(h, w, c int, x int32) {
	hh := h - v.Region.Off.H
	ww := w - v.Region.Off.W
	cc := c - v.Region.Off.C
	if hh < 0 || hh >= v.Region.Ext.H || ww < 0 || ww >= v.Region.Ext.W || cc < 0 || cc >= v.Region.Ext.C {
		panic(fmt.Sprintf("exec: write (%d,%d,%d) outside view %v", h, w, c, v.Region))
	}
	v.data[(hh*v.Region.Ext.W+ww)*v.Region.Ext.C+cc] = x
}

// CopyInto writes the view's contents into the matching region of a
// full tensor.
func (v *View) CopyInto(t *Tensor) {
	r := v.Region
	for h := 0; h < r.Ext.H; h++ {
		for w := 0; w < r.Ext.W; w++ {
			for c := 0; c < r.Ext.C; c++ {
				t.Set(r.Off.H+h, r.Off.W+w, r.Off.C+c, v.data[(h*r.Ext.W+w)*r.Ext.C+c])
			}
		}
	}
}

// Weights generates deterministic pseudo-random int8 weights for a
// layer, addressed by absolute indices so a channel-partitioned slice
// reads exactly the same values the whole layer would.
type Weights struct {
	seed uint64
}

// WeightsFor returns the weight source of layer id.
func WeightsFor(id graph.LayerID) *Weights {
	return &Weights{seed: 0xA11CE + uint64(id)*0x9E3779B97F4A7C15}
}

// W returns the weight at a flat absolute index.
func (w *Weights) W(index int64) int32 {
	return int32(int8(splitmix(w.seed + uint64(index))))
}

// Conv indexes a dense convolution weight [outC][kh][kw][inC].
func (w *Weights) Conv(oc, kh, kw, ic, kH, kW, inC int) int32 {
	idx := int64(((oc*kH+kh)*kW+kw)*inC + ic)
	return w.W(idx)
}

// Bias returns the bias of output channel oc.
func (w *Weights) Bias(oc int) int32 {
	return w.W(int64(1<<40) + int64(oc))
}

// splitmix is SplitMix64, the deterministic value generator.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 4) on the simulated platform: Figure 11
// (per-model performance across configurations), Figure 12 (pipelining
// profiles for the halo-first policy), Table 1 (partitioning methods),
// Table 2 (benchmark models), Table 4 (partitioning-scheme profile for
// InceptionV3), and Table 5 (Halo vs Stratum on the InceptionV3 stem).
//
// Each experiment returns structured rows and can print a formatted
// report; cmd/npubench and the repository benchmarks drive them.
package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/models"
	"repro/internal/parallel"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/stats"
)

// StrictSPM controls the simulator's SPM admission check for every
// experiment run (cmd/npubench's -strict-spm flag). It defaults to on:
// a run whose live SPM bytes exceed a core's capacity fails with a
// *sim.SPMOverflowError. Turning it off simulates knowingly over-budget
// schedules instead of failing.
var StrictSPM = true

// simConfig is the base simulator configuration every experiment
// derives its run config from, honoring StrictSPM.
func simConfig() sim.Config { return sim.Config{NoSPMCheck: !StrictSPM} }

// runOne compiles and simulates one (graph, arch, options) point.
// Compilation goes through the compile-result cache, so sweeps that
// revisit a configuration (the Base point appears in Figure 11,
// Table 4, and the energy ablation alike) compile it once.
func runOne(g *graph.Graph, a *arch.Arch, opt core.Options, trace bool) (*core.Result, *sim.Result, error) {
	res, err := core.CompileCached(g, a, opt)
	if err != nil {
		return nil, nil, err
	}
	cfg := simConfig()
	cfg.CollectTrace = trace
	out, err := sim.Run(res.Program, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res, out, nil
}

// Fig11Row is one model's result in Figure 11.
type Fig11Row struct {
	Model string
	// Latencies in microseconds.
	SingleUS, BaseUS, HaloUS, StratumUS float64
}

// Speedup returns latency-relative performance over the single-core
// run (performance = 1/latency, Figure 11's y-axis).
func (r Fig11Row) Speedup(us float64) float64 { return r.SingleUS / us }

// Fig11 measures all six benchmark models in the four configurations
// of Figure 11: single-core, and three-core Base, +Halo, +Stratum.
// Every (model, configuration) point compiles and simulates
// independently, so the full grid fans out across the worker pool;
// rows are assembled in model order afterwards, identical to the
// serial sweep.
func Fig11() ([]Fig11Row, error) {
	single := arch.SingleCore()
	multi := arch.Exynos2100Like()
	ms := models.All()
	points := []struct {
		a   *arch.Arch
		opt core.Options
	}{
		{single, core.Base()},
		{multi, core.Base()},
		{multi, core.Halo()},
		{multi, core.Stratum()},
	}
	lats, err := parallel.Map(len(ms)*len(points), func(i int) (float64, error) {
		m := ms[i/len(points)]
		pt := points[i%len(points)]
		_, out, err := runOne(m.Build(), pt.a, pt.opt, false)
		if err != nil {
			return 0, fmt.Errorf("fig11 %s: %w", m.Name, err)
		}
		return out.Stats.LatencyMicros(pt.a.ClockMHz), nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Fig11Row, len(ms))
	for mi, m := range ms {
		rows[mi] = Fig11Row{
			Model:     m.Name,
			SingleUS:  lats[mi*len(points)+0],
			BaseUS:    lats[mi*len(points)+1],
			HaloUS:    lats[mi*len(points)+2],
			StratumUS: lats[mi*len(points)+3],
		}
	}
	return rows, nil
}

// PrintFig11 renders Figure 11 as a table of speedups over single core.
func PrintFig11(w io.Writer, rows []Fig11Row) {
	fmt.Fprintln(w, "Figure 11: performance (speedup over 1-core; performance = 1/latency)")
	fmt.Fprintf(w, "%-17s %10s %10s %10s %10s | %6s %6s %6s\n",
		"Model", "1core(us)", "Base(us)", "+Halo(us)", "+Strat(us)", "Base", "+Halo", "+Strat")
	gBase, gHalo, gStrat := 1.0, 1.0, 1.0
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %10.1f %10.1f %10.1f %10.1f | %5.2fx %5.2fx %5.2fx\n",
			r.Model, r.SingleUS, r.BaseUS, r.HaloUS, r.StratumUS,
			r.Speedup(r.BaseUS), r.Speedup(r.HaloUS), r.Speedup(r.StratumUS))
		gBase *= r.Speedup(r.BaseUS)
		gHalo *= r.Speedup(r.HaloUS)
		gStrat *= r.Speedup(r.StratumUS)
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(w, "%-17s %43s | %5.2fx %5.2fx %5.2fx  (geomean)\n", "average", "",
			math.Pow(gBase, 1/n), math.Pow(gHalo, 1/n), math.Pow(gStrat, 1/n))
	}
	fmt.Fprintln(w, "paper: Base ~1.7x, +Halo 1.07x over Base, +Stratum 1.23x over Base, 2.1x overall")
}

// Table1Row is one row of Table 1 (convolution partitioning methods).
type Table1Row struct {
	Method partition.Method
}

// Table1 returns the partitioning-method enumeration.
func Table1() []Table1Row {
	methods := partition.ConvMethods()
	rows := make([]Table1Row, len(methods))
	for i, m := range methods {
		rows[i] = Table1Row{Method: m}
	}
	return rows
}

// PrintTable1 renders Table 1.
func PrintTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintln(w, "Table 1: layer partitioning methods for convolution")
	fmt.Fprintf(w, "%-10s %-18s %-18s %-22s %s\n", "direction", "partitioned", "replicated", "extra comm & comp", "used")
	for _, r := range rows {
		m := r.Method
		used := "yes"
		if !m.Preferred {
			used = "no (reduction)"
		}
		fmt.Fprintf(w, "%-10s %-18s %-18s %-22s %s\n",
			m.Name, join(m.DataPartitioned), join(m.DataReplicated), m.ExtraCommComp, used)
	}
}

func join(xs []string) string {
	if len(xs) == 0 {
		return "none"
	}
	return strings.Join(xs, ", ")
}

// Table2Row is one benchmark model descriptor.
type Table2Row struct {
	Info   models.Info
	Layers int
	GMACs  float64
}

// Table2 builds every benchmark model and reports its geometry; the
// builds are independent and fan out across the worker pool.
func Table2() []Table2Row {
	ms := models.All()
	rows, _ := parallel.Map(len(ms), func(i int) (Table2Row, error) {
		g := ms[i].Build()
		return Table2Row{Info: ms[i], Layers: g.Len(), GMACs: float64(g.TotalMACs()) / 1e9}, nil
	})
	return rows
}

// PrintTable2 renders Table 2 (extended with layer and MAC counts).
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table 2: benchmark CNN models")
	fmt.Fprintf(w, "%-17s %-17s %-13s %-6s %7s %8s\n", "Model", "Category", "Input(HxWxC)", "Type", "Layers", "GMACs")
	for _, r := range rows {
		fmt.Fprintf(w, "%-17s %-17s %-13s %-6s %7d %8.2f\n",
			r.Info.Name, r.Info.Category, r.Info.Input.String(), r.Info.DType.String(), r.Layers, r.GMACs)
	}
}

// Table4Row is one partitioning scheme's per-core profile for
// InceptionV3.
type Table4Row struct {
	Scheme string
	// BytesPerCore is global<->local traffic per core.
	BytesPerCore []int64
	// IdleUSPerCore is idle time per core in microseconds.
	IdleUSPerCore []float64
	// LatencyUS is the end-to-end latency.
	LatencyUS float64
}

// Table4 profiles InceptionV3 under spatial-only, channel-only, and
// adaptive partitioning (Base configuration otherwise), reporting the
// per-core data-transfer amounts and idle times of the paper's
// Table 4.
func Table4() ([]Table4Row, error) {
	g := models.InceptionV3()
	a := arch.Exynos2100Like()
	schemes := []struct {
		name string
		mode partition.Mode
	}{
		{"spatial", partition.ForceSpatial},
		{"channel", partition.ForceChannel},
		{"adaptive", partition.Adaptive},
	}
	return parallel.Map(len(schemes), func(i int) (Table4Row, error) {
		sch := schemes[i]
		opt := core.Base()
		opt.Partitioning = sch.mode
		res, out, err := runOne(g, a, opt, false)
		if err != nil {
			return Table4Row{}, fmt.Errorf("table4 %s: %w", sch.name, err)
		}
		row := Table4Row{Scheme: sch.name, LatencyUS: out.Stats.LatencyMicros(a.ClockMHz)}
		for c := range a.Cores {
			row.BytesPerCore = append(row.BytesPerCore, res.Program.TotalBytes(c))
			// Idle in the paper's sense: time a core spends waiting on
			// the others — barrier waits plus the tail after the
			// core's own work finished.
			cs := out.Stats.PerCore[c]
			idle := (cs.SyncWait + (out.Stats.TotalCycles - cs.Finish)) / float64(a.ClockMHz)
			row.IdleUSPerCore = append(row.IdleUSPerCore, idle)
		}
		return row, nil
	})
}

// PrintTable4 renders Table 4.
func PrintTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintln(w, "Table 4: InceptionV3 per-core profile by partitioning scheme")
	fmt.Fprintf(w, "%-10s %-34s %-26s %10s\n", "scheme", "data transfer (global<->local)", "idle time", "latency")
	for _, r := range rows {
		var bs, is []float64
		for i := range r.BytesPerCore {
			bs = append(bs, float64(r.BytesPerCore[i]))
			is = append(is, r.IdleUSPerCore[i])
		}
		fmt.Fprintf(w, "%-10s ", r.Scheme)
		for _, b := range r.BytesPerCore {
			fmt.Fprintf(w, "%7.0fKB ", float64(b)/1024)
		}
		fmt.Fprintf(w, " %s  ", stats.Summarize(bs).KB())
		for _, i := range r.IdleUSPerCore {
			fmt.Fprintf(w, "%5.0fus ", i)
		}
		fmt.Fprintf(w, " %s  %8.1fus\n", stats.Summarize(is).String()+"us", r.LatencyUS)
	}
	fmt.Fprintln(w, "paper: adaptive has the lowest total transfer and the lowest idle μ and σ")
}

// Table5Row is one configuration's result on the InceptionV3 stem.
type Table5Row struct {
	Config string
	// LatencyUS is the stem's end-to-end latency.
	LatencyUS float64
	// GMACs is the computation amount including stratum redundancy.
	GMACs float64
	// SyncUS summarizes per-core synchronization overhead.
	SyncUS stats.Summary
}

// Table5 compares halo-exchange only, stratum only, and both combined
// on the stem region of InceptionV3 (the paper's Table 5 workload).
func Table5() ([]Table5Row, error) {
	g := models.InceptionV3Stem()
	a := arch.Exynos2100Like()
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"+Halo", core.Halo()},
		{"+Stratum", func() core.Options {
			o := core.Base()
			o.Stratum = true
			return o
		}()},
		{"Combined", core.Stratum()},
	}
	return parallel.Map(len(configs), func(i int) (Table5Row, error) {
		cfg := configs[i]
		_, out, err := runOne(g, a, cfg.opt, false)
		if err != nil {
			return Table5Row{}, fmt.Errorf("table5 %s: %w", cfg.name, err)
		}
		var syncs []float64
		for _, c := range out.Stats.PerCore {
			syncs = append(syncs, c.SyncWait/float64(a.ClockMHz))
		}
		return Table5Row{
			Config:    cfg.name,
			LatencyUS: out.Stats.LatencyMicros(a.ClockMHz),
			GMACs:     float64(out.Stats.TotalMACs()) / 1e9,
			SyncUS:    stats.Summarize(syncs),
		}, nil
	})
}

// PrintTable5 renders Table 5.
func PrintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5: Halo vs Stratum on the InceptionV3 stem region")
	fmt.Fprintf(w, "%-10s %14s %14s %s\n", "config", "latency", "computation", "sync overhead")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12.1fus %13.2fG %s\n", r.Config, r.LatencyUS, r.GMACs, r.SyncUS.String()+"us")
	}
	fmt.Fprintln(w, "paper: 387us/1.34G, 386us/1.39G, 378.8us/1.35G — combined wins; stratum trades sync for compute")
}

// Package trace renders simulator event traces: a text Gantt chart in
// the style of the paper's Figure 12 (per-core load/compute/store
// lanes over time) and Chrome trace-event JSON for chrome://tracing or
// Perfetto.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/plan"
	"repro/internal/sim"
)

// laneOf maps an opcode to a display lane within its core.
func laneOf(op plan.OpCode) string {
	switch op.Engine() {
	case plan.EngineLoad:
		return "load"
	case plan.EngineCompute:
		return "compute"
	case plan.EngineStore:
		return "store"
	default:
		return "sync"
	}
}

// Gantt writes a fixed-width text timeline: one row per (core, lane),
// columns are time buckets. Cells show the dominant activity in the
// bucket: '#' compute, '<' load, '>' store, 'H' halo transfer, 'S'
// barrier, '.' idle.
func Gantt(w io.Writer, events []sim.Event, a *arch.Arch, columns int) error {
	if columns <= 0 {
		columns = 100
	}
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "(empty trace)")
		return err
	}
	end := 0.0
	for _, ev := range events {
		if ev.End > end {
			end = ev.End
		}
	}
	if end == 0 {
		end = 1
	}
	bucket := end / float64(columns)

	lanes := []string{"load", "compute", "store", "sync"}
	type key struct {
		core int
		lane string
	}
	rows := map[key][]byte{}
	for c := range a.Cores {
		for _, l := range lanes {
			row := make([]byte, columns)
			for i := range row {
				row[i] = '.'
			}
			rows[key{c, l}] = row
		}
	}
	glyph := func(op plan.OpCode) byte {
		switch op {
		case plan.Compute:
			return '#'
		case plan.LoadInput:
			return '<'
		case plan.LoadKernel:
			return 'k'
		case plan.Store:
			return '>'
		case plan.LoadHalo, plan.StoreHalo:
			return 'H'
		case plan.Barrier:
			return 'S'
		default:
			return '?'
		}
	}
	for _, ev := range events {
		row := rows[key{ev.Core, laneOf(ev.Op)}]
		if row == nil {
			continue
		}
		// Clamp both bucket indices: an event starting exactly at the
		// timeline end (or an instantaneous event there) maps to bucket
		// `columns`, one past the row. Clamping lo — not just hi — keeps
		// such events visible in the final column, and forcing hi >= lo
		// renders zero-duration events as a single cell.
		lo := int(ev.Start / bucket)
		hi := int(ev.End / bucket)
		if lo < 0 {
			lo = 0
		}
		if lo >= columns {
			lo = columns - 1
		}
		if hi >= columns {
			hi = columns - 1
		}
		if hi < lo {
			hi = lo
		}
		for i := lo; i <= hi; i++ {
			g := glyph(ev.Op)
			// Halo and barrier glyphs win over generic traffic so the
			// halo-first effect is visible.
			if row[i] == '.' || g == 'H' || g == 'S' {
				row[i] = g
			}
		}
	}

	us := end / float64(a.ClockMHz)
	if _, err := fmt.Fprintf(w, "timeline: %.1f us total, %.2f us per column\n", us, us/float64(columns)); err != nil {
		return err
	}
	for c := range a.Cores {
		for _, l := range lanes {
			if l == "sync" && onlyDots(rows[key{c, l}]) {
				continue
			}
			if _, err := fmt.Fprintf(w, "%-3s %-7s |%s|\n", a.Cores[c].Name, l, rows[key{c, l}]); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "legend: # compute, < load, k kernel load, > store, H halo exchange, S sync, . idle")
	return err
}

func onlyDots(row []byte) bool {
	for _, b := range row {
		if b != '.' {
			return false
		}
	}
	return true
}

// chromeEvent is the Chrome trace-event format ("X" complete events).
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	PID  int     `json:"pid"`
	TID  string  `json:"tid"`
}

// WriteChrome serializes events as a Chrome trace (microseconds),
// grouping by core (pid) and engine lane (tid). Events without a note
// fall back to the opcode mnemonic, so halo transfers and barriers stay
// distinguishable from plain loads/stores in the viewer. The output is
// deterministic for a given trace: ties on timestamp break by core,
// lane, duration, then name.
func WriteChrome(w io.Writer, events []sim.Event, a *arch.Arch) error {
	out := make([]chromeEvent, 0, len(events))
	toUS := func(cycles float64) float64 { return cycles / float64(a.ClockMHz) }
	for _, ev := range events {
		name := ev.Note
		if name == "" {
			name = ev.Op.String()
		}
		out = append(out, chromeEvent{
			Name: name,
			Ph:   "X",
			Ts:   toUS(ev.Start),
			Dur:  toUS(ev.End - ev.Start),
			PID:  ev.Core,
			TID:  laneOf(ev.Op),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.Dur != b.Dur {
			return a.Dur < b.Dur
		}
		return a.Name < b.Name
	})
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": out})
}

// Summary returns a one-line-per-core accounting of a trace: busy time
// per engine, formatted for reports.
func Summary(events []sim.Event, a *arch.Arch) string {
	type agg struct{ load, comp, store, halo float64 }
	perCore := make([]agg, a.NumCores())
	for _, ev := range events {
		d := ev.End - ev.Start
		switch ev.Op {
		case plan.Compute:
			perCore[ev.Core].comp += d
		case plan.LoadInput, plan.LoadKernel:
			perCore[ev.Core].load += d
		case plan.Store:
			perCore[ev.Core].store += d
		case plan.LoadHalo, plan.StoreHalo:
			perCore[ev.Core].halo += d
		}
	}
	var b strings.Builder
	for c, ag := range perCore {
		fmt.Fprintf(&b, "%s: compute %.1f us, load %.1f us, store %.1f us, halo %.1f us\n",
			a.Cores[c].Name,
			ag.comp/float64(a.ClockMHz), ag.load/float64(a.ClockMHz),
			ag.store/float64(a.ClockMHz), ag.halo/float64(a.ClockMHz))
	}
	return b.String()
}
